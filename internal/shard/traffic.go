package shard

import (
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// WireTraffic is one shard's traffic-mining bundle, served on GET
// /shard/traffic and fetched by the coordinator alongside the epoch result
// at every Flush. Relation-set routing makes every piece disjoint across
// shards — a statement fingerprint determines a relation set, which the
// router binds to exactly one shard — so the coordinator's merge is pure
// concatenation: per-class results merge like the global one, drift events
// union, interface tables union.
type WireTraffic struct {
	Enabled bool `json:"enabled"`
	// Classes maps each traffic class to the shard's latest per-class epoch
	// result (absent before the first epoch).
	Classes map[string]*WireResult `json:"classes,omitempty"`
	// Drift is the shard's retained drift-event log, all classes. Shard
	// drift epochs count coordinator flushes (the only forced epochs a
	// routed shard sees), so event epochs agree across shards.
	Drift []traffic.Event `json:"drift,omitempty"`
	// Interfaces is the COMPLETE tracked interface table (not a top-K): the
	// coordinator re-ranks the union, and a per-shard cut could evict a
	// fingerprint that is globally hot.
	Interfaces []traffic.Interface `json:"interfaces,omitempty"`
	Tracked    int                 `json:"tracked,omitempty"`
}

// encodeTraffic builds the bundle from an embedded shard server. A classless
// shard yields Enabled=false and nothing else.
func encodeTraffic(s *serve.Server) *WireTraffic {
	if !s.TrafficEnabled() {
		return &WireTraffic{}
	}
	wt := &WireTraffic{
		Enabled:    true,
		Classes:    make(map[string]*WireResult, len(traffic.Classes)),
		Drift:      s.DriftEvents(""),
		Interfaces: s.RenderInterfaces(s.TrackedInterfaces()),
		Tracked:    s.TrackedInterfaces(),
	}
	for _, cls := range traffic.Classes {
		if res, gen := s.LatestClass(cls); res != nil {
			wt.Classes[cls] = EncodeResult(res, gen)
		}
	}
	return wt
}

// classRank orders cross-shard drift events by the classes' canonical order
// (the order serve observes them in), not alphabetically.
var classRank = func() map[string]int {
	m := make(map[string]int, len(traffic.Classes))
	for i, cls := range traffic.Classes {
		m[cls] = i
	}
	return m
}()

// sortDriftEvents establishes one deterministic total order over the union
// of per-shard event logs. Within a shard the log is already deterministic;
// across shards only the epoch is shared, so the remaining keys are the
// event's own fields — every comparison is on values, never on shard index
// arrival timing.
func sortDriftEvents(ev []traffic.Event) {
	sort.SliceStable(ev, func(i, j int) bool {
		a, b := &ev[i], &ev[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if ra, rb := classRank[a.Class], classRank[b.Class]; ra != rb {
			return ra < rb
		}
		if a.Expr != b.Expr {
			return a.Expr < b.Expr
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Cardinality != b.Cardinality {
			return a.Cardinality < b.Cardinality
		}
		return a.PrevCardinality < b.PrevCardinality
	})
}

// mergeTrafficLocked rebuilds the merged traffic view from the per-shard
// bundle cache — the traffic slice of remerge. Down shards contribute their
// last-known bundle, mirroring the global result's staleness semantics.
// Caller holds mergeMu.
func (c *Coordinator) mergeTrafficLocked() {
	classes := make(map[string]*core.Result, len(traffic.Classes))
	var events []traffic.Event
	var ifaces []traffic.Interface
	tracked := 0
	for _, wt := range c.lastTraffic {
		if wt == nil || !wt.Enabled {
			continue
		}
		events = append(events, wt.Drift...)
		ifaces = append(ifaces, wt.Interfaces...)
		tracked += wt.Tracked
	}
	for _, cls := range traffic.Classes {
		parts := make([]*core.Result, 0, len(c.lastTraffic))
		for _, wt := range c.lastTraffic {
			if wt == nil {
				continue
			}
			if wr := wt.Classes[cls]; wr != nil {
				parts = append(parts, DecodeResult(wr))
			}
		}
		if len(parts) == 0 {
			continue
		}
		m := core.MergeResults(parts...)
		if c.cfg.Coverage != nil {
			m.AttachCoverage(c.cfg.Coverage)
		}
		classes[cls] = m
	}
	sortDriftEvents(events)
	sort.SliceStable(ifaces, func(i, j int) bool {
		if ifaces[i].Hits != ifaces[j].Hits {
			return ifaces[i].Hits > ifaces[j].Hits
		}
		return ifaces[i].Fingerprint < ifaces[j].Fingerprint
	})
	c.mergedClass = classes
	c.mergedDrift = events
	c.mergedIfaces = ifaces
	c.ifaceTracked = tracked
}

// TrafficOn reports whether the coordinator serves the class-aware surfaces
// (Config.Traffic — the shards were started with traffic mining).
func (c *Coordinator) TrafficOn() bool { return c.cfg.Traffic }

// MergedClass returns one class's merged clustering plus the merge
// generation and stale-shard names — the per-class sibling of Merged (nil
// before the first flush).
func (c *Coordinator) MergedClass(class string) (*core.Result, int64, []string) {
	c.mergeMu.RLock()
	defer c.mergeMu.RUnlock()
	return c.mergedClass[class], c.gen, c.stale
}

// DriftEvents returns the merged drift log, optionally filtered to one class
// ("" = all). The slice is a copy.
func (c *Coordinator) DriftEvents(class string) []traffic.Event {
	c.mergeMu.RLock()
	defer c.mergeMu.RUnlock()
	out := make([]traffic.Event, 0, len(c.mergedDrift))
	for _, e := range c.mergedDrift {
		if class == "" || e.Class == class {
			out = append(out, e)
		}
	}
	return out
}

// Interfaces returns the merged top-K query interfaces (by hits, ties by
// fingerprint) and the total tracked-fingerprint count across shards.
func (c *Coordinator) Interfaces(top int) ([]traffic.Interface, int) {
	c.mergeMu.RLock()
	defer c.mergeMu.RUnlock()
	out := c.mergedIfaces
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return append([]traffic.Interface(nil), out...), c.ifaceTracked
}

// handleDrift serves the coordinator's GET /drift with the same semantics as
// a single server's: 409 without traffic mining, ?class= filter.
func (c *Coordinator) handleDrift(w http.ResponseWriter, r *http.Request) {
	if !c.cfg.Traffic {
		http.Error(w, "traffic mining not configured", http.StatusConflict)
		return
	}
	class := r.URL.Query().Get("class")
	if class != "" && !traffic.ValidClass(class) {
		http.Error(w, "class must be bot, human or admin", http.StatusBadRequest)
		return
	}
	events := c.DriftEvents(class)
	writeJSON(w, http.StatusOK, map[string]any{
		"events": events,
		"count":  len(events),
	})
}

// handleInterfaces serves the coordinator's GET /interfaces: the merged
// top-K (?top=N, default 10) across every shard's interface miner.
func (c *Coordinator) handleInterfaces(w http.ResponseWriter, r *http.Request) {
	if !c.cfg.Traffic {
		http.Error(w, "traffic mining not configured", http.StatusConflict)
		return
	}
	top := 10
	if q := r.URL.Query().Get("top"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			http.Error(w, "top must be a positive integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	ifaces, tracked := c.Interfaces(top)
	writeJSON(w, http.StatusOK, map[string]any{
		"interfaces": ifaces,
		"tracked":    tracked,
	})
}
