package traffic

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/interval"
	"repro/internal/sqlparser"
)

func TestClassifierBotVsHuman(t *testing.T) {
	c := NewClassifier(Config{})
	// Bot: 1-second cadence, single fingerprint, long run.
	var last string
	for i := 0; i < 40; i++ {
		last = c.Observe("bot01", int64(i), 42, "SELECT ra FROM PhotoObj WHERE objid = 1")
	}
	if last != Bot {
		t.Fatalf("regular low-diversity cadence classified %q, want %q", last, Bot)
	}
	if got := c.FinalClass("bot01"); got != Bot {
		t.Fatalf("FinalClass(bot01) = %q, want %q", got, Bot)
	}
	// Human: bursty, diverse fingerprints, irregular gaps.
	gaps := []int64{0, 3, 50, 7, 120, 2, 44, 9, 300, 5, 61, 13, 28, 90, 4, 17, 33, 150, 6, 21}
	tm := int64(0)
	for i, g := range gaps {
		tm += g
		last = c.Observe("u000001", tm, uint64(1000+i), "SELECT ra, dec FROM PhotoObj WHERE ra > 180")
	}
	if last != Human {
		t.Fatalf("bursty diverse traffic classified %q, want %q", last, Human)
	}
}

func TestClassifierAdminSticky(t *testing.T) {
	c := NewClassifier(Config{})
	if got := c.Observe("adm01", 0, 7, "CREATE TABLE mydb.results (objid bigint)"); got != Admin {
		t.Fatalf("DDL classified %q, want %q", got, Admin)
	}
	// Admin is sticky: subsequent plain SELECTs stay admin.
	if got := c.Observe("adm01", 10, 8, "SELECT 1"); got != Admin {
		t.Fatalf("post-DDL select classified %q, want %q", got, Admin)
	}
	if got := c.Observe("u1", 0, 9, "  declare @ra float"); got != Admin {
		t.Fatalf("DECLARE classified %q, want %q", got, Admin)
	}
	if got := c.Observe("u2", 0, 9, "SELECT create_time FROM t"); got == Admin {
		t.Fatal("SELECT mentioning 'create' in a column must not be admin")
	}
}

func TestClassifierOverrides(t *testing.T) {
	c := NewClassifier(Config{Overrides: map[string]string{"crawler": Bot, "dba": Admin}})
	if got := c.Observe("crawler", 0, 1, "SELECT 1"); got != Bot {
		t.Fatalf("override crawler = %q, want %q", got, Bot)
	}
	if got := c.FinalClass("dba"); got != Admin {
		t.Fatalf("override dba = %q, want %q", got, Admin)
	}
	counts := c.Counts()
	if counts[Bot] != 1 {
		t.Fatalf("counts[bot] = %d, want 1", counts[Bot])
	}
}

func TestClassifierSessionReset(t *testing.T) {
	c := NewClassifier(Config{MinQueries: 4})
	// Regular cadence, then a session gap, then too few queries for the
	// heuristic to re-fire: last record must be human again.
	for i := 0; i < 8; i++ {
		c.Observe("u9", int64(i), 5, "SELECT 1 FROM t")
	}
	got := c.Observe("u9", 10_000, 5, "SELECT 1 FROM t")
	if got != Human {
		t.Fatalf("first query of fresh session classified %q, want %q", got, Human)
	}
}

func TestClassifierStateRoundTrip(t *testing.T) {
	c := NewClassifier(Config{})
	for i := 0; i < 30; i++ {
		c.Observe("bot01", int64(i), 42, "SELECT 1 FROM t")
	}
	c.Observe("adm01", 5, 3, "DROP TABLE x")
	st := c.ExportState()
	b1, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClassifier(Config{})
	var st2 ClassifierState
	if err := json.Unmarshal(b1, &st2); err != nil {
		t.Fatal(err)
	}
	c2.RestoreState(&st2)
	if !reflect.DeepEqual(c.UserClasses(), c2.UserClasses()) {
		t.Fatalf("restored classes %v != %v", c2.UserClasses(), c.UserClasses())
	}
	if !reflect.DeepEqual(c.Counts(), c2.Counts()) {
		t.Fatalf("restored counts %v != %v", c2.Counts(), c.Counts())
	}
	// Continued observation must agree.
	g1 := c.Observe("bot01", 30, 42, "SELECT 1 FROM t")
	g2 := c2.Observe("bot01", 30, 42, "SELECT 1 FROM t")
	if g1 != g2 {
		t.Fatalf("post-restore observation diverged: %q vs %q", g1, g2)
	}
}

func summary(card int, rel string, col string, lo, hi float64) *aggregate.Summary {
	box := interval.NewBox()
	box.Set(col, interval.Interval{Lo: lo, Hi: hi})
	return &aggregate.Summary{
		Cardinality: card,
		Relations:   []string{rel},
		Box:         box,
	}
}

func TestDriftLifecycle(t *testing.T) {
	d := NewDrift(0)
	a := summary(100, "PhotoObj", "PhotoObj.ra", 100, 200)

	ev := d.Observe(Bot, 1, []*aggregate.Summary{a})
	if len(ev) != 1 || ev[0].Kind != DriftAppeared || ev[0].Class != Bot {
		t.Fatalf("first epoch events = %+v, want one appeared", ev)
	}

	// Same box, cardinality +50%: grew.
	b := summary(150, "PhotoObj", "PhotoObj.ra", 100, 200)
	ev = d.Observe(Bot, 2, []*aggregate.Summary{b})
	if len(ev) != 1 || ev[0].Kind != DriftGrew || ev[0].PrevCardinality != 100 {
		t.Fatalf("epoch 2 events = %+v, want one grew from 100", ev)
	}

	// Slight wobble (<10%): silence.
	cl := summary(155, "PhotoObj", "PhotoObj.ra", 102, 202)
	ev = d.Observe(Bot, 3, []*aggregate.Summary{cl})
	if len(ev) != 0 {
		t.Fatalf("epoch 3 events = %+v, want none", ev)
	}

	// Far-away box on the same relation/columns: old vanishes, new appears.
	far := summary(80, "PhotoObj", "PhotoObj.ra", 5000, 6000)
	ev = d.Observe(Bot, 4, []*aggregate.Summary{far})
	kinds := map[string]bool{}
	for _, e := range ev {
		kinds[e.Kind] = true
	}
	if len(ev) != 2 || !kinds[DriftAppeared] || !kinds[DriftVanished] {
		t.Fatalf("epoch 4 events = %+v, want appeared+vanished", ev)
	}

	// Empty epoch: everything vanishes.
	ev = d.Observe(Bot, 5, nil)
	if len(ev) != 1 || ev[0].Kind != DriftVanished {
		t.Fatalf("epoch 5 events = %+v, want one vanished", ev)
	}

	if got := len(d.Events(Bot)); got != 5 {
		t.Fatalf("retained events = %d, want 5", got)
	}
	if got := len(d.Events(Human)); got != 0 {
		t.Fatalf("human events = %d, want 0", got)
	}
}

func TestDriftClassIsolationAndDeterminism(t *testing.T) {
	run := func() []byte {
		d := NewDrift(0)
		d.Observe(Bot, 1, []*aggregate.Summary{summary(10, "PhotoObj", "PhotoObj.ra", 0, 10)})
		d.Observe(Human, 1, []*aggregate.Summary{summary(20, "SpecObj", "SpecObj.z", 0, 1)})
		d.Observe(Bot, 2, []*aggregate.Summary{summary(30, "PhotoObj", "PhotoObj.ra", 0, 10)})
		d.Observe(Human, 2, nil)
		b, err := json.Marshal(d.Events(""))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := run(), run()
	if string(b1) != string(b2) {
		t.Fatalf("drift sequences differ:\n%s\n%s", b1, b2)
	}
}

func TestDriftInfiniteEndpoints(t *testing.T) {
	d := NewDrift(0)
	ray := func(card int, lo float64) *aggregate.Summary {
		box := interval.NewBox()
		iv := interval.Full()
		iv.Lo = lo
		box.Set("PhotoObj.ra", iv)
		return &aggregate.Summary{Cardinality: card, Relations: []string{"PhotoObj"}, Box: box}
	}
	d.Observe(Bot, 1, []*aggregate.Summary{ray(100, 180)})
	// The ray's finite end wiggles 1% — matches, no event.
	ev := d.Observe(Bot, 2, []*aggregate.Summary{ray(105, 182)})
	if len(ev) != 0 {
		t.Fatalf("wiggling ray events = %+v, want none", ev)
	}
	// Bounded interval vs ray never matches.
	ev = d.Observe(Bot, 3, []*aggregate.Summary{summary(100, "PhotoObj", "PhotoObj.ra", 180, 200)})
	kinds := map[string]bool{}
	for _, e := range ev {
		kinds[e.Kind] = true
	}
	if len(ev) != 2 || !kinds[DriftAppeared] || !kinds[DriftVanished] {
		t.Fatalf("ray→interval events = %+v, want appeared+vanished", ev)
	}
}

func TestDriftStateRoundTrip(t *testing.T) {
	d := NewDrift(0)
	d.Observe(Bot, 1, []*aggregate.Summary{summary(10, "PhotoObj", "PhotoObj.ra", 0, 10)})
	st := d.ExportState()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDrift(0)
	var st2 DriftState
	if err := json.Unmarshal(b, &st2); err != nil {
		t.Fatal(err)
	}
	d2.RestoreState(&st2)
	e1 := d.Observe(Bot, 2, []*aggregate.Summary{summary(30, "PhotoObj", "PhotoObj.ra", 0, 10)})
	e2 := d2.Observe(Bot, 2, []*aggregate.Summary{summary(30, "PhotoObj", "PhotoObj.ra", 0, 10)})
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("post-restore drift diverged: %+v vs %+v", e2, e1)
	}
}

func TestInterfacesObserveRender(t *testing.T) {
	x := NewInterfaces(0, 0)
	sqlA := "SELECT ra FROM PhotoObj WHERE ra > 180 AND name = 'bright'"
	fpA, litsA, err := sqlparser.Fingerprint(sqlA)
	if err != nil {
		t.Fatal(err)
	}
	sqlA2 := "SELECT ra FROM PhotoObj WHERE ra > 190 AND name = 'faint'"
	fpA2, litsA2, err := sqlparser.Fingerprint(sqlA2)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpA2 {
		t.Fatalf("same template fingerprints differ: %x vs %x", fpA, fpA2)
	}
	sqlB := "SELECT z FROM SpecObj WHERE z < 1"
	fpB, litsB, err := sqlparser.Fingerprint(sqlB)
	if err != nil {
		t.Fatal(err)
	}

	x.Observe(fpA, sqlA, litsA)
	x.Observe(fpA, sqlA2, litsA2)
	x.Observe(fpB, sqlB, litsB)

	out := x.Render(10, nil)
	if len(out) != 2 {
		t.Fatalf("rendered %d interfaces, want 2", len(out))
	}
	// Top by hits.
	if out[0].Hits != 2 || out[1].Hits != 1 {
		t.Fatalf("hit order wrong: %+v", out)
	}
	if len(out[0].Params) != 2 {
		t.Fatalf("interface A params = %+v, want 2 slots", out[0].Params)
	}
	num := out[0].Params[0]
	if num.Type != "number" || num.Min != "180" || num.Max != "190" || num.Count != 2 {
		t.Fatalf("numeric slot = %+v, want range [180,190] count 2", num)
	}
	str := out[0].Params[1]
	if str.Type != "string" || len(str.Samples) != 2 {
		t.Fatalf("string slot = %+v, want 2 samples", str)
	}
	if out[0].Skeleton == "" {
		t.Fatal("skeleton must be non-empty")
	}

	// Top-1 keeps only the hotter interface.
	if one := x.Render(1, nil); len(one) != 1 || one[0].Fingerprint != out[0].Fingerprint {
		t.Fatalf("Render(1) = %+v", one)
	}
}

func TestInterfacesBoundsAndTies(t *testing.T) {
	x := NewInterfaces(2, 2)
	x.Observe(1, "SELECT a FROM t WHERE a = 1", []sqlparser.Literal{{Kind: sqlparser.Number, Num: 1, Text: "1"}})
	x.Observe(2, "SELECT b FROM t WHERE b = 2", []sqlparser.Literal{{Kind: sqlparser.Number, Num: 2, Text: "2"}})
	// Past the fp bound: ignored.
	x.Observe(3, "SELECT c FROM t", nil)
	if x.Len() != 2 {
		t.Fatalf("tracked fps = %d, want 2", x.Len())
	}
	// Equal hits: first-seen order breaks the tie.
	out := x.Render(10, nil)
	if out[0].Fingerprint != "1" || out[1].Fingerprint != "2" {
		t.Fatalf("tie order = %v", []string{out[0].Fingerprint, out[1].Fingerprint})
	}
	// Sample cap: third distinct value is dropped.
	for _, v := range []string{"x", "y", "z"} {
		x.Observe(1, "", []sqlparser.Literal{{Kind: sqlparser.String, Str: v}})
	}
	out = x.Render(1, nil)
	if got := len(out[0].Params[0].Samples); got > 2 {
		t.Fatalf("samples = %d, want ≤ 2", got)
	}
}

func TestInterfacesStateRoundTrip(t *testing.T) {
	x := NewInterfaces(0, 0)
	sql := "SELECT ra FROM PhotoObj WHERE ra BETWEEN 10 AND 20"
	fp, lits, err := sqlparser.Fingerprint(sql)
	if err != nil {
		t.Fatal(err)
	}
	x.Observe(fp, sql, lits)
	b, err := json.Marshal(x.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	x2 := NewInterfaces(0, 0)
	var st InterfacesState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	x2.RestoreState(&st)
	r1, _ := json.Marshal(x.Render(10, nil))
	r2, _ := json.Marshal(x2.Render(10, nil))
	if string(r1) != string(r2) {
		t.Fatalf("restored render differs:\n%s\n%s", r1, r2)
	}
}
