// Package distance implements the query distance function of Section 5:
//
//	d(q1, q2) = d_tables(q1.FROM, q2.FROM) + d_conj(q1.WHERE, q2.WHERE)
//
// with d_tables the Jaccard distance over relation sets (corner case: two
// table-free queries have distance 0) and d_conj/d_disj the min-matching
// averages of the paper over clauses and atomic predicates.
//
// For the innermost d_pred the paper's literal formula ("overlap of
// intervals / width of access(a)") is a similarity rather than a
// dissimilarity (identical predicates would score 0.6 on the paper's own
// example while disjoint ones score 0); see DESIGN.md §2. The package
// therefore ships two modes:
//
//   - ModeEndpoint (default): a proper metric on predicate ranges — the L∞
//     distance between access-normalised interval endpoints for same-column
//     numeric predicates, Jaccard distance for same-column categorical
//     predicates, and 1 − occupiedFraction₁·occupiedFraction₂ across
//     columns. Equality predicates with nearby constants come out close,
//     which is what lets DBSCAN density-chain the "Photoz.objid = c"
//     population into the paper's Cluster 1.
//   - ModePaperLiteral: the formulas as printed, with two repairs needed to
//     feed the result to DBSCAN at all — the paper normalises by the FIRST
//     argument's access stats, which is asymmetric whenever the two sides
//     fell back to different per-predicate access ranges, so both directions
//     are averaged; and structurally identical predicates short-circuit to
//     distance 0 (the printed overlap formula would score a predicate 0.6
//     away from itself on the paper's own example), making the literal
//     distance a pseudo-metric: d(p,p) = 0 and d(p,q) = d(q,p), the contract
//     dbscan.Cluster documents.
//
// Distances are computed on precompiled Profiles so the O(n²) clustering
// stage does no repeated interval clipping or stats lookups. For the bulk
// clustering path, Kernel repacks the profiles into a flat struct-of-arrays
// layout whose Distance produces bit-identical values with zero allocations
// per pair.
package distance

import (
	"math"

	"repro/internal/extract"
	"repro/internal/predicate"
	"repro/internal/schema"
)

// Mode selects the d_pred formula.
type Mode int

const (
	// ModeEndpoint is the corrected metric (default; see package comment).
	ModeEndpoint Mode = iota
	// ModePaperLiteral applies Section 5.2 exactly as printed.
	ModePaperLiteral
)

func (m Mode) String() string {
	switch m {
	case ModeEndpoint:
		return "endpoint"
	case ModePaperLiteral:
		return "paper-literal"
	default:
		return "unknown"
	}
}

// Metric computes distances between access areas.
type Metric struct {
	Mode  Mode
	Stats *schema.Stats
}

// New returns a Metric in the default mode over the given access statistics.
func New(stats *schema.Stats) *Metric {
	return &Metric{Stats: stats}
}

// Distance computes d(q1, q2) from raw access areas. For repeated use (e.g.
// clustering), precompile with Profile and use ProfileDistance.
func (m *Metric) Distance(a, b *extract.AccessArea) float64 {
	return m.ProfileDistance(m.Profile(a), m.Profile(b))
}

// ProfileDistance computes d_tables + d_conj on precompiled profiles.
func (m *Metric) ProfileDistance(p, q *Profile) float64 {
	profileEvalsTotal.Inc()
	return m.dTables(p, q) + m.dConj(p, q)
}

// DTables exposes the Jaccard table distance for tests and the OLAPClus
// baseline.
func (m *Metric) DTables(a, b []string) float64 {
	return jaccardDistance(a, b)
}

func jaccardDistance(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		// Corner case of Section 5.1: queries over database constants only.
		return 0
	}
	setB := make(map[string]struct{}, len(b))
	for _, t := range b {
		setB[t] = struct{}{}
	}
	inter := 0
	for _, t := range a {
		if _, ok := setB[t]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

func (m *Metric) dTables(p, q *Profile) float64 {
	if len(p.Tables) == 0 && len(q.Tables) == 0 {
		return 0
	}
	inter := 0
	for _, t := range p.Tables {
		if _, ok := q.tableSet[t]; ok {
			inter++
		}
	}
	union := len(p.Tables) + len(q.Tables) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// dConj is the min-matching average over clauses (Section 5.2).
func (m *Metric) dConj(p, q *Profile) float64 {
	b1, b2 := p.clauses, q.clauses
	if len(b1) == 0 && len(b2) == 0 {
		return 0
	}
	if len(b1) == 0 || len(b2) == 0 {
		return 1
	}
	// The two directions accumulate separately and combine with ONE
	// commutative addition, so d_conj(p,q) == d_conj(q,p) bit for bit (a
	// running sum across both loops would round differently per direction).
	sum1 := 0.0
	for _, o1 := range b1 {
		best := math.Inf(1)
		for _, o2 := range b2 {
			if d := m.dDisj(o1, o2); d < best {
				best = d
			}
		}
		sum1 += best
	}
	sum2 := 0.0
	for _, o2 := range b2 {
		best := math.Inf(1)
		for _, o1 := range b1 {
			if d := m.dDisj(o1, o2); d < best {
				best = d
			}
		}
		sum2 += best
	}
	return (sum1 + sum2) / float64(len(b1)+len(b2))
}

// dDisj is the min-matching average over the atomic predicates of two
// disjunctions.
func (m *Metric) dDisj(o1, o2 clauseProfile) float64 {
	if len(o1) == 0 && len(o2) == 0 {
		return 0
	}
	if len(o1) == 0 || len(o2) == 0 {
		return 1
	}
	// Separate per-side sums for exact symmetry, as in dConj.
	sum1 := 0.0
	for i := range o1 {
		best := math.Inf(1)
		for j := range o2 {
			if d := m.dPred(&o1[i], &o2[j]); d < best {
				best = d
			}
		}
		sum1 += best
	}
	sum2 := 0.0
	for j := range o2 {
		best := math.Inf(1)
		for i := range o1 {
			if d := m.dPred(&o1[i], &o2[j]); d < best {
				best = d
			}
		}
		sum2 += best
	}
	return (sum1 + sum2) / float64(len(o1)+len(o2))
}

// DPred exposes the atomic-predicate distance for tests.
func (m *Metric) DPred(p1, p2 predicate.Pred) float64 {
	pp1 := m.compilePred(p1)
	pp2 := m.compilePred(p2)
	return m.dPred(&pp1, &pp2)
}

func (m *Metric) dPred(p1, p2 *predProfile) float64 {
	if m.Mode == ModePaperLiteral && predProfilesEqual(p1, p2) {
		// The printed overlap formula is a similarity: without this rule a
		// predicate would sit a positive distance from itself (0.6 on the
		// paper's own example), and DBSCAN's density reachability assumes
		// d(p,p) = 0. Endpoint mode yields 0 for equal predicates naturally.
		return 0
	}
	switch {
	case p1.kind == kindColCol || p2.kind == kindColCol:
		return m.dPredColCol(p1, p2)
	case p1.column == p2.column:
		return m.dPredSameColumn(p1, p2)
	default:
		return m.dPredDifferentColumns(p1, p2)
	}
}

func (m *Metric) dPredColCol(p1, p2 *predProfile) float64 {
	if p1.kind != kindColCol || p2.kind != kindColCol {
		// Mixed kinds: structurally different constraints.
		if m.Mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	same := p1.column == p2.column && p1.column2 == p2.column2
	switch {
	case same && p1.op == p2.op:
		return 0
	case same:
		return 0.5
	default:
		return 1
	}
}

func (m *Metric) dPredSameColumn(p1, p2 *predProfile) float64 {
	if p1.kind != p2.kind {
		// Numeric vs string constant on the same column.
		if m.Mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	if p1.kind == kindString {
		return m.dPredCategorical(p1, p2)
	}
	// Each profile carries its own access(a) snapshot; when the registry
	// never saw the column the per-predicate hull fallback can differ
	// between the two sides, so normalising by p1's width alone made the
	// distance asymmetric. Averaging the two directions restores d(p,q) =
	// d(q,p); with shared stats (the common case) both directions are equal
	// and the average reproduces the single-direction value exactly.
	return (m.dirNumeric(p1, p2) + m.dirNumeric(p2, p1)) / 2
}

// dirNumeric is the one-directional same-column numeric d_pred, normalised
// by p1's access width.
func (m *Metric) dirNumeric(p1, p2 *predProfile) float64 {
	w := p1.accessWidth
	if w <= 0 {
		// Degenerate access range: identical constants only.
		if p1.iv.Equal(p2.iv) {
			return 0
		}
		if m.Mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	if m.Mode == ModePaperLiteral {
		// "overlap of intervals / width of access(a)".
		return p1.iv.OverlapLen(p2.iv) / w
	}
	// Endpoint metric: L∞ distance of clipped endpoints, normalised.
	d := math.Max(math.Abs(p1.iv.Lo-p2.iv.Lo), math.Abs(p1.iv.Hi-p2.iv.Hi)) / w
	if d > 1 {
		d = 1
	}
	return d
}

func (m *Metric) dPredCategorical(p1, p2 *predProfile) float64 {
	inter := 0
	for v := range p1.strSet {
		if _, ok := p2.strSet[v]; ok {
			inter++
		}
	}
	if m.Mode == ModePaperLiteral {
		// "the number of items p1 and p2 have in common" over |access(a)|,
		// averaged over the two sides' cardinalities so the distance stays
		// symmetric when their access snapshots differ.
		return (dirCategorical(inter, p1) + dirCategorical(inter, p2)) / 2
	}
	union := len(p1.strSet) + len(p2.strSet) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// dirCategorical is the one-directional literal categorical d_pred.
func dirCategorical(inter int, p *predProfile) float64 {
	if p.accessCard <= 0 {
		return 0
	}
	return float64(inter) / float64(p.accessCard)
}

// predProfilesEqual reports whether two compiled predicates denote the same
// constraint: same kind, columns and operator, and identical compiled
// geometry (clipped interval, access width and occupied fraction for
// numeric; value set and access cardinality for categorical). dPred uses it
// as the paper-literal identity rule and Kernel as an early exit; the two
// implementations must agree, so any change here needs a mirror in flat.go.
func predProfilesEqual(p1, p2 *predProfile) bool {
	if p1.kind != p2.kind || p1.column != p2.column || p1.column2 != p2.column2 ||
		p1.op != p2.op || p1.frac != p2.frac {
		return false
	}
	switch p1.kind {
	case kindNumeric:
		return p1.iv.Equal(p2.iv) && p1.accessWidth == p2.accessWidth
	case kindString:
		if p1.accessCard != p2.accessCard || len(p1.strSet) != len(p2.strSet) {
			return false
		}
		for v := range p1.strSet {
			if _, ok := p2.strSet[v]; !ok {
				return false
			}
		}
		return true
	default: // kindColCol: kind, columns and op say it all.
		return true
	}
}

func (m *Metric) dPredDifferentColumns(p1, p2 *predProfile) float64 {
	// "the proportion of the joint space of the involved columns occupied
	// by p1 and p2" (Section 5.2).
	occupied := p1.frac * p2.frac
	if m.Mode == ModePaperLiteral {
		return occupied
	}
	return 1 - occupied
}
