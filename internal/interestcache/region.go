// Package interestcache is the semantic result cache the paper's access-area
// mining motivates: mined clusters describe where in the data space users are
// interested, so the rows inside each cluster's aggregated access area are
// prefetched into per-region column stores and queries whose own access area
// is contained in a cached region are answered from the region's store
// instead of the full database (DESIGN.md §11).
package interestcache

import (
	"strings"
	"sync/atomic"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/predicate"
)

// Region is one prefetched cluster: the aggregated access area (relations,
// hyper-rectangle, categorical value lists) plus a sealed sub-database
// holding exactly the rows of the source database inside the area. The store
// is immutable after construction; hit counters are atomic so the serving
// path never takes a lock.
type Region struct {
	ID         int
	Generation int64
	Relations  []string
	Box        *interval.Box
	Categorical map[string][]string

	store *memdb.DB
	// Rows and Bytes size the prefetched column store: total row count and
	// the byte footprint of its cells (8 bytes per number, len+1 per
	// string, 1 per null — the kind tag).
	Rows  int
	Bytes int64

	hits        atomic.Int64
	bytesServed atomic.Int64
}

// newRegion prefetches the rows of db inside the cluster's aggregated access
// area into a per-region column store. The restricted view is re-materialised
// column by column into fresh row slices so the region store stays valid even
// if the source tables are later mutated.
func newRegion(db *memdb.DB, generation int64, c *aggregate.Summary) *Region {
	r := &Region{
		ID:          c.ID,
		Generation:  generation,
		Relations:   append([]string(nil), c.Relations...),
		Box:         c.Box.Clone(),
		Categorical: c.Categorical,
	}
	view := db.Restrict(r.Relations, r.Box, r.Categorical)
	r.store = memdb.New(db.Schema)
	for _, name := range view.Tables() {
		src := view.Table(name)
		cols := columnize(src)
		dst := r.store.CreateTable(src.Name, src.Columns...)
		dst.Rows = cols.rows()
		r.Rows += len(dst.Rows)
		r.Bytes += cols.bytes
	}
	return r
}

// columns is a per-table column store: one typed vector per column, cells
// addressed row-major on read-out. It exists to own the region's copy of the
// data (decoupled from the source DB) and to account bytes per cell.
type columns struct {
	kinds [][]memdb.ValueKind
	nums  [][]float64
	strs  [][]string
	n     int
	bytes int64
}

func columnize(t *memdb.Table) *columns {
	c := &columns{
		kinds: make([][]memdb.ValueKind, len(t.Columns)),
		nums:  make([][]float64, len(t.Columns)),
		strs:  make([][]string, len(t.Columns)),
		n:     len(t.Rows),
	}
	for i := range t.Columns {
		c.kinds[i] = make([]memdb.ValueKind, len(t.Rows))
		c.nums[i] = make([]float64, len(t.Rows))
		c.strs[i] = make([]string, len(t.Rows))
	}
	for ri, row := range t.Rows {
		for ci, v := range row {
			c.kinds[ci][ri] = v.Kind
			c.bytes++ // kind tag
			switch v.Kind {
			case memdb.Num:
				c.nums[ci][ri] = v.Num
				c.bytes += 8
			case memdb.Str:
				c.strs[ci][ri] = v.Str
				c.bytes += int64(len(v.Str))
			}
		}
	}
	return c
}

// rows seals the column store back into row form for the executor,
// preserving the source row order (the property that makes TOP/ORDER
// BY-free enumeration from a region a subsequence of direct enumeration).
func (c *columns) rows() [][]memdb.Value {
	out := make([][]memdb.Value, c.n)
	for ri := range out {
		row := make([]memdb.Value, len(c.kinds))
		for ci := range c.kinds {
			switch c.kinds[ci][ri] {
			case memdb.Num:
				row[ci] = memdb.N(c.nums[ci][ri])
			case memdb.Str:
				row[ci] = memdb.S(c.strs[ci][ri])
			default:
				row[ci] = memdb.NullValue()
			}
		}
		out[ri] = row
	}
	return out
}

// Contains reports whether every row the query's access area can touch is
// present in the region's store, i.e. whether the query may be answered from
// the region. The rule (DESIGN.md §11):
//
//  1. every query relation is one of the region's relations;
//  2. for each box dimension the region constrains on a relation the query
//     references, the hull of the query's projected bounds (the full
//     interval when the query leaves the column unconstrained) is contained
//     in the region's interval;
//  3. for each categorical column the region pins on a referenced relation,
//     the query must pin the column to a subset of the region's values
//     (case-insensitively, mirroring evaluation).
//
// Dimensions on relations the query never reads are irrelevant: the
// restriction they induce removes rows of other tables only.
func (r *Region) Contains(area *extract.AccessArea) bool {
	for _, rel := range area.Relations {
		if !containsFold(r.Relations, rel) {
			return false
		}
	}
	bounds := area.Bounds()
	for _, dim := range r.Box.Dims() {
		rel, _, ok := splitQualified(dim)
		if !ok || !containsFold(area.Relations, rel) {
			continue
		}
		q := interval.Full()
		if set, ok := bounds[dim]; ok {
			q = set.Hull()
		}
		if !r.Box.Get(dim).ContainsInterval(q) {
			return false
		}
	}
	if len(r.Categorical) > 0 {
		strBounds := predicate.StringBounds(area.CNF)
		for col, regionVals := range r.Categorical {
			rel, _, ok := splitQualified(col)
			if !ok || !containsFold(area.Relations, rel) {
				continue
			}
			queryVals, ok := strBounds[col]
			if !ok {
				return false
			}
			for _, v := range queryVals {
				if !containsFold(regionVals, v) {
					return false
				}
			}
		}
	}
	return true
}

// Hits and BytesServed expose the per-region serving counters.
func (r *Region) Hits() int64        { return r.hits.Load() }
func (r *Region) BytesServed() int64 { return r.bytesServed.Load() }

func containsFold(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}

func splitQualified(name string) (rel, col string, ok bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return "", name, false
	}
	return name[:i], name[i+1:], true
}
