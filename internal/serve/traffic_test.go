package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/skyserver"
	"repro/internal/traffic"
)

// taggedRecords spreads the synthetic workload across the three classes by
// explicit tags, so the class of every record is known ground truth.
func taggedRecords(n int, seed int64) []qlog.Record {
	recs := synthRecords(n, seed)
	for i := range recs {
		recs[i].Class = traffic.Classes[i%3]
	}
	return recs
}

func flushServer(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
}

// The partition gate: each class's served report must be byte-for-byte what
// a batch mine of that class's records produces — with the registry and
// template evolution of the FULL workload, which is what the server sees
// (the per-class miners partition one shared extraction stream).
func TestTrafficPartitionIdentity(t *testing.T) {
	db := testDB()
	recs := taggedRecords(2000, 42)

	// Reference: one pipeline pass over the whole workload, each class's
	// areas fed to a private incremental miner in stream order.
	m := core.NewMiner(minerConfig(db))
	pipe := &qlog.Pipeline{Extractor: &extract.Extractor{Schema: skyserver.Schema(), Stats: m.Stats()}}
	areaRecs, _ := pipe.Run(recs)
	classTotal := make(map[string]int)
	for i := range recs {
		classTotal[recs[i].Class]++
	}
	want := make(map[string][]byte)
	for _, cls := range traffic.Classes {
		inc := m.Incremental()
		extracted := 0
		for i := range areaRecs {
			if areaRecs[i].Record.Class == cls {
				inc.Add(&areaRecs[i])
				extracted++
			}
		}
		res := inc.Recluster()
		res.PipelineStats = &qlog.Stats{Total: classTotal[cls], Extracted: extracted}
		res.AttachCoverage(db)
		var buf bytes.Buffer
		if err := report.Write(&buf, res, report.JSON, report.Options{Coverage: true}); err != nil {
			t.Fatal(err)
		}
		want[cls] = buf.Bytes()
	}

	s, err := NewServer(Config{Miner: minerConfig(db), Coverage: db, BatchSize: 64, Traffic: &traffic.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for lo := 0; lo < len(recs); lo += 250 {
		hi := lo + 250
		if hi > len(recs) {
			hi = len(recs)
		}
		postNDJSON(t, ts.URL, recs[lo:hi])
	}
	flushServer(t, ts.URL)

	sawClusters := false
	for _, cls := range traffic.Classes {
		code, hdr, got := get(t, ts.URL+"/report?class="+cls+"&format=json", "")
		if code != http.StatusOK {
			t.Fatalf("class %s report status %d: %s", cls, code, got)
		}
		if etag := hdr.Get("ETag"); etag == "" {
			t.Errorf("class %s report has no ETag", cls)
		}
		if !bytes.Equal(got, want[cls]) {
			t.Errorf("class %s report diverged from batch partition:\n got: %s\nwant: %s", cls, got, want[cls])
		}
		if bytes.Contains(got, []byte(`"id"`)) {
			sawClusters = true
		}
	}
	if !sawClusters {
		t.Fatal("no class produced any cluster — the partition gate tested nothing")
	}

	// The classless report must be exactly what a traffic-off server (and
	// hence the batch miner) serves: per-class mining is a pure addition.
	batch := core.NewMiner(minerConfig(db)).MineRecords(recs)
	batch.AttachCoverage(db)
	var wantGlobal bytes.Buffer
	if err := report.Write(&wantGlobal, batch, report.JSON, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	code, _, got := get(t, ts.URL+"/report?format=json", "")
	if code != http.StatusOK {
		t.Fatalf("global report status %d", code)
	}
	if !bytes.Equal(got, wantGlobal.Bytes()) {
		t.Errorf("classless report changed with traffic mining on:\n got: %s\nwant: %s", got, wantGlobal.Bytes())
	}
}

// A class query against a traffic-off server is a 409; an unknown class a
// 400; /drift and /interfaces mirror the 409.
func TestTrafficDisabledAndBadClass(t *testing.T) {
	db := testDB()
	off, err := NewServer(Config{Miner: minerConfig(db)})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	for _, path := range []string{"/report?class=bot", "/drift", "/interfaces"} {
		if code, _, _ := get(t, tsOff.URL+path, ""); code != http.StatusConflict {
			t.Errorf("GET %s on traffic-off server: status %d, want 409", path, code)
		}
	}

	on, err := NewServer(Config{Miner: minerConfig(db), Traffic: &traffic.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	for _, path := range []string{"/report?class=robot", "/drift?class=robot"} {
		if code, _, _ := get(t, tsOn.URL+path, ""); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
	}
}

// driftBody fetches /drift and fails the test on a non-200.
func driftBody(t *testing.T, url string) []byte {
	t.Helper()
	code, _, body := get(t, url+"/drift", "")
	if code != http.StatusOK {
		t.Fatalf("drift status %d: %s", code, body)
	}
	return body
}

// runDriftScript ingests the workload in two halves with a flush after
// each, returning the final /drift body — the determinism gate replays it
// twice and compares bytes.
func runDriftScript(t *testing.T, cfg Config, recs []qlog.Record) []byte {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	half := len(recs) / 2
	for lo := 0; lo < half; lo += 173 {
		hi := lo + 173
		if hi > half {
			hi = half
		}
		postNDJSON(t, ts.URL, recs[lo:hi])
	}
	flushServer(t, ts.URL)
	for lo := half; lo < len(recs); lo += 97 {
		hi := lo + 97
		if hi > len(recs) {
			hi = len(recs)
		}
		postNDJSON(t, ts.URL, recs[lo:hi])
	}
	flushServer(t, ts.URL)
	return driftBody(t, ts.URL)
}

// The drift determinism gate: the same workload, ingested twice through the
// same flush script (but different burst sizes are exercised by the two
// halves), emits byte-identical /drift logs.
func TestTrafficDriftDeterministic(t *testing.T) {
	db := testDB()
	recs := taggedRecords(1600, 7)
	mk := func() Config {
		return Config{Miner: minerConfig(db), BatchSize: 64, Traffic: &traffic.Config{}}
	}
	a := runDriftScript(t, mk(), recs)
	b := runDriftScript(t, mk(), recs)
	if !bytes.Equal(a, b) {
		t.Fatalf("drift logs diverged between identical runs:\n a: %s\n b: %s", a, b)
	}
	if bytes.Contains(a, []byte(`"count": 0`)) || !bytes.Contains(a, []byte(`"appeared"`)) {
		t.Fatalf("drift log is trivial — the determinism gate tested nothing: %s", a)
	}
}

// /interfaces renders the hottest templates with slot bindings and observed
// ranges, and explicit class tags survive ingest (the classifier observes
// but does not override them).
func TestTrafficInterfacesAndCounts(t *testing.T) {
	db := testDB()
	recs := taggedRecords(900, 11)
	s, err := NewServer(Config{Miner: minerConfig(db), Traffic: &traffic.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postNDJSON(t, ts.URL, recs)
	flushServer(t, ts.URL)

	code, _, body := get(t, ts.URL+"/interfaces?top=5", "")
	if code != http.StatusOK {
		t.Fatalf("interfaces status %d: %s", code, body)
	}
	for _, needle := range []string{`"fingerprint"`, `"skeleton"`, `"hits"`} {
		if !bytes.Contains(body, []byte(needle)) {
			t.Errorf("interfaces body lacks %s: %s", needle, body)
		}
	}
	if code, _, _ := get(t, ts.URL+"/interfaces?top=0", ""); code != http.StatusBadRequest {
		t.Errorf("interfaces top=0 status %d, want 400", code)
	}

	// Per-class record counters partition the processed count exactly.
	code, _, metricsBody := get(t, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	var flat map[string]any
	if err := json.Unmarshal(metricsBody, &flat); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cls := range traffic.Classes {
		v, ok := flat["traffic_"+cls+"_records"].(float64)
		if !ok {
			t.Fatalf("metrics lack traffic_%s_records: %s", cls, metricsBody)
		}
		sum += v
	}
	if int(sum) != len(recs) {
		t.Errorf("class record counts sum to %d, want %d", int(sum), len(recs))
	}
}

// Snapshot round-trip: class reports, drift state and the interface miner
// survive a Close + reopen, and the restarted server's class reports are
// byte-identical to the pre-restart ones.
func TestTrafficSnapshotRestart(t *testing.T) {
	db := testDB()
	recs := taggedRecords(1200, 23)
	dir := t.TempDir()
	cfg := func() Config {
		return Config{
			Miner:        minerConfig(db),
			BatchSize:    64,
			SnapshotPath: filepath.Join(dir, "snap.json"),
			Traffic:      &traffic.Config{},
		}
	}

	s, err := NewServer(cfg())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	postNDJSON(t, ts.URL, recs)
	flushServer(t, ts.URL)
	before := make(map[string][]byte)
	for _, cls := range traffic.Classes {
		code, _, body := get(t, ts.URL+"/report?class="+cls+"&format=json", "")
		if code != http.StatusOK {
			t.Fatalf("pre-restart class %s report status %d", cls, code)
		}
		before[cls] = body
	}
	driftBefore := driftBody(t, ts.URL)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for _, cls := range traffic.Classes {
		code, _, body := get(t, ts2.URL+"/report?class="+cls+"&format=json", "")
		if code != http.StatusOK {
			t.Fatalf("post-restart class %s report status %d", cls, code)
		}
		if !bytes.Equal(body, before[cls]) {
			t.Errorf("class %s report changed across restart:\n got: %s\nwant: %s", cls, body, before[cls])
		}
	}
	if got := driftBody(t, ts2.URL); !bytes.Equal(got, driftBefore) {
		t.Errorf("drift log changed across restart:\n got: %s\nwant: %s", got, driftBefore)
	}
	if code, _, body := get(t, ts2.URL+"/interfaces", ""); code != http.StatusOK || !bytes.Contains(body, []byte(`"fingerprint"`)) {
		t.Errorf("post-restart interfaces status %d body %s", code, body)
	}
}
