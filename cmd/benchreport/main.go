// Command benchreport regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic SkyServer substrate and prints a
// paper-vs-measured comparison. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	benchreport [-scale 20000] [-seed 42] [-exp all|list|<experiment>]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// `-exp list` prints the available experiments with one-line descriptions.
// The clusterperf experiment additionally writes its before/after numbers
// (brute-force vs pivot-index clustering) to -benchjson (default
// BENCH_clustering.json), pipelineperf writes its uncached-vs-cached
// extraction numbers to -pipejson (default BENCH_pipeline.json), serveperf
// writes the online-service load numbers (throughput, backpressure latency,
// cross-epoch reuse) to -servejson (default BENCH_serve.json), and
// semcacheperf writes the semantic-result-cache numbers (hit ratio, speedup,
// staleness window) to -semjson (default BENCH_semcache.json), so successive
// changes have a perf trajectory. -cpuprofile/-memprofile capture stdlib
// pprof profiles of the selected experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// experiment pairs a selectable id with a one-line description (shown by
// `-exp list`) and the closure that runs it and returns its report.
type experiment struct {
	name string
	desc string
	fn   func() string
}

func listExperiments(w *os.File, exps []experiment) {
	fmt.Fprintln(w, "available experiments (select with -exp <name>, or -exp all):")
	for _, e := range exps {
		fmt.Fprintf(w, "  %-14s %s\n", e.name, e.desc)
	}
}

// run is main's body with a plain exit code so deferred profile writers run
// before the process exits.
func run() int {
	scale := flag.Int("scale", 20000, "number of log queries to generate")
	seed := flag.Int64("seed", 42, "generator seed")
	exp := flag.String("exp", "all", "experiment id, \"all\", or \"list\" to enumerate them")
	benchJSON := flag.String("benchjson", "BENCH_clustering.json", "output path for the clusterperf JSON record")
	pipeJSON := flag.String("pipejson", "BENCH_pipeline.json", "output path for the pipelineperf JSON record")
	serveJSON := flag.String("servejson", "BENCH_serve.json", "output path for the serveperf JSON record")
	semJSON := flag.String("semjson", "BENCH_semcache.json", "output path for the semcacheperf JSON record")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()

	writeJSON := func(path string, v any) {
		if data, err := json.MarshalIndent(v, "", "  "); err == nil {
			if werr := os.WriteFile(path, append(data, '\n'), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}

	// The substrate is built lazily so `-exp list` and unknown-id errors
	// stay instant instead of generating a 20k-query log first.
	var env *experiments.Env
	getEnv := func() *experiments.Env {
		if env == nil {
			env = experiments.NewEnv(*scale, *seed)
		}
		return env
	}

	semcacheFailed := false
	exps := []experiment{
		{"table1", "paper Table 1: per-template access-area extraction accuracy",
			func() string { return getEnv().RunTable1().Report }},
		{"fig1a", "paper Figure 1a: cluster count vs minPts",
			func() string { return getEnv().RunFigure1('a').Report }},
		{"fig1b", "paper Figure 1b: cluster count vs epsilon",
			func() string { return getEnv().RunFigure1('b').Report }},
		{"fig1c", "paper Figure 1c: clustered-query fraction vs epsilon",
			func() string { return getEnv().RunFigure1('c').Report }},
		{"coverage", "share of the log covered by mined interest areas",
			func() string { return getEnv().RunCoverage().Report }},
		{"olapclus", "OLAP-style rollup over exact extracted areas",
			func() string { return getEnv().RunOLAPClusExact().Report }},
		{"olapclusraw", "OLAP-style rollup over raw (unfiltered) areas",
			func() string { return getEnv().RunOLAPClusRaw().Report }},
		{"efficiency", "extraction + clustering wall-clock efficiency",
			func() string { return getEnv().RunEfficiency().Report }},
		{"requery", "re-query rate: how often users revisit mined areas",
			func() string { return getEnv().RunRequery().Report }},
		{"ablation", "pipeline ablation: drop one stage at a time",
			func() string { return getEnv().RunAblation().Report }},
		{"ablationsigma", "sigma-expansion ablation for approximate areas",
			func() string { return getEnv().RunAblationSigma().Report }},
		{"density", "cluster density profile across the data space",
			func() string { return getEnv().RunDensity().Report }},
		{"scaling", "mining throughput as the log scale grows",
			func() string { return getEnv().RunScaling().Report }},
		{"clusterperf", "brute-force vs pivot-index clustering benchmark (writes -benchjson)",
			func() string {
				res := getEnv().RunClusterPerf()
				writeJSON(*benchJSON, res)
				return res.Report
			}},
		{"pipelineperf", "uncached vs template-cached extraction benchmark (writes -pipejson)",
			func() string {
				res := getEnv().RunPipelinePerf()
				writeJSON(*pipeJSON, res)
				return res.Report
			}},
		{"serveperf", "online-service load benchmark: throughput, backpressure, reuse (writes -servejson)",
			func() string {
				res := getEnv().RunServePerf()
				writeJSON(*serveJSON, res)
				return res.Report
			}},
		{"semcacheperf", "semantic result cache: oracle, hit ratio, speedup, staleness (writes -semjson)",
			func() string {
				res, err := experiments.RunSemCachePerf(*scale, *seed)
				if err != nil {
					semcacheFailed = true
					return fmt.Sprintf("semcacheperf: %v\n", err)
				}
				writeJSON(*semJSON, res)
				return res.Report
			}},
	}

	want := strings.ToLower(*exp)
	if want == "list" {
		listExperiments(os.Stdout, exps)
		return 0
	}
	known := want == "all"
	for _, e := range exps {
		if e.name == want {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", *exp)
		listExperiments(os.Stderr, exps)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	for _, e := range exps {
		if want != "all" && want != e.name {
			continue
		}
		fmt.Println(strings.Repeat("=", 100))
		fmt.Print(e.fn())
		fmt.Println()
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 2
		}
	}
	if semcacheFailed {
		return 1
	}
	return 0
}
