package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/aggregate"
	"repro/internal/interval"
)

// splitDimOf picks the axis a region split bisects: the widest dimension of
// the cluster's box with finite endpoints on both sides. Returns "" when no
// dimension qualifies (point boxes, half-open boxes, categorical-only
// clusters).
func splitDimOf(c *aggregate.Summary) string {
	best, bestW := "", 0.0
	for _, d := range c.Box.Dims() {
		iv := c.Box.Get(d)
		if math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
			continue
		}
		if w := iv.Hi - iv.Lo; w > bestW {
			best, bestW = d, w
		}
	}
	return best
}

// closeFinite drops openness on finite endpoints. The split halves use the
// closed hull of every non-split dimension so that a closed query interval
// equal to the original bound still tests as contained; a region box may
// only grow — prefetching extra boundary rows is sound, serving is still
// containment-proven per query.
func closeFinite(iv interval.Interval) interval.Interval {
	if !math.IsInf(iv.Lo, 0) {
		iv.LoOpen = false
	}
	if !math.IsInf(iv.Hi, 0) {
		iv.HiOpen = false
	}
	return iv
}

// SplitClusters replaces every splittable cluster with two half-regions
// that partition its box at the midpoint of the widest finite dimension:
// the low half closes at mid, the high half opens there, so together they
// tile the original box exactly and their row sets are position-disjoint.
// Unsplittable clusters pass through unchanged. The result is a region set
// on which queries that used to be single-region hits become covering-set
// material — the deterministic workload for the composed and
// partial-aggregate paths. Half IDs are 100·ID+1 (low) and 100·ID+2 (high)
// so provenance stays readable in metrics.
func SplitClusters(clusters []*aggregate.Summary) []*aggregate.Summary {
	out := make([]*aggregate.Summary, 0, 2*len(clusters))
	for _, c := range clusters {
		d := splitDimOf(c)
		if d == "" {
			out = append(out, c)
			continue
		}
		iv := c.Box.Get(d)
		mid := iv.Lo + (iv.Hi-iv.Lo)/2
		if !(mid > iv.Lo && mid < iv.Hi) {
			out = append(out, c)
			continue
		}
		half := func(id int, div interval.Interval) *aggregate.Summary {
			h := *c
			h.ID = id
			h.Box = interval.NewBox()
			for _, dim := range c.Box.Dims() {
				h.Box.Set(dim, closeFinite(c.Box.Get(dim)))
			}
			h.Box.Set(d, div)
			return &h
		}
		out = append(out,
			half(100*c.ID+1, interval.Closed(iv.Lo, mid)),
			half(100*c.ID+2, interval.Interval{Lo: mid, LoOpen: true, Hi: iv.Hi}),
		)
	}
	return out
}

// AggProbes derives deterministic aggregate statements from the mined
// clusters — the safeShape-rejected HAVING class the aggregate path serves.
// Each probe groups a splittable single-relation numeric cluster by its
// split column over the cluster's full box, so against the split region set
// it needs both halves (partial-aggregate combine) and against the original
// set it fits one region (full aggregate pushdown):
//
//	SELECT c, COUNT(*), MIN(c), MAX(c) FROM R
//	WHERE <closed conjunction over every box dim> GROUP BY c
//	HAVING COUNT(*) >= 1
//
// Clusters with categorical pins, multiple relations, or any infinite box
// endpoint are skipped: the combine gates exclude them by design.
func AggProbes(clusters []*aggregate.Summary) []string {
	var probes []string
	for _, c := range clusters {
		if len(c.Relations) != 1 || len(c.Categorical) > 0 {
			continue
		}
		d := splitDimOf(c)
		if d == "" {
			continue
		}
		rel := c.Relations[0]
		ok := true
		var conj []string
		for _, dim := range c.Box.Dims() {
			r, col, found := strings.Cut(dim, ".")
			if !found || r != rel {
				ok = false
				break
			}
			iv := c.Box.Get(dim)
			if math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
				ok = false
				break
			}
			conj = append(conj, fmt.Sprintf("%s >= %s AND %s <= %s",
				col, sqlNum(iv.Lo), col, sqlNum(iv.Hi)))
		}
		if !ok || len(conj) == 0 {
			continue
		}
		_, gcol, _ := strings.Cut(d, ".")
		probes = append(probes, fmt.Sprintf(
			"SELECT %s, COUNT(*), MIN(%s), MAX(%s) FROM %s WHERE %s GROUP BY %s HAVING COUNT(*) >= 1",
			gcol, gcol, gcol, rel, strings.Join(conj, " AND "), gcol))
	}
	return probes
}

// sqlNum renders a float64 as a plain decimal SQL literal (no exponent —
// 'f' with -1 precision is the shortest decimal that round-trips, so the
// parsed constant is bit-identical to the box endpoint).
func sqlNum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
