// Emptyareas: the paper's headline insight — users query parts of the data
// space where no data exists, and only log-side extraction can see that.
// This example compares our extraction against the re-querying baseline on
// queries aimed at empty regions (the clusters 18-24 phenomenon), including
// the zooSpec.dec = -100 anomaly the paper's astronomer flagged as a
// data-quality hint (Section 6.3).
package main

import (
	"fmt"

	skyaccess "repro"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/requery"
)

func main() {
	db := skyaccess.SkyServerDatabase(1500, 1)
	schema := skyaccess.SkyServerSchema()
	ex := skyaccess.NewExtractor(schema)

	emptyAreaQueries := []qlog.Record{
		// Cluster 18: southern sky photometry that DR9 never imaged.
		{Seq: 0, User: "u1", SQL: "SELECT ra, dec FROM PhotoObjAll WHERE ra BETWEEN 10 AND 120 AND dec BETWEEN -90 AND -50"},
		// Cluster 22: zooSpec with the impossible dec = -100 lower bound.
		{Seq: 1, User: "u2", SQL: "SELECT * FROM zooSpec WHERE ra BETWEEN 6 AND 115 AND dec BETWEEN -100 AND -15"},
		// Cluster 23: negative photometric redshifts outside the content.
		{Seq: 2, User: "u3", SQL: "SELECT objid FROM Photoz WHERE z >= -0.98 AND z <= -0.3"},
		// Cluster 24: redshifts beyond the survey's reach.
		{Seq: 3, User: "u4", SQL: "SELECT objid FROM Photoz WHERE z >= 3.0 AND z <= 6.5"},
	}

	fmt.Println("— log-side extraction (our method) —")
	for _, rec := range emptyAreaQueries {
		area, err := ex.ExtractSQL(rec.SQL)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		fmt.Printf("  %s\n", area)
	}

	fmt.Println("\n— re-querying baseline (Option (a) of Section 2.2) —")
	base := &requery.Baseline{DB: db, StrictTSQL: true, RateLimiter: memdb.NewRateLimiter(60)}
	res := base.Run(emptyAreaQueries)
	fmt.Printf("  areas recovered: %d of %d\n", res.Processed(), len(emptyAreaQueries))
	fmt.Printf("  empty result sets (intent lost): %d\n", res.EmptyResults)

	// Check the content against the queried region to show WHY: dec never
	// goes below the survey's footprint.
	if iv, ok := db.ContentInterval("PhotoObjAll.dec"); ok {
		fmt.Printf("\ncontent(PhotoObjAll.dec) = %s — the queried [-90, -50] band holds no data,\n", iv)
		fmt.Println("yet thousands of users asked for it: an interest signal only the log reveals.")
	}
	if iv, ok := db.ContentInterval("zooSpec.dec"); ok {
		fmt.Printf("content(zooSpec.dec) = %s — queries with dec >= -100 also hint the column's\n", iv)
		fmt.Println("documentation/range definition could be tightened (a declination cannot be -100).")
	}
}
