package aggregate

import (
	"strings"

	"repro/internal/interval"
)

// DataSource supplies the database-content geometry needed for the coverage
// statistics of Table 1. It is implemented by the in-memory database
// substrate; the paper obtained the same numbers by sampling SkyServer.
type DataSource interface {
	// ContentInterval returns content(a) for a numeric column.
	ContentInterval(column string) (interval.Interval, bool)
	// ContentValues returns the content value set of a categorical column.
	ContentValues(column string) ([]string, bool)
	// ObjectFraction returns n_access / n_content: the fraction of the
	// objects of the given relations falling inside box and matching the
	// categorical equalities. For multi-relation areas the fraction refers
	// to the universal relation (product space).
	ObjectFraction(relations []string, box *interval.Box, categorical map[string][]string) float64
}

// ComputeCoverage fills AreaCoverage (v_access / v_content) and
// ObjectCoverage (n_access / n_content) per Section 6.2.
func (s *Summary) ComputeCoverage(src DataSource) {
	area := 1.0
	constrained := false
	for _, col := range s.Box.Dims() {
		content, ok := src.ContentInterval(col)
		if !ok || content.IsEmpty() {
			continue
		}
		constrained = true
		inter := s.Box.Get(col).Intersect(content)
		if inter.IsEmpty() {
			area = 0
			break
		}
		if w := content.Width(); w > 0 {
			area *= inter.Width() / w
		}
	}
	if area != 0 {
		for col, vals := range s.Categorical {
			contentVals, ok := src.ContentValues(col)
			if !ok || len(contentVals) == 0 {
				continue
			}
			constrained = true
			// SkyServer's SQL Server collation is case-insensitive, so
			// 'star' matches content value 'STAR'.
			contentSet := make(map[string]struct{}, len(contentVals))
			for _, v := range contentVals {
				contentSet[strings.ToUpper(v)] = struct{}{}
			}
			// Both sides of the ratio count case-folded DISTINCT values: the
			// old raw len(contentVals) divisor understated coverage when
			// content values differed only by case.
			matched := make(map[string]struct{})
			for _, v := range vals {
				u := strings.ToUpper(v)
				if _, ok := contentSet[u]; ok {
					matched[u] = struct{}{}
				}
			}
			if len(matched) == 0 {
				area = 0
				break
			}
			area *= float64(len(matched)) / float64(len(contentSet))
		}
	}
	if !constrained {
		area = 1
	}
	s.AreaCoverage = area
	s.ObjectCoverage = src.ObjectFraction(s.Relations, s.Box, s.Categorical)
}
