package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/qlog"
)

// ClusterPerfRun is one clustering pass of the perf harness.
type ClusterPerfRun struct {
	Backend        string  `json:"backend"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	DistanceEvals  int64   `json:"distance_evals"`
	CacheHits      int64   `json:"cache_hits"`
	Clusters       int     `json:"clusters"`
	NoiseQueries   int     `json:"noise_queries"`
	ClusteredAreas int     `json:"clustered_areas"`
}

// ClusterPerfResult is the outcome of the clustering perf experiment: the
// same Table-1 workload mined brute-force ("before") and through the LAESA
// pivot index ("after"), with the distance-evaluation counts from the
// shared memoizing cache. cmd/benchreport serialises it to
// BENCH_clustering.json so successive PRs have a perf trajectory.
type ClusterPerfResult struct {
	Queries           int            `json:"queries"`
	Seed              int64          `json:"seed"`
	DistinctAreas     int            `json:"distinct_areas"`
	Eps               float64        `json:"eps"`
	MinPts            int            `json:"min_pts"`
	Brute             ClusterPerfRun `json:"before_brute_force"`
	Pivot             ClusterPerfRun `json:"after_pivot_index"`
	EvalRatio         float64        `json:"eval_ratio"` // brute evals / pivot evals
	SpeedupX          float64        `json:"speedup_x"`
	IdenticalClusters bool           `json:"identical_clusters"`
	// Kernel is the flat-SoA-vs-pointer distance microbenchmark over this
	// workload's real distinct areas (same shape as the kernelperf scales).
	Kernel *KernelPerfScale `json:"kernelperf,omitempty"`
	Report string           `json:"-"`
}

// RunClusterPerf executes the clustering perf comparison: one shared
// extraction pass, then two full mining runs over the identical areas —
// pivot index off (the seed behaviour) and on (the default) — verifying
// the aggregated output is identical and measuring how many distance
// evaluations the pivot pruning avoids.
func (e *Env) RunClusterPerf() *ClusterPerfResult {
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	pipeline := &qlog.Pipeline{Extractor: ex}
	areas, _ := pipeline.Run(e.Records)

	run := func(backend string, disable bool) (ClusterPerfRun, *core.Result) {
		m := core.NewMiner(core.Config{
			Schema: e.Schema, Stats: e.Stats, Seed: e.Seed,
			DisablePivotIndex: disable,
		})
		t0 := time.Now()
		res := m.MineAreas(areas)
		elapsed := time.Since(t0)
		return ClusterPerfRun{
			Backend:        backend,
			ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
			DistanceEvals:  res.DistanceEvals,
			CacheHits:      res.DistanceCacheHits,
			Clusters:       len(res.Clusters),
			NoiseQueries:   res.NoiseQueries,
			ClusteredAreas: res.ClusteredAreas,
		}, res
	}
	brute, bruteRes := run("brute-force", true)
	pivot, pivotRes := run("pivot-index", false)

	out := &ClusterPerfResult{
		Queries: e.Scale, Seed: e.Seed,
		DistinctAreas: bruteRes.DistinctAreas,
		Eps:           bruteRes.ChosenEps, MinPts: 8,
		Brute: brute, Pivot: pivot,
		IdenticalClusters: sameClusters(bruteRes, pivotRes),
	}
	if pivot.DistanceEvals > 0 {
		out.EvalRatio = float64(brute.DistanceEvals) / float64(pivot.DistanceEvals)
	}
	if pivot.ElapsedMS > 0 {
		out.SpeedupX = brute.ElapsedMS / pivot.ElapsedMS
	}

	// The same distinct areas the miner clustered, through the distance
	// microbenchmark: evals/sec and early-exit rate on real workload shapes.
	seen := make(map[string]struct{}, len(areas))
	var distinct []*extract.AccessArea
	for i := range areas {
		a := areas[i].Area
		if a.IsEmpty() {
			continue
		}
		key := a.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		distinct = append(distinct, a)
	}
	out.Kernel = benchKernelAreas(distance.ModeEndpoint, e.Stats, distinct, kernelPairBudget, e.Seed)

	var b strings.Builder
	fmt.Fprintf(&b, "Clustering perf — pivot-index region queries vs brute force (%d queries, %d distinct areas)\n",
		out.Queries, out.DistinctAreas)
	row := func(r ClusterPerfRun) {
		fmt.Fprintf(&b, "  %-12s %10.1f ms   %12d dist evals   %12d cache hits   %4d clusters   %6d noise\n",
			r.Backend, r.ElapsedMS, r.DistanceEvals, r.CacheHits, r.Clusters, r.NoiseQueries)
	}
	row(brute)
	row(pivot)
	fmt.Fprintf(&b, "distance evaluations: %.2fx fewer with pivots; wall clock: %.2fx; identical clusters: %v\n",
		out.EvalRatio, out.SpeedupX, out.IdenticalClusters)
	fmt.Fprintf(&b, "flat kernel over the %d mined areas: %.0f evals/s vs %.0f pointer (%.2fx, early-exit %.4f, identical %v)\n",
		out.Kernel.Areas, out.Kernel.Flat.EvalsPerSec, out.Kernel.Pointer.EvalsPerSec,
		out.Kernel.SpeedupX, out.Kernel.EarlyExitRatio, out.Kernel.IdenticalDistances)
	out.Report = b.String()
	return out
}

// sameClusters reports whether two mining runs produced the same aggregated
// clusters (cardinality, expression, noise) — the end-to-end equivalence
// the pivot index must preserve.
func sameClusters(a, b *core.Result) bool {
	if len(a.Clusters) != len(b.Clusters) || a.NoiseQueries != b.NoiseQueries {
		return false
	}
	for i := range a.Clusters {
		if a.Clusters[i].Cardinality != b.Clusters[i].Cardinality ||
			a.Clusters[i].Expr() != b.Clusters[i].Expr() {
			return false
		}
	}
	return true
}
