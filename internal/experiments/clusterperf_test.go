package experiments

import (
	"testing"

	"repro/internal/dbscan"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/qlog"
)

// table1Items extracts and deduplicates the env's Table-1 workload into
// profiles + weights in ModeEndpoint, the shape the miner clusters.
func table1Items(t *testing.T, e *Env) ([]*distance.Profile, []int, *distance.Metric) {
	t.Helper()
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	pipeline := &qlog.Pipeline{Extractor: ex}
	areas, _ := pipeline.Run(e.Records)
	type item struct {
		area   *extract.AccessArea
		weight int
	}
	byKey := map[string]*item{}
	var order []*item
	for i := range areas {
		ar := &areas[i]
		if ar.Area.IsEmpty() {
			continue
		}
		k := ar.Area.Key()
		it, ok := byKey[k]
		if !ok {
			it = &item{area: ar.Area}
			byKey[k] = it
			order = append(order, it)
		}
		it.weight++
	}
	metric := &distance.Metric{Mode: distance.ModeEndpoint, Stats: e.Stats}
	profiles := make([]*distance.Profile, len(order))
	weights := make([]int, len(order))
	for i, it := range order {
		profiles[i] = metric.Profile(it.area)
		weights[i] = it.weight
	}
	return profiles, weights, metric
}

// TestPivotLabelsIdenticalOnTable1Workload is the pivot-index equivalence
// guard: on the Table-1 workload in ModeEndpoint, pivot-pruned DBSCAN must
// produce labels IDENTICAL to the brute-force scan — not merely the same
// partition — because both visit candidates in ascending order and the
// pruning must be lossless for a metric distance.
func TestPivotLabelsIdenticalOnTable1Workload(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering test")
	}
	env := NewEnv(3000, 42)
	profiles, weights, metric := table1Items(t, env)
	n := len(profiles)
	if n < 200 {
		t.Fatalf("only %d distinct areas extracted", n)
	}
	dist := func(i, j int) float64 { return metric.ProfileDistance(profiles[i], profiles[j]) }
	cfg := dbscan.Config{Eps: 0.06, MinPts: 8, Weights: weights}
	brute := dbscan.Cluster(n, dist, cfg)
	pivoted := dbscan.ClusterWithPivots(n, dist, cfg, 8)
	if brute.NumClusters != pivoted.NumClusters {
		t.Fatalf("cluster counts: brute %d vs pivoted %d", brute.NumClusters, pivoted.NumClusters)
	}
	for i := range brute.Labels {
		if brute.Labels[i] != pivoted.Labels[i] {
			t.Fatalf("label %d: brute %d vs pivoted %d", i, brute.Labels[i], pivoted.Labels[i])
		}
	}
}

// TestOPTICSWeightedAgreesWithDBSCAN checks the weighted OPTICS backend
// against weighted DBSCAN on the default mix: same noise set and the same
// cluster partition up to renumbering (OPTICS orders clusters by
// reachability traversal, DBSCAN by seed index).
func TestOPTICSWeightedAgreesWithDBSCAN(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering test")
	}
	env := NewEnv(3000, 42)
	profiles, weights, metric := table1Items(t, env)
	n := len(profiles)
	dist := func(i, j int) float64 { return metric.ProfileDistance(profiles[i], profiles[j]) }
	eps, minPts := 0.06, 8
	direct := dbscan.Cluster(n, dist, dbscan.Config{Eps: eps, MinPts: minPts, Weights: weights})
	o := dbscan.RunOPTICS(n, dist, 2*eps, minPts, weights)
	viaOptics := o.ExtractDBSCAN(eps)

	if direct.NumClusters != viaOptics.NumClusters {
		t.Fatalf("cluster counts: dbscan %d vs optics %d", direct.NumClusters, viaOptics.NumClusters)
	}
	// Same labels up to renumbering: the label mapping must be a bijection
	// and noise must map to noise.
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range direct.Labels {
		a, b := direct.Labels[i], viaOptics.Labels[i]
		if (a == dbscan.Noise) != (b == dbscan.Noise) {
			t.Fatalf("point %d: noise status dbscan %d vs optics %d", i, a, b)
		}
		if a == dbscan.Noise {
			continue
		}
		if prev, ok := fwd[a]; ok && prev != b {
			t.Fatalf("dbscan cluster %d split by optics: %d and %d", a, prev, b)
		}
		if prev, ok := rev[b]; ok && prev != a {
			t.Fatalf("optics cluster %d merges dbscan clusters %d and %d", b, prev, a)
		}
		fwd[a] = b
		rev[b] = a
	}
}

func TestRunClusterPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := NewEnv(2500, 42).RunClusterPerf()
	if !res.IdenticalClusters {
		t.Fatal("pivot-index mining changed the aggregated clusters")
	}
	if res.Brute.DistanceEvals <= res.Pivot.DistanceEvals {
		t.Errorf("pivot evals %d not below brute %d", res.Pivot.DistanceEvals, res.Brute.DistanceEvals)
	}
	// The acceptance bar is ≥2× at the 20k benchmark scale; the ratio is
	// scale-stable (≈3× here and at 20k), so enforce it in-test too.
	if res.EvalRatio < 2.0 {
		t.Errorf("eval ratio = %.2f, want ≥2x fewer evaluations with the pivot index + cache", res.EvalRatio)
	}
	if res.Brute.CacheHits != 0 {
		t.Errorf("brute baseline memoized (%d hits); it must reproduce the pre-index evaluation pattern", res.Brute.CacheHits)
	}
	if res.Pivot.CacheHits == 0 {
		t.Error("pivot mode reported no cache hits; partition memoization is not wired")
	}
	if res.Pivot.Clusters == 0 || res.DistinctAreas == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}
