package core

import "repro/internal/obs"

// Epoch-phase instruments for the incremental miner. One Recluster is one
// "epoch" span; its phases — item snapshot, profile compilation, the
// per-partition clustering loop, and result finalisation — get their own
// histograms so a slow epoch attributes its time on /metrics?format=prom.
var (
	epochStage         = obs.NewStage("core_epoch")
	epochSnapshotStage = obs.NewStage("core_epoch_snapshot")
	epochProfilesStage = obs.NewStage("core_epoch_profiles")
	epochClusterStage  = obs.NewStage("core_epoch_cluster")
	epochFinalizeStage = obs.NewStage("core_epoch_finalize")

	epochsTotal = obs.NewCounter("skyaccess_core_epochs_total",
		"incremental recluster epochs run")
	epochCacheResets = obs.NewCounter("skyaccess_core_epoch_cache_resets_total",
		"epochs that dropped cached distances because the access(a) registry moved")
	anchorEpochsTotal = obs.NewCounter("skyaccess_core_anchor_epochs_total",
		"full re-cluster epochs (every epoch without DeltaEpochs; the periodic anchors with it)")
	deltaEpochsTotal = obs.NewCounter("skyaccess_core_delta_epochs_total",
		"delta epochs that clustered only representatives + noise + new areas")
	deltaPointsTotal = obs.NewCounter("skyaccess_core_delta_points_total",
		"reduced points fed to DBSCAN across delta epochs")
)
