package shard

import (
	"encoding/json"
	"fmt"
	"os"
)

// coordState is the coordinator's persisted delivery frontier: for every
// shard, how many records the coordinator has routed to it and seen accepted
// (the shard's own WAL makes them durable — this file records who owns what,
// not the records themselves). Saved next to the router assignment on every
// Flush and on Close, restored in NewCoordinator so the offsets stay
// monotonic across coordinator restarts. Together with the router state it
// answers, after a crash, "which shard had how much of the log" without
// asking the shards.
type coordState struct {
	Shards   int               `json:"shards"`
	Accepted int64             `json:"accepted"`
	Offsets  []shardOffsetInfo `json:"offsets"`
}

// shardOffsetInfo is one shard's persisted routing offset.
type shardOffsetInfo struct {
	Name      string `json:"name"`
	Forwarded int64  `json:"forwarded"`
	Dropped   int64  `json:"dropped,omitempty"`
}

// offsetsPath derives the offsets sidecar from the router-state path.
func offsetsPath(routerStatePath string) string {
	return routerStatePath + ".offsets"
}

// persistState saves the router assignment and the per-shard routing offsets
// (both atomic write-then-rename). Called with no coordinator locks held;
// the counters it reads are atomics and the router takes its own lock.
func (c *Coordinator) persistState() error {
	if c.cfg.RouterStatePath == "" {
		return nil
	}
	if err := c.router.SaveState(c.cfg.RouterStatePath); err != nil {
		return err
	}
	st := coordState{
		Shards:   len(c.nodes),
		Accepted: c.baseAccepted + c.accepted.Load(),
		Offsets:  make([]shardOffsetInfo, len(c.nodes)),
	}
	for i, node := range c.nodes {
		st.Offsets[i] = shardOffsetInfo{
			Name:      node.Name(),
			Forwarded: c.baseForwarded[i] + c.forwarded[i].Load(),
			Dropped:   c.dropped[i].Load(),
		}
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	path := offsetsPath(c.cfg.RouterStatePath)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadOffsets restores the persisted routing offsets into the coordinator's
// base counters. The current-run atomics stay zero — drained() and Status()
// keep their per-run meaning — while persistState re-adds the base, keeping
// the on-disk offsets monotonic. A missing file is a cold start; a
// shard-count mismatch is an error for the same reason it is in the router.
func (c *Coordinator) loadOffsets() error {
	if c.cfg.RouterStatePath == "" {
		return nil
	}
	data, err := os.ReadFile(offsetsPath(c.cfg.RouterStatePath))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st coordState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.Shards != len(c.nodes) {
		return fmt.Errorf("shard: offsets were saved for %d shards, running %d", st.Shards, len(c.nodes))
	}
	c.baseAccepted = st.Accepted
	for i := range st.Offsets {
		if i < len(c.baseForwarded) {
			c.baseForwarded[i] = st.Offsets[i].Forwarded
		}
	}
	return nil
}

// Offsets returns the durable per-shard routing offsets (restored base plus
// this run's deliveries) in node order.
func (c *Coordinator) Offsets() []int64 {
	out := make([]int64, len(c.nodes))
	for i := range c.nodes {
		out[i] = c.baseForwarded[i] + c.forwarded[i].Load()
	}
	return out
}
