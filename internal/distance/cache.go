package distance

import (
	"math"
	"sync"
	"sync/atomic"
)

// PairCache memoizes a symmetric pairwise distance over n fixed points so
// the eps-selection pass (KDistances), pivot-index construction, and the
// clustering region queries stop recomputing the same ProfileDistance
// pairs. It is safe for concurrent use; fn must be too (ProfileDistance
// is: it only reads precompiled profiles).
//
// Storage adapts to n:
//
//   - n ≤ triangularCutoff: a flat triangular array of atomically-accessed
//     float64 bit patterns (16 MB at the cutoff). A sentinel NaN pattern
//     marks empty cells; racing writers may both compute a pair, but the
//     function is deterministic so the duplicate store is benign and the
//     fast path is a single atomic load.
//   - n ≤ passthroughCutoff: maps sharded by pair key under mutexes, so
//     only the pairs actually evaluated take memory.
//   - above passthroughCutoff: no memoization (a dense pair set would not
//     fit in memory); the cache degrades to an evaluation counter.
type PairCache struct {
	n      int
	fn     func(i, j int) float64
	tri    []uint64
	shards []cacheShard
	hits   atomic.Int64
	evals  atomic.Int64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[uint64]float64
}

const (
	// triangularCutoff bounds the flat-array storage to n(n-1)/2 ≈ 8.4M
	// cells (67 MB at the cutoff) — sized so the default workload's largest
	// relation-set partitions stay on the lock-free path, which costs a
	// single atomic load per hit where the sharded maps pay a mutex.
	triangularCutoff = 4096
	// passthroughCutoff disables memoization beyond ~16k points, where even
	// a half-dense pair set would need gigabytes.
	passthroughCutoff = 16384
	numShards         = 64
)

// emptyCell is a NaN bit pattern no real distance encodes to.
const emptyCell = ^uint64(0)

// NewCountingPairCache builds a cache that never memoizes, whatever n:
// Dist forwards every lookup to fn and only keeps the evaluation count.
// The mining pipeline uses it as the instrumented "before" baseline when
// the pivot index is disabled, so before/after runs count evaluations
// through identical plumbing.
func NewCountingPairCache(n int, fn func(i, j int) float64) *PairCache {
	return &PairCache{n: n, fn: fn}
}

// NewPairCache builds a cache over n points for the symmetric distance fn,
// choosing the storage backend by n (see the type comment).
func NewPairCache(n int, fn func(i, j int) float64) *PairCache {
	switch {
	case n <= triangularCutoff:
		return newTriangularPairCache(n, fn)
	case n <= passthroughCutoff:
		return newShardedPairCache(n, fn)
	default:
		return NewCountingPairCache(n, fn)
	}
}

func newTriangularPairCache(n int, fn func(i, j int) float64) *PairCache {
	c := &PairCache{n: n, fn: fn, tri: make([]uint64, n*(n-1)/2)}
	for i := range c.tri {
		c.tri[i] = emptyCell
	}
	return c
}

func newShardedPairCache(n int, fn func(i, j int) float64) *PairCache {
	c := &PairCache{n: n, fn: fn, shards: make([]cacheShard, numShards)}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]float64)
	}
	return c
}

// Dist returns the memoized distance between points i and j.
func (c *PairCache) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	switch {
	case c.tri != nil:
		// Row-major upper triangle: pairs (i, j) with i < j.
		cell := i*c.n - i*(i+1)/2 + (j - i - 1)
		if bits := atomic.LoadUint64(&c.tri[cell]); bits != emptyCell {
			c.hits.Add(1)
			return math.Float64frombits(bits)
		}
		d := c.eval(i, j)
		atomic.StoreUint64(&c.tri[cell], math.Float64bits(d))
		return d
	case c.shards != nil:
		key := uint64(i)*uint64(c.n) + uint64(j)
		s := &c.shards[key%numShards]
		s.mu.Lock()
		if d, ok := s.m[key]; ok {
			s.mu.Unlock()
			c.hits.Add(1)
			return d
		}
		s.mu.Unlock()
		d := c.eval(i, j)
		s.mu.Lock()
		s.m[key] = d
		s.mu.Unlock()
		return d
	default:
		return c.eval(i, j)
	}
}

func (c *PairCache) eval(i, j int) float64 {
	c.evals.Add(1)
	return c.fn(i, j)
}

// Evals returns the number of underlying distance evaluations (cache
// misses). Racing goroutines may both evaluate a pair, so this can exceed
// the number of distinct pairs by a sliver.
func (c *PairCache) Evals() int64 { return c.evals.Load() }

// Hits returns the number of lookups served from memory.
func (c *PairCache) Hits() int64 { return c.hits.Load() }

// Memoizing reports whether pairs are actually stored (false above
// passthroughCutoff, where Dist only counts evaluations).
func (c *PairCache) Memoizing() bool { return c.tri != nil || c.shards != nil }
