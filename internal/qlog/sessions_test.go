package qlog

import (
	"fmt"
	"testing"

	"repro/internal/extract"
	"repro/internal/skyserver"
	"repro/internal/sqlparser"
)

func TestSessionizeSplitsOnGap(t *testing.T) {
	recs := []Record{
		{Seq: 0, Time: 0, User: "alice", SQL: "SELECT 1"},
		{Seq: 1, Time: 100, User: "alice", SQL: "SELECT 2"},
		{Seq: 2, Time: 5000, User: "alice", SQL: "SELECT 3"}, // new session
		{Seq: 3, Time: 50, User: "bob", SQL: "SELECT 4"},
	}
	sessions := Sessionize(recs, 1800)
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d, want 3", len(sessions))
	}
	// Sorted by start time: alice@0, bob@50, alice@5000.
	if sessions[0].User != "alice" || len(sessions[0].Records) != 2 {
		t.Errorf("s0 = %+v", sessions[0])
	}
	if sessions[1].User != "bob" {
		t.Errorf("s1 = %+v", sessions[1])
	}
	if sessions[2].Start != 5000 || sessions[2].Duration() != 0 {
		t.Errorf("s2 = %+v", sessions[2])
	}
}

func TestSessionizeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
		gap  int64
		want []struct {
			user  string
			start int64
			n     int
		}
	}{
		{
			name: "empty input",
			recs: nil, gap: 1800,
			want: nil,
		},
		{
			name: "single record",
			recs: []Record{{Seq: 0, Time: 7, User: "solo", SQL: "SELECT 1"}},
			gap:  1800,
			want: []struct {
				user  string
				start int64
				n     int
			}{{"solo", 7, 1}},
		},
		{
			// A gap exactly equal to the timeout stays in the session (the
			// split condition is strictly greater-than), one past it splits.
			name: "exact gap boundary",
			recs: []Record{
				{Seq: 0, Time: 0, User: "u", SQL: "a"},
				{Seq: 1, Time: 1800, User: "u", SQL: "b"},
				{Seq: 2, Time: 3601, User: "u", SQL: "c"},
			},
			gap: 1800,
			want: []struct {
				user  string
				start int64
				n     int
			}{{"u", 0, 2}, {"u", 3601, 1}},
		},
		{
			// Zero gap: identical timestamps share a session, any positive
			// gap splits.
			name: "zero gap",
			recs: []Record{
				{Seq: 0, Time: 5, User: "u", SQL: "a"},
				{Seq: 1, Time: 5, User: "u", SQL: "b"},
				{Seq: 2, Time: 6, User: "u", SQL: "c"},
			},
			gap: 0,
			want: []struct {
				user  string
				start int64
				n     int
			}{{"u", 5, 2}, {"u", 6, 1}},
		},
		{
			// Negative gap clamps to zero rather than splitting same-time
			// records or underflowing the comparison.
			name: "negative gap",
			recs: []Record{
				{Seq: 0, Time: 5, User: "u", SQL: "a"},
				{Seq: 1, Time: 5, User: "u", SQL: "b"},
				{Seq: 2, Time: 9, User: "u", SQL: "c"},
			},
			gap: -100,
			want: []struct {
				user  string
				start int64
				n     int
			}{{"u", 5, 2}, {"u", 9, 1}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Sessionize(c.recs, c.gap)
			if len(got) != len(c.want) {
				t.Fatalf("sessions = %d, want %d (%+v)", len(got), len(c.want), got)
			}
			for i, w := range c.want {
				s := got[i]
				if s.User != w.user || s.Start != w.start || len(s.Records) != w.n {
					t.Errorf("session %d = {user %s start %d n %d}, want %+v",
						i, s.User, s.Start, len(s.Records), w)
				}
				if len(s.Records) == 0 {
					t.Errorf("session %d is empty", i)
				}
			}
		})
	}
}

func TestSessionizeUnsortedInput(t *testing.T) {
	recs := []Record{
		{Seq: 0, Time: 200, User: "u", SQL: "b"},
		{Seq: 1, Time: 0, User: "u", SQL: "a"},
	}
	sessions := Sessionize(recs, 1800)
	if len(sessions) != 1 || sessions[0].Records[0].SQL != "a" {
		t.Fatalf("sessions = %+v", sessions)
	}
}

func TestSkeleton(t *testing.T) {
	a := Skeleton("SELECT z FROM Photoz WHERE objid = 1237657855534432934")
	b := Skeleton("select  Z from PHOTOZ where OBJID=42")
	if a != b {
		t.Errorf("skeletons differ:\n%q\n%q", a, b)
	}
	c := Skeleton("SELECT z FROM Photoz WHERE objid > 42")
	if a == c {
		t.Error("different operators must differ")
	}
	d := Skeleton("SELECT * FROM S WHERE class = 'star'")
	e := Skeleton("SELECT * FROM S WHERE class = 'galaxy'")
	if d != e {
		t.Error("string constants should be templated away")
	}
	// Unlexable input falls back to whitespace normalisation.
	if Skeleton("SELECT 'oops") == "" {
		t.Error("fallback skeleton empty")
	}
}

func TestProfileUsersBotDetection(t *testing.T) {
	var recs []Record
	// A bot: 100 queries from one template at 1-second cadence.
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{
			Seq: i, Time: int64(i), User: "bot01",
			SQL: fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %d", 1000+i),
		})
	}
	// A mortal: 10 varied queries minutes apart.
	varied := []string{
		"SELECT TOP 5 * FROM PhotoObjAll",
		"SELECT ra, dec FROM PhotoObjAll WHERE ra < 100",
		"SELECT COUNT(*) FROM SpecObjAll",
		"SELECT plate FROM SpecObjAll WHERE mjd > 52000 AND plate < 500",
		"SELECT * FROM zooSpec WHERE p_el > 0.8",
		"SELECT class FROM SpecObjAll WHERE class = 'QSO'",
		"SELECT z FROM Photoz WHERE z BETWEEN 0 AND 1",
		"SELECT name FROM DBObjects",
		"SELECT objid FROM AtlasOutline WHERE span > 10",
		"SELECT specobjid FROM sppParams WHERE fehadop < 0",
	}
	for i, q := range varied {
		recs = append(recs, Record{Seq: 100 + i, Time: int64(200 + i*300), User: "carol", SQL: q})
	}
	profiles := ProfileUsers(recs, 1800)
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].User != "bot01" || !profiles[0].Bot() {
		t.Errorf("bot profile = %+v", profiles[0])
	}
	if profiles[0].PeakPerMinute < 10 {
		t.Errorf("bot peak = %d", profiles[0].PeakPerMinute)
	}
	carol := profiles[1]
	if carol.User != "carol" || carol.Bot() {
		t.Errorf("mortal profile = %+v", carol)
	}
	if carol.SkeletonRatio != 1.0 {
		t.Errorf("carol skeleton ratio = %v", carol.SkeletonRatio)
	}
}

func TestClassifyIntent(t *testing.T) {
	cases := []struct {
		sql  string
		want Intent
	}{
		{"SELECT TOP 10 * FROM PhotoObjAll", TestQuery},
		{"SELECT * FROM PhotoObjAll", TestQuery},
		{"SELECT * FROM PhotoObjAll WHERE ra < 100", TestQuery},
		{"SELECT Galaxies.objid FROM Galaxies LIMIT 10", TestQuery},
		{"SELECT ra, dec FROM PhotoObjAll WHERE ra BETWEEN 10 AND 120 AND dec BETWEEN -90 AND -50", FinalQuery},
		{"SELECT plate, COUNT(*) FROM SpecObjAll WHERE class = 'star' AND mjd > 52000 GROUP BY plate", FinalQuery},
		{"SELECT TOP 500000 ra FROM PhotoObjAll WHERE ra < 10 AND dec < 10", FinalQuery},
	}
	for _, c := range cases {
		sel, err := sqlparser.ParseSelect(c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		if got := ClassifyIntent(sel); got != c.want {
			t.Errorf("%q: intent = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestClassifySkyAreaAndAccess(t *testing.T) {
	ex := extract.New(skyserver.Schema())
	mk := func(sql string) *extract.AccessArea {
		a, err := ex.ExtractSQL(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		return a
	}
	cases := []struct {
		sql    string
		sky    SkyAreaKind
		access AccessKind
	}{
		{"SELECT * FROM PhotoObjAll WHERE ra BETWEEN 10 AND 120 AND dec BETWEEN -90 AND -50",
			RectangularSkyArea, SearchQuery},
		{"SELECT * FROM SpecObjAll WHERE ra BETWEEN 54 AND 115",
			BandSkyArea, SearchQuery},
		{"SELECT z FROM Photoz WHERE objid = 1237657855534432934",
			SinglePointSkyArea, RetrieveQuery},
		{"SELECT * FROM PhotoObjAll WHERE ra = 185 AND dec = 0.5",
			SinglePointSkyArea, SearchQuery},
		{"SELECT TOP 10 * FROM DBObjects",
			OtherSkyArea, ScanQuery},
		{"SELECT * FROM Photoz WHERE z < 0.1",
			OtherSkyArea, SearchQuery},
	}
	for _, c := range cases {
		area := mk(c.sql)
		if got := ClassifySkyArea(area); got != c.sky {
			t.Errorf("%q: sky = %v, want %v", c.sql, got, c.sky)
		}
		if got := ClassifyAccess(area); got != c.access {
			t.Errorf("%q: access = %v, want %v", c.sql, got, c.access)
		}
	}
}

func TestClassifyBatch(t *testing.T) {
	ex := extract.New(skyserver.Schema())
	var areas []*extract.AccessArea
	for _, sql := range []string{
		"SELECT * FROM PhotoObjAll WHERE ra BETWEEN 0 AND 10 AND dec BETWEEN 0 AND 10",
		"SELECT * FROM SpecObjAll WHERE ra > 100 AND ra < 200",
		"SELECT z FROM Photoz WHERE objid = 7",
	} {
		a, err := ex.ExtractSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		areas = append(areas, a)
	}
	counts := Classify(areas)
	if counts.Sky[RectangularSkyArea] != 1 || counts.Sky[BandSkyArea] != 1 || counts.Sky[SinglePointSkyArea] != 1 {
		t.Errorf("sky counts = %v", counts.Sky)
	}
	if counts.Access[RetrieveQuery] != 1 || counts.Access[SearchQuery] != 2 {
		t.Errorf("access counts = %v", counts.Access)
	}
}

func TestSessionizeGeneratedLog(t *testing.T) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 2000, Seed: 3})
	recs := make([]Record, len(entries))
	total := 0
	for i, e := range entries {
		recs[i] = Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
		total++
	}
	sessions := Sessionize(recs, 1800)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	n := 0
	for _, s := range sessions {
		n += len(s.Records)
	}
	if n != total {
		t.Errorf("records in sessions = %d, want %d", n, total)
	}
	profiles := ProfileUsers(recs, 1800)
	// The generator plants 5 bot identities issuing ~2% of queries each.
	if profiles[0].Queries < 2 {
		t.Errorf("top profile = %+v", profiles[0])
	}
}
