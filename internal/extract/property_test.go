package extract

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/predicate"
	"repro/internal/sqlparser"
)

// This file checks end-to-end soundness of the exact mapping on the query
// fragment where the paper's transformation is exact (single relation, no
// subqueries or aggregates): for random WHERE trees built from comparisons,
// BETWEEN, IN lists, AND/OR/NOT, the extracted CNF must be logically
// equivalent to the original predicate — i.e. the access area is exactly
// σ_WHERE(T) (Definition 4 collapses to predicate satisfaction for simple
// queries).

// point assigns values to the three columns of the generated queries.
type point struct{ u, v, s float64 }

func (p point) get(col string) float64 {
	switch col {
	case "u", "T.u":
		return p.u
	case "v", "T.v":
		return p.v
	default:
		return p.s
	}
}

// genWhere builds a random WHERE tree and returns (SQL fragment, evaluator).
func genWhere(r *rand.Rand, depth int) (string, func(point) bool) {
	if depth <= 0 || r.Intn(3) == 0 {
		return genAtom(r)
	}
	switch r.Intn(4) {
	case 0:
		ls, lf := genWhere(r, depth-1)
		rs, rf := genWhere(r, depth-1)
		return "(" + ls + " AND " + rs + ")", func(p point) bool { return lf(p) && rf(p) }
	case 1:
		ls, lf := genWhere(r, depth-1)
		rs, rf := genWhere(r, depth-1)
		return "(" + ls + " OR " + rs + ")", func(p point) bool { return lf(p) || rf(p) }
	case 2:
		xs, xf := genWhere(r, depth-1)
		return "NOT (" + xs + ")", func(p point) bool { return !xf(p) }
	default:
		return genAtom(r)
	}
}

var genCols = []string{"u", "v", "s"}

func genAtom(r *rand.Rand) (string, func(point) bool) {
	col := genCols[r.Intn(len(genCols))]
	switch r.Intn(4) {
	case 0: // comparison
		ops := []struct {
			sql string
			f   func(a, b float64) bool
		}{
			{"<", func(a, b float64) bool { return a < b }},
			{"<=", func(a, b float64) bool { return a <= b }},
			{"=", func(a, b float64) bool { return a == b }},
			{">", func(a, b float64) bool { return a > b }},
			{">=", func(a, b float64) bool { return a >= b }},
			{"<>", func(a, b float64) bool { return a != b }},
		}
		op := ops[r.Intn(len(ops))]
		c := float64(r.Intn(11) - 5)
		return fmt.Sprintf("%s %s %d", col, op.sql, int(c)),
			func(p point) bool { return op.f(p.get(col), c) }
	case 1: // BETWEEN
		lo := float64(r.Intn(8) - 4)
		hi := lo + float64(r.Intn(5))
		not := r.Intn(2) == 0
		sql := fmt.Sprintf("%s BETWEEN %d AND %d", col, int(lo), int(hi))
		f := func(p point) bool { v := p.get(col); return v >= lo && v <= hi }
		if not {
			return fmt.Sprintf("%s NOT BETWEEN %d AND %d", col, int(lo), int(hi)),
				func(p point) bool { return !f(p) }
		}
		return sql, f
	case 2: // IN list
		n := 1 + r.Intn(3)
		vals := make([]float64, n)
		parts := make([]string, n)
		for i := range vals {
			vals[i] = float64(r.Intn(11) - 5)
			parts[i] = fmt.Sprintf("%d", int(vals[i]))
		}
		not := ""
		if r.Intn(2) == 0 {
			not = "NOT "
		}
		sql := fmt.Sprintf("%s %sIN (%s)", col, not, strings.Join(parts, ", "))
		return sql, func(p point) bool {
			in := false
			for _, v := range vals {
				if p.get(col) == v {
					in = true
				}
			}
			if not != "" {
				return !in
			}
			return in
		}
	default: // column-column comparison
		col2 := genCols[r.Intn(len(genCols))]
		return fmt.Sprintf("%s <= %s", col, col2),
			func(p point) bool { return p.get(col) <= p.get(col2) }
	}
}

// evalCNFPoint evaluates the extracted CNF on a point.
func evalCNFPoint(c predicate.CNF, p point) bool {
	for _, cl := range c {
		sat := false
		for _, pr := range cl {
			if evalPredPoint(pr, p) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func evalPredPoint(pr predicate.Pred, p point) bool {
	cmp := func(a float64, op predicate.Op, b float64) bool {
		switch op {
		case predicate.Lt:
			return a < b
		case predicate.Le:
			return a <= b
		case predicate.Eq:
			return a == b
		case predicate.Gt:
			return a > b
		case predicate.Ge:
			return a >= b
		case predicate.Ne:
			return a != b
		}
		return false
	}
	switch pr.Kind {
	case predicate.TruePred:
		return true
	case predicate.FalsePred:
		return false
	case predicate.ColumnColumn:
		return cmp(p.get(pr.Column), pr.Op, p.get(pr.Column2))
	default:
		return cmp(p.get(pr.Column), pr.Op, pr.Val.Num)
	}
}

func TestPropExtractionEquivalentToWhere(t *testing.T) {
	ex := New(testSchema())
	ex.PredCap = -1 // exactness check: no truncation
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		whereSQL, eval := genWhere(r, 4)
		sql := "SELECT * FROM T WHERE " + whereSQL
		area, err := ex.ExtractSQL(sql)
		if err != nil {
			t.Logf("extract %q: %v", sql, err)
			return false
		}
		if !area.Exact {
			t.Logf("unexpected approximation for %q", sql)
			return false
		}
		for i := 0; i < 40; i++ {
			p := point{
				u: float64(r.Intn(13) - 6),
				v: float64(r.Intn(13) - 6),
				s: float64(r.Intn(13) - 6),
			}
			if evalCNFPoint(area.CNF, p) != eval(p) {
				t.Logf("mismatch for %q at %+v\ncnf: %s", sql, p, area.CNF)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// The same equivalence must hold after a print→parse round trip of the
// statement (parser/printer do not change the access area).
func TestPropExtractionStableUnderRoundTrip(t *testing.T) {
	ex := New(testSchema())
	ex.PredCap = -1
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		whereSQL, _ := genWhere(r, 3)
		sql := "SELECT * FROM T WHERE " + whereSQL
		sel1, err := sqlparser.ParseSelect(sql)
		if err != nil {
			return false
		}
		a1, err := ex.Extract(sel1)
		if err != nil {
			return false
		}
		sel2, err := sqlparser.ParseSelect(sqlparser.FormatSelect(sel1))
		if err != nil {
			t.Logf("round-trip parse failed: %v", err)
			return false
		}
		a2, err := ex.Extract(sel2)
		if err != nil {
			return false
		}
		if a1.Key() != a2.Key() {
			t.Logf("keys differ for %q:\n%s\n%s", sql, a1.Key(), a2.Key())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// UNION equivalence: the union's access area evaluates as the disjunction
// of the arms' predicates.
func TestPropUnionEquivalence(t *testing.T) {
	ex := New(testSchema())
	ex.PredCap = -1
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w1, f1 := genWhere(r, 2)
		w2, f2 := genWhere(r, 2)
		sql := fmt.Sprintf("SELECT u FROM T WHERE %s UNION SELECT u FROM T WHERE %s", w1, w2)
		area, err := ex.ExtractSQL(sql)
		if err != nil {
			t.Logf("extract %q: %v", sql, err)
			return false
		}
		for i := 0; i < 30; i++ {
			p := point{
				u: float64(r.Intn(13) - 6),
				v: float64(r.Intn(13) - 6),
				s: float64(r.Intn(13) - 6),
			}
			if evalCNFPoint(area.CNF, p) != (f1(p) || f2(p)) {
				t.Logf("mismatch for %q at %+v\ncnf: %s", sql, p, area.CNF)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
