package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/schema"
)

func mustPostFlush(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
}

// crashConfig points a server config's snapshot + WAL into one temp tree,
// with segments small enough that recovery crosses segment boundaries.
func crashConfig(dir string, cfg Config) Config {
	cfg.SnapshotPath = filepath.Join(dir, "state.json")
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.WALSegmentBytes = 4096
	return cfg
}

// The crash-recovery gate: a server killed mid-ingest (no final epoch, no
// snapshot — Abort is the in-process kill -9) must, after restart, replay
// the WAL tail past the last snapshot's covered offset and end up serving a
// /report byte-for-byte identical to an uninterrupted run over the same
// records. Three phases: snapshot covers the first third, the second third
// lives only in the WAL when the crash hits, the last third is ingested
// after recovery.
func TestCrashRecoveryReplay(t *testing.T) {
	db := testDB()
	recs := synthRecords(1200, 42)
	dir := t.TempDir()

	batch := core.NewMiner(minerConfig(db)).MineRecords(recs)
	batch.AttachCoverage(db)

	base := Config{Miner: minerConfig(db), Coverage: db, BatchSize: 64}

	// Phase 1: ingest a third, snapshot (covers WAL offset 400), keep going.
	s1, err := NewServer(crashConfig(dir, base))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s1.IngestRecords(recs[:400]); n != 400 || err != nil {
		t.Fatalf("phase 1 ingest: %d, %v", n, err)
	}
	s1.Flush()
	if err := s1.WriteSnapshot(crashConfig(dir, base).SnapshotPath); err != nil {
		t.Fatal(err)
	}
	// Phase 2: these records are acknowledged (IngestRecords returns after
	// the fsync barrier) but never snapshotted — only the WAL has them.
	if n, err := s1.IngestRecords(recs[400:900]); n != 500 || err != nil {
		t.Fatalf("phase 2 ingest: %d, %v", n, err)
	}
	s1.Abort() // crash: no final epoch, no snapshot

	// Restart: snapshot restores the first 400, WAL replay feeds 400..900.
	s2, err := NewServer(crashConfig(dir, base))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Telemetry(); got.Processed != 900 || got.Accepted != 900 {
		t.Fatalf("after recovery: processed %d accepted %d, want 900/900 — acknowledged records were lost", got.Processed, got.Accepted)
	}

	// Phase 3: ingest the rest over HTTP and compare against the oracle.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	if reply := postNDJSON(t, ts.URL, recs[900:]); reply.Accepted != 300 {
		t.Fatalf("phase 3 accepted %d of 300", reply.Accepted)
	}
	mustPostFlush(t, ts.URL)

	for _, f := range []report.Format{report.Text, report.CSV, report.JSON} {
		var want bytes.Buffer
		if err := report.Write(&want, batch, f, report.Options{Coverage: true}); err != nil {
			t.Fatal(err)
		}
		code, _, got := get(t, ts.URL+"/report?format="+string(f), "")
		if code != 200 {
			t.Fatalf("%s report status %d", f, code)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s report after crash recovery differs from uninterrupted batch run.\nrecovered:\n%s\nbatch:\n%s", f, got, want.Bytes())
		}
	}
}

// A torn tail — a partial entry the crash left at the end of the active
// segment — must be truncated on recovery, not break it: every record before
// the tear survives, the report matches the batch oracle, and the server
// keeps accepting afterwards.
func TestCrashRecoveryTornTail(t *testing.T) {
	db := testDB()
	recs := synthRecords(600, 42)
	dir := t.TempDir()
	base := Config{Miner: minerConfig(db), Coverage: db, BatchSize: 64}

	s1, err := NewServer(crashConfig(dir, base))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s1.IngestRecords(recs); n != len(recs) || err != nil {
		t.Fatalf("ingest: %d, %v", n, err)
	}
	s1.Abort()

	// Tear the log: append half an entry header plus garbage to the last
	// (active) segment, as a crash mid-write would.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments written: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(crashConfig(dir, base))
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.Telemetry(); got.Processed != int64(len(recs)) {
		t.Fatalf("after torn-tail recovery: processed %d, want %d", got.Processed, len(recs))
	}
	s2.Flush()

	batch := core.NewMiner(minerConfig(db)).MineRecords(recs)
	batch.AttachCoverage(db)
	var want bytes.Buffer
	if err := report.Write(&want, batch, report.Text, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	code, _, got := get(t, ts.URL+"/report", "")
	if code != 200 {
		t.Fatalf("report status %d", code)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("report after torn-tail recovery differs from batch run.\nrecovered:\n%s\nbatch:\n%s", got, want.Bytes())
	}

	// The log is still appendable after the truncation.
	more := synthRecords(50, 7)
	if n, err := s2.IngestRecords(more); n != len(more) || err != nil {
		t.Fatalf("post-recovery ingest: %d, %v", n, err)
	}
}

// Re-mining a [from,to) window through the WAL must equal batch-mining
// exactly that window's records with the same registry state — the segment
// index is an optimisation, never a semantic filter.
func TestRemineWindowEquivalence(t *testing.T) {
	db := testDB()
	recs := synthRecords(1000, 42)
	// Monotonic record times (what loggen -step emits), so time windows map
	// to contiguous record ranges and the segment index has spans to skip.
	for i := range recs {
		recs[i].Time = int64(i) * 4
	}
	dir := t.TempDir()
	cfg := Config{Miner: minerConfig(db), Coverage: db, BatchSize: 64,
		WALDir: filepath.Join(dir, "wal"), WALSegmentBytes: 4096, WALSegmentWindow: 400}

	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n, err := s.IngestRecords(recs); n != len(recs) || err != nil {
		t.Fatalf("ingest: %d, %v", n, err)
	}
	s.Flush()

	// Window = records[300:600) by construction of the synthetic clock.
	from, to := int64(300*4), int64(600*4)
	window := recs[300:600]

	res, stats, err := s.Remine(from, to, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(window) {
		t.Fatalf("remine read %d records, want %d", stats.Records, len(window))
	}
	if stats.SegmentsSkipped == 0 {
		t.Errorf("remine scanned every segment (%d) — the time-range index skipped nothing", stats.SegmentsScanned)
	}

	// Oracle: batch-mine the window's records over a copy of the live
	// registry, exactly as Remine builds its throwaway miner.
	oracleCfg := minerConfig(db)
	oracleStats := schema.NewStats()
	oracleStats.RestoreSnapshot(s.Miner().Stats().Snapshot())
	oracleCfg.Stats = oracleStats
	want := core.NewMiner(oracleCfg).MineRecords(window)

	var wantBuf, gotBuf bytes.Buffer
	if err := report.Write(&wantBuf, want, report.Text, report.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := report.Write(&gotBuf, res, report.Text, report.Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Fatalf("windowed remine differs from batch-mining the window.\nremine:\n%s\nbatch:\n%s", gotBuf.Bytes(), wantBuf.Bytes())
	}

	// Fingerprint filter: re-mining one statement family reads only that
	// family's records and equals batch-mining exactly those.
	fps := FingerprintsFor([]string{window[0].SQL})
	if len(fps) != 1 {
		t.Fatalf("fingerprints for %q: %v", window[0].SQL, fps)
	}
	fam, fstats, err := s.Remine(from, to, nil, fps)
	if err != nil {
		t.Fatal(err)
	}
	wantFam := 0
	for _, r := range window {
		if got := FingerprintsFor([]string{r.SQL}); len(got) == 1 && got[0] == fps[0] {
			wantFam++
		}
	}
	if fstats.Records != wantFam {
		t.Fatalf("fingerprint-filtered remine read %d records, want %d", fstats.Records, wantFam)
	}
	if fam.DistinctAreas == 0 {
		t.Fatal("fingerprint-filtered remine mined no areas")
	}
}
