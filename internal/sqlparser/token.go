// Package sqlparser is a from-scratch lexer and recursive-descent parser for
// the SQL SELECT dialect found in SkyServer query logs: T-SQL style (TOP n,
// bracketed identifiers) plus the MySQL constructs users mistakenly submit
// (LIMIT n, backtick identifiers), which the paper's pipeline must still be
// able to analyse (Section 6.6). It replaces JSqlParser from the original
// implementation (Section 4.5).
//
// The parser intentionally accepts only the statement population the paper's
// extraction handles; everything else (DDL, DECLARE, table-valued UDF calls
// in FROM) is rejected with a classified error so that the extraction
// coverage experiment of Section 6.1 can count failure categories.
package sqlparser

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

const (
	EOF     TokenKind = iota
	Ident             // identifier or non-reserved keyword
	Keyword           // reserved keyword (uppercased in Text)
	Number            // numeric literal
	String            // string literal, quotes stripped in Text
	Op                // operator or punctuation, canonical form in Text
	Param             // @variable (T-SQL)
)

func (k TokenKind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Op:
		return "operator"
	case Param:
		return "parameter"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position (byte offset, 1-based
// line and column).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
	Line int
	Col  int
	// Slot is the 1-based ordinal of this token among the statement's
	// literal tokens (Number, String, Param) in lexer order; 0 for all
	// other kinds. Statements with equal Fingerprints have their literals
	// at identical slots, which is what lets the template cache rebind a
	// cached access area with a new record's constants.
	Slot int
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// reserved lists keywords that can never be identifiers. SQL has many more,
// but only these affect parsing decisions for the supported dialect.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "AS": true, "DISTINCT": true, "TOP": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "NATURAL": true, "ON": true, "UNION": true,
	"ALL": true, "ANY": true, "SOME": true, "ASC": true, "DESC": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"INTO": true, "CREATE": true, "DECLARE": true, "INSERT": true,
	"UPDATE": true, "DELETE": true, "DROP": true, "SET": true, "EXEC": true,
	"TABLE": true, "OFFSET": true, "ESCAPE": true, "WITH": true,
}

// nonReservedAllowedAsAlias contains keywords that may still appear where an
// identifier alias is expected in sloppy log queries; kept empty for now but
// provides a single place to relax the grammar if a new log dialect needs it.
var nonReservedAllowedAsAlias = map[string]bool{}
