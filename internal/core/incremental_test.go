package core

import (
	"testing"

	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

func seededStats() *schema.Stats {
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 400, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	return stats
}

func synthRecords(queries int, seed int64) []qlog.Record {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: queries, Seed: seed})
	return toRecords(entries)
}

// sameMining asserts two results agree on everything report.Write surfaces.
func sameMining(t *testing.T, batch, inc *Result) {
	t.Helper()
	if batch.DistinctAreas != inc.DistinctAreas ||
		batch.ClusteredAreas != inc.ClusteredAreas ||
		batch.ContradictoryAreas != inc.ContradictoryAreas ||
		batch.NoiseQueries != inc.NoiseQueries ||
		batch.ChosenEps != inc.ChosenEps {
		t.Fatalf("counters differ: batch{distinct %d clustered %d contradictory %d noise %d eps %g} vs inc{%d %d %d %d %g}",
			batch.DistinctAreas, batch.ClusteredAreas, batch.ContradictoryAreas, batch.NoiseQueries, batch.ChosenEps,
			inc.DistinctAreas, inc.ClusteredAreas, inc.ContradictoryAreas, inc.NoiseQueries, inc.ChosenEps)
	}
	if len(batch.Clusters) != len(inc.Clusters) {
		t.Fatalf("cluster counts differ: batch %d vs incremental %d", len(batch.Clusters), len(inc.Clusters))
	}
	for i := range batch.Clusters {
		b, c := batch.Clusters[i], inc.Clusters[i]
		if b.ID != c.ID || b.Cardinality != c.Cardinality || b.Expr() != c.Expr() {
			t.Fatalf("cluster %d differs:\nbatch: card=%d %s\ninc:   card=%d %s",
				i, b.Cardinality, b.Expr(), c.Cardinality, c.Expr())
		}
	}
}

// The acceptance guard: pushing a log through the epoch-based miner in
// chunks — reclustering after every chunk — must end with exactly the
// clustering the one-shot batch miner produces over the same records.
func TestIncrementalEquivalentToBatch(t *testing.T) {
	recs := synthRecords(3000, 42)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"fixed-eps", Config{Schema: skyserver.Schema(), Seed: 42}},
		{"auto-eps", Config{Schema: skyserver.Schema(), Seed: 42, AutoEps: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bcfg := tc.cfg
			bcfg.Stats = seededStats()
			batchRes := NewMiner(bcfg).MineRecords(recs)

			icfg := tc.cfg
			icfg.Stats = seededStats()
			im := NewMiner(icfg)
			inc := im.Incremental()
			areaRecs, _ := im.pipeline().Run(recs)
			const chunk = 600
			var last *Result
			for lo := 0; lo < len(areaRecs); lo += chunk {
				hi := lo + chunk
				if hi > len(areaRecs) {
					hi = len(areaRecs)
				}
				for i := lo; i < hi; i++ {
					inc.Add(&areaRecs[i])
				}
				last = inc.Recluster()
			}
			sameMining(t, batchRes, last)
		})
	}
}

// With a settled access(a) registry, a re-clustering epoch over unchanged
// data must be answered entirely from the cross-epoch distance cache, and
// an epoch over appended data must only evaluate pairs involving new items.
func TestIncrementalReusesDistancesAcrossEpochs(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema(), Seed: 7, Stats: seededStats()})
	inc := m.Incremental()
	areaRecs, _ := m.pipeline().Run(synthRecords(2500, 7))
	if len(areaRecs) < 100 {
		t.Fatalf("synthetic log extracted only %d areas", len(areaRecs))
	}
	// Extraction is complete, so the registry generation is now stable and
	// cross-epoch reuse is sound.
	half := len(areaRecs) / 2
	for i := 0; i < half; i++ {
		inc.Add(&areaRecs[i])
	}
	inc.Recluster()
	e1 := inc.DistanceEvals()
	if e1 == 0 {
		t.Fatal("first epoch evaluated no distances")
	}

	// Idle epoch: identical input, zero new evaluations.
	inc.Recluster()
	if d := inc.DistanceEvals() - e1; d != 0 {
		t.Errorf("idle epoch re-evaluated %d distances", d)
	}

	// Growth epoch: only new-point pairs may cost evaluations.
	for i := half; i < len(areaRecs); i++ {
		inc.Add(&areaRecs[i])
	}
	grown := inc.Recluster()
	e2 := inc.DistanceEvals()
	if e2 <= e1 {
		t.Fatal("growth epoch evaluated nothing new")
	}

	// And a second idle epoch over the grown set is again free.
	hitsBefore := inc.DistanceCacheHits()
	again := inc.Recluster()
	if d := inc.DistanceEvals() - e2; d != 0 {
		t.Errorf("idle epoch after growth re-evaluated %d distances", d)
	}
	if inc.DistanceCacheHits() == hitsBefore {
		t.Error("idle epoch served no cache hits")
	}
	sameMining(t, grown, again)
}

// ExportState → RestoreState (with the access(a) registry snapshot carried
// alongside, as internal/serve does) must reproduce the exact clustering.
func TestIncrementalStateRoundTrip(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema(), Seed: 3, Stats: seededStats()})
	inc := m.Incremental()
	areaRecs, _ := m.pipeline().Run(synthRecords(2000, 3))
	for i := range areaRecs {
		inc.Add(&areaRecs[i])
	}
	before := inc.Recluster()

	st := inc.ExportState()
	statsSnap := m.Stats().Snapshot()

	restoredStats := schema.NewStats()
	restoredStats.RestoreSnapshot(statsSnap)
	m2 := NewMiner(Config{Schema: skyserver.Schema(), Seed: 3, Stats: restoredStats})
	inc2 := m2.Incremental()
	if err := inc2.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got, want := inc2.Distinct(), inc.Distinct(); got != want {
		t.Fatalf("restored %d distinct areas, want %d", got, want)
	}
	after := inc2.Recluster()
	sameMining(t, before, after)

	// A second export must be identical to the first — users, weights and
	// representatives all survive the round trip.
	st2 := inc2.ExportState()
	if len(st2.Items) != len(st.Items) || st2.Contradictory != st.Contradictory {
		t.Fatalf("re-export shape differs: %d/%d items, %d/%d contradictory",
			len(st2.Items), len(st.Items), st2.Contradictory, st.Contradictory)
	}
	for i := range st.Items {
		a, b := st.Items[i], st2.Items[i]
		if a.SQL != b.SQL || a.Weight != b.Weight || len(a.Users) != len(b.Users) {
			t.Fatalf("item %d differs after round trip: %+v vs %+v", i, a, b)
		}
	}
}

// RestoreState must refuse to run on top of existing state.
func TestIncrementalRestoreGuards(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema(), Seed: 5, Stats: seededStats()})
	inc := m.Incremental()
	areaRecs, _ := m.pipeline().Run(synthRecords(50, 5))
	if len(areaRecs) == 0 {
		t.Fatal("no areas extracted")
	}
	inc.Add(&areaRecs[0])
	if err := inc.RestoreState(&State{Items: []ItemState{{SQL: "select 1"}}}); err == nil {
		t.Fatal("RestoreState on non-empty state did not fail")
	}
	if err := m.Incremental().RestoreState(nil); err != nil {
		t.Fatalf("nil state restore: %v", err)
	}
}

// Delta epochs cluster only representatives + noise + new areas; the
// periodic full re-cluster is the equivalence anchor. The final anchor over
// a drained log must reproduce the one-shot batch mining exactly, and the
// intermediate delta epochs must actually have reduced the DBSCAN input.
func TestDeltaEpochsAnchorEquivalentToBatch(t *testing.T) {
	recs := synthRecords(3000, 42)
	bcfg := Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats()}
	batchRes := NewMiner(bcfg).MineRecords(recs)

	icfg := Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(),
		DeltaEpochs: true, FullReclusterEvery: 100}
	im := NewMiner(icfg)
	inc := im.Incremental()
	areaRecs, _ := im.pipeline().Run(recs)
	const chunk = 400
	deltas, reducedMax := 0, 0
	for lo := 0; lo < len(areaRecs); lo += chunk {
		hi := lo + chunk
		if hi > len(areaRecs) {
			hi = len(areaRecs)
		}
		for i := lo; i < hi; i++ {
			inc.Add(&areaRecs[i])
		}
		epoch := inc.ReclusterAuto()
		if epoch.ClusteredAreas < epoch.DistinctAreas {
			deltas++
			if epoch.ClusteredAreas > reducedMax {
				reducedMax = epoch.ClusteredAreas
			}
		}
	}
	if deltas == 0 {
		t.Fatal("no delta epoch ran (every epoch clustered the full item set)")
	}
	if reducedMax >= inc.Distinct() {
		t.Fatalf("delta epochs did not reduce the point set: %d of %d", reducedMax, inc.Distinct())
	}
	// The anchor is the ground truth: a full Recluster after the deltas must
	// match the batch run bit for bit.
	sameMining(t, batchRes, inc.Recluster())
}

// FullReclusterEvery must force periodic anchors: with cadence 2 every
// second ReclusterAuto is full (clusters everything), and delta state
// carries across the anchors.
func TestDeltaEpochsAnchorCadence(t *testing.T) {
	recs := synthRecords(2400, 9)
	cfg := Config{Schema: skyserver.Schema(), Seed: 9, Stats: seededStats(),
		DeltaEpochs: true, FullReclusterEvery: 2}
	im := NewMiner(cfg)
	inc := im.Incremental()
	areaRecs, _ := im.pipeline().Run(recs)
	const chunk = 300
	var fullEpochs, deltaEpochs []int
	for lo, epoch := 0, 0; lo < len(areaRecs); lo, epoch = lo+chunk, epoch+1 {
		hi := lo + chunk
		if hi > len(areaRecs) {
			hi = len(areaRecs)
		}
		for i := lo; i < hi; i++ {
			inc.Add(&areaRecs[i])
		}
		r := inc.ReclusterAuto()
		if r.ClusteredAreas == r.DistinctAreas {
			fullEpochs = append(fullEpochs, epoch)
		} else {
			deltaEpochs = append(deltaEpochs, epoch)
		}
	}
	// Epoch 0 has no anchor yet, so it is full; afterwards deltas and
	// anchors must alternate (cadence 2).
	if len(fullEpochs) < 3 || len(deltaEpochs) < 2 {
		t.Fatalf("cadence 2 over 8 epochs: full=%v delta=%v", fullEpochs, deltaEpochs)
	}
	for _, e := range deltaEpochs {
		if e%2 != 1 {
			t.Fatalf("delta at even epoch %d; full=%v delta=%v", e, fullEpochs, deltaEpochs)
		}
	}
}
