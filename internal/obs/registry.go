// Package obs is the stack's stdlib-only observability layer: a typed
// metrics registry (counters, gauges, fixed-bucket histograms — all with
// atomic hot paths), lightweight stage spans for the mining pipeline, and a
// ring-buffer slow-query log. The registry renders itself in Prometheus
// text exposition format (stable ordering, escaped help strings, cumulative
// histogram buckets) and as a flat float snapshot for JSON views and the
// BENCH_*.json "metrics" key the bench-drift gate compares.
//
// Two registries matter in practice: the package Default registry holds
// process-wide instruments (per-stage latency histograms, package counters
// like template-cache hits), while each serve.Server owns a private
// registry for its per-instance gauges. Registration is idempotent —
// re-registering a name returns the existing metric — so package-level
// stages can be declared in var blocks without init-order ceremony.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can expose.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // "counter", "gauge" or "histogram"
	// writeProm appends the metric's sample lines (no HELP/TYPE header).
	writeProm(sb *strings.Builder)
	// snapshot flattens the metric into name -> value pairs.
	snapshot(into map[string]float64)
}

// Registry holds a named set of metrics. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level instruments
// (stage spans, package counters) register into.
func Default() *Registry { return defaultRegistry }

// register returns the existing metric under name when one is present (and
// panics if its type differs — that is always a programming error), or
// installs m.
func (r *Registry) register(name string, m metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		if old.metricType() != m.metricType() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
				name, m.metricType(), old.metricType()))
		}
		return old
	}
	r.metrics[name] = m
	return m
}

// validName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// sorted returns the registered metrics in name order (the exposition
// contract: output ordering is stable across calls and processes).
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].metricName() < out[j].metricName() })
	return out
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	for _, m := range r.sorted() {
		sb.WriteString("# HELP ")
		sb.WriteString(m.metricName())
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(m.metricHelp()))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(m.metricName())
		sb.WriteByte(' ')
		sb.WriteString(m.metricType())
		sb.WriteByte('\n')
		m.writeProm(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Snapshot flattens the registry into metric name -> value. Histograms
// contribute <name>_count and <name>_sum. The map is a point-in-time copy;
// counters read atomically but the set as a whole is not one atomic cut.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		m.snapshot(out)
	}
	return out
}

// escapeHelp escapes a HELP string per the exposition format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- Counter ----

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// NewCounter registers (or fetches) a counter in the registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and are dropped to
// keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) writeProm(sb *strings.Builder) {
	sb.WriteString(c.name)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(c.v.Load(), 10))
	sb.WriteByte('\n')
}
func (c *Counter) snapshot(into map[string]float64) { into[c.name] = float64(c.v.Load()) }

// ---- CounterFunc ----

// CounterFunc exposes an externally maintained monotone counter (e.g. an
// atomic the hot path already increments) without double-counting.
type CounterFunc struct {
	name string
	help string
	fn   func() float64
}

// NewCounterFunc registers (or fetches) a function-backed counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	return r.register(name, &CounterFunc{name: name, help: help, fn: fn}).(*CounterFunc)
}

func (c *CounterFunc) metricName() string { return c.name }
func (c *CounterFunc) metricHelp() string { return c.help }
func (c *CounterFunc) metricType() string { return "counter" }
func (c *CounterFunc) writeProm(sb *strings.Builder) {
	sb.WriteString(c.name)
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(c.fn()))
	sb.WriteByte('\n')
}
func (c *CounterFunc) snapshot(into map[string]float64) { into[c.name] = c.fn() }

// ---- Gauge ----

// Gauge is a settable float metric.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64 // float64 bits
}

// NewGauge registers (or fetches) a gauge in the registry.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) writeProm(sb *strings.Builder) {
	sb.WriteString(g.name)
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(g.Value()))
	sb.WriteByte('\n')
}
func (g *Gauge) snapshot(into map[string]float64) { into[g.name] = g.Value() }

// ---- GaugeFunc ----

// GaugeFunc exposes a value computed at collection time (queue depth,
// uptime). fn must be safe to call concurrently.
type GaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// NewGaugeFunc registers (or fetches) a function-backed gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return r.register(name, &GaugeFunc{name: name, help: help, fn: fn}).(*GaugeFunc)
}

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) metricHelp() string { return g.help }
func (g *GaugeFunc) metricType() string { return "gauge" }
func (g *GaugeFunc) writeProm(sb *strings.Builder) {
	sb.WriteString(g.name)
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(g.fn()))
	sb.WriteByte('\n')
}
func (g *GaugeFunc) snapshot(into map[string]float64) { into[g.name] = g.fn() }

// ---- Histogram ----

// DefaultLatencyBuckets spans 1µs to 10s — wide enough for a sub-µs cached
// template rebind and a multi-second cold epoch in one instrument.
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2.5, 10,
}

// Histogram is a fixed-bucket histogram. Observations are two atomic adds;
// there is no per-observation allocation or lock.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-add
}

// NewHistogram registers (or fetches) a histogram. bounds must be sorted
// ascending; nil means DefaultLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	return r.register(name, h).(*Histogram)
}

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are ~10 and the branch predictor does well
	// on latency distributions; a binary search buys nothing here.
	idx := -1
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	if idx >= 0 {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }

func (h *Histogram) writeProm(sb *strings.Builder) {
	// Buckets are cumulative in the exposition format; the reads are not one
	// atomic cut, so re-clamp to keep le-monotonicity and bucket ≤ count
	// even when observations land mid-render.
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		sb.WriteString(h.name)
		sb.WriteString(`_bucket{le="`)
		sb.WriteString(formatFloat(b))
		sb.WriteString(`"} `)
		sb.WriteString(strconv.FormatInt(cum, 10))
		sb.WriteByte('\n')
	}
	cum += h.inf.Load()
	total := h.count.Load()
	if total < cum {
		total = cum
	}
	sb.WriteString(h.name)
	sb.WriteString(`_bucket{le="+Inf"} `)
	sb.WriteString(strconv.FormatInt(total, 10))
	sb.WriteByte('\n')
	sb.WriteString(h.name)
	sb.WriteString("_sum ")
	sb.WriteString(formatFloat(h.Sum()))
	sb.WriteByte('\n')
	sb.WriteString(h.name)
	sb.WriteString("_count ")
	sb.WriteString(strconv.FormatInt(total, 10))
	sb.WriteByte('\n')
}

func (h *Histogram) snapshot(into map[string]float64) {
	into[h.name+"_count"] = float64(h.count.Load())
	into[h.name+"_sum"] = h.Sum()
}
