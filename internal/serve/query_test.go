package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/interval"
	"repro/internal/memdb"
)

func queryServer(t *testing.T, verify bool) (*Server, *httptest.Server) {
	t.Helper()
	db := testDB()
	s, err := NewServer(Config{
		Miner:       minerConfig(db),
		QueryDB:     db,
		QueryVerify: verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postQuery(t *testing.T, url, contentType, body string) (int, http.Header, queryReply) {
	t.Helper()
	resp, err := http.Post(url+"/query", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	var reply queryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("query reply: %v", err)
	}
	return resp.StatusCode, resp.Header, reply
}

func TestQueryEndpoint(t *testing.T) {
	s, ts := queryServer(t, true)
	postNDJSON(t, ts.URL, synthRecords(800, 7))
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}

	// Raw-SQL body. The whole-table probe may hit or miss depending on the
	// mined regions; correctness and labelling are what we pin here.
	sql := "SELECT TOP 5 objid FROM Photoz WHERE objid BETWEEN 1237657855534432934 AND 1237666210342830434"
	status, hdr, reply := postQuery(t, ts.URL, "text/plain", sql)
	if status != http.StatusOK || reply.Error != "" {
		t.Fatalf("status %d, error %q", status, reply.Error)
	}
	if got := hdr.Get("X-Cache"); got != "HIT" && got != "MISS" {
		t.Fatalf("X-Cache = %q", got)
	}
	if hdr.Get("X-Cache-Generation") == "" {
		t.Fatal("missing X-Cache-Generation")
	}
	if reply.RowCount != len(reply.Rows) || len(reply.Columns) == 0 {
		t.Fatalf("reply shape: %+v", reply)
	}

	// JSON body form must behave identically.
	body, _ := json.Marshal(map[string]string{"sql": sql})
	status2, _, reply2 := postQuery(t, ts.URL, "application/json", string(body))
	if status2 != http.StatusOK {
		t.Fatalf("json body status %d", status2)
	}
	if a, b := mustJSON(t, reply.Rows), mustJSON(t, reply2.Rows); a != b {
		t.Fatalf("raw vs json body rows differ:\n%s\n%s", a, b)
	}

	// Parse errors surface as 400 with the executor's message.
	status3, _, reply3 := postQuery(t, ts.URL, "text/plain", "DROP TABLE Photoz")
	if status3 != http.StatusBadRequest || reply3.Error == "" {
		t.Fatalf("bad statement: status %d, error %q", status3, reply3.Error)
	}

	// The oracle ran on every hit; none may have failed.
	if m := s.QueryCache().Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}

	// Metrics expose the semantic-cache counters.
	_, _, metricsBody := get(t, ts.URL+"/metrics", "")
	var metrics map[string]any
	if err := json.Unmarshal(metricsBody, &metrics); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"semcache_hits", "semcache_misses", "semcache_regions",
		"semcache_generation", "semcache_bytes_served", "semcache_per_region"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
}

func TestQueryUnconfigured(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("SELECT 1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReportETag drives the If-None-Match flow across all three content
// types: same generation → 304 with no body, new epoch → fresh body and a
// changed tag, and the tag must differ across formats so a client cache
// never serves a CSV body for a JSON request.
func TestReportETag(t *testing.T) {
	_, ts := queryServer(t, false)
	postNDJSON(t, ts.URL, synthRecords(300, 3))
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}

	tags := map[string]string{}
	for _, accept := range []string{"text/plain", "text/csv", "application/json"} {
		status, hdr, body := get(t, ts.URL+"/report", accept)
		if status != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d bytes", accept, status, len(body))
		}
		etag := hdr.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", accept)
		}
		tags[accept] = etag

		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/report", nil)
		req.Header.Set("Accept", accept)
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified || buf.Len() != 0 {
			t.Fatalf("%s: conditional status %d, %d bytes; want 304 empty", accept, resp.StatusCode, buf.Len())
		}
	}
	if tags["text/plain"] == tags["text/csv"] || tags["text/csv"] == tags["application/json"] {
		t.Fatalf("formats share an ETag: %v", tags)
	}

	// A new epoch must invalidate: the same If-None-Match now gets a body.
	postNDJSON(t, ts.URL, synthRecords(300, 4))
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/report", nil)
	req.Header.Set("If-None-Match", tags["text/plain"])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || buf.Len() == 0 {
		t.Fatalf("post-epoch conditional: status %d, %d bytes; want fresh 200", resp.StatusCode, buf.Len())
	}
	if resp.Header.Get("ETag") == tags["text/plain"] {
		t.Fatal("ETag unchanged across epochs")
	}
}

// TestSemCacheSmoke is the make semcache-smoke gate: mine a 5k-query log,
// prefetch regions, serve the same statements through POST /query with the
// byte-identity oracle on, and require zero oracle failures plus a real hit
// population. It exercises the full mine → prefetch → serve → verify loop
// in one process.
func TestSemCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke gate is slow")
	}
	db := testDB()
	s, err := NewServer(Config{
		Miner:       minerConfig(db),
		QueryDB:     db,
		QueryVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := synthRecords(5000, 99)
	for start := 0; start < len(recs); start += 1000 {
		end := start + 1000
		if end > len(recs) {
			end = len(recs)
		}
		postNDJSON(t, ts.URL, recs[start:end])
	}
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}

	opts := memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	served := 0
	for _, rec := range recs {
		status, _, reply := postQuery(t, ts.URL, "text/plain", rec.SQL)
		direct, derr := db.ExecuteSQL(rec.SQL, opts)
		if derr != nil {
			if status != http.StatusBadRequest {
				t.Fatalf("direct failed but /query served %q: %d", rec.SQL, status)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("/query failed for %q: %d %s", rec.SQL, status, reply.Error)
		}
		if reply.RowCount != len(direct.Rows) {
			t.Fatalf("row count mismatch for %q: served %d, direct %d (hit=%v)",
				rec.SQL, reply.RowCount, len(direct.Rows), reply.Cache.Hit)
		}
		served++
	}
	m := s.QueryCache().Metrics()
	if m.VerifyFailed != 0 {
		t.Fatalf("oracle failures: %+v", m)
	}
	if m.Hits == 0 {
		t.Fatal("smoke run produced no cache hits")
	}
	ratio := float64(m.Hits) / float64(m.Hits+m.Misses)
	t.Logf("served=%d hits=%d misses=%d ratio=%.3f regions=%d", served, m.Hits, m.Misses, ratio, m.Regions)
	if ratio < 0.5 {
		t.Errorf("hit ratio %.3f below the 0.5 acceptance floor", ratio)
	}
}

// TestSemCacheSmokeV2 is the v2 half of the semcache-smoke gate: the cache's
// new serving paths and the byte budget exercised end-to-end over HTTP. Two
// half-regions tile Photoz.objid, so a band probe inside one half must be a
// single-region hit (with a parseable X-Cache-Staleness), a spanning probe
// must compose both (X-Cache-Regions lists them), and a spanning HAVING
// probe must combine partial aggregates. A second server under a budget of
// one region's bytes must evict the other and keep serving its own band.
// The byte-identity oracle is on throughout: zero verify failures proves
// every path reproduced direct execution.
func TestSemCacheSmokeV2(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke gate is slow")
	}
	db := testDB()
	iv, ok := db.ContentInterval("Photoz.objid")
	if !ok {
		t.Fatal("no content interval for Photoz.objid")
	}
	mid := iv.Lo + (iv.Hi-iv.Lo)/2
	w := iv.Hi - iv.Lo
	halves := []*aggregate.Summary{
		semBand(1, interval.Closed(iv.Lo, mid)),
		semBand(2, interval.Interval{Lo: mid, LoOpen: true, Hi: iv.Hi}),
	}
	num := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	band := func(lo, hi float64) string {
		return fmt.Sprintf("SELECT objid FROM Photoz WHERE objid >= %s AND objid <= %s", num(lo), num(hi))
	}

	s, err := NewServer(Config{
		Miner:       minerConfig(db),
		QueryDB:     db,
		QueryVerify: true,
		CacheTTL:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.QueryCache().Install(1, halves)

	// Single-region band: one containing half serves it; staleness header
	// must parse (TTL configured, so the info is populated).
	status, hdr, reply := postQuery(t, ts.URL, "text/plain", band(iv.Lo+w/16, mid-w/16))
	if status != http.StatusOK || hdr.Get("X-Cache") != "HIT" || reply.Cache.Path != "single" {
		t.Fatalf("band probe: status %d, X-Cache %q, path %q (reason %q)",
			status, hdr.Get("X-Cache"), reply.Cache.Path, reply.Cache.Reason)
	}
	if st, err := strconv.ParseFloat(hdr.Get("X-Cache-Staleness"), 64); err != nil || st < 0 {
		t.Fatalf("X-Cache-Staleness %q: %v", hdr.Get("X-Cache-Staleness"), err)
	}

	// Spanning band: no single half contains it; the covering set must
	// compose both and say so in X-Cache-Regions.
	status, hdr, reply = postQuery(t, ts.URL, "text/plain", band(iv.Lo+w/16, iv.Hi-w/16))
	if status != http.StatusOK || hdr.Get("X-Cache") != "HIT" || reply.Cache.Path != "composed" {
		t.Fatalf("spanning probe: status %d, X-Cache %q, path %q (reason %q)",
			status, hdr.Get("X-Cache"), reply.Cache.Path, reply.Cache.Reason)
	}
	if got := hdr.Get("X-Cache-Regions"); got != "1,2" {
		t.Fatalf("X-Cache-Regions = %q, want \"1,2\"", got)
	}

	// Spanning aggregate: the HAVING class, answered by partial-aggregate
	// combine across the same cover. The WHERE spans both halves whole —
	// the combine only fires when every member row satisfies the WHERE, so
	// partial counts are exact.
	agg := fmt.Sprintf(
		"SELECT objid, COUNT(*), MIN(objid), MAX(objid) FROM Photoz WHERE objid >= %s AND objid <= %s GROUP BY objid HAVING COUNT(*) >= 1",
		num(iv.Lo), num(iv.Hi))
	status, hdr, reply = postQuery(t, ts.URL, "text/plain", agg)
	if status != http.StatusOK || hdr.Get("X-Cache") != "HIT" || reply.Cache.Path != "preagg" {
		t.Fatalf("aggregate probe: status %d, X-Cache %q, path %q (reason %q)",
			status, hdr.Get("X-Cache"), reply.Cache.Path, reply.Cache.Reason)
	}
	if got := hdr.Get("X-Cache-Regions"); got != "1,2" {
		t.Fatalf("aggregate X-Cache-Regions = %q, want \"1,2\"", got)
	}
	if m := s.QueryCache().Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}

	var r1Bytes int64
	for _, rm := range s.QueryCache().Metrics().PerRegion {
		if rm.ID == 1 {
			r1Bytes = rm.Bytes
		}
	}
	if r1Bytes == 0 {
		t.Fatal("region 1 has no resident bytes")
	}

	// Budget-pressure eviction: shrinking the live budget to one half's
	// bytes must demote the colder half (region 1 took the single-region
	// hit, so region 2 goes), and its band must now miss.
	s.QueryCache().SetBudget(r1Bytes)
	m := s.QueryCache().Metrics()
	if m.Evicted == 0 || m.Regions != 1 || m.BytesResident > r1Bytes {
		t.Fatalf("budget shrink did not evict: %+v", m)
	}
	status, hdr, reply = postQuery(t, ts.URL, "text/plain", band(mid+w/16, iv.Hi-w/16))
	if status != http.StatusOK || hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("evicted band still hits: status %d, X-Cache %q (path %q)",
			status, hdr.Get("X-Cache"), reply.Cache.Path)
	}

	// Cold install under the same budget: only one half fits; the trim
	// keeps the earlier candidate and the other half shadows.
	s2, err := NewServer(Config{
		Miner:       minerConfig(db),
		QueryDB:     db,
		QueryVerify: true,
		CacheBudget: r1Bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	s2.QueryCache().Install(1, halves)

	status, hdr, _ = postQuery(t, ts2.URL, "text/plain", band(iv.Lo+w/16, mid-w/16))
	if status != http.StatusOK || hdr.Get("X-Cache") != "HIT" {
		t.Fatalf("budget server band 1: status %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	status, hdr, reply = postQuery(t, ts2.URL, "text/plain", band(mid+w/16, iv.Hi-w/16))
	if status != http.StatusOK || hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("budget server band 2: status %d, X-Cache %q (path %q)",
			status, hdr.Get("X-Cache"), reply.Cache.Path)
	}
	m2 := s2.QueryCache().Metrics()
	if m2.BytesResident > r1Bytes || m2.Regions != 1 || m2.ShadowRegions != 1 {
		t.Fatalf("budget pressure not applied: %+v", m2)
	}
	if m2.VerifyFailed != 0 {
		t.Fatalf("budget server verify failures: %+v", m2)
	}

	// The /metrics endpoint must surface the v2 counters.
	_, _, metricsBody := get(t, ts2.URL+"/metrics", "")
	var metrics map[string]any
	if err := json.Unmarshal(metricsBody, &metrics); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"semcache_bytes_resident", "semcache_budget",
		"semcache_evicted", "semcache_composed_hits", "semcache_preagg_hits",
		"semcache_shadow_regions"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
}

// semBand builds a one-dimension Photoz.objid region summary for the v2
// smoke test.
func semBand(id int, div interval.Interval) *aggregate.Summary {
	box := interval.NewBox()
	box.Set("Photoz.objid", div)
	return &aggregate.Summary{ID: id, Relations: []string{"Photoz"}, Box: box}
}
