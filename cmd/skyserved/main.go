// Command skyserved runs the online access-area mining service: it ingests
// query-log records over HTTP, extracts access areas through the streaming
// pipeline with a warm template cache, re-clusters them in epochs, and
// serves live Table-1-style reports.
//
// Usage:
//
//	skyserved [-addr :8080] [-eps 0.06] [-minpts 8] [-snapshot state.json]
//	          [-debug-addr :6060]
//
// Endpoints:
//
//	POST /ingest    JSON array, object, or NDJSON stream of records
//	POST /flush     drain the queue and re-cluster now
//	POST /snapshot  persist state now
//	POST /query     execute a SELECT via the semantic result cache
//	GET  /report    latest clustering (?format=text|csv|json, ?top=N,
//	                ETag/If-None-Match)
//	GET  /stats     cumulative pipeline statistics
//	GET  /metrics   ingest/cache/epoch/semantic-cache counters
//	                (?format=prom for Prometheus exposition)
//	GET  /debug/slowlog  top-K slowest statements by fingerprint
//	GET  /healthz   readiness
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/ plus the same /metrics and /debug/slowlog views.
//
// Drive it with loggen:
//
//	skyserved -addr :8080 &
//	loggen -n 20000 -replay -rate 2000 -url http://localhost:8080/ingest
//	curl -s -X POST http://localhost:8080/flush
//	curl -s http://localhost:8080/report
//
// After the first epoch, POST /query answers statements from the mined
// interest regions when containment proves it sound (X-Cache: HIT), falling
// back to direct execution otherwise:
//
//	curl -s -X POST --data 'SELECT objid FROM Photoz WHERE objid BETWEEN 1 AND 9' \
//	    http://localhost:8080/query
//
// On SIGINT/SIGTERM the server drains in-flight extraction, runs a final
// epoch and (with -snapshot) persists state for a replay-free restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/skyserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	eps := flag.Float64("eps", 0.06, "DBSCAN eps")
	autoEps := flag.Bool("autoeps", false, "derive eps from the k-distance knee each epoch")
	minPts := flag.Int("minpts", 8, "DBSCAN minPts (weighted by query multiplicity)")
	mode := flag.String("mode", "endpoint", "d_pred mode: endpoint or literal")
	workers := flag.Int("workers", 0, "extraction/clustering parallelism (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "sampling seed")
	rows := flag.Int("rows", 2000, "synthetic database rows per table (access(a) seeding + coverage)")
	queue := flag.Int("queue", 4096, "ingest queue capacity (full queue answers 429)")
	batch := flag.Int("batch", 256, "max records per pipeline batch")
	epochAreas := flag.Int("epoch-areas", 512, "new distinct areas that trigger a re-clustering epoch")
	epochInterval := flag.Duration("epoch-interval", 15*time.Second, "re-cluster on this timer when new areas are pending (0 = off)")
	snapshot := flag.String("snapshot", "", "snapshot path (restored on start, written on shutdown; empty = none)")
	top := flag.Int("top", 0, "default cluster cap for /report (0 = all)")
	queryVerify := flag.Bool("query-verify", false, "check every cache-served /query result against direct execution (oracle; slow)")
	deltaEpochs := flag.Bool("delta-epochs", false, "cluster only the delta between epochs (representatives + noise + new areas); flush/shutdown always re-cluster fully")
	anchorEvery := flag.Int("anchor-every", 8, "with -delta-epochs, run a full re-cluster every Nth epoch")
	drain := flag.Duration("drain", time.Minute, "graceful-shutdown drain budget")
	debugAddr := flag.String("debug-addr", "", "debug listener for pprof/metrics/slowlog (empty = off)")
	flag.Parse()

	dmode := distance.ModeEndpoint
	if *mode == "literal" {
		dmode = distance.ModePaperLiteral
	}
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: *rows, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)

	s, err := serve.NewServer(serve.Config{
		Miner: core.Config{
			Schema: skyserver.Schema(), Stats: stats,
			Eps: *eps, MinPts: *minPts, AutoEps: *autoEps,
			Mode: dmode, Seed: *seed, Workers: *workers,
			DeltaEpochs: *deltaEpochs, FullReclusterEvery: *anchorEvery,
		},
		Coverage:      db,
		QueueSize:     *queue,
		BatchSize:     *batch,
		EpochAreas:    *epochAreas,
		EpochInterval: *epochInterval,
		SnapshotPath:  *snapshot,
		ReportTop:     *top,
		QueryDB:       db,
		QueryVerify:   *queryVerify,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyserved: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("skyserved: listening on %s", *addr)

	// Debug listener: pprof plus the Prometheus and slowlog views, kept off
	// the service port so profiling is never exposed to ingest clients.
	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.Registry().WritePrometheus(w)
			_ = obs.Default().WritePrometheus(w)
		})
		mux.Handle("/debug/slowlog", s.Handler())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("skyserved: debug listener: %v", err)
			}
		}()
		log.Printf("skyserved: debug (pprof) on %s", *debugAddr)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("skyserved: %v — draining (budget %s)", sig, *drain)
	case err := <-errCh:
		log.Printf("skyserved: listener: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	_ = httpSrv.Shutdown(ctx)
	if err := s.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		log.Printf("skyserved: shutdown: %v", err)
	}
	log.Printf("skyserved: stopped")
}
