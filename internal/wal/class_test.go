package wal

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/qlog"
)

// classOf is the deterministic class assignment the class tests use;
// every third record stays unclassified to exercise the optional field.
func classOf(i int) string {
	switch i % 3 {
	case 0:
		return "bot"
	case 1:
		return "human"
	default:
		return ""
	}
}

func mkClassRecord(i int) (qlog.Record, uint64) {
	rec, _ := mkRecord(i)
	rec.Class = classOf(i)
	// All fingerprints valid: compaction drops fp==0 records, and this test
	// is about lossless class round-trips.
	return rec, uint64(1 + i%5)
}

// Class-tagged records must round-trip through append, sync, reopen and
// replay — including through compaction's group entries, which fold
// duplicates only within one class.
func TestClassSurvivesReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const n = 240
	for i := 0; i < n; i++ {
		rec, fp := mkClassRecord(i)
		if _, err := w.Append(rec, fp); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		got := collectReplay(t, w, 0)
		if len(got) != n {
			t.Fatalf("%s: replayed %d records, want %d", stage, len(got), n)
		}
		// Compaction groups families, which reorders records within a
		// segment; seqs are unique, so sorting restores the logical order.
		sort.Slice(got, func(i, j int) bool { return got[i].Seq < got[j].Seq })
		for i, rec := range got {
			want, _ := mkClassRecord(i)
			if !reflect.DeepEqual(rec, want) {
				t.Fatalf("%s: record %d = %+v, want %+v", stage, i, rec, want)
			}
		}
	}
	check("pre-compaction")

	// Compact everything below the durable tip and re-check: group expansion
	// must reproduce each record's class.
	w.SetCompactFloor(w.DurableOffset())
	st, err := w.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 || st.Deduped == 0 {
		t.Fatalf("compaction did nothing: %+v", st)
	}
	check("post-compaction")

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	check("post-reopen")
}

// A WAL written without classes must be byte-identical to the original
// format: the optional trailing field is only emitted when non-empty.
func TestClasslessEncodingUnchanged(t *testing.T) {
	rec := qlog.Record{Seq: 7, Time: 28, User: "u1", SQL: "SELECT 1 FROM t"}
	plain := encodeRecord(nil, &rec, 42)
	dec, err := decodeRecord(plain[1:])
	if err != nil {
		t.Fatal(err)
	}
	if dec.rec.Class != "" {
		t.Fatalf("classless decode got class %q", dec.rec.Class)
	}
	tagged := rec
	tagged.Class = "bot"
	withClass := encodeRecord(nil, &tagged, 42)
	if len(withClass) != len(plain)+1+len("bot") {
		t.Fatalf("class field added %d bytes, want %d", len(withClass)-len(plain), 1+len("bot"))
	}
	dec2, err := decodeRecord(withClass[1:])
	if err != nil {
		t.Fatal(err)
	}
	if dec2.rec.Class != "bot" {
		t.Fatalf("decoded class %q, want bot", dec2.rec.Class)
	}

	g := group{fp: 9, user: "u2", sql: "SELECT 2", seqs: []int{1, 5}, times: []int64{4, 20}}
	gp := encodeGroup(nil, &g)
	gdec, err := decodeGroup(gp[1:])
	if err != nil {
		t.Fatal(err)
	}
	if gdec.class != "" {
		t.Fatalf("classless group decode got class %q", gdec.class)
	}
	g.class = "human"
	gp2 := encodeGroup(nil, &g)
	gdec2, err := decodeGroup(gp2[1:])
	if err != nil {
		t.Fatal(err)
	}
	if gdec2.class != "human" {
		t.Fatalf("decoded group class %q, want human", gdec2.class)
	}
	if fmt.Sprintf("%v", gdec2.seqs) != "[1 5]" {
		t.Fatalf("group seqs corrupted: %v", gdec2.seqs)
	}
}
