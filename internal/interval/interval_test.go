package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptiness(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Closed(1, 3), false},
		{Closed(3, 1), true},
		{Point(5), false},
		{Open(5, 5), true},
		{Interval{Lo: 5, Hi: 5, LoOpen: true}, true},
		{Interval{Lo: 5, Hi: 5, HiOpen: true}, true},
		{Full(), false},
		{Empty(), true},
	}
	for _, c := range cases {
		if got := c.iv.IsEmpty(); got != c.want {
			t.Errorf("IsEmpty(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestWidth(t *testing.T) {
	if w := Closed(1, 4).Width(); w != 3 {
		t.Errorf("width [1,4] = %v, want 3", w)
	}
	if w := Empty().Width(); w != 0 {
		t.Errorf("width empty = %v, want 0", w)
	}
	if w := Full().Width(); !math.IsInf(w, 1) {
		t.Errorf("width full = %v, want +Inf", w)
	}
	if w := Point(2).Width(); w != 0 {
		t.Errorf("width point = %v, want 0", w)
	}
}

func TestContains(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 3, LoOpen: true} // (1, 3]
	for v, want := range map[float64]bool{0: false, 1: false, 2: true, 3: true, 4: false} {
		if got := iv.Contains(v); got != want {
			t.Errorf("(1,3].Contains(%v) = %v, want %v", v, got, want)
		}
	}
	if !Full().Contains(1e308) {
		t.Error("Full should contain any finite value")
	}
}

func TestIntersect(t *testing.T) {
	got := Closed(1, 5).Intersect(Closed(3, 8))
	if !got.Equal(Closed(3, 5)) {
		t.Errorf("[1,5] ∩ [3,8] = %v, want [3,5]", got)
	}
	got = Below(3, true).Intersect(Above(2, true)) // (-inf,3) ∩ (2,inf) = (2,3)
	if !got.Equal(Open(2, 3)) {
		t.Errorf("got %v, want (2,3)", got)
	}
	if !Closed(1, 2).Intersect(Closed(3, 4)).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
	// Openness at shared boundary: [1,3) ∩ [3,5] is empty.
	if !(Interval{Lo: 1, Hi: 3, HiOpen: true}).Intersect(Closed(3, 5)).IsEmpty() {
		t.Error("[1,3) ∩ [3,5] should be empty")
	}
	// [1,3] ∩ [3,5] = [3,3].
	if got := Closed(1, 3).Intersect(Closed(3, 5)); !got.Equal(Point(3)) {
		t.Errorf("[1,3] ∩ [3,5] = %v, want [3,3]", got)
	}
}

func TestHullAndUnion(t *testing.T) {
	if got := Closed(1, 2).Hull(Closed(4, 5)); !got.Equal(Closed(1, 5)) {
		t.Errorf("hull = %v, want [1,5]", got)
	}
	if got := Empty().Hull(Closed(1, 2)); !got.Equal(Closed(1, 2)) {
		t.Errorf("hull with empty = %v, want [1,2]", got)
	}
	if _, ok := Closed(1, 2).Union(Closed(4, 5)); ok {
		t.Error("disjoint non-adjacent union should fail")
	}
	u, ok := Closed(1, 3).Union(Closed(2, 5))
	if !ok || !u.Equal(Closed(1, 5)) {
		t.Errorf("union = %v ok=%v, want [1,5]", u, ok)
	}
	// Adjacency: (-inf,3) ∪ [3,inf) = full.
	u, ok = Below(3, true).Union(Above(3, false))
	if !ok || !u.IsFull() {
		t.Errorf("(-inf,3) ∪ [3,inf) = %v ok=%v, want full", u, ok)
	}
	// Two open endpoints at the same value do not join: (-inf,3) ∪ (3,inf).
	if _, ok := Below(3, true).Union(Above(3, true)); ok {
		t.Error("(-inf,3) ∪ (3,inf) should not be a single interval")
	}
}

func TestOverlap(t *testing.T) {
	if l := Below(3, true).OverlapLen(Above(2, true)); l != 1 {
		t.Errorf("overlap len = %v, want 1 (paper §5.2 example)", l)
	}
	if !Closed(1, 3).Overlaps(Closed(3, 5)) {
		t.Error("[1,3] and [3,5] share point 3")
	}
}

func TestMidpoint(t *testing.T) {
	if m := Closed(2, 6).Midpoint(); m != 4 {
		t.Errorf("midpoint = %v, want 4", m)
	}
	if m := Full().Midpoint(); !math.IsNaN(m) {
		t.Errorf("midpoint of full = %v, want NaN", m)
	}
}

func TestString(t *testing.T) {
	cases := map[string]Interval{
		"[1, 3)":       {Lo: 1, Hi: 3, HiOpen: true},
		"(-inf, +inf)": Full(),
		"∅":            Empty(),
		"[5, 5]":       Point(5),
	}
	for want, iv := range cases {
		if got := iv.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", iv, got, want)
		}
	}
}

// randInterval generates a bounded interval (possibly empty) for property
// tests.
func randInterval(r *rand.Rand) Interval {
	lo := float64(r.Intn(21) - 10)
	hi := lo + float64(r.Intn(12)-1)
	return Interval{Lo: lo, Hi: hi, LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0}
}

func TestPropIntersectCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		x := a.Intersect(b)
		return a.ContainsInterval(x) && b.ContainsInterval(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropHullSuperset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		h := a.Hull(b)
		return h.ContainsInterval(a) && h.ContainsInterval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropWidthMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		x := a.Intersect(b)
		return x.Width() <= a.Width()+1e-12 && x.Width() <= b.Width()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
