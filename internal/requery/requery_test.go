package requery

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/extract"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/skyserver"
)

func baselineDB(t *testing.T) *memdb.DB {
	t.Helper()
	return skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 300, Seed: 1})
}

func TestResultBoxFromQueries(t *testing.T) {
	db := baselineDB(t)
	b := &Baseline{DB: db}
	recs := []qlog.Record{
		{Seq: 0, User: "u1", SQL: "SELECT ra, dec FROM PhotoObjAll WHERE ra <= 100"},
	}
	res := b.Run(recs)
	if len(res.Areas) != 1 {
		t.Fatalf("areas = %d, errors = %v, empty = %d", len(res.Areas), res.Errors, res.EmptyResults)
	}
	box := res.Areas[0].Box
	ra := box.Get("PhotoObjAll.ra")
	if ra.Hi > 100 || ra.Lo < 0 {
		t.Errorf("ra box = %v", ra)
	}
}

func TestEmptyAreaQueriesYieldNothing(t *testing.T) {
	// The §6.6 quality argument: queries into empty space (cluster 18's
	// dec < -50, cluster 23/24's out-of-content redshifts) return no rows,
	// so re-querying cannot discover those access areas.
	db := baselineDB(t)
	b := &Baseline{DB: db}
	recs := []qlog.Record{
		{Seq: 0, User: "u", SQL: "SELECT ra, dec FROM PhotoObjAll WHERE dec BETWEEN -90 AND -50"},
		{Seq: 1, User: "u", SQL: "SELECT z FROM Photoz WHERE z >= 3.0 AND z <= 6.5"},
		{Seq: 2, User: "u", SQL: "SELECT z FROM Photoz WHERE z >= -0.98 AND z <= -0.3"},
	}
	res := b.Run(recs)
	if len(res.Areas) != 0 {
		t.Errorf("areas = %d, want 0", len(res.Areas))
	}
	if res.EmptyResults != 3 {
		t.Errorf("empty = %d, want 3", res.EmptyResults)
	}
}

func TestErrorCategories(t *testing.T) {
	db := baselineDB(t)
	b := &Baseline{DB: db, StrictTSQL: true, RowLimit: 10}
	recs := []qlog.Record{
		{Seq: 0, User: "u", SQL: "SELECT Galaxies.objid FROM Galaxies LIMIT 10"}, // dialect... but parse ok; unknown table? Galaxies unknown -> dialect first
		{Seq: 1, User: "u", SQL: "SELEC * FROM PhotoObjAll"},
		{Seq: 2, User: "u", SQL: "SELECT ra FROM PhotoObjAll"}, // 300 rows > RowLimit
	}
	res := b.Run(recs)
	if res.Errors["dialect"] != 1 {
		t.Errorf("dialect errors = %d (%v)", res.Errors["dialect"], res.Errors)
	}
	if res.Errors["parse"] != 1 {
		t.Errorf("parse errors = %d", res.Errors["parse"])
	}
	if res.Errors["row-limit"] != 1 {
		t.Errorf("row-limit errors = %d", res.Errors["row-limit"])
	}
}

func TestRateLimiting(t *testing.T) {
	db := baselineDB(t)
	b := &Baseline{DB: db, RateLimiter: memdb.NewRateLimiter(2)}
	var recs []qlog.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, qlog.Record{Seq: i, Time: int64(i), User: "bot",
			SQL: "SELECT TOP 1 ra FROM PhotoObjAll"})
	}
	res := b.Run(recs)
	if res.Errors["rate-limit"] != 3 {
		t.Errorf("rate-limit errors = %d, want 3", res.Errors["rate-limit"])
	}
	if len(res.Areas) != 2 {
		t.Errorf("areas = %d, want 2", len(res.Areas))
	}
}

func TestExtractionHandlesWhatRequeryCannot(t *testing.T) {
	// End-to-end comparison on a small synthetic log slice: extraction
	// processes strictly more queries than re-querying under SkyServer
	// constraints.
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 400, Seed: 21})
	var recs []qlog.Record
	for _, e := range entries {
		recs = append(recs, qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL})
	}
	db := baselineDB(t)
	b := &Baseline{DB: db, StrictTSQL: true, RateLimiter: memdb.NewRateLimiter(60)}
	res := b.Run(recs)

	processedByRequery := res.Processed()
	if processedByRequery >= len(recs) {
		t.Fatalf("requery processed everything (%d)", processedByRequery)
	}
	if res.EmptyResults == 0 {
		t.Error("expected empty-result queries (empty-area templates)")
	}
	if res.Errors["dialect"] == 0 {
		t.Error("expected dialect errors from MySQL queries")
	}
}

func TestRelationsOfJoin(t *testing.T) {
	db := baselineDB(t)
	b := &Baseline{DB: db}
	recs := []qlog.Record{{Seq: 0, User: "u",
		SQL: "SELECT * FROM galSpecExtra JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID"}}
	res := b.Run(recs)
	if len(res.Areas) != 1 {
		t.Fatalf("areas = %d (%v)", len(res.Areas), res.Errors)
	}
	if len(res.Areas[0].Relations) != 2 {
		t.Errorf("relations = %v", res.Areas[0].Relations)
	}
}

// TestPropResultsWithinAccessArea cross-checks extraction against real
// execution: for randomly generated simple queries, every row the engine
// returns must fall inside the extracted access area's per-column bounds —
// the containment direction of Definition 4 (result-influencing tuples are
// a subset of the access area in the current state).
func TestPropResultsWithinAccessArea(t *testing.T) {
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 400, Seed: 5})
	ex := extract.New(skyserver.Schema())
	r := rand.New(rand.NewSource(11))

	type probe struct {
		table, col string
		lo, hi     float64
	}
	probes := []probe{
		{"PhotoObjAll", "ra", 0, 360},
		{"PhotoObjAll", "dec", -90, 90},
		{"SpecObjAll", "plate", 0, 6000},
		{"Photoz", "z", -1, 7},
		{"zooSpec", "p_el", 0, 1},
	}
	ops := []string{"<", "<=", ">", ">=", "="}
	for trial := 0; trial < 200; trial++ {
		p := probes[r.Intn(len(probes))]
		nPreds := 1 + r.Intn(2)
		where := ""
		for k := 0; k < nPreds; k++ {
			if k > 0 {
				where += " AND "
			}
			v := p.lo + r.Float64()*(p.hi-p.lo)
			where += fmt.Sprintf("%s %s %.3f", p.col, ops[r.Intn(len(ops))], v)
		}
		sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s", p.col, p.table, where)
		area, err := ex.ExtractSQL(sql)
		if err != nil {
			t.Fatalf("extract %q: %v", sql, err)
		}
		rs, err := db.ExecuteSQL(sql, memdb.ExecOptions{})
		if err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
		bounds := area.Bounds()
		col := p.table + "." + p.col
		set, constrained := bounds[col]
		for _, row := range rs.Rows {
			if row[0].Kind != memdb.Num {
				continue
			}
			if constrained && !set.Contains(row[0].Num) {
				t.Fatalf("%q: result value %v outside access area %s", sql, row[0].Num, set)
			}
		}
		// Contradictory areas must return no rows.
		if area.IsEmpty() && len(rs.Rows) > 0 {
			t.Fatalf("%q: empty area but %d rows", sql, len(rs.Rows))
		}
	}
}
