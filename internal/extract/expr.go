package extract

import (
	"strings"

	"repro/internal/predicate"
	"repro/internal/sqlparser"
)

// convert turns a WHERE/ON/HAVING-style Boolean expression into a predicate
// expression over canonical columns, flattening nested subqueries per
// Section 4.4.
func (st *state) convert(e sqlparser.Expr, sc *scope) (predicate.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			return st.convertAnd(flattenAnd(x), sc)
		case "OR":
			l, err := st.convert(x.L, sc)
			if err != nil {
				return nil, err
			}
			r, err := st.convert(x.R, sc)
			if err != nil {
				return nil, err
			}
			return predicate.NewOr(l, r), nil
		case "=", "<>", "<", "<=", ">", ">=":
			return st.convertComparison(x, sc)
		default:
			// A bare arithmetic expression in Boolean position is malformed
			// SQL; approximate as TRUE.
			st.approx()
			return trueExpr(), nil
		}

	case *sqlparser.UnaryExpr:
		if x.Op == "NOT" {
			inner, err := st.convert(x.X, sc)
			if err != nil {
				return nil, err
			}
			// Negating a flattened subquery constraint is the approximation
			// scheme of Section 4.4 (exact treatment requires [5]).
			if containsSubquery(x.X) {
				st.approx()
			}
			return predicate.NewNot(inner), nil
		}
		st.approx()
		return trueExpr(), nil

	case *sqlparser.BetweenExpr:
		// BETWEEN splits into two predicates (Section 4.1); NOT BETWEEN is
		// its negation.
		lo := &sqlparser.BinaryExpr{Op: ">=", L: x.X, R: x.Lo}
		hi := &sqlparser.BinaryExpr{Op: "<=", L: x.X, R: x.Hi}
		le, err := st.convertComparison(lo, sc)
		if err != nil {
			return nil, err
		}
		he, err := st.convertComparison(hi, sc)
		if err != nil {
			return nil, err
		}
		out := predicate.NewAnd(le, he)
		if x.Not {
			out = predicate.ToNNF(predicate.NewNot(out))
		}
		return out, nil

	case *sqlparser.InListExpr:
		// x IN (c1, ..., cn) is a disjunction of equalities.
		var kids []predicate.Expr
		for _, item := range x.List {
			eq, err := st.convertComparison(&sqlparser.BinaryExpr{Op: "=", L: x.X, R: item}, sc)
			if err != nil {
				return nil, err
			}
			kids = append(kids, eq)
		}
		out := predicate.NewOr(kids...)
		if x.Not {
			out = predicate.ToNNF(predicate.NewNot(out))
		}
		return out, nil

	case *sqlparser.ExistsExpr:
		flat, _, err := st.flattenSubqueryPredicate(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		if x.Not {
			st.approx()
			return predicate.ToNNF(predicate.NewNot(flat)), nil
		}
		return flat, nil

	case *sqlparser.InSubqueryExpr:
		flat, err := st.flattenMembership(x.X, predicate.Eq, x.Sub, sc, false)
		if err != nil {
			return nil, err
		}
		if x.Not {
			st.approx()
			return predicate.ToNNF(predicate.NewNot(flat)), nil
		}
		return flat, nil

	case *sqlparser.QuantifiedExpr:
		op, ok := predicate.ParseOp(x.Op)
		if !ok {
			st.approx()
			return trueExpr(), nil
		}
		// x θ ANY flattens exactly like IN with operator θ; θ ALL compares
		// against every subquery row, which the flattening over-approximates.
		return st.flattenMembership(x.X, op, x.Sub, sc, x.All)

	case *sqlparser.LikeExpr:
		return st.convertLike(x, sc)

	case *sqlparser.IsNullExpr:
		// NULL membership is outside the interval model of the data space;
		// any tuple of the relation can influence, so approximate as TRUE.
		return st.approxTrue(x, sc), nil

	case *sqlparser.CaseExpr:
		return st.approxTrue(x, sc), nil

	case *sqlparser.ColumnRef, *sqlparser.NumberLit, *sqlparser.StringLit,
		*sqlparser.NullLit, *sqlparser.ParamRef, *sqlparser.FuncCall,
		*sqlparser.ScalarSubquery:
		// Scalar used as a Boolean: not meaningful for access areas.
		return st.approxTrue(e, sc), nil

	default:
		st.approx()
		return trueExpr(), nil
	}
}

func trueExpr() predicate.Expr { return predicate.NewLeaf(predicate.True()) }

// approxTrue records the columns of an approximated construct in the A set
// (they are still referenced, Section 2.1) and yields the TRUE constraint.
func (st *state) approxTrue(e sqlparser.Expr, sc *scope) predicate.Expr {
	st.approx()
	st.touchExprColumns(e, sc)
	return trueExpr()
}

// touchExprColumns resolves every column reference inside e, adding it to
// the A set without contributing constraints.
func (st *state) touchExprColumns(e sqlparser.Expr, sc *scope) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		st.resolveColumn(x, sc)
	case *sqlparser.BinaryExpr:
		st.touchExprColumns(x.L, sc)
		st.touchExprColumns(x.R, sc)
	case *sqlparser.UnaryExpr:
		st.touchExprColumns(x.X, sc)
	case *sqlparser.BetweenExpr:
		st.touchExprColumns(x.X, sc)
		st.touchExprColumns(x.Lo, sc)
		st.touchExprColumns(x.Hi, sc)
	case *sqlparser.InListExpr:
		st.touchExprColumns(x.X, sc)
		for _, item := range x.List {
			st.touchExprColumns(item, sc)
		}
	case *sqlparser.LikeExpr:
		st.touchExprColumns(x.X, sc)
		st.touchExprColumns(x.Pattern, sc)
	case *sqlparser.IsNullExpr:
		st.touchExprColumns(x.X, sc)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			st.touchExprColumns(a, sc)
		}
	case *sqlparser.CaseExpr:
		if x.Operand != nil {
			st.touchExprColumns(x.Operand, sc)
		}
		for _, w := range x.Whens {
			st.touchExprColumns(w.When, sc)
			st.touchExprColumns(w.Then, sc)
		}
		if x.Else != nil {
			st.touchExprColumns(x.Else, sc)
		}
	}
}

// flattenAnd collects the terms of a left-deep AND chain.
func flattenAnd(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []sqlparser.Expr{e}
}

// convertAnd converts the terms of a conjunction. EXISTS terms referring to
// the same relation are grouped and their constraints OR-ed, implementing
// the grouping step of the Section 4.4 procedure (and hence Lemma 5: two
// AND-connected EXISTS on the same relation S constrain S disjunctively,
// not conjunctively).
func (st *state) convertAnd(terms []sqlparser.Expr, sc *scope) (predicate.Expr, error) {
	type group struct {
		key   string
		exprs []predicate.Expr
	}
	var order []string
	groups := make(map[string]*group)
	var parts []predicate.Expr
	for _, term := range terms {
		ex, ok := term.(*sqlparser.ExistsExpr)
		if !ok || ex.Not {
			c, err := st.convert(term, sc)
			if err != nil {
				return nil, err
			}
			parts = append(parts, c)
			continue
		}
		flat, key, err := st.flattenSubqueryPredicate(ex.Sub, sc)
		if err != nil {
			return nil, err
		}
		g, exists := groups[key]
		if !exists {
			g = &group{key: key}
			groups[key] = g
			order = append(order, key)
		}
		g.exprs = append(g.exprs, flat)
	}
	for _, key := range order {
		g := groups[key]
		parts = append(parts, predicate.NewOr(g.exprs...))
	}
	return predicate.NewAnd(parts...), nil
}

// containsSubquery reports whether e contains any nested SELECT.
func containsSubquery(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.ExistsExpr, *sqlparser.InSubqueryExpr, *sqlparser.QuantifiedExpr, *sqlparser.ScalarSubquery:
		return true
	case *sqlparser.BinaryExpr:
		return containsSubquery(x.L) || containsSubquery(x.R)
	case *sqlparser.UnaryExpr:
		return containsSubquery(x.X)
	case *sqlparser.BetweenExpr:
		return containsSubquery(x.X) || containsSubquery(x.Lo) || containsSubquery(x.Hi)
	case *sqlparser.InListExpr:
		if containsSubquery(x.X) {
			return true
		}
		for _, item := range x.List {
			if containsSubquery(item) {
				return true
			}
		}
	case *sqlparser.LikeExpr:
		return containsSubquery(x.X) || containsSubquery(x.Pattern)
	case *sqlparser.IsNullExpr:
		return containsSubquery(x.X)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			if containsSubquery(a) {
				return true
			}
		}
	}
	return false
}

// flattenSubqueryPredicate flattens an EXISTS-style subquery: its relations
// join the universal relation and its WHERE (plus join/HAVING constraints)
// becomes the returned expression (Lemma 4). The group key — the sorted
// relation list of the subquery — supports the same-relation OR-grouping.
func (st *state) flattenSubqueryPredicate(sub *sqlparser.SelectStatement, sc *scope) (predicate.Expr, string, error) {
	res, err := st.processQueryBodyCollect(sub, sc)
	if err != nil {
		return nil, "", err
	}
	key := strings.Join(normalizeRelations(res.scope.rels), ",")
	return res.constraint, key, nil
}

// flattenMembership flattens "x θ (SELECT out FROM ... WHERE w)" style
// constructs (IN, ANY/SOME, ALL, scalar comparison): the subquery joins the
// universal relation, w is conjoined, and x θ out is added when the output
// column is identifiable. approxAll marks the unavoidable over-approximation
// for ALL.
func (st *state) flattenMembership(x sqlparser.Expr, op predicate.Op, sub *sqlparser.SelectStatement, sc *scope, approxAll bool) (predicate.Expr, error) {
	res, err := st.processQueryBodyCollect(sub, sc)
	if err != nil {
		return nil, err
	}
	if approxAll {
		st.approx()
	}
	parts := []predicate.Expr{res.constraint}
	outCol, aggregated, ok := subqueryOutputColumn(sub, res.scope, st)
	if !ok {
		// Opaque output (constant, computed, or star): the membership
		// constraint on x is lost.
		st.approx()
		return predicate.NewAnd(parts...), nil
	}
	if aggregated {
		// x θ (SELECT AGG(col) ...): the comparison against the aggregate is
		// approximated by comparing against the column itself.
		st.approx()
	}
	cmp, err := st.comparisonToPred(x, op, sc, outCol)
	if err != nil {
		return nil, err
	}
	parts = append(parts, cmp)
	return predicate.NewAnd(parts...), nil
}

// subqueryOutputColumn identifies the canonical column a single-column
// subquery outputs. aggregated reports the column sits under an aggregate
// function.
func subqueryOutputColumn(sub *sqlparser.SelectStatement, sc *scope, st *state) (canonical string, aggregated, ok bool) {
	if len(sub.Select) != 1 {
		return "", false, false
	}
	item := sub.Select[0]
	if item.Star {
		return "", false, false
	}
	switch e := item.Expr.(type) {
	case *sqlparser.ColumnRef:
		col, ok := st.resolveColumn(e, sc)
		return col, false, ok
	case *sqlparser.FuncCall:
		if e.IsAggregate() && len(e.Args) == 1 {
			if cr, ok := e.Args[0].(*sqlparser.ColumnRef); ok {
				col, rok := st.resolveColumn(cr, sc)
				return col, true, rok
			}
		}
	}
	return "", false, false
}

// comparisonToPred builds the atomic predicate "left θ rightColumn" where
// rightCanonical is already resolved; left is resolved in the outer query's
// scope.
func (st *state) comparisonToPred(left sqlparser.Expr, op predicate.Op, outer *scope, rightCanonical string) (predicate.Expr, error) {
	switch l := left.(type) {
	case *sqlparser.ColumnRef:
		lcol, ok := st.resolveColumn(l, outer)
		if !ok {
			st.approx()
			return trueExpr(), nil
		}
		return predicate.NewLeaf(predicate.Cols(lcol, op, rightCanonical)), nil
	case *sqlparser.NumberLit:
		return predicate.NewLeaf(predicate.CC(rightCanonical, op.Flip(), numValue(l))), nil
	case *sqlparser.StringLit:
		return predicate.NewLeaf(predicate.CC(rightCanonical, op.Flip(), strValue(l))), nil
	default:
		st.approx()
		return trueExpr(), nil
	}
}

// convertComparison maps a comparison to an atomic predicate: column vs
// constant (folding constant arithmetic), column vs column, or a flattened
// subquery comparison.
func (st *state) convertComparison(b *sqlparser.BinaryExpr, sc *scope) (predicate.Expr, error) {
	op, ok := predicate.ParseOp(b.Op)
	if !ok {
		st.approx()
		return trueExpr(), nil
	}
	// Scalar subqueries on either side flatten like quantified comparisons.
	if sub, isSub := b.R.(*sqlparser.ScalarSubquery); isSub {
		return st.flattenMembership(b.L, op, sub.Sub, sc, false)
	}
	if sub, isSub := b.L.(*sqlparser.ScalarSubquery); isSub {
		return st.flattenMembership(b.R, op.Flip(), sub.Sub, sc, false)
	}

	lCol, lIsCol := b.L.(*sqlparser.ColumnRef)
	rCol, rIsCol := b.R.(*sqlparser.ColumnRef)
	lVal, lIsVal := st.foldConst(b.L)
	rVal, rIsVal := st.foldConst(b.R)

	switch {
	case lIsCol && rIsVal:
		col, ok := st.resolveColumn(lCol, sc)
		if !ok {
			st.approx()
			return trueExpr(), nil
		}
		return predicate.NewLeaf(predicate.CC(col, op, rVal)), nil
	case lIsVal && rIsCol:
		col, ok := st.resolveColumn(rCol, sc)
		if !ok {
			st.approx()
			return trueExpr(), nil
		}
		return predicate.NewLeaf(predicate.CC(col, op.Flip(), lVal)), nil
	case lIsCol && rIsCol:
		lc, lok := st.resolveColumn(lCol, sc)
		rc, rok := st.resolveColumn(rCol, sc)
		if !lok || !rok {
			st.approx()
			return trueExpr(), nil
		}
		if lc == rc {
			// A column compared with itself: a = a is TRUE, a <> a FALSE
			// (ignoring NULLs, consistent with the data-space model).
			switch op {
			case predicate.Eq, predicate.Le, predicate.Ge:
				return trueExpr(), nil
			default:
				return predicate.NewLeaf(predicate.False()), nil
			}
		}
		return predicate.NewLeaf(predicate.Cols(lc, op, rc)), nil
	case lIsVal && rIsVal:
		// Constant comparison folds to TRUE or FALSE — a structural outcome
		// decided by the literals' values, so the shape is non-cacheable.
		st.noCache("constant-comparison")
		return predicate.NewLeaf(foldComparison(lVal, op, rVal)), nil
	default:
		// Arithmetic over columns, parameters, or function results: no
		// exact column-constant mapping; over-approximate (but keep the
		// referenced columns in the A set).
		return st.approxTrue(b, sc), nil
	}
}

// convertLike maps LIKE: patterns without wildcards are equalities;
// anything else is approximated. Whether the pattern has a wildcard decides
// between the two mappings, so the choice is recorded as a per-slot guard
// the template cache re-checks on every rebind.
func (st *state) convertLike(x *sqlparser.LikeExpr, sc *scope) (predicate.Expr, error) {
	cr, isCol := x.X.(*sqlparser.ColumnRef)
	pat, isStr := x.Pattern.(*sqlparser.StringLit)
	if isCol && isStr {
		if pat.Slot > 0 {
			st.likeGuards = append(st.likeGuards, likeGuard{
				Slot:     pat.Slot,
				Wildcard: strings.ContainsAny(pat.Value, "%_"),
			})
		} else {
			st.noCache("like-pattern-unslotted")
		}
	}
	if !isCol || !isStr || strings.ContainsAny(pat.Value, "%_") {
		return st.approxTrue(x, sc), nil
	}
	col, ok := st.resolveColumn(cr, sc)
	if !ok {
		st.approx()
		return trueExpr(), nil
	}
	op := predicate.Eq
	if x.Not {
		op = predicate.Ne
	}
	return predicate.NewLeaf(predicate.CC(col, op, strValue(pat))), nil
}

// numValue copies a numeric literal into a predicate value, carrying the
// literal's slot so the template cache can rebind it.
func numValue(l *sqlparser.NumberLit) predicate.Value {
	v := predicate.NumberText(l.Value, l.Text)
	v.Slot, v.NegDepth = l.Slot, l.NegDepth
	return v
}

// strValue copies a string literal into a predicate value with its slot.
func strValue(l *sqlparser.StringLit) predicate.Value {
	v := predicate.Str(l.Value)
	v.Slot = l.Slot
	return v
}

// foldConst evaluates literal-only expressions to a value: numbers, strings,
// and arithmetic over numeric literals. A verbatim literal keeps its slot.
// Any fold whose outcome depends on the literals' VALUES — arithmetic
// results, and the division-by-zero failure — marks the extraction
// non-cacheable, because a statement of the same shape with other constants
// would fold to a different constraint.
func (st *state) foldConst(e sqlparser.Expr) (predicate.Value, bool) {
	switch x := e.(type) {
	case *sqlparser.NumberLit:
		return numValue(x), true
	case *sqlparser.StringLit:
		return strValue(x), true
	case *sqlparser.UnaryExpr:
		if x.Op == "-" {
			if v, ok := st.foldConst(x.X); ok && v.Kind == predicate.NumberVal {
				st.noCache("folded-negation")
				return predicate.Number(-v.Num), true
			}
		}
	case *sqlparser.BinaryExpr:
		l, lok := st.foldConst(x.L)
		r, rok := st.foldConst(x.R)
		if !lok || !rok || l.Kind != predicate.NumberVal || r.Kind != predicate.NumberVal {
			return predicate.Value{}, false
		}
		switch x.Op {
		case "+":
			st.noCache("folded-arithmetic")
			return predicate.Number(l.Num + r.Num), true
		case "-":
			st.noCache("folded-arithmetic")
			return predicate.Number(l.Num - r.Num), true
		case "*":
			st.noCache("folded-arithmetic")
			return predicate.Number(l.Num * r.Num), true
		case "/":
			// Poison before the zero check: whether the fold succeeds at all
			// is decided by the divisor's value.
			st.noCache("folded-arithmetic")
			if r.Num == 0 {
				return predicate.Value{}, false
			}
			return predicate.Number(l.Num / r.Num), true
		}
	}
	return predicate.Value{}, false
}

// foldComparison evaluates a constant comparison.
func foldComparison(l predicate.Value, op predicate.Op, r predicate.Value) predicate.Pred {
	var res bool
	if l.Kind == predicate.NumberVal && r.Kind == predicate.NumberVal {
		switch op {
		case predicate.Lt:
			res = l.Num < r.Num
		case predicate.Le:
			res = l.Num <= r.Num
		case predicate.Eq:
			res = l.Num == r.Num
		case predicate.Gt:
			res = l.Num > r.Num
		case predicate.Ge:
			res = l.Num >= r.Num
		case predicate.Ne:
			res = l.Num != r.Num
		}
	} else {
		ls, rs := l.Str, r.Str
		switch op {
		case predicate.Lt:
			res = ls < rs
		case predicate.Le:
			res = ls <= rs
		case predicate.Eq:
			res = ls == rs
		case predicate.Gt:
			res = ls > rs
		case predicate.Ge:
			res = ls >= rs
		case predicate.Ne:
			res = ls != rs
		}
	}
	if res {
		return predicate.True()
	}
	return predicate.False()
}
