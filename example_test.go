package skyaccess_test

import (
	"fmt"

	skyaccess "repro"
)

// ExampleExtractor demonstrates single-query access-area extraction,
// including the FULL OUTER JOIN rule of the paper's Example 2.
func ExampleExtractor() {
	ex := skyaccess.NewExtractor(skyaccess.SkyServerSchema())

	area, _ := ex.ExtractSQL("SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200")
	fmt.Println(area)

	area, _ = ex.ExtractSQL("SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID")
	fmt.Println(area)

	// Output:
	// σ[SpecObjAll.plate <= 3200 AND SpecObjAll.plate >= 296](SpecObjAll)
	// σ(galSpecExtra × galSpecIndx)
}

// ExampleMiner mines a small batch of statements into aggregated access
// areas.
func ExampleMiner() {
	miner := skyaccess.NewMiner(skyaccess.Config{Schema: skyaccess.SkyServerSchema()})
	var batch []string
	for i := 0; i < 12; i++ {
		// Many users probing the same small plate window.
		batch = append(batch, fmt.Sprintf("SELECT * FROM SpecObjAll WHERE plate BETWEEN %d AND %d", 296+i%3, 3200+i%3))
	}
	result := miner.MineSQL(batch)
	for _, c := range result.Clusters {
		fmt.Printf("%d queries: %s\n", c.Cardinality, c.Expr())
	}
	// Output:
	// 12 queries: (296 <= SpecObjAll.plate <= 3202)
}

// ExampleNewStreamMonitor shows the stream extension: operators get
// notified when a new query shape appears.
func ExampleNewStreamMonitor() {
	mon := skyaccess.NewStreamMonitor(func(e skyaccess.StreamEvent) {
		fmt.Printf("%s: %s\n", e.Kind, e.Detail)
	})
	ex := skyaccess.NewExtractor(skyaccess.SkyServerSchema())
	for seq, sql := range []string{
		"SELECT z FROM Photoz WHERE objid = 1",
		"SELECT z FROM Photoz WHERE objid = 2", // same shape: silent
	} {
		if area, err := ex.ExtractSQL(sql); err == nil {
			mon.Observe(skyaccess.Record{Seq: seq, SQL: sql}, area)
		}
	}
	// Output:
	// new-query-shape: Photoz|Photoz.objid
	// new-predicate-column: Photoz.objid
}
