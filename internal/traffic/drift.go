package traffic

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/aggregate"
)

// Event is one interest-drift observation: a class's cluster appeared,
// grew, shrank, or vanished between two observed epochs. Events are
// deterministic for a given ingest → flush script: drift is only evaluated
// at explicitly forced epochs (flush/shutdown on a shard, coordinator
// flushes globally), never at size- or timer-triggered mid-stream epochs
// whose boundaries depend on batch timing.
type Event struct {
	Epoch int64  `json:"epoch"`
	Class string `json:"class"`
	Kind  string `json:"kind"` // appeared | grew | shrank | vanished
	Expr  string `json:"expr"`
	// Relations is the cluster's relation set (sorted, as mined).
	Relations   []string `json:"relations,omitempty"`
	Cardinality int      `json:"cardinality"`
	// PrevCardinality is the matched previous-epoch cardinality (grew,
	// shrank and vanished events; zero for appeared).
	PrevCardinality int `json:"prev_cardinality,omitempty"`
}

// Drift event kinds.
const (
	DriftAppeared = "appeared"
	DriftGrew     = "grew"
	DriftShrank   = "shrank"
	DriftVanished = "vanished"
)

// driftGrowFrac is the relative cardinality change below which a matched
// cluster emits no event: tiny wobbles between epochs are not drift.
const driftGrowFrac = 0.10

// driftMatchMax is the largest normalised representative-area distance at
// which a new cluster still matches a previous one.
const driftMatchMax = 0.5

// snapCluster is the reduced, serialisable form of a cluster the detector
// matches against: its rendered expression, relation set, and numeric box
// as parallel column/endpoint slices (endpoints formatted as strings so
// ±Inf survives JSON).
type snapCluster struct {
	Expr        string   `json:"expr"`
	Relations   []string `json:"relations,omitempty"`
	Columns     []string `json:"columns,omitempty"`
	Lo          []string `json:"lo,omitempty"`
	Hi          []string `json:"hi,omitempty"`
	Cardinality int      `json:"cardinality"`
}

// relKey is the hard matching constraint: clusters only ever match within
// the same relation set and box column set.
func (s *snapCluster) relKey() string {
	return strings.Join(s.Relations, ",") + "|" + strings.Join(s.Columns, ",")
}

func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func snapOf(c *aggregate.Summary) snapCluster {
	s := snapCluster{Expr: c.Expr(), Relations: c.Relations, Cardinality: c.Cardinality}
	if c.Box != nil {
		cols := c.Box.Dims()
		for _, col := range cols {
			iv := c.Box.Get(col)
			s.Columns = append(s.Columns, col)
			s.Lo = append(s.Lo, fstr(iv.Lo))
			s.Hi = append(s.Hi, fstr(iv.Hi))
		}
	}
	return s
}

// boxDist is the matching rule's distance: the maximum over shared columns
// of the normalised endpoint displacement |Δlo|+|Δhi| over the larger of
// the two widths. Infinite endpoints must agree exactly (an unbounded ray
// moving its finite end still compares; a ray vs a bounded interval is
// distance 1). Both snapshots are known to share a relKey, so the column
// slices are identical.
func boxDist(a, b *snapCluster) float64 {
	worst := 0.0
	for i := range a.Columns {
		alo, _ := strconv.ParseFloat(a.Lo[i], 64)
		ahi, _ := strconv.ParseFloat(a.Hi[i], 64)
		blo, _ := strconv.ParseFloat(b.Lo[i], 64)
		bhi, _ := strconv.ParseFloat(b.Hi[i], 64)
		d := endpointDist(alo, ahi, blo, bhi)
		if d > worst {
			worst = d
		}
	}
	return worst
}

func endpointDist(alo, ahi, blo, bhi float64) float64 {
	if math.IsInf(alo, 0) != math.IsInf(blo, 0) || math.IsInf(ahi, 0) != math.IsInf(bhi, 0) {
		return 1
	}
	var shift, width float64
	if !math.IsInf(alo, 0) {
		shift += math.Abs(alo - blo)
		if !math.IsInf(ahi, 0) {
			wa, wb := ahi-alo, bhi-blo
			width = math.Max(wa, wb)
		}
	}
	if !math.IsInf(ahi, 0) {
		shift += math.Abs(ahi - bhi)
	}
	if shift == 0 {
		return 0
	}
	if width <= 0 {
		// Point intervals or rays: normalise by the magnitude of the finite
		// endpoints so 18-digit object IDs don't need absolute tolerances.
		scale := 0.0
		if !math.IsInf(alo, 0) {
			scale = math.Max(scale, math.Abs(alo))
		}
		if !math.IsInf(ahi, 0) {
			scale = math.Max(scale, math.Abs(ahi))
		}
		if scale == 0 {
			scale = 1
		}
		return math.Min(1, shift/scale)
	}
	return math.Min(1, shift/width)
}

// Drift tracks per-class cluster snapshots across observed epochs and
// accumulates the event log. Not internally locked — the serving layer
// observes under its epoch lock and reads events under the same.
type Drift struct {
	maxEvents int
	prev      map[string][]snapCluster
	events    []Event
}

// NewDrift builds a detector keeping at most maxEvents events (oldest
// dropped first).
func NewDrift(maxEvents int) *Drift {
	if maxEvents <= 0 {
		maxEvents = 4096
	}
	return &Drift{maxEvents: maxEvents, prev: make(map[string][]snapCluster)}
}

// Observe diffs one class's clusters against the class's previous observed
// epoch, appends the resulting events to the log and returns them. clusters
// must be in the miner's final (total) order — matching is greedy over that
// order, which is what makes two identical runs emit identical sequences.
func (d *Drift) Observe(class string, epoch int64, clusters []*aggregate.Summary) []Event {
	cur := make([]snapCluster, len(clusters))
	for i, c := range clusters {
		cur[i] = snapOf(c)
	}
	prev := d.prev[class]
	used := make([]bool, len(prev))
	var out []Event

	for i := range cur {
		bestJ, bestD := -1, driftMatchMax
		for j := range prev {
			if used[j] || prev[j].relKey() != cur[i].relKey() {
				continue
			}
			if dd := boxDist(&cur[i], &prev[j]); dd < bestD || (bestJ < 0 && dd <= bestD) {
				bestJ, bestD = j, dd
			}
		}
		if bestJ < 0 {
			out = append(out, Event{
				Epoch: epoch, Class: class, Kind: DriftAppeared,
				Expr: cur[i].Expr, Relations: cur[i].Relations,
				Cardinality: cur[i].Cardinality,
			})
			continue
		}
		used[bestJ] = true
		p := prev[bestJ]
		delta := cur[i].Cardinality - p.Cardinality
		base := p.Cardinality
		if base < 1 {
			base = 1
		}
		if math.Abs(float64(delta))/float64(base) < driftGrowFrac {
			continue
		}
		kind := DriftGrew
		if delta < 0 {
			kind = DriftShrank
		}
		out = append(out, Event{
			Epoch: epoch, Class: class, Kind: kind,
			Expr: cur[i].Expr, Relations: cur[i].Relations,
			Cardinality: cur[i].Cardinality, PrevCardinality: p.Cardinality,
		})
	}
	for j := range prev {
		if used[j] {
			continue
		}
		out = append(out, Event{
			Epoch: epoch, Class: class, Kind: DriftVanished,
			Expr: prev[j].Expr, Relations: prev[j].Relations,
			Cardinality: 0, PrevCardinality: prev[j].Cardinality,
		})
	}

	d.prev[class] = cur
	d.events = append(d.events, out...)
	if over := len(d.events) - d.maxEvents; over > 0 {
		d.events = append(d.events[:0:0], d.events[over:]...)
	}
	return out
}

// Events returns the retained log, optionally filtered to one class
// (class == "" returns everything). The slice is a copy.
func (d *Drift) Events(class string) []Event {
	out := make([]Event, 0, len(d.events))
	for _, e := range d.events {
		if class == "" || e.Class == class {
			out = append(out, e)
		}
	}
	return out
}

// DriftState is the snapshot form of a Drift detector.
type DriftState struct {
	Prev   map[string][]snapCluster `json:"prev,omitempty"`
	Events []Event                  `json:"events,omitempty"`
}

// ExportState snapshots the detector.
func (d *Drift) ExportState() *DriftState {
	st := &DriftState{Events: append([]Event(nil), d.events...)}
	if len(d.prev) > 0 {
		st.Prev = make(map[string][]snapCluster, len(d.prev))
		for k, v := range d.prev {
			st.Prev[k] = append([]snapCluster(nil), v...)
		}
	}
	return st
}

// RestoreState replaces the detector's state with a snapshot.
func (d *Drift) RestoreState(st *DriftState) {
	d.prev = make(map[string][]snapCluster, len(st.Prev))
	for k, v := range st.Prev {
		d.prev[k] = append([]snapCluster(nil), v...)
	}
	d.events = append([]Event(nil), st.Events...)
}
