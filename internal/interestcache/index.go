package interestcache

import (
	"math"
	"sort"
	"strings"
)

// containmentIndex answers "which cached region's box contains this query's
// access area" in sublinear time per group. Regions are grouped by their
// exact relation set; within a group, a primary dimension (the box dimension
// most regions constrain) orders the regions by interval start, and a
// segment tree over interval ends prunes the candidate scan: a region can
// contain the query only if its primary interval starts at or before the
// query's hull start AND ends at or after the hull end — a stabbing query
// the sorted order plus max-end tree answers without touching every region.
// Surviving candidates get the full Region.Contains check.
type containmentIndex struct {
	groups []*regionGroup
}

type regionGroup struct {
	// relations is the group's lowercased relation set.
	relations map[string]bool
	// primary is the group's ordering dimension ("" when no region in the
	// group constrains any dimension — then every region is a candidate).
	primary string
	// regions sorted ascending by primary-interval start (unconstrained =
	// -inf); starts/ends hold the projected endpoints, maxEnds the segment
	// tree of interval-end maxima over regions[0..i].
	regions []*Region
	starts  []float64
	maxEnds []float64
}

func buildIndex(regions []*Region) *containmentIndex {
	byKey := make(map[string]*regionGroup)
	var order []string
	for _, r := range regions {
		key := relationKey(r.Relations)
		g, ok := byKey[key]
		if !ok {
			g = &regionGroup{relations: make(map[string]bool)}
			for _, rel := range r.Relations {
				g.relations[strings.ToLower(rel)] = true
			}
			byKey[key] = g
			order = append(order, key)
		}
		g.regions = append(g.regions, r)
	}
	sort.Strings(order)
	idx := &containmentIndex{}
	for _, key := range order {
		g := byKey[key]
		g.build()
		idx.groups = append(idx.groups, g)
	}
	return idx
}

func relationKey(rels []string) string {
	low := make([]string, len(rels))
	for i, r := range rels {
		low[i] = strings.ToLower(r)
	}
	sort.Strings(low)
	return strings.Join(low, "\x00")
}

func (g *regionGroup) build() {
	// Primary dimension: constrained by the most regions; ties break
	// lexicographically so the choice is deterministic.
	count := make(map[string]int)
	for _, r := range g.regions {
		for _, d := range r.Box.Dims() {
			count[d]++
		}
	}
	for d, n := range count {
		if g.primary == "" || n > count[g.primary] || (n == count[g.primary] && d < g.primary) {
			g.primary = d
		}
	}
	if g.primary == "" {
		return
	}
	sort.SliceStable(g.regions, func(i, j int) bool {
		return g.regions[i].Box.Get(g.primary).Lo < g.regions[j].Box.Get(g.primary).Lo
	})
	g.starts = make([]float64, len(g.regions))
	g.maxEnds = make([]float64, len(g.regions))
	for i, r := range g.regions {
		iv := r.Box.Get(g.primary)
		g.starts[i] = iv.Lo
		g.maxEnds[i] = iv.Hi
		if i > 0 && g.maxEnds[i-1] > g.maxEnds[i] {
			g.maxEnds[i] = g.maxEnds[i-1]
		}
	}
}

// lookup returns the best region containing the query's access area: the one
// with the fewest prefetched rows (cheapest store), ties broken by smallest
// ID. Nil when no region contains the area.
func (idx *containmentIndex) lookup(shape *queryShape) *Region {
	var best *Region
	consider := func(r *Region) {
		if !r.containsShape(shape, "", "") {
			return
		}
		if best == nil || r.Rows < best.Rows || (r.Rows == best.Rows && r.ID < best.ID) {
			best = r
		}
	}
	for _, g := range idx.groups {
		if !g.covers(shape.relations) {
			continue
		}
		if g.primary == "" {
			for _, r := range g.regions {
				consider(r)
			}
			continue
		}
		// Project the query onto the primary dimension. When the primary's
		// relation is not one the query reads, the dimension is irrelevant
		// to containment and every region qualifies: probe with the empty
		// interval (+inf, -inf), which every [start, end] pair admits.
		qlo, qhi := math.Inf(1), math.Inf(-1)
		if rel, _, ok := splitQualified(g.primary); ok && containsFold(shape.relations, rel) {
			hull := shape.hull(g.primary)
			qlo, qhi = hull.Lo, hull.Hi
		}
		// Candidates form the prefix with start <= qlo; within it, only
		// positions whose running max end reaches qhi can contain the hull.
		n := sort.Search(len(g.starts), func(i int) bool { return g.starts[i] > qlo })
		for i := 0; i < n; i++ {
			if g.maxEnds[i] < qhi {
				// No region in the prefix up to i ends late enough; the
				// running max is non-decreasing, so skip ahead to the
				// first position where it could.
				j := sort.Search(n-i, func(k int) bool { return g.maxEnds[i+k] >= qhi })
				i += j - 1
				continue
			}
			if g.regions[i].Box.Get(g.primary).Hi >= qhi {
				consider(g.regions[i])
			}
		}
	}
	return best
}

func (g *regionGroup) covers(rels []string) bool {
	for _, r := range rels {
		if !g.relations[strings.ToLower(r)] {
			return false
		}
	}
	return true
}
