package sqlparser

import (
	"errors"
	"testing"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func kindsOf(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks := lex(t, "SELECT u FROM T WHERE u >= 1.5")
	want := []struct {
		kind TokenKind
		text string
	}{
		{Keyword, "SELECT"}, {Ident, "u"}, {Keyword, "FROM"}, {Ident, "T"},
		{Keyword, "WHERE"}, {Ident, "u"}, {Op, ">="}, {Number, "1.5"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok[%d] = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks := lex(t, "select u from T")
	if toks[0].Kind != Keyword || toks[0].Text != "SELECT" {
		t.Errorf("tok[0] = %v", toks[0])
	}
}

func TestLexNotEqualsVariants(t *testing.T) {
	toks := lex(t, "a <> b != c")
	if toks[1].Text != "<>" || toks[3].Text != "<>" {
		t.Errorf("ops = %q %q, both want <>", toks[1].Text, toks[3].Text)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":                   "42",
		"3.14":                 "3.14",
		".5":                   ".5",
		"1e10":                 "1e10",
		"1.5E-3":               "1.5E-3",
		"2e+7":                 "2e+7",
		"12345678901234567890": "12345678901234567890",
	}
	for src, want := range cases {
		toks := lex(t, src)
		if toks[0].Kind != Number || toks[0].Text != want {
			t.Errorf("lex(%q) = %v, want Number %q", src, toks[0], want)
		}
	}
}

func TestLexNumberThenIdent(t *testing.T) {
	// "1e" without exponent digits: "1" then ident "e".
	toks := lex(t, "1e x")
	if toks[0].Kind != Number || toks[0].Text != "1" {
		t.Errorf("tok[0] = %v", toks[0])
	}
	if toks[1].Kind != Ident || toks[1].Text != "e" {
		t.Errorf("tok[1] = %v", toks[1])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := lex(t, "'it''s'")
	if toks[0].Kind != String || toks[0].Text != "it's" {
		t.Errorf("tok = %v", toks[0])
	}
}

func TestLexQuotedIdents(t *testing.T) {
	for src, want := range map[string]string{
		"[My Table]":  "My Table",
		"\"colName\"": "colName",
		"`tick`":      "tick",
	} {
		toks := lex(t, src)
		if toks[0].Kind != Ident || toks[0].Text != want {
			t.Errorf("lex(%q) = %v, want Ident %q", src, toks[0], want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "a -- comment\n b /* multi\nline */ c")
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexParam(t *testing.T) {
	toks := lex(t, "@ra_min")
	if toks[0].Kind != Param || toks[0].Text != "@ra_min" {
		t.Errorf("tok = %v", toks[0])
	}
}

func TestLexLineColTracking(t *testing.T) {
	toks := lex(t, "a\n  b")
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("pos of b = %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrorsDetail(t *testing.T) {
	for _, src := range []string{"'open", "[open", "/* open", "a ? b", "@"} {
		_, err := NewLexer(src).Tokens()
		if err == nil {
			t.Errorf("lex(%q): expected error", src)
			continue
		}
		var le *LexError
		if !errors.As(err, &le) {
			t.Errorf("lex(%q): error type %T", src, err)
		}
	}
}

func TestLexUnicodeIdent(t *testing.T) {
	toks := lex(t, "sternwarte_münchen")
	if toks[0].Kind != Ident || toks[0].Text != "sternwarte_münchen" {
		t.Errorf("tok = %v", toks[0])
	}
	_ = kindsOf(toks)
}
