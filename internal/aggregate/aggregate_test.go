package aggregate

import (
	"math"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
)

func itemRange(rel, col string, lo, hi float64, weight int, users ...string) *Item {
	cnf := predicate.CNF{
		{predicate.CC(col, predicate.Ge, predicate.Number(lo))},
		{predicate.CC(col, predicate.Le, predicate.Number(hi))},
	}
	us := make(map[string]struct{})
	for _, u := range users {
		us[u] = struct{}{}
	}
	return &Item{
		Area:   &extract.AccessArea{Relations: []string{rel}, CNF: cnf, Exact: true},
		Weight: weight,
		Users:  us,
	}
}

func itemEq(rel, col string, v float64, weight int) *Item {
	cnf := predicate.CNF{{predicate.CC(col, predicate.Eq, predicate.Number(v))}}
	return &Item{
		Area:   &extract.AccessArea{Relations: []string{rel}, CNF: cnf, Exact: true},
		Weight: weight,
		Users:  map[string]struct{}{"u": {}},
	}
}

func TestSummarizeBasics(t *testing.T) {
	items := []*Item{
		itemRange("T", "T.u", 0, 10, 3, "alice", "bob"),
		itemRange("T", "T.u", 2, 12, 2, "bob", "carol"),
	}
	s := Summarize(1, items, Options{})
	if s.Cardinality != 5 {
		t.Errorf("cardinality = %d, want 5", s.Cardinality)
	}
	if s.UserCount != 3 {
		t.Errorf("users = %d, want 3", s.UserCount)
	}
	if len(s.Relations) != 1 || s.Relations[0] != "T" {
		t.Errorf("relations = %v", s.Relations)
	}
	iv := s.Box.Get("T.u")
	if iv.Lo != 0 || iv.Hi != 12 {
		t.Errorf("box = %v, want [0, 12]", iv)
	}
}

func TestSigmaTrimmingDropsOutlierBound(t *testing.T) {
	// Many tight ranges plus one absurd outlier upper bound; the 3σ rule
	// must drop it.
	var items []*Item
	for i := 0; i < 30; i++ {
		items = append(items, itemRange("T", "T.u", float64(i), float64(100+i), 1, "u"))
	}
	items = append(items, itemRange("T", "T.u", 0, 1e12, 1, "weird"))
	s := Summarize(0, items, Options{})
	hi := s.Box.Get("T.u").Hi
	if hi > 1000 {
		t.Errorf("hi = %v, outlier not trimmed", hi)
	}
	// With trimming disabled, the outlier survives.
	s = Summarize(0, items, Options{SigmaRule: -1})
	if s.Box.Get("T.u").Hi != 1e12 {
		t.Errorf("untrimmed hi = %v", s.Box.Get("T.u").Hi)
	}
}

func TestEqualityClusterSpansConstants(t *testing.T) {
	// The Cluster-1 shape: objid = c for many c.
	items := []*Item{
		itemEq("Photoz", "Photoz.objid", 100, 5),
		itemEq("Photoz", "Photoz.objid", 200, 5),
		itemEq("Photoz", "Photoz.objid", 300, 5),
	}
	s := Summarize(0, items, Options{})
	iv := s.Box.Get("Photoz.objid")
	if iv.Lo != 100 || iv.Hi != 300 {
		t.Errorf("box = %v, want [100, 300]", iv)
	}
	if s.Cardinality != 15 {
		t.Errorf("cardinality = %d", s.Cardinality)
	}
}

func TestOneSidedBoundsStayOneSided(t *testing.T) {
	// Cluster-5 shape: ra <= c, dec <= d — lower bounds unbounded.
	mk := func(c, d float64) *Item {
		cnf := predicate.CNF{
			{predicate.CC("PhotoObjAll.ra", predicate.Le, predicate.Number(c))},
			{predicate.CC("PhotoObjAll.dec", predicate.Le, predicate.Number(d))},
		}
		return &Item{Area: &extract.AccessArea{Relations: []string{"PhotoObjAll"}, CNF: cnf}, Weight: 1,
			Users: map[string]struct{}{"u": {}}}
	}
	s := Summarize(0, []*Item{mk(210, 10), mk(200, 9), mk(205, 11)}, Options{})
	ra := s.Box.Get("PhotoObjAll.ra")
	if !math.IsInf(ra.Lo, -1) || ra.Hi != 210 {
		t.Errorf("ra = %v, want (-inf, 210]", ra)
	}
	expr := s.Expr()
	if !strings.Contains(expr, "(PhotoObjAll.ra <= 210)") {
		t.Errorf("expr = %q", expr)
	}
}

func TestColumnSupportThreshold(t *testing.T) {
	// Only 1 of 4 members constrains T.v: it must not appear in the box.
	items := []*Item{
		itemRange("T", "T.u", 0, 10, 1, "a"),
		itemRange("T", "T.u", 0, 11, 1, "a"),
		itemRange("T", "T.u", 0, 12, 1, "a"),
		itemRange("T", "T.v", 5, 6, 1, "a"),
	}
	s := Summarize(0, items, Options{})
	if s.Box.Has("T.v") {
		t.Errorf("T.v should be dropped (support 25%%): %v", s.Box)
	}
	if !s.Box.Has("T.u") {
		t.Error("T.u missing")
	}
}

func TestCategoricalAndJoinPreds(t *testing.T) {
	mkItem := func() *Item {
		cnf := predicate.CNF{
			{predicate.CC("SpecObjAll.class", predicate.Eq, predicate.Str("star"))},
			{predicate.Cols("galSpecExtra.specobjid", predicate.Eq, "galSpecIndx.specObjID")},
			{predicate.CC("SpecObjAll.mjd", predicate.Ge, predicate.Number(51578))},
		}
		return &Item{
			Area:   &extract.AccessArea{Relations: []string{"SpecObjAll"}, CNF: cnf},
			Weight: 1, Users: map[string]struct{}{"u": {}},
		}
	}
	s := Summarize(0, []*Item{mkItem(), mkItem()}, Options{})
	if vals := s.Categorical["SpecObjAll.class"]; len(vals) != 1 || vals[0] != "star" {
		t.Errorf("categorical = %v", s.Categorical)
	}
	if len(s.JoinPreds) != 1 {
		t.Errorf("join preds = %v", s.JoinPreds)
	}
	expr := s.Expr()
	if !strings.Contains(expr, "(SpecObjAll.class = 'star')") {
		t.Errorf("expr = %q", expr)
	}
	if !strings.Contains(expr, "(SpecObjAll.mjd >= 51578)") {
		t.Errorf("expr = %q", expr)
	}
}

func TestMultiValueCategorical(t *testing.T) {
	mk := func(v string) *Item {
		cnf := predicate.CNF{{predicate.CC("DBObjects.type", predicate.Eq, predicate.Str(v))}}
		return &Item{Area: &extract.AccessArea{Relations: []string{"DBObjects"}, CNF: cnf}, Weight: 1,
			Users: map[string]struct{}{"u": {}}}
	}
	s := Summarize(0, []*Item{mk("V"), mk("U")}, Options{})
	expr := s.Expr()
	if !strings.Contains(expr, "(DBObjects.type = 'U') OR (DBObjects.type = 'V')") {
		t.Errorf("expr = %q", expr)
	}
}

// fakeSource implements DataSource for coverage tests.
type fakeSource struct {
	content map[string]interval.Interval
	values  map[string][]string
	frac    float64
}

func (f *fakeSource) ContentInterval(col string) (interval.Interval, bool) {
	iv, ok := f.content[col]
	return iv, ok
}
func (f *fakeSource) ContentValues(col string) ([]string, bool) {
	v, ok := f.values[col]
	return v, ok
}
func (f *fakeSource) ObjectFraction([]string, *interval.Box, map[string][]string) float64 {
	return f.frac
}

func TestComputeCoverage(t *testing.T) {
	src := &fakeSource{
		content: map[string]interval.Interval{"T.u": interval.Closed(0, 100)},
		values:  map[string][]string{"T.c": {"a", "b", "c", "d"}},
		frac:    0.25,
	}
	s := Summarize(0, []*Item{itemRange("T", "T.u", 0, 50, 1, "x")}, Options{})
	s.ComputeCoverage(src)
	if s.AreaCoverage != 0.5 {
		t.Errorf("area coverage = %v, want 0.5", s.AreaCoverage)
	}
	if s.ObjectCoverage != 0.25 {
		t.Errorf("object coverage = %v", s.ObjectCoverage)
	}
}

func TestCoverageEmptyAreaCluster(t *testing.T) {
	// Cluster entirely outside content (a Table-1 empty-area cluster,
	// e.g. Photoz.z in [-0.98, -0.1] with content [0, 1]).
	src := &fakeSource{
		content: map[string]interval.Interval{"Photoz.z": interval.Closed(0, 1)},
		frac:    0,
	}
	s := Summarize(0, []*Item{itemRange("Photoz", "Photoz.z", -0.98, -0.1, 10, "x")}, Options{})
	s.ComputeCoverage(src)
	if s.AreaCoverage != 0 || s.ObjectCoverage != 0 {
		t.Errorf("coverage = %v / %v, want 0 / 0", s.AreaCoverage, s.ObjectCoverage)
	}
}

func TestCoverageCategoricalFactor(t *testing.T) {
	src := &fakeSource{
		content: map[string]interval.Interval{"S.mjd": interval.Closed(0, 100)},
		values:  map[string][]string{"S.class": {"STAR", "GALAXY", "QSO"}},
		frac:    0.1,
	}
	cnf := predicate.CNF{
		{predicate.CC("S.class", predicate.Eq, predicate.Str("STAR"))},
		{predicate.CC("S.mjd", predicate.Ge, predicate.Number(0))},
		{predicate.CC("S.mjd", predicate.Le, predicate.Number(30))},
	}
	it := &Item{Area: &extract.AccessArea{Relations: []string{"S"}, CNF: cnf}, Weight: 1,
		Users: map[string]struct{}{"u": {}}}
	s := Summarize(0, []*Item{it}, Options{})
	s.ComputeCoverage(src)
	want := 0.3 * (1.0 / 3.0)
	if math.Abs(s.AreaCoverage-want) > 1e-12 {
		t.Errorf("area coverage = %v, want %v", s.AreaCoverage, want)
	}
}

func TestCoverageCategoricalCaseFoldDenominator(t *testing.T) {
	// SkyServer's collation is case-insensitive: 'star' and 'STAR' are one
	// content value, so a cluster touching it covers 1/2 of the distinct
	// values, not 1/4 of the raw list.
	src := &fakeSource{
		values: map[string][]string{"S.class": {"star", "STAR", "Galaxy", "GALAXY"}},
		frac:   0.1,
	}
	cnf := predicate.CNF{
		{predicate.CC("S.class", predicate.Eq, predicate.Str("STAR"))},
	}
	it := &Item{Area: &extract.AccessArea{Relations: []string{"S"}, CNF: cnf}, Weight: 1,
		Users: map[string]struct{}{"u": {}}}
	s := Summarize(0, []*Item{it}, Options{})
	s.ComputeCoverage(src)
	if math.Abs(s.AreaCoverage-0.5) > 1e-12 {
		t.Errorf("area coverage = %v, want 0.5 (case-folded distinct divisor)", s.AreaCoverage)
	}
}

func TestExprPointConstraint(t *testing.T) {
	s := Summarize(0, []*Item{itemEq("T", "T.u", 5, 1)}, Options{})
	if !strings.Contains(s.Expr(), "(T.u = 5)") {
		t.Errorf("expr = %q", s.Expr())
	}
}

func TestExprUnconstrained(t *testing.T) {
	it := &Item{Area: &extract.AccessArea{Relations: []string{"T"}, CNF: predicate.CNF{}}, Weight: 1,
		Users: map[string]struct{}{"u": {}}}
	s := Summarize(0, []*Item{it}, Options{})
	if s.Expr() != "⊤" {
		t.Errorf("expr = %q", s.Expr())
	}
}

func TestDensityContrast(t *testing.T) {
	// Dense cluster of equality queries in [0, 10], sparse surroundings.
	var all []*Item
	for i := 0; i < 50; i++ {
		all = append(all, itemEq("T", "T.u", float64(i%11), 1))
	}
	// A few queries in the shell around the box.
	all = append(all, itemEq("T", "T.u", -3, 1), itemEq("T", "T.u", 14, 1))
	s := Summarize(0, all[:50], Options{})
	contrast := DensityContrast(s, all, 0.5)
	if contrast < 5 {
		t.Errorf("contrast = %v, want strongly > 1 (dense plateau)", contrast)
	}
	// Uniform field: contrast near 1.
	var uniform []*Item
	for i := 0; i < 60; i++ {
		uniform = append(uniform, itemEq("T", "T.u", float64(i), 1))
	}
	boxItems := uniform[20:41] // [20, 40]
	s2 := Summarize(0, boxItems, Options{})
	c2 := DensityContrast(s2, uniform, 0.5)
	if c2 < 0.5 || c2 > 2 {
		t.Errorf("uniform contrast = %v, want ~1", c2)
	}
	// Isolated plateau: empty shell => +Inf.
	s3 := Summarize(0, all[:50], Options{})
	c3 := DensityContrast(s3, all[:50], 0.1)
	if !math.IsInf(c3, 1) {
		t.Errorf("isolated contrast = %v, want +Inf", c3)
	}
}

func TestDensityContrastNoBoundedDims(t *testing.T) {
	it := &Item{Area: &extract.AccessArea{Relations: []string{"T"},
		CNF: predicate.CNF{{predicate.CC("T.u", predicate.Ge, predicate.Number(1))}}}, Weight: 1,
		Users: map[string]struct{}{"u": {}}}
	s := Summarize(0, []*Item{it}, Options{})
	if c := DensityContrast(s, []*Item{it}, 0.5); c != 1 {
		t.Errorf("contrast = %v, want 1 for unbounded box", c)
	}
}

func TestRepresentatives(t *testing.T) {
	items := []*Item{
		itemEq("T", "T.u", 1, 1),
		itemEq("T", "T.u", 2, 50), // heaviest
		itemEq("T", "T.u", 3, 10),
		itemEq("T", "T.u", 4, 5),
	}
	s := Summarize(0, items, Options{})
	if len(s.Representatives) != 3 {
		t.Fatalf("representatives = %v", s.Representatives)
	}
	if !strings.Contains(s.Representatives[0], "T.u = 2") {
		t.Errorf("first representative = %q, want the heaviest", s.Representatives[0])
	}
}
