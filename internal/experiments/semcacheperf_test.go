package experiments

import "testing"

// A small-scale end-to-end run of the E13 harness: the oracle must hold, the
// workload must hit, and the phase accounting must be self-consistent.
func TestRunSemCachePerf(t *testing.T) {
	if testing.Short() {
		t.Skip("semcacheperf is slow")
	}
	res, err := RunSemCachePerf(1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleFailed != 0 {
		t.Fatalf("oracle failures: %+v", res)
	}
	if res.OracleChecked == 0 || res.Hits == 0 || res.Regions == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.HitRatio < 0.5 {
		t.Errorf("hit ratio %.3f below the 0.5 acceptance floor", res.HitRatio)
	}
	if res.StaleHitRatio > res.FreshHitRatio {
		t.Errorf("stale regions out-hit fresh ones: stale %.3f, fresh %.3f",
			res.StaleHitRatio, res.FreshHitRatio)
	}
	if res.Report == "" {
		t.Error("empty report")
	}
}
