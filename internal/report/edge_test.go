package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/skyserver"
)

// A server that has ingested nothing still serves /report after its first
// epoch: every format must handle a result with no clusters, no noise and
// no pipeline stats without panicking or emitting broken framing.
func TestWriteEmptyResult(t *testing.T) {
	res := core.NewMiner(core.Config{Schema: skyserver.Schema()}).MineSQL(nil)
	for _, f := range []Format{Text, CSV, JSON} {
		var buf bytes.Buffer
		if err := Write(&buf, res, f, Options{}); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", f)
		}
	}

	var buf bytes.Buffer
	if err := Write(&buf, res, Text, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "clusters: 0, noise queries: 0") {
		t.Errorf("text header for empty result: %q", buf.String())
	}

	buf.Reset()
	if err := Write(&buf, res, CSV, Options{}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("empty-result csv does not parse: %v", err)
	}
	if len(rows) != 1 {
		t.Errorf("empty-result csv has %d rows, want header only", len(rows))
	}

	buf.Reset()
	if err := Write(&buf, res, JSON, Options{}); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty-result json does not parse: %v", err)
	}
	if out["total_clusters"].(float64) != 0 {
		t.Errorf("total_clusters = %v", out["total_clusters"])
	}
}

// All-noise clustering: every statement distinct, none reaching minPts.
// The report must show zero clusters while accounting for every query as
// noise.
func TestWriteNoiseOnly(t *testing.T) {
	m := core.NewMiner(core.Config{Schema: skyserver.Schema(), MinPts: 8})
	stmts := []string{
		"SELECT ra FROM PhotoObjAll WHERE ra <= 10",
		"SELECT z FROM Photoz WHERE z >= 0.7",
		"SELECT dec FROM zooSpec WHERE dec <= -40",
	}
	res := m.MineSQL(stmts)
	if len(res.Clusters) != 0 {
		t.Fatalf("workload unexpectedly clustered: %d clusters", len(res.Clusters))
	}
	if res.NoiseQueries != len(stmts) {
		t.Fatalf("noise queries = %d, want %d", res.NoiseQueries, len(stmts))
	}

	var buf bytes.Buffer
	if err := Write(&buf, res, Text, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "clusters: 0, noise queries: 3") {
		t.Errorf("noise-only text: %q", buf.String())
	}

	buf.Reset()
	if err := Write(&buf, res, JSON, Options{}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		NoiseQueries  int `json:"noise_queries"`
		TotalClusters int `json:"total_clusters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.NoiseQueries != 3 || out.TotalClusters != 0 {
		t.Errorf("noise-only json: %+v", out)
	}
}

// Results arriving without pipeline statistics (core.Miner.MineAreas, or a
// serve epoch before stats merge) must render a stable JSON shape: the
// stats fields present and zero, not absent or null.
func TestWriteStatsAbsentJSONGolden(t *testing.T) {
	res := &core.Result{ChosenEps: 0.06}
	var buf bytes.Buffer
	if err := Write(&buf, res, JSON, Options{}); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "statements": 0,
  "extracted": 0,
  "extraction_coverage": 0,
  "distinct_areas": 0,
  "noise_queries": 0,
  "total_clusters": 0,
  "clusters": null,
  "eps": 0.06,
  "contradictory_areas": 0
}
`
	if buf.String() != golden {
		t.Errorf("stats-absent json drifted from golden:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}

	// Text must not print the stats line at all when stats are absent.
	buf.Reset()
	if err := Write(&buf, res, Text, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "statements:") {
		t.Errorf("stats-absent text printed a stats line: %q", buf.String())
	}
}
