package skyserver

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/interval"
)

// LogEntry is one query-log record.
type LogEntry struct {
	Seq  int
	Time int64 // logical seconds since log start
	User string
	SQL  string
	// Template is the ground-truth workload label ("cluster01".."cluster24",
	// "noise", "error", "admin", "mysql", "bigpred"); it never reaches the
	// pipeline and exists for evaluation only.
	Template string
}

// WorkloadConfig controls the synthetic log.
type WorkloadConfig struct {
	// Queries is the total log size. Default 20000.
	Queries int
	// Seed drives the deterministic generator.
	Seed int64
	// NoiseFraction is the share of unclustered background queries
	// (default 0.12).
	NoiseFraction float64
	// ErrorFraction is the share of statements the parser must reject —
	// syntax errors, SkyServer UDFs, admin DDL (default 0.0054, the
	// paper's 67,563 / 12,442,989).
	ErrorFraction float64
	// MySQLFraction is the share of MySQL-dialect queries (parse fine,
	// would error on SkyServer; default 0.002).
	MySQLFraction float64
	// BigPredFraction is the share of queries with more than 35 predicates
	// (default 471.0/12442989 ≈ 0.000038, floored to at least one query).
	BigPredFraction float64
	// VariantFraction is the share of each template's queries phrased via
	// alternate SQL forms — aggregates with vacuous HAVING, NOT-wrapped
	// ranges, EXISTS/IN nesting, join reorderings (default 0.2). These
	// exercise the Section 4.2-4.4 mappings and are what breaks the
	// raw-predicate OLAPClus baseline in Section 6.5.
	VariantFraction float64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Queries <= 0 {
		c.Queries = 20000
	}
	if c.NoiseFraction == 0 {
		c.NoiseFraction = 0.12
	}
	if c.ErrorFraction == 0 {
		c.ErrorFraction = 0.0054
	}
	if c.MySQLFraction == 0 {
		c.MySQLFraction = 0.002
	}
	if c.BigPredFraction == 0 {
		c.BigPredFraction = 471.0 / 12442989.0
	}
	if c.VariantFraction == 0 {
		c.VariantFraction = 0.2
	}
	return c
}

// template describes one Table-1 cluster workload.
type template struct {
	name string
	// weight is the paper's Table-1 cardinality; per-template counts are
	// allocated proportionally (with a floor so every cluster stays
	// detectable at small scale).
	weight int
	gen    func(r *rand.Rand, variant bool) string
}

// fint formats a float as an exact integer literal (18-digit object IDs).
func fint(v float64) string {
	return strconv.FormatFloat(math.Trunc(v), 'f', -1, 64)
}

// ffloat formats a float constant with limited precision so identical-ish
// queries deduplicate naturally.
func ffloat(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// subRange draws a random subinterval of iv: centre uniform, width a
// fraction of the window.
func subRange(r *rand.Rand, iv interval.Interval, minFrac, maxFrac float64) (float64, float64) {
	w := iv.Width()
	width := (minFrac + r.Float64()*(maxFrac-minFrac)) * w
	lo := iv.Lo + r.Float64()*(w-width)
	return lo, lo + width
}

// Table-1 cluster windows (the ground-truth access areas the generator
// draws constants from; the paper's Table 1 column "Access area").
var (
	win1   = interval.Closed(1.237657855534432934e18, 1.237666210342830434e18) // Photoz.objid
	win2   = interval.Closed(1.115887524498139136e18, 2.183177975464224768e18) // SpecObjAll.specobjid
	win3   = interval.Closed(1.345591721622267904e18, 2.007633797213874176e18) // galSpecLine.specobjid
	win4   = interval.Closed(1.4161923255970304e18, 2.183213984470034432e18)   // galSpecInfo.specobjid
	win6   = interval.Closed(1.228357946564438016e18, 2.069493422263134208e18) // sppLines.specobjid
	win7   = interval.Closed(54, 115)                                          // SpecObjAll.ra
	win8   = interval.Closed(60, 124)                                          // SpecPhotoAll.ra
	win9m  = interval.Closed(51578, 52178)                                     // SpecObjAll.mjd
	win9p  = interval.Closed(296, 3200)                                        // SpecObjAll.plate
	win11  = interval.Closed(55, 141)                                          // emissionLinesPort.ra
	win12  = interval.Closed(62, 138)                                          // stellarMassPCAWisc.ra
	win13  = 1.237676243900255188e18                                           // AtlasOutline.objid >
	win14r = interval.Closed(2, 120)                                           // zooSpec.ra
	win14d = interval.Closed(30, 70)                                           // zooSpec.dec
	win15  = interval.Closed(0, 0.1)                                           // Photoz.z
	win18r = interval.Closed(10, 120)                                          // PhotoObjAll.ra (empty dec)
	win18d = interval.Closed(-90, -50)                                         // PhotoObjAll.dec (empty)
	win19  = interval.Closed(3.519644828126257152e18, 5.788299621113984e18)    // galSpecLine empty
	win21  = interval.Closed(4.037480726273651712e18, 5.788299621113984e18)    // sppLines empty
	win22r = interval.Closed(6, 115)                                           // zooSpec.ra (empty dec)
	win22d = interval.Closed(-100, -15)                                        // zooSpec.dec incl. the -100 anomaly
	win23  = interval.Closed(-0.98, -0.1)                                      // Photoz.z empty (negative)
	win24  = interval.Closed(3.0, 6.5)                                         // Photoz.z empty (high)
)

// specobjidRange builds the shared shape of the specobjid-range templates
// (clusters 2-4, 6, 19-21): plain range, BETWEEN, NOT-wrapped range, or an
// aggregate with vacuous HAVING.
func specobjidRange(table, column string, win interval.Interval) func(*rand.Rand, bool) string {
	return func(r *rand.Rand, variant bool) string {
		lo, hi := subRange(r, win, 0.05, 0.6)
		a, b := fint(lo), fint(hi)
		if !variant {
			switch r.Intn(3) {
			case 0:
				return fmt.Sprintf("SELECT * FROM %s WHERE %s BETWEEN %s AND %s", table, column, a, b)
			case 1:
				return fmt.Sprintf("SELECT %s FROM %s WHERE %s >= %s AND %s <= %s", column, table, column, a, column, b)
			default:
				return fmt.Sprintf("SELECT TOP 100 * FROM %s WHERE %s >= %s AND %s <= %s ORDER BY %s", table, column, a, column, b, column)
			}
		}
		switch r.Intn(3) {
		case 0:
			// NOT-wrapped range: same access area after NNF push-down.
			return fmt.Sprintf("SELECT * FROM %s WHERE NOT (%s < %s OR %s > %s)", table, column, a, column, b)
		case 1:
			// Aggregate with vacuous HAVING (COUNT is always paddable).
			return fmt.Sprintf("SELECT %s, COUNT(*) FROM %s WHERE %s BETWEEN %s AND %s GROUP BY %s HAVING COUNT(*) > 1",
				column, table, column, a, b, column)
		default:
			// Vacuous SUM > c over an unbounded-domain column.
			return fmt.Sprintf("SELECT %s, SUM(%s) FROM %s WHERE %s >= %s AND %s <= %s GROUP BY %s HAVING SUM(%s) > 10",
				column, column, table, column, a, column, b, column, column)
		}
	}
}

// raRange builds the right-ascension band templates (clusters 7, 8, 11, 12).
func raRange(table string, win interval.Interval) func(*rand.Rand, bool) string {
	return func(r *rand.Rand, variant bool) string {
		lo, hi := subRange(r, win, 0.3, 0.95)
		a, b := ffloat(lo, 1), ffloat(hi, 1)
		if !variant {
			if r.Intn(2) == 0 {
				return fmt.Sprintf("SELECT ra FROM %s WHERE ra BETWEEN %s AND %s", table, a, b)
			}
			return fmt.Sprintf("SELECT * FROM %s WHERE ra >= %s AND ra <= %s", table, a, b)
		}
		return fmt.Sprintf("SELECT ra, COUNT(*) FROM %s WHERE ra >= %s AND ra <= %s GROUP BY ra HAVING COUNT(*) >= 1",
			table, a, b)
	}
}

// rectQuery builds two-column rectangle templates.
func rectQuery(table, xcol, ycol string, xwin, ywin interval.Interval, oneSided bool) func(*rand.Rand, bool) string {
	return rectQueryFrac(table, xcol, ycol, xwin, ywin, oneSided, 0.4, 0.95)
}

func rectQueryFrac(table, xcol, ycol string, xwin, ywin interval.Interval, oneSided bool, minFrac, maxFrac float64) func(*rand.Rand, bool) string {
	return func(r *rand.Rand, variant bool) string {
		if oneSided {
			x := ffloat(xwin.Lo+r.Float64()*xwin.Width(), 1)
			y := ffloat(ywin.Lo+r.Float64()*ywin.Width(), 1)
			if !variant {
				return fmt.Sprintf("SELECT TOP 50 %s, %s FROM %s WHERE %s <= %s AND %s <= %s",
					xcol, ycol, table, xcol, x, ycol, y)
			}
			return fmt.Sprintf("SELECT %s, MIN(%s) FROM %s WHERE %s <= %s AND %s <= %s GROUP BY %s HAVING MIN(%s) > -9999",
				xcol, ycol, table, xcol, x, ycol, y, xcol, ycol)
		}
		x1, x2 := subRange(r, xwin, minFrac, maxFrac)
		y1, y2 := subRange(r, ywin, minFrac, maxFrac)
		if !variant {
			return fmt.Sprintf("SELECT * FROM %s WHERE %s BETWEEN %s AND %s AND %s BETWEEN %s AND %s",
				table, xcol, ffloat(x1, 1), ffloat(x2, 1), ycol, ffloat(y1, 1), ffloat(y2, 1))
		}
		return fmt.Sprintf("SELECT * FROM %s WHERE NOT (%s < %s OR %s > %s) AND %s >= %s AND %s <= %s",
			table, xcol, ffloat(x1, 1), xcol, ffloat(x2, 1), ycol, ffloat(y1, 1), ycol, ffloat(y2, 1))
	}
}

// templates returns the 24 Table-1 workloads.
func templates() []template {
	return []template{
		{"cluster01", 179072, func(r *rand.Rand, variant bool) string {
			// Photoz.objid = c, constants dense within win1.
			c := fint(win1.Lo + r.Float64()*win1.Width())
			if !variant {
				return fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %s", c)
			}
			return fmt.Sprintf("SELECT * FROM Photoz WHERE objid IN (%s)", c)
		}},
		{"cluster02", 121311, specobjidRange("SpecObjAll", "specobjid", win2)},
		{"cluster03", 92177, specobjidRange("galSpecLine", "specobjid", win3)},
		{"cluster04", 90047, specobjidRange("galSpecInfo", "specobjid", win4)},
		{"cluster05", 90015, rectQuery("PhotoObjAll", "ra", "dec",
			interval.Closed(190, 210), interval.Closed(5, 10), true)},
		{"cluster06", 82196, specobjidRange("sppLines", "specobjid", win6)},
		{"cluster07", 23021, raRange("SpecObjAll", win7)},
		{"cluster08", 23021, raRange("SpecPhotoAll", win8)},
		{"cluster09", 18904, func(r *rand.Rand, variant bool) string {
			m1, m2 := subRange(r, win9m, 0.3, 0.9)
			p1, p2 := subRange(r, win9p, 0.3, 0.9)
			if !variant {
				return fmt.Sprintf(
					"SELECT * FROM SpecObjAll WHERE class = 'star' AND mjd BETWEEN %s AND %s AND plate BETWEEN %s AND %s",
					ffloat(m1, 0), ffloat(m2, 0), ffloat(p1, 0), ffloat(p2, 0))
			}
			return fmt.Sprintf(
				"SELECT plate, COUNT(*) FROM SpecObjAll WHERE class LIKE 'star' AND mjd >= %s AND mjd <= %s AND plate >= %s AND plate <= %s GROUP BY plate HAVING COUNT(*) > 2",
				ffloat(m1, 0), ffloat(m2, 0), ffloat(p1, 0), ffloat(p2, 0))
		}},
		{"cluster10", 10141, func(r *rand.Rand, variant bool) string {
			if !variant {
				return "SELECT name FROM DBObjects WHERE access = 'U' AND (type = 'V' OR type = 'U')"
			}
			return "SELECT name FROM DBObjects WHERE access = 'U' AND type IN ('V', 'U')"
		}},
		{"cluster11", 4006, raRange("emissionLinesPort", win11)},
		{"cluster12", 3785, raRange("stellarMassPCAWisc", win12)},
		{"cluster13", 1622, func(r *rand.Rand, variant bool) string {
			c := fint(win13 + r.Float64()*1e12)
			if !variant {
				return fmt.Sprintf("SELECT objid FROM AtlasOutline WHERE objid > %s", c)
			}
			return fmt.Sprintf("SELECT * FROM AtlasOutline WHERE NOT (objid <= %s)", c)
		}},
		{"cluster14", 1371, rectQueryFrac("zooSpec", "ra", "dec", win14r, win14d, false, 0.7, 0.95)},
		{"cluster15", 1141, func(r *rand.Rand, variant bool) string {
			lo, hi := subRange(r, win15, 0.5, 1.0)
			if !variant {
				return fmt.Sprintf("SELECT objid FROM Photoz WHERE z >= %s AND z <= %s", ffloat(lo, 3), ffloat(hi, 3))
			}
			return fmt.Sprintf("SELECT objid FROM Photoz WHERE z BETWEEN %s AND %s", ffloat(lo, 3), ffloat(hi, 3))
		}},
		{"cluster16", 1102, func(r *rand.Rand, variant bool) string {
			b1, b2 := subRange(r, interval.Closed(0, 3), 0.8, 1.0)
			switch {
			case !variant:
				return fmt.Sprintf(
					"SELECT * FROM galSpecExtra JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID WHERE galSpecExtra.bptclass BETWEEN %s AND %s",
					ffloat(b1, 0), ffloat(b2, 0))
			case r.Intn(2) == 0:
				return fmt.Sprintf(
					"SELECT * FROM galSpecExtra, galSpecIndx WHERE galSpecExtra.specobjid = galSpecIndx.specObjID AND galSpecExtra.bptclass >= %s AND galSpecExtra.bptclass <= %s",
					ffloat(b1, 0), ffloat(b2, 0))
			default:
				return fmt.Sprintf(
					"SELECT * FROM galSpecExtra WHERE galSpecExtra.bptclass >= %s AND galSpecExtra.bptclass <= %s AND EXISTS (SELECT * FROM galSpecIndx WHERE galSpecIndx.specObjID = galSpecExtra.specobjid)",
					ffloat(b1, 0), ffloat(b2, 0))
			}
		}},
		{"cluster17", 1035, func(r *rand.Rand, variant bool) string {
			f1, f2 := subRange(r, interval.Closed(-0.3, 0.5), 0.7, 1.0)
			g1, g2 := subRange(r, interval.Closed(2, 3), 0.7, 1.0)
			side := ffloat(40+r.Float64()*10, 0)
			if !variant {
				return fmt.Sprintf(
					"SELECT * FROM sppLines JOIN sppParams ON sppLines.specobjid = sppParams.specobjid WHERE sppLines.gwholemask = 0 AND sppLines.gwholeside <= %s AND sppParams.fehadop BETWEEN %s AND %s AND sppParams.loggadop BETWEEN %s AND %s",
					side, ffloat(f1, 2), ffloat(f2, 2), ffloat(g1, 2), ffloat(g2, 2))
			}
			return fmt.Sprintf(
				"SELECT * FROM sppLines, sppParams WHERE sppLines.specobjid = sppParams.specobjid AND sppLines.gwholemask = 0 AND sppLines.gwholeside >= 0 AND sppLines.gwholeside <= %s AND sppParams.fehadop >= %s AND sppParams.fehadop <= %s AND sppParams.loggadop >= %s AND sppParams.loggadop <= %s",
				side, ffloat(f1, 2), ffloat(f2, 2), ffloat(g1, 2), ffloat(g2, 2))
		}},
		{"cluster18", 48470, rectQuery("PhotoObjAll", "ra", "dec", win18r, win18d, false)},
		{"cluster19", 41599, specobjidRange("galSpecLine", "specobjid", win19)},
		{"cluster20", 18444, specobjidRange("galSpecInfo", "specobjid", win19)},
		{"cluster21", 18043, specobjidRange("sppLines", "specobjid", win21)},
		{"cluster22", 1358, rectQueryFrac("zooSpec", "ra", "dec", win22r, win22d, false, 0.7, 0.95)},
		{"cluster23", 422, func(r *rand.Rand, variant bool) string {
			lo, hi := subRange(r, win23, 0.7, 1.0)
			return fmt.Sprintf("SELECT objid FROM Photoz WHERE z >= %s AND z <= %s", ffloat(lo, 2), ffloat(hi, 2))
		}},
		{"cluster24", 217, func(r *rand.Rand, variant bool) string {
			lo, hi := subRange(r, win24, 0.85, 1.0)
			return fmt.Sprintf("SELECT objid FROM Photoz WHERE z >= %s AND z <= %s", ffloat(lo, 1), ffloat(hi, 1))
		}},
	}
}

// noiseTables are the single-numeric-column probes background queries hit.
var noiseProbes = []struct {
	table, col string
	win        interval.Interval
	prec       int
}{
	{"PhotoObjAll", "ra", interval.Closed(0, 360), 2},
	{"PhotoObjAll", "dec", interval.Closed(-90, 90), 2},
	{"SpecObjAll", "z", interval.Closed(0, 7), 3},
	{"SpecObjAll", "plate", interval.Closed(266, 5141), 0},
	{"Photoz", "zerr", interval.Closed(0, 1), 3},
	{"zooSpec", "p_el", interval.Closed(0, 1), 3},
	{"galSpecInfo", "snmedian", interval.Closed(0, 900), 1},
	{"sppParams", "fehadop", interval.Closed(-5, 1), 2},
	{"AtlasOutline", "span", interval.Closed(0, 100), 1},
	{"emissionLinesPort", "dec", interval.Closed(-90, 90), 2},
}

func noiseQuery(r *rand.Rand) string {
	p := noiseProbes[r.Intn(len(noiseProbes))]
	switch r.Intn(4) {
	case 3:
		// Occasional UNION probes exercise the union mapping end to end.
		q := noiseProbes[r.Intn(len(noiseProbes))]
		v1 := p.win.Lo + r.Float64()*p.win.Width()
		v2 := q.win.Lo + r.Float64()*q.win.Width()
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s < %s UNION SELECT %s FROM %s WHERE %s > %s",
			p.col, p.table, p.col, ffloat(v1, p.prec), q.col, q.table, q.col, ffloat(v2, q.prec))
	case 0:
		v := p.win.Lo + r.Float64()*p.win.Width()
		op := []string{"<", "<=", ">", ">=", "="}[r.Intn(5)]
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s %s %s", p.col, p.table, p.col, op, ffloat(v, p.prec))
	case 1:
		lo, hi := subRange(r, p.win, 0.01, 0.9)
		return fmt.Sprintf("SELECT * FROM %s WHERE %s BETWEEN %s AND %s", p.table, p.col, ffloat(lo, p.prec), ffloat(hi, p.prec))
	default:
		return fmt.Sprintf("SELECT TOP 10 * FROM %s", p.table)
	}
}

// errorStatements are rejected by the parser for the reasons of Section
// 6.1: syntax errors, SkyServer UDFs, DDL/DECLARE issued by administrators.
func errorStatement(r *rand.Rand) (sql, kind string) {
	switch r.Intn(5) {
	case 0:
		return "SELECT * FROM WHERE ra > 100", "error"
	case 1:
		return "SELEC objid FRM PhotoObjAll", "error"
	case 2:
		return fmt.Sprintf("SELECT * FROM dbo.fGetNearbyObjEq(%s, %s, 1.0)",
			ffloat(r.Float64()*360, 2), ffloat(r.Float64()*180-90, 2)), "error"
	case 3:
		return "CREATE TABLE mydb.results (objid bigint, ra float)", "admin"
	default:
		return "DECLARE @ra float SET @ra = 185.0", "admin"
	}
}

func mysqlQuery(r *rand.Rand) string {
	return fmt.Sprintf("SELECT Galaxies.objid FROM Galaxies LIMIT %d", 10+r.Intn(90))
}

// bigPredQuery emits a pathological query with more than 35 predicates
// (Section 6.6: 471 such queries in the real log; they bound the CNF
// converter).
func bigPredQuery(r *rand.Rand) string {
	return PathologicalQuery(20 + r.Intn(10))
}

// PathologicalQuery returns a query whose WHERE is a disjunction of n
// two-predicate conjunctions: its CNF has 2^n clauses, the exponential
// blow-up Section 6.6 bounds with the 35-predicate cap.
func PathologicalQuery(n int) string {
	sql := "SELECT * FROM PhotoObjAll WHERE ra > 0"
	for i := 0; i < n; i++ {
		sql += fmt.Sprintf(" OR (ra > %d AND dec < %d)", i, i)
	}
	return sql
}

// GenerateLog produces the synthetic query log. Counts per template are
// allocated proportionally to the paper's Table-1 cardinalities (with a
// floor so every cluster stays detectable at small scale), the remainder is
// background noise, and the special populations (errors, admin DDL, MySQL
// dialect, >35-predicate monsters) get their configured shares. The order
// is shuffled deterministically.
func GenerateLog(cfg WorkloadConfig) []LogEntry {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	tpls := templates()

	nErr := maxInt(1, int(float64(cfg.Queries)*cfg.ErrorFraction))
	nMySQL := maxInt(1, int(float64(cfg.Queries)*cfg.MySQLFraction))
	nBig := maxInt(1, int(float64(cfg.Queries)*cfg.BigPredFraction))
	nNoise := int(float64(cfg.Queries) * cfg.NoiseFraction)
	nTemplates := cfg.Queries - nErr - nMySQL - nBig - nNoise
	if nTemplates < len(tpls) {
		nTemplates = len(tpls)
	}

	totalWeight := 0
	for _, t := range tpls {
		totalWeight += t.weight
	}
	floor := maxInt(8, nTemplates/2000)
	counts := make([]int, len(tpls))
	allocated := 0
	for i, t := range tpls {
		c := int(math.Round(float64(nTemplates) * float64(t.weight) / float64(totalWeight)))
		if c < floor {
			c = floor
		}
		counts[i] = c
		allocated += c
	}
	// Absorb over/under-allocation in the largest template.
	counts[0] += nTemplates - allocated
	if counts[0] < floor {
		counts[0] = floor
	}

	var entries []LogEntry
	userPool := 3 * cfg.Queries
	user := func(tpl string) string {
		// A few bots produce a disproportionate share (Singh et al. [23]);
		// they favour the programmatic objid-lookup workload.
		botOdds := 50
		if tpl == "cluster01" {
			botOdds = 5
		}
		if r.Intn(botOdds) == 0 {
			return fmt.Sprintf("bot%02d", r.Intn(3))
		}
		return fmt.Sprintf("u%06d", r.Intn(userPool))
	}
	add := func(sql, tplName string) {
		entries = append(entries, LogEntry{User: user(tplName), SQL: sql, Template: tplName})
	}
	for i, t := range tpls {
		for k := 0; k < counts[i]; k++ {
			variant := r.Float64() < cfg.VariantFraction
			add(t.gen(r, variant), t.name)
		}
	}
	for k := 0; k < nNoise; k++ {
		add(noiseQuery(r), "noise")
	}
	for k := 0; k < nErr; k++ {
		sql, kind := errorStatement(r)
		add(sql, kind)
	}
	for k := 0; k < nMySQL; k++ {
		add(mysqlQuery(r), "mysql")
	}
	for k := 0; k < nBig; k++ {
		add(bigPredQuery(r), "bigpred")
	}

	// Deterministic shuffle and timestamping (~14 queries/minute overall).
	r.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	for i := range entries {
		entries[i].Seq = i
		entries[i].Time = int64(i) * 4
	}
	// Bots hammer the interface in machine-cadence bursts: rewrite their
	// timestamps to 1-second runs anchored at each bot's first appearance.
	botIdx := make(map[string][]int)
	for i, e := range entries {
		if strings.HasPrefix(e.User, "bot") {
			botIdx[e.User] = append(botIdx[e.User], i)
		}
	}
	for _, idxs := range botIdx {
		base := entries[idxs[0]].Time
		for k, idx := range idxs {
			entries[idx].Time = base + int64(k)
		}
	}
	return entries
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClassMix apportions a mixed-traffic log across the traffic classes by
// record share. An all-zero mix falls back to the SkyServer Traffic Report's
// rough shape: 70% bot, 25% human, 5% admin.
type ClassMix struct {
	Bot   float64
	Human float64
	Admin float64
}

// ClassOf returns a mixed-log record's ground-truth class from its user
// name: GenerateMixedLog names bots bot##, admins adm## and everyone else
// u###### — the evaluation key the traffic-perf harness scores the online
// classifier against.
func ClassOf(user string) string {
	switch {
	case strings.HasPrefix(user, "bot"):
		return "bot"
	case strings.HasPrefix(user, "adm"):
		return "admin"
	default:
		return "human"
	}
}

// GenerateMixedLog produces a query log whose per-user behaviour separates
// into the three traffic classes:
//
//   - bots: a handful of bot## users, each locked to one or two statement
//     templates (low fingerprint diversity), hammering at a constant 1–3 s
//     cadence (low gap mean and stddev) in long runs;
//   - humans: many u###### users browsing in bursty sessions — 3–12 mixed
//     template/noise queries with irregular 8–240 s gaps, then a long pause;
//   - admins: a few adm## users issuing DDL / variable-batch / mutation
//     statements.
//
// The interleaved order is deterministic for a given config: entries are
// laid out on per-user logical clocks and stably sorted by time, so the
// same seed always yields byte-identical logs and therefore byte-identical
// classifier behaviour downstream.
func GenerateMixedLog(cfg WorkloadConfig, mix ClassMix) []LogEntry {
	cfg = cfg.withDefaults()
	if mix.Bot <= 0 && mix.Human <= 0 && mix.Admin <= 0 {
		mix = ClassMix{Bot: 0.70, Human: 0.25, Admin: 0.05}
	}
	total := mix.Bot + mix.Human + mix.Admin
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x7ea6f1c))
	tpls := templates()

	nBot := int(float64(cfg.Queries) * mix.Bot / total)
	nAdmin := int(float64(cfg.Queries) * mix.Admin / total)
	nHuman := cfg.Queries - nBot - nAdmin
	entries := make([]LogEntry, 0, cfg.Queries)

	// Bots: each owns a contiguous machine-cadence run from its own start
	// offset. Template lock-in keeps the per-user fingerprint set at 1–2.
	if nBot > 0 {
		bots := maxInt(2, nBot/2500)
		if bots > 40 {
			bots = 40
		}
		per := nBot / bots
		for b := 0; b < bots; b++ {
			count := per
			if b == 0 {
				count += nBot - per*bots
			}
			user := fmt.Sprintf("bot%02d", b)
			gap := int64(1 + b%3)
			t := int64(b * 11)
			primary := tpls[b%len(tpls)]
			secondary := tpls[(b*7+3)%len(tpls)]
			dual := b%2 == 0
			for k := 0; k < count; k++ {
				tpl := primary
				if dual && k%5 == 4 {
					tpl = secondary
				}
				entries = append(entries, LogEntry{
					User: user, Time: t, SQL: tpl.gen(r, false), Template: tpl.name,
				})
				t += gap
			}
		}
	}

	// Humans: bursty sessions over a shared horizon so they interleave with
	// the bot runs instead of trailing them.
	horizon := int64(maxInt(nHuman, nBot) * 4)
	if horizon < 1 {
		horizon = 1
	}
	emitted := 0
	for u := 0; emitted < nHuman; u++ {
		user := fmt.Sprintf("u%06d", u)
		t := int64(r.Intn(int(horizon)))
		sessions := 1 + r.Intn(3)
		for s := 0; s < sessions && emitted < nHuman; s++ {
			qs := 3 + r.Intn(10)
			for q := 0; q < qs && emitted < nHuman; q++ {
				var sql string
				var label string
				switch {
				case r.Float64() < cfg.ErrorFraction:
					sql, label = "SELEC objid FRM PhotoObjAll", "error"
				case r.Float64() < cfg.NoiseFraction:
					sql, label = noiseQuery(r), "noise"
				default:
					tpl := tpls[r.Intn(len(tpls))]
					sql, label = tpl.gen(r, r.Float64() < cfg.VariantFraction), tpl.name
				}
				entries = append(entries, LogEntry{User: user, Time: t, SQL: sql, Template: label})
				t += int64(8 + r.Intn(233))
				emitted++
			}
			t += int64(3600 + r.Intn(7200))
		}
	}

	// Admins: a few operators running DDL, batch variables and mutations.
	if nAdmin > 0 {
		admins := maxInt(1, nAdmin/200)
		if admins > 10 {
			admins = 10
		}
		for k := 0; k < nAdmin; k++ {
			user := fmt.Sprintf("adm%02d", k%admins)
			var sql string
			switch r.Intn(5) {
			case 0:
				sql = fmt.Sprintf("CREATE TABLE mydb.run%d (objid bigint, ra float)", r.Intn(1000))
			case 1:
				sql = fmt.Sprintf("DECLARE @ra float SET @ra = %s", ffloat(r.Float64()*360, 2))
			case 2:
				sql = fmt.Sprintf("INSERT INTO mydb.targets SELECT objid FROM PhotoObjAll WHERE ra > %s", ffloat(r.Float64()*360, 2))
			case 3:
				sql = fmt.Sprintf("UPDATE mydb.targets SET done = %d WHERE objid = %d", r.Intn(2), r.Intn(1<<20))
			default:
				sql = fmt.Sprintf("DROP TABLE mydb.run%d", r.Intn(1000))
			}
			entries = append(entries, LogEntry{
				User: user, Time: int64(r.Intn(int(horizon))), SQL: sql, Template: "admin",
			})
		}
	}

	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time < entries[j].Time })
	for i := range entries {
		entries[i].Seq = i
	}
	return entries
}

// Countries lists the query-origin countries simulated by the generator;
// the paper's log spans users "from 127 countries".
var countryCodes = []string{
	"US", "DE", "GB", "JP", "CN", "FR", "IT", "ES", "CA", "AU", "IN", "BR",
	"RU", "NL", "SE", "CH", "PL", "KR", "MX", "AR", "CL", "ZA", "IL", "TR",
	"AT", "BE", "CZ", "DK", "FI", "GR", "HU", "IE", "NO", "PT", "RO", "TW",
}

// CountryOf deterministically assigns a user to a country with a skewed
// (Zipf-like) distribution — most traffic from a handful of countries, a
// long tail behind.
func CountryOf(user string) string {
	h := fnv1a(user)
	r := int(h % 1000)
	switch {
	case r < 300:
		return countryCodes[0]
	case r < 450:
		return countryCodes[1]
	case r < 550:
		return countryCodes[2]
	default:
		return countryCodes[3+int(h>>10)%(len(countryCodes)-3)]
	}
}

func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
