package distance

import (
	"math"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
)

// Profile is the precompiled form of an access area used during clustering:
// tables as a set, and per-predicate clipped/normalised geometry so the hot
// O(n²) distance loop performs no stats lookups.
type Profile struct {
	// Tables is the sorted relation list of the access area.
	Tables   []string
	tableSet map[string]struct{}
	clauses  []clauseProfile
	// Area retains the source access area for reporting.
	Area *extract.AccessArea
}

type predKind int

const (
	kindNumeric predKind = iota
	kindString
	kindColCol
)

type predProfile struct {
	kind    predKind
	column  string
	column2 string
	op      predicate.Op

	// Numeric: predicate hull clipped to access(a).
	iv          interval.Interval
	accessWidth float64
	frac        float64 // occupied fraction of access(a)

	// Categorical: value set (for NE: access(a) minus the value).
	strSet     map[string]struct{}
	accessCard int
}

type clauseProfile []predProfile

// Profile precompiles an access area against the metric's statistics.
func (m *Metric) Profile(a *extract.AccessArea) *Profile {
	p := &Profile{
		Tables:   a.Relations,
		tableSet: make(map[string]struct{}, len(a.Relations)),
		Area:     a,
	}
	for _, t := range a.Relations {
		p.tableSet[t] = struct{}{}
	}
	p.clauses = make([]clauseProfile, 0, len(a.CNF))
	for _, cl := range a.CNF {
		cp := make(clauseProfile, 0, len(cl))
		for _, pr := range cl {
			if pr.Kind == predicate.TruePred || pr.Kind == predicate.FalsePred {
				continue
			}
			cp = append(cp, m.compilePred(pr))
		}
		if len(cp) > 0 {
			p.clauses = append(p.clauses, cp)
		}
	}
	return p
}

// compilePred precomputes the geometry of one atomic predicate.
func (m *Metric) compilePred(p predicate.Pred) predProfile {
	switch {
	case p.Kind == predicate.ColumnColumn:
		return predProfile{kind: kindColCol, column: p.Column, column2: p.Column2, op: p.Op, frac: 1}
	case p.Val.Kind == predicate.StringVal:
		return m.compileCategorical(p)
	default:
		return m.compileNumeric(p)
	}
}

func (m *Metric) compileNumeric(p predicate.Pred) predProfile {
	set, _ := p.Interval()
	access := m.accessInterval(p.Column, set)
	clipped := set.Clip(access).Hull()
	w := access.Width()
	if clipped.IsEmpty() {
		// The predicate range lies entirely outside access(a) (possible
		// when stats were seeded externally): collapse to the nearest
		// access bound.
		nearest := access.Lo
		if h := set.Hull(); !h.IsEmpty() && !math.IsInf(h.Lo, -1) && h.Lo > access.Hi {
			nearest = access.Hi
		}
		clipped = interval.Point(nearest)
	}
	frac := 1.0
	if w > 0 && !math.IsInf(w, 1) {
		frac = set.Clip(access).Width() / w
	} else if clipped.IsPoint() {
		frac = 0
	}
	return predProfile{
		kind:        kindNumeric,
		column:      p.Column,
		op:          p.Op,
		iv:          clipped,
		accessWidth: w,
		frac:        frac,
	}
}

// accessInterval returns access(a) for a column, falling back to the hull
// of the predicate's own range when the registry has never seen the column.
func (m *Metric) accessInterval(column string, set interval.Set) interval.Interval {
	if m.Stats != nil {
		if acc, ok := m.Stats.NumericAccess(column); ok && !acc.IsEmpty() && acc.Width() > 0 {
			return acc
		}
	}
	h := set.Hull()
	if h.IsEmpty() || math.IsInf(h.Lo, 0) || math.IsInf(h.Hi, 0) {
		return interval.Closed(-1, 1)
	}
	if h.Width() == 0 {
		return interval.Closed(h.Lo-1, h.Hi+1)
	}
	return h
}

func (m *Metric) compileCategorical(p predicate.Pred) predProfile {
	var accessVals map[string]struct{}
	if m.Stats != nil {
		accessVals, _ = m.Stats.CategoricalAccess(p.Column)
	}
	if accessVals == nil {
		accessVals = map[string]struct{}{p.Val.Str: {}}
	}
	set := make(map[string]struct{})
	if p.Op == predicate.Ne {
		for v := range accessVals {
			if v != p.Val.Str {
				set[v] = struct{}{}
			}
		}
	} else {
		// =, and conservatively any ordered comparison, selects the value
		// itself; ordered string comparisons are rare in the log.
		set[p.Val.Str] = struct{}{}
	}
	card := len(accessVals)
	if card == 0 {
		card = 1
	}
	frac := float64(len(set)) / float64(card)
	return predProfile{
		kind:       kindString,
		column:     p.Column,
		op:         p.Op,
		strSet:     set,
		accessCard: card,
		frac:       frac,
	}
}
