package sqlparser

import (
	"errors"
	"strings"
	"testing"
)

func mustSelect(t *testing.T, src string) *SelectStatement {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5")
	if len(sel.Select) != 1 || sel.Select[0].Star {
		t.Fatalf("select list = %+v", sel.Select)
	}
	if len(sel.From) != 1 {
		t.Fatalf("from = %+v", sel.From)
	}
	tn, ok := sel.From[0].(*TableName)
	if !ok || tn.Name != "T" {
		t.Fatalf("from[0] = %#v", sel.From[0])
	}
	and, ok := sel.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %#v", sel.Where)
	}
}

func TestSelectStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T")
	if !sel.Select[0].Star {
		t.Error("expected star")
	}
	sel = mustSelect(t, "SELECT T.* FROM T")
	if !sel.Select[0].Star || sel.Select[0].StarTable != "T" {
		t.Errorf("qualified star = %+v", sel.Select[0])
	}
}

func TestBetween(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE u BETWEEN 1 AND 8")
	b, ok := sel.Where.(*BetweenExpr)
	if !ok || b.Not {
		t.Fatalf("where = %#v", sel.Where)
	}
	if lo := b.Lo.(*NumberLit); lo.Value != 1 {
		t.Errorf("lo = %v", lo.Value)
	}
	if hi := b.Hi.(*NumberLit); hi.Value != 8 {
		t.Errorf("hi = %v", hi.Value)
	}
	sel = mustSelect(t, "SELECT * FROM T WHERE u NOT BETWEEN 1 AND 8")
	if !sel.Where.(*BetweenExpr).Not {
		t.Error("expected NOT BETWEEN")
	}
}

func TestInListAndSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE u IN (1, 2, 3)")
	in := sel.Where.(*InListExpr)
	if len(in.List) != 3 || in.Not {
		t.Fatalf("in = %+v", in)
	}
	sel = mustSelect(t, "SELECT * FROM T WHERE u NOT IN (SELECT v FROM S WHERE v > 2)")
	ins := sel.Where.(*InSubqueryExpr)
	if !ins.Not || ins.Sub == nil {
		t.Fatalf("in-subquery = %+v", ins)
	}
}

func TestExistsNested(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM T WHERE T.u > 5 AND EXISTS (SELECT * FROM S WHERE S.u = T.u AND S.v < 3)`)
	and := sel.Where.(*BinaryExpr)
	ex, ok := and.R.(*ExistsExpr)
	if !ok {
		t.Fatalf("rhs = %#v", and.R)
	}
	sub := ex.Sub
	if tn := sub.From[0].(*TableName); tn.Name != "S" {
		t.Errorf("subquery from = %+v", sub.From[0])
	}
}

func TestNotExists(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE NOT EXISTS (SELECT * FROM S)")
	un, ok := sel.Where.(*UnaryExpr)
	if !ok || un.Op != "NOT" {
		t.Fatalf("where = %#v", sel.Where)
	}
	if _, ok := un.X.(*ExistsExpr); !ok {
		t.Fatalf("inner = %#v", un.X)
	}
}

func TestQuantified(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE u > ANY (SELECT v FROM S)")
	q := sel.Where.(*QuantifiedExpr)
	if q.All || q.Op != ">" {
		t.Fatalf("quantified = %+v", q)
	}
	sel = mustSelect(t, "SELECT * FROM T WHERE u <= ALL (SELECT v FROM S)")
	q = sel.Where.(*QuantifiedExpr)
	if !q.All || q.Op != "<=" {
		t.Fatalf("quantified = %+v", q)
	}
}

func TestScalarSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE T.u = (SELECT S.u FROM S WHERE S.v = 12)")
	cmp := sel.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*ScalarSubquery); !ok {
		t.Fatalf("rhs = %#v", cmp.R)
	}
}

func TestJoins(t *testing.T) {
	cases := []struct {
		src  string
		want JoinType
	}{
		{"SELECT * FROM T JOIN S ON T.u = S.u", InnerJoin},
		{"SELECT * FROM T INNER JOIN S ON T.u = S.u", InnerJoin},
		{"SELECT * FROM T LEFT JOIN S ON T.u = S.u", LeftOuterJoin},
		{"SELECT * FROM T LEFT OUTER JOIN S ON T.u = S.u", LeftOuterJoin},
		{"SELECT * FROM T RIGHT OUTER JOIN S ON T.u = S.u", RightOuterJoin},
		{"SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u", FullOuterJoin},
		{"SELECT * FROM T CROSS JOIN S", CrossJoin},
	}
	for _, c := range cases {
		sel := mustSelect(t, c.src)
		j, ok := sel.From[0].(*Join)
		if !ok {
			t.Fatalf("%q: from = %#v", c.src, sel.From[0])
		}
		if j.Type != c.want {
			t.Errorf("%q: type = %v, want %v", c.src, j.Type, c.want)
		}
	}
}

func TestNaturalJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T NATURAL JOIN S")
	j := sel.From[0].(*Join)
	if !j.Natural || j.On != nil {
		t.Fatalf("join = %+v", j)
	}
}

func TestChainedJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM A JOIN B ON A.x = B.x LEFT JOIN C ON B.y = C.y")
	outer := sel.From[0].(*Join)
	if outer.Type != LeftOuterJoin {
		t.Fatalf("outer join type = %v", outer.Type)
	}
	inner := outer.Left.(*Join)
	if inner.Type != InnerJoin {
		t.Fatalf("inner join type = %v", inner.Type)
	}
}

func TestJoinRequiresOn(t *testing.T) {
	_, err := ParseSelect("SELECT * FROM T INNER JOIN S")
	if err == nil {
		t.Fatal("expected error for INNER JOIN without ON")
	}
}

func TestAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT p.ra AS r FROM PhotoObjAll AS p WHERE p.dec < 10")
	tn := sel.From[0].(*TableName)
	if tn.Name != "PhotoObjAll" || tn.Alias != "p" {
		t.Fatalf("table = %+v", tn)
	}
	if sel.Select[0].Alias != "r" {
		t.Errorf("select alias = %q", sel.Select[0].Alias)
	}
	// Implicit alias without AS.
	sel = mustSelect(t, "SELECT p.ra FROM PhotoObjAll p")
	if sel.From[0].(*TableName).Alias != "p" {
		t.Error("implicit alias not parsed")
	}
}

func TestGroupByHaving(t *testing.T) {
	sel := mustSelect(t, "SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 10")
	if len(sel.GroupBy) != 1 {
		t.Fatalf("group by = %+v", sel.GroupBy)
	}
	h := sel.Having.(*BinaryExpr)
	fc := h.L.(*FuncCall)
	if !fc.IsAggregate() || strings.ToUpper(fc.Name) != "SUM" {
		t.Fatalf("having lhs = %#v", h.L)
	}
}

func TestCountStar(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*) FROM T")
	fc := sel.Select[0].Expr.(*FuncCall)
	if !fc.Star || !fc.IsAggregate() {
		t.Fatalf("count = %+v", fc)
	}
	sel = mustSelect(t, "SELECT COUNT(DISTINCT u) FROM T")
	fc = sel.Select[0].Expr.(*FuncCall)
	if !fc.Distinct || len(fc.Args) != 1 {
		t.Fatalf("count distinct = %+v", fc)
	}
}

func TestTopAndLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT TOP 10 objid FROM PhotoObjAll")
	if sel.Top == nil || *sel.Top != 10 {
		t.Fatalf("top = %v", sel.Top)
	}
	// The MySQL-dialect query quoted verbatim in §6.6.
	sel = mustSelect(t, "SELECT Galaxies.objid FROM Galaxies LIMIT 10")
	if sel.Limit == nil || *sel.Limit != 10 {
		t.Fatalf("limit = %v", sel.Limit)
	}
	sel = mustSelect(t, "SELECT u FROM T LIMIT 5, 20")
	if sel.Limit == nil || *sel.Limit != 20 {
		t.Fatalf("limit offset,count = %v", sel.Limit)
	}
}

func TestOrderBy(t *testing.T) {
	sel := mustSelect(t, "SELECT u FROM T ORDER BY u DESC, v ASC")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %s", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("AND should bind tighter: rhs = %#v", or.R)
	}
	// Arithmetic binds tighter than comparison.
	sel = mustSelect(t, "SELECT * FROM T WHERE a + 1 * 2 > 3")
	cmp := sel.Where.(*BinaryExpr)
	if cmp.Op != ">" {
		t.Fatalf("top = %s", cmp.Op)
	}
	add := cmp.L.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("lhs = %#v", cmp.L)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != "*" {
		t.Fatalf("mul = %#v", add.R)
	}
}

func TestNegativeNumberFolding(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM zooSpec WHERE dec >= -100")
	cmp := sel.Where.(*BinaryExpr)
	n, ok := cmp.R.(*NumberLit)
	if !ok || n.Value != -100 {
		t.Fatalf("rhs = %#v", cmp.R)
	}
}

func TestBigIntegerTextPreserved(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM Photoz WHERE objid = 1237657855534432934")
	n := sel.Where.(*BinaryExpr).R.(*NumberLit)
	if n.Text != "1237657855534432934" {
		t.Errorf("text = %q", n.Text)
	}
}

func TestScientificAndFloat(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE z < 1.5e-3 AND w > .5")
	and := sel.Where.(*BinaryExpr)
	l := and.L.(*BinaryExpr).R.(*NumberLit)
	if l.Value != 1.5e-3 {
		t.Errorf("sci = %v", l.Value)
	}
	r := and.R.(*BinaryExpr).R.(*NumberLit)
	if r.Value != 0.5 {
		t.Errorf("dotfloat = %v", r.Value)
	}
}

func TestStringsAndEscapes(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM S WHERE class = 'O''Neil'")
	s := sel.Where.(*BinaryExpr).R.(*StringLit)
	if s.Value != "O'Neil" {
		t.Errorf("string = %q", s.Value)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	sel := mustSelect(t, `SELECT [ra] FROM [PhotoObjAll] WHERE "dec" < 10`)
	if sel.From[0].(*TableName).Name != "PhotoObjAll" {
		t.Error("bracketed table name")
	}
	sel = mustSelect(t, "SELECT `objid` FROM `Galaxies`")
	if sel.From[0].(*TableName).Name != "Galaxies" {
		t.Error("backticked table name")
	}
}

func TestComments(t *testing.T) {
	sel := mustSelect(t, `SELECT u -- trailing comment
	FROM T /* block
	comment */ WHERE u > 1`)
	if sel.Where == nil {
		t.Error("where lost after comments")
	}
}

func TestDottedTableNames(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM dbo.PhotoObjAll WHERE ra < 10")
	if sel.From[0].(*TableName).Name != "dbo.PhotoObjAll" {
		t.Errorf("name = %q", sel.From[0].(*TableName).Name)
	}
}

func TestColumnRefFromDotted(t *testing.T) {
	c := columnRefFromDotted("BESTDR9.dbo.PhotoObjAll.ra")
	if c.Table != "PhotoObjAll" || c.Name != "ra" {
		t.Errorf("ref = %+v", c)
	}
}

func TestCaseExpr(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN u > 1 THEN 'a' ELSE 'b' END FROM T")
	ce := sel.Select[0].Expr.(*CaseExpr)
	if len(ce.Whens) != 1 || ce.Else == nil {
		t.Fatalf("case = %+v", ce)
	}
	sel = mustSelect(t, "SELECT CASE u WHEN 1 THEN 'a' END FROM T")
	ce = sel.Select[0].Expr.(*CaseExpr)
	if ce.Operand == nil {
		t.Fatal("simple case operand missing")
	}
}

func TestIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE u IS NOT NULL")
	in := sel.Where.(*IsNullExpr)
	if !in.Not {
		t.Fatal("expected IS NOT NULL")
	}
}

func TestLike(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM DBObjects WHERE name LIKE 'Photo%'")
	lk := sel.Where.(*LikeExpr)
	if lk.Pattern.(*StringLit).Value != "Photo%" {
		t.Fatalf("like = %+v", lk)
	}
}

func TestLeftRightStringFunctions(t *testing.T) {
	sel := mustSelect(t, "SELECT LEFT(name, 3) FROM DBObjects WHERE RIGHT(name, 2) = 'll'")
	fc := sel.Select[0].Expr.(*FuncCall)
	if fc.Name != "LEFT" || len(fc.Args) != 2 {
		t.Fatalf("left fn = %+v", fc)
	}
}

func TestParams(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE u > @threshold")
	pr := sel.Where.(*BinaryExpr).R.(*ParamRef)
	if pr.Name != "@threshold" {
		t.Fatalf("param = %+v", pr)
	}
}

func TestDerivedTable(t *testing.T) {
	sel := mustSelect(t, "SELECT x.u FROM (SELECT u FROM T WHERE u > 1) AS x WHERE x.u < 5")
	st := sel.From[0].(*SubqueryTable)
	if st.Alias != "x" || st.Select.Where == nil {
		t.Fatalf("derived = %+v", st)
	}
}

func TestNonSelectClassified(t *testing.T) {
	for _, src := range []string{
		"CREATE TABLE t (a int)",
		"DECLARE @x int",
		"INSERT INTO t VALUES (1)",
		"DROP TABLE t",
	} {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if _, ok := st.(*OtherStatement); !ok {
			t.Errorf("%q: got %T", src, st)
		}
	}
}

func TestErrorCategories(t *testing.T) {
	cases := []struct {
		src string
		cat ErrorCategory
	}{
		{"SELECT * FROM dbo.fGetNearbyObjEq(185.0, -0.5, 1.0)", CatUDF},
		{"SELECT * FROM T WHERE", CatSyntax},
		{"SELECT * FROM", CatSyntax},
		{"SELECT u INTO mytable FROM T", CatUnsupported},
		{"FROM T SELECT *", CatSyntax},
		{"", CatSyntax},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%q: error type %T", c.src, err)
			continue
		}
		if pe.Category != c.cat {
			t.Errorf("%q: category = %v, want %v", c.src, pe.Category, c.cat)
		}
	}
}

func TestUnion(t *testing.T) {
	sel := mustSelect(t, "SELECT u FROM T WHERE u > 1 UNION SELECT v FROM S UNION ALL SELECT w FROM R")
	if len(sel.Unions) != 2 {
		t.Fatalf("unions = %d, want 2 (flattened)", len(sel.Unions))
	}
	if sel.Unions[0].All || !sel.Unions[1].All {
		t.Errorf("ALL flags = %v %v", sel.Unions[0].All, sel.Unions[1].All)
	}
	if sel.Unions[0].Select.From[0].(*TableName).Name != "S" {
		t.Errorf("first arm = %+v", sel.Unions[0].Select.From[0])
	}
	// Round trip.
	printed := FormatSelect(sel)
	sel2, err := ParseSelect(printed)
	if err != nil {
		t.Fatalf("re-parse %q: %v", printed, err)
	}
	if FormatSelect(sel2) != printed {
		t.Errorf("round trip unstable: %q vs %q", FormatSelect(sel2), printed)
	}
}

func TestUnionInSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE u IN (SELECT v FROM S UNION SELECT x FROM R)")
	in := sel.Where.(*InSubqueryExpr)
	if len(in.Sub.Unions) != 1 {
		t.Fatalf("subquery unions = %d", len(in.Sub.Unions))
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT 'unterminated FROM T",
		"SELECT [unterminated FROM T",
		"SELECT /* unterminated FROM T",
		"SELECT u FROM T WHERE u > 1 ? 2",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestTrailingSemicolons(t *testing.T) {
	if _, err := ParseSelect("SELECT u FROM T;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	if _, err := ParseSelect(";;SELECT u FROM T;;"); err != nil {
		t.Errorf("leading semicolons: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5",
		"SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5",
		"SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u",
		"SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 10",
		"SELECT * FROM T WHERE T.u > 5 AND EXISTS (SELECT * FROM S WHERE S.u = T.u AND S.v < 3)",
		"SELECT TOP 10 p.ra, p.dec FROM PhotoObjAll AS p WHERE p.ra <= 210 AND p.dec <= 10 ORDER BY p.ra DESC",
		"SELECT * FROM T WHERE u NOT IN (1, 2, 3)",
		"SELECT * FROM T WHERE NOT (T.u > 5 AND T.v <= 10)",
		"SELECT Galaxies.objid FROM Galaxies LIMIT 10",
		"SELECT * FROM T WHERE u BETWEEN 1 AND 8",
		"SELECT COUNT(*) FROM SpecObjAll WHERE class = 'star'",
		"SELECT * FROM T WHERE T.u = (SELECT S.u FROM S WHERE S.v = 12)",
	}
	for _, q := range queries {
		sel1, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		printed := FormatSelect(sel1)
		sel2, err := ParseSelect(printed)
		if err != nil {
			t.Fatalf("re-parse %q (printed from %q): %v", printed, q, err)
		}
		printed2 := FormatSelect(sel2)
		if printed != printed2 {
			t.Errorf("round-trip not stable:\n1: %s\n2: %s", printed, printed2)
		}
	}
}

func TestPositionsReported(t *testing.T) {
	_, err := Parse("SELECT u\nFROM T WHERE >")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
}

func TestTopVariants(t *testing.T) {
	sel := mustSelect(t, "SELECT TOP (25) u FROM T")
	if sel.Top == nil || *sel.Top != 25 || sel.TopPercent {
		t.Fatalf("top = %v percent=%v", sel.Top, sel.TopPercent)
	}
	sel = mustSelect(t, "SELECT TOP 10 PERCENT u FROM T")
	if sel.Top == nil || *sel.Top != 10 || !sel.TopPercent {
		t.Fatalf("top percent = %v %v", sel.Top, sel.TopPercent)
	}
	printed := FormatSelect(sel)
	if !strings.Contains(printed, "TOP 10 PERCENT") {
		t.Errorf("printed = %q", printed)
	}
	if _, err := ParseSelect(printed); err != nil {
		t.Errorf("round trip: %v", err)
	}
}
