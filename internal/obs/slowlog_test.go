package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSlowLogRingOverwrite(t *testing.T) {
	l := NewSlowLog(4, 0)
	for i := 1; i <= 6; i++ {
		l.Record("query", uint64(i), time.Duration(i)*time.Millisecond)
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	top := l.TopK(0)
	// Entries 1 and 2 were overwritten; slowest-first ordering.
	wantFP := []uint64{6, 5, 4, 3}
	for i, e := range top {
		if e.Fingerprint != wantFP[i] {
			t.Errorf("top[%d].Fingerprint = %d, want %d", i, e.Fingerprint, wantFP[i])
		}
	}
}

func TestSlowLogTopK(t *testing.T) {
	l := NewSlowLog(16, 0)
	for _, ms := range []int{5, 50, 1, 20} {
		l.Record("extract", uint64(ms), time.Duration(ms)*time.Millisecond)
	}
	top := l.TopK(2)
	if len(top) != 2 || top[0].Fingerprint != 50 || top[1].Fingerprint != 20 {
		t.Errorf("TopK(2) = %+v, want fingerprints 50, 20", top)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	l.Record("query", 1, 5*time.Millisecond)
	l.Record("query", 2, 15*time.Millisecond)
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1 (below-threshold entry recorded)", l.Len())
	}
	if top := l.TopK(0); top[0].Fingerprint != 2 {
		t.Errorf("kept fingerprint %d, want 2", top[0].Fingerprint)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(32, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record("query", uint64(w), time.Microsecond)
				if i%50 == 0 {
					_ = l.TopK(5)
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 32 {
		t.Errorf("len = %d, want full ring 32", l.Len())
	}
}
