package sqlparser_test

import (
	"testing"

	"repro/internal/sqlparser"
)

// FuzzParse checks three robustness invariants over arbitrary input:
// the parser never panics, a successful parse round-trips through the
// printer, and the round-tripped statement prints identically again
// (idempotence). The seed corpus covers every construct the grammar
// supports; `go test` runs the corpus, `go test -fuzz=FuzzParse` explores.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5",
		"SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5",
		"SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u",
		"SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 10",
		"SELECT * FROM T WHERE T.u > 5 AND EXISTS (SELECT * FROM S WHERE S.u = T.u)",
		"SELECT TOP 10 p.ra FROM PhotoObjAll AS p ORDER BY p.ra DESC",
		"SELECT Galaxies.objid FROM Galaxies LIMIT 10",
		"SELECT * FROM T WHERE u NOT IN (1, 2, 3)",
		"SELECT * FROM T WHERE u BETWEEN 1 AND 8",
		"SELECT u FROM T UNION ALL SELECT v FROM S",
		"SELECT CASE WHEN u > 1 THEN 'a' ELSE 'b' END FROM T",
		"SELECT * FROM T WHERE name LIKE 'Photo%' ESCAPE '!'",
		"SELECT * FROM T WHERE u IS NOT NULL",
		"SELECT x.u FROM (SELECT u FROM T) AS x",
		"SELECT [col name] FROM [My Table] WHERE \"q\" = 'it''s'",
		"SELECT * FROM dbo.SpecObjAll WHERE ra < 1.5e-3",
		"SELECT * FROM T WHERE u > @threshold",
		"SELECT * FROM T -- comment\nWHERE /* block */ u > 1",
		"CREATE TABLE t (a int)",
		"SELEC oops",
		"",
		"SELECT * FROM T WHERE u > ANY (SELECT v FROM S)",
		"SELECT COUNT(DISTINCT u) FROM T",
		"SELECT * FROM A NATURAL JOIN B CROSS JOIN C",
	}
	// Real workload shapes, one per ground-truth label: the 24 cluster
	// templates plus noise, erroneous, admin-DDL, MySQL-dialect, and the
	// pathological >35-predicate statements (shared via fingerprint_test.go).
	seeds = append(seeds, workloadSeeds()...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := sqlparser.Parse(src) // must not panic
		if err != nil {
			return
		}
		sel, ok := st.(*sqlparser.SelectStatement)
		if !ok {
			return
		}
		printed := sqlparser.FormatSelect(sel)
		st2, err := sqlparser.Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\ninput:   %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		sel2, ok := st2.(*sqlparser.SelectStatement)
		if !ok {
			t.Fatalf("printed form parsed as %T", st2)
		}
		printed2 := sqlparser.FormatSelect(sel2)
		if printed != printed2 {
			t.Fatalf("printer not idempotent:\n1: %q\n2: %q", printed, printed2)
		}
		// Lexer line/col sanity: every token position must be within input.
		toks, err := sqlparser.NewLexer(src).Tokens()
		if err == nil {
			for _, tok := range toks {
				if tok.Pos < 0 || tok.Pos > len(src) {
					t.Fatalf("token position %d out of range", tok.Pos)
				}
			}
		}
	})
}
