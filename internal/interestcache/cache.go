package interestcache

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/memdb"
	"repro/internal/obs"
	"repro/internal/sqlparser"
)

// Semantic-cache instruments: lookup and prefetch latency histograms in the
// Default registry, plus slow-query-log entries covering the full
// extraction+execution time of each Query, keyed by statement fingerprint
// (never raw SQL).
var (
	queryStage    = obs.NewStage("interestcache_query")
	lookupStage   = obs.NewStage("interestcache_lookup")
	prefetchStage = obs.NewStage("interestcache_prefetch")

	prefetchRegionsTotal = obs.NewCounter("skyaccess_interestcache_prefetch_regions_total",
		"regions prefetched across all Install calls")
)

// Config wires a Cache to its data source and extraction path.
type Config struct {
	// DB is the authoritative database: the prefetch source and the
	// fall-through execution target.
	DB *memdb.DB
	// Extractor maps statements to access areas. Share the miner's
	// extractor so cache decisions see the same schema and statistics.
	Extractor *extract.Extractor
	// Templates is the fingerprint → extraction-template cache. Share the
	// pipeline's instance so templates warmed by ingestion serve queries.
	Templates *extract.TemplateCache
	// Exec is applied identically to region-store and direct execution.
	Exec memdb.ExecOptions
	// Verify enables the correctness oracle: every cache-served result is
	// checked byte-for-byte against direct execution, and on mismatch the
	// direct result is returned and the failure counted. For tests and
	// the semcacheperf harness.
	Verify bool
}

// snapshot is one epoch's immutable region set. Queries load it once and use
// it throughout; Install publishes a fresh snapshot atomically, so a
// re-cluster never mixes regions of different generations in one lookup.
type snapshot struct {
	generation int64
	regions    []*Region
	index      *containmentIndex
}

// Cache is the semantic result cache. Zero value is not usable; construct
// with New.
type Cache struct {
	cfg  Config
	snap atomic.Pointer[snapshot]

	// shapes records, per statement fingerprint, whether the statement
	// shape is safe to serve from a restricted store (no HAVING anywhere,
	// no derived tables — see safeShape). The verdict is shape-level, so
	// it is shared by all statements with the fingerprint.
	shapes sync.Map // uint64 → bool

	hits          atomic.Int64
	misses        atomic.Int64
	bytesServed   atomic.Int64
	verifyChecked atomic.Int64
	verifyFailed  atomic.Int64
}

// New returns a cache with an empty region set (every query misses until the
// first Install).
func New(cfg Config) *Cache {
	c := &Cache{cfg: cfg}
	c.snap.Store(&snapshot{})
	return c
}

// Install prefetches the clusters' access areas from the configured database
// and atomically replaces the served region set. generation should be the
// mining epoch; it is echoed in Info so callers can assert which region set
// answered. Clusters with no relations or an unset box are skipped (they
// describe nothing prefetchable).
func (c *Cache) Install(generation int64, clusters []*aggregate.Summary) {
	sp := prefetchStage.Start()
	defer sp.End()
	snap := &snapshot{generation: generation}
	for _, cl := range clusters {
		if cl == nil || len(cl.Relations) == 0 || cl.Box == nil {
			continue
		}
		snap.regions = append(snap.regions, newRegion(c.cfg.DB, generation, cl))
	}
	prefetchRegionsTotal.Add(int64(len(snap.regions)))
	snap.index = buildIndex(snap.regions)
	c.snap.Store(snap)
}

// Info describes how a query was answered.
type Info struct {
	// Hit is true when the result came from a region store.
	Hit bool
	// RegionID is the serving region's cluster ID (hits only).
	RegionID int
	// Generation is the region-set generation consulted.
	Generation int64
	// Reason explains a miss: "no-regions", "fingerprint", "parse",
	// "shape", "uncacheable", "inexact", "empty-area", "no-region",
	// "store-error", "verify-failed".
	Reason string
}

// Query answers sql from a containing cached region when the containment
// rule proves it sound, falling through to direct execution otherwise. The
// result is identical to direct execution either way (enforced by the
// Verify oracle when enabled). Errors mirror direct execution: a statement
// that fails directly fails here with the same error.
func (c *Cache) Query(sql string) (*memdb.ResultSet, Info, error) {
	sp := queryStage.Start()
	t0 := time.Now()
	var fp uint64
	defer func() {
		sp.End()
		// The slow log covers the whole call — extraction through execution
		// on either the hit or the fall-through path — under the statement's
		// fingerprint (0 when the statement never fingerprinted).
		obs.DefaultSlowLog.Record("query", fp, time.Since(t0))
	}()
	snap := c.snap.Load()
	info := Info{Generation: snap.generation}
	if len(snap.regions) == 0 {
		return c.miss(sql, info, "no-regions")
	}
	lsp := lookupStage.Start()
	area, afp, reason := c.lookupArea(sql)
	lsp.End()
	fp = afp
	if reason != "" {
		return c.miss(sql, info, reason)
	}
	region := snap.index.lookup(area)
	if region == nil {
		return c.miss(sql, info, "no-region")
	}
	rs, err := region.store.ExecuteSQL(sql, c.cfg.Exec)
	if err != nil {
		// The store is a subset view; any store-side failure (row limit,
		// evaluation error) might not occur directly, so never surface it.
		return c.miss(sql, info, "store-error")
	}
	if c.cfg.Verify {
		c.verifyChecked.Add(1)
		direct, derr := c.cfg.DB.ExecuteSQL(sql, c.cfg.Exec)
		if derr != nil || string(EncodeResultSet(direct)) != string(EncodeResultSet(rs)) {
			c.verifyFailed.Add(1)
			info.Reason = "verify-failed"
			c.misses.Add(1)
			return direct, info, derr
		}
	}
	n := resultBytes(rs)
	region.hits.Add(1)
	region.bytesServed.Add(n)
	c.hits.Add(1)
	c.bytesServed.Add(n)
	info.Hit = true
	info.RegionID = region.ID
	return rs, info, nil
}

func (c *Cache) miss(sql string, info Info, reason string) (*memdb.ResultSet, Info, error) {
	info.Reason = reason
	c.misses.Add(1)
	rs, err := c.cfg.DB.ExecuteSQL(sql, c.cfg.Exec)
	return rs, info, err
}

// lookupArea resolves sql to an access area through the shared template
// cache: fingerprint → cached template → rebind, with a one-time slow path
// (parse + extract + template store) per statement shape. A non-empty reason
// means the statement cannot be cache-served. The statement fingerprint is
// returned either way (0 when fingerprinting itself failed) so the caller
// can label slow-log entries.
func (c *Cache) lookupArea(sql string) (*extract.AccessArea, uint64, string) {
	fp, lits, err := sqlparser.Fingerprint(sql)
	if err != nil || anyBadNum(lits) {
		return nil, fp, "fingerprint"
	}
	shapeV, shapeKnown := c.shapes.Load(fp)
	var area *extract.AccessArea
	if t, ok := c.cfg.Templates.Get(fp); ok && shapeKnown {
		if shapeV != true {
			return nil, fp, "shape"
		}
		a, _, ok := t.Rebind(c.cfg.Extractor, lits)
		if !ok {
			return nil, fp, "uncacheable"
		}
		area = a
	} else {
		stmt, perr := sqlparser.Parse(sql)
		if perr != nil {
			return nil, fp, "parse"
		}
		sel, ok := stmt.(*sqlparser.SelectStatement)
		if !ok {
			return nil, fp, "parse"
		}
		safe := safeShape(sel)
		c.shapes.Store(fp, safe)
		if t, ok := c.cfg.Templates.Get(fp); ok {
			if !safe {
				return nil, fp, "shape"
			}
			a, _, rok := t.Rebind(c.cfg.Extractor, lits)
			if !rok {
				return nil, fp, "uncacheable"
			}
			area = a
		} else {
			a, _, t, xerr := c.cfg.Extractor.ExtractTemplate(sel)
			if t != nil {
				c.cfg.Templates.Put(fp, t)
			}
			if xerr != nil || a == nil {
				return nil, fp, "uncacheable"
			}
			if !safe {
				return nil, fp, "shape"
			}
			area = a
		}
	}
	switch {
	case !area.Exact || area.Truncated:
		return nil, fp, "inexact"
	case area.IsEmpty():
		return nil, fp, "empty-area"
	case len(area.Relations) == 0:
		return nil, fp, "inexact"
	}
	return area, fp, ""
}

// safeShape reports whether a statement may be answered from a restricted
// row store when its access area is exact and contained in the store's
// region. Almost every construct is safe — the extraction's Exact flag
// already excludes approximated shapes, and row order is preserved by the
// store so TOP/ORDER BY/DISTINCT agree — with two exceptions the Exact flag
// does not see:
//
//   - HAVING with an aggregate comparison: extraction maps e.g.
//     "HAVING MAX(x) > c" to the row-level predicate "x > c", which bounds
//     the rows CONTRIBUTING the extreme but not every row of a qualifying
//     group; the group's other rows fall outside the area, so a restricted
//     store computes different aggregates. (The mapping is marked noCache,
//     not approximate, so Exact survives.)
//   - Derived tables "(SELECT ...) t": their inner projection feeds the
//     outer query rows whose provenance the area does not bound
//     conservatively in all compositions; rejected outright.
//
// The walk covers union arms, join trees, and every subquery position.
func safeShape(sel *sqlparser.SelectStatement) bool {
	if sel == nil {
		return true
	}
	if sel.Having != nil {
		return false
	}
	for _, te := range sel.From {
		if !safeTableExpr(te) {
			return false
		}
	}
	exprs := []sqlparser.Expr{sel.Where}
	for _, it := range sel.Select {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, sel.GroupBy...)
	for _, oi := range sel.OrderBy {
		exprs = append(exprs, oi.Expr)
	}
	for _, e := range exprs {
		if !safeExpr(e) {
			return false
		}
	}
	for _, arm := range sel.Unions {
		if !safeShape(arm.Select) {
			return false
		}
	}
	return true
}

func safeTableExpr(te sqlparser.TableExpr) bool {
	switch t := te.(type) {
	case *sqlparser.SubqueryTable:
		return false
	case *sqlparser.Join:
		return safeTableExpr(t.Left) && safeTableExpr(t.Right) && safeExpr(t.On)
	default:
		return true
	}
}

func safeExpr(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sqlparser.BinaryExpr:
		return safeExpr(x.L) && safeExpr(x.R)
	case *sqlparser.UnaryExpr:
		return safeExpr(x.X)
	case *sqlparser.BetweenExpr:
		return safeExpr(x.X) && safeExpr(x.Lo) && safeExpr(x.Hi)
	case *sqlparser.InListExpr:
		if !safeExpr(x.X) {
			return false
		}
		for _, it := range x.List {
			if !safeExpr(it) {
				return false
			}
		}
		return true
	case *sqlparser.InSubqueryExpr:
		return safeExpr(x.X) && safeShape(x.Sub)
	case *sqlparser.ExistsExpr:
		return safeShape(x.Sub)
	case *sqlparser.QuantifiedExpr:
		return safeExpr(x.X) && safeShape(x.Sub)
	case *sqlparser.ScalarSubquery:
		return safeShape(x.Sub)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			if !safeExpr(a) {
				return false
			}
		}
		return true
	case *sqlparser.LikeExpr:
		return safeExpr(x.X) && safeExpr(x.Pattern)
	case *sqlparser.IsNullExpr:
		return safeExpr(x.X)
	case *sqlparser.CaseExpr:
		if !safeExpr(x.Operand) || !safeExpr(x.Else) {
			return false
		}
		for _, w := range x.Whens {
			if !safeExpr(w.When) || !safeExpr(w.Then) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

func anyBadNum(lits []sqlparser.Literal) bool {
	for _, l := range lits {
		if l.BadNum {
			return true
		}
	}
	return false
}

// Metrics is a point-in-time counter snapshot.
type Metrics struct {
	Generation  int64           `json:"generation"`
	Regions     int             `json:"regions"`
	Hits        int64           `json:"hits"`
	Misses      int64           `json:"misses"`
	BytesServed int64           `json:"bytes_served"`
	VerifyChecked int64         `json:"verify_checked"`
	VerifyFailed  int64         `json:"verify_failed"`
	PerRegion   []RegionMetrics `json:"per_region"`
}

// RegionMetrics are the per-region serving counters of the CURRENT region
// set; counters reset naturally on Install because regions are rebuilt.
type RegionMetrics struct {
	ID          int   `json:"id"`
	Rows        int   `json:"rows"`
	Bytes       int64 `json:"bytes"`
	Hits        int64 `json:"hits"`
	BytesServed int64 `json:"bytes_served"`
}

// Metrics returns the current counters and per-region statistics.
func (c *Cache) Metrics() Metrics {
	snap := c.snap.Load()
	m := Metrics{
		Generation:    snap.generation,
		Regions:       len(snap.regions),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		BytesServed:   c.bytesServed.Load(),
		VerifyChecked: c.verifyChecked.Load(),
		VerifyFailed:  c.verifyFailed.Load(),
	}
	for _, r := range snap.regions {
		m.PerRegion = append(m.PerRegion, RegionMetrics{
			ID: r.ID, Rows: r.Rows, Bytes: r.Bytes,
			Hits: r.Hits(), BytesServed: r.BytesServed(),
		})
	}
	return m
}

// Generation returns the current region-set generation.
func (c *Cache) Generation() int64 { return c.snap.Load().generation }

// Regions returns the current region set (read-only).
func (c *Cache) Regions() []*Region { return c.snap.Load().regions }

// EncodeResultSet renders a result set into a canonical byte string: column
// names, then row-major cells, each value tagged by kind with numbers as
// IEEE-754 bits and strings length-prefixed. Two result sets are
// byte-identical under this encoding iff they have the same columns and the
// same rows in the same order — the oracle's definition of "identical".
func EncodeResultSet(rs *memdb.ResultSet) []byte {
	if rs == nil {
		return nil
	}
	var buf []byte
	appendStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf = append(buf, n[:]...)
		buf = append(buf, s...)
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(rs.Columns)))
	buf = append(buf, n[:]...)
	for _, col := range rs.Columns {
		appendStr(col)
	}
	for _, row := range rs.Rows {
		for _, v := range row {
			buf = append(buf, byte(v.Kind))
			switch v.Kind {
			case memdb.Num:
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Num))
				buf = append(buf, b[:]...)
			case memdb.Str:
				appendStr(v.Str)
			}
		}
		buf = append(buf, '\n')
	}
	return buf
}

func resultBytes(rs *memdb.ResultSet) int64 {
	if rs == nil {
		return 0
	}
	var n int64
	for _, row := range rs.Rows {
		for _, v := range row {
			n++ // kind tag
			switch v.Kind {
			case memdb.Num:
				n += 8
			case memdb.Str:
				n += int64(len(v.Str))
			}
		}
	}
	return n
}
