package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatStatement renders a statement back to SQL text. The output is
// canonical (keywords upper-cased, single spaces) and re-parses to an
// equivalent AST; round-tripping is exercised by tests.
func FormatStatement(st Statement) string {
	switch s := st.(type) {
	case *SelectStatement:
		return FormatSelect(s)
	case *OtherStatement:
		return s.Kind + " ..."
	default:
		return fmt.Sprintf("<%T>", st)
	}
}

// FormatSelect renders a SELECT statement.
func FormatSelect(s *SelectStatement) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Top != nil {
		if s.TopPercent {
			fmt.Fprintf(&b, "TOP %s PERCENT ", fnumText(*s.Top))
		} else {
			fmt.Fprintf(&b, "TOP %s ", fnumText(*s.Top))
		}
	}
	for i, item := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(formatSelectItem(item))
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, te := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatTableExpr(te))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(FormatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatExpr(e))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(FormatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %s", fnumText(*s.Limit))
	}
	for _, arm := range s.Unions {
		b.WriteString(" UNION ")
		if arm.All {
			b.WriteString("ALL ")
		}
		b.WriteString(FormatSelect(arm.Select))
	}
	return b.String()
}

func formatSelectItem(item SelectItem) string {
	if item.Star {
		if item.StarTable != "" {
			return quoteDotted(item.StarTable) + ".*"
		}
		return "*"
	}
	out := FormatExpr(item.Expr)
	if item.Alias != "" {
		out += " AS " + quoteIdent(item.Alias)
	}
	return out
}

// FormatTableExpr renders a FROM-clause factor.
func FormatTableExpr(te TableExpr) string {
	switch t := te.(type) {
	case *TableName:
		if t.Alias != "" {
			return quoteDotted(t.Name) + " AS " + quoteIdent(t.Alias)
		}
		return quoteDotted(t.Name)
	case *Join:
		head := t.Type.String()
		if t.Natural {
			head = "NATURAL " + head
		}
		out := FormatTableExpr(t.Left) + " " + head + " " + FormatTableExpr(t.Right)
		if t.On != nil {
			out += " ON " + FormatExpr(t.On)
		}
		return out
	case *SubqueryTable:
		out := "(" + FormatSelect(t.Select) + ")"
		if t.Alias != "" {
			out += " AS " + quoteIdent(t.Alias)
		}
		return out
	default:
		return fmt.Sprintf("<%T>", te)
	}
}

// precedence for parenthesisation during printing; higher binds tighter.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "OR":
			return 1
		case "AND":
			return 2
		case "=", "<>", "<", "<=", ">", ">=":
			return 4
		case "+", "-", "||":
			return 5
		default: // *, /, %
			return 6
		}
	case *UnaryExpr:
		if x.Op == "NOT" {
			return 3
		}
		return 7
	case *BetweenExpr, *InListExpr, *InSubqueryExpr, *LikeExpr, *IsNullExpr, *QuantifiedExpr:
		return 4
	default:
		return 8
	}
}

func formatChild(child Expr, parentPrec int) string {
	s := FormatExpr(child)
	if exprPrec(child) < parentPrec {
		return "(" + s + ")"
	}
	return s
}

// FormatExpr renders an expression with minimal parentheses.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table == "" {
			return quoteIdent(x.Name)
		}
		return quoteDotted(x.Table) + "." + quoteIdent(x.Name)
	case *NumberLit:
		if x.Text != "" {
			return x.Text
		}
		return fnumText(x.Value)
	case *StringLit:
		return "'" + strings.ReplaceAll(x.Value, "'", "''") + "'"
	case *NullLit:
		return "NULL"
	case *ParamRef:
		return x.Name
	case *BinaryExpr:
		p := exprPrec(x)
		// Right child needs parens at equal precedence to preserve shape
		// for non-associative comparison chains; AND/OR are associative so
		// equal precedence on the right is fine too, but re-parsing either
		// way yields an equivalent tree.
		return formatChild(x.L, p) + " " + x.Op + " " + formatChild(x.R, p+boolToInt(!isAssociative(x.Op)))
	case *UnaryExpr:
		if x.Op == "NOT" {
			return "NOT " + formatChild(x.X, 4)
		}
		return x.Op + formatChild(x.X, 7)
	case *BetweenExpr:
		not := ""
		if x.Not {
			not = "NOT "
		}
		return formatChild(x.X, 5) + " " + not + "BETWEEN " + formatChild(x.Lo, 5) + " AND " + formatChild(x.Hi, 5)
	case *InListExpr:
		parts := make([]string, len(x.List))
		for i, e := range x.List {
			parts[i] = FormatExpr(e)
		}
		not := ""
		if x.Not {
			not = "NOT "
		}
		return formatChild(x.X, 5) + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
	case *InSubqueryExpr:
		not := ""
		if x.Not {
			not = "NOT "
		}
		return formatChild(x.X, 5) + " " + not + "IN (" + FormatSelect(x.Sub) + ")"
	case *ExistsExpr:
		not := ""
		if x.Not {
			not = "NOT "
		}
		return not + "EXISTS (" + FormatSelect(x.Sub) + ")"
	case *QuantifiedExpr:
		q := "ANY"
		if x.All {
			q = "ALL"
		}
		return formatChild(x.X, 5) + " " + x.Op + " " + q + " (" + FormatSelect(x.Sub) + ")"
	case *ScalarSubquery:
		return "(" + FormatSelect(x.Sub) + ")"
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = FormatExpr(a)
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return x.Name + "(" + d + strings.Join(parts, ", ") + ")"
	case *LikeExpr:
		not := ""
		if x.Not {
			not = "NOT "
		}
		return formatChild(x.X, 5) + " " + not + "LIKE " + FormatExpr(x.Pattern)
	case *IsNullExpr:
		not := ""
		if x.Not {
			not = "NOT "
		}
		return formatChild(x.X, 5) + " IS " + not + "NULL"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteString(" " + FormatExpr(x.Operand))
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN " + FormatExpr(w.When) + " THEN " + FormatExpr(w.Then))
		}
		if x.Else != nil {
			b.WriteString(" ELSE " + FormatExpr(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func isAssociative(op string) bool {
	switch op {
	case "AND", "OR", "+", "*", "||":
		return true
	}
	return false
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func fnumText(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quoteIdent brackets an identifier when it needs quoting (reserved word,
// spaces, punctuation) so printed statements re-parse.
func quoteIdent(s string) string {
	if !identNeedsQuoting(s) {
		return s
	}
	return "[" + s + "]"
}

func identNeedsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if reserved[strings.ToUpper(s)] {
		return true
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return true
		}
		if i > 0 && !isIdentPart(r) {
			return true
		}
	}
	return false
}

// quoteDotted quotes each segment of a dotted name independently.
func quoteDotted(name string) string {
	parts := strings.Split(name, ".")
	for i, p := range parts {
		parts[i] = quoteIdent(p)
	}
	return strings.Join(parts, ".")
}
