package interestcache

import (
	"sync"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/sqlparser"
)

// testDB builds a two-table database:
//
//	T(u, v):  u = 1..20, v = 10*u
//	S(u, w):  u = 1..10, w cycles 'a','b','c'
func testDB() *memdb.DB {
	db := memdb.New(nil)
	db.CreateTable("T", "u", "v")
	db.CreateTable("S", "u", "w")
	for i := 1; i <= 20; i++ {
		db.Insert("T", memdb.N(float64(i)), memdb.N(float64(10*i)))
	}
	labels := []string{"a", "b", "c"}
	for i := 1; i <= 10; i++ {
		db.Insert("S", memdb.N(float64(i)), memdb.S(labels[i%3]))
	}
	return db
}

func summary(id int, rels []string, dims map[string]interval.Interval, cat map[string][]string) *aggregate.Summary {
	box := interval.NewBox()
	for d, iv := range dims {
		box.Set(d, iv)
	}
	return &aggregate.Summary{ID: id, Relations: rels, Box: box, Categorical: cat}
}

func testCache(t *testing.T, verify bool, clusters ...*aggregate.Summary) *Cache {
	t.Helper()
	db := testDB()
	c := New(Config{
		DB:        db,
		Extractor: &extract.Extractor{},
		Templates: &extract.TemplateCache{},
		Verify:    verify,
	})
	c.Install(1, clusters)
	return c
}

func TestRegionPrefetch(t *testing.T) {
	db := testDB()
	r := newRegion(db, 7, summary(3, []string{"T"},
		map[string]interval.Interval{"T.u": interval.Closed(5, 8)}, nil))
	if r.ID != 3 || r.Generation != 7 {
		t.Fatalf("region identity: %+v", r)
	}
	if r.Rows != 4 {
		t.Fatalf("rows = %d, want 4", r.Rows)
	}
	// 4 rows × 2 numeric cells × (8 bytes + kind tag)
	if r.Bytes != 4*2*9 {
		t.Fatalf("bytes = %d, want %d", r.Bytes, 4*2*9)
	}
	// The store is a copy: mutating the source must not change it.
	db.Table("T").Rows[4][1] = memdb.N(-1)
	rs, err := r.store.ExecuteSQL("SELECT v FROM T", memdb.ExecOptions{})
	if err != nil || len(rs.Rows) != 4 || rs.Rows[0][0].Num != 50 {
		t.Fatalf("store rows = %v, %v", rs, err)
	}
}

func TestRegionContainsCategorical(t *testing.T) {
	db := testDB()
	r := newRegion(db, 1, summary(1, []string{"S"}, nil,
		map[string][]string{"S.w": {"a", "b"}}))
	ex := &extract.Extractor{}
	area := func(sql string) *extract.AccessArea {
		t.Helper()
		a, err := ex.ExtractSQL(sql)
		if err != nil {
			t.Fatalf("extract %q: %v", sql, err)
		}
		return a
	}
	if !r.Contains(area("SELECT u FROM S WHERE w = 'A'")) {
		t.Error("case-insensitive value subset must be contained")
	}
	if r.Contains(area("SELECT u FROM S WHERE w = 'c'")) {
		t.Error("value outside the region's list must not be contained")
	}
	if r.Contains(area("SELECT u FROM S WHERE u = 1")) {
		t.Error("query not pinning the categorical column must miss")
	}
}

func TestRegionContainsSkipsForeignDims(t *testing.T) {
	db := testDB()
	// Region over both tables, constraining each; a query reading only T
	// must ignore the S-side constraints entirely.
	r := newRegion(db, 1, summary(1, []string{"S", "T"},
		map[string]interval.Interval{
			"T.u": interval.Closed(0, 100),
			"S.u": interval.Closed(2, 3),
		},
		map[string][]string{"S.w": {"a"}}))
	ex := &extract.Extractor{}
	a, err := ex.ExtractSQL("SELECT v FROM T WHERE u BETWEEN 5 AND 6")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(a) {
		t.Error("dims on unreferenced relations must not block containment")
	}
}

func TestIndexLookupMatchesBruteForce(t *testing.T) {
	db := testDB()
	var regions []*Region
	mk := func(id int, lo, hi float64) {
		regions = append(regions, newRegion(db, 1, summary(id, []string{"T"},
			map[string]interval.Interval{"T.u": interval.Closed(lo, hi)}, nil)))
	}
	mk(1, 0, 21)  // whole table
	mk(2, 3, 9)   // tight
	mk(3, 5, 14)  // mid
	mk(4, 16, 19) // high band
	regions = append(regions, newRegion(db, 1, summary(5, []string{"S"}, nil, nil)))
	idx := buildIndex(regions)

	ex := &extract.Extractor{}
	for _, q := range []string{
		"SELECT v FROM T WHERE u >= 4 AND u <= 8",
		"SELECT v FROM T WHERE u = 17",
		"SELECT v FROM T WHERE u >= 6 AND u <= 13",
		"SELECT v FROM T",
		"SELECT u FROM S",
		"SELECT v FROM T WHERE u <= 2",
	} {
		a, err := ex.ExtractSQL(q)
		if err != nil {
			t.Fatalf("extract %q: %v", q, err)
		}
		var want *Region
		for _, r := range regions {
			if r.Contains(a) && (want == nil || r.Rows < want.Rows ||
				(r.Rows == want.Rows && r.ID < want.ID)) {
				want = r
			}
		}
		got := idx.lookup(newQueryShape(a))
		switch {
		case want == nil && got != nil:
			t.Errorf("%s: index found region %d, brute force none", q, got.ID)
		case want != nil && got == nil:
			t.Errorf("%s: index found nothing, brute force region %d", q, want.ID)
		case want != nil && got.ID != want.ID:
			t.Errorf("%s: index picked %d, want %d", q, got.ID, want.ID)
		}
	}
}

func TestQueryHitAndMiss(t *testing.T) {
	c := testCache(t, true, summary(1, []string{"T"},
		map[string]interval.Interval{"T.u": interval.Closed(3, 9)}, nil))
	rs, info, err := c.Query("SELECT v FROM T WHERE u >= 4 AND u <= 6")
	if err != nil || !info.Hit || info.RegionID != 1 || info.Generation != 1 {
		t.Fatalf("hit expected: info=%+v err=%v", info, err)
	}
	if len(rs.Rows) != 3 || rs.Rows[0][0].Num != 40 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// Outside the region: identical result via fall-through.
	rs, info, err = c.Query("SELECT v FROM T WHERE u >= 10 AND u <= 12")
	if err != nil || info.Hit || info.Reason != "no-region" {
		t.Fatalf("miss expected: info=%+v err=%v", info, err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("miss rows = %v", rs.Rows)
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.VerifyFailed != 0 || m.BytesServed == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if len(m.PerRegion) != 1 || m.PerRegion[0].Hits != 1 {
		t.Fatalf("per-region = %+v", m.PerRegion)
	}
}

func TestQueryTemplateReuse(t *testing.T) {
	c := testCache(t, true, summary(1, []string{"T"},
		map[string]interval.Interval{"T.u": interval.Closed(0, 100)}, nil))
	for i, q := range []string{
		"SELECT v FROM T WHERE u = 5",
		"SELECT v FROM T WHERE u = 9", // same shape, different literal
	} {
		if _, info, err := c.Query(q); err != nil || !info.Hit {
			t.Fatalf("query %d: info=%+v err=%v", i, info, err)
		}
	}
	if c.cfg.Templates.Len() != 1 {
		t.Fatalf("template cache len = %d, want 1", c.cfg.Templates.Len())
	}
	if m := c.Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}
}

func TestQueryRejectsUnsafeShapes(t *testing.T) {
	c := testCache(t, true, summary(1, []string{"T"},
		map[string]interval.Interval{"T.u": interval.Closed(0, 100)}, nil))
	// HAVING MAX maps to a row-level bound on contributing rows only; the
	// restricted store would change group membership. Must not hit.
	q := "SELECT u FROM T WHERE u > 0 GROUP BY u HAVING MAX(v) > 50"
	_, info, err := c.Query(q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if info.Hit {
		t.Fatal("HAVING query served from a restricted store")
	}
	// Second time through the template path: still rejected.
	if _, info, _ = c.Query(q); info.Hit {
		t.Fatal("HAVING query hit via template path")
	}
	if m := c.Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}
}

func TestSafeShape(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT u FROM T WHERE v > 3", true},
		{"SELECT u, COUNT(*) FROM T GROUP BY u", true},
		{"SELECT u FROM T GROUP BY u HAVING COUNT(*) > 2", false},
		{"SELECT u FROM T UNION SELECT u FROM S GROUP BY u HAVING MAX(u) > 1", false},
		{"SELECT u FROM T WHERE u IN (SELECT u FROM S GROUP BY u HAVING COUNT(*) > 1)", false},
		{"SELECT u FROM T WHERE EXISTS (SELECT 1 FROM S WHERE S.u = T.u)", true},
		{"SELECT x.u FROM (SELECT u FROM T) x", false},
		{"SELECT u FROM T WHERE v = (SELECT MAX(v) FROM T)", true},
	}
	for _, cse := range cases {
		stmt, err := sqlparser.Parse(cse.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", cse.sql, err)
		}
		sel, ok := stmt.(*sqlparser.SelectStatement)
		if !ok {
			t.Fatalf("not a select: %q", cse.sql)
		}
		if got := safeShape(sel); got != cse.want {
			t.Errorf("safeShape(%q) = %v, want %v", cse.sql, got, cse.want)
		}
	}
}

func TestEncodeResultSetDistinguishes(t *testing.T) {
	a := &memdb.ResultSet{Columns: []string{"x"}, Rows: [][]memdb.Value{{memdb.N(1)}}}
	b := &memdb.ResultSet{Columns: []string{"x"}, Rows: [][]memdb.Value{{memdb.N(2)}}}
	c := &memdb.ResultSet{Columns: []string{"x"}, Rows: [][]memdb.Value{{memdb.S("1")}}}
	d := &memdb.ResultSet{Columns: []string{"x"}, Rows: [][]memdb.Value{{memdb.NullValue()}}}
	enc := map[string]bool{}
	for _, rs := range []*memdb.ResultSet{a, b, c, d} {
		enc[string(EncodeResultSet(rs))] = true
	}
	if len(enc) != 4 {
		t.Fatalf("encodings collide: %d distinct of 4", len(enc))
	}
	a2 := &memdb.ResultSet{Columns: []string{"x"}, Rows: [][]memdb.Value{{memdb.N(1)}}}
	if string(EncodeResultSet(a)) != string(EncodeResultSet(a2)) {
		t.Fatal("equal result sets must encode identically")
	}
}

// TestInstallAtomic hammers Query from several goroutines while the region
// set is re-installed concurrently. Run under -race (make racecheck). Each
// goroutine must observe (a) only generations that were actually installed,
// (b) non-decreasing generations (a swapped-out set never comes back), and
// (c) zero oracle failures — a retired region set never answers.
func TestInstallAtomic(t *testing.T) {
	db := testDB()
	c := New(Config{
		DB:        db,
		Extractor: &extract.Extractor{},
		Templates: &extract.TemplateCache{},
		Verify:    true,
	})
	setA := []*aggregate.Summary{summary(1, []string{"T"},
		map[string]interval.Interval{"T.u": interval.Closed(0, 100)}, nil)}
	setB := []*aggregate.Summary{summary(2, []string{"T"},
		map[string]interval.Interval{"T.u": interval.Closed(5, 8)}, nil)}
	c.Install(1, setA)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastGen := int64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, info, err := c.Query("SELECT v FROM T WHERE u >= 6 AND u <= 7")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if info.Generation < lastGen {
					t.Errorf("generation went backwards: %d after %d", info.Generation, lastGen)
					return
				}
				lastGen = info.Generation
				if info.Reason == "verify-failed" {
					t.Error("oracle failure during install churn")
					return
				}
			}
		}()
	}
	for gen := int64(2); gen <= 60; gen++ {
		if gen%2 == 0 {
			c.Install(gen, setB)
		} else {
			c.Install(gen, setA)
		}
	}
	close(stop)
	wg.Wait()
	if m := c.Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}
}
