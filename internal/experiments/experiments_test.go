package experiments

import (
	"math"
	"strings"
	"testing"
)

// One shared small env keeps the experiment smoke tests fast.
var testEnv = NewEnv(2500, 42)

func TestRunTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := testEnv.RunTable1()
	if res.Matched < 20 {
		t.Errorf("matched = %d/24, want >= 20 at small scale", res.Matched)
	}
	if !strings.Contains(res.Report, "recovered") {
		t.Error("report incomplete")
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	for _, which := range []byte{'a', 'b', 'c'} {
		fig := testEnv.RunFigure1(which)
		if len(fig.Access) == 0 {
			t.Errorf("figure 1(%c): no access boxes", which)
		}
		if !strings.Contains(fig.Report, "legend") {
			t.Errorf("figure 1(%c): ASCII rendering missing", which)
		}
	}
}

func TestRunCoverageSmoke(t *testing.T) {
	res := testEnv.RunCoverage()
	if c := res.Stats.Coverage(); c < 0.98 || c >= 1 {
		t.Errorf("coverage = %v", c)
	}
}

func TestRunOLAPClusExactSmoke(t *testing.T) {
	res := testEnv.RunOLAPClusExact()
	if res.OursClusters != 1 {
		t.Errorf("our clusters = %d, want 1", res.OursClusters)
	}
	if res.ExactClusters < res.Distinct/2 || res.Distinct < 50 {
		t.Errorf("exact = %d over %d distinct", res.ExactClusters, res.Distinct)
	}
}

func TestRunOLAPClusRawSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := testEnv.RunOLAPClusRaw()
	if len(res.Broken) < 4 {
		t.Errorf("broken = %v, want most candidates broken", res.Broken)
	}
}

func TestRunEfficiencySmoke(t *testing.T) {
	res := testEnv.RunEfficiency()
	if res.Throughput < 500 {
		t.Errorf("throughput = %v q/s", res.Throughput)
	}
	if res.Stats.CNF.Max <= 0 {
		t.Error("stage stats missing")
	}
}

func TestRunRequerySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: executes every query")
	}
	small := NewEnv(600, 42)
	res := small.RunRequery()
	if res.Speedup < 2 {
		t.Errorf("speedup = %v, requery should be much slower", res.Speedup)
	}
	if res.EmptyResults == 0 {
		t.Error("expected empty-result queries")
	}
	if res.RequeryCount >= res.ExtractedCount {
		t.Errorf("requery processed %d >= extraction %d", res.RequeryCount, res.ExtractedCount)
	}
}

func TestRunAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := testEnv.RunAblation()
	if res.EndpointMatched <= res.LiteralMatched {
		t.Errorf("endpoint %d should beat literal %d", res.EndpointMatched, res.LiteralMatched)
	}
}

func TestRunAblationSigmaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := testEnv.RunAblationSigma()
	if res.TrimmedWidth <= 0 {
		t.Fatalf("trimmed width = %v", res.TrimmedWidth)
	}
	if res.UntrimmedWidth < res.TrimmedWidth {
		t.Errorf("untrimmed %v < trimmed %v", res.UntrimmedWidth, res.TrimmedWidth)
	}
	if math.IsNaN(res.TrimmedWidth / res.WindowWidth) {
		t.Error("window width NaN")
	}
}

func TestParseSanity(t *testing.T) {
	if err := ParseSanity(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDensitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := testEnv.RunDensity()
	if len(res.Contrasts) < 15 {
		t.Fatalf("contrasts for %d clusters, want most of 24", len(res.Contrasts))
	}
	// Most recovered clusters are much denser than their surroundings.
	dense := 0
	for _, c := range res.Contrasts {
		if c > 2 || math.IsInf(c, 1) {
			dense++
		}
	}
	if dense < len(res.Contrasts)/2 {
		t.Errorf("only %d of %d clusters denser than shell", dense, len(res.Contrasts))
	}
}

func TestRunScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	res := testEnv.RunScaling()
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].DistinctAreas <= res.Points[i-1].DistinctAreas {
			t.Errorf("distinct areas not growing: %+v", res.Points)
		}
	}
}
