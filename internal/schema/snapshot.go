package schema

import (
	"sort"
	"strconv"

	"repro/internal/interval"
)

// Generation returns a counter that increments on every EFFECTIVE registry
// mutation: a seed call, a numeric observation that grew (or created) an
// access hull, or a categorical observation that added a new value. Reads
// and no-op observations leave it unchanged, so a stable generation across
// two instants proves every access(a)/content(a) answer — and therefore
// every distance profile compiled from them — is identical at both. The
// epoch-based incremental miner uses it to decide whether cached
// cross-epoch distances are still valid.
func (s *Stats) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// IntervalSnapshot is the JSON form of an interval. Endpoints are encoded
// as strings because ±Inf (unbounded columns are common) is not
// representable in JSON numbers; strconv round-trips float64 exactly.
type IntervalSnapshot struct {
	Lo     string `json:"lo"`
	Hi     string `json:"hi"`
	LoOpen bool   `json:"lo_open,omitempty"`
	HiOpen bool   `json:"hi_open,omitempty"`
}

func snapInterval(iv interval.Interval) IntervalSnapshot {
	return IntervalSnapshot{
		Lo:     strconv.FormatFloat(iv.Lo, 'g', -1, 64),
		Hi:     strconv.FormatFloat(iv.Hi, 'g', -1, 64),
		LoOpen: iv.LoOpen,
		HiOpen: iv.HiOpen,
	}
}

func (s IntervalSnapshot) interval() interval.Interval {
	lo, _ := strconv.ParseFloat(s.Lo, 64)
	hi, _ := strconv.ParseFloat(s.Hi, 64)
	return interval.Interval{Lo: lo, Hi: hi, LoOpen: s.LoOpen, HiOpen: s.HiOpen}
}

// NumericSnapshot is the serialisable state of one numeric column.
type NumericSnapshot struct {
	Content IntervalSnapshot `json:"content"`
	Access  IntervalSnapshot `json:"access"`
}

// CategoricalSnapshot is the serialisable state of one categorical column.
type CategoricalSnapshot struct {
	Content []string `json:"content"`
	Access  []string `json:"access"`
}

// StatsSnapshot is the serialisable access(a)/content(a) registry, written
// into service snapshots so a restarted server reproduces the exact
// distance profiles of the one that shut down (re-extracting only the
// representative statement per area would under-grow access(a) otherwise).
type StatsSnapshot struct {
	Numeric     map[string]NumericSnapshot     `json:"numeric,omitempty"`
	Categorical map[string]CategoricalSnapshot `json:"categorical,omitempty"`
}

// Snapshot exports the registry state.
func (s *Stats) Snapshot() *StatsSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := &StatsSnapshot{
		Numeric:     make(map[string]NumericSnapshot, len(s.numeric)),
		Categorical: make(map[string]CategoricalSnapshot, len(s.categorical)),
	}
	for name, ns := range s.numeric {
		out.Numeric[name] = NumericSnapshot{Content: snapInterval(ns.content), Access: snapInterval(ns.access)}
	}
	for name, cs := range s.categorical {
		out.Categorical[name] = CategoricalSnapshot{Content: setSlice(cs.content), Access: setSlice(cs.access)}
	}
	return out
}

// RestoreSnapshot replaces the registry contents with a previously exported
// state and bumps the generation.
func (s *Stats) RestoreSnapshot(snap *StatsSnapshot) {
	if snap == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numeric = make(map[string]*numericStat, len(snap.Numeric))
	for name, ns := range snap.Numeric {
		s.numeric[name] = &numericStat{content: ns.Content.interval(), access: ns.Access.interval()}
	}
	s.categorical = make(map[string]*categoricalStat, len(snap.Categorical))
	for name, cs := range snap.Categorical {
		s.categorical[name] = &categoricalStat{content: sliceSet(cs.Content), access: sliceSet(cs.Access)}
	}
	s.gen++
}

func setSlice(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func sliceSet(vals []string) map[string]struct{} {
	m := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		m[v] = struct{}{}
	}
	return m
}
