package dbscan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// euclid1D builds a distance function over 1-D points.
func euclid1D(pts []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
}

func TestTwoBlobsAndNoise(t *testing.T) {
	// Blob A around 0, blob B around 100, one outlier at 50.
	var pts []float64
	for i := 0; i < 20; i++ {
		pts = append(pts, float64(i)*0.1)     // 0.0 .. 1.9
		pts = append(pts, 100+float64(i)*0.1) // 100 .. 101.9
	}
	pts = append(pts, 50)
	res := Cluster(len(pts), euclid1D(pts), Config{Eps: 0.5, MinPts: 4})
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	if res.Labels[len(pts)-1] != Noise {
		t.Errorf("outlier label = %d, want noise", res.Labels[len(pts)-1])
	}
	if res.NoiseCount() != 1 {
		t.Errorf("noise = %d, want 1", res.NoiseCount())
	}
	// All of blob A in one cluster.
	la := res.Labels[0]
	for i := 0; i < len(pts)-1; i += 2 {
		if res.Labels[i] != la {
			t.Fatalf("blob A split: label[%d] = %d", i, res.Labels[i])
		}
	}
}

func TestDensityChaining(t *testing.T) {
	// Points spaced 1 apart chain into a single cluster with eps = 1.5 even
	// though endpoints are far apart — the Cluster-1 mechanism.
	pts := make([]float64, 50)
	for i := range pts {
		pts[i] = float64(i)
	}
	res := Cluster(len(pts), euclid1D(pts), Config{Eps: 1.5, MinPts: 3})
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	if res.NoiseCount() != 0 {
		t.Errorf("noise = %d", res.NoiseCount())
	}
}

func TestAllNoise(t *testing.T) {
	pts := []float64{0, 10, 20, 30}
	res := Cluster(len(pts), euclid1D(pts), Config{Eps: 1, MinPts: 2})
	if res.NumClusters != 0 || res.NoiseCount() != 4 {
		t.Errorf("res = %+v", res)
	}
}

func TestSinglePointMinPtsOne(t *testing.T) {
	res := Cluster(1, func(i, j int) float64 { return 0 }, Config{Eps: 1, MinPts: 1})
	if res.NumClusters != 1 || res.Labels[0] != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestEmptyInput(t *testing.T) {
	res := Cluster(0, nil, Config{Eps: 1, MinPts: 1})
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestBorderPointAdopted(t *testing.T) {
	// Core points at 0, 0.1, 0.2 (MinPts 3, eps 0.30001); border point at
	// 0.5 is within eps of the core at 0.2 but has only 2 neighbours.
	pts := []float64{0, 0.1, 0.2, 0.5}
	res := Cluster(len(pts), euclid1D(pts), Config{Eps: 0.30001, MinPts: 3})
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[3] != 0 {
		t.Errorf("border label = %d, want 0", res.Labels[3])
	}
}

func TestClusterIndices(t *testing.T) {
	pts := []float64{0, 0.1, 0.2, 100, 100.1, 100.2}
	res := Cluster(len(pts), euclid1D(pts), Config{Eps: 0.5, MinPts: 2})
	idx := res.ClusterIndices()
	if len(idx) != 2 || len(idx[0]) != 3 || len(idx[1]) != 3 {
		t.Errorf("indices = %v", idx)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := make([]float64, 5000)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	serial := Cluster(len(pts), euclid1D(pts), Config{Eps: 0.3, MinPts: 4, Workers: 1})
	parallel := Cluster(len(pts), euclid1D(pts), Config{Eps: 0.3, MinPts: 4, Workers: 8})
	if serial.NumClusters != parallel.NumClusters {
		t.Fatalf("cluster counts differ: %d vs %d", serial.NumClusters, parallel.NumClusters)
	}
	for i := range serial.Labels {
		if (serial.Labels[i] == Noise) != (parallel.Labels[i] == Noise) {
			t.Fatalf("noise status differs at %d", i)
		}
	}
}

// Property: every labelled point is within eps of some other member of its
// cluster (connectivity at the sample level), and cluster ids are compact.
func TestPropClusterConnectivityAndCompactness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(120)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 20
		}
		eps := 0.2 + r.Float64()
		minPts := 2 + r.Intn(4)
		res := Cluster(n, euclid1D(pts), Config{Eps: eps, MinPts: minPts})
		seenID := make(map[int]bool)
		for i, l := range res.Labels {
			if l == unclassified {
				t.Logf("point %d left unclassified", i)
				return false
			}
			if l >= res.NumClusters {
				return false
			}
			if l < 0 {
				continue
			}
			seenID[l] = true
			// Connectivity: some same-cluster point within eps.
			if clusterSize(res, l) > 1 {
				ok := false
				for j, lj := range res.Labels {
					if j != i && lj == l && math.Abs(pts[i]-pts[j]) <= eps {
						ok = true
						break
					}
				}
				if !ok {
					t.Logf("point %d disconnected from cluster %d", i, l)
					return false
				}
			}
		}
		return len(seenID) == res.NumClusters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func clusterSize(r *Result, id int) int {
	n := 0
	for _, l := range r.Labels {
		if l == id {
			n++
		}
	}
	return n
}

// Property: clusters have at least MinPts members... not guaranteed for
// border-sharing, but every cluster contains at least one core point whose
// eps-neighbourhood has >= MinPts members.
func TestPropEveryClusterHasCore(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(100)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 10
		}
		eps, minPts := 0.5, 3
		res := Cluster(n, euclid1D(pts), Config{Eps: eps, MinPts: minPts})
		for id := 0; id < res.NumClusters; id++ {
			hasCore := false
			for i, l := range res.Labels {
				if l != id {
					continue
				}
				count := 0
				for j := range pts {
					if j == i || math.Abs(pts[i]-pts[j]) <= eps {
						count++
					}
				}
				if count >= minPts {
					hasCore = true
					break
				}
			}
			if !hasCore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestWeightedCorePoints(t *testing.T) {
	// Two points 0.1 apart, one carrying weight 10: with MinPts 5 the pair
	// is a cluster only because of the weight.
	pts := []float64{0, 0.1, 50}
	res := Cluster(len(pts), euclid1D(pts), Config{Eps: 0.5, MinPts: 5, Weights: []int{10, 1, 1}})
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[0] != 0 || res.Labels[1] != 0 {
		t.Errorf("labels = %v", res.Labels)
	}
	if res.Labels[2] != Noise {
		t.Errorf("far point label = %d", res.Labels[2])
	}
	// Without weights the same points are all noise.
	res = Cluster(len(pts), euclid1D(pts), Config{Eps: 0.5, MinPts: 5})
	if res.NumClusters != 0 {
		t.Errorf("unweighted clusters = %d", res.NumClusters)
	}
}

func TestKDistances(t *testing.T) {
	pts := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	kd := KDistances(len(pts), euclid1D(pts), 2)
	if len(kd) != 6 {
		t.Fatalf("kd = %v", kd)
	}
	// Sorted descending; blob edges have 2-NN 0.2, blob centres 0.1.
	want := []float64{0.2, 0.2, 0.2, 0.2, 0.1, 0.1}
	for i, d := range kd {
		if math.Abs(d-want[i]) > 1e-9 {
			t.Errorf("kd[%d] = %v, want %v", i, d, want[i])
		}
	}
	// With k exceeding the blob size, distances jump to the other blob.
	kd = KDistances(len(pts), euclid1D(pts), 3)
	if kd[0] < 9 {
		t.Errorf("3-NN distances should cross blobs: %v", kd)
	}
}

func TestSuggestEps(t *testing.T) {
	// A curve with an obvious knee: plateau at 5, drop to 0.2.
	curve := []float64{5, 5, 5, 0.2, 0.19, 0.18, 0.17}
	eps := SuggestEps(curve)
	if eps > 5 || eps < 0.1 {
		t.Errorf("eps = %v", eps)
	}
	if SuggestEps(nil) != 0 {
		t.Error("empty curve should give 0")
	}
	if SuggestEps([]float64{1}) != 1 {
		t.Error("single point curve")
	}
}

func TestSuggestEpsUniformWorkload(t *testing.T) {
	// Uniformly random points give a near-linear k-distance curve with no
	// knee. The old heuristic returned the drop-winner nearest the head —
	// effectively the LARGEST k-distance, merging everything into one
	// cluster. The fallback must pick from the small end of the curve.
	r := rand.New(rand.NewSource(21))
	pts := make([]float64, 400)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	kd := KDistances(len(pts), euclid1D(pts), 4)
	eps := SuggestEps(kd)
	if eps <= 0 {
		t.Fatalf("eps = %v", eps)
	}
	median := kd[len(kd)/2]
	if eps > median {
		t.Errorf("eps = %v above curve median %v (degenerate near-max pick, curve head %v)", eps, median, kd[0])
	}
}

func TestSuggestEpsFlatCurve(t *testing.T) {
	flat := []float64{2, 2, 2, 2, 2, 2}
	if eps := SuggestEps(flat); eps != 2 {
		t.Errorf("flat curve eps = %v, want 2", eps)
	}
	linear := make([]float64, 100)
	for i := range linear {
		linear[i] = 100 - float64(i)
	}
	eps := SuggestEps(linear)
	if eps >= linear[len(linear)/2] {
		t.Errorf("linear curve eps = %v, want small quantile (≤ median %v)", eps, linear[len(linear)/2])
	}
}

// TestClusterWithPivotsNearMetricSlack pins the slack margin down with a
// hand-built quasi-metric: d(1,2) ≤ eps while |d(0,1) − d(0,2)| = 2·eps,
// a triangle-inequality violation of the kind the min-matching d_conj
// produces. Slackless LAESA pruning drops the true neighbour and shatters
// the cluster; ClusterWithPivots's PivotSlackFactor margin must keep it.
func TestClusterWithPivotsNearMetricSlack(t *testing.T) {
	mat := [][]float64{
		{0, 5.0, 7.0, 5.5},
		{5.0, 0, 0.5, 0.5},
		{7.0, 0.5, 0, 0.5},
		{5.5, 0.5, 0.5, 0},
	}
	dist := func(i, j int) float64 { return mat[i][j] }
	cfg := Config{Eps: 1.0, MinPts: 3}

	// The slackless index really does misprune: point 2 is within eps of 1
	// but the pivot-0 gap |5.0 − 7.0| exceeds eps.
	ix := NewPivotIndex(len(mat), dist, 2)
	for _, j := range ix.Region(1, cfg.Eps, len(mat)) {
		if j == 2 {
			t.Fatal("fixture no longer triggers a false prune; rebuild it")
		}
	}

	brute := Cluster(len(mat), dist, cfg)
	pivoted := ClusterWithPivots(len(mat), dist, cfg, 2)
	if brute.NumClusters != 1 {
		t.Fatalf("fixture should form one cluster brute-force, got %d", brute.NumClusters)
	}
	for i := range brute.Labels {
		if brute.Labels[i] != pivoted.Labels[i] {
			t.Fatalf("label %d: brute %d vs pivoted %d (slack margin lost a near-metric neighbour)", i, brute.Labels[i], pivoted.Labels[i])
		}
	}
}

func TestPivotsMatchExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([]float64, 3000)
	for i := range pts {
		pts[i] = r.Float64() * 50
	}
	cfg := Config{Eps: 0.2, MinPts: 4}
	plain := Cluster(len(pts), euclid1D(pts), cfg)
	pivoted := ClusterWithPivots(len(pts), euclid1D(pts), cfg, 6)
	if plain.NumClusters != pivoted.NumClusters {
		t.Fatalf("cluster counts: %d vs %d", plain.NumClusters, pivoted.NumClusters)
	}
	for i := range plain.Labels {
		if (plain.Labels[i] == Noise) != (pivoted.Labels[i] == Noise) {
			t.Fatalf("noise status differs at %d", i)
		}
	}
}

func TestPivotRegionEqualsScan(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := make([]float64, 500)
	for i := range pts {
		pts[i] = r.Float64() * 10
	}
	ix := NewPivotIndex(len(pts), euclid1D(pts), 4)
	for q := 0; q < 50; q++ {
		got := ix.Region(q, 0.3, len(pts))
		var want []int
		for j := range pts {
			if j == q || math.Abs(pts[q]-pts[j]) <= 0.3 {
				want = append(want, j)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: region %d vs %d", q, len(got), len(want))
		}
	}
}

func TestPivotWorkersMatchSerial(t *testing.T) {
	// cfg.Workers must drive both index construction and the pruned region
	// scans; labels must be identical to the single-worker run (both scan
	// candidates in ascending order).
	r := rand.New(rand.NewSource(13))
	pts := make([]float64, 4000)
	for i := range pts {
		pts[i] = r.Float64() * 60
	}
	serial := ClusterWithPivots(len(pts), euclid1D(pts), Config{Eps: 0.2, MinPts: 4, Workers: 1}, 6)
	parallel := ClusterWithPivots(len(pts), euclid1D(pts), Config{Eps: 0.2, MinPts: 4, Workers: 8}, 6)
	if serial.NumClusters != parallel.NumClusters {
		t.Fatalf("cluster counts: %d vs %d", serial.NumClusters, parallel.NumClusters)
	}
	for i := range serial.Labels {
		if serial.Labels[i] != parallel.Labels[i] {
			t.Fatalf("label %d: %d vs %d", i, serial.Labels[i], parallel.Labels[i])
		}
	}
}

func TestPivotRegionParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	pts := make([]float64, 3000)
	for i := range pts {
		pts[i] = r.Float64() * 30
	}
	serialIx := NewPivotIndex(len(pts), euclid1D(pts), 5)
	parallelIx := NewPivotIndexParallel(len(pts), euclid1D(pts), 5, 8)
	for q := 0; q < 40; q++ {
		want := serialIx.Region(q, 0.25, len(pts))
		got := parallelIx.RegionParallel(q, 0.25, len(pts), 8)
		if len(got) != len(want) {
			t.Fatalf("q=%d: region sizes %d vs %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%d: region[%d] = %d vs %d (order must be ascending)", q, i, got[i], want[i])
			}
		}
	}
}

func TestPivotsEmptyInput(t *testing.T) {
	res := ClusterWithPivots(0, nil, Config{Eps: 1, MinPts: 1}, 4)
	if res.NumClusters != 0 {
		t.Errorf("res = %+v", res)
	}
}

// TestKDistancesBoundary pins the clamping behaviour of KDistances: k is
// clamped into [1, n-1], and degenerate inputs (n = 0, n = 1, k = 0,
// k >= n) return without panicking.
func TestKDistancesBoundary(t *testing.T) {
	pts := []float64{0, 1, 2, 3}
	d := euclid1D(pts)

	if kd := KDistances(0, nil, 4); kd != nil {
		t.Errorf("n=0: kd = %v, want nil", kd)
	}
	if kd := KDistances(1, d, 4); kd != nil {
		t.Errorf("n=1: kd = %v, want nil", kd)
	}
	// k = 0 clamps up to 1 (nearest neighbour).
	kd0 := KDistances(len(pts), d, 0)
	kd1 := KDistances(len(pts), d, 1)
	if len(kd0) != len(pts) {
		t.Fatalf("k=0: len = %d, want %d", len(kd0), len(pts))
	}
	for i := range kd0 {
		if kd0[i] != kd1[i] {
			t.Fatalf("k=0 should clamp to k=1: %v vs %v", kd0, kd1)
		}
	}
	// k = n and beyond clamp down to n-1 (the farthest other point).
	kdN := KDistances(len(pts), d, len(pts))
	kdMax := KDistances(len(pts), d, len(pts)-1)
	if len(kdN) != len(pts) {
		t.Fatalf("k=n: len = %d, want %d", len(kdN), len(pts))
	}
	for i := range kdN {
		if kdN[i] != kdMax[i] {
			t.Fatalf("k=n should clamp to k=n-1: %v vs %v", kdN, kdMax)
		}
	}
	if kdN[0] != 3 {
		t.Errorf("max (n-1)-NN distance = %v, want 3", kdN[0])
	}
}

// TestWorkerPoolReuse exercises the persistent per-Cluster worker pool
// directly: many region scans through one pool must match the serial scan,
// and the pool must shut down cleanly.
func TestWorkerPoolReuse(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	n := parallelCutoff + 500
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = r.Float64() * 40
	}
	d := euclid1D(pts)

	pool := newWorkerPool(8)
	defer pool.close()
	e := &engine{n: n, dist: d, cfg: Config{Eps: 0.3, MinPts: 4}, workers: 8, pool: pool}
	es := &engine{n: n, dist: d, cfg: Config{Eps: 0.3, MinPts: 4}, workers: 1}
	ix := NewPivotIndex(n, d, 5)
	for q := 0; q < 50; q++ {
		want := es.regionQuery(q)
		got := e.regionQuery(q)
		if len(got) != len(want) {
			t.Fatalf("q=%d: pooled region size %d, serial %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%d: pooled region[%d] = %d, serial %d", q, i, got[i], want[i])
			}
		}
		pw := ix.regionPooled(q, 0.3, n, 8, pool)
		ps := ix.Region(q, 0.3, n)
		if len(pw) != len(ps) {
			t.Fatalf("q=%d: pooled pivot region size %d, serial %d", q, len(pw), len(ps))
		}
		for i := range ps {
			if pw[i] != ps[i] {
				t.Fatalf("q=%d: pooled pivot region[%d] = %d, serial %d", q, i, pw[i], ps[i])
			}
		}
	}
}
