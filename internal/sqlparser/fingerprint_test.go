package sqlparser_test

import (
	"strings"
	"testing"

	"repro/internal/skyserver"
	"repro/internal/sqlparser"
)

func fp(t *testing.T, src string) (uint64, []sqlparser.Literal) {
	t.Helper()
	h, lits, err := sqlparser.Fingerprint(src)
	if err != nil {
		t.Fatalf("Fingerprint(%q): %v", src, err)
	}
	return h, lits
}

func sk(t *testing.T, src string) string {
	t.Helper()
	s, err := sqlparser.Skeleton(src)
	if err != nil {
		t.Fatalf("Skeleton(%q): %v", src, err)
	}
	return s
}

// Statements that are the same template with different constants must share a
// fingerprint, and their literal lists must line up slot by slot.
func TestFingerprintLiteralInvariance(t *testing.T) {
	pairs := [][2]string{
		{"SELECT * FROM T WHERE u > 1", "SELECT * FROM T WHERE u > 99"},
		{"SELECT * FROM T WHERE u > 1.5e-3", "SELECT * FROM T WHERE u > 42"},
		{"SELECT * FROM T WHERE name = 'abc'", "SELECT * FROM T WHERE name = 'x''y'"},
		{"SELECT * FROM T WHERE u BETWEEN 1 AND 8 AND name LIKE 'a%'",
			"SELECT * FROM T WHERE u BETWEEN 0 AND 1e4 AND name LIKE 'zz%'"},
		{"SELECT * FROM T WHERE u IN (1, 2, 3)", "SELECT * FROM T WHERE u IN (7, 8, 9)"},
	}
	for _, p := range pairs {
		h1, l1 := fp(t, p[0])
		h2, l2 := fp(t, p[1])
		if h1 != h2 {
			t.Errorf("fingerprints differ for same template:\n  %q\n  %q", p[0], p[1])
		}
		if len(l1) != len(l2) {
			t.Errorf("literal counts differ: %d vs %d for %q / %q", len(l1), len(l2), p[0], p[1])
		}
		for i := range l1 {
			if l1[i].Kind != l2[i].Kind {
				t.Errorf("slot %d kind differs: %v vs %v", i+1, l1[i].Kind, l2[i].Kind)
			}
		}
		if s1, s2 := sk(t, p[0]), sk(t, p[1]); s1 != s2 {
			t.Errorf("skeletons differ for equal fingerprints:\n  %q\n  %q", s1, s2)
		}
	}
}

// Keyword case must not split templates: the lexer canonicalises reserved
// words, so only identifier case distinguishes fingerprints.
func TestFingerprintKeywordCaseFolded(t *testing.T) {
	a := "select u from T where u > 1 and u < 8"
	b := "SELECT u FROM T WHERE u > 1 AND u < 8"
	ha, _ := fp(t, a)
	hb, _ := fp(t, b)
	if ha != hb {
		t.Errorf("keyword case split the fingerprint: %q vs %q", a, b)
	}
	if sk(t, a) != sk(t, b) {
		t.Errorf("keyword case split the skeleton")
	}
}

// Identifier case: the skeleton lower-cases identifiers (two bot runs over
// "photoobjall" and "PhotoObjAll" share a template string) but the
// fingerprint stays case-sensitive, because extraction's unknown-relation
// fallback preserves identifier case in canonical column names. The
// fingerprint must therefore be strictly finer than the skeleton.
func TestFingerprintIdentCaseSensitive(t *testing.T) {
	a := "SELECT * FROM T WHERE u > 1"
	b := "SELECT * FROM t WHERE U > 1"
	ha, _ := fp(t, a)
	hb, _ := fp(t, b)
	if ha == hb {
		t.Errorf("fingerprint folded identifier case: %q vs %q", a, b)
	}
	if sk(t, a) != sk(t, b) {
		t.Errorf("skeleton did not fold identifier case: %q vs %q", sk(t, a), sk(t, b))
	}
}

func TestFingerprintDistinguishesTemplates(t *testing.T) {
	distinct := []string{
		"SELECT * FROM T WHERE u > 1",
		"SELECT * FROM T WHERE u < 1",
		"SELECT * FROM T WHERE u > 'a'",
		"SELECT * FROM T WHERE u > @p",
		"SELECT * FROM T WHERE u > @q",
		"SELECT * FROM S WHERE u > 1",
	}
	seen := map[uint64]string{}
	for _, s := range distinct {
		h, _ := fp(t, s)
		if prev, ok := seen[h]; ok {
			t.Errorf("collision: %q and %q share fingerprint", prev, s)
		}
		seen[h] = s
	}
}

func TestFingerprintLiteralContents(t *testing.T) {
	_, lits := fp(t, "SELECT * FROM T WHERE u > 1.5 AND name = 'abc' AND v < @cap")
	if len(lits) != 3 {
		t.Fatalf("got %d literals, want 3", len(lits))
	}
	if lits[0].Kind != sqlparser.Number || lits[0].Num != 1.5 || lits[0].Text != "1.5" {
		t.Errorf("slot 1 = %+v", lits[0])
	}
	if lits[1].Kind != sqlparser.String || lits[1].Str != "abc" {
		t.Errorf("slot 2 = %+v", lits[1])
	}
	if lits[2].Kind != sqlparser.Param {
		t.Errorf("slot 3 = %+v", lits[2])
	}
}

// Out-of-range numeric spellings lex as Number but fail strconv; they must be
// flagged so the pipeline bypasses the template cache for the record.
func TestFingerprintBadNum(t *testing.T) {
	_, lits := fp(t, "SELECT * FROM T WHERE u > 1e999")
	if len(lits) != 1 || !lits[0].BadNum {
		t.Fatalf("lits = %+v, want one BadNum literal", lits)
	}
	_, lits = fp(t, "SELECT * FROM T WHERE u > 1e3")
	if len(lits) != 1 || lits[0].BadNum {
		t.Fatalf("lits = %+v, want no BadNum", lits)
	}
}

func TestFingerprintUnlexable(t *testing.T) {
	if _, _, err := sqlparser.Fingerprint("SELECT 'unterminated"); err == nil {
		t.Error("expected lexer error")
	}
	if _, err := sqlparser.Skeleton("SELECT 'unterminated"); err == nil {
		t.Error("expected lexer error")
	}
}

func TestSkeletonFormat(t *testing.T) {
	got := sk(t, "select TOP 10 P.ra from PhotoObjAll as P where P.ra < 1.5 and Name like 'x%' or z = @lim")
	want := "SELECT TOP ? p . ra FROM photoobjall AS p WHERE p . ra < ? AND name LIKE '?' OR z = @?"
	if got != want {
		t.Errorf("skeleton:\n got %q\nwant %q", got, want)
	}
}

// workloadSeeds returns one exemplar statement per ground-truth template
// label of the synthetic SkyServer log — the 24 cluster templates plus the
// noise, erroneous, admin-DDL, MySQL-dialect and >35-predicate populations —
// as shared fuzz seeds for FuzzParse and FuzzFingerprint.
func workloadSeeds() []string {
	var seeds []string
	byLabel := map[string]bool{}
	for _, e := range skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 4000, Seed: 1}) {
		if !byLabel[e.Template] {
			byLabel[e.Template] = true
			seeds = append(seeds, e.SQL)
		}
	}
	return seeds
}

// identish reports whether b could glue a bare digit onto a neighbouring
// token (identifier/number/param continuation bytes).
func identish(b byte) bool {
	return b == '.' || b == '_' || b == '@' || b == '#' || b == '$' ||
		(b >= '0' && b <= '9') || (b|0x20) >= 'a' && (b|0x20) <= 'z'
}

// FuzzFingerprint checks, over arbitrary input: Fingerprint and Skeleton
// never panic and fail together (both are the same lexer pass); and
// replacing every Number literal with a fresh spelling leaves the
// fingerprint — and therefore the skeleton — unchanged (substitution
// invariance, the property that makes the template cache sound). Inputs
// where a substituted number would merge with adjacent bytes into a
// different token are skipped.
func FuzzFingerprint(f *testing.F) {
	seeds := []string{
		"SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5",
		"SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5",
		"SELECT TOP 10 p.ra FROM PhotoObjAll AS p ORDER BY p.ra DESC",
		"SELECT * FROM T WHERE name LIKE 'Photo%' ESCAPE '!'",
		"SELECT * FROM dbo.SpecObjAll WHERE ra < 1.5e-3",
		"SELECT * FROM T WHERE u > @threshold",
		"SELECT * FROM T WHERE u > 1e999",
		"select * from t where u > -1.5",
		"SELEC oops",
		"",
	}
	// Real workload shapes: one exemplar per ground-truth template label,
	// covering the 24 clusters plus noise/error/admin/mysql/bigpred.
	seeds = append(seeds, workloadSeeds()...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		h1, lits, err := sqlparser.Fingerprint(src)
		s1, serr := sqlparser.Skeleton(src)
		if (err == nil) != (serr == nil) {
			t.Fatalf("Fingerprint err=%v but Skeleton err=%v", err, serr)
		}
		if err != nil {
			return
		}
		toks, terr := sqlparser.NewLexer(src).Tokens()
		if terr != nil {
			t.Fatalf("Tokens errs where Fingerprint did not: %v", terr)
		}
		nlit := 0
		for _, tok := range toks {
			if tok.Kind == sqlparser.Number || tok.Kind == sqlparser.String || tok.Kind == sqlparser.Param {
				nlit++
			}
		}
		if nlit != len(lits) {
			t.Fatalf("Fingerprint collected %d literals, token stream has %d", len(lits), nlit)
		}
		// Substitute every Number literal with "7" and re-fingerprint.
		var sb strings.Builder
		last := 0
		ok := true
		for _, tok := range toks {
			if tok.Kind != sqlparser.Number {
				continue
			}
			end := tok.Pos + len(tok.Text) // Number text is the verbatim spelling
			// Skip inputs where the substituted digit could merge with a
			// neighbouring token (e.g. "1x" lexing as one ident, or a ".5"
			// literal directly after an identifier byte).
			if (tok.Pos > 0 && identish(src[tok.Pos-1])) || (end < len(src) && identish(src[end])) {
				ok = false
				break
			}
			sb.WriteString(src[last:tok.Pos])
			sb.WriteString("7")
			last = end
		}
		if !ok {
			return
		}
		sb.WriteString(src[last:])
		sub := sb.String()
		h2, _, err2 := sqlparser.Fingerprint(sub)
		if err2 != nil {
			t.Fatalf("substituted form does not lex:\norig: %q\nsub:  %q\nerr: %v", src, sub, err2)
		}
		if h2 != h1 {
			t.Fatalf("fingerprint not invariant under literal substitution:\norig: %q\nsub:  %q", src, sub)
		}
		s2, err := sqlparser.Skeleton(sub)
		if err != nil || s2 != s1 {
			t.Fatalf("skeleton changed under substitution (fingerprint did not):\norig: %q -> %q\nsub:  %q -> %q (err %v)", src, s1, sub, s2, err)
		}
	})
}

// FingerprintOnly is the allocation-light twin of Fingerprint: the hashes
// must be bit-identical on every lexable statement, and both must reject the
// same unlexable ones.
func TestFingerprintOnlyMatchesFingerprint(t *testing.T) {
	srcs := []string{
		"SELECT * FROM T WHERE u > 1",
		"SELECT * FROM T WHERE u BETWEEN 1 AND 8 AND name LIKE 'a%'",
		"SELECT * FROM T WHERE u IN (1, 2, 3)",
		"select top 10 p.objID, p.ra, p.dec from PhotoObj p where p.ra > 180.0 and p.type = 3",
		"SELECT name FROM T WHERE name = 'abc' AND u = @param",
		"EXEC dbo.fGetNearbyObjEq 180.0, 0.5, 1.0",
	}
	for _, e := range skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 500, Seed: 7}) {
		srcs = append(srcs, e.SQL)
	}
	for _, src := range srcs {
		want, _, err := sqlparser.Fingerprint(src)
		if err != nil {
			continue
		}
		got, err := sqlparser.FingerprintOnly(src)
		if err != nil {
			t.Fatalf("FingerprintOnly(%q): %v", src, err)
		}
		if got != want {
			t.Errorf("FingerprintOnly(%q) = %x, Fingerprint = %x", src, got, want)
		}
	}
	if _, err := sqlparser.FingerprintOnly("SELECT ` FROM"); err == nil {
		t.Error("FingerprintOnly accepted an unlexable statement")
	}
}

// BenchmarkFingerprintOnly prices the WAL admission path's per-statement
// lexing cost on representative workload statements.
func BenchmarkFingerprintOnly(b *testing.B) {
	recs := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 256, Seed: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sqlparser.FingerprintOnly(recs[i%len(recs)].SQL)
	}
}
