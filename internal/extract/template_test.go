package extract

import (
	"testing"

	"repro/internal/skyserver"
	"repro/internal/sqlparser"
)

func parseSel(t *testing.T, src string) *sqlparser.SelectStatement {
	t.Helper()
	st, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel, ok := st.(*sqlparser.SelectStatement)
	if !ok {
		t.Fatalf("parse %q: got %T", src, st)
	}
	return sel
}

// Statement shapes whose constraint structure is decided by literal values
// must come back Uncacheable with the poisoning site's reason, so the whole
// fingerprint class takes the slow path.
func TestTemplateUncacheableShapes(t *testing.T) {
	cases := []struct {
		src    string
		reason string
	}{
		{"SELECT * FROM T WHERE 1 = 1", "constant-comparison"},
		{"SELECT * FROM T WHERE 1 = 2 AND u > 5", "constant-comparison"},
		{"SELECT * FROM T WHERE u = 1 + 2", "folded-arithmetic"},
		{"SELECT * FROM T WHERE u = 10 / 0", "folded-arithmetic"},
		{"SELECT u, SUM(v) FROM T GROUP BY u HAVING SUM(v) > 10", "having-aggregate"},
	}
	ex := New(testSchema())
	for _, c := range cases {
		_, _, tmpl, err := ex.ExtractTemplate(parseSel(t, c.src))
		if err != nil {
			t.Errorf("%q: unexpected error %v", c.src, err)
			continue
		}
		if !tmpl.Uncacheable || tmpl.Reason != c.reason {
			t.Errorf("%q: Uncacheable=%v Reason=%q, want Uncacheable with %q",
				c.src, tmpl.Uncacheable, tmpl.Reason, c.reason)
		}
		if _, _, ok := tmpl.Rebind(ex, nil); ok {
			t.Errorf("%q: Rebind succeeded on an uncacheable template", c.src)
		}
	}
}

// cacheableTemplate extracts src and fails the test unless it produced a
// rebindable template.
func cacheableTemplate(t *testing.T, ex *Extractor, src string) (*AccessArea, *AreaTemplate) {
	t.Helper()
	area, _, tmpl, err := ex.ExtractTemplate(parseSel(t, src))
	if err != nil {
		t.Fatalf("extract %q: %v", src, err)
	}
	if tmpl.Uncacheable {
		t.Fatalf("%q: unexpectedly uncacheable (%s)", src, tmpl.Reason)
	}
	return area, tmpl
}

// rebindFor fingerprints src and rebinds tmpl with its literals, requiring
// identical fingerprints first so the rebind is meaningful.
func rebindFor(t *testing.T, ex *Extractor, tmpl *AreaTemplate, tmplSrc, src string) (*AccessArea, bool) {
	t.Helper()
	fp1, _, err := sqlparser.Fingerprint(tmplSrc)
	if err != nil {
		t.Fatal(err)
	}
	fp2, lits, err := sqlparser.Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("not the same template:\n  %q\n  %q", tmplSrc, src)
	}
	area, _, ok := tmpl.Rebind(ex, lits)
	return area, ok
}

// requireSameArea compares a rebound area against a direct slow-path
// extraction of the same statement.
func requireSameArea(t *testing.T, ex *Extractor, got *AccessArea, src string) {
	t.Helper()
	want, _, err := ex.ExtractWithTimings(parseSel(t, src))
	if err != nil {
		t.Fatalf("direct extract %q: %v", src, err)
	}
	if got.Key() != want.Key() {
		t.Errorf("rebound area differs for %q:\n got %q\nwant %q", src, got.Key(), want.Key())
	}
	if got.Exact != want.Exact || got.Truncated != want.Truncated {
		t.Errorf("rebound flags differ for %q: got exact=%v trunc=%v, want exact=%v trunc=%v",
			src, got.Exact, got.Truncated, want.Exact, want.Truncated)
	}
	if len(got.Referenced) != len(want.Referenced) {
		t.Fatalf("referenced differ for %q: %v vs %v", src, got.Referenced, want.Referenced)
	}
	for i := range got.Referenced {
		if got.Referenced[i] != want.Referenced[i] {
			t.Fatalf("referenced differ for %q: %v vs %v", src, got.Referenced, want.Referenced)
		}
	}
}

// Tier A: distinct single-use columns keep the final CNF shape invariant, so
// the template substitutes into the consolidated CNF directly.
func TestTemplateRebindTierA(t *testing.T) {
	ex := New(testSchema())
	base := "SELECT * FROM T WHERE u > 1 AND v < 5"
	_, tmpl := cacheableTemplate(t, ex, base)
	if !tmpl.fast {
		t.Errorf("%q: expected a tier A (fast) template", base)
	}
	for _, src := range []string{
		"SELECT * FROM T WHERE u > 100 AND v < 200",
		"SELECT * FROM T WHERE u > 0.5 AND v < 1e3",
	} {
		area, ok := rebindFor(t, ex, tmpl, base, src)
		if !ok {
			t.Fatalf("rebind refused for %q", src)
		}
		requireSameArea(t, ex, area, src)
	}
}

// Tier B: BETWEEN puts two slotted bounds on one column, so consolidation
// could merge or contradict them differently for other values — the template
// must re-run CNF conversion and consolidation, and still land bit-identical,
// including on rebinds that cross into contradiction (empty area).
func TestTemplateRebindTierB(t *testing.T) {
	ex := New(testSchema())
	base := "SELECT * FROM T WHERE u BETWEEN 1 AND 8"
	_, tmpl := cacheableTemplate(t, ex, base)
	if tmpl.fast {
		t.Errorf("%q: two slotted bounds on one column must not be tier A", base)
	}
	for _, src := range []string{
		"SELECT * FROM T WHERE u BETWEEN 3 AND 4",
		"SELECT * FROM T WHERE u BETWEEN 8 AND 1", // contradiction: empty area
	} {
		area, ok := rebindFor(t, ex, tmpl, base, src)
		if !ok {
			t.Fatalf("rebind refused for %q", src)
		}
		requireSameArea(t, ex, area, src)
	}
}

// String literals rebind through their slots like numbers do.
func TestTemplateRebindString(t *testing.T) {
	ex := New(testSchema())
	base := "SELECT * FROM SpecObjAll WHERE class = 'GALAXY' AND plate > 100"
	_, tmpl := cacheableTemplate(t, ex, base)
	src := "SELECT * FROM SpecObjAll WHERE class = 'QSO' AND plate > 5"
	area, ok := rebindFor(t, ex, tmpl, base, src)
	if !ok {
		t.Fatalf("rebind refused for %q", src)
	}
	requireSameArea(t, ex, area, src)
}

// Negated literals: the parser folds unary minus into the literal, recording
// the fold depth; a rebind must reapply the sign to the record's (unsigned)
// literal value.
func TestTemplateRebindNegatedLiteral(t *testing.T) {
	ex := New(testSchema())
	base := "SELECT * FROM PhotoObjAll WHERE dec > -35.5"
	_, tmpl := cacheableTemplate(t, ex, base)
	src := "SELECT * FROM PhotoObjAll WHERE dec > -1.25"
	area, ok := rebindFor(t, ex, tmpl, base, src)
	if !ok {
		t.Fatalf("rebind refused for %q", src)
	}
	requireSameArea(t, ex, area, src)
}

// A LIKE pattern's wildcard-ness decides between an equality predicate and
// the TRUE approximation, so it is a per-record guard: same template, other
// wildcard-ness, must fall back to the slow path.
func TestTemplateLikeGuard(t *testing.T) {
	ex := New(testSchema())
	base := "SELECT * FROM SpecObjAll WHERE class LIKE 'GALAXY'"
	_, tmpl := cacheableTemplate(t, ex, base)
	if len(tmpl.guards) != 1 || tmpl.guards[0].Wildcard {
		t.Fatalf("guards = %+v, want one wildcard-free guard", tmpl.guards)
	}

	// Same wildcard-ness: rebind succeeds and matches direct extraction.
	same := "SELECT * FROM SpecObjAll WHERE class LIKE 'QSO'"
	area, ok := rebindFor(t, ex, tmpl, base, same)
	if !ok {
		t.Fatalf("rebind refused for %q", same)
	}
	requireSameArea(t, ex, area, same)

	// Wildcard pattern under the same fingerprint: guard must refuse.
	diff := "SELECT * FROM SpecObjAll WHERE class LIKE 'GAL%'"
	if _, ok := rebindFor(t, ex, tmpl, base, diff); ok {
		t.Fatalf("rebind accepted %q despite wildcard-ness change", diff)
	}

	// And the reverse: a template built from a wildcard pattern refuses a
	// wildcard-free rebind.
	wildBase := "SELECT * FROM SpecObjAll WHERE class LIKE 'GAL%' AND plate > 1"
	_, wildTmpl := cacheableTemplate(t, ex, wildBase)
	if _, ok := rebindFor(t, ex, wildTmpl, wildBase, "SELECT * FROM SpecObjAll WHERE class LIKE 'QSO' AND plate > 2"); ok {
		t.Fatal("rebind accepted a wildcard-free pattern on a wildcard template")
	}
}

// The end-to-end soundness property behind the cache: over a real workload,
// grouping statements by fingerprint, building one template per class, and
// rebinding every other member must reproduce the slow path bit-identically
// whenever the rebind is accepted.
func TestTemplateRebindMatchesSlowPathOnWorkload(t *testing.T) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 2000, Seed: 7})
	ex := New(skyserver.Schema())
	type class struct {
		tmpl *AreaTemplate
	}
	classes := map[uint64]*class{}
	rebound, refused := 0, 0
	for _, e := range entries {
		fp, lits, err := sqlparser.Fingerprint(e.SQL)
		if err != nil {
			continue
		}
		bad := false
		for _, l := range lits {
			bad = bad || l.BadNum
		}
		if bad {
			continue
		}
		st, err := sqlparser.Parse(e.SQL)
		if err != nil {
			continue
		}
		sel, ok := st.(*sqlparser.SelectStatement)
		if !ok {
			continue
		}
		c := classes[fp]
		if c == nil {
			_, _, tmpl, _ := ex.ExtractTemplate(sel)
			classes[fp] = &class{tmpl: tmpl}
			continue
		}
		if c.tmpl == nil || c.tmpl.Uncacheable || c.tmpl.ExtractErr != nil {
			continue
		}
		got, _, ok := c.tmpl.Rebind(ex, lits)
		if !ok {
			refused++
			continue
		}
		rebound++
		requireSameArea(t, ex, got, e.SQL)
	}
	if rebound < 500 {
		t.Errorf("only %d rebinds exercised (refused %d) — workload grouping broken?", rebound, refused)
	}
}
