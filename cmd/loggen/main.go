// Command loggen generates a synthetic SkyServer query log whose workload
// mix mirrors the paper's Table 1 (24 cluster templates plus background
// noise, erroneous statements, admin DDL, MySQL-dialect queries and
// >35-predicate monsters).
//
// Usage:
//
//	loggen [-n 20000] [-seed 42] [-format csv|jsonl] [-o file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/qlog"
	"repro/internal/skyserver"
)

func main() {
	n := flag.Int("n", 20000, "number of queries")
	seed := flag.Int64("seed", 42, "generator seed")
	format := flag.String("format", "csv", "output format: csv or jsonl")
	out := flag.String("o", "", "output file (default stdout)")
	noise := flag.Float64("noise", 0.12, "background-noise fraction")
	errs := flag.Float64("errors", 0.0054, "unparseable-statement fraction")
	flag.Parse()

	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{
		Queries: *n, Seed: *seed, NoiseFraction: *noise, ErrorFraction: *errs,
	})
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = qlog.WriteCSV(w, recs)
	case "jsonl":
		err = qlog.WriteJSONL(w, recs)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}
