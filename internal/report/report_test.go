package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/skyserver"
)

func minedResult(t *testing.T) *core.Result {
	t.Helper()
	m := core.NewMiner(core.Config{Schema: skyserver.Schema()})
	var stmts []string
	for i := 0; i < 25; i++ {
		stmts = append(stmts, "SELECT ra FROM PhotoObjAll WHERE ra <= 210 AND dec <= 10")
	}
	for i := 0; i < 12; i++ {
		stmts = append(stmts, "SELECT z FROM Photoz WHERE z >= 0 AND z <= 0.1")
	}
	stmts = append(stmts, "SELECT * FROM zooSpec WHERE p_el > 0.99")
	return m.MineSQL(stmts)
}

func TestParseFormat(t *testing.T) {
	for _, good := range []string{"text", "CSV", "Json"} {
		if _, err := ParseFormat(good); err != nil {
			t.Errorf("%q: %v", good, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("xml should be rejected")
	}
}

func TestWriteText(t *testing.T) {
	res := minedResult(t)
	var buf bytes.Buffer
	if err := Write(&buf, res, Text, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "clusters: 2") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "PhotoObjAll.ra <= 210") {
		t.Errorf("output missing access area: %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	res := minedResult(t)
	var buf bytes.Buffer
	if err := Write(&buf, res, CSV, Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 clusters
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][5] != "area_coverage" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "25" {
		t.Errorf("top cluster queries = %v", rows[1])
	}
}

func TestWriteJSON(t *testing.T) {
	res := minedResult(t)
	var buf bytes.Buffer
	if err := Write(&buf, res, JSON, Options{Top: 1}); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded["total_clusters"].(float64) != 2 {
		t.Errorf("total_clusters = %v", decoded["total_clusters"])
	}
	clusters := decoded["clusters"].([]any)
	if len(clusters) != 1 { // Top: 1
		t.Fatalf("clusters = %d", len(clusters))
	}
	c0 := clusters[0].(map[string]any)
	if c0["queries"].(float64) != 25 {
		t.Errorf("queries = %v", c0["queries"])
	}
	// One-sided box bounds serialise as null, not +Inf (invalid JSON).
	box := c0["box"].(map[string]any)
	ra := box["PhotoObjAll.ra"].([]any)
	if ra[0] != nil {
		t.Errorf("unbounded lo should be null, got %v", ra[0])
	}
	if ra[1].(float64) != 210 {
		t.Errorf("hi = %v", ra[1])
	}
}

func TestWriteJSONNoStats(t *testing.T) {
	// MineAreas results have no pipeline stats; JSON must still encode.
	res := &core.Result{}
	var buf bytes.Buffer
	if err := Write(&buf, res, JSON, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"total_clusters\": 0") {
		t.Errorf("output = %s", buf.String())
	}
}
