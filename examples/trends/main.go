// Trends: trace how user interests move over time — the "trending research
// directions" of the paper's abstract. The log is mined in fixed time
// windows; clusters are matched across windows by their shape (relations +
// constrained columns) and appearance/growth/disappearance events reported.
package main

import (
	"fmt"

	skyaccess "repro"
)

func main() {
	// Three months of synthetic activity with a shifting focus:
	// month 0: photometric objid lookups dominate;
	// month 1: a supernova-like event pulls attention to a zooSpec region;
	// month 2: the objid campaign ends.
	var recs []skyaccess.Record
	add := func(tm int64, sql string) {
		recs = append(recs, skyaccess.Record{
			Seq: len(recs), Time: tm, User: fmt.Sprintf("u%04d", len(recs)%97), SQL: sql,
		})
	}
	const month = 30 * 24 * 3600
	for i := 0; i < 60; i++ {
		add(int64(i)*1000, fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %d", 1237650000000000000+i%7))
	}
	for i := 0; i < 40; i++ {
		add(month+int64(i)*1000, fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %d", 1237650000000000000+i%7))
		add(month+int64(i)*1000, "SELECT * FROM zooSpec WHERE ra BETWEEN 150 AND 152 AND dec BETWEEN 12 AND 13")
	}
	for i := 0; i < 50; i++ {
		add(2*month+int64(i)*1000, "SELECT * FROM zooSpec WHERE ra BETWEEN 150 AND 152 AND dec BETWEEN 12 AND 13")
	}

	miner := skyaccess.NewMiner(skyaccess.Config{Schema: skyaccess.SkyServerSchema(), MinPts: 5})
	windows := miner.MineWindows(recs, month)
	events := skyaccess.Trends(windows)
	fmt.Print(skyaccess.TrendReport(windows, events))
}
