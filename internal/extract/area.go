// Package extract maps parsed SQL queries to their access areas — the
// paper's primary contribution. It transforms every supported query type
// (simple, join, aggregate, nested; Sections 4.1–4.4) into the intermediate
// format of Section 2.4:
//
//	SELECT * FROM R1, ..., RN WHERE F(p1, ..., pK)
//
// with F a conjunctive normal form of atomic predicates, so that the access
// area is σ_F(R1 × ... × RN). Constructs without an exact mapping are
// over-approximated and flagged (the "approximation scheme" the paper defers
// to [5]).
package extract

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interval"
	"repro/internal/predicate"
)

// AccessArea is the access area of one query in intermediate format
// (Definition 4 realised per Section 2.4): the universal relation's factor
// list plus the CNF constraint.
type AccessArea struct {
	// Relations lists the canonical relation names of the universal
	// relation, deduplicated and sorted alphabetically (the clean-up rule of
	// Section 4.5).
	Relations []string
	// CNF is the constraint F. Empty CNF means no constraint; a CNF with an
	// empty clause means the access area is empty (contradictory
	// constraint).
	CNF predicate.CNF
	// Exact is false when any approximation was applied during extraction.
	Exact bool
	// Truncated reports that the 35-predicate CNF cap of Section 6.6 was
	// hit.
	Truncated bool
	// Referenced is the paper's A set (Section 2.1): every column the query
	// refers to in WHERE, GROUP BY, HAVING or nested clauses — including
	// columns whose constraints were approximated away and therefore do not
	// appear in the CNF.
	Referenced []string
}

// IsEmpty reports whether the access area is provably empty (∅).
func (a *AccessArea) IsEmpty() bool { return a.CNF.IsFalse() }

// Tables returns the relation set (alias for Relations, used by the
// distance function's d_tables component).
func (a *AccessArea) Tables() []string { return a.Relations }

// Bounds returns the per-column interval-set projection of the constraint.
func (a *AccessArea) Bounds() map[string]interval.Set {
	return predicate.Bounds(a.CNF)
}

// String renders the access area in the paper's σ-notation, e.g.
// "σ[T.u >= 1 AND T.u <= 8](T)".
func (a *AccessArea) String() string {
	rels := strings.Join(a.Relations, " × ")
	if rels == "" {
		rels = "∅-relation"
	}
	if a.CNF.IsTrue() {
		return "σ(" + rels + ")"
	}
	return "σ[" + a.CNF.String() + "](" + rels + ")"
}

// IntermediateSQL renders the access area as the intermediate-format query
// of Section 2.4.
func (a *AccessArea) IntermediateSQL() string {
	var b strings.Builder
	b.WriteString("SELECT * FROM ")
	b.WriteString(strings.Join(a.Relations, ", "))
	if !a.CNF.IsTrue() {
		b.WriteString(" WHERE ")
		b.WriteString(a.CNF.String())
	}
	return b.String()
}

// Key returns a canonical identity for deduplication.
func (a *AccessArea) Key() string {
	return RelationSetKey(a.Relations) + "§" + a.CNF.Key()
}

// RelationSetKey renders a (normalised: deduplicated, sorted) relation list
// as the canonical comma-joined key. It is THE relation-set identity of the
// system: core.partitionItems groups clustering partitions by it and the
// shard router assigns relation sets to shard nodes by it, so the two can
// never disagree about which partition a record belongs to.
func RelationSetKey(rels []string) string {
	return strings.Join(rels, ",")
}

// normalizeRelations deduplicates and alphabetically sorts relation names.
func normalizeRelations(rels []string) []string {
	seen := make(map[string]struct{}, len(rels))
	out := make([]string, 0, len(rels))
	for _, r := range rels {
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// ErrorKind classifies extraction failures.
type ErrorKind int

const (
	// ErrSelfJoin marks queries joining a relation with itself; the paper
	// excludes them (Section 2.1, "this excludes self-joins, which do not
	// occur in the SkyServer query log").
	ErrSelfJoin ErrorKind = iota
	// ErrUnsupported marks constructs outside the supported mapping.
	ErrUnsupported
)

// Error is an extraction failure.
type Error struct {
	Kind ErrorKind
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("extract: %s", e.Msg)
}
