package predicate

import (
	"sort"

	"repro/internal/interval"
)

// Consolidate implements the clean-up step of Section 4.5: it removes
// redundant constraints, merges overlapping constraints, and checks the set
// of constraints for contradictions. The transformation is semantics-
// preserving:
//
//   - within a clause (a disjunction), numeric predicates on the same column
//     are unioned as interval sets and re-emitted in minimal form when the
//     union is expressible with atomic predicates (e.g. "a < 3 OR a < 5"
//     becomes "a < 5"; "a > 1 OR a <= 1" makes the clause vacuous);
//   - across clauses, the per-column conjunction of all single-predicate
//     numeric clauses is intersected; an empty intersection makes the whole
//     constraint FALSE (e.g. "a > 5 AND a < 2"), and redundant bounds are
//     dropped (e.g. "a >= 1 AND a >= 3" becomes "a >= 3");
//   - duplicate string-equality predicates are deduplicated, and
//     contradictory string equalities ("c = 'x' AND c = 'y'") are detected.
//
// When a rewrite is not expressible with simple atomic predicates the
// original clauses are kept (conservative behaviour).
func Consolidate(c CNF) CNF {
	if c.IsFalse() {
		return CNF{{}}
	}
	// Remember the original predicates: rebuilding predicates from merged
	// interval sets loses the source spelling of constants (Value.Text),
	// which matters for exact display of 18-digit SkyServer object IDs.
	// After consolidation, any emitted predicate identical to an original
	// is swapped back for it.
	originals := make(map[string]Pred)
	for _, cl := range c {
		for _, p := range cl {
			if p.Kind == ColumnConstant && p.Val.Text != "" {
				originals[p.Key()] = p
			}
		}
	}
	restore := func(out CNF) CNF {
		for i := range out {
			for j := range out[i] {
				if orig, ok := originals[out[i][j].Key()]; ok {
					approx := out[i][j].Approx
					out[i][j] = orig
					out[i][j].Approx = approx
				}
			}
		}
		return out
	}
	// Pass 1: merge within clauses.
	merged := make(CNF, 0, len(c))
	for _, cl := range c {
		m, taut := consolidateClause(cl)
		if taut {
			continue
		}
		merged = append(merged, m)
	}
	// Pass 2: per-column conjunction of single-predicate numeric clauses.
	type colState struct {
		set    interval.Set
		approx bool
		orig   CNF // original clauses, kept when the merge is inexpressible
	}
	colSets := make(map[string]*colState)
	strEq := make(map[string]map[string]struct{}) // column -> equality values
	var rest CNF
	for _, cl := range merged {
		if len(cl) == 1 {
			p := cl[0]
			if p.Kind == FalsePred {
				return CNF{{}}
			}
			if set, ok := p.Interval(); ok {
				cs, exists := colSets[p.Column]
				if !exists {
					cs = &colState{set: interval.FullSet()}
					colSets[p.Column] = cs
				}
				cs.set = cs.set.Intersect(set)
				cs.approx = cs.approx || p.Approx
				cs.orig = append(cs.orig, cl)
				continue
			}
			if p.Kind == ColumnConstant && p.Val.Kind == StringVal && p.Op == Eq {
				vals, exists := strEq[p.Column]
				if !exists {
					vals = make(map[string]struct{})
					strEq[p.Column] = vals
				}
				vals[p.Val.Str] = struct{}{}
				rest = append(rest, cl) // keep one copy; dedupe below
				continue
			}
		}
		rest = append(rest, cl)
	}
	// Contradictory string equalities.
	for _, vals := range strEq {
		if len(vals) > 1 {
			return CNF{{}}
		}
	}
	// Re-emit numeric per-column constraints.
	cols := make([]string, 0, len(colSets))
	for col := range colSets {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	out := make(CNF, 0, len(rest)+len(cols))
	for _, col := range cols {
		cs := colSets[col]
		if cs.set.IsEmpty() {
			return CNF{{}}
		}
		if cs.set.IsFull() {
			continue
		}
		emitted := emitColumnSet(col, cs.set, cs.approx)
		if emitted == nil {
			// The merged value set is not expressible with atomic
			// predicates (e.g. a multi-piece bounded set from
			// "a >= 1 AND a <= 8 AND a <> 5"); keep the original clauses.
			emitted = cs.orig
		}
		out = append(out, emitted...)
	}
	out = append(out, rest...)
	return restore(out.normalize())
}

// consolidateClause merges numeric predicates per column within one
// disjunction. taut reports that the clause became vacuous (covers the full
// line on some column).
func consolidateClause(cl Clause) (Clause, bool) {
	colSets := make(map[string]interval.Set)
	colApprox := make(map[string]bool)
	var rest Clause
	order := make([]string, 0, 4)
	for _, p := range cl {
		if set, ok := p.Interval(); ok {
			if _, seen := colSets[p.Column]; !seen {
				order = append(order, p.Column)
			}
			colSets[p.Column] = colSets[p.Column].Union(set)
			colApprox[p.Column] = colApprox[p.Column] || p.Approx
			continue
		}
		rest = append(rest, p)
	}
	out := rest
	for _, col := range order {
		set := colSets[col]
		if set.IsFull() {
			return nil, true
		}
		preds, ok := PredsFromSet(col, set)
		if !ok {
			// Union not expressible in atomic predicates (e.g. disjoint
			// bounded intervals): keep the hull-free original by re-adding
			// per-interval bounds is impossible in a single disjunction, so
			// keep the simplest sound over-approximation: the convex hull.
			hp, hok := predFromInterval(col, set.Hull())
			if hok {
				hp.Approx = true
				preds = []Pred{hp}
			} else {
				lo := ClausesFromInterval(col, set.Hull())
				// Hull is bounded both sides; it cannot be kept inside one
				// disjunction exactly, so leave the original predicates.
				_ = lo
				preds = nil
			}
		}
		if preds == nil {
			// Fall back to originals for this column.
			for _, p := range cl {
				if p.Column == col && p.IsNumeric() {
					out = append(out, p)
				}
			}
			continue
		}
		for i := range preds {
			preds[i].Approx = preds[i].Approx || colApprox[col]
		}
		out = append(out, preds...)
	}
	norm, taut := normalizeClause(out)
	return norm.preds, taut
}

// emitColumnSet renders the conjunction-level value set of one column as
// CNF clauses. A single interval becomes up to two one-predicate clauses; a
// multi-piece set becomes one disjunctive clause when each piece is
// single-predicate expressible, otherwise nil (inexpressible).
func emitColumnSet(col string, set interval.Set, approx bool) CNF {
	mark := func(c CNF) CNF {
		if !approx {
			return c
		}
		for i := range c {
			for j := range c[i] {
				c[i][j].Approx = true
			}
		}
		return c
	}
	ivs := set.Intervals()
	if len(ivs) == 1 {
		var out CNF
		for _, p := range ClausesFromInterval(col, ivs[0]) {
			out = append(out, Clause{p})
		}
		return mark(out)
	}
	preds, ok := PredsFromSet(col, set)
	if !ok {
		return nil
	}
	return mark(CNF{Clause(preds)})
}
