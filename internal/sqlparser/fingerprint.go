package sqlparser

import (
	"strconv"
	"strings"
)

// This file implements the lexer-level statement fingerprint behind the
// template cache (DESIGN.md §7): a 64-bit FNV-1a hash of the normalised
// token stream with every literal replaced by a typed placeholder. Two
// statements share a fingerprint exactly when they are the same query
// template instantiated with different constants — the "Templates" of Singh
// et al.'s SkyServer traffic study, which dominate the log. The hash is
// computed in a single lexer pass without materialising a token slice or
// the joined skeleton string.
//
// Normalisation per token kind:
//
//	Keyword  upper-cased text (the lexer already canonicalises)
//	Ident    verbatim text — case-SENSITIVE, because extraction's
//	         unknown-relation fallback preserves identifier case in
//	         canonical column names, so two statements differing only in
//	         identifier case may extract differently
//	Op       canonical operator text ("!=" is already "<>")
//	Number   typed placeholder; value collected as a Literal
//	String   typed placeholder; value collected as a Literal
//	Param    typed placeholder plus the parameter name
//
// Param names are hashed: folding @a and @b together would be sound (a
// parameter never becomes a predicate value) but gains nothing, so they
// stay distinct. Skeleton (the human-readable form) renders all three
// literal kinds as placeholders and lower-cases identifiers, so the
// fingerprint is strictly finer than the skeleton: equal fingerprints imply
// equal skeletons.

// Literal is one literal occurrence of a statement, in lexer order. The
// slice returned by Fingerprint is parallel to the Slot numbering of the
// statement's tokens: Slot k corresponds to index k-1.
type Literal struct {
	Kind TokenKind // Number, String, or Param
	Num  float64   // parsed value, Number literals only
	Str  string    // value with quotes stripped, String literals only
	Text string    // source spelling (Number text, Param name)
	// BadNum marks a Number literal strconv.ParseFloat rejects (e.g.
	// "1e999"). Parse success then depends on the literal's value, so the
	// record must bypass the template cache entirely.
	BadNum bool
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString folds s into an FNV-1a running hash.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// FingerprintOnly computes the same template hash as Fingerprint without
// collecting literals — no slice growth, no ParseFloat. It is the
// allocation-light path for callers that only key on the statement family
// (the WAL's segment index). The hashes are identical by construction:
// Number and String tokens contribute only their kind byte either way.
// It skips the fingerprint stage span deliberately: this is the WAL
// admission hot path, per-call clock reads are measurable there, and the
// mining side's Fingerprint keeps the stage populated.
func FingerprintOnly(src string) (uint64, error) {
	fingerprintTotal.Inc()
	h := uint64(fnvOffset64)
	lx := Lexer{src: src, line: 1, col: 1} // value, so the lexer stays on the stack
	for {
		tok, err := lx.next()
		if err != nil {
			return 0, err
		}
		if tok.Kind == EOF {
			return h, nil
		}
		h = hashByte(h, byte(tok.Kind))
		switch tok.Kind {
		case Param, Keyword, Op, Ident:
			h = hashString(h, tok.Text)
		}
		h = hashByte(h, 0) // token separator
	}
}

// Fingerprint computes the template hash of src and collects its literals.
// The error is exactly the lexer's error: unlexable statements have no
// fingerprint (and necessarily fail parsing too).
func Fingerprint(src string) (uint64, []Literal, error) {
	sp := fingerprintStage.Start()
	defer sp.End()
	fingerprintTotal.Inc()
	h := uint64(fnvOffset64)
	var lits []Literal
	lx := Lexer{src: src, line: 1, col: 1} // value, so the lexer stays on the stack
	for {
		tok, err := lx.next()
		if err != nil {
			return 0, nil, err
		}
		if tok.Kind == EOF {
			return h, lits, nil
		}
		h = hashByte(h, byte(tok.Kind))
		switch tok.Kind {
		case Number:
			l := Literal{Kind: Number, Text: tok.Text}
			v, perr := strconv.ParseFloat(tok.Text, 64)
			if perr != nil {
				l.BadNum = true
			}
			l.Num = v
			lits = append(lits, l)
		case String:
			lits = append(lits, Literal{Kind: String, Str: tok.Text})
		case Param:
			h = hashString(h, tok.Text)
			lits = append(lits, Literal{Kind: Param, Text: tok.Text})
		case Keyword, Op:
			h = hashString(h, tok.Text)
		case Ident:
			h = hashString(h, tok.Text)
		}
		h = hashByte(h, 0) // token separator
	}
}

// Skeleton renders the normalised template string underlying Fingerprint:
// literals become typed placeholders ("?", "'?'", "@?"), keywords are
// upper-cased, identifiers lower-cased, tokens joined by single spaces.
// Because it is produced by the same lexer pass and normalisation table as
// Fingerprint, the two cannot drift: equal fingerprints imply equal
// skeletons (the fingerprint additionally distinguishes identifier case and
// parameter names).
func Skeleton(src string) (string, error) {
	var sb strings.Builder
	sb.Grow(len(src))
	lx := NewLexer(src)
	for {
		tok, err := lx.next()
		if err != nil {
			return "", err
		}
		if tok.Kind == EOF {
			return sb.String(), nil
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch tok.Kind {
		case Number:
			sb.WriteByte('?')
		case String:
			sb.WriteString("'?'")
		case Param:
			sb.WriteString("@?")
		case Keyword:
			// The lexer canonicalises keyword text to upper case already;
			// ToUpper is a no-op pass-through then (no allocation).
			sb.WriteString(strings.ToUpper(tok.Text))
		case Ident:
			sb.WriteString(strings.ToLower(tok.Text))
		case Op:
			sb.WriteString(tok.Text)
		}
	}
}
