package interval

import (
	"fmt"
	"sort"
	"strings"
)

// Box is an axis-aligned hyper-rectangle over a set of named dimensions
// (fully-qualified column names). Dimensions absent from the map are
// unconstrained. Boxes model both content(R) — the minimum bounding
// rectangle of a relation's data — and aggregated access areas (the minimum
// bounding hyper-rectangles derived from DBSCAN clusters in Section 6.2).
type Box struct {
	dims map[string]Interval
}

// NewBox returns an empty-dimension (fully unconstrained) box.
func NewBox() *Box {
	return &Box{dims: make(map[string]Interval)}
}

// Set constrains dimension name to iv, replacing any previous constraint.
func (b *Box) Set(name string, iv Interval) {
	b.dims[name] = iv
}

// Constrain intersects the existing constraint on name with iv.
func (b *Box) Constrain(name string, iv Interval) {
	if cur, ok := b.dims[name]; ok {
		b.dims[name] = cur.Intersect(iv)
		return
	}
	b.dims[name] = iv
}

// Extend widens the constraint on name to include iv (hull).
func (b *Box) Extend(name string, iv Interval) {
	if cur, ok := b.dims[name]; ok {
		b.dims[name] = cur.Hull(iv)
		return
	}
	b.dims[name] = iv
}

// Get returns the constraint on name; the full interval if unconstrained.
func (b *Box) Get(name string) Interval {
	if iv, ok := b.dims[name]; ok {
		return iv
	}
	return Full()
}

// Has reports whether name is explicitly constrained.
func (b *Box) Has(name string) bool {
	_, ok := b.dims[name]
	return ok
}

// Dims returns the constrained dimension names in sorted order.
func (b *Box) Dims() []string {
	names := make([]string, 0, len(b.dims))
	for name := range b.dims {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of constrained dimensions.
func (b *Box) Len() int { return len(b.dims) }

// IsEmpty reports whether any dimension's interval is empty, making the box
// contain no point.
func (b *Box) IsEmpty() bool {
	for _, iv := range b.dims {
		if iv.IsEmpty() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Box) Clone() *Box {
	out := NewBox()
	for name, iv := range b.dims {
		out.dims[name] = iv
	}
	return out
}

// IntersectWith intersects this box in place with other (dimension-wise).
func (b *Box) IntersectWith(other *Box) {
	for name, iv := range other.dims {
		b.Constrain(name, iv)
	}
}

// VolumeRatio returns the fraction of reference's volume that the
// intersection of b and reference occupies, considering only the dimensions
// constrained in b that also appear in reference. This implements the "area
// coverage" statistic of Table 1: v_access / v_content. Dimensions where the
// reference has zero or infinite width are skipped (they contribute factor 1
// when b covers them at all, 0 when b misses them entirely).
func (b *Box) VolumeRatio(reference *Box) float64 {
	ratio := 1.0
	for name, iv := range b.dims {
		ref, ok := reference.dims[name]
		if !ok {
			continue
		}
		inter := iv.Intersect(ref)
		if inter.IsEmpty() {
			return 0
		}
		rw := ref.Width()
		if rw == 0 || rw != rw /* NaN */ {
			continue
		}
		ratio *= inter.Width() / rw
	}
	return ratio
}

// ContainsBox reports whether every point of other lies inside b: for each
// dimension b constrains, other's projection onto that dimension (the full
// interval when other leaves it unconstrained) must be a subset of b's
// interval. Dimensions only other constrains never fail the test, since b is
// unbounded there. An empty other is contained in any box. This is the
// containment rule of the semantic result cache (DESIGN.md §11): a query
// whose access-area box is contained in a cached region's box can be
// answered from the region's prefetched rows.
func (b *Box) ContainsBox(other *Box) bool {
	if other.IsEmpty() {
		return true
	}
	for name, iv := range b.dims {
		if !iv.ContainsInterval(other.Get(name)) {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the named values fall within every
// constrained dimension of the box. Dimensions missing from values are
// treated as outside (the point does not determine them).
func (b *Box) ContainsPoint(values map[string]float64) bool {
	for name, iv := range b.dims {
		v, ok := values[name]
		if !ok || !iv.Contains(v) {
			return false
		}
	}
	return true
}

// String renders the box as a conjunction of per-dimension ranges in sorted
// dimension order, e.g. "a ∈ [1, 3] ∧ b ∈ (-inf, 5)".
func (b *Box) String() string {
	names := b.Dims()
	if len(names) == 0 {
		return "⊤"
	}
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s ∈ %s", name, b.dims[name])
	}
	return strings.Join(parts, " ∧ ")
}
