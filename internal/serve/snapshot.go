package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/schema"
)

// snapshotVersion guards against loading a snapshot written by an
// incompatible build.
const snapshotVersion = 1

// Snapshot is the on-disk service state: the access(a) registry first
// (restore order matters — representatives are re-extracted under it), then
// one representative statement per distinct area with accumulated weights
// and users, plus the cumulative pipeline statistics and ingest counters.
type Snapshot struct {
	Version   int                   `json:"version"`
	SavedAt   time.Time             `json:"saved_at"`
	Accepted  int64                 `json:"accepted"`
	Processed int64                 `json:"processed"`
	Epochs    int64                 `json:"epochs"`
	Pipeline  *qlog.Stats           `json:"pipeline"`
	Registry  *schema.StatsSnapshot `json:"registry"`
	Mining    *core.State           `json:"mining"`
}

// WriteSnapshot atomically persists the current state: marshal to a
// temporary file in the target directory, fsync, rename. A crash mid-write
// leaves the previous snapshot intact.
func (s *Server) WriteSnapshot(path string) error {
	snap := &Snapshot{
		Version:   snapshotVersion,
		SavedAt:   time.Now().UTC(),
		Accepted:  s.accepted.Load(),
		Processed: s.processedCount(),
		Epochs:    s.epochs.Load(),
		Pipeline:  s.statsSnapshot(),
		Registry:  s.miner.Stats().Snapshot(),
		Mining:    s.inc.ExportState(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// restoreSnapshot loads state written by WriteSnapshot. A missing file is
// not an error — the server simply starts empty.
func (s *Server) restoreSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("serve: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("serve: snapshot %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	// Registry first: re-extraction of the representatives must see the
	// exact access(a) state the areas were mined under.
	s.miner.Stats().RestoreSnapshot(snap.Registry)
	if err := s.inc.RestoreState(snap.Mining); err != nil {
		return fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	if snap.Pipeline != nil {
		s.mu.Lock()
		s.cum = *snap.Pipeline
		s.processed = snap.Processed
		s.mu.Unlock()
	}
	s.accepted.Store(snap.Accepted)
	s.epochs.Store(snap.Epochs)
	if s.inc.Distinct() > 0 {
		s.runEpoch(true)
	}
	return nil
}
