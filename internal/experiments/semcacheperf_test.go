package experiments

import "testing"

// A small-scale end-to-end run of the E13+E18 harness: the oracle must
// hold, the workload must hit, every v2 path (composed, agg, preagg) must
// actually serve traffic, and the budget curve must show residency bounded
// by each budget.
func TestRunSemCachePerf(t *testing.T) {
	if testing.Short() {
		t.Skip("semcacheperf is slow")
	}
	res, err := RunSemCachePerf(1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleFailed != 0 {
		t.Fatalf("oracle failures: %+v", res)
	}
	if res.OracleChecked == 0 || res.Hits == 0 || res.Regions == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.HitRatio < 0.5 {
		t.Errorf("hit ratio %.3f below the 0.5 acceptance floor", res.HitRatio)
	}
	if res.StaleHitRatio > res.FreshHitRatio {
		t.Errorf("stale regions out-hit fresh ones: stale %.3f, fresh %.3f",
			res.StaleHitRatio, res.FreshHitRatio)
	}
	if !res.IdenticalSingleRegion || !res.IdenticalComposed || !res.IdenticalPreagg {
		t.Errorf("identity gates not all true: single=%v composed=%v preagg=%v (agg_hits=%d preagg_hits=%d composed_hits=%d)",
			res.IdenticalSingleRegion, res.IdenticalComposed, res.IdenticalPreagg,
			res.AggHits, res.PreaggHits, res.ComposedHits)
	}
	if len(res.BudgetCurve) != 3 {
		t.Fatalf("budget curve has %d points, want 3", len(res.BudgetCurve))
	}
	for _, pt := range res.BudgetCurve {
		if pt.BytesResident > pt.BudgetBytes {
			t.Errorf("budget point %d: resident %d exceeds budget", pt.BudgetBytes, pt.BytesResident)
		}
		if pt.Hits == 0 {
			t.Errorf("budget point %d: no hits", pt.BudgetBytes)
		}
	}
	if res.HitRatioAtHalfBudget < 0.70 {
		t.Errorf("hit ratio at half budget %.3f below the 0.70 acceptance floor",
			res.HitRatioAtHalfBudget)
	}
	if res.Report == "" {
		t.Error("empty report")
	}
}
