package predicate

import (
	"sort"
	"strings"
)

// Clause is a disjunction of atomic predicates.
type Clause []Pred

// CNF is a conjunction of clauses: the normal form F(p1, ..., pK) of the
// intermediate format (Section 2.4). An empty CNF is TRUE. A CNF containing
// an empty clause is FALSE (unsatisfiable constraint, i.e. empty access
// area).
type CNF []Clause

// DefaultPredCap is the paper's workaround bound on the number of atomic
// predicates fed to the exponential CNF conversion (Section 6.6).
const DefaultPredCap = 35

// ToCNF converts an arbitrary Boolean expression to CNF. The expression is
// first brought to NNF (inverting predicates under NOT); if it contains more
// than cap atomic predicates it is truncated per the Section 6.6 workaround
// and truncated=true is reported. cap <= 0 disables the cap.
func ToCNF(e Expr, cap int) (cnf CNF, truncated bool) {
	n := ToNNF(e)
	n, truncated = Truncate(n, cap)
	// Truncation can introduce TRUE leaves; re-normalise via NNF builders.
	return distribute(n), truncated
}

// distribute converts an NNF expression to CNF by distributing OR over AND.
func distribute(e Expr) CNF {
	switch x := e.(type) {
	case *Leaf:
		switch x.P.Kind {
		case TruePred:
			return CNF{}
		case FalsePred:
			return CNF{{}}
		default:
			return CNF{{x.P}}
		}
	case *And:
		var out CNF
		for _, k := range x.Kids {
			out = append(out, distribute(k)...)
		}
		return out.normalize()
	case *Or:
		// CNF(a OR b) = { ca ∪ cb : ca ∈ CNF(a), cb ∈ CNF(b) }.
		out := CNF{{}}
		for _, k := range x.Kids {
			kc := distribute(k)
			if len(kc) == 0 { // TRUE: whole disjunction is TRUE
				return CNF{}
			}
			var next CNF
			for _, ca := range out {
				for _, cb := range kc {
					merged := make(Clause, 0, len(ca)+len(cb))
					merged = append(merged, ca...)
					merged = append(merged, cb...)
					next = append(next, merged)
				}
			}
			out = next
		}
		return out.normalize()
	case *Not:
		// NNF guarantees no Not nodes; fall back defensively.
		return distribute(ToNNF(x))
	default:
		return CNF{}
	}
}

// keyedClause pairs a clause with its precomputed per-predicate keys and
// joined clause key, so normalisation never re-derives key strings (the hot
// path of the CNF conversion, see BenchmarkCNFBlowupUncapped).
type keyedClause struct {
	preds Clause
	keys  []string
	key   string
}

// normalize deduplicates predicates within clauses, drops tautological
// clauses (containing TRUE or both p and NOT p), deduplicates clauses, and
// applies absorption (a clause that is a superset of another is redundant).
func (c CNF) normalize() CNF {
	var clauses []keyedClause
	seen := make(map[string]struct{})
	for _, cl := range c {
		norm, taut := normalizeClause(cl)
		if taut {
			continue
		}
		if _, dup := seen[norm.key]; dup {
			continue
		}
		seen[norm.key] = struct{}{}
		clauses = append(clauses, norm)
	}
	// Absorption: remove clauses that are supersets of another clause.
	// Sorting by (length, key) also makes the final clause order
	// deterministic.
	sort.Slice(clauses, func(i, j int) bool {
		if len(clauses[i].preds) != len(clauses[j].preds) {
			return len(clauses[i].preds) < len(clauses[j].preds)
		}
		return clauses[i].key < clauses[j].key
	})
	var out CNF
	for i := range clauses {
		cl := &clauses[i]
		absorbed := false
		var keySet map[string]struct{}
		for j := 0; j < i && !absorbed; j++ {
			if len(clauses[j].preds) >= len(cl.preds) {
				continue
			}
			if keySet == nil {
				keySet = make(map[string]struct{}, len(cl.keys))
				for _, k := range cl.keys {
					keySet[k] = struct{}{}
				}
			}
			subset := true
			for _, k := range clauses[j].keys {
				if _, ok := keySet[k]; !ok {
					subset = false
					break
				}
			}
			absorbed = subset
		}
		if !absorbed {
			out = append(out, cl.preds)
		}
	}
	return out
}

// normalizeClause deduplicates predicates, removes FALSE, and reports a
// tautology when TRUE is present or a predicate and its inversion co-occur.
// The returned clause is sorted by key and carries its keys.
func normalizeClause(cl Clause) (keyedClause, bool) {
	type entry struct {
		p   Pred
		key string
	}
	entries := make([]entry, 0, len(cl))
	keys := make(map[string]struct{}, len(cl))
	for _, p := range cl {
		switch p.Kind {
		case TruePred:
			return keyedClause{}, true
		case FalsePred:
			continue
		}
		k := p.Key()
		if _, dup := keys[k]; dup {
			continue
		}
		if _, hasInv := keys[p.Invert().Key()]; hasInv {
			return keyedClause{}, true
		}
		keys[k] = struct{}{}
		entries = append(entries, entry{p, k})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := keyedClause{
		preds: make(Clause, len(entries)),
		keys:  make([]string, len(entries)),
	}
	for i, e := range entries {
		out.preds[i] = e.p
		out.keys[i] = e.key
	}
	out.key = strings.Join(out.keys, "|")
	return out, false
}

func clauseKey(cl Clause) string {
	parts := make([]string, len(cl))
	for i, p := range cl {
		parts[i] = p.Key()
	}
	return strings.Join(parts, "|")
}

// IsTrue reports whether the CNF imposes no constraint.
func (c CNF) IsTrue() bool { return len(c) == 0 }

// IsFalse reports whether the CNF is unsatisfiable (contains an empty
// clause).
func (c CNF) IsFalse() bool {
	for _, cl := range c {
		if len(cl) == 0 {
			return true
		}
	}
	return false
}

// PredCount returns the total number of atomic predicates.
func (c CNF) PredCount() int {
	n := 0
	for _, cl := range c {
		n += len(cl)
	}
	return n
}

// Columns returns the sorted set of columns referenced by the CNF.
func (c CNF) Columns() []string {
	set := make(map[string]struct{})
	for _, cl := range c {
		for _, p := range cl {
			for _, col := range p.Columns() {
				set[col] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for col := range set {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (c CNF) Clone() CNF {
	out := make(CNF, len(c))
	for i, cl := range c {
		out[i] = append(Clause(nil), cl...)
	}
	return out
}

// Key returns a canonical identity string for the whole CNF with clauses in
// sorted order, used for deduplication of identical access areas.
func (c CNF) Key() string {
	keys := make([]string, len(c))
	for i, cl := range c {
		keys[i] = clauseKey(cl)
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}

// String renders the CNF as SQL-ish text: clauses joined by AND, predicates
// inside a clause by OR.
func (c CNF) String() string {
	if c.IsTrue() {
		return "TRUE"
	}
	if c.IsFalse() {
		return "FALSE"
	}
	parts := make([]string, len(c))
	for i, cl := range c {
		ps := make([]string, len(cl))
		for j, p := range cl {
			ps[j] = p.String()
		}
		if len(cl) == 1 {
			parts[i] = ps[0]
		} else {
			parts[i] = "(" + strings.Join(ps, " OR ") + ")"
		}
	}
	return strings.Join(parts, " AND ")
}
