// Command aextract extracts the access area of SQL statements: from
// arguments, or line-by-line from stdin (streaming mode, with new-shape
// notifications per the stream extension of Section 4).
//
// Usage:
//
//	aextract "SELECT * FROM T WHERE u BETWEEN 1 AND 8"
//	loggen -n 100 -format jsonl | aextract -jsonl -monitor
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/skyserver"
)

func main() {
	jsonl := flag.Bool("jsonl", false, "read qlog JSONL records from stdin instead of raw SQL lines")
	monitor := flag.Bool("monitor", false, "print stream-monitor events (new shapes/predicates)")
	showSQL := flag.Bool("sql", false, "print the intermediate-format SQL instead of σ-notation")
	flag.Parse()

	ex := extract.New(skyserver.Schema())
	var mon *qlog.Monitor
	if *monitor {
		mon = qlog.NewMonitor(func(e qlog.Event) {
			fmt.Printf("! %s: %s (seq %d)\n", e.Kind, e.Detail, e.Record.Seq)
		})
	}

	process := func(rec qlog.Record) {
		area, err := ex.ExtractSQL(rec.SQL)
		if err != nil {
			fmt.Printf("✗ %v\n", err)
			return
		}
		if mon != nil {
			mon.Observe(rec, area)
		}
		flags := ""
		if !area.Exact {
			flags += " [approx]"
		}
		if area.Truncated {
			flags += " [truncated]"
		}
		if area.IsEmpty() {
			flags += " [empty]"
		}
		if *showSQL {
			fmt.Printf("%s%s\n", area.IntermediateSQL(), flags)
			return
		}
		fmt.Printf("%s%s\n", area, flags)
	}

	if args := flag.Args(); len(args) > 0 {
		for i, sql := range args {
			process(qlog.Record{Seq: i, SQL: sql})
		}
		return
	}

	if *jsonl {
		recs, err := qlog.ReadJSONL(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aextract:", err)
			os.Exit(1)
		}
		for _, rec := range recs {
			process(rec)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	seq := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		process(qlog.Record{Seq: seq, SQL: line})
		seq++
	}
}
