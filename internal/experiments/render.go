package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/interval"
)

// RenderASCII draws the figure as a text scatter: the content box outline
// ('.'), each access box ('1', '2', ... outlines), and a sample of the
// database objects ('·') — the text analogue of the paper's Figure 1
// panels.
func (f *FigureResult) RenderASCII(db interface {
	SampleColumn(column string, n int) []float64
}, width, height int) string {
	if width <= 10 {
		width = 72
	}
	if height <= 4 {
		height = 24
	}
	// Plot window: hull of content and access boxes, padded 5%.
	xiv := f.Content.Get(f.XCol)
	yiv := f.Content.Get(f.YCol)
	for _, b := range f.Access {
		xiv = xiv.Hull(clipFinite(b.Get(f.XCol), xiv))
		yiv = yiv.Hull(clipFinite(b.Get(f.YCol), yiv))
	}
	if xiv.IsEmpty() || yiv.IsEmpty() || xiv.Width() == 0 || yiv.Width() == 0 {
		return "(nothing to draw)"
	}
	xpad, ypad := xiv.Width()*0.05, yiv.Width()*0.05
	x0, x1 := xiv.Lo-xpad, xiv.Hi+xpad
	y0, y1 := yiv.Lo-ypad, yiv.Hi+ypad

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	px := func(x float64) int { return int((x - x0) / (x1 - x0) * float64(width-1)) }
	py := func(y float64) int { return height - 1 - int((y-y0)/(y1-y0)*float64(height-1)) }
	set := func(cx, cy int, ch byte) {
		if cx >= 0 && cx < width && cy >= 0 && cy < height {
			grid[cy][cx] = ch
		}
	}
	drawBox := func(b *interval.Box, ch byte) {
		bx := clipFinite(b.Get(f.XCol), interval.Closed(x0, x1))
		by := clipFinite(b.Get(f.YCol), interval.Closed(y0, y1))
		if bx.IsEmpty() || by.IsEmpty() {
			return
		}
		lx, rx := px(bx.Lo), px(bx.Hi)
		ty, byy := py(by.Hi), py(by.Lo)
		for cx := lx; cx <= rx; cx++ {
			set(cx, ty, ch)
			set(cx, byy, ch)
		}
		for cy := ty; cy <= byy; cy++ {
			set(lx, cy, ch)
			set(rx, cy, ch)
		}
	}
	// Data sample.
	xs := db.SampleColumn(f.XCol, 400)
	ys := db.SampleColumn(f.YCol, 400)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		set(px(xs[i]), py(ys[i]), '.')
	}
	drawBox(f.Content, '%')
	for i, b := range f.Access {
		drawBox(b, byte('1'+i))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (x: %s ∈ [%.4g, %.4g], y: %s ∈ [%.4g, %.4g])\n",
		f.Name, f.XCol, x0, x1, f.YCol, y0, y1)
	sb.WriteString("legend: . data sample   % content box   1,2,... access boxes\n")
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// clipFinite replaces infinite endpoints with the fallback's, so unbounded
// access boxes draw at the plot border.
func clipFinite(iv, fallback interval.Interval) interval.Interval {
	if iv.IsEmpty() {
		return iv
	}
	out := iv
	if math.IsInf(out.Lo, -1) {
		out.Lo = fallback.Lo
	}
	if math.IsInf(out.Hi, 1) {
		out.Hi = fallback.Hi
	}
	if out.Lo > out.Hi {
		return interval.Empty()
	}
	return out
}
