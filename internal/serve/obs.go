package serve

import (
	"time"

	"repro/internal/obs"
	"repro/internal/traffic"
)

// Request-path stage spans (Default registry, shared across servers in one
// process — the histograms describe the process, not one listener).
var (
	ingestBatchStage = obs.NewStage("serve_ingest_batch")
	epochServeStage  = obs.NewStage("serve_epoch")
	reportStage      = obs.NewStage("serve_report")
	queryServeStage  = obs.NewStage("serve_query")
	remineStage      = obs.NewStage("serve_remine")
)

// initRegistry builds the server's private metrics registry: every legacy
// /metrics JSON key becomes a function-backed registry metric reading the
// same atomics the handlers always read, so the JSON view and the
// Prometheus view are two renderings of one source of truth. Called once
// from NewServer, before the server is reachable.
func (s *Server) initRegistry() {
	r := obs.NewRegistry()
	s.reg = r

	r.NewGaugeFunc("skyaccess_serve_uptime_seconds",
		"seconds since the server started",
		func() float64 { return time.Since(s.start).Seconds() })
	r.NewCounterFunc("skyaccess_serve_ingest_accepted_total",
		"records admitted to the ingest queue",
		func() float64 { return float64(s.accepted.Load()) })
	r.NewCounterFunc("skyaccess_serve_ingest_rejected_total",
		"records refused by a full queue or a closed server",
		func() float64 { return float64(s.rejected.Load()) })
	r.NewCounterFunc("skyaccess_serve_ingest_processed_total",
		"records drained through the extraction pipeline",
		func() float64 { return float64(s.processedCount()) })
	r.NewGaugeFunc("skyaccess_serve_queue_depth",
		"records waiting in the ingest queue",
		func() float64 { return float64(len(s.queue)) })
	r.NewGaugeFunc("skyaccess_serve_queue_capacity",
		"ingest queue capacity",
		func() float64 { return float64(cap(s.queue)) })
	r.NewGaugeFunc("skyaccess_serve_distinct_areas",
		"distinct access areas admitted to the miner",
		func() float64 { return float64(s.inc.Distinct()) })
	r.NewCounterFunc("skyaccess_serve_epochs_total",
		"re-clustering epochs run",
		func() float64 { return float64(s.epochs.Load()) })
	r.NewGaugeFunc("skyaccess_serve_epoch_last_seconds",
		"duration of the most recent epoch",
		func() float64 { return float64(s.lastEpochNS.Load()) / 1e9 })
	r.NewCounterFunc("skyaccess_serve_epoch_total_seconds",
		"cumulative epoch time",
		func() float64 { return float64(s.totalEpochNS.Load()) / 1e9 })
	r.NewCounterFunc("skyaccess_serve_template_cache_hits_total",
		"pipeline records served by a cached template",
		func() float64 { return float64(s.statsSnapshot().CacheHits) })
	r.NewCounterFunc("skyaccess_serve_template_full_parses_total",
		"pipeline records that took the full parse path",
		func() float64 { return float64(s.statsSnapshot().FullParses) })
	r.NewCounterFunc("skyaccess_serve_distance_evals_total",
		"distance evaluations across all epochs",
		func() float64 { return float64(s.inc.DistanceEvals()) })
	r.NewCounterFunc("skyaccess_serve_distance_cache_hits_total",
		"distance lookups answered by the cross-epoch pair cache",
		func() float64 { return float64(s.inc.DistanceCacheHits()) })

	if s.wal != nil || s.cfg.WALDir != "" {
		// Registered via function so the gauges read whatever WAL the
		// server ends up with (initRegistry runs before the WAL opens).
		r.NewGaugeFunc("skyaccess_serve_wal_next_offset",
			"offset the next WAL append receives (records ever logged)",
			func() float64 {
				if s.wal == nil {
					return 0
				}
				return float64(s.wal.NextOffset())
			})
		r.NewGaugeFunc("skyaccess_serve_wal_durable_offset",
			"fsynced WAL frontier — every record below it survives a crash",
			func() float64 {
				if s.wal == nil {
					return 0
				}
				return float64(s.wal.DurableOffset())
			})
		r.NewGaugeFunc("skyaccess_serve_wal_segments",
			"WAL segments on disk (sealed + active)",
			func() float64 {
				if s.wal == nil {
					return 0
				}
				return float64(len(s.wal.Segments()))
			})
	}

	if t := s.traffic; t != nil {
		for _, cls := range traffic.Classes {
			cc := t.counts[cls]
			r.NewCounterFunc("skyaccess_serve_traffic_"+cls+"_records_total",
				"processed records classified "+cls,
				func() float64 { return float64(cc.total.Load()) })
			r.NewCounterFunc("skyaccess_serve_traffic_"+cls+"_extracted_total",
				"extracted areas fed to the "+cls+" class miner",
				func() float64 { return float64(cc.extracted.Load()) })
		}
		r.NewCounterFunc("skyaccess_serve_traffic_drift_events_total",
			"interest-drift events emitted across forced epochs",
			func() float64 { return float64(t.driftEvents.Load()) })
		r.NewGaugeFunc("skyaccess_serve_traffic_interfaces_tracked",
			"distinct statement fingerprints the interface miner tracks",
			func() float64 { return float64(t.trackedInterfaces()) })
	}

	if s.qcache != nil {
		qc := s.qcache
		r.NewGaugeFunc("skyaccess_semcache_generation",
			"region-set generation the semantic cache serves",
			func() float64 { return float64(qc.Generation()) })
		r.NewGaugeFunc("skyaccess_semcache_regions",
			"regions in the installed set",
			func() float64 { return float64(qc.Metrics().Regions) })
		r.NewCounterFunc("skyaccess_semcache_hits_total",
			"queries answered from a prefetched region",
			func() float64 { return float64(qc.Metrics().Hits) })
		r.NewCounterFunc("skyaccess_semcache_misses_total",
			"queries that fell through to direct execution",
			func() float64 { return float64(qc.Metrics().Misses) })
		r.NewCounterFunc("skyaccess_semcache_bytes_served_total",
			"result bytes served from region stores",
			func() float64 { return float64(qc.Metrics().BytesServed) })
		r.NewCounterFunc("skyaccess_semcache_verify_checked_total",
			"cache hits checked by the byte-identity oracle",
			func() float64 { return float64(qc.Metrics().VerifyChecked) })
		r.NewCounterFunc("skyaccess_semcache_verify_failed_total",
			"oracle checks that found a mismatch",
			func() float64 { return float64(qc.Metrics().VerifyFailed) })
	}
}

// Registry exposes the server's private metrics registry (tests and the
// benchreport -obs snapshot).
func (s *Server) Registry() *obs.Registry { return s.reg }
