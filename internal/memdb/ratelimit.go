package memdb

import (
	"fmt"
	"sort"
	"sync"
)

// RateLimitError simulates SkyServer's "Maximum 60 queries allowed per
// minute" error (quoted in Section 2.3).
type RateLimitError struct {
	PerMinute int
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("Maximum %d queries allowed per minute", e.PerMinute)
}

// RateLimiter enforces a per-user sliding-window query quota, mimicking the
// operational constraint that makes re-issuing the whole log against the
// live database impractical (Sections 1 and 6.6). Timestamps are logical
// seconds supplied by the caller so simulations stay deterministic.
type RateLimiter struct {
	PerMinute int

	mu      sync.Mutex
	history map[string][]int64
}

// NewRateLimiter returns a limiter allowing perMinute queries per user per
// 60 logical seconds.
func NewRateLimiter(perMinute int) *RateLimiter {
	return &RateLimiter{PerMinute: perMinute, history: make(map[string][]int64)}
}

// Allow records a query by user at logical time ts (seconds) and reports
// whether it is within quota: fewer than PerMinute recorded queries fall in
// (ts-60, ts]. Denied queries are not recorded. Timestamps may arrive out of
// order (concurrent clients race to the lock), so the window is kept sorted
// and evicted against the newest time seen rather than by prefix-scanning in
// arrival order — the latter silently stopped evicting once a late-arriving
// old entry landed behind a newer one, denying users still within quota.
func (rl *RateLimiter) Allow(user string, ts int64) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	window := rl.history[user]
	maxTs := ts
	if n := len(window); n > 0 && window[n-1] > maxTs {
		maxTs = window[n-1]
	}
	// Evict entries at or before maxTs-60: outside every window that any
	// in-order or late query could still fall into.
	cut := sort.Search(len(window), func(i int) bool { return window[i] > maxTs-60 })
	window = window[cut:]
	// Count the entries inside this query's own window (ts-60, ts].
	lo := sort.Search(len(window), func(i int) bool { return window[i] > ts-60 })
	hi := sort.Search(len(window), func(i int) bool { return window[i] > ts })
	if hi-lo >= rl.PerMinute {
		rl.history[user] = window
		return false
	}
	window = append(window, 0)
	copy(window[hi+1:], window[hi:])
	window[hi] = ts
	rl.history[user] = window
	return true
}

// Check is Allow returning the SkyServer-style error on denial.
func (rl *RateLimiter) Check(user string, ts int64) error {
	if !rl.Allow(user, ts) {
		return &RateLimitError{PerMinute: rl.PerMinute}
	}
	return nil
}
