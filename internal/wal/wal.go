// Package wal is a durable, segmented write-ahead log for ingested
// query-log records. Entries are length-prefixed and CRC-32C checksummed
// and pool in a mutex-staged buffer drained by a single writer goroutine:
// plain appends wake the writer only when staging reaches the batch
// target, sync barriers wake it immediately, and one fsync makes every
// staged record durable (group commit) — the ingest hot path pays one
// pooled encode and a mutex-guarded stage while durability is amortised
// across every record in flight. Segments rotate by size and by record-time window, and each
// sealed segment carries an inline index — record span, time range, and the
// distinct statement fingerprints it contains — so re-mining a time window
// or a template family opens only the segments that can match. Cold
// segments (those wholly covered by a snapshot) are compacted in place:
// parse-failed records are dropped and duplicate statements are collapsed
// to delta-coded groups that expand losslessly on read.
//
// The durability contract the serving layer builds on: a record is
// acknowledged to a client only after Sync returns for an offset past it,
// and recovery replays exactly the verified prefix of the log — a torn
// tail (crash mid-write) is truncated at the last entry whose checksum
// verifies, which is by construction an unacknowledged record.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/qlog"
)

// Options tunes a WAL. The zero value is serviceable.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// SegmentWindow rotates the active segment once the record-time span it
	// covers reaches this many time units (the unit is whatever Record.Time
	// carries — logical seconds for the synthetic workload). 0 disables
	// time rotation.
	SegmentWindow int64
	// BufferedAppends bounds the staging buffer between Append and the
	// writer (default 1024). A full buffer blocks Append — honest
	// backpressure when the disk cannot keep up.
	BufferedAppends int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.BufferedAppends <= 0 {
		o.BufferedAppends = 1024
	}
	return o
}

// walBatchTarget is the staging depth at which plain appends wake the
// writer even without a sync barrier. Below it records pool in staging —
// they are not owed to disk until someone Syncs, and waking the writer per
// record costs a scheduler round-trip per record on a loaded single core.
const walBatchTarget = 256

// SegmentInfo describes one segment for metrics, tests and the perf
// harness.
type SegmentInfo struct {
	Path      string
	Base      uint64 // offset of the segment's first record
	Span      uint64 // logical records covered (original count, even after compaction)
	Records   uint64 // records physically present
	MinTime   int64
	MaxTime   int64
	Sealed    bool
	Compacted bool
	Fprints   int // distinct statement fingerprints
}

// WindowStats reports what a ReadWindow call touched — the measure of the
// segment index's skip win.
type WindowStats struct {
	SegmentsScanned int
	SegmentsSkipped int
	Records         int // records delivered to fn
}

// segMeta is the in-memory index entry for one segment.
type segMeta struct {
	path      string
	base      uint64
	span      uint64
	records   uint64
	minT      int64
	maxT      int64
	fps       map[uint64]struct{}
	sealed    bool
	compacted bool
}

func (m *segMeta) end() uint64 { return m.base + m.span }

func (m *segMeta) info() SegmentInfo {
	return SegmentInfo{
		Path: m.path, Base: m.base, Span: m.span, Records: m.records,
		MinTime: m.minT, MaxTime: m.maxT,
		Sealed: m.sealed, Compacted: m.compacted, Fprints: len(m.fps),
	}
}

// overlaps reports whether the segment can contain a record in [from, to)
// by time, and — when fps is non-empty — any of the given fingerprints.
func (m *segMeta) overlaps(from, to int64, fps []uint64) bool {
	if m.records == 0 {
		return false
	}
	if m.maxT < from || m.minT >= to {
		return false
	}
	if len(fps) == 0 {
		return true
	}
	for _, fp := range fps {
		if _, ok := m.fps[fp]; ok {
			return true
		}
	}
	return false
}

// walOp is one unit of work for the writer goroutine: either a framed
// record entry to append, or a sync barrier to acknowledge once everything
// before it is durable. Ops travel through a mutex-staged slice the writer
// swaps out wholesale — cheaper per record than a channel send, and the
// swap forms the group-commit batch for free.
type walOp struct {
	// entry is the pooled box holding the framed bytes; nil for a sync
	// barrier. The box travels with the op so the writer can return it to
	// entryPool without re-boxing (a fresh allocation per record otherwise).
	entry *[]byte
	off   uint64 // record offset (entry ops)
	t     int64  // record time (entry ops)
	fp    uint64 // statement fingerprint (entry ops)
	sync  chan error
	// target is the durable frontier the barrier waits for. A barrier whose
	// target an earlier group commit already covered is acknowledged without
	// another fsync — the free ride that keeps concurrent committers from
	// each paying a serial fsync.
	target uint64
}

// ErrClosed reports an operation on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// WAL is the log. Open one per mining node; Append/Sync are safe for
// concurrent use.
type WAL struct {
	dir string
	opt Options

	// mu serialises Append's offset assignment so staging order equals
	// offset order, and guards closed/next/staged/kick. workCond wakes the
	// writer when kick is set (a sync barrier arrived, staging crossed the
	// batch target, or close); spaceCond wakes producers blocked on a full
	// staging buffer. Plain appends below the target do NOT wake the writer:
	// letting them pool until a barrier or a full batch is what turns group
	// commit from "whatever trickled in" into real batches, and keeps the
	// single-core scheduler out of the per-record path.
	mu        sync.Mutex
	next      uint64
	closed    bool
	kick      bool
	staged    []walOp
	workCond  *sync.Cond
	spaceCond *sync.Cond
	// batchTarget is min(walBatchTarget, BufferedAppends): the staging depth
	// at which appends wake the writer without waiting for a barrier.
	batchTarget int

	// segMu guards the segment index (sealed list + active meta), which the
	// writer mutates and readers snapshot.
	segMu  sync.Mutex
	sealed []*segMeta
	active *segMeta

	// durable is the offset frontier known fsynced: every record with
	// offset < durable survives a crash.
	durable atomic.Uint64
	// compactFloor is the offset below which segments are cold: wholly
	// covered by a persisted snapshot, so compaction may rewrite them.
	compactFloor atomic.Uint64

	// failed latches the first write error; Sync surfaces it forever after.
	failed atomic.Pointer[error]

	done chan struct{}

	// writer-owned state (no locks: only the writer goroutine touches it).
	wf *os.File
	// wbuf batches entry writes into one syscall per group commit; fsync
	// flushes it first, so the on-disk file always holds the durable prefix
	// plus whole flushed entries (readers of the active segment see acked
	// records only).
	wbuf     *bufio.Writer
	wsize    int64
	wpending []chan error // sync barriers awaiting the next fsync
	whighOff uint64       // one past the highest offset written (not yet necessarily synced)
}

// Open recovers (or creates) a WAL in dir. The last segment on disk becomes
// the active one after torn-tail truncation; earlier segments load their
// inline index (or are rescanned when the footer is missing).
func Open(dir string, opt Options) (*WAL, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:  dir,
		opt:  opt,
		done: make(chan struct{}),
	}
	w.workCond = sync.NewCond(&w.mu)
	w.spaceCond = sync.NewCond(&w.mu)
	w.batchTarget = walBatchTarget
	if w.batchTarget > opt.BufferedAppends {
		w.batchTarget = opt.BufferedAppends
	}
	if err := w.recover(); err != nil {
		return nil, err
	}
	go w.writer()
	return w, nil
}

// recover builds the segment index from disk and positions the active
// segment for appending.
func (w *WAL) recover() error {
	names, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for i, name := range names {
		path := filepath.Join(w.dir, name)
		base, _ := parseSegmentName(name)
		last := i == len(names)-1
		meta, truncateAt, err := loadSegment(path, base, last)
		if err != nil {
			return err
		}
		if last && !meta.sealed {
			// Torn tail: cut the file back to its verified prefix so the
			// append point is a clean entry boundary.
			if truncateAt >= 0 {
				if err := os.Truncate(path, truncateAt); err != nil {
					return fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
				}
				replayTruncated.Inc()
			}
			w.active = meta
		} else {
			meta.sealed = true
			w.sealed = append(w.sealed, meta)
		}
	}
	if w.active == nil {
		base := uint64(0)
		if n := len(w.sealed); n > 0 {
			base = w.sealed[n-1].end()
		}
		meta, err := w.createSegment(base)
		if err != nil {
			return err
		}
		w.active = meta
	}
	w.next = w.active.end()
	w.durable.Store(w.next)
	// Open the active file for appending.
	f, err := os.OpenFile(w.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.wf, w.wsize, w.whighOff = f, st.Size(), w.next
	w.wbuf = bufio.NewWriterSize(f, 64<<10)
	return nil
}

// loadSegment reads one segment's index. Sealed segments (footer present)
// load from the trailer without a data scan. For the candidate active
// segment (last on disk), a full verifying scan builds the meta and reports
// where to truncate a torn tail (-1 = no truncation needed).
func loadSegment(path string, base uint64, last bool) (*segMeta, int64, error) {
	if !last {
		if f, ok, err := readFooterTrailer(path); err != nil {
			return nil, -1, err
		} else if ok {
			return footerMeta(path, base, f), -1, nil
		}
	}
	rf, err := os.Open(path)
	if err != nil {
		return nil, -1, err
	}
	defer rf.Close()
	res, err := scanSegment(rf, nil)
	if err != nil {
		return nil, -1, err
	}
	meta := &segMeta{
		path: path, base: base,
		span: res.span, records: res.records,
		minT: res.minT, maxT: res.maxT, fps: res.fps,
	}
	if res.footer != nil {
		// A sealed segment scanned the long way (e.g. trailer missing after
		// an interrupted seal): the footer is authoritative for the span,
		// which a scan cannot reconstruct once compaction dropped records.
		meta.span = res.footer.span
		meta.sealed = true
		return meta, -1, nil
	}
	if res.truncated {
		return meta, res.goodOff, nil
	}
	return meta, -1, nil
}

// footerMeta converts a decoded footer into a segment meta.
func footerMeta(path string, base uint64, f *footer) *segMeta {
	fps := make(map[uint64]struct{}, len(f.fps))
	for _, fp := range f.fps {
		fps[fp] = struct{}{}
	}
	return &segMeta{
		path: path, base: base,
		span: f.span, records: f.records,
		minT: f.minT, maxT: f.maxT, fps: fps,
		sealed: true, compacted: f.records < f.span,
	}
}

// readFooterTrailer reads a sealed segment's index via the fixed trailer.
// ok=false means no (valid) trailer — the caller falls back to a scan.
func readFooterTrailer(path string) (*footer, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	const trailerLen = 4 + 8
	if st.Size() < trailerLen {
		return nil, false, nil
	}
	var tr [trailerLen]byte
	if _, err := f.ReadAt(tr[:], st.Size()-trailerLen); err != nil {
		return nil, false, nil
	}
	if [8]byte(tr[4:12]) != footerMagic {
		return nil, false, nil
	}
	entryLen := int64(uint32(tr[0]) | uint32(tr[1])<<8 | uint32(tr[2])<<16 | uint32(tr[3])<<24)
	start := st.Size() - trailerLen - entryLen
	if entryLen < entryHeader || start < 0 {
		return nil, false, nil
	}
	sec := newEntryReader(io.NewSectionReader(f, start, entryLen))
	payload, err := sec.next()
	if err != nil || len(payload) == 0 || payload[0] != kindFooter {
		return nil, false, nil
	}
	ft, err := decodeFooter(payload[1:])
	if err != nil {
		return nil, false, nil
	}
	return &ft, true, nil
}

// listSegments returns segment file names in base-offset order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // fixed-width hex ⇒ lexicographic == numeric
	return names, nil
}

// createSegment makes an empty segment file (fsynced, and the directory
// fsynced so the name survives a crash) and returns its meta.
func (w *WAL) createSegment(base uint64) (*segMeta, error) {
	path := filepath.Join(w.dir, segmentFileName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := syncDir(w.dir); err != nil {
		return nil, err
	}
	return &segMeta{path: path, base: base, fps: make(map[uint64]struct{})}, nil
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// NextOffset returns the offset the next appended record will get — equal
// to the total records ever appended.
func (w *WAL) NextOffset() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// DurableOffset returns the fsynced frontier: every record below it
// survives a crash.
func (w *WAL) DurableOffset() uint64 { return w.durable.Load() }

// entryPool recycles Append's encode buffers: the writer hands a buffer
// back once bufio has copied it into the segment stream, so steady-state
// ingest allocates no per-record entry memory at all.
var entryPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// Append encodes one record and hands it to the writer, returning the
// record's offset (the k-th record ever appended has offset k). It does not
// wait for durability — call SyncTo(off+1) before acknowledging the record.
// Append blocks only when the staging buffer is full (the disk is behind).
func (w *WAL) Append(rec qlog.Record, fp uint64) (uint64, error) {
	// Encode the payload after a reserved header slot, then frame in place —
	// a pooled buffer and no copy.
	bp := entryPool.Get().(*[]byte)
	buf := *bp
	if need := entryHeader + 64 + len(rec.User) + len(rec.SQL) + len(rec.Class); cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = encodeRecord(buf[:entryHeader], &rec, fp)
	*bp = frameInPlace(buf)
	w.mu.Lock()
	// Wait for space BEFORE taking an offset, so blocked appenders cannot
	// stage out of offset order when they resume.
	for !w.closed && len(w.staged) >= w.opt.BufferedAppends {
		w.spaceCond.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	off := w.next
	w.next++
	w.staged = append(w.staged, walOp{entry: bp, off: off, t: rec.Time, fp: fp})
	// Records pool in staging until a barrier arrives or a full batch forms;
	// the durability contract is Sync's, so nothing is owed to disk yet.
	if len(w.staged) >= w.batchTarget && !w.kick {
		w.kick = true
		w.workCond.Signal()
	}
	w.mu.Unlock()
	appendTotal.Inc()
	return off, nil
}

// Sync blocks until every record appended before the call is durable
// (written and fsynced). Concurrent Syncs coalesce into one fsync — the
// group commit the ingest path amortises its durability on.
func (w *WAL) Sync() error {
	w.mu.Lock()
	target := w.next
	w.mu.Unlock()
	return w.SyncTo(target)
}

// SyncTo blocks until the durable frontier reaches target (every record
// with offset < target survives a crash). A caller that tracks the offsets
// of its own appends free-rides on fsyncs triggered by other callers'
// barriers: if a group commit already covered target, SyncTo returns
// without scheduling another fsync — Sync cannot, because concurrent
// appends keep pushing the frontier it waits for.
func (w *WAL) SyncTo(target uint64) error {
	if errp := w.failed.Load(); errp != nil {
		return *errp
	}
	if w.durable.Load() >= target {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		if errp := w.failed.Load(); errp != nil {
			return *errp
		}
		return ErrClosed
	}
	if w.durable.Load() >= target {
		w.mu.Unlock()
		return nil
	}
	// Barriers bypass the staging cap: they carry no payload, and a Sync
	// behind a full buffer must still reach the writer to drain it. The
	// barrier needs no target of its own — staging preserves offset order,
	// so by the time the writer reaches it every earlier record is written
	// and the batch fsync covers them all.
	ch := make(chan error, 1)
	w.staged = append(w.staged, walOp{sync: ch, target: target})
	if !w.kick {
		w.kick = true
		w.workCond.Signal()
	}
	w.mu.Unlock()
	return <-ch
}

// Close flushes and fsyncs the active segment, stops the writer and
// releases the file. The active segment stays unsealed so a reopened WAL
// continues appending to it.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.workCond.Signal()
	w.spaceCond.Broadcast()
	w.mu.Unlock()
	<-w.done
	if errp := w.failed.Load(); errp != nil {
		return *errp
	}
	return nil
}

// writer is the single goroutine owning the active file: it swaps out
// everything staged since its last pass (the group-commit batch), appends
// entries, rotates segments, and acknowledges sync barriers after one
// shared fsync per batch. Two slices alternate as staging and working
// storage, so steady state allocates nothing.
func (w *WAL) writer() {
	defer close(w.done)
	var spare []walOp
	for {
		w.mu.Lock()
		for !w.kick && !w.closed {
			w.workCond.Wait()
		}
		w.kick = false
		if len(w.staged) == 0 {
			if !w.closed {
				// Kicked with nothing staged (barrier already drained by the
				// previous pass); go back to sleep.
				w.mu.Unlock()
				continue
			}
			w.mu.Unlock()
			w.finishWriter()
			return
		}
		batch := w.staged
		w.staged = spare[:0]
		w.spaceCond.Broadcast()
		w.mu.Unlock()
		w.processBatch(batch)
		for i := range batch {
			batch[i] = walOp{} // drop entry/chan refs so spare doesn't pin them
		}
		spare = batch
	}
}

// processBatch writes a batch's entries and, when it carries sync barriers,
// fsyncs once and wakes them all.
func (w *WAL) processBatch(batch []walOp) {
	sp := appendStage.Start()
	for i := range batch {
		op := &batch[i]
		if op.entry == nil {
			// A barrier staged after the fsync that covered its target (the
			// committer raced the frontier check) needs nothing from this
			// batch: acknowledge it without charging another fsync.
			if op.target > 0 && w.durable.Load() >= op.target && w.failed.Load() == nil {
				op.sync <- nil
				continue
			}
			w.wpending = append(w.wpending, op.sync)
			continue
		}
		err := w.writeEntry(op)
		*op.entry = (*op.entry)[:0]
		entryPool.Put(op.entry)
		if err != nil {
			w.fail(err)
			sp.End()
			w.ackPending()
			return
		}
	}
	sp.End()
	if len(w.wpending) > 0 {
		if err := w.fsync(); err != nil {
			w.fail(err)
		}
		w.ackPending()
	}
}

// writeEntry appends one framed entry, rotating first when the active
// segment is over its size or time budget.
func (w *WAL) writeEntry(op *walOp) error {
	entry := *op.entry
	w.segMu.Lock()
	needRotate := w.active.records > 0 &&
		(w.wsize+int64(len(entry)) > w.opt.SegmentBytes ||
			(w.opt.SegmentWindow > 0 && op.t-w.active.minT >= w.opt.SegmentWindow))
	w.segMu.Unlock()
	if needRotate {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if _, err := w.wbuf.Write(entry); err != nil {
		return err
	}
	w.wsize += int64(len(entry))
	w.whighOff = op.off + 1
	w.segMu.Lock()
	m := w.active
	if m.records == 0 {
		m.minT, m.maxT = op.t, op.t
	} else {
		if op.t < m.minT {
			m.minT = op.t
		}
		if op.t > m.maxT {
			m.maxT = op.t
		}
	}
	m.records++
	m.span++
	m.fps[op.fp] = struct{}{}
	w.segMu.Unlock()
	return nil
}

// rotate seals the active segment — footer entry, trailer, fsync — and
// opens a fresh one.
func (w *WAL) rotate() error {
	w.segMu.Lock()
	m := w.active
	ft := &footer{span: m.span, records: m.records, minT: m.minT, maxT: m.maxT, fps: sortedFps(m.fps)}
	w.segMu.Unlock()

	payload := encodeFooter(nil, ft)
	entry := frame(nil, payload)
	var trailer [12]byte
	trailer[0] = byte(len(entry))
	trailer[1] = byte(len(entry) >> 8)
	trailer[2] = byte(len(entry) >> 16)
	trailer[3] = byte(len(entry) >> 24)
	copy(trailer[4:], footerMagic[:])
	if _, err := w.wbuf.Write(entry); err != nil {
		return err
	}
	if _, err := w.wbuf.Write(trailer[:]); err != nil {
		return err
	}
	if err := w.wbuf.Flush(); err != nil {
		return err
	}
	if err := w.wf.Sync(); err != nil {
		return err
	}
	if err := w.wf.Close(); err != nil {
		return err
	}
	fsyncTotal.Inc()
	segmentsSealed.Inc()

	next, err := w.createSegment(m.end())
	if err != nil {
		return err
	}
	f, err := os.OpenFile(next.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.wf, w.wsize = f, 0
	w.wbuf.Reset(f)

	w.segMu.Lock()
	m.sealed = true
	w.sealed = append(w.sealed, m)
	w.active = next
	w.segMu.Unlock()
	return nil
}

// fsync flushes the write buffer, makes everything written so far durable
// and advances the frontier.
func (w *WAL) fsync() error {
	sp := fsyncStage.Start()
	defer sp.End()
	if err := w.wbuf.Flush(); err != nil {
		return err
	}
	if err := syncFile(w.wf); err != nil {
		return err
	}
	fsyncTotal.Inc()
	w.durable.Store(w.whighOff)
	return nil
}

// ackPending wakes every waiting sync barrier with the sticky error state.
func (w *WAL) ackPending() {
	var err error
	if errp := w.failed.Load(); errp != nil {
		err = *errp
	}
	for _, ch := range w.wpending {
		ch <- err
	}
	w.wpending = w.wpending[:0]
}

// fail latches the first write error: Sync reports it forever after, so a
// broken disk turns into rejected acks rather than silent data loss.
func (w *WAL) fail(err error) {
	werr := fmt.Errorf("wal: write failed: %w", err)
	w.failed.CompareAndSwap(nil, &werr)
}

// finishWriter flushes the tail on Close: one final fsync so Close implies
// durability of everything appended.
func (w *WAL) finishWriter() {
	if w.failed.Load() == nil {
		if err := w.fsync(); err != nil {
			w.fail(err)
		}
	}
	w.ackPending()
	_ = w.wf.Close()
}

func sortedFps(m map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for fp := range m {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Segments snapshots the index (sealed + active) in base-offset order.
func (w *WAL) Segments() []SegmentInfo {
	w.segMu.Lock()
	defer w.segMu.Unlock()
	out := make([]SegmentInfo, 0, len(w.sealed)+1)
	for _, m := range w.sealed {
		out = append(out, m.info())
	}
	out = append(out, w.active.info())
	return out
}

// SetCompactFloor marks every record below off as snapshot-covered: sealed
// segments wholly under the floor become compaction candidates, and replay
// never needs their exact entry order again.
func (w *WAL) SetCompactFloor(off uint64) {
	for {
		cur := w.compactFloor.Load()
		if off <= cur || w.compactFloor.CompareAndSwap(cur, off) {
			return
		}
	}
}

// snapshotMetas copies the segment metas for lock-free iteration. The
// active meta is copied by value (its fps map is cloned) so a concurrent
// append cannot race a reader.
func (w *WAL) snapshotMetas() []*segMeta {
	w.segMu.Lock()
	defer w.segMu.Unlock()
	out := make([]*segMeta, 0, len(w.sealed)+1)
	out = append(out, w.sealed...)
	a := *w.active
	a.fps = make(map[uint64]struct{}, len(w.active.fps))
	for fp := range w.active.fps {
		a.fps[fp] = struct{}{}
	}
	out = append(out, &a)
	return out
}

// Replay streams every record with offset >= from, in append order,
// stopping at the durable frontier. It is the crash-recovery path: a
// server replays from its snapshot's covered offset to rebuild the mining
// state the snapshot does not hold.
func (w *WAL) Replay(from uint64, fn func(qlog.Record) error) error {
	sp := replayStage.Start()
	defer sp.End()
	if err := w.Sync(); err != nil {
		return err
	}
	limit := w.durable.Load()
	for _, m := range w.snapshotMetas() {
		if m.end() <= from || m.base >= limit {
			continue
		}
		idx := m.base
		err := scanFile(m.path, func(rec qlog.Record, fp uint64) error {
			off := idx
			idx++
			if off < from || off >= limit {
				return nil
			}
			replayTotal.Inc()
			return fn(rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadWindow streams records whose Time lies in [from, to), optionally
// restricted to a set of statement fingerprints, using the segment index to
// open only segments that can match. Records arrive in WAL order. The
// returned stats expose the index's skip win.
func (w *WAL) ReadWindow(from, to int64, fps []uint64, fn func(rec qlog.Record, fp uint64) error) (WindowStats, error) {
	return w.readWindow(from, to, fps, fn, true)
}

// ReadWindowScanAll is ReadWindow without the segment index — every segment
// is opened and scanned. It exists so the perf harness can measure the
// index's skip win against an honest full-scan baseline.
func (w *WAL) ReadWindowScanAll(from, to int64, fps []uint64, fn func(rec qlog.Record, fp uint64) error) (WindowStats, error) {
	return w.readWindow(from, to, fps, fn, false)
}

func (w *WAL) readWindow(from, to int64, fps []uint64, fn func(rec qlog.Record, fp uint64) error, useIndex bool) (WindowStats, error) {
	var st WindowStats
	if err := w.Sync(); err != nil {
		return st, err
	}
	limit := w.durable.Load()
	match := func(fp uint64) bool {
		if len(fps) == 0 {
			return true
		}
		for _, want := range fps {
			if fp == want {
				return true
			}
		}
		return false
	}
	for _, m := range w.snapshotMetas() {
		if m.base >= limit {
			continue
		}
		if useIndex && !m.overlaps(from, to, fps) {
			st.SegmentsSkipped++
			segmentsSkipped.Inc()
			continue
		}
		st.SegmentsScanned++
		idx := m.base
		err := scanFile(m.path, func(rec qlog.Record, fp uint64) error {
			off := idx
			idx++
			if off >= limit {
				return nil
			}
			if rec.Time < from || rec.Time >= to || !match(fp) {
				return nil
			}
			st.Records++
			return fn(rec, fp)
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// scanFile runs scanSegment over one segment file. Torn tails end the scan
// silently (scanSegment's contract); callers bound delivery by the durable
// frontier instead.
func scanFile(path string, onRecord func(qlog.Record, uint64) error) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil // compacted away concurrently; nothing durable lost
	}
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = scanSegment(f, onRecord)
	return err
}
