// Package serve wraps the batch mining kernels in a long-running service:
// records are ingested over HTTP into a bounded queue, extracted through
// the streaming pipeline with a persistent warm template cache, and
// re-clustered in epochs by the core.Incremental miner so /report always
// serves a recent clustering while distance work is reused across epochs.
//
// The design keeps one invariant front and centre: after the final epoch of
// a drained server, the report is byte-for-byte what the one-shot batch
// miner would print for the same records (the serve-smoke gate).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/interestcache"
	"repro/internal/memdb"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/sqlparser"
	"repro/internal/traffic"
	"repro/internal/wal"
)

// Config parameterises a Server.
type Config struct {
	// Miner is the mining configuration (schema, eps, minPts, mode...).
	// SampleSize should stay 0 for serving: sampling forfeits cross-epoch
	// reuse (see core.Incremental).
	Miner core.Config
	// Coverage, when set, attaches area/object coverage to every epoch's
	// clusters and enables the coverage columns in reports.
	Coverage aggregate.DataSource
	// QueueSize bounds the ingest queue; a full queue answers 429
	// (default 4096).
	QueueSize int
	// MaxMiningLag, when positive, bounds the un-mined backlog: ingest
	// answers 429 while more than this many NEW distinct areas await their
	// epoch, so admission is paced by mining capacity instead of letting
	// report staleness grow without bound. Values below EpochAreas are
	// raised to it (otherwise admission could stall before the epoch
	// trigger ever fired). 0 disables the bound.
	MaxMiningLag int
	// Templates, when non-nil, is used (and populated) as the pipeline's
	// template cache instead of a private one. The in-process shard
	// topology shares one cache between the coordinator's router and every
	// shard node, so a shape fingerprinted for routing is already warm when
	// the owning shard extracts it.
	Templates *extract.TemplateCache
	// BatchSize caps how many queued records one pipeline run drains
	// (default 256).
	BatchSize int
	// EpochAreas triggers a re-clustering epoch once that many NEW distinct
	// areas accumulated since the last one (default 512).
	EpochAreas int
	// EpochInterval additionally re-clusters on a timer when new areas are
	// pending (0 = disabled; useful because a trickle of duplicates never
	// trips EpochAreas).
	EpochInterval time.Duration
	// SnapshotPath, when set, is written atomically on Close and restored
	// by NewServer, so a restarted server resumes without log replay.
	SnapshotPath string
	// WALDir, when set, enables the durable ingest write-ahead log: every
	// admitted record is appended to a segmented WAL and /ingest replies
	// only after a group-commit fsync covers it, so an acknowledged record
	// survives a crash. On restart the WAL tail past the snapshot's covered
	// offset is replayed through the pipeline before serving, and POST
	// /remine mines historical time windows straight from the log. Configure
	// the WAL from the server's first boot: the log must cover every
	// accepted record for replay offsets to line up.
	WALDir string
	// WALSegmentBytes rotates WAL segments by size (0 = the wal package
	// default, 8 MiB).
	WALSegmentBytes int64
	// WALSegmentWindow rotates WAL segments once the record-time span they
	// cover reaches this many time units (0 = size-only rotation). Smaller
	// windows mean finer-grained segment skipping for /remine.
	WALSegmentWindow int64
	// ReportTop caps the clusters a report emits unless the request
	// overrides it (0 = all).
	ReportTop int
	// QueryDB, when set, enables POST /query: statements are answered by
	// the interest-driven semantic cache (regions prefetched from this
	// database after every epoch) with fall-through to direct execution.
	QueryDB *memdb.DB
	// QueryExec is applied to both cache and direct execution (zero value:
	// RowLimit 500000, StrictTSQL, matching SkyServer's limits).
	QueryExec memdb.ExecOptions
	// QueryVerify turns on the cache's byte-identity oracle: every
	// cache-served result is checked against direct execution. Costs a
	// second execution per hit; for tests and smoke gates.
	QueryVerify bool
	// CacheBudget caps the semantic cache's resident region bytes
	// (<= 0 = unlimited; see interestcache heat-based admission).
	CacheBudget int64
	// CacheTTL bounds per-region staleness (0 = rebuild every epoch).
	CacheTTL time.Duration
	// CacheComposeMax caps multi-region composition covers (0 = default 4,
	// negative disables composition).
	CacheComposeMax int
	// Traffic, when non-nil, enables traffic-class-aware mining: records
	// are classified bot/human/admin in processing order, one incremental
	// miner per class runs alongside the global one (sharing its distance
	// substrate), GET /report?class= serves the per-class partition of the
	// global report, GET /drift the per-class interest-drift events, and
	// GET /interfaces the hottest mined query interfaces.
	Traffic *traffic.Config
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.EpochAreas <= 0 {
		c.EpochAreas = 512
	}
	if c.MaxMiningLag > 0 && c.MaxMiningLag < c.EpochAreas {
		c.MaxMiningLag = c.EpochAreas
	}
	if c.QueryExec == (memdb.ExecOptions{}) {
		c.QueryExec = memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	}
	return c
}

// Server is the online mining service. Create with NewServer, serve its
// Handler, and Shutdown to drain, run the final epoch and snapshot.
type Server struct {
	cfg   Config
	miner *core.Miner
	inc   *core.Incremental
	pipe  *qlog.Pipeline

	// baseCtx cancels the in-flight pipeline run when a deadline-bound
	// Shutdown gives up on draining.
	baseCtx context.Context
	cancel  context.CancelFunc

	queue chan qlog.Record

	// mu guards closed, the cumulative pipeline stats and processed; cond
	// signals processed advances (Flush waits on it).
	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	cum       qlog.Stats
	processed int64

	// snapMu makes (processed, cum, miner state) batch-boundary consistent:
	// runBatch holds it across the pipeline run and the counter update, and
	// WriteSnapshot holds it while exporting, so a snapshot taken mid-run
	// never pairs a miner state covering records the processed count does
	// not — the WAL replay offset depends on that alignment.
	snapMu sync.Mutex

	// wal is the durable ingest log (nil unless Config.WALDir is set).
	wal *wal.WAL
	// walHigh is one past the offset of the last record this server
	// appended (under s.mu). commitWAL reads it right after a caller's
	// final enqueue, so the durability barrier targets the caller's own
	// records and free-rides on group commits instead of chasing the
	// ever-advancing global append frontier.
	walHigh uint64
	// fpc caches statement fingerprints for the WAL append path. SkyServer
	// traffic is dominated by bots re-issuing identical statements, so
	// admission almost never pays the lexer twice for the same text. On
	// workloads with no text reuse the cache turns itself off (fpcOff)
	// once the probation window shows a negligible hit rate.
	fpcMu     sync.Mutex
	fpc       map[string]fpEntry
	fpcHits   int64
	fpcMisses int64
	fpcOff    atomic.Bool

	accepted atomic.Int64
	rejected atomic.Int64
	start    time.Time

	epochTrig chan struct{}
	stopEpoch chan struct{}
	pumpDone  chan struct{}
	epochDone chan struct{}

	// epochMu serialises Recluster (the epoch worker, Flush and Shutdown
	// can all request one). epochFull/epochProcessed/epochStatsGen (also
	// under epochMu) remember what the last epoch covered, so an idempotent
	// re-flush — nothing processed, no stats movement since a full epoch —
	// skips the re-cluster instead of redoing it.
	epochMu        sync.Mutex
	epochFull      bool
	epochProcessed int64
	epochStatsGen  uint64
	newSinceEpoch  atomic.Int64
	epochs         atomic.Int64
	lastEpochNS    atomic.Int64
	totalEpochNS   atomic.Int64

	// resMu guards res, classRes and resGen together so /report's ETag
	// always labels the exact body served.
	resMu    sync.RWMutex
	res      *core.Result
	classRes map[string]*core.Result
	resGen   int64

	// traffic is the traffic-class mining subsystem (nil unless
	// Config.Traffic is set).
	traffic *trafficState

	// qcache is the semantic result cache behind POST /query (nil when
	// Config.QueryDB is unset). runEpoch re-installs its region set.
	qcache *interestcache.Cache

	// reg is the server's private metrics registry: function-backed views
	// over the same atomics the JSON /metrics keys read (see initRegistry).
	reg *obs.Registry
}

// NewServer builds a Server and starts its pump and epoch workers. When
// cfg.SnapshotPath names an existing snapshot, the mining state is restored
// from it (and an epoch run) before any ingest is accepted.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	miner := core.NewMiner(cfg.Miner)
	ctx, cancel := context.WithCancel(context.Background())
	// With traffic mining on, the global miner clusters through the shared
	// substrate too: it interns every area first, so the class miners'
	// epochs find their distances already computed.
	var ts *trafficState
	inc := miner.Incremental()
	if cfg.Traffic != nil {
		ts = newTrafficState(*cfg.Traffic, miner)
		inc = miner.IncrementalShared(ts.sub)
	}
	s := &Server{
		cfg:       cfg,
		miner:     miner,
		inc:       inc,
		traffic:   ts,
		baseCtx:   ctx,
		cancel:    cancel,
		queue:     make(chan qlog.Record, cfg.QueueSize),
		epochTrig: make(chan struct{}, 1),
		stopEpoch: make(chan struct{}),
		pumpDone:  make(chan struct{}),
		epochDone: make(chan struct{}),
		start:     time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	tcache := cfg.Templates
	if tcache == nil {
		tcache = &extract.TemplateCache{}
	}
	s.pipe = &qlog.Pipeline{
		Extractor: &extract.Extractor{Schema: cfg.Miner.Schema, PredCap: cfg.Miner.PredCap, Stats: miner.Stats()},
		Workers:   cfg.Miner.Workers,
		NoCache:   cfg.Miner.DisableTemplateCache,
		Cache:     tcache,
	}
	if cfg.QueryDB != nil {
		// The cache shares the pipeline's template cache and an extractor
		// with the same schema/stats, so templates warmed by ingestion
		// serve POST /query without re-extraction.
		s.qcache = interestcache.New(interestcache.Config{
			DB:          cfg.QueryDB,
			Extractor:   &extract.Extractor{Schema: cfg.Miner.Schema, PredCap: cfg.Miner.PredCap, Stats: miner.Stats()},
			Templates:   s.pipe.Cache,
			Exec:        cfg.QueryExec,
			Verify:      cfg.QueryVerify,
			BudgetBytes: cfg.CacheBudget,
			RegionTTL:   cfg.CacheTTL,
			ComposeMax:  cfg.CacheComposeMax,
		})
	}
	s.initRegistry()
	var walOffset uint64
	if cfg.SnapshotPath != "" {
		snap, err := s.restoreSnapshot(cfg.SnapshotPath)
		if err != nil {
			cancel()
			return nil, err
		}
		if snap != nil {
			walOffset = snap.WALOffset
		}
	}
	if cfg.WALDir != "" {
		w, err := wal.Open(cfg.WALDir, wal.Options{
			SegmentBytes:  cfg.WALSegmentBytes,
			SegmentWindow: cfg.WALSegmentWindow,
		})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("serve: opening WAL: %w", err)
		}
		s.wal = w
		// Replay the durable tail the snapshot does not cover, then align
		// the ingest counters with the log: every appended record was
		// accepted, and replay pushed processed up to the log's end.
		if err := s.replayWAL(walOffset); err != nil {
			w.Close()
			cancel()
			return nil, fmt.Errorf("serve: WAL replay: %w", err)
		}
		if n := int64(w.NextOffset()); n > s.accepted.Load() {
			s.accepted.Store(n)
		}
		w.SetCompactFloor(walOffset)
	}
	// One anchoring epoch over everything restored and replayed, so /report
	// is immediately consistent with the recovered state. Drift turns on
	// only afterwards: the anchoring epoch reproduces the recovered
	// clustering and must not be diffed against the restored prev snapshot.
	if s.inc.Distinct() > 0 {
		s.runEpoch(true)
	}
	if s.traffic != nil {
		s.traffic.driftOn = true
	}
	go s.pump()
	go s.epochLoop()
	return s, nil
}

// replayWAL streams the log tail from offset from through the extraction
// pipeline in pump-sized batches. It runs before the pump starts, so it owns
// the miner exclusively; the replayed records move the processed counter
// exactly as live ingestion would have.
func (s *Server) replayWAL(from uint64) error {
	batch := make([]qlog.Record, 0, s.cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		st := s.extractBatch(batch)
		s.mu.Lock()
		s.cum.Merge(st)
		s.processed += int64(len(batch))
		s.mu.Unlock()
		batch = batch[:0]
	}
	err := s.wal.Replay(from, func(rec qlog.Record) error {
		batch = append(batch, rec)
		if len(batch) >= s.cfg.BatchSize {
			flush()
		}
		return nil
	})
	flush()
	return err
}

// Miner exposes the underlying miner (tests compare against batch runs).
func (s *Server) Miner() *core.Miner { return s.miner }

// Sentinel admission errors, exported so the shard coordinator (and other
// embedders) can distinguish backpressure (retry later: ErrQueueFull,
// ErrMiningLag) from shutdown (stop: ErrClosed).
var (
	ErrClosed    = errors.New("serve: server is shutting down")
	ErrQueueFull = errors.New("serve: ingest queue full")
	ErrMiningLag = errors.New("serve: un-mined area backlog at bound")
)

// enqueue admits one record or reports why it could not. With a WAL
// configured, admission also appends the record to the log (asynchronously —
// durability is enforced by commitWAL before any acknowledgement). The queue
// send and the WAL append happen under one mutex hold, so WAL order is
// exactly processing order and replay reproduces the live run.
func (s *Server) enqueue(rec qlog.Record) error {
	var fp uint64
	if s.wal != nil {
		// Fingerprint outside the admission lock: lexing is the expensive
		// part, and the WAL's segment index is keyed by it (0 = unparseable,
		// compaction's drop marker). Doing it here — on the ingest goroutine,
		// which otherwise idles on backpressure — keeps it off the WAL
		// writer's sync-barrier critical path. The pass is carried on the
		// record so the pipeline reuses it instead of lexing again.
		var lits []sqlparser.Literal
		var valid bool
		fp, lits, valid = s.fingerprint(rec.SQL)
		if valid {
			rec.FPValid, rec.FP, rec.Lits = true, fp, lits
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.cfg.MaxMiningLag > 0 && s.newSinceEpoch.Load() >= int64(s.cfg.MaxMiningLag) {
		s.rejected.Add(1)
		return ErrMiningLag
	}
	select {
	case s.queue <- rec:
		if s.wal != nil {
			// Append cannot report a closed WAL here: the WAL closes only
			// after s.closed is set, which this mutex hold just ruled out.
			// Write errors surface at the commitWAL fsync barrier.
			if off, err := s.wal.Append(rec, fp); err == nil {
				s.walHigh = off + 1
			}
		}
		s.accepted.Add(1)
		return nil
	default:
		s.rejected.Add(1)
		return ErrQueueFull
	}
}

// fpcProbation is how many cache misses the fingerprint cache tolerates
// before judging the workload: if fewer than 1/16 of lookups hit by then,
// admission is paying map inserts (and the GC cost of a growing string map)
// for texts that never recur, and the cache turns itself off. Bot traffic
// shows hits within the first few hundred statements, so a short probation
// does not mis-judge it.
const fpcProbation = 1024

// fpEntry is one fingerprint-cache value: the template hash plus the
// literal pass for the exact statement text (identical text ⇒ identical
// literals, so caching them together is sound).
type fpEntry struct {
	fp   uint64
	lits []sqlparser.Literal
}

// fingerprint returns the WAL index fingerprint for a statement, cached by
// exact text (0 = unparseable, compaction's drop marker). SkyServer bot
// traffic re-issues identical statements, so the cache usually keeps
// admission from paying the lexer twice — but a workload of all-distinct
// texts (every literal unique) would pay the map without ever hitting it,
// so the cache disables itself when the observed hit rate stays negligible.
// The cache resets at 32k distinct statements, bounding memory.
func (s *Server) fingerprint(sql string) (uint64, []sqlparser.Literal, bool) {
	if s.fpcOff.Load() {
		return fingerprintFull(sql)
	}
	s.fpcMu.Lock()
	ent, ok := s.fpc[sql]
	if ok {
		s.fpcHits++
		s.fpcMu.Unlock()
		return ent.fp, ent.lits, true
	}
	s.fpcMisses++
	if s.fpcMisses >= fpcProbation && s.fpcHits*16 < s.fpcMisses {
		s.fpc = nil
		s.fpcMu.Unlock()
		s.fpcOff.Store(true)
		return fingerprintFull(sql)
	}
	s.fpcMu.Unlock()
	fp, lits, valid := fingerprintFull(sql)
	if !valid {
		return fp, lits, valid
	}
	s.fpcMu.Lock()
	if len(s.fpc) >= 32<<10 {
		s.fpc = nil
	}
	if s.fpc == nil {
		s.fpc = make(map[string]fpEntry, 1024)
	}
	s.fpc[sql] = fpEntry{fp: fp, lits: lits}
	s.fpcMu.Unlock()
	return fp, lits, valid
}

// fingerprintFull lexes sql once for both consumers of the pass: the WAL's
// segment index (fp) and the mining pipeline's template cache (fp + lits,
// carried on the record so the pipeline skips its own lexer pass). An
// unlexable statement reports valid=false with fp 0 — the WAL's drop marker;
// the pipeline re-derives (and records) the failure itself.
func fingerprintFull(sql string) (uint64, []sqlparser.Literal, bool) {
	fp, lits, err := sqlparser.Fingerprint(sql)
	if err != nil {
		return 0, nil, false
	}
	return fp, lits, true
}

// commitWAL is the durability barrier: it blocks until every record
// appended so far is fsynced. Callers invoke it before acknowledging
// accepted records; with no WAL configured it is free.
func (s *Server) commitWAL(accepted int) error {
	if s.wal == nil || accepted == 0 {
		return nil
	}
	// Target the frontier as of this caller's last accepted record (other
	// clients may have nudged walHigh a hair further — their records land in
	// the same group commit anyway). If a concurrent barrier's fsync already
	// covered it, SyncTo returns without another fsync.
	s.mu.Lock()
	target := s.walHigh
	s.mu.Unlock()
	return s.wal.SyncTo(target)
}

// IngestRecords admits records in order until one is refused, returning how
// many were accepted and the first admission error (nil when all made it).
// It is the programmatic twin of POST /ingest for in-process shard nodes.
// The accepted prefix is WAL-durable before the call returns.
func (s *Server) IngestRecords(recs []qlog.Record) (int, error) {
	accepted := len(recs)
	var admitErr error
	for i := range recs {
		if err := s.enqueue(recs[i]); err != nil {
			accepted, admitErr = i, err
			break
		}
	}
	if err := s.commitWAL(accepted); err != nil {
		// Nothing is durably acknowledged when the fsync fails: the caller
		// must treat the whole call as refused and re-send.
		return 0, err
	}
	return accepted, admitErr
}

// pump is the single queue consumer: it drains records in batches through
// the streaming pipeline (template cache warm across batches) and feeds
// extractions to the incremental miner.
func (s *Server) pump() {
	defer close(s.pumpDone)
	batch := make([]qlog.Record, 0, s.cfg.BatchSize)
	for {
		rec, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], rec)
		open := true
	collect:
		for len(batch) < s.cfg.BatchSize {
			select {
			case r, ok2 := <-s.queue:
				if !ok2 {
					open = false
					break collect
				}
				batch = append(batch, r)
			default:
				break collect
			}
		}
		s.runBatch(batch)
		if !open {
			return
		}
	}
}

func (s *Server) runBatch(batch []qlog.Record) {
	sp := ingestBatchStage.Start()
	defer sp.End()
	// snapMu spans the pipeline run AND the counter update: a snapshot
	// taken between them would export miner state covering records that
	// processed does not count, and WAL replay would then double-feed them.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	st := s.extractBatch(batch)
	s.mu.Lock()
	s.cum.Merge(st)
	s.processed += int64(len(batch))
	s.mu.Unlock()
	s.cond.Broadcast()
	if s.newSinceEpoch.Load() >= int64(s.cfg.EpochAreas) {
		select {
		case s.epochTrig <- struct{}{}:
		default:
		}
	}
}

// epochLoop re-clusters on the size trigger and (optionally) on a timer.
func (s *Server) epochLoop() {
	defer close(s.epochDone)
	var tick <-chan time.Time
	if s.cfg.EpochInterval > 0 {
		t := time.NewTicker(s.cfg.EpochInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stopEpoch:
			return
		case <-s.epochTrig:
			s.runEpoch(false)
		case <-tick:
			if s.newSinceEpoch.Load() > 0 {
				s.runEpoch(false)
			}
		}
	}
}

// runEpoch re-clusters what changed since the last epoch and publishes the
// result. force requests a full re-cluster regardless of Config.DeltaEpochs;
// the periodic epoch worker passes false so mid-stream epochs may run the
// reduced delta path, while Flush, Shutdown and snapshot restore anchor on
// the exact clustering.
func (s *Server) runEpoch(force bool) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	// Idempotent re-flush: when the last epoch was already a full re-cluster
	// and neither the processed count nor the stats registry moved since, a
	// forced epoch would reproduce it exactly — skip the re-cluster. (A
	// second POST /flush, or a coordinator flush right after the shard's own,
	// becomes cheap instead of repeating the most expensive operation.)
	processedNow := s.processedCount()
	genNow := s.statsGeneration()
	if s.epochFull && s.epochs.Load() > 0 &&
		processedNow == s.epochProcessed && genNow == s.epochStatsGen {
		return
	}
	sp := epochServeStage.Start()
	defer sp.End()
	t0 := time.Now()
	// Areas added while Recluster runs belong to the next epoch.
	s.newSinceEpoch.Store(0)
	var res *core.Result
	if force {
		res = s.inc.Recluster()
	} else {
		res = s.inc.ReclusterAuto()
	}
	res.PipelineStats = s.statsSnapshot()
	if s.cfg.Coverage != nil {
		res.AttachCoverage(s.cfg.Coverage)
	}
	// The class miners recluster after the global one: every area is
	// already interned in the shared substrate, so the class epochs pay
	// cache lookups, not distance evaluations.
	var classRes map[string]*core.Result
	if s.traffic != nil {
		classRes = s.reclusterClasses(force)
	}
	el := time.Since(t0)
	s.lastEpochNS.Store(int64(el))
	s.totalEpochNS.Add(int64(el))
	gen := s.epochs.Add(1)
	s.resMu.Lock()
	s.res = res
	s.classRes = classRes
	s.resGen = gen
	s.resMu.Unlock()
	if s.qcache != nil {
		s.qcache.Install(gen, res.Clusters)
	}
	s.epochFull = force
	s.epochProcessed = processedNow
	s.epochStatsGen = genNow
}

// statsGeneration reads the stats registry's mutation counter (0 when the
// miner runs without one); a stable value across two instants proves every
// distance profile compiled from the registry is identical at both.
func (s *Server) statsGeneration() uint64 {
	if st := s.miner.Stats(); st != nil {
		return st.Generation()
	}
	return 0
}

// latest returns the most recent epoch's result and its generation (nil, 0
// before the first epoch).
func (s *Server) latest() (*core.Result, int64) {
	s.resMu.RLock()
	defer s.resMu.RUnlock()
	return s.res, s.resGen
}

// Latest exposes the most recent epoch's result and generation to embedders
// (the shard coordinator merges these). Callers must treat the Result as
// immutable — it is shared with every /report in flight.
func (s *Server) Latest() (*core.Result, int64) { return s.latest() }

// StatsSnapshot exposes a copy of the cumulative pipeline statistics.
func (s *Server) StatsSnapshot() *qlog.Stats { return s.statsSnapshot() }

// Telemetry is a point-in-time numeric snapshot of the server's ingest and
// epoch counters, the shard coordinator's merge unit for /metrics.
type Telemetry struct {
	Accepted      int64   `json:"accepted"`
	Rejected      int64   `json:"rejected"`
	Processed     int64   `json:"processed"`
	Epochs        int64   `json:"epochs"`
	DistinctAreas int     `json:"distinct_areas"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_capacity"`
	EpochLastMS   float64 `json:"epoch_last_ms"`
	EpochTotalMS  float64 `json:"epoch_total_ms"`
}

// Telemetry snapshots the counters without taking any epoch lock.
func (s *Server) Telemetry() Telemetry {
	return Telemetry{
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Processed:     s.processedCount(),
		Epochs:        s.epochs.Load(),
		DistinctAreas: s.inc.Distinct(),
		QueueDepth:    len(s.queue),
		QueueCap:      cap(s.queue),
		EpochLastMS:   float64(s.lastEpochNS.Load()) / 1e6,
		EpochTotalMS:  float64(s.totalEpochNS.Load()) / 1e6,
	}
}

// QueryCache exposes the semantic result cache (nil unless QueryDB is set).
func (s *Server) QueryCache() *interestcache.Cache { return s.qcache }

// statsSnapshot copies the cumulative pipeline stats (deep enough for the
// caller to keep: the failure map is cloned).
func (s *Server) statsSnapshot() *qlog.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cum
	if c.ParseFailures != nil {
		m := make(map[string]int, len(c.ParseFailures))
		for k, v := range c.ParseFailures {
			m[k] = v
		}
		c.ParseFailures = m
	}
	return &c
}

// Flush blocks until every record accepted before the call has been
// extracted, then runs an epoch synchronously. It is the determinism hook:
// after Flush, /report reflects every prior ingest.
func (s *Server) Flush() {
	target := s.accepted.Load()
	s.mu.Lock()
	for s.processed < target && !s.closed {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.runEpoch(true)
}

// Shutdown gracefully stops the server: intake closes (handlers answer
// 503), the queue drains through extraction, the epoch worker stops, a
// final epoch covers everything accepted, and — when configured — a
// snapshot is written. If ctx expires while draining, the in-flight
// pipeline run is cancelled (in-flight records finish, the rest of the
// queue is abandoned) and the final epoch covers what was extracted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.epochDone
		return nil
	}
	s.closed = true
	close(s.queue)
	s.cond.Broadcast()
	s.mu.Unlock()

	select {
	case <-s.pumpDone:
	case <-ctx.Done():
		s.cancel() // stop the in-flight pipeline feeder
		<-s.pumpDone
	}
	close(s.stopEpoch)
	<-s.epochDone
	s.runEpoch(true)
	s.cancel()
	if s.cfg.SnapshotPath != "" {
		if err := s.WriteSnapshot(s.cfg.SnapshotPath); err != nil {
			return fmt.Errorf("serve: final snapshot: %w", err)
		}
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			return fmt.Errorf("serve: closing WAL: %w", err)
		}
	}
	return ctx.Err()
}

// Abort simulates a crash for recovery tests: the queue closes, the
// in-flight pipeline run is cancelled, workers stop — but no final epoch
// runs and no snapshot is written. Whatever the WAL fsynced is all that
// survives, exactly as after a kill -9.
func (s *Server) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.epochDone
		return
	}
	s.closed = true
	close(s.queue)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	<-s.pumpDone
	close(s.stopEpoch)
	<-s.epochDone
	if s.wal != nil {
		_ = s.wal.Close()
	}
}

// Close is Shutdown without a deadline: it always drains fully, so no
// accepted record is lost.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}
