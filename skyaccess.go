// Package skyaccess is the public API of this repository: a library for
// mining user interests — access areas — from SQL query logs, reproducing
// "Identifying User Interests within the Data Space — a Case Study with
// SkyServer" (EDBT 2015).
//
// The pipeline: parse each logged statement, transform it to the paper's
// intermediate format and extract its access area (the part of the data
// space whose tuples could influence the query's result in some database
// state — independent of the actual content), cluster the areas with DBSCAN
// under an overlap-oriented distance, and report aggregated access areas
// with cardinality, user counts and area/object coverage.
//
// Quick start:
//
//	miner := skyaccess.NewMiner(skyaccess.Config{Schema: skyaccess.SkyServerSchema()})
//	result := miner.MineSQL([]string{
//		"SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200",
//		// ...
//	})
//	for _, c := range result.Clusters {
//		fmt.Println(c.Cardinality, c.Expr())
//	}
//
// The implementation lives in internal/ packages; this package re-exports
// the stable surface via type aliases so downstream users never import
// internal paths.
package skyaccess

import (
	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

// Core pipeline types.
type (
	// Miner runs the full log-mining pipeline (parse → extract → cluster →
	// aggregate).
	Miner = core.Miner
	// Config parameterises a Miner; the zero value plus a Schema is a
	// sensible default.
	Config = core.Config
	// Result is a mining outcome: clusters, noise, coverage statistics.
	Result = core.Result
	// ClusterSummary is one aggregated access area (a Table-1 row).
	ClusterSummary = aggregate.Summary

	// AccessArea is the access area of a single query in intermediate
	// format (Definition 4 / Section 2.4).
	AccessArea = extract.AccessArea
	// Extractor maps parsed queries to access areas.
	Extractor = extract.Extractor

	// Schema describes relations, columns and domains.
	Schema = schema.Schema
	// Relation is one relation of a Schema.
	Relation = schema.Relation
	// Column is one column of a Relation.
	Column = schema.Column
	// AccessStats is the access(a)/content(a) registry of Section 5.3.
	AccessStats = schema.Stats

	// Record is one query-log line.
	Record = qlog.Record
	// PipelineStats carries extraction coverage and per-stage timings.
	PipelineStats = qlog.Stats
	// StreamMonitor notifies about new query shapes in a log stream.
	StreamMonitor = qlog.Monitor
	// StreamEvent is one stream-monitor notification.
	StreamEvent = qlog.Event

	// WindowResult is the mining outcome of one time slice.
	WindowResult = core.WindowResult
	// TrendEvent marks a cluster appearing/growing/shrinking/vanishing
	// between windows.
	TrendEvent = core.TrendEvent
	// Recommendation pairs a cluster with its distance to a user's own
	// activity (QueRIE-style orientation, Sections 3.2/6.3).
	Recommendation = core.Recommendation

	// Metric is the Section 5 distance function.
	Metric = distance.Metric
	// Interval is a one-dimensional range.
	Interval = interval.Interval
	// Box is an axis-aligned hyper-rectangle over named columns.
	Box = interval.Box

	// DB is the bundled in-memory relational engine (useful for the
	// re-query baseline and coverage statistics).
	DB = memdb.DB
)

// Distance modes (see DESIGN.md §2).
const (
	// ModeEndpoint is the corrected overlap metric (default).
	ModeEndpoint = distance.ModeEndpoint
	// ModePaperLiteral applies the Section 5.2 formulas exactly as printed.
	ModePaperLiteral = distance.ModePaperLiteral
)

// NewMiner builds a Miner.
func NewMiner(cfg Config) *Miner { return core.NewMiner(cfg) }

// Trends diffs consecutive window results into trend events.
func Trends(windows []WindowResult) []TrendEvent { return core.Trends(windows) }

// TrendReport renders windows and events as text.
func TrendReport(windows []WindowResult, events []TrendEvent) string {
	return core.TrendReport(windows, events)
}

// NewExtractor builds an access-area extractor over a schema.
func NewExtractor(s *Schema) *Extractor { return extract.New(s) }

// NewSchema returns an empty schema.
func NewSchema() *Schema { return schema.New() }

// NewAccessStats returns an empty access(a) registry.
func NewAccessStats() *AccessStats { return schema.NewStats() }

// NewStreamMonitor returns a stream monitor delivering events to notify.
func NewStreamMonitor(notify func(StreamEvent)) *StreamMonitor {
	return qlog.NewMonitor(notify)
}

// SkyServerSchema returns the SDSS DR9 schema of the case study.
func SkyServerSchema() *Schema { return skyserver.Schema() }

// SkyServerDatabase builds the synthetic SkyServer database substrate with
// the given base row count and seed.
func SkyServerDatabase(rowsPerTable int, seed int64) *DB {
	return skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: rowsPerTable, Seed: seed})
}

// SeedStatsFromDatabase seeds access(a)/content(a) from a database sample
// per Section 5.3.
func SeedStatsFromDatabase(db *DB, stats *AccessStats) {
	skyserver.SeedStats(db, stats)
}

// GenerateSkyServerLog produces a synthetic query log whose workload mix
// mirrors the paper's Table 1 (see internal/skyserver for knobs).
func GenerateSkyServerLog(queries int, seed int64) []Record {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: queries, Seed: seed})
	recs := make([]Record, len(entries))
	for i, e := range entries {
		recs[i] = Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	return recs
}
