package predicate

import (
	"testing"

	"repro/internal/interval"
)

func TestBoundsProjection(t *testing.T) {
	// (a >= 1) AND (a <= 8) AND (b < 3 OR b > 7) AND (a < 5 OR c = 2)
	c := CNF{
		{CC("a", Ge, Number(1))},
		{CC("a", Le, Number(8))},
		{CC("b", Lt, Number(3)), CC("b", Gt, Number(7))},
		{CC("a", Lt, Number(5)), CC("c", Eq, Number(2))}, // multi-column: skipped
	}
	b := Bounds(c)
	if !b["a"].Hull().Equal(interval.Closed(1, 8)) {
		t.Errorf("a = %v", b["a"])
	}
	// b's clause is a same-column disjunction: union of two rays.
	if b["b"].Contains(5) || !b["b"].Contains(2) || !b["b"].Contains(8) {
		t.Errorf("b = %v", b["b"])
	}
	if _, ok := b["c"]; ok {
		t.Error("multi-column clause must not constrain c")
	}
}

func TestBoundsSkipsNonInterval(t *testing.T) {
	c := CNF{
		{Cols("a", Eq, "b")},
		{CC("s", Eq, Str("x"))},
	}
	if len(Bounds(c)) != 0 {
		t.Errorf("bounds = %v", Bounds(c))
	}
}

func TestBoundsBox(t *testing.T) {
	c := CNF{
		{CC("a", Ge, Number(1))},
		{CC("a", Le, Number(8))},
	}
	box := BoundsBox(Bounds(c))
	if !box.Get("a").Equal(interval.Closed(1, 8)) {
		t.Errorf("box = %v", box)
	}
}

func TestExprStringAndLeafColumns(t *testing.T) {
	e := NewAnd(
		NewOr(NewLeaf(CC("a", Lt, Number(1))), NewLeaf(CC("b", Gt, Number(2)))),
		NewNot(NewLeaf(Cols("a", Eq, "c"))),
	)
	s := ExprString(e)
	if s == "" || s == "?" {
		t.Errorf("string = %q", s)
	}
	cols := LeafColumns(e)
	if len(cols) != 3 || cols[0] != "a" || cols[1] != "b" || cols[2] != "c" {
		t.Errorf("cols = %v", cols)
	}
}

func TestCNFClone(t *testing.T) {
	c := CNF{{CC("a", Lt, Number(1)), CC("b", Gt, Number(2))}}
	d := c.Clone()
	d[0][0] = CC("z", Eq, Number(9))
	if c[0][0].Column != "a" {
		t.Error("clone is not deep")
	}
}

func TestStringBounds(t *testing.T) {
	// (s = 'x' OR s = 'y' OR s = 'x') AND (s = 'y' OR s = 'z') AND
	// (t = 'a') AND (a > 1) AND (u = 'p' OR v = 'q') AND (w = 'm' OR a = 2)
	c := CNF{
		{CC("s", Eq, Str("x")), CC("s", Eq, Str("y")), CC("s", Eq, Str("x"))},
		{CC("s", Eq, Str("y")), CC("s", Eq, Str("z"))},
		{CC("t", Eq, Str("a"))},
		{CC("a", Gt, Number(1))},
		{CC("u", Eq, Str("p")), CC("v", Eq, Str("q"))},  // multi-column: skipped
		{CC("w", Eq, Str("m")), CC("a", Eq, Number(2))}, // mixed kinds: skipped
	}
	sb := StringBounds(c)
	if got := sb["s"]; len(got) != 1 || got[0] != "y" {
		t.Errorf("s = %v, want [y]", got)
	}
	if got := sb["t"]; len(got) != 1 || got[0] != "a" {
		t.Errorf("t = %v, want [a]", got)
	}
	for _, col := range []string{"a", "u", "v", "w"} {
		if _, ok := sb[col]; ok {
			t.Errorf("column %s must not appear: %v", col, sb[col])
		}
	}
}

func TestStringBoundsRejectsNonEquality(t *testing.T) {
	c := CNF{
		{CC("s", Ne, Str("x"))},
		{Cols("s", Eq, "t")},
	}
	if sb := StringBounds(c); len(sb) != 0 {
		t.Errorf("StringBounds = %v, want empty", sb)
	}
}
