package dbscan

import (
	"math/rand"
	"testing"
)

// Extending an index over an appended point set must answer region queries
// identically to an index built from scratch over the full set.
func TestPivotIndexExtendMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := make([]float64, 300)
	for i := range pts {
		pts[i] = r.Float64() * 10
	}
	dist := euclid1D(pts)

	ix := NewPivotIndex(200, dist, 4)
	ix.Extend(300, dist)
	if ix.N() != 300 {
		t.Fatalf("extended N = %d, want 300", ix.N())
	}

	fresh := NewPivotIndex(300, dist, 4)
	const eps = 0.15
	for q := 0; q < 300; q += 7 {
		a := ix.Region(q, eps, 300)
		b := fresh.Region(q, eps, 300)
		// Pivot sets differ (farthest-point from different prefixes), but
		// both prunings are exact for a metric, so the results must agree.
		if len(a) != len(b) {
			t.Fatalf("q=%d: extended %v vs fresh %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("q=%d: extended %v vs fresh %v", q, a, b)
			}
		}
	}
}

// Extend must only evaluate distances involving the new points.
func TestPivotIndexExtendEvaluatesNewPointsOnly(t *testing.T) {
	pts := make([]float64, 120)
	for i := range pts {
		pts[i] = float64(i)
	}
	base := euclid1D(pts)
	calls := 0
	counted := func(i, j int) float64 {
		calls++
		return base(i, j)
	}
	ix := NewPivotIndex(100, counted, 3)
	buildCalls := calls

	calls = 0
	ix.Extend(120, counted)
	if want := 3 * 20; calls != want {
		t.Errorf("Extend evaluated %d distances, want %d (pivots × new points)", calls, want)
	}
	if buildCalls == 0 {
		t.Error("index build evaluated nothing")
	}
	// Extending to a size already covered is a no-op.
	calls = 0
	ix.Extend(120, counted)
	if calls != 0 {
		t.Errorf("no-op Extend evaluated %d distances", calls)
	}
}

// ClusterWithIndex over an extended index must label identically to
// brute-force DBSCAN and to ClusterWithPivots built from scratch.
func TestClusterWithExtendedIndexMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var pts []float64
	for c := 0; c < 3; c++ {
		center := float64(c * 5)
		for i := 0; i < 60; i++ {
			pts = append(pts, center+r.NormFloat64()*0.2)
		}
	}
	for i := 0; i < 15; i++ {
		pts = append(pts, r.Float64()*15)
	}
	dist := euclid1D(pts)
	n := len(pts)
	cfg := Config{Eps: 0.3, MinPts: 5}

	brute := Cluster(n, dist, cfg)

	// Build over the first two-thirds, extend over the rest — the epoch shape.
	ix := NewPivotIndex(2*n/3, dist, 4)
	ix.Extend(n, dist)
	inc := ClusterWithIndex(n, dist, cfg, ix)

	if brute.NumClusters != inc.NumClusters {
		t.Fatalf("clusters: brute %d vs extended-index %d", brute.NumClusters, inc.NumClusters)
	}
	for i := range brute.Labels {
		if brute.Labels[i] != inc.Labels[i] {
			t.Fatalf("label %d: brute %d vs extended-index %d", i, brute.Labels[i], inc.Labels[i])
		}
	}
}
