package interestcache

import (
	"sort"
	"sync"
)

// Heat-based admission (DESIGN.md §17). Every region — resident or shadow —
// accumulates access heat: hits it served plus near-misses (queries it
// contained but could not serve). At each Install the previous generation's
// counters are folded into a persistent book keyed by the region's area
// identity, with exponential aging, and the new generation's candidate
// regions are admitted best-heat-first under the byte budget. Regions the
// budget excludes stay in the snapshot as shadows so they keep collecting
// near-miss heat and can earn their way back in.

// heatEntry is one area identity's book state.
type heatEntry struct {
	heat  float64
	bytes int64 // last known materialised size, 0 when never measured
	seen  int64 // generation the identity last appeared as a candidate
}

// heatBook is the LFU-with-aging ledger. All access happens under the
// cache's install lock plus the book's own mutex (Metrics reads it
// concurrently with Install).
type heatBook struct {
	mu      sync.Mutex
	entries map[string]*heatEntry
}

func newHeatBook() *heatBook {
	return &heatBook{entries: map[string]*heatEntry{}}
}

// fold ages every entry once and adds the generation's observed counters
// (hits + near-misses) for both resident regions and shadows. Entries cold
// and unseen for several generations are dropped.
func (b *heatBook) fold(regions, shadows []*Region, decay float64, generation int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.entries {
		e.heat *= decay
	}
	credit := func(r *Region) {
		e, ok := b.entries[r.identity]
		if !ok {
			e = &heatEntry{}
			b.entries[r.identity] = e
		}
		e.heat += float64(r.hits.Load() + r.nearMisses.Load())
		e.seen = generation
		if !r.shadow {
			e.bytes = r.Bytes
		}
	}
	for _, r := range regions {
		credit(r)
	}
	for _, r := range shadows {
		credit(r)
	}
	for id, e := range b.entries {
		if e.heat < 0.01 && generation-e.seen > 4 {
			delete(b.entries, id)
		}
	}
}

// heat reads an identity's current heat.
func (b *heatBook) heat(identity string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[identity]; ok {
		return e.heat
	}
	return 0
}

// knownBytes reads an identity's last measured store size.
func (b *heatBook) knownBytes(identity string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[identity]; ok {
		return e.bytes
	}
	return 0
}

// setBytes records a freshly measured store size (including for regions
// that were materialised only to be dropped — next install skips the
// wasted build).
func (b *heatBook) setBytes(identity string, n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[identity]; ok {
		e.bytes = n
		return
	}
	b.entries[identity] = &heatEntry{bytes: n}
}

// admission is the planner's verdict for one candidate.
type admission struct {
	candidate int // index into the caller's candidate list
	admit     bool
	probation bool // admitted with zero heat into the probation slice
}

// planAdmissions orders candidates best-heat-first (ties by position, i.e.
// cluster ID order) and admits greedily under the byte budget. Zero-heat
// newcomers first claim the probation reserve — a slice of the budget they
// can always have, so a fully heated cache still gives new interest areas
// immediate residency — then everyone left competes in heat order for the
// full remainder. Exact fits admit. budget <= 0 means unlimited.
//
// Sizes are the book's last known measurements (0 when the store was never
// materialised); Install trims coldest-first after materialising if actual
// sizes overflow the budget, so the plan is optimistic but the resident
// total never exceeds the budget.
func planAdmissions(heats []float64, sizes []int64, budget int64, probationFraction float64) []admission {
	n := len(heats)
	out := make([]admission, n)
	for i := range out {
		out[i].candidate = i
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return heats[order[a]] > heats[order[b]] })
	if budget <= 0 {
		for i := range out {
			out[i].admit = true
			out[i].probation = heats[i] == 0
		}
		return out
	}
	size := func(i int) int64 {
		if sizes[i] < 0 {
			return 0
		}
		return sizes[i]
	}
	// Pass 1: zero-heat newcomers claim the probation reserve (in candidate
	// order — the stable sort keeps equal heats in position order).
	reserve := int64(float64(budget) * probationFraction)
	var used int64
	for _, i := range order {
		if heats[i] != 0 {
			continue
		}
		if sz := size(i); used+sz <= reserve {
			out[i].admit = true
			out[i].probation = true
			used += sz
		}
	}
	// Pass 2: everyone else in heat order under the full budget.
	for _, i := range order {
		if out[i].admit {
			continue
		}
		if sz := size(i); used+sz <= budget {
			out[i].admit = true
			out[i].probation = heats[i] == 0
			used += sz
		}
	}
	return out
}
