package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/aggregate"
	"repro/internal/qlog"
)

// WindowResult is the mining outcome of one time slice.
type WindowResult struct {
	Start, End int64 // logical seconds, [Start, End)
	Result     *Result
}

// TrendEvent describes a cluster appearing, persisting, or vanishing
// between consecutive windows — the "trending research directions" of the
// paper's abstract made operational: the same access-area hotspots, traced
// over time.
type TrendEvent struct {
	Window int // index of the later window
	Kind   TrendKind
	// Signature identifies the cluster across windows (relations plus
	// constrained columns).
	Signature string
	// Cardinality in the later window (0 for vanished).
	Cardinality int
	// Delta is the cardinality change versus the earlier window.
	Delta int
}

// TrendKind classifies trend events.
type TrendKind int

const (
	// ClusterAppeared fires when a signature is first seen.
	ClusterAppeared TrendKind = iota
	// ClusterVanished fires when a signature drops out.
	ClusterVanished
	// ClusterGrew and ClusterShrank fire on ≥25% cardinality moves.
	ClusterGrew
	ClusterShrank
)

func (k TrendKind) String() string {
	switch k {
	case ClusterAppeared:
		return "appeared"
	case ClusterVanished:
		return "vanished"
	case ClusterGrew:
		return "grew"
	default:
		return "shrank"
	}
}

// MineWindows splits the log into fixed-duration windows by record time and
// mines each window independently with this Miner's configuration. Records
// must carry meaningful Time values.
func (m *Miner) MineWindows(recs []qlog.Record, windowSeconds int64) []WindowResult {
	if len(recs) == 0 || windowSeconds <= 0 {
		return nil
	}
	minT, maxT := recs[0].Time, recs[0].Time
	for _, r := range recs {
		if r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	buckets := make(map[int64][]qlog.Record)
	for _, r := range recs {
		buckets[(r.Time-minT)/windowSeconds] = append(buckets[(r.Time-minT)/windowSeconds], r)
	}
	var keys []int64
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []WindowResult
	for _, k := range keys {
		out = append(out, WindowResult{
			Start:  minT + k*windowSeconds,
			End:    minT + (k+1)*windowSeconds,
			Result: m.MineRecords(buckets[k]),
		})
	}
	return out
}

// clusterSignature identifies a cluster across windows by its relations and
// constrained columns (box bounds move; the shape is the identity).
func clusterSignature(c *aggregate.Summary) string {
	parts := append([]string(nil), c.Relations...)
	parts = append(parts, c.Box.Dims()...)
	for col := range c.Categorical {
		parts = append(parts, col+"=") // categorical column marker
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// Trends diffs consecutive windows and reports appearance, disappearance
// and ≥25% cardinality moves per cluster signature.
func Trends(windows []WindowResult) []TrendEvent {
	var events []TrendEvent
	prev := map[string]int{}
	for w, win := range windows {
		cur := map[string]int{}
		for _, c := range win.Result.Clusters {
			cur[clusterSignature(c)] += c.Cardinality
		}
		if w > 0 {
			for sig, card := range cur {
				old, existed := prev[sig]
				switch {
				case !existed:
					events = append(events, TrendEvent{Window: w, Kind: ClusterAppeared, Signature: sig, Cardinality: card, Delta: card})
				case card >= old+(old+3)/4:
					events = append(events, TrendEvent{Window: w, Kind: ClusterGrew, Signature: sig, Cardinality: card, Delta: card - old})
				case card <= old-(old+3)/4:
					events = append(events, TrendEvent{Window: w, Kind: ClusterShrank, Signature: sig, Cardinality: card, Delta: card - old})
				}
			}
			for sig, old := range prev {
				if _, still := cur[sig]; !still {
					events = append(events, TrendEvent{Window: w, Kind: ClusterVanished, Signature: sig, Delta: -old})
				}
			}
		}
		prev = cur
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Window != events[j].Window {
			return events[i].Window < events[j].Window
		}
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		return events[i].Signature < events[j].Signature
	})
	return events
}

// TrendReport renders trend events as text.
func TrendReport(windows []WindowResult, events []TrendEvent) string {
	var b strings.Builder
	for i, w := range windows {
		fmt.Fprintf(&b, "window %d [%d, %d): %d clusters, %d queries in clusters\n",
			i, w.Start, w.End, len(w.Result.Clusters), clusterQueryTotal(w.Result))
	}
	for _, e := range events {
		fmt.Fprintf(&b, "  w%d %-8s %-60s cardinality %d (Δ%+d)\n",
			e.Window, e.Kind, truncateStr(e.Signature, 60), e.Cardinality, e.Delta)
	}
	return b.String()
}

func clusterQueryTotal(r *Result) int {
	n := 0
	for _, c := range r.Clusters {
		n += c.Cardinality
	}
	return n
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
