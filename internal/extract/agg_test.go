package extract

import (
	"testing"
)

// Lemma 1: SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > c,
// dom(T.v) = [inf, supp].

func TestLemma1SupPositive(t *testing.T) {
	// dom(T.v) unbounded => supp > 0 => access area is T (HAVING vacuous).
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) > 100")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s, want TRUE", a.CNF)
	}
	if !a.Exact {
		t.Error("Lemma 1 mapping is exact")
	}
}

func TestLemma1SupNonPositiveCGreaterThanSup(t *testing.T) {
	// NEG.v has dom [-10, 0]; supp = 0 <= 0 and c = 5 > supp => ∅.
	a := extractQ(t, "SELECT u, SUM(v) FROM NEG GROUP BY u HAVING SUM(v) > 5")
	if !a.IsEmpty() {
		t.Errorf("area = %s, want empty", a)
	}
}

func TestLemma1SupNonPositiveCInDomain(t *testing.T) {
	// c = -5 ∈ dom => σ_{v > -5}(NEG).
	a := extractQ(t, "SELECT u, SUM(v) FROM NEG GROUP BY u HAVING SUM(v) > -5")
	wantClauses(t, a, "NEG.v > -5")
}

func TestLemma1SupNonPositiveCBelowInf(t *testing.T) {
	// c = -100 < inf = -10 => access area is NEG (vacuous).
	a := extractQ(t, "SELECT u, SUM(v) FROM NEG GROUP BY u HAVING SUM(v) > -100")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s, want TRUE", a.CNF)
	}
}

// Lemma 2: WHERE T.v < c1 ... HAVING SUM(T.v) > c2 over unbounded dom(T.v).

func TestLemma2C1Positive(t *testing.T) {
	// c1 = 3 > 0 => σ_{v < 3}(T): the HAVING adds nothing.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T WHERE T.v < 3 GROUP BY T.u HAVING SUM(T.v) > 100")
	wantClauses(t, a, "T.v < 3")
}

func TestLemma2C1NonPosC2NonNeg(t *testing.T) {
	// c1 = -1 <= 0 and c2 = 5 >= 0 => ∅.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 GROUP BY T.u HAVING SUM(T.v) > 5")
	if !a.IsEmpty() {
		t.Errorf("area = %s, want empty", a)
	}
}

func TestLemma2C1NonPosC2NegBelowC1(t *testing.T) {
	// c1 = -1, c2 = -5 < c1 => σ_{v < -1 ∧ v > -5}(T).
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 GROUP BY T.u HAVING SUM(T.v) > -5")
	wantClauses(t, a, "T.v < -1", "T.v > -5")
}

func TestLemma2C1NonPosC2NegAboveC1(t *testing.T) {
	// c1 = -5, c2 = -1: c2 >= c1 => ∅.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -5 GROUP BY T.u HAVING SUM(T.v) > -1")
	if !a.IsEmpty() {
		t.Errorf("area = %s, want empty", a)
	}
}

// Lemma 3: WHERE T.v > c1 ... HAVING SUM(T.v) > c2 => σ_{v > c1}(T).

func TestLemma3(t *testing.T) {
	for _, q := range []string{
		"SELECT T.u, SUM(T.v) FROM T WHERE T.v > 2 GROUP BY T.u HAVING SUM(T.v) > 100",
		"SELECT T.u, SUM(T.v) FROM T WHERE T.v > -7 GROUP BY T.u HAVING SUM(T.v) > 100",
	} {
		a := extractQ(t, q)
		if len(a.CNF) != 1 || len(a.CNF[0]) != 1 || a.CNF[0][0].Column != "T.v" {
			t.Errorf("%s: cnf = %s, want only the WHERE bound", q, a.CNF)
		}
	}
}

// Symmetric SUM directions.

func TestSumLessThan(t *testing.T) {
	// Unbounded domain => negatives exist => SUM < c vacuous.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) < 10")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// POS.v ∈ [0, 10]: all non-negative, c = -3 < inf => ∅.
	a = extractQ(t, "SELECT u, SUM(v) FROM POS GROUP BY u HAVING SUM(v) < -3")
	if !a.IsEmpty() {
		t.Errorf("area = %s, want empty", a)
	}
	// POS with c = 4 => σ_{v < 4}.
	a = extractQ(t, "SELECT u, SUM(v) FROM POS GROUP BY u HAVING SUM(v) < 4")
	wantClauses(t, a, "POS.v < 4")
}

func TestSumEquality(t *testing.T) {
	// Mixed-sign domain: SUM = c always reachable => vacuous.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) = 42")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// Non-negative domain: only tuples with v <= c can be in a group
	// summing to c.
	a = extractQ(t, "SELECT u, SUM(v) FROM POS GROUP BY u HAVING SUM(v) = 4")
	wantClauses(t, a, "POS.v <= 4")
	// c below every possible sum => ∅.
	a = extractQ(t, "SELECT u, SUM(v) FROM POS GROUP BY u HAVING SUM(v) = -1")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
}

// COUNT: HAVING constrains no column; only satisfiability matters.

func TestCountVacuousWhenSatisfiable(t *testing.T) {
	for _, q := range []string{
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) > 5",
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) >= 1",
		"SELECT T.u, COUNT(v) FROM T GROUP BY T.u HAVING COUNT(v) = 3",
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) <> 2",
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) < 10",
	} {
		a := extractQ(t, q)
		if !a.CNF.IsTrue() {
			t.Errorf("%s: cnf = %s, want TRUE", q, a.CNF)
		}
	}
}

func TestCountUnsatisfiable(t *testing.T) {
	for _, q := range []string{
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) < 1",
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) = 0",
		"SELECT T.u, COUNT(*) FROM T GROUP BY T.u HAVING COUNT(*) = 2.5",
	} {
		a := extractQ(t, q)
		if !a.IsEmpty() {
			t.Errorf("%s: area = %s, want empty", q, a)
		}
	}
}

func TestCountWithWhereKeepsWhere(t *testing.T) {
	a := extractQ(t, "SELECT T.u, COUNT(*) FROM T WHERE T.v > 2 GROUP BY T.u HAVING COUNT(*) > 5")
	wantClauses(t, a, "T.v > 2")
}

// MIN / MAX.

func TestMinConstrainingDirections(t *testing.T) {
	a := extractQ(t, "SELECT T.u, MIN(T.v) FROM T GROUP BY T.u HAVING MIN(T.v) < 7")
	wantClauses(t, a, "T.v < 7")
	a = extractQ(t, "SELECT T.u, MIN(T.v) FROM T GROUP BY T.u HAVING MIN(T.v) <= 7")
	wantClauses(t, a, "T.v <= 7")
	a = extractQ(t, "SELECT T.u, MIN(T.v) FROM T GROUP BY T.u HAVING MIN(T.v) = 7")
	wantClauses(t, a, "T.v <= 7")
}

func TestMinVacuousDirections(t *testing.T) {
	a := extractQ(t, "SELECT T.u, MIN(T.v) FROM T GROUP BY T.u HAVING MIN(T.v) > 7")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

func TestMinUnsatisfiable(t *testing.T) {
	// POS.v ∈ [0,10]: MIN > 20 impossible.
	a := extractQ(t, "SELECT u, MIN(v) FROM POS GROUP BY u HAVING MIN(v) > 20")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
	// MIN < 0 on POS: v < 0 impossible but the mapped predicate v < 0
	// contradicts dom => empty via domain bound.
	a = extractQ(t, "SELECT u, MIN(v) FROM POS GROUP BY u HAVING MIN(v) < -1")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
}

func TestMaxConstrainingDirections(t *testing.T) {
	a := extractQ(t, "SELECT T.u, MAX(T.v) FROM T GROUP BY T.u HAVING MAX(T.v) > 7")
	wantClauses(t, a, "T.v > 7")
	a = extractQ(t, "SELECT T.u, MAX(T.v) FROM T GROUP BY T.u HAVING MAX(T.v) = 7")
	wantClauses(t, a, "T.v >= 7")
	a = extractQ(t, "SELECT T.u, MAX(T.v) FROM T GROUP BY T.u HAVING MAX(T.v) < 7")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

// AVG.

func TestAvgSatisfiabilityOnly(t *testing.T) {
	a := extractQ(t, "SELECT T.u, AVG(T.v) FROM T GROUP BY T.u HAVING AVG(T.v) > 7")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// POS.v ∈ [0, 10]: AVG > 20 unsatisfiable.
	a = extractQ(t, "SELECT u, AVG(v) FROM POS GROUP BY u HAVING AVG(v) > 20")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
	a = extractQ(t, "SELECT u, AVG(v) FROM POS GROUP BY u HAVING AVG(v) = 5")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	a = extractQ(t, "SELECT u, AVG(v) FROM POS GROUP BY u HAVING AVG(v) = 25")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
}

// Effective domain: WHERE bounds narrow dom(a) like in Lemma 2/3.

func TestEffectiveDomainFromWhere(t *testing.T) {
	// dom(T.v) unbounded, but WHERE v < -1 makes supp = -1 <= 0, so
	// HAVING SUM(v) > -5 constrains: σ_{v < -1 ∧ v > -5}.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 GROUP BY T.u HAVING SUM(T.v) > -5")
	wantClauses(t, a, "T.v < -1", "T.v > -5")
}

// HAVING on a column not in any FROM relation is ignored (Section 4.3).

func TestHavingUnknownColumnIgnored(t *testing.T) {
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING SUM(Q.z) > 5")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s, want TRUE", a.CNF)
	}
}

// HAVING combinations.

func TestHavingConjunction(t *testing.T) {
	a := extractQ(t, "SELECT T.u, MIN(T.v) FROM T GROUP BY T.u HAVING MIN(T.v) < 7 AND MAX(T.v) > 2")
	wantClauses(t, a, "T.v < 7", "T.v > 2")
}

func TestHavingReversedComparison(t *testing.T) {
	// "c < AGG(a)" flips to "AGG(a) > c".
	a := extractQ(t, "SELECT T.u, MAX(T.v) FROM T GROUP BY T.u HAVING 7 < MAX(T.v)")
	wantClauses(t, a, "T.v > 7")
}

func TestHavingPlainColumnPredicate(t *testing.T) {
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING T.u > 3")
	wantClauses(t, a, "T.u > 3")
}

func TestHavingBetweenAggregate(t *testing.T) {
	// SUM BETWEEN -5 AND -1 with WHERE v < -1: lower bound constrains v > -5,
	// upper bound adds v... SUM <= -1 with sup=-1<0 => inf<0 => vacuous.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T WHERE T.v < -1 GROUP BY T.u HAVING SUM(T.v) BETWEEN -5 AND -1")
	wantClauses(t, a, "T.v < -1", "T.v >= -5")
}

func TestHavingAggregateOverExpressionApprox(t *testing.T) {
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING SUM(T.v + T.s) > 5")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

// Additional HAVING shapes exercising the convertHavingExpr walker.

func TestHavingOrOfAggregates(t *testing.T) {
	// MIN(v) < 2 OR MAX(v) > 8: disjunction of constraining directions.
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING MIN(T.v) < 2 OR MAX(T.v) > 8")
	wantClauses(t, a, "T.v < 2 OR T.v > 8")
}

func TestHavingNotAggregate(t *testing.T) {
	// NOT (MIN(v) < 2): negating a mapped constraint is approximate.
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING NOT (MIN(T.v) < 2)")
	if a.Exact {
		t.Error("negated aggregate HAVING must be approximate")
	}
	wantClauses(t, a, "T.v >= 2")
}

func TestHavingNotBetweenAggregate(t *testing.T) {
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING MIN(T.v) NOT BETWEEN 2 AND 8")
	if a.Exact {
		t.Error("approximate")
	}
	// NOT(min >= 2 AND min <= 8) = min < 2 OR min > 8 -> v < 2 OR vacuous.
	if a.CNF.IsFalse() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

func TestMinMaxRemainingDirections(t *testing.T) {
	// MIN <> c over an unbounded domain: vacuous.
	a := extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING MIN(T.v) <> 7")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// MAX <> c: vacuous too.
	a = extractQ(t, "SELECT T.u FROM T GROUP BY T.u HAVING MAX(T.v) <> 7")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// MAX >= c on a bounded domain that cannot reach c: empty.
	a = extractQ(t, "SELECT u, MAX(v) FROM POS GROUP BY u HAVING MAX(v) >= 20")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
	// MAX <= c: vacuous when satisfiable.
	a = extractQ(t, "SELECT u, MAX(v) FROM POS GROUP BY u HAVING MAX(v) <= 5")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// MIN = c outside the domain: empty.
	a = extractQ(t, "SELECT u, MIN(v) FROM POS GROUP BY u HAVING MIN(v) = 50")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
	// MIN <= c below the domain: empty.
	a = extractQ(t, "SELECT u, MIN(v) FROM POS GROUP BY u HAVING MIN(v) <= -1")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
	// MIN >= c: satisfiable -> vacuous.
	a = extractQ(t, "SELECT u, MIN(v) FROM POS GROUP BY u HAVING MIN(v) >= 5")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// MAX = c inside the domain: v >= c.
	a = extractQ(t, "SELECT u, MAX(v) FROM POS GROUP BY u HAVING MAX(v) = 5")
	wantClauses(t, a, "POS.v >= 5")
	// MIN <> c on a point domain: empty. (Domain {0} via WHERE pinning.)
	a = extractQ(t, "SELECT u, MIN(v) FROM POS WHERE v = 0 GROUP BY u HAVING MIN(v) <> 0")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
}

func TestSumNotEqual(t *testing.T) {
	// SUM <> c: vacuous on non-degenerate domains.
	a := extractQ(t, "SELECT T.u, SUM(T.v) FROM T GROUP BY T.u HAVING SUM(T.v) <> 5")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	// Degenerate domain {0}: SUM is always 0, so <> 0 is unsatisfiable.
	a = extractQ(t, "SELECT u, SUM(v) FROM POS WHERE v = 0 GROUP BY u HAVING SUM(v) <> 0")
	if !a.IsEmpty() {
		t.Errorf("area = %s", a)
	}
	a = extractQ(t, "SELECT u, SUM(v) FROM POS WHERE v = 0 GROUP BY u HAVING SUM(v) <> 3")
	if !a.CNF.IsTrue() && !a.IsEmpty() {
		// v = 0 remains as the WHERE constraint.
		wantClauses(t, a, "POS.v = 0")
	}
}
