package experiments

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/skyserver"
)

// ShardRun is one shard-count measurement of the sharded serving stack.
type ShardRun struct {
	Shards int `json:"shards"`
	// IngestSeconds is the slowest shard's isolated ingest wall — the
	// deployment's ingest time, since each shard is a separate machine and
	// the deployment finishes when the last one does. ThroughputRPS is total
	// records over that wall (aggregate deployment throughput).
	IngestSeconds float64 `json:"ingest_seconds"`
	ThroughputRPS float64 `json:"throughput_records_per_sec"`
	Retries429    int     `json:"retries_429"`

	// EpochWallMaxMS is the slowest shard's final (forced, full) epoch — the
	// critical-path re-cluster latency a real multi-node deployment pays,
	// since shards run their epochs on separate machines concurrently.
	EpochWallMaxMS float64 `json:"final_epoch_wall_max_ms"`
	// EpochTotalSumMS is the aggregate epoch CPU time across all shards over
	// the whole run (the total mining work the topology performed).
	EpochTotalSumMS float64 `json:"epoch_wall_total_sum_ms"`
	Epochs          int64   `json:"epochs_total"`
	DistinctAreas   int     `json:"merged_distinct_areas"`
	Clusters        int     `json:"merged_clusters"`

	RouteNSPerRecord float64 `json:"route_ns_per_record"`
	RouteOverheadPct float64 `json:"route_overhead_pct_of_ingest"`
	LoadImbalance    float64 `json:"load_imbalance_max_over_mean"`

	MatchesBatch bool `json:"matches_batch_miner"`
	MergeExact   bool `json:"merge_exact"`
}

// ShardPerfResult is the outcome of the sharded-coordinator experiment: the
// serveperf workload partitioned by the relation-set router at 1, 2, 4 and 8
// shards with mining-lag-bounded admission, so ingest throughput is paced by
// mining capacity and the shard counts are directly comparable. Each shard
// ingests its slice in isolation (the harness is one core; a deployment
// gives each shard its own machine, so per-shard walls compose by max, not
// by timesharing), then runs its final epoch, and the coordinator merges the
// results into the global report that is byte-compared to the batch miner.
// The 1-shard run goes through the identical router/serve/coordinator stack,
// so the speedups isolate sharding itself. cmd/benchreport serialises it to
// BENCH_shard.json.
type ShardPerfResult struct {
	Queries      int   `json:"queries"`
	Seed         int64 `json:"seed"`
	BurstSize    int   `json:"burst_size"`
	EpochAreas   int   `json:"epoch_areas"`
	MaxMiningLag int   `json:"max_mining_lag"`

	Runs []ShardRun `json:"runs"`

	// Headline ratios, 4-shard run over the 1-shard baseline.
	ThroughputSpeedup4x float64 `json:"throughput_speedup_4_shards"`
	EpochWallSpeedup4x  float64 `json:"final_epoch_wall_speedup_4_shards"`

	// IdenticalMergedReport gates (via benchcmp's identical_* rule) that
	// every shard count produced a merged /report byte-identical to the
	// batch miner over the same records.
	IdenticalMergedReport bool `json:"identical_merged_report"`

	Report string `json:"-"`
}

// shardServeConfig is the per-shard server configuration: the serveperf
// shape plus mining-lag-bounded admission and delta epochs (the recommended
// serving mode), Coverage left to the coordinator's merged view.
func shardServeConfig(e *Env, stats *schema.Stats, tcache *extract.TemplateCache, epochAreas, maxLag int) serve.Config {
	return serve.Config{
		Miner: core.Config{
			Schema: e.Schema, Stats: stats, Seed: e.Seed,
			DeltaEpochs: true,
		},
		Templates:    tcache,
		QueueSize:    512,
		BatchSize:    128,
		EpochAreas:   epochAreas,
		MaxMiningLag: maxLag,
	}
}

// RunShardPerf measures the sharded coordinator at each shard count.
func (e *Env) RunShardPerf() *ShardPerfResult {
	const (
		burstSize  = 200
		epochAreas = 256
		maxLag     = 512
	)
	shardCounts := []int{1, 2, 4, 8}

	// Batch reference over the identical log with an identically-seeded
	// private registry; its JSON report is the byte-identity oracle.
	batchStats := schema.NewStats()
	skyserver.SeedStats(e.DB, batchStats)
	batchRes := core.NewMiner(core.Config{Schema: e.Schema, Stats: batchStats, Seed: e.Seed}).MineRecords(e.Records)
	batchRes.AttachCoverage(e.DB)
	var batchReport bytes.Buffer
	_ = report.Write(&batchReport, batchRes, report.JSON, report.Options{Coverage: true})

	out := &ShardPerfResult{
		Queries: e.Scale, Seed: e.Seed,
		BurstSize: burstSize, EpochAreas: epochAreas, MaxMiningLag: maxLag,
		IdenticalMergedReport: true,
	}

	for _, n := range shardCounts {
		run, err := e.runOneShardCount(n, burstSize, epochAreas, maxLag, batchReport.Bytes())
		if err != nil {
			out.Report = fmt.Sprintf("shardperf: %d shards: %v\n", n, err)
			out.IdenticalMergedReport = false
			return out
		}
		out.Runs = append(out.Runs, *run)
		if !run.MatchesBatch {
			out.IdenticalMergedReport = false
		}
	}

	base := out.Runs[0]
	for _, run := range out.Runs {
		if run.Shards == 4 {
			if base.ThroughputRPS > 0 {
				out.ThroughputSpeedup4x = run.ThroughputRPS / base.ThroughputRPS
			}
			if run.EpochWallMaxMS > 0 {
				out.EpochWallSpeedup4x = base.EpochWallMaxMS / run.EpochWallMaxMS
			}
		}
	}
	out.Report = out.render()
	return out
}

func (e *Env) runOneShardCount(n, burstSize, epochAreas, maxLag int, batchReport []byte) (*ShardRun, error) {
	stats := schema.NewStats()
	skyserver.SeedStats(e.DB, stats)
	tcache := &extract.TemplateCache{}
	router := shard.NewRouter(n, e.Schema, 0, tcache, 0)
	nodes := make([]shard.Node, n)
	servers := make([]*serve.Server, n)
	for i := 0; i < n; i++ {
		s, err := serve.NewServer(shardServeConfig(e, stats, tcache, epochAreas, maxLag))
		if err != nil {
			return nil, err
		}
		servers[i] = s
		nodes[i] = shard.NewLocalNode(fmt.Sprintf("shard-%d", i), s)
	}

	run := &ShardRun{Shards: n}

	// Phase 1 — route. The warmup-staged router observes the first ~1k
	// area-bearing records, bin-packs the staged keys onto shards, and
	// partitions the log. Staged buffers are delivered at bind time, so each
	// key's records stay in arrival order.
	perShard := make([][]qlog.Record, n)
	staged := make(map[string][]qlog.Record)
	deliver := func() {
		bound := router.BindAll()
		keys := make([]string, 0, len(bound))
		for k := range bound {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			perShard[bound[k]] = append(perShard[bound[k]], staged[k]...)
			delete(staged, k)
		}
	}
	for _, rec := range e.Records {
		i, key := router.Route(rec)
		if i == shard.ShardStaged {
			staged[key] = append(staged[key], rec)
			if router.NeedsBind() {
				deliver()
			}
			continue
		}
		perShard[i] = append(perShard[i], rec)
	}
	// Unconditional: binds whatever is still staged when the log ends short
	// of the warmup horizon.
	deliver()

	// Phase 2 — ingest each shard IN ISOLATION, sequentially. The harness
	// host is one core, so running shards concurrently would just timeslice
	// it and hide the scaling; a real deployment gives each shard its own
	// machine. Each shard's wall clock alone is its machine's ingest time;
	// the deployment finishes when the slowest shard does, so the topology's
	// ingest wall is the max, and throughput is total records over that max.
	shardHTTP := make([]*httptest.Server, n)
	for i := range servers {
		shardHTTP[i] = httptest.NewServer(servers[i].Handler())
		defer shardHTTP[i].Close()
	}
	var maxWall float64
	for i := 0; i < n; i++ {
		t0 := time.Now()
		for lo := 0; lo < len(perShard[i]); lo += burstSize {
			hi := lo + burstSize
			if hi > len(perShard[i]) {
				hi = len(perShard[i])
			}
			retries, err := postUntilAccepted(shardHTTP[i].URL+"/ingest", perShard[i][lo:hi])
			if err != nil {
				return nil, fmt.Errorf("shard %d ingest: %w", i, err)
			}
			run.Retries429 += retries
		}
		// Quiesce inside the shard's own wall: acceptance is async, and the
		// machine isn't done until its pipeline has mined (and observed into
		// the stats registry) everything it accepted. This is also what makes
		// phase 3 sound — no epoch may run while any shard still observes.
		for {
			tel := servers[i].Telemetry()
			if tel.Processed >= tel.Accepted {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if wall := time.Since(t0).Seconds(); wall > maxWall {
			maxWall = wall
		}
	}
	run.IngestSeconds = maxWall
	if maxWall > 0 {
		run.ThroughputRPS = float64(len(e.Records)) / maxWall
	}

	// Phase 3 — final full epochs, one shard at a time and only after every
	// shard finished ingesting (the shared stats registry is final, so each
	// epoch compiles the same distance profiles a batch mine would). The
	// deployment's re-cluster wall is the slowest shard's epoch, since the
	// machines run them concurrently.
	for i, s := range servers {
		if resp, err := http.Post(shardHTTP[i].URL+"/flush", "", nil); err != nil {
			return nil, err
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("shard %d flush status %d", i, resp.StatusCode)
			}
		}
		tel := s.Telemetry()
		if tel.EpochLastMS > run.EpochWallMaxMS {
			run.EpochWallMaxMS = tel.EpochLastMS
		}
		run.EpochTotalSumMS += tel.EpochTotalMS
		run.Epochs += tel.Epochs
	}

	// Phase 4 — the coordinator merges the per-shard results into the global
	// report (its flush re-asks each shard for an epoch, which the shards'
	// idempotent flush guard answers from the epoch just run).
	coord, err := shard.NewCoordinator(shard.Config{
		Router:    router,
		Nodes:     nodes,
		QueueSize: 512,
		BatchSize: 128,
		Coverage:  e.DB,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	if resp, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		return nil, err
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("flush status %d", resp.StatusCode)
		}
	}

	merged, _, _ := coord.Merged()
	if merged != nil {
		run.DistinctAreas = merged.DistinctAreas
		run.Clusters = len(merged.Clusters)
	}
	run.MergeExact = coord.MergeIsExact()

	if routed := router.Routed(); routed > 0 {
		run.RouteNSPerRecord = float64(router.RouteNanos()) / float64(routed)
	}
	if run.IngestSeconds > 0 {
		run.RouteOverheadPct = 100 * float64(router.RouteNanos()) / 1e9 / run.IngestSeconds
	}
	loads := router.Loads()
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum > 0 && len(loads) > 0 {
		run.LoadImbalance = float64(max) / (float64(sum) / float64(len(loads)))
	}

	mergedReport, err := fetchReport(ts.URL)
	if err != nil {
		return nil, err
	}
	run.MatchesBatch = bytes.Equal(mergedReport, batchReport)
	return run, nil
}

func (r *ShardPerfResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15 shardperf — relation-set-sharded coordinator at 1/2/4/8 shards (%d queries, mining-lag bound %d)\n\n",
		r.Queries, r.MaxMiningLag)
	fmt.Fprintf(&b, "%-7s %10s %9s %12s %13s %8s %9s %7s %6s\n",
		"shards", "rec/s", "ingest_s", "final_ep_ms", "ep_total_ms", "route_ns", "imbal", "match", "exact")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-7d %10.0f %9.2f %12.0f %13.0f %8.0f %9.2f %7v %6v\n",
			run.Shards, run.ThroughputRPS, run.IngestSeconds, run.EpochWallMaxMS,
			run.EpochTotalSumMS, run.RouteNSPerRecord, run.LoadImbalance,
			run.MatchesBatch, run.MergeExact)
	}
	fmt.Fprintf(&b, "\n4-shard speedup vs 1-shard baseline (same coordinator stack):\n")
	fmt.Fprintf(&b, "  ingest throughput: %.2fx\n", r.ThroughputSpeedup4x)
	fmt.Fprintf(&b, "  final epoch wall (slowest shard): %.2fx\n", r.EpochWallSpeedup4x)
	fmt.Fprintf(&b, "merged report identical to batch miner at every shard count: %v\n", r.IdenticalMergedReport)
	return b.String()
}
