package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/interestcache"
	"repro/internal/interval"
	"repro/internal/memdb"
)

// BudgetPoint is one measurement of the budget curve (E18): the cache
// rebuilt under a byte budget, warmed on the first half of the log so the
// heat book learns which regions matter, re-installed heat-ordered, then
// replayed against the full log.
type BudgetPoint struct {
	BudgetBytes     int64   `json:"budget_bytes"`
	BytesResident   int64   `json:"bytes_resident"`
	RegionsResident int     `json:"regions_resident"`
	Hits            int64   `json:"hits"`
	Misses          int64   `json:"misses"`
	HitRatio        float64 `json:"hit_ratio"`
}

// SemCachePerfResult is the outcome of the semantic-result-cache experiment
// (E13 + E18): the Table-1 synthetic workload replayed against the
// interest-driven cache built from the miner's own clusters. Phases: (1) a
// full oracle pass proving every cache-served result byte-identical to
// direct execution, (2) an uncached direct-execution baseline, (3) the
// cached run (hit ratio and speedup), (4) an always-miss run isolating the
// miss-path overhead, (5) a staleness probe — regions mined from the first
// half of the log serving the second half, then re-mined at full coverage,
// (6) aggregate pushdown — derived HAVING probes answered whole from one
// region, (7) composition — every splittable cluster bisected into two
// half-regions, the full workload replayed over covering sets and the
// HAVING probes answered by partial-aggregate combine, all under the byte
// oracle, and (8) the budget curve — residency vs hit ratio at full, half
// and quarter budget with heat-based admission. cmd/benchreport serialises
// it to BENCH_semcache.json.
type SemCachePerfResult struct {
	Queries int   `json:"queries"`
	Seed    int64 `json:"seed"`
	Rows    int   `json:"rows_per_table"`
	Regions int   `json:"regions"`

	OracleChecked int64 `json:"oracle_checked"`
	OracleFailed  int64 `json:"oracle_failed"`

	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRatio    float64 `json:"hit_ratio"`
	BytesServed int64   `json:"bytes_served"`

	DirectSeconds float64 `json:"direct_seconds"`
	CachedSeconds float64 `json:"cached_seconds"`
	Speedup       float64 `json:"speedup"`

	MissSeconds       float64 `json:"miss_seconds"`
	MissOverheadRatio float64 `json:"miss_overhead_ratio"`

	StaleHitRatio float64 `json:"stale_hit_ratio"`
	FreshHitRatio float64 `json:"fresh_hit_ratio"`

	// Composition and aggregate pushdown (v2). ComposedChecked counts the
	// byte-oracle comparisons of the split-region replay; the identical_*
	// booleans are the deterministic CI gates — each true only when the
	// path actually served traffic AND never diverged from direct
	// execution.
	AggProbes       int     `json:"agg_probes"`
	AggHits         int64   `json:"agg_hits"`
	PreaggHits      int64   `json:"preagg_hits"`
	ComposedChecked int64   `json:"composed_checked"`
	ComposedHits    int64   `json:"composed_hits"`
	ComposedRatio   float64 `json:"composed_ratio"`

	IdenticalSingleRegion bool `json:"identical_single_region"`
	IdenticalComposed     bool `json:"identical_composed"`
	IdenticalPreagg       bool `json:"identical_preagg"`

	// Budget curve (v2): bytes-resident vs hit-ratio at full, half and
	// quarter of the unlimited residency, after a half-log heat warmup.
	FullResidencyBytes   int64         `json:"full_residency_bytes"`
	BudgetCurve          []BudgetPoint `json:"budget_curve"`
	HitRatioAtHalfBudget float64       `json:"hit_ratio_at_half_budget"`

	Report string `json:"-"`
}

// RunSemCachePerf mines the workload, installs the clusters into the cache,
// and measures correctness, hit ratio, speedup, staleness, composition,
// aggregate pushdown and budget behaviour.
func RunSemCachePerf(scale int, seed int64) (*SemCachePerfResult, error) {
	env := NewEnvRows(scale, seed, 800)
	miner := env.Miner()
	full := miner.MineRecords(env.Records)
	if len(full.Clusters) == 0 {
		return nil, fmt.Errorf("semcacheperf: mining produced no clusters")
	}
	opts := memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	newCache := func(verify bool, budget int64) *interestcache.Cache {
		return interestcache.New(interestcache.Config{
			DB:          env.DB,
			Extractor:   &extract.Extractor{Schema: env.Schema, Stats: miner.Stats()},
			Templates:   &extract.TemplateCache{},
			Exec:        opts,
			Verify:      verify,
			BudgetBytes: budget,
		})
	}
	res := &SemCachePerfResult{Queries: scale, Seed: seed, Rows: 800}

	// Phase 1 — oracle: every cache-served result byte-identical to direct.
	oracle := newCache(true, 0)
	oracle.Install(1, full.Clusters)
	res.Regions = len(oracle.Regions())
	for _, rec := range env.Records {
		oracle.Query(rec.SQL)
	}
	om := oracle.Metrics()
	res.OracleChecked, res.OracleFailed = om.VerifyChecked, om.VerifyFailed
	res.IdenticalSingleRegion = om.VerifyFailed == 0 && om.Hits > 0

	// Phase 2 — direct baseline over the same statements.
	t0 := time.Now()
	for _, rec := range env.Records {
		env.DB.ExecuteSQL(rec.SQL, opts)
	}
	res.DirectSeconds = time.Since(t0).Seconds()

	// Phase 3 — cached run, verification off, templates cold (they warm
	// within the run exactly as a serving process would).
	cached := newCache(false, 0)
	cached.Install(1, full.Clusters)
	t0 = time.Now()
	for _, rec := range env.Records {
		cached.Query(rec.SQL)
	}
	res.CachedSeconds = time.Since(t0).Seconds()
	cm := cached.Metrics()
	res.Hits, res.Misses, res.BytesServed = cm.Hits, cm.Misses, cm.BytesServed
	if total := cm.Hits + cm.Misses; total > 0 {
		res.HitRatio = float64(cm.Hits) / float64(total)
	}
	if res.CachedSeconds > 0 {
		res.Speedup = res.DirectSeconds / res.CachedSeconds
	}
	res.FullResidencyBytes = cm.BytesResident

	// Phase 4 — miss-path overhead: a decoy region on a relation no
	// workload query reads forces the full lookup path (fingerprint,
	// extraction, index probe) on every statement, with every statement
	// still answered directly.
	missOnly := newCache(false, 0)
	decoyBox := interval.NewBox()
	decoyBox.Set("NoSuchRelation.x", interval.Closed(0, 1))
	missOnly.Install(1, []*aggregate.Summary{
		{ID: 999, Relations: []string{"NoSuchRelation"}, Box: decoyBox},
	})
	t0 = time.Now()
	for _, rec := range env.Records {
		missOnly.Query(rec.SQL)
	}
	res.MissSeconds = time.Since(t0).Seconds()
	if res.DirectSeconds > 0 {
		res.MissOverheadRatio = res.MissSeconds / res.DirectSeconds
	}

	// Phase 5 — staleness window: regions mined from the first half of the
	// log serve the second half (the stale regime a slow epoch cadence
	// produces), then a re-mine restores full coverage.
	half := len(env.Records) / 2
	halfRes := env.Miner().MineRecords(env.Records[:half])
	stale := newCache(false, 0)
	stale.Install(1, halfRes.Clusters)
	for _, rec := range env.Records[half:] {
		stale.Query(rec.SQL)
	}
	sm := stale.Metrics()
	if total := sm.Hits + sm.Misses; total > 0 {
		res.StaleHitRatio = float64(sm.Hits) / float64(total)
	}
	stale.Install(2, full.Clusters)
	fresh0 := stale.Metrics()
	for _, rec := range env.Records[half:] {
		stale.Query(rec.SQL)
	}
	fm := stale.Metrics()
	if total := (fm.Hits - fresh0.Hits) + (fm.Misses - fresh0.Misses); total > 0 {
		res.FreshHitRatio = float64(fm.Hits-fresh0.Hits) / float64(total)
	}

	// Phase 6 — aggregate pushdown: HAVING probes derived from the mined
	// clusters, each contained in one region, answered by executing the
	// full aggregate statement on the region store. Verified by the byte
	// oracle.
	probes := AggProbes(full.Clusters)
	res.AggProbes = len(probes)
	aggCache := newCache(true, 0)
	aggCache.Install(1, full.Clusters)
	for _, sql := range probes {
		aggCache.Query(sql)
	}
	am := aggCache.Metrics()
	res.AggHits = am.AggHits
	res.OracleChecked += am.VerifyChecked
	res.OracleFailed += am.VerifyFailed

	// Phase 7 — composition: every splittable cluster bisected into two
	// half-regions, so the workload's former single-region hits now need a
	// covering set (positional-dedup union stores) and the HAVING probes
	// need the partial-aggregate combine. The whole replay runs under the
	// byte oracle.
	splitCache := newCache(true, 0)
	splitCache.Install(1, SplitClusters(full.Clusters))
	for _, rec := range env.Records {
		splitCache.Query(rec.SQL)
	}
	for _, sql := range probes {
		splitCache.Query(sql)
	}
	pm := splitCache.Metrics()
	res.ComposedChecked = pm.VerifyChecked
	res.ComposedHits = pm.ComposedHits
	res.PreaggHits = pm.PreaggHits
	if total := pm.Hits + pm.Misses; total > 0 {
		res.ComposedRatio = float64(pm.ComposedHits) / float64(total)
	}
	res.OracleChecked += pm.VerifyChecked
	res.OracleFailed += pm.VerifyFailed
	res.IdenticalComposed = pm.VerifyFailed == 0 && pm.ComposedHits > 0
	res.IdenticalPreagg = pm.VerifyFailed == 0 && am.VerifyFailed == 0 &&
		pm.PreaggHits > 0 && am.AggHits > 0

	if res.OracleFailed != 0 {
		return nil, fmt.Errorf("semcacheperf: %d oracle failures", res.OracleFailed)
	}

	// Phase 8 — budget curve: rebuild the cache under full, half and
	// quarter of the unlimited residency. Each point cold-installs, warms
	// heat on the first half of the log (hits on residents, near-misses on
	// shadows), re-installs heat-ordered, then replays the full log.
	for _, budget := range []int64{
		res.FullResidencyBytes,
		res.FullResidencyBytes / 2,
		res.FullResidencyBytes / 4,
	} {
		bc := newCache(false, budget)
		bc.Install(1, full.Clusters)
		for _, rec := range env.Records[:half] {
			bc.Query(rec.SQL)
		}
		bc.Install(2, full.Clusters)
		m0 := bc.Metrics()
		for _, rec := range env.Records {
			bc.Query(rec.SQL)
		}
		m1 := bc.Metrics()
		pt := BudgetPoint{
			BudgetBytes:     budget,
			BytesResident:   m1.BytesResident,
			RegionsResident: m1.Regions,
			Hits:            m1.Hits - m0.Hits,
			Misses:          m1.Misses - m0.Misses,
		}
		if total := pt.Hits + pt.Misses; total > 0 {
			pt.HitRatio = float64(pt.Hits) / float64(total)
		}
		res.BudgetCurve = append(res.BudgetCurve, pt)
	}
	res.HitRatioAtHalfBudget = res.BudgetCurve[1].HitRatio

	res.Report = res.render()
	return res, nil
}

func (r *SemCachePerfResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13+E18 semcacheperf — interest-driven semantic result cache v2 (%d queries, %d regions)\n\n", r.Queries, r.Regions)
	fmt.Fprintf(&b, "oracle: %d cache-served results checked against direct execution, %d mismatches\n", r.OracleChecked, r.OracleFailed)
	fmt.Fprintf(&b, "hit ratio: %.3f (%d hits / %d misses), %d bytes served from regions\n", r.HitRatio, r.Hits, r.Misses, r.BytesServed)
	fmt.Fprintf(&b, "latency: direct %.2fs, cached %.2fs — speedup %.2fx\n", r.DirectSeconds, r.CachedSeconds, r.Speedup)
	fmt.Fprintf(&b, "miss path: %.2fs vs %.2fs direct — overhead ratio %.3f\n", r.MissSeconds, r.DirectSeconds, r.MissOverheadRatio)
	fmt.Fprintf(&b, "staleness: half-log regions answer %.3f of the second half; re-mined regions answer %.3f\n", r.StaleHitRatio, r.FreshHitRatio)
	fmt.Fprintf(&b, "aggregate pushdown: %d HAVING probes, %d full-aggregate hits; split regions: %d partial-aggregate combines\n",
		r.AggProbes, r.AggHits, r.PreaggHits)
	fmt.Fprintf(&b, "composition: %d composed hits over split regions (%.3f of replay), %d byte-oracle checks\n",
		r.ComposedHits, r.ComposedRatio, r.ComposedChecked)
	fmt.Fprintf(&b, "identity gates: single=%v composed=%v preagg=%v\n",
		r.IdenticalSingleRegion, r.IdenticalComposed, r.IdenticalPreagg)
	fmt.Fprintf(&b, "budget curve (full residency %d bytes):\n", r.FullResidencyBytes)
	for _, pt := range r.BudgetCurve {
		fmt.Fprintf(&b, "  budget %-12d resident %-12d regions %-4d hit ratio %.3f (%d/%d)\n",
			pt.BudgetBytes, pt.BytesResident, pt.RegionsResident, pt.HitRatio, pt.Hits, pt.Hits+pt.Misses)
	}
	return b.String()
}
