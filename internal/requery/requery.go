// Package requery implements the re-issuing baseline the paper compares
// against in Sections 2.2 (Option (a)) and 6.6: every logged query is
// executed against the database and its "access area" is the minimum
// bounding box of its RESULT SET. The experiment shows the three failure
// modes the paper reports:
//
//   - it is orders of magnitude slower than log-side extraction,
//   - queries over empty parts of the data space return no rows and hence
//     no area (clusters 18-24 of Table 1 cannot be discovered),
//   - erroneous queries (rate limit, row cap, MySQL dialect, bad syntax)
//     yield nothing at all, while extraction still handles them.
package requery

import (
	"errors"
	"strings"
	"time"

	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/sqlparser"
)

// Baseline executes logged queries against a database.
type Baseline struct {
	DB *memdb.DB
	// RowLimit simulates SkyServer's output cap ("limit is top 500000");
	// 0 disables it.
	RowLimit int
	// RateLimiter, when non-nil, enforces the per-user quota using each
	// record's logical timestamp.
	RateLimiter *memdb.RateLimiter
	// StrictTSQL rejects MySQL-dialect queries like SkyServer does.
	StrictTSQL bool
}

// BoxArea is the result-set bounding box of one query (the naive Option (a)
// access-area definition).
type BoxArea struct {
	Record    qlog.Record
	Relations []string
	Box       *interval.Box
	Rows      int
}

// Result summarises a baseline run.
type Result struct {
	Areas []BoxArea
	// EmptyResults counts queries that executed fine but returned no rows —
	// exactly the queries whose (intended) access areas the re-querying
	// approach loses.
	EmptyResults int
	// Errors counts failed executions by category ("parse", "rate-limit",
	// "row-limit", "dialect", "exec").
	Errors  map[string]int
	Elapsed time.Duration
}

// Processed returns the number of queries that yielded an area.
func (r *Result) Processed() int { return len(r.Areas) }

// Run executes all records.
func (b *Baseline) Run(recs []qlog.Record) *Result {
	res := &Result{Errors: make(map[string]int)}
	start := time.Now()
	for _, rec := range recs {
		b.runOne(rec, res)
	}
	res.Elapsed = time.Since(start)
	return res
}

func (b *Baseline) runOne(rec qlog.Record, res *Result) {
	if b.RateLimiter != nil {
		if err := b.RateLimiter.Check(rec.User, rec.Time); err != nil {
			res.Errors["rate-limit"]++
			return
		}
	}
	sel, err := sqlparser.ParseSelect(rec.SQL)
	if err != nil {
		res.Errors["parse"]++
		return
	}
	rs, err := b.DB.Execute(sel, memdb.ExecOptions{RowLimit: b.RowLimit, StrictTSQL: b.StrictTSQL})
	if err != nil {
		var rle *memdb.RowLimitError
		var de *memdb.DialectError
		switch {
		case errors.As(err, &rle):
			res.Errors["row-limit"]++
		case errors.As(err, &de):
			res.Errors["dialect"]++
		default:
			res.Errors["exec"]++
		}
		return
	}
	if len(rs.Rows) == 0 {
		res.EmptyResults++
		return
	}
	res.Areas = append(res.Areas, BoxArea{
		Record:    rec,
		Relations: relationsOf(sel),
		Box:       resultBox(rs),
		Rows:      len(rs.Rows),
	})
}

// resultBox computes the minimum bounding box of the numeric columns of a
// result set.
func resultBox(rs *memdb.ResultSet) *interval.Box {
	box := interval.NewBox()
	for ci, col := range rs.Columns {
		first := true
		var lo, hi float64
		for _, row := range rs.Rows {
			v := row[ci]
			if v.Kind != memdb.Num {
				continue
			}
			if first {
				lo, hi = v.Num, v.Num
				first = false
				continue
			}
			if v.Num < lo {
				lo = v.Num
			}
			if v.Num > hi {
				hi = v.Num
			}
		}
		if !first {
			box.Set(col, interval.Closed(lo, hi))
		}
	}
	return box
}

func relationsOf(sel *sqlparser.SelectStatement) []string {
	var out []string
	var walk func(te sqlparser.TableExpr)
	walk = func(te sqlparser.TableExpr) {
		switch t := te.(type) {
		case *sqlparser.TableName:
			name := t.Name
			if i := strings.LastIndex(name, "."); i >= 0 {
				name = name[i+1:]
			}
			out = append(out, name)
		case *sqlparser.Join:
			walk(t.Left)
			walk(t.Right)
		case *sqlparser.SubqueryTable:
			for _, inner := range t.Select.From {
				walk(inner)
			}
		}
	}
	for _, te := range sel.From {
		walk(te)
	}
	return out
}
