package predicate

import (
	"testing"

	"repro/internal/interval"
)

func TestOpInvert(t *testing.T) {
	cases := map[Op]Op{Lt: Ge, Le: Gt, Eq: Ne, Gt: Le, Ge: Lt, Ne: Eq}
	for op, want := range cases {
		if got := op.Invert(); got != want {
			t.Errorf("Invert(%v) = %v, want %v", op, got, want)
		}
		if got := op.Invert().Invert(); got != op {
			t.Errorf("double inversion of %v = %v", op, got)
		}
	}
}

func TestOpFlip(t *testing.T) {
	cases := map[Op]Op{Lt: Gt, Le: Ge, Eq: Eq, Gt: Lt, Ge: Le, Ne: Ne}
	for op, want := range cases {
		if got := op.Flip(); got != want {
			t.Errorf("Flip(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestParseOp(t *testing.T) {
	for s, want := range map[string]Op{"<": Lt, "<=": Le, "=": Eq, ">": Gt, ">=": Ge, "<>": Ne, "!=": Ne} {
		got, ok := ParseOp(s)
		if !ok || got != want {
			t.Errorf("ParseOp(%q) = %v %v", s, got, ok)
		}
	}
	if _, ok := ParseOp("LIKE"); ok {
		t.Error("ParseOp should reject LIKE")
	}
}

func TestPredInvert(t *testing.T) {
	p := CC("T.u", Lt, Number(5))
	q := p.Invert()
	if q.Op != Ge || q.Column != "T.u" || q.Val.Num != 5 {
		t.Errorf("invert = %v", q)
	}
	if True().Invert().Kind != FalsePred || False().Invert().Kind != TruePred {
		t.Error("TRUE/FALSE inversion wrong")
	}
}

func TestColsCanonicalOrder(t *testing.T) {
	a := Cols("T.u", Eq, "S.u")
	b := Cols("S.u", Eq, "T.u")
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	// Asymmetric op flips.
	c := Cols("T.u", Lt, "S.u") // becomes S.u > T.u
	if c.Column != "S.u" || c.Op != Gt || c.Column2 != "T.u" {
		t.Errorf("canonicalised = %v", c)
	}
}

func TestPredInterval(t *testing.T) {
	cases := []struct {
		p    Pred
		want interval.Set
	}{
		{CC("a", Lt, Number(3)), interval.NewSet(interval.Below(3, true))},
		{CC("a", Le, Number(3)), interval.NewSet(interval.Below(3, false))},
		{CC("a", Eq, Number(3)), interval.NewSet(interval.Point(3))},
		{CC("a", Gt, Number(3)), interval.NewSet(interval.Above(3, true))},
		{CC("a", Ge, Number(3)), interval.NewSet(interval.Above(3, false))},
		{CC("a", Ne, Number(3)), interval.NotEqual(3)},
	}
	for _, c := range cases {
		got, ok := c.p.Interval()
		if !ok || !got.Equal(c.want) {
			t.Errorf("Interval(%v) = %v %v, want %v", c.p, got, ok, c.want)
		}
	}
	if _, ok := CC("a", Eq, Str("x")).Interval(); ok {
		t.Error("string predicate should have no interval")
	}
	if _, ok := Cols("a", Eq, "b").Interval(); ok {
		t.Error("column-column predicate should have no interval")
	}
}

func TestPredsFromSet(t *testing.T) {
	// Simple ray.
	ps, ok := PredsFromSet("a", interval.NewSet(interval.Below(5, true)))
	if !ok || len(ps) != 1 || ps[0].Op != Lt || ps[0].Val.Num != 5 {
		t.Errorf("ray = %v %v", ps, ok)
	}
	// NE shape.
	ps, ok = PredsFromSet("a", interval.NotEqual(7))
	if !ok || len(ps) != 1 || ps[0].Op != Ne {
		t.Errorf("ne = %v %v", ps, ok)
	}
	// Two rays with a gap: a < 3 OR a >= 10.
	ps, ok = PredsFromSet("a", interval.NewSet(interval.Below(3, true), interval.Above(10, false)))
	if !ok || len(ps) != 2 {
		t.Errorf("gap = %v %v", ps, ok)
	}
	// Bounded interval: inexpressible as single disjunction.
	if _, ok = PredsFromSet("a", interval.NewSet(interval.Closed(1, 2))); ok {
		t.Error("bounded interval should be inexpressible")
	}
	// Full and empty.
	ps, ok = PredsFromSet("a", interval.FullSet())
	if !ok || ps[0].Kind != TruePred {
		t.Errorf("full = %v", ps)
	}
	ps, ok = PredsFromSet("a", interval.EmptySet())
	if !ok || ps[0].Kind != FalsePred {
		t.Errorf("empty = %v", ps)
	}
}

func TestClausesFromInterval(t *testing.T) {
	ps := ClausesFromInterval("a", interval.Closed(1, 8))
	if len(ps) != 2 || ps[0].Op != Ge || ps[1].Op != Le {
		t.Errorf("closed = %v", ps)
	}
	ps = ClausesFromInterval("a", interval.Point(5))
	if len(ps) != 1 || ps[0].Op != Eq {
		t.Errorf("point = %v", ps)
	}
	ps = ClausesFromInterval("a", interval.Empty())
	if len(ps) != 1 || ps[0].Kind != FalsePred {
		t.Errorf("empty = %v", ps)
	}
	ps = ClausesFromInterval("a", interval.Full())
	if len(ps) != 1 || ps[0].Kind != TruePred {
		t.Errorf("full = %v", ps)
	}
	ps = ClausesFromInterval("a", interval.Open(1, 8))
	if len(ps) != 2 || ps[0].Op != Gt || ps[1].Op != Lt {
		t.Errorf("open = %v", ps)
	}
}

func TestPredString(t *testing.T) {
	cases := map[string]Pred{
		"T.u < 5":          CC("T.u", Lt, Number(5)),
		"S.class = 'star'": CC("S.class", Eq, Str("star")),
		"S.u = T.u":        Cols("T.u", Eq, "S.u"),
		"TRUE":             True(),
		"FALSE":            False(),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	// Text-preserving numbers.
	p := CC("Photoz.objid", Eq, NumberText(1237657855534432934, "1237657855534432934"))
	if got := p.String(); got != "Photoz.objid = 1237657855534432934" {
		t.Errorf("big int string = %q", got)
	}
}

func TestValueStringEscaping(t *testing.T) {
	if got := Str("O'Neil").String(); got != "'O''Neil'" {
		t.Errorf("escaped = %q", got)
	}
}
