package skyserver

import (
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/traffic"
)

// The mixed-traffic generator must be deterministic and honour the requested
// class shares to within integer rounding.
func TestGenerateMixedLogComposition(t *testing.T) {
	cfg := WorkloadConfig{Queries: 8000, Seed: 11}
	mix := ClassMix{Bot: 0.7, Human: 0.25, Admin: 0.05}
	log := GenerateMixedLog(cfg, mix)
	if len(log) != cfg.Queries {
		t.Fatalf("len = %d, want %d", len(log), cfg.Queries)
	}
	counts := map[string]int{}
	for i, e := range log {
		if e.Seq != i {
			t.Fatalf("entry %d has Seq %d", i, e.Seq)
		}
		if i > 0 && e.Time < log[i-1].Time {
			t.Fatalf("entry %d time %d precedes %d", i, e.Time, log[i-1].Time)
		}
		counts[ClassOf(e.User)]++
	}
	for cls, share := range map[string]float64{"bot": 0.7, "human": 0.25, "admin": 0.05} {
		got := float64(counts[cls]) / float64(len(log))
		if got < share-0.01 || got > share+0.01 {
			t.Errorf("class %s share = %.3f, want ~%.2f", cls, got, share)
		}
	}

	again := GenerateMixedLog(cfg, mix)
	for i := range log {
		if log[i] != again[i] {
			t.Fatalf("entry %d differs between identical runs: %+v vs %+v", i, log[i], again[i])
		}
	}
}

// The generated behaviours must actually trip the online classifier: feeding
// the mixed log straight through traffic.Classifier and scoring its per-user
// verdicts against the user-prefix ground truth must clear the paper-grade
// 0.95 precision/recall bar for every class.
func TestGenerateMixedLogClassifies(t *testing.T) {
	log := GenerateMixedLog(WorkloadConfig{Queries: 12000, Seed: 3}, ClassMix{Bot: 0.7, Human: 0.25, Admin: 0.05})
	clf := traffic.NewClassifier(traffic.Config{})
	for _, e := range log {
		fp, _, err := sqlparser.Fingerprint(e.SQL)
		if err != nil {
			fp = 0
		}
		clf.Observe(e.User, e.Time, fp, e.SQL)
	}
	tp := map[string]int{}
	fp := map[string]int{}
	fn := map[string]int{}
	for user, got := range clf.UserClasses() {
		want := ClassOf(user)
		if got == want {
			tp[want]++
		} else {
			fp[got]++
			fn[want]++
		}
	}
	for _, cls := range traffic.Classes {
		if tp[cls] == 0 {
			t.Fatalf("class %s: no true positives — generator produced no classifiable %s users", cls, cls)
		}
		prec := float64(tp[cls]) / float64(tp[cls]+fp[cls])
		rec := float64(tp[cls]) / float64(tp[cls]+fn[cls])
		if prec < 0.95 || rec < 0.95 {
			t.Errorf("class %s: precision %.3f recall %.3f, want >= 0.95 (tp=%d fp=%d fn=%d)",
				cls, prec, rec, tp[cls], fp[cls], fn[cls])
		}
	}
}
