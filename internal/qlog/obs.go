package qlog

import "repro/internal/obs"

// Pipeline stage histograms are fed from the StageTime measurements the
// pipeline already takes for the §6.6 report — no second clock read — so
// the prom view and the report view of a stage always describe the same
// samples. Slow ingest-side extractions land in the process slow log under
// the "ingest-extract" stage, identified by statement fingerprint.
var (
	parseObs       = obs.NewStage("qlog_parse")
	extractObs     = obs.NewStage("qlog_extract")
	cnfObs         = obs.NewStage("qlog_cnf")
	consolidateObs = obs.NewStage("qlog_consolidate")

	recordsTotal = obs.NewCounter("skyaccess_qlog_records_total",
		"records admitted to the extraction pipeline")
	cacheHitsTotal = obs.NewCounter("skyaccess_qlog_cache_hits_total",
		"records served by a cached template")
	fullParsesTotal = obs.NewCounter("skyaccess_qlog_full_parses_total",
		"records that took the full parse and extraction path")
)
