package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/qlog"
)

// PipelinePerfRun is one extraction pass of the pipeline perf harness.
type PipelinePerfRun struct {
	Mode         string  `json:"mode"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	Throughput   float64 `json:"queries_per_sec"`
	FullParses   int     `json:"full_parses"`
	CacheHits    int     `json:"cache_hits"`
	Areas        int     `json:"areas"`
	PeakInFlight int     `json:"peak_in_flight"`
}

// PipelinePerfResult is the outcome of the extraction-pipeline perf
// experiment: the Table-1 workload extracted uncached (the seed behaviour),
// through the template cache, and through the streaming front end, with the
// equivalence guards the cache must satisfy. cmd/benchreport serialises it
// to BENCH_pipeline.json so successive PRs have a perf trajectory.
type PipelinePerfResult struct {
	Queries           int             `json:"queries"`
	Seed              int64           `json:"seed"`
	Uncached          PipelinePerfRun `json:"before_uncached"`
	Cached            PipelinePerfRun `json:"after_cached"`
	Stream            PipelinePerfRun `json:"after_cached_stream"`
	ParseRatio        float64         `json:"parse_ratio"` // uncached full parses / cached full parses
	SpeedupX          float64         `json:"speedup_x"`
	IdenticalAreas    bool            `json:"identical_areas"`
	IdenticalStats    bool            `json:"identical_stats"`
	IdenticalClusters bool            `json:"identical_clusters"`
	Report            string          `json:"-"`
}

// RunPipelinePerf executes the extraction perf comparison: the same workload
// through the uncached slow path, the template cache, and RunStream,
// verifying bit-identical areas, identical semantic Stats counters, and
// identical final clusters, and measuring how many full parses the cache
// avoids.
func (e *Env) RunPipelinePerf() *PipelinePerfResult {
	run := func(mode string, noCache, streaming bool) (PipelinePerfRun, []qlog.AreaRecord, *qlog.Stats) {
		ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
		p := &qlog.Pipeline{Extractor: ex, NoCache: noCache}
		var (
			areas []qlog.AreaRecord
			st    *qlog.Stats
		)
		t0 := time.Now()
		if streaming {
			st = p.RunStream(context.Background(), qlog.SliceSource(e.Records), func(ar qlog.AreaRecord) {
				areas = append(areas, ar)
			})
		} else {
			areas, st = p.Run(e.Records)
		}
		elapsed := time.Since(t0)
		return PipelinePerfRun{
			Mode:         mode,
			ElapsedMS:    float64(elapsed.Microseconds()) / 1e3,
			Throughput:   float64(st.Total) / elapsed.Seconds(),
			FullParses:   st.FullParses,
			CacheHits:    st.CacheHits,
			Areas:        len(areas),
			PeakInFlight: st.PeakInFlight,
		}, areas, st
	}
	uncached, uncachedAreas, uncachedStats := run("uncached", true, false)
	cached, cachedAreas, cachedStats := run("cached", false, false)
	stream, streamAreas, streamStats := run("cached-stream", false, true)

	mine := func(areas []qlog.AreaRecord) *core.Result {
		m := core.NewMiner(core.Config{Schema: e.Schema, Stats: e.Stats, Seed: e.Seed})
		return m.MineAreas(areas)
	}
	uncachedRes := mine(uncachedAreas)
	cachedRes := mine(cachedAreas)

	out := &PipelinePerfResult{
		Queries: e.Scale, Seed: e.Seed,
		Uncached: uncached, Cached: cached, Stream: stream,
		IdenticalAreas: sameAreas(uncachedAreas, cachedAreas) &&
			sameAreas(uncachedAreas, streamAreas),
		IdenticalStats: sameSemanticStats(uncachedStats, cachedStats) &&
			sameSemanticStats(uncachedStats, streamStats),
		IdenticalClusters: sameClusters(uncachedRes, cachedRes),
	}
	if cached.FullParses > 0 {
		out.ParseRatio = float64(uncached.FullParses) / float64(cached.FullParses)
	}
	if cached.ElapsedMS > 0 {
		out.SpeedupX = uncached.ElapsedMS / cached.ElapsedMS
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline perf — template cache + streaming front end vs uncached (%d queries)\n", out.Queries)
	row := func(r PipelinePerfRun) {
		fmt.Fprintf(&b, "  %-14s %10.1f ms   %8.0f q/s   %7d full parses   %7d cache hits   %6d areas   peak in-flight %d\n",
			r.Mode, r.ElapsedMS, r.Throughput, r.FullParses, r.CacheHits, r.Areas, r.PeakInFlight)
	}
	row(uncached)
	row(cached)
	row(stream)
	fmt.Fprintf(&b, "full parses: %.2fx fewer with the cache; wall clock: %.2fx; identical areas: %v, stats: %v, clusters: %v\n",
		out.ParseRatio, out.SpeedupX, out.IdenticalAreas, out.IdenticalStats, out.IdenticalClusters)
	out.Report = b.String()
	return out
}

// sameAreas reports whether two extraction passes produced bit-identical
// results: the same records, in the same order, with identical areas.
func sameAreas(a, b []qlog.AreaRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Record.Seq != b[i].Record.Seq {
			return false
		}
		x, y := a[i].Area, b[i].Area
		if x.Key() != y.Key() || x.Exact != y.Exact || x.Truncated != y.Truncated {
			return false
		}
		if len(x.Referenced) != len(y.Referenced) {
			return false
		}
		for j := range x.Referenced {
			if x.Referenced[j] != y.Referenced[j] {
				return false
			}
		}
	}
	return true
}

// sameSemanticStats compares the deterministic pipeline counters. FullParses,
// CacheHits, PeakInFlight and the stage timings are scheduling telemetry and
// deliberately excluded.
func sameSemanticStats(a, b *qlog.Stats) bool {
	if a.Total != b.Total || a.Parsed != b.Parsed || a.Extracted != b.Extracted ||
		a.ExtractFailures != b.ExtractFailures || a.Truncated != b.Truncated ||
		a.Approximate != b.Approximate || a.EmptyAreas != b.EmptyAreas {
		return false
	}
	if len(a.ParseFailures) != len(b.ParseFailures) {
		return false
	}
	for k, v := range a.ParseFailures {
		if b.ParseFailures[k] != v {
			return false
		}
	}
	return true
}
