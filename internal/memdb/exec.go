package memdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparser"
)

// RowLimitError simulates SkyServer's "limit is top 500000" execution error
// (Section 2.3 cites it as a reason access areas must not depend on
// execution success).
type RowLimitError struct {
	Limit int
}

func (e *RowLimitError) Error() string {
	return fmt.Sprintf("limit is top %d", e.Limit)
}

// DialectError simulates SkyServer rejecting non-T-SQL constructs (the
// MySQL LIMIT clause of Section 6.6).
type DialectError struct {
	Construct string
}

func (e *DialectError) Error() string {
	return fmt.Sprintf("incorrect syntax near '%s'", e.Construct)
}

// ExecOptions controls execution.
type ExecOptions struct {
	// RowLimit caps the result cardinality; exceeding it returns
	// *RowLimitError. 0 disables the cap.
	RowLimit int
	// StrictTSQL makes the engine reject MySQL-dialect constructs (LIMIT)
	// the way SkyServer's SQL Server would.
	StrictTSQL bool
}

// ResultSet is the outcome of a query.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// ExecuteSQL parses and executes a statement.
func (db *DB) ExecuteSQL(src string, opts ExecOptions) (*ResultSet, error) {
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return db.Execute(sel, opts)
}

// Execute runs a parsed SELECT.
func (db *DB) Execute(sel *sqlparser.SelectStatement, opts ExecOptions) (*ResultSet, error) {
	if opts.StrictTSQL && sel.Limit != nil {
		return nil, &DialectError{Construct: "LIMIT"}
	}
	rs, err := db.execute(sel, nil)
	if err != nil {
		return nil, err
	}
	if opts.RowLimit > 0 && len(rs.Rows) > opts.RowLimit {
		return nil, &RowLimitError{Limit: opts.RowLimit}
	}
	return rs, nil
}

// binding associates the aliases of one FROM factor row with its values.
type binding struct {
	names []string // lowercased alias plus table name variants
	table *Table
	row   []Value // nil for the padded side of an outer join
}

func (b *binding) matches(qualifier string) bool {
	q := strings.ToLower(qualifier)
	for _, n := range b.names {
		if n == q {
			return true
		}
	}
	return false
}

// env is one candidate tuple of the universal relation during evaluation.
type env struct {
	bindings []*binding
	parent   *env
}

func (e *env) lookup(table, column string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		for _, b := range cur.bindings {
			if table != "" && !b.matches(table) {
				continue
			}
			if ci, ok := b.table.ColumnIndex(column); ok {
				if b.row == nil {
					return NullValue(), true
				}
				return b.row[ci], true
			}
		}
		if table != "" {
			continue
		}
	}
	return Value{}, false
}

func (db *DB) execute(sel *sqlparser.SelectStatement, parent *env) (*ResultSet, error) {
	// 1. FROM: build candidate envs.
	envs := []*env{{parent: parent}}
	for _, te := range sel.From {
		sets, err := db.evalTableExpr(te, parent)
		if err != nil {
			return nil, err
		}
		var next []*env
		for _, e := range envs {
			for _, bs := range sets {
				merged := &env{parent: parent}
				merged.bindings = append(merged.bindings, e.bindings...)
				merged.bindings = append(merged.bindings, bs...)
				next = append(next, merged)
			}
		}
		envs = next
	}
	// 2. WHERE.
	if sel.Where != nil {
		var filtered []*env
		for _, e := range envs {
			ok, err := db.evalBool(sel.Where, e, nil)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, e)
			}
		}
		envs = filtered
	}
	// 3. Aggregate or plain projection.
	var rs *ResultSet
	var err error
	if isAggregateQuery(sel) {
		rs, err = db.executeAggregate(sel, envs)
	} else {
		rs, err = db.executePlain(sel, envs)
	}
	if err != nil {
		return nil, err
	}
	// 4. DISTINCT.
	if sel.Distinct {
		rs.Rows = dedupeRows(rs.Rows)
	}
	// 5. TOP / LIMIT.
	cap := -1
	if sel.Top != nil {
		if sel.TopPercent {
			cap = (len(rs.Rows)*int(*sel.Top) + 99) / 100
		} else {
			cap = int(*sel.Top)
		}
	}
	if sel.Limit != nil {
		cap = int(*sel.Limit)
	}
	if cap >= 0 && len(rs.Rows) > cap {
		rs.Rows = rs.Rows[:cap]
	}
	// 6. UNION arms: concatenate; plain UNION deduplicates.
	for _, arm := range sel.Unions {
		armRS, err := db.execute(arm.Select, parent)
		if err != nil {
			return nil, err
		}
		rs.Rows = append(rs.Rows, armRS.Rows...)
		if !arm.All {
			rs.Rows = dedupeRows(rs.Rows)
		}
	}
	return rs, nil
}

// evalTableExpr materialises one FROM factor as a list of binding sets.
func (db *DB) evalTableExpr(te sqlparser.TableExpr, parent *env) ([][]*binding, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		tbl := db.Table(t.Name)
		if tbl == nil {
			return nil, fmt.Errorf("memdb: unknown table %q", t.Name)
		}
		names := bindingNames(t.Name, t.Alias, tbl.Name)
		out := make([][]*binding, 0, len(tbl.Rows))
		for _, row := range tbl.Rows {
			out = append(out, []*binding{{names: names, table: tbl, row: row}})
		}
		return out, nil

	case *sqlparser.SubqueryTable:
		rs, err := db.execute(t.Select, parent)
		if err != nil {
			return nil, err
		}
		derived := &Table{Name: t.Alias, Columns: rs.Columns, colIdx: make(map[string]int)}
		for i, c := range rs.Columns {
			// Derived columns are addressable by their bare name.
			bare := c
			if j := strings.LastIndex(c, "."); j >= 0 {
				bare = c[j+1:]
			}
			derived.colIdx[strings.ToLower(bare)] = i
		}
		names := bindingNames(t.Alias, "", t.Alias)
		out := make([][]*binding, 0, len(rs.Rows))
		for _, row := range rs.Rows {
			out = append(out, []*binding{{names: names, table: derived, row: row}})
		}
		return out, nil

	case *sqlparser.Join:
		left, err := db.evalTableExpr(t.Left, parent)
		if err != nil {
			return nil, err
		}
		right, err := db.evalTableExpr(t.Right, parent)
		if err != nil {
			return nil, err
		}
		return db.joinBindingSets(t, left, right, parent)

	default:
		return nil, fmt.Errorf("memdb: unsupported table expression %T", te)
	}
}

func bindingNames(written, alias, canonical string) []string {
	set := map[string]struct{}{}
	add := func(s string) {
		if s != "" {
			set[strings.ToLower(s)] = struct{}{}
		}
	}
	add(written)
	add(alias)
	add(canonical)
	if i := strings.LastIndex(written, "."); i >= 0 {
		add(written[i+1:])
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// equiJoinColumns detects a simple "a = b" ON condition and resolves which
// side each column belongs to, enabling the hash-join fast path.
func equiJoinColumns(j *sqlparser.Join, left, right [][]*binding) (lc, rc *sqlparser.ColumnRef, ok bool) {
	if j.Natural || j.On == nil || len(left) == 0 || len(right) == 0 {
		return nil, nil, false
	}
	cmp, isCmp := j.On.(*sqlparser.BinaryExpr)
	if !isCmp || cmp.Op != "=" {
		return nil, nil, false
	}
	a, aok := cmp.L.(*sqlparser.ColumnRef)
	b, bok := cmp.R.(*sqlparser.ColumnRef)
	if !aok || !bok {
		return nil, nil, false
	}
	belongs := func(c *sqlparser.ColumnRef, side []*binding) bool {
		for _, bd := range side {
			if c.Table != "" && !bd.matches(c.Table) {
				continue
			}
			if _, found := bd.table.ColumnIndex(c.Name); found {
				return true
			}
		}
		return false
	}
	switch {
	case belongs(a, left[0]) && belongs(b, right[0]):
		return a, b, true
	case belongs(b, left[0]) && belongs(a, right[0]):
		return b, a, true
	}
	return nil, nil, false
}

// lookupIn evaluates a column reference against one binding set.
func lookupIn(c *sqlparser.ColumnRef, bs []*binding) (Value, bool) {
	e := &env{bindings: bs}
	return e.lookup(c.Table, c.Name)
}

func (db *DB) joinBindingSets(j *sqlparser.Join, left, right [][]*binding, parent *env) ([][]*binding, error) {
	// Hash-join fast path for plain equi-joins: O(|L| + |R|) instead of the
	// nested loop, which dominates the re-query baseline's cost on the
	// value-added catalogue joins.
	if lc, rc, ok := equiJoinColumns(j, left, right); ok {
		index := make(map[string][]int, len(right))
		for ri, r := range right {
			v, found := lookupIn(rc, r)
			if !found || v.Kind == Null {
				continue
			}
			index[v.String()] = append(index[v.String()], ri)
		}
		var out [][]*binding
		leftMatched := make([]bool, len(left))
		rightMatched := make([]bool, len(right))
		for li, l := range left {
			v, found := lookupIn(lc, l)
			if found && v.Kind != Null {
				for _, ri := range index[v.String()] {
					leftMatched[li] = true
					rightMatched[ri] = true
					merged := make([]*binding, 0, len(l)+len(right[ri]))
					merged = append(merged, l...)
					merged = append(merged, right[ri]...)
					out = append(out, merged)
				}
			}
		}
		return db.padOuter(j, left, right, leftMatched, rightMatched, out), nil
	}
	return db.nestedLoopJoin(j, left, right, parent)
}

// padOuter appends the null-padded rows outer joins require.
func (db *DB) padOuter(j *sqlparser.Join, left, right [][]*binding, leftMatched, rightMatched []bool, out [][]*binding) [][]*binding {
	if j.Type == sqlparser.LeftOuterJoin || j.Type == sqlparser.FullOuterJoin {
		nullRight := nullBindings(right)
		for li, l := range left {
			if !leftMatched[li] {
				merged := make([]*binding, 0, len(l)+len(nullRight))
				merged = append(merged, l...)
				merged = append(merged, nullRight...)
				out = append(out, merged)
			}
		}
	}
	if j.Type == sqlparser.RightOuterJoin || j.Type == sqlparser.FullOuterJoin {
		nullLeft := nullBindings(left)
		for ri, r := range right {
			if !rightMatched[ri] {
				merged := make([]*binding, 0, len(nullLeft)+len(r))
				merged = append(merged, nullLeft...)
				merged = append(merged, r...)
				out = append(out, merged)
			}
		}
	}
	return out
}

func (db *DB) nestedLoopJoin(j *sqlparser.Join, left, right [][]*binding, parent *env) ([][]*binding, error) {
	matchesOn := func(l, r []*binding) (bool, error) {
		combined := &env{parent: parent}
		combined.bindings = append(combined.bindings, l...)
		combined.bindings = append(combined.bindings, r...)
		if j.Natural {
			ok := naturalMatch(l, r)
			if !ok {
				return false, nil
			}
		}
		if j.On == nil {
			return true, nil
		}
		return db.evalBool(j.On, combined, nil)
	}
	var out [][]*binding
	leftMatched := make([]bool, len(left))
	rightMatched := make([]bool, len(right))
	isCross := j.Type == sqlparser.CrossJoin && !j.Natural && j.On == nil
	for li, l := range left {
		for ri, r := range right {
			ok := true
			if !isCross {
				var err error
				ok, err = matchesOn(l, r)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				leftMatched[li] = true
				rightMatched[ri] = true
				merged := make([]*binding, 0, len(l)+len(r))
				merged = append(merged, l...)
				merged = append(merged, r...)
				out = append(out, merged)
			}
		}
	}
	return db.padOuter(j, left, right, leftMatched, rightMatched, out), nil
}

// nullBindings derives the null-padded binding shape of one side.
func nullBindings(sets [][]*binding) []*binding {
	if len(sets) == 0 {
		return nil
	}
	src := sets[0]
	out := make([]*binding, len(src))
	for i, b := range src {
		out[i] = &binding{names: b.names, table: b.table, row: nil}
	}
	return out
}

// naturalMatch equates the values of all same-named columns.
func naturalMatch(l, r []*binding) bool {
	for _, lb := range l {
		for _, rb := range r {
			for name, li := range lb.table.colIdx {
				ri, ok := rb.table.colIdx[name]
				if !ok {
					continue
				}
				if lb.row == nil || rb.row == nil {
					return false
				}
				if !lb.row[li].Equal(rb.row[ri]) {
					return false
				}
			}
		}
	}
	return true
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, r := range rows {
		key := rowKey(r)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, r)
	}
	return out
}

func rowKey(r []Value) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// executePlain projects non-aggregate queries and applies ORDER BY.
func (db *DB) executePlain(sel *sqlparser.SelectStatement, envs []*env) (*ResultSet, error) {
	cols := db.projectionColumns(sel, envs)
	rs := &ResultSet{Columns: cols}
	type sortable struct {
		row  []Value
		keys []Value
	}
	var items []sortable
	for _, e := range envs {
		row, err := db.projectRow(sel, e, nil)
		if err != nil {
			return nil, err
		}
		var keys []Value
		for _, o := range sel.OrderBy {
			v, err := db.evalScalar(o.Expr, e, nil)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		items = append(items, sortable{row, keys})
	}
	sortRows(items, sel.OrderBy, func(s sortable) []Value { return s.keys })
	for _, it := range items {
		rs.Rows = append(rs.Rows, it.row)
	}
	return rs, nil
}

func sortRows[T any](items []T, order []sqlparser.OrderItem, keys func(T) []Value) {
	if len(order) == 0 {
		return
	}
	sort.SliceStable(items, func(i, j int) bool {
		ki, kj := keys(items[i]), keys(items[j])
		for x := range order {
			c, ok := ki[x].Compare(kj[x])
			if !ok || c == 0 {
				continue
			}
			if order[x].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// projectionColumns derives output column names.
func (db *DB) projectionColumns(sel *sqlparser.SelectStatement, envs []*env) []string {
	var sample *env
	if len(envs) > 0 {
		sample = envs[0]
	}
	var cols []string
	for _, item := range sel.Select {
		switch {
		case item.Star && item.StarTable == "":
			if sample != nil {
				for _, b := range sample.bindings {
					for _, c := range b.table.Columns {
						cols = append(cols, b.table.Name+"."+c)
					}
				}
			} else {
				cols = append(cols, "*")
			}
		case item.Star:
			if sample != nil {
				for _, b := range sample.bindings {
					if b.matches(item.StarTable) {
						for _, c := range b.table.Columns {
							cols = append(cols, b.table.Name+"."+c)
						}
					}
				}
			} else {
				cols = append(cols, item.StarTable+".*")
			}
		case item.Alias != "":
			cols = append(cols, item.Alias)
		default:
			// Qualify plain column references with their owning table so
			// result boxes carry canonical dimension names.
			if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok && sample != nil {
				if name, ok := qualifyColumn(cr, sample); ok {
					cols = append(cols, name)
					break
				}
			}
			cols = append(cols, sqlparser.FormatExpr(item.Expr))
		}
	}
	return cols
}

// projectRow evaluates the select list for one env (agg == nil) or one
// group (agg != nil).
func (db *DB) projectRow(sel *sqlparser.SelectStatement, e *env, agg *aggContext) ([]Value, error) {
	var row []Value
	for _, item := range sel.Select {
		switch {
		case item.Star && item.StarTable == "":
			for _, b := range e.bindings {
				row = append(row, starValues(b)...)
			}
		case item.Star:
			for _, b := range e.bindings {
				if b.matches(item.StarTable) {
					row = append(row, starValues(b)...)
				}
			}
		default:
			v, err := db.evalScalar(item.Expr, e, agg)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
	}
	return row, nil
}

// qualifyColumn resolves a column reference to "Table.column" using the
// sample env's bindings.
func qualifyColumn(cr *sqlparser.ColumnRef, sample *env) (string, bool) {
	for cur := sample; cur != nil; cur = cur.parent {
		for _, b := range cur.bindings {
			if cr.Table != "" && !b.matches(cr.Table) {
				continue
			}
			if _, ok := b.table.ColumnIndex(cr.Name); ok {
				return b.table.Name + "." + cr.Name, true
			}
		}
	}
	return "", false
}

func starValues(b *binding) []Value {
	if b.row != nil {
		return b.row
	}
	out := make([]Value, len(b.table.Columns))
	for i := range out {
		out[i] = NullValue()
	}
	return out
}
