package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one recorded slow operation. Statements are identified by
// their parser fingerprint, never raw SQL — the slow log is an operator
// surface and must not leak query literals.
type SlowEntry struct {
	// Fingerprint is the sqlparser statement fingerprint (0 when the
	// statement did not lex far enough to have one).
	Fingerprint uint64 `json:"fingerprint"`
	// Stage names the instrumented path that recorded the entry
	// (e.g. "query" for extraction+execution through the semantic cache,
	// "extract" for a pipeline slow path).
	Stage string `json:"stage"`
	// Seconds is the entry's total duration.
	Seconds float64 `json:"seconds"`
	// UnixNano is when the entry was recorded.
	UnixNano int64 `json:"unix_nano"`
}

// SlowLog is a fixed-size ring buffer of SlowEntry. Writers overwrite the
// oldest entry once full; TopK ranks what is currently resident. The ring
// keeps the structure O(size) regardless of uptime, which is the property
// a long-running miner needs (the SkyServer traffic report's multi-year
// horizon is the design target).
type SlowLog struct {
	mu        sync.Mutex
	ring      []SlowEntry
	next      int
	filled    int
	threshold time.Duration
}

// NewSlowLog returns a ring of the given capacity (minimum 1) recording
// operations at or above threshold (0 records everything).
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{ring: make([]SlowEntry, size), threshold: threshold}
}

// DefaultSlowLog is the process-wide slow log that /debug/slowlog serves.
var DefaultSlowLog = NewSlowLog(512, 0)

// Record adds one entry when d clears the threshold.
func (l *SlowLog) Record(stage string, fp uint64, d time.Duration) {
	if d < l.threshold {
		return
	}
	e := SlowEntry{Fingerprint: fp, Stage: stage, Seconds: d.Seconds(), UnixNano: time.Now().UnixNano()}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.filled < len(l.ring) {
		l.filled++
	}
	l.mu.Unlock()
}

// Len returns the number of resident entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.filled
}

// TopK returns up to k resident entries, slowest first (ties broken by
// recency, newest first, so the ranking is deterministic for equal
// durations). k <= 0 returns everything resident.
func (l *SlowLog) TopK(k int) []SlowEntry {
	l.mu.Lock()
	out := make([]SlowEntry, l.filled)
	copy(out, l.ring[:l.filled])
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].UnixNano > out[j].UnixNano
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Reset clears the ring (tests).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	l.next, l.filled = 0, 0
	l.mu.Unlock()
}
