package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/memdb"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/traffic"
)

// Handler returns the service's HTTP surface:
//
//	POST /ingest    JSON array, single object, or NDJSON stream of records
//	POST /flush     drain the queue and run an epoch (blocks)
//	POST /snapshot  write the snapshot now
//	POST /query     execute a statement via the semantic result cache
//	GET  /report    latest clustering (text/csv/json, content-negotiated,
//	                ETag/If-None-Match aware; ?class=bot|human|admin serves
//	                one traffic class's partition of it)
//	GET  /drift     per-class interest-drift events (?class= filters)
//	GET  /interfaces  hottest statement templates as parameterized query
//	                interfaces (?top=N)
//	GET  /stats     cumulative pipeline statistics
//	GET  /metrics   flat counters (ingest rate, cache hits, epoch latency,
//	                semantic-cache hit/miss/bytes per region);
//	                ?format=prom renders the full registry in Prometheus
//	                text exposition format
//	GET  /debug/slowlog  top-K slowest statements by fingerprint (?k=N)
//	GET  /healthz   readiness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/flush", s.handleFlush)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/remine", s.handleRemine)
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/drift", s.handleDrift)
	mux.HandleFunc("/interfaces", s.handleInterfaces)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// ingestReply is the JSON body of every /ingest response.
type ingestReply struct {
	Accepted int    `json:"accepted"`
	Dropped  int    `json:"dropped,omitempty"`
	Error    string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleIngest admits records into the bounded queue. A full queue answers
// 429 with the count accepted so far — accepted records are never dropped,
// the client re-sends the remainder. With a WAL configured, every reply
// that acknowledges records is preceded by a group-commit fsync covering
// them: an ack implies the records survive a crash.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	IngestHTTPCommit(w, r, s.enqueue, s.commitWAL)
}

// IngestHTTP implements the /ingest protocol — NDJSON or JSON body, one
// enqueue call per record in input order, 429/503 with the accepted count on
// refusal — against any admission function. The serve handler and the shard
// coordinator share it so a client cannot tell a shard node from a
// coordinator by ingest semantics. enqueue errors map to 503 for ErrClosed
// and 429 for everything else (backpressure: the client re-sends the tail).
func IngestHTTP(w http.ResponseWriter, r *http.Request, enqueue func(qlog.Record) error) {
	IngestHTTPCommit(w, r, enqueue, nil)
}

// IngestHTTPCommit is IngestHTTP with a durability barrier: commit (when
// non-nil) runs before any reply acknowledging accepted > 0 records. A
// commit failure turns the reply into a 500 with zero accepted — nothing is
// acknowledged that did not reach stable storage.
func IngestHTTPCommit(w http.ResponseWriter, r *http.Request, enqueue func(qlog.Record) error, commit func(accepted int) error) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ct := r.Header.Get("Content-Type")
	ndjson := strings.Contains(ct, "ndjson") || strings.Contains(ct, "jsonl") ||
		strings.Contains(ct, "jsonlines") || strings.Contains(ct, "text/plain")
	if ndjson {
		ingestNDJSON(w, r, enqueue, commit)
		return
	}
	ingestJSON(w, r, enqueue, commit)
}

// replyIngest writes an ingest reply, running the durability barrier first
// whenever the reply would acknowledge records.
func replyIngest(w http.ResponseWriter, status int, reply ingestReply, commit func(int) error) {
	if commit != nil && reply.Accepted > 0 {
		if err := commit(reply.Accepted); err != nil {
			writeJSON(w, http.StatusInternalServerError, ingestReply{
				Error: "durability barrier failed, nothing acknowledged: " + err.Error(),
			})
			return
		}
	}
	writeJSON(w, status, reply)
}

// ingestNDJSON streams one record per line into the queue without holding
// the whole body in memory.
func ingestNDJSON(w http.ResponseWriter, r *http.Request, enqueue func(qlog.Record) error, commit func(int) error) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	accepted := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec qlog.Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			replyIngest(w, http.StatusBadRequest, ingestReply{
				Accepted: accepted,
				Error:    fmt.Sprintf("line %d: %v", line, err),
			}, commit)
			return
		}
		if err := enqueue(rec); err != nil {
			ingestRejected(w, accepted, err, commit)
			return
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		replyIngest(w, http.StatusBadRequest, ingestReply{Accepted: accepted, Error: err.Error()}, commit)
		return
	}
	replyIngest(w, http.StatusAccepted, ingestReply{Accepted: accepted}, commit)
}

// ingestJSON handles an application/json body: an array of records or one
// record object.
func ingestJSON(w http.ResponseWriter, r *http.Request, enqueue func(qlog.Record) error, commit func(int) error) {
	dec := json.NewDecoder(r.Body)
	var recs []qlog.Record
	tok, err := dec.Token()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ingestReply{Error: err.Error()})
		return
	}
	if d, ok := tok.(json.Delim); ok && d == '[' {
		for dec.More() {
			var rec qlog.Record
			if err := dec.Decode(&rec); err != nil {
				writeJSON(w, http.StatusBadRequest, ingestReply{Error: err.Error()})
				return
			}
			recs = append(recs, rec)
		}
	} else {
		// Re-decode the whole body as one object: the first token consumed
		// '{', so rebuild from the delimiter onward is messy — instead we
		// require objects to arrive via NDJSON when streamed, and accept the
		// common single-object case by buffering here.
		if d, ok := tok.(json.Delim); !ok || d != '{' {
			writeJSON(w, http.StatusBadRequest, ingestReply{Error: "body must be a JSON array, object, or NDJSON stream"})
			return
		}
		var rec qlog.Record
		if err := decodeObjectRest(dec, &rec); err != nil {
			writeJSON(w, http.StatusBadRequest, ingestReply{Error: err.Error()})
			return
		}
		recs = append(recs, rec)
	}
	accepted := 0
	for i := range recs {
		if err := enqueue(recs[i]); err != nil {
			ingestRejected(w, accepted, err, commit)
			return
		}
		accepted++
	}
	replyIngest(w, http.StatusAccepted, ingestReply{Accepted: accepted}, commit)
}

// decodeObjectRest fills rec from a decoder positioned just past the
// object's opening brace.
func decodeObjectRest(dec *json.Decoder, rec *qlog.Record) error {
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, _ := keyTok.(string)
		switch key {
		case "seq":
			if err := dec.Decode(&rec.Seq); err != nil {
				return err
			}
		case "time":
			if err := dec.Decode(&rec.Time); err != nil {
				return err
			}
		case "user":
			if err := dec.Decode(&rec.User); err != nil {
				return err
			}
		case "sql":
			if err := dec.Decode(&rec.SQL); err != nil {
				return err
			}
		case "class":
			if err := dec.Decode(&rec.Class); err != nil {
				return err
			}
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return err
			}
		}
	}
	_, err := dec.Token() // closing brace
	return err
}

func ingestRejected(w http.ResponseWriter, accepted int, err error, commit func(int) error) {
	status := http.StatusTooManyRequests
	if err == ErrClosed {
		status = http.StatusServiceUnavailable
	}
	replyIngest(w, status, ingestReply{Accepted: accepted, Dropped: 1, Error: err.Error()}, commit)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.Flush()
	writeJSON(w, http.StatusOK, map[string]any{
		"distinct_areas": s.inc.Distinct(),
		"epochs":         s.epochs.Load(),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.SnapshotPath == "" {
		http.Error(w, "no snapshot path configured", http.StatusConflict)
		return
	}
	if err := s.WriteSnapshot(s.cfg.SnapshotPath); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"path": s.cfg.SnapshotPath})
}

// queryReply is the JSON body of every /query response.
type queryReply struct {
	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	RowCount int      `json:"row_count"`
	Cache    struct {
		Hit              bool    `json:"hit"`
		Region           int     `json:"region,omitempty"`
		Regions          []int   `json:"regions,omitempty"`
		Path             string  `json:"path,omitempty"`
		StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
		Generation       int64   `json:"generation"`
		Reason           string  `json:"reason,omitempty"`
	} `json:"cache"`
	Error string `json:"error,omitempty"`
}

// handleQuery executes one SELECT through the semantic result cache: the
// statement's access area is extracted (via the shared template cache) and,
// when a prefetched region provably contains it, answered from the region's
// column store; otherwise it falls through to direct execution. The body is
// either raw SQL or a JSON object {"sql": "..."}.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sp := queryServeStage.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.qcache == nil {
		http.Error(w, "query serving not configured (no database attached)", http.StatusConflict)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sql := strings.TrimSpace(string(body))
	if strings.Contains(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			SQL string `json:"sql"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, queryReply{Error: err.Error()})
			return
		}
		sql = req.SQL
	}
	if sql == "" {
		writeJSON(w, http.StatusBadRequest, queryReply{Error: "empty statement"})
		return
	}
	rs, info, qerr := s.qcache.Query(sql)
	var reply queryReply
	reply.Cache.Hit = info.Hit
	reply.Cache.Region = info.RegionID
	reply.Cache.Regions = info.Regions
	reply.Cache.Path = info.Path
	reply.Cache.StalenessSeconds = info.Staleness.Seconds()
	reply.Cache.Generation = info.Generation
	reply.Cache.Reason = info.Reason
	cacheHeader := "MISS"
	if info.Hit {
		cacheHeader = "HIT"
		w.Header().Set("X-Cache-Region", strconv.Itoa(info.RegionID))
		w.Header().Set("X-Cache-Path", info.Path)
		if len(info.Regions) > 1 {
			ids := make([]string, len(info.Regions))
			for i, id := range info.Regions {
				ids[i] = strconv.Itoa(id)
			}
			w.Header().Set("X-Cache-Regions", strings.Join(ids, ","))
		}
		w.Header().Set("X-Cache-Staleness", strconv.FormatFloat(info.Staleness.Seconds(), 'f', 3, 64))
	}
	w.Header().Set("X-Cache", cacheHeader)
	w.Header().Set("X-Cache-Generation", strconv.FormatInt(info.Generation, 10))
	if qerr != nil {
		reply.Error = qerr.Error()
		writeJSON(w, http.StatusBadRequest, reply)
		return
	}
	reply.Columns = rs.Columns
	reply.RowCount = len(rs.Rows)
	reply.Rows = make([][]any, len(rs.Rows))
	for i, row := range rs.Rows {
		out := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case memdb.Num:
				out[j] = v.Num
			case memdb.Str:
				out[j] = v.Str
			default:
				out[j] = nil
			}
		}
		reply.Rows[i] = out
	}
	writeJSON(w, http.StatusOK, reply)
}

// NegotiateFormat picks the report encoding: ?format= wins, then Accept.
// Exported so the shard coordinator's merged /report negotiates identically.
func NegotiateFormat(r *http.Request) (report.Format, error) {
	if f := r.URL.Query().Get("format"); f != "" {
		return report.ParseFormat(f)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return report.JSON, nil
	case strings.Contains(accept, "text/csv"):
		return report.CSV, nil
	default:
		return report.Text, nil
	}
}

var contentTypes = map[report.Format]string{
	report.Text: "text/plain; charset=utf-8",
	report.CSV:  "text/csv",
	report.JSON: "application/json",
}

// FormatContentType returns the Content-Type header value for a report
// format (companion to NegotiateFormat for embedders).
func FormatContentType(f report.Format) string { return contentTypes[f] }

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sp := reportStage.Start()
	defer sp.End()
	format, err := NegotiateFormat(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	class := r.URL.Query().Get("class")
	if class != "" {
		if s.traffic == nil {
			http.Error(w, "traffic mining not configured", http.StatusConflict)
			return
		}
		if !traffic.ValidClass(class) {
			http.Error(w, "class must be bot, human or admin", http.StatusBadRequest)
			return
		}
	}
	var res *core.Result
	var gen int64
	if class != "" {
		res, gen = s.LatestClass(class)
	} else {
		res, gen = s.latest()
	}
	if res == nil {
		http.Error(w, "no epoch has run yet — POST /flush or keep ingesting", http.StatusServiceUnavailable)
		return
	}
	top := s.cfg.ReportTop
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 0 {
			http.Error(w, "top must be a non-negative integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	// The report body is a pure function of (epoch generation, class,
	// format, top), so that tuple is the entity tag; polling clients send
	// If-None-Match and skip re-downloading an unchanged Table-1 view. The
	// classless tag keeps its original shape.
	etag := fmt.Sprintf(`"r%d-%s-%d"`, gen, format, top)
	if class != "" {
		etag = fmt.Sprintf(`"r%d-%s-%s-%d"`, gen, class, format, top)
	}
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" {
		for _, cand := range strings.Split(match, ",") {
			cand = strings.TrimSpace(cand)
			cand = strings.TrimPrefix(cand, "W/")
			if cand == etag || cand == "*" {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	w.Header().Set("Content-Type", contentTypes[format])
	_ = report.Write(w, res, format, report.Options{Top: top, Coverage: s.cfg.Coverage != nil})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.statsSnapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"pipeline":       st,
		"distinct_areas": s.inc.Distinct(),
		"accepted":       s.accepted.Load(),
		"rejected":       s.rejected.Load(),
		"processed":      s.processedCount(),
		"epochs":         s.epochs.Load(),
	})
}

func (s *Server) processedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed
}

// handleMetrics serves the registry. The default view is the legacy flat
// JSON map (keys unchanged since the first serve release); ?format=prom
// renders the server registry plus the process-wide Default registry (stage
// histograms, package counters) in Prometheus text exposition format.
//
// Every value is snapshotted OUTSIDE the server mutex: statsSnapshot takes
// s.mu only long enough to copy the cumulative pipeline stats, and
// everything else reads atomics. Neither view holds any lock while the
// reply is built or written, so a slow client can never stall ingest or an
// epoch flush (TestMetricsConcurrentWithFlush hammers this under -race).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
		_ = obs.Default().WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.legacyMetrics())
}

// legacyMetrics assembles the original flat counter map — now a JSON view
// over the same atomics the registry's function-backed metrics read.
func (s *Server) legacyMetrics() map[string]any {
	st := s.statsSnapshot()
	uptime := time.Since(s.start).Seconds()
	accepted := s.accepted.Load()
	rate := 0.0
	if uptime > 0 {
		rate = float64(accepted) / uptime
	}
	templateLookups := st.CacheHits + st.FullParses
	templateHitRatio := 0.0
	if templateLookups > 0 {
		templateHitRatio = float64(st.CacheHits) / float64(templateLookups)
	}
	evals, hits := s.inc.DistanceEvals(), s.inc.DistanceCacheHits()
	distRatio := 0.0
	if evals+hits > 0 {
		distRatio = float64(hits) / float64(evals+hits)
	}
	metrics := map[string]any{
		"uptime_seconds":           uptime,
		"ingest_accepted":          accepted,
		"ingest_rejected":          s.rejected.Load(),
		"ingest_processed":         s.processedCount(),
		"ingest_rate_per_sec":      rate,
		"queue_depth":              len(s.queue),
		"queue_capacity":           cap(s.queue),
		"distinct_areas":           s.inc.Distinct(),
		"epochs":                   s.epochs.Load(),
		"epoch_last_ms":            float64(s.lastEpochNS.Load()) / 1e6,
		"epoch_total_ms":           float64(s.totalEpochNS.Load()) / 1e6,
		"template_cache_hits":      st.CacheHits,
		"template_full_parses":     st.FullParses,
		"template_hit_ratio":       templateHitRatio,
		"distance_evals":           evals,
		"distance_cache_hits":      hits,
		"distance_cache_hit_ratio": distRatio,
	}
	if s.wal != nil {
		metrics["wal_next_offset"] = s.wal.NextOffset()
		metrics["wal_durable_offset"] = s.wal.DurableOffset()
		metrics["wal_segments"] = len(s.wal.Segments())
	}
	if s.qcache != nil {
		m := s.qcache.Metrics()
		metrics["semcache_generation"] = m.Generation
		metrics["semcache_regions"] = m.Regions
		metrics["semcache_hits"] = m.Hits
		metrics["semcache_misses"] = m.Misses
		metrics["semcache_bytes_served"] = m.BytesServed
		metrics["semcache_verify_checked"] = m.VerifyChecked
		metrics["semcache_verify_failed"] = m.VerifyFailed
		metrics["semcache_shadow_regions"] = m.ShadowRegions
		metrics["semcache_bytes_resident"] = m.BytesResident
		metrics["semcache_budget"] = m.Budget
		metrics["semcache_composed_hits"] = m.ComposedHits
		metrics["semcache_agg_hits"] = m.AggHits
		metrics["semcache_preagg_hits"] = m.PreaggHits
		metrics["semcache_near_misses"] = m.NearMisses
		metrics["semcache_stale_misses"] = m.StaleMisses
		metrics["semcache_evicted"] = m.Evicted
		metrics["semcache_reused"] = m.Reused
		metrics["semcache_probation_admits"] = m.ProbationAdmits
		if total := m.Hits + m.Misses; total > 0 {
			metrics["semcache_hit_ratio"] = float64(m.Hits) / float64(total)
		} else {
			metrics["semcache_hit_ratio"] = 0.0
		}
		metrics["semcache_per_region"] = m.PerRegion
	}
	if t := s.traffic; t != nil {
		for _, cls := range traffic.Classes {
			cc := t.counts[cls]
			metrics["traffic_"+cls+"_records"] = cc.total.Load()
			metrics["traffic_"+cls+"_extracted"] = cc.extracted.Load()
		}
		metrics["traffic_drift_events"] = t.driftEvents.Load()
		metrics["traffic_interfaces_tracked"] = t.trackedInterfaces()
	}
	return metrics
}

// slowlogEntry is the JSON shape of one /debug/slowlog row; the fingerprint
// renders as fixed-width hex so it lines up with log-mining tooling.
type slowlogEntry struct {
	Fingerprint string  `json:"fingerprint"`
	Stage       string  `json:"stage"`
	Seconds     float64 `json:"seconds"`
	UnixNano    int64   `json:"unix_nano"`
}

// handleSlowlog serves the top-K slowest recorded operations (ranked by
// extraction+execution time, identified by statement fingerprint — raw SQL
// never appears here). ?k=N caps the rows (default 20, 0 = everything
// resident in the ring).
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	k := 20
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "k must be a non-negative integer", http.StatusBadRequest)
			return
		}
		k = n
	}
	top := obs.DefaultSlowLog.TopK(k)
	out := make([]slowlogEntry, len(top))
	for i, e := range top {
		out[i] = slowlogEntry{
			Fingerprint: fmt.Sprintf("%016x", e.Fingerprint),
			Stage:       e.Stage,
			Seconds:     e.Seconds,
			UnixNano:    e.UnixNano,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
