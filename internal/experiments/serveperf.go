package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/skyserver"
)

// ServePerfResult is the outcome of the serving-layer load experiment:
// the full synthetic log replayed over HTTP into skyserved's serving core
// with a deliberately small ingest queue, measuring sustained throughput
// and per-burst latency under 429 backpressure, the cross-epoch
// distance-evaluation reuse the incremental miner achieves, and the
// correctness gates — final report identical to the batch miner, zero
// accepted records lost across a graceful shutdown, and a snapshot that
// restores to the identical report. cmd/benchreport serialises it to
// BENCH_serve.json so successive PRs have a perf trajectory.
type ServePerfResult struct {
	Queries       int     `json:"queries"`
	Seed          int64   `json:"seed"`
	QueueSize     int     `json:"queue_size"`
	BurstSize     int     `json:"burst_size"`
	Bursts        int     `json:"bursts"`
	Retries429    int     `json:"retries_429"`
	IngestSeconds float64 `json:"ingest_seconds"`
	ThroughputRPS float64 `json:"throughput_records_per_sec"`
	LatencyP50MS  float64 `json:"burst_latency_p50_ms"`
	LatencyP99MS  float64 `json:"burst_latency_p99_ms"`

	Epochs            int64   `json:"epochs"`
	DistinctAreas     int     `json:"distinct_areas"`
	DistanceEvals     int64   `json:"distance_evals"`
	DistanceHits      int64   `json:"distance_cache_hits"`
	DistanceHitRatio  float64 `json:"distance_cache_hit_ratio"`
	FinalEpochEvals   int64   `json:"final_epoch_evals"`
	FinalEpochReuse   float64 `json:"final_epoch_reuse_ratio"`
	TemplateHitRatio  float64 `json:"template_cache_hit_ratio"`
	EpochLastMS       float64 `json:"epoch_last_ms"`
	EpochTotalMS      float64 `json:"epoch_total_ms"`
	MatchesBatch      bool    `json:"matches_batch_miner"`
	ZeroLossShutdown  bool    `json:"zero_loss_shutdown"`
	SnapshotRoundTrip bool    `json:"snapshot_round_trip"`

	Report string `json:"-"`
}

// serveMetrics mirrors the numeric fields of GET /metrics.
type serveMetrics struct {
	DistanceEvals    int64   `json:"distance_evals"`
	DistanceHits     int64   `json:"distance_cache_hits"`
	DistanceHitRatio float64 `json:"distance_cache_hit_ratio"`
	TemplateHitRatio float64 `json:"template_hit_ratio"`
	Epochs           int64   `json:"epochs"`
	EpochLastMS      float64 `json:"epoch_last_ms"`
	EpochTotalMS     float64 `json:"epoch_total_ms"`
	DistinctAreas    int     `json:"distinct_areas"`
	Accepted         int64   `json:"ingest_accepted"`
}

func fetchMetrics(url string) (serveMetrics, error) {
	var m serveMetrics
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

func fetchReport(url string) ([]byte, error) {
	resp, err := http.Get(url + "/report?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report: %s: %s", resp.Status, buf.String())
	}
	return buf.Bytes(), nil
}

func (e *Env) serveConfig(snapshot string) serve.Config {
	stats := schema.NewStats()
	skyserver.SeedStats(e.DB, stats)
	return serve.Config{
		Miner: core.Config{
			Schema: e.Schema, Stats: stats, Seed: e.Seed,
		},
		Coverage:     e.DB,
		QueueSize:    512,
		BatchSize:    128,
		EpochAreas:   256,
		SnapshotPath: snapshot,
	}
}

// RunServePerf replays the workload into an in-process serving stack.
func (e *Env) RunServePerf() *ServePerfResult {
	const burstSize = 200

	// The reference: the one-shot batch miner over the identical log, with
	// its own identically-seeded registry.
	batchStats := schema.NewStats()
	skyserver.SeedStats(e.DB, batchStats)
	batchRes := core.NewMiner(core.Config{Schema: e.Schema, Stats: batchStats, Seed: e.Seed}).MineRecords(e.Records)
	batchRes.AttachCoverage(e.DB)
	var batchReport bytes.Buffer
	_ = report.Write(&batchReport, batchRes, report.JSON, report.Options{Coverage: true})

	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("serveperf-%d.json", os.Getpid()))
	defer os.Remove(snapPath)
	os.Remove(snapPath) // never restore a stale run

	srv, err := serve.NewServer(e.serveConfig(snapPath))
	if err != nil {
		return &ServePerfResult{Report: fmt.Sprintf("serveperf: %v\n", err)}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	out := &ServePerfResult{
		Queries: e.Scale, Seed: e.Seed,
		QueueSize: 512, BurstSize: burstSize,
	}

	// Replay as fast as the queue lets us: 429s stall the burst until the
	// pipeline drains, so per-burst latency measures real backpressure.
	var latencies []float64
	t0 := time.Now()
	for lo := 0; lo < len(e.Records); lo += burstSize {
		hi := lo + burstSize
		if hi > len(e.Records) {
			hi = len(e.Records)
		}
		b0 := time.Now()
		retries, err := postUntilAccepted(ts.URL+"/ingest", e.Records[lo:hi])
		if err != nil {
			out.Report = fmt.Sprintf("serveperf: ingest: %v\n", err)
			return out
		}
		out.Retries429 += retries
		latencies = append(latencies, float64(time.Since(b0).Microseconds())/1e3)
		out.Bursts++
	}
	out.IngestSeconds = time.Since(t0).Seconds()
	out.ThroughputRPS = float64(len(e.Records)) / out.IngestSeconds
	sort.Float64s(latencies)
	out.LatencyP50MS = percentile(latencies, 0.50)
	out.LatencyP99MS = percentile(latencies, 0.99)

	// Let the final epoch settle, bracketing it with /metrics to isolate
	// how much distance work the cross-epoch cache saved it.
	pre, err1 := fetchMetrics(ts.URL)
	http.Post(ts.URL+"/flush", "", nil)
	post, err2 := fetchMetrics(ts.URL)
	if err1 == nil && err2 == nil {
		out.FinalEpochEvals = post.DistanceEvals - pre.DistanceEvals
		finalHits := post.DistanceHits - pre.DistanceHits
		if out.FinalEpochEvals+finalHits > 0 {
			out.FinalEpochReuse = float64(finalHits) / float64(out.FinalEpochEvals+finalHits)
		}
		out.Epochs = post.Epochs
		out.DistinctAreas = post.DistinctAreas
		out.DistanceEvals = post.DistanceEvals
		out.DistanceHits = post.DistanceHits
		out.DistanceHitRatio = post.DistanceHitRatio
		out.TemplateHitRatio = post.TemplateHitRatio
		out.EpochLastMS = post.EpochLastMS
		out.EpochTotalMS = post.EpochTotalMS
	}

	serveReport, err := fetchReport(ts.URL)
	if err == nil {
		out.MatchesBatch = bytes.Equal(serveReport, batchReport.Bytes())
	}

	// Graceful shutdown: drain, final epoch, snapshot. Zero loss means the
	// pipeline extracted exactly the records the replay was told were
	// accepted — all of them, since postUntilAccepted re-sends 429 tails.
	if err := srv.Close(); err == nil {
		if data, rerr := os.ReadFile(snapPath); rerr == nil {
			var snap serve.Snapshot
			if json.Unmarshal(data, &snap) == nil {
				out.ZeroLossShutdown = snap.Accepted == int64(len(e.Records)) &&
					snap.Pipeline != nil && snap.Pipeline.Total == len(e.Records)
			}
		}
	}

	// Restart from the snapshot: the restored server must serve the same
	// report bytes without replaying the log.
	if srv2, rerr := serve.NewServer(e.serveConfig(snapPath)); rerr == nil {
		ts2 := httptest.NewServer(srv2.Handler())
		restored, ferr := fetchReport(ts2.URL)
		out.SnapshotRoundTrip = ferr == nil && bytes.Equal(restored, serveReport)
		ts2.Close()
		srv2.Close()
	}

	out.Report = out.render()
	return out
}

// postUntilAccepted POSTs one NDJSON burst, re-sending the tail a 429 left
// behind until the whole burst is in. It returns the number of 429 rounds.
func postUntilAccepted(url string, chunk []qlog.Record) (int, error) {
	retries := 0
	for len(chunk) > 0 {
		var buf bytes.Buffer
		if err := qlog.WriteJSONL(&buf, chunk); err != nil {
			return retries, err
		}
		resp, err := http.Post(url, "application/x-ndjson", &buf)
		if err != nil {
			return retries, err
		}
		var reply struct {
			Accepted int    `json:"accepted"`
			Error    string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return retries, nil
		case http.StatusTooManyRequests:
			if decErr != nil {
				return retries, decErr
			}
			retries++
			chunk = chunk[reply.Accepted:]
			time.Sleep(2 * time.Millisecond)
		default:
			return retries, fmt.Errorf("%s: %s", resp.Status, reply.Error)
		}
	}
	return retries, nil
}

// percentile interpolates the p-quantile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func (r *ServePerfResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12 serveperf — online mining service under replayed load (%d queries)\n\n", r.Queries)
	fmt.Fprintf(&b, "ingest: %d bursts of %d records through a %d-slot queue in %.2fs (%.0f rec/s sustained, %d backpressure retries)\n",
		r.Bursts, r.BurstSize, r.QueueSize, r.IngestSeconds, r.ThroughputRPS, r.Retries429)
	fmt.Fprintf(&b, "burst latency: p50 %.2fms, p99 %.2fms\n", r.LatencyP50MS, r.LatencyP99MS)
	fmt.Fprintf(&b, "epochs: %d over %d distinct areas (last %.1fms, total %.1fms)\n",
		r.Epochs, r.DistinctAreas, r.EpochLastMS, r.EpochTotalMS)
	fmt.Fprintf(&b, "distance work: %d evals, %d cache hits (lifetime hit ratio %.3f); final epoch: %d evals, reuse ratio %.3f\n",
		r.DistanceEvals, r.DistanceHits, r.DistanceHitRatio, r.FinalEpochEvals, r.FinalEpochReuse)
	fmt.Fprintf(&b, "template cache hit ratio: %.3f\n", r.TemplateHitRatio)
	fmt.Fprintf(&b, "matches batch miner byte-for-byte: %v\n", r.MatchesBatch)
	fmt.Fprintf(&b, "zero-loss graceful shutdown:       %v\n", r.ZeroLossShutdown)
	fmt.Fprintf(&b, "snapshot restore round-trips:      %v\n", r.SnapshotRoundTrip)
	return b.String()
}
