package wal

import (
	"bytes"
	"testing"

	"repro/internal/qlog"
)

// seedSegment builds a small well-formed segment image: a few record
// entries, one group entry, a footer + trailer.
func seedSegment() []byte {
	var buf bytes.Buffer
	recs := []qlog.Record{
		{Seq: 0, Time: 0, User: "alice", SQL: "SELECT ra, dec FROM PhotoObj WHERE ra > 180"},
		{Seq: 1, Time: 4, User: "bob", SQL: "not ' terminated"},
		{Seq: 2, Time: 8, User: "alice", SQL: "SELECT TOP 10 * FROM SpecObj"},
	}
	fps := []uint64{7, 0, 9}
	for i := range recs {
		buf.Write(frame(nil, encodeRecord(nil, &recs[i], fps[i])))
	}
	g := group{fp: 7, user: "alice", sql: "SELECT ra, dec FROM PhotoObj WHERE ra > 180",
		seqs: []int{3, 5}, times: []int64{12, 20}}
	buf.Write(frame(nil, encodeGroup(nil, &g)))
	ft := &footer{span: 5, records: 5, minT: 0, maxT: 20, fps: []uint64{0, 7, 9}}
	entry := frame(nil, encodeFooter(nil, ft))
	buf.Write(entry)
	var trailer [12]byte
	trailer[0] = byte(len(entry))
	trailer[1] = byte(len(entry) >> 8)
	trailer[2] = byte(len(entry) >> 16)
	trailer[3] = byte(len(entry) >> 24)
	copy(trailer[4:], footerMagic[:])
	buf.Write(trailer[:])
	return buf.Bytes()
}

// FuzzSegmentDecode drives the segment scanner over arbitrary bytes. The
// codec's contract: never panic, never allocate unboundedly, and treat
// anything that fails the CRC as a clean truncation point. Whatever the
// scanner accepts must re-encode to entries the scanner accepts again
// (decode∘encode is identity on the verified prefix).
func FuzzSegmentDecode(f *testing.F) {
	whole := seedSegment()
	f.Add(whole)
	f.Add(whole[:len(whole)-5])     // torn trailer
	f.Add(whole[:entryHeader+3])    // torn first entry
	f.Add([]byte{})                 // empty segment
	f.Add([]byte{0xff, 0xff, 0xff}) // short header
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/3] ^= 0x20 // CRC must catch this
	f.Add(flipped)
	big := append([]byte(nil), whole...)
	big[0], big[1], big[2], big[3] = 0xff, 0xff, 0xff, 0x7f // huge length prefix
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []qlog.Record
		var fps []uint64
		res, err := scanSegment(bytes.NewReader(data), func(rec qlog.Record, fp uint64) error {
			recs = append(recs, rec)
			fps = append(fps, fp)
			return nil
		})
		if err != nil {
			t.Fatalf("scanSegment returned error for callback-less failure: %v", err)
		}
		if res.goodOff > int64(len(data)) {
			t.Fatalf("goodOff %d beyond input length %d", res.goodOff, len(data))
		}
		if res.records != uint64(len(recs)) {
			t.Fatalf("records %d != delivered %d", res.records, len(recs))
		}
		// Round-trip: re-encode every delivered record and scan again — the
		// verified prefix must be stable under decode∘encode.
		var out bytes.Buffer
		for i := range recs {
			out.Write(frame(nil, encodeRecord(nil, &recs[i], fps[i])))
		}
		res2, err := scanSegment(bytes.NewReader(out.Bytes()), nil)
		if err != nil {
			t.Fatalf("re-scan: %v", err)
		}
		if res2.truncated || res2.records != uint64(len(recs)) {
			t.Fatalf("re-encoded prefix unstable: %+v vs %d records", res2, len(recs))
		}
	})
}
