package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/aggregate"
	"repro/internal/dbscan"
	"repro/internal/distance"
	"repro/internal/qlog"
)

// Incremental is the epoch-based mining state behind the skyserved service.
// Extractions accumulate between epochs through Add; Recluster re-runs the
// clustering stage over everything seen so far, reusing work from previous
// epochs wherever the inputs are provably unchanged:
//
//   - distance values live in an n-independent DynamicPairCache keyed by
//     global item index, so a pair evaluated in epoch k is a lookup in every
//     later epoch;
//   - per-partition LAESA pivot indexes are extended over the appended
//     suffix (items join partitions in first-occurrence order, and an item's
//     relation set never changes) instead of being rebuilt, until the
//     partition has doubled since the last full build;
//   - distance profiles are compiled once per item and kept.
//
// All of that reuse is sound only while the access(a) registry is unchanged:
// profiles read schema.Stats, and extraction grows it. Recluster checks
// Stats.Generation and drops every cached structure when it moved.
//
// Because items accumulate in the same first-occurrence order the batch
// mine() dedups in, a final-epoch Recluster over a fully drained log is
// equivalent to MineRecords over the same records (same eps selection, same
// partition traversal, same DBSCAN input) — the property the serve smoke
// test asserts byte-for-byte on the report.
//
// Add is safe to call concurrently with other Adds. Recluster must not run
// concurrently with itself but may overlap Adds: it clusters a consistent
// snapshot of the items admitted before it started.
type Incremental struct {
	m   *Miner
	acc *itemAccum

	// reps holds the first record that produced each item — the
	// representative re-extracted on restore.
	reps []qlog.Record

	gen      uint64
	primed   bool
	profiles []*distance.Profile
	metric   *distance.Metric
	// kern is the flat SoA distance kernel over the compiled profiles; it is
	// append-only across epochs (item indices are stable) and dropped with
	// the other caches when the access(a) registry moves.
	kern *distance.Kernel
	// cache is swapped by Recluster while the metrics handlers read the
	// lifetime counters concurrently, hence the atomic pointer.
	cache atomic.Pointer[distance.DynamicPairCache]
	parts map[string]*incPartition

	// sub, when set (IncrementalShared), replaces the private metric /
	// profiles / kern / cache quartet: items intern into the shared kernel
	// and slots maps local item index → substrate slot.
	sub   *Substrate
	slots []int

	// delta is the previous epoch's clustering in global item indices — the
	// state a DeltaEpochs ReclusterAuto reduces against. nil until the first
	// full epoch records an anchor.
	delta *deltaState
}

// deltaState captures one epoch's clustering outcome for the delta path.
type deltaState struct {
	// n is the item count the epoch covered; items[n:] are new next time.
	n int
	// clusters are the global member index lists (ascending) per cluster;
	// noise the global indices left unclustered.
	clusters [][]int
	noise    []int
	// sinceAnchor counts delta epochs since the last full re-cluster;
	// anchorEps is the eps that full epoch chose (deltas do not re-derive
	// eps — a drifting k-distance curve is re-anchored at the next full
	// epoch instead).
	sinceAnchor int
	anchorEps   float64
}

// incPartition is the persistent clustering state of one relation-set
// partition.
type incPartition struct {
	// members are the item indices clustered last epoch (ascending).
	members []int
	ix      *dbscan.PivotIndex
	// builtN is the partition size when ix was last built from scratch;
	// once the partition doubles, a rebuild re-spreads the pivots.
	builtN int
}

// Incremental returns a fresh epoch-based miner sharing this Miner's
// configuration and access(a) registry.
func (m *Miner) Incremental() *Incremental {
	return &Incremental{
		m:     m,
		acc:   newItemAccum(),
		parts: make(map[string]*incPartition),
	}
}

// IncrementalShared returns an epoch-based miner that clusters through the
// shared substrate instead of private distance structures — the per-class
// miners use this so overlapping area populations pay for each distance
// once. Results are bit-identical to a private Incremental over the same
// records. Miners sharing a substrate must recluster sequentially; Adds may
// still run concurrently.
func (m *Miner) IncrementalShared(sub *Substrate) *Incremental {
	inc := m.Incremental()
	inc.sub = sub
	return inc
}

// Add folds one extracted record into the accumulator. It reports whether
// the record introduced a new distinct area (the serve epoch trigger counts
// those).
func (inc *Incremental) Add(ar *qlog.AreaRecord) (isNew bool) {
	inc.acc.mu.Lock()
	defer inc.acc.mu.Unlock()
	idx, isNew := inc.acc.add(ar)
	if isNew && idx == len(inc.reps) {
		inc.reps = append(inc.reps, ar.Record)
	}
	return isNew
}

// Distinct returns the current distinct-area count.
func (inc *Incremental) Distinct() int {
	inc.acc.mu.Lock()
	defer inc.acc.mu.Unlock()
	return len(inc.acc.items)
}

// DistanceEvals and DistanceCacheHits expose the lifetime counters of the
// cross-epoch cache; per-epoch deltas give the reuse ratio serveperf reports.
func (inc *Incremental) DistanceEvals() int64 {
	if inc.sub != nil {
		return inc.sub.Evals()
	}
	if c := inc.cache.Load(); c != nil {
		return c.Evals()
	}
	return 0
}

func (inc *Incremental) DistanceCacheHits() int64 {
	if inc.sub != nil {
		return inc.sub.Hits()
	}
	if c := inc.cache.Load(); c != nil {
		return c.Hits()
	}
	return 0
}

// snapshotItems copies the accumulator state admitted so far: shallow item
// copies (areas are immutable; weights and user sets keep mutating under
// concurrent Adds) plus the contradictory count.
func (inc *Incremental) snapshotItems() ([]*aggregate.Item, int) {
	inc.acc.mu.Lock()
	defer inc.acc.mu.Unlock()
	items := make([]*aggregate.Item, len(inc.acc.items))
	for i, it := range inc.acc.items {
		users := make(map[string]struct{}, len(it.Users))
		for u := range it.Users {
			users[u] = struct{}{}
		}
		items[i] = &aggregate.Item{Area: it.Area, Weight: it.Weight, Users: users, RelKey: it.RelKey}
	}
	return items, inc.acc.contradictory
}

// Recluster runs one full epoch: it clusters every area admitted before the
// call and returns the same Result shape as a batch mine. DistanceEvals and
// DistanceCacheHits report the cross-epoch cache's lifetime counters.
func (inc *Incremental) Recluster() *Result {
	return inc.recluster(true)
}

// ReclusterAuto runs one epoch, choosing between a full re-cluster and a
// delta epoch (cfg.DeltaEpochs). A delta epoch clusters only the reduced
// set — one weighted representative per stable cluster, plus last epoch's
// noise and the areas admitted since — and every cfg.FullReclusterEvery-th
// epoch is forced full so the approximation is re-anchored to the exact
// clustering. Configurations the delta path cannot serve (OPTICS, sampling,
// a moved access(a) registry, no anchor yet) run full.
func (inc *Incremental) ReclusterAuto() *Result {
	full := !inc.m.cfg.DeltaEpochs ||
		inc.m.cfg.Algorithm != AlgDBSCAN ||
		inc.m.cfg.SampleSize > 0 ||
		inc.delta == nil ||
		inc.m.stats.Generation() != inc.gen ||
		inc.delta.sinceAnchor+1 >= inc.m.fullReclusterEvery()
	return inc.recluster(full)
}

func (m *Miner) fullReclusterEvery() int {
	if m.cfg.FullReclusterEvery > 0 {
		return m.cfg.FullReclusterEvery
	}
	return 8
}

func (inc *Incremental) recluster(full bool) *Result {
	ep := epochStage.Start()
	defer ep.End()
	epochsTotal.Inc()
	snapSp := epochSnapshotStage.Start()
	items, contradictory := inc.snapshotItems()
	snapSp.End()
	res := &Result{
		ContradictoryAreas: contradictory,
		DistinctAreas:      len(items),
	}

	// Sampling shuffles items in place and breaks index stability; when it
	// triggers, fall back to the batch engine on the snapshot (correct, no
	// cross-epoch reuse, no delta anchor). The serving default is
	// SampleSize = 0.
	if inc.m.cfg.SampleSize > 0 && len(items) > inc.m.cfg.SampleSize {
		inc.delta = nil
		inc.m.clusterBody(items, res)
		return res
	}

	// Cached distances, profiles, pivot tables and the delta anchor are only
	// valid while the access(a) registry they were compiled from is
	// unchanged.
	if gen := inc.m.stats.Generation(); gen != inc.gen || !inc.primed {
		if inc.primed {
			epochCacheResets.Inc()
		}
		inc.primed = true
		inc.gen = gen
		if inc.sub == nil {
			inc.metric = &distance.Metric{Mode: inc.m.cfg.Mode, Stats: inc.m.stats}
			inc.profiles = inc.profiles[:0]
			inc.kern = distance.NewKernel(inc.m.cfg.Mode)
			inc.cache.Store(nil)
		} else {
			inc.slots = inc.slots[:0]
		}
		inc.parts = make(map[string]*incPartition)
		inc.delta = nil
		full = true
	}
	profSp := epochProfilesStage.Start()
	var cache pairSource
	if inc.sub != nil {
		inc.sub.ensure(inc.gen)
		for i := len(inc.slots); i < len(items); i++ {
			inc.slots = append(inc.slots, inc.sub.slotFor(items[i].Area))
		}
		cache = &subView{sub: inc.sub, slots: inc.slots}
	} else {
		for i := len(inc.profiles); i < len(items); i++ {
			p := inc.metric.Profile(items[i].Area)
			inc.profiles = append(inc.profiles, p)
			inc.kern.Add(p)
		}
		dc := inc.cache.Load()
		if dc == nil {
			dc = distance.NewDynamicPairCache(inc.kern.Distance)
			inc.cache.Store(dc)
		} else {
			// The kernel is append-only, so the method value stays valid as
			// items arrive; re-setting it here keeps the swap symmetric with
			// resets.
			dc.SetFn(inc.kern.Distance)
		}
		cache = dc
	}
	profSp.End()

	if !full {
		return inc.deltaEpoch(items, res, cache)
	}
	anchorEpochsTotal.Inc()
	res.ClusteredAreas = len(items)

	eps := inc.m.cfg.Eps
	if inc.m.cfg.AutoEps && len(items) > 1 {
		var sampleHits int64
		eps, sampleHits = inc.m.autoEps(len(items), cache.Dist)
		res.DistanceCacheHits += sampleHits
	}
	res.ChosenEps = eps

	groups, order := partitionItems(items, eps)
	opts := aggregate.Options{SigmaRule: inc.m.cfg.SigmaRule, MinColumnSupport: inc.m.cfg.MinColumnSupport}

	// A full DBSCAN epoch doubles as the delta anchor: record the clustering
	// in global item indices so the next ReclusterAuto can reduce against it.
	var anchor *deltaState
	if inc.m.cfg.Algorithm == AlgDBSCAN {
		anchor = &deltaState{n: len(items), anchorEps: eps}
	}

	clusterSp := epochClusterStage.Start()
	live := make(map[string]bool, len(order))
	for _, key := range order {
		part := groups[key]
		live[key] = true
		weights := make([]int, len(part))
		for i, idx := range part {
			weights[i] = items[idx].Weight
		}
		distFn := func(i, j int) float64 {
			return cache.Dist(part[i], part[j])
		}
		dcfg := dbscan.Config{Eps: eps, MinPts: inc.m.cfg.MinPts, Workers: inc.m.cfg.Workers, Weights: weights}
		var dres *dbscan.Result
		switch {
		case inc.m.cfg.Algorithm == AlgOPTICS:
			o := dbscan.RunOPTICS(len(part), distFn, eps*2, inc.m.cfg.MinPts, weights)
			dres = o.ExtractDBSCAN(eps)
		case inc.m.usePivots(len(part)):
			dres = dbscan.ClusterWithIndex(len(part), distFn, dcfg, inc.partitionIndex(key, part, distFn))
		default:
			dres = dbscan.Cluster(len(part), distFn, dcfg)
		}
		collectPartition(res, items, part, dres, opts)
		if anchor != nil {
			for _, memberIdx := range dres.ClusterIndices() {
				global := make([]int, len(memberIdx))
				for i, idx := range memberIdx {
					global[i] = part[idx]
				}
				anchor.clusters = append(anchor.clusters, global)
			}
			for i, l := range dres.Labels {
				if l == dbscan.Noise {
					anchor.noise = append(anchor.noise, part[i])
				}
			}
		}
	}
	// Eps changes (AutoEps) can dissolve partitions; drop indexes whose key
	// vanished so they don't pin stale tables.
	for key := range inc.parts {
		if !live[key] {
			delete(inc.parts, key)
		}
	}

	clusterSp.End()
	inc.delta = anchor

	res.DistanceEvals = cache.Evals()
	res.DistanceCacheHits += cache.Hits()

	finSp := epochFinalizeStage.Start()
	finalizeClusters(res)
	finSp.End()
	return res
}

// deltaEpoch clusters the reduced point set — one representative per stable
// cluster carrying the cluster's total weight, plus last epoch's noise and
// the items admitted since — then merges representative clusters back into
// full member lists. Density is conserved in the representative direction:
// a cluster's total weight rides on its representative, so prior clusters
// can merge through new bridge points; prior clusters are never re-split
// until the next full anchor re-clusters from scratch.
func (inc *Incremental) deltaEpoch(items []*aggregate.Item, res *Result, cache pairSource) *Result {
	deltaEpochsTotal.Inc()
	prior := inc.delta
	eps := prior.anchorEps
	res.ChosenEps = eps
	opts := aggregate.Options{SigmaRule: inc.m.cfg.SigmaRule, MinColumnSupport: inc.m.cfg.MinColumnSupport}

	// reduced[i] describes point i of the reduced set: its global item index,
	// its DBSCAN weight, and the prior cluster it stands for (-1 for noise
	// and new items, which stand only for themselves).
	type redPoint struct {
		global int
		weight int
		prior  int
	}
	reduced := make([]redPoint, 0, len(prior.clusters)+len(prior.noise)+len(items)-prior.n)
	for ci, members := range prior.clusters {
		rep, total := members[0], 0
		for _, g := range members {
			total += items[g].Weight
			if items[g].Weight > items[rep].Weight {
				rep = g
			}
		}
		reduced = append(reduced, redPoint{global: rep, weight: total, prior: ci})
	}
	for _, g := range prior.noise {
		reduced = append(reduced, redPoint{global: g, weight: items[g].Weight, prior: -1})
	}
	for g := prior.n; g < len(items); g++ {
		reduced = append(reduced, redPoint{global: g, weight: items[g].Weight, prior: -1})
	}
	res.ClusteredAreas = len(reduced)
	deltaPointsTotal.Add(int64(len(reduced)))

	// Partition the reduced set by relation set exactly like a full epoch
	// (representatives inherit their area's relation set, so every prior
	// member shares its representative's partition).
	redItems := make([]*aggregate.Item, len(reduced))
	for i, p := range reduced {
		redItems[i] = items[p.global]
	}
	groups, order := partitionItems(redItems, eps)

	next := &deltaState{n: len(items), anchorEps: eps, sinceAnchor: prior.sinceAnchor + 1}
	clusterSp := epochClusterStage.Start()
	for _, key := range order {
		part := groups[key] // indices into reduced
		weights := make([]int, len(part))
		for i, idx := range part {
			weights[i] = reduced[idx].weight
		}
		distFn := func(i, j int) float64 {
			return cache.Dist(reduced[part[i]].global, reduced[part[j]].global)
		}
		dcfg := dbscan.Config{Eps: eps, MinPts: inc.m.cfg.MinPts, Workers: inc.m.cfg.Workers, Weights: weights}
		var dres *dbscan.Result
		if inc.m.usePivots(len(part)) {
			// Fresh pivots per delta: the reduced index space changes every
			// epoch, so the persistent per-partition indexes (anchored to
			// global indices) cannot be extended here.
			dres = dbscan.ClusterWithPivots(len(part), distFn, dcfg, inc.m.pivotCount())
		} else {
			dres = dbscan.Cluster(len(part), distFn, dcfg)
		}

		// Merge back: each reduced member expands to the prior cluster it
		// stands for (or itself), giving full member lists in global indices.
		for _, memberIdx := range dres.ClusterIndices() {
			var global []int
			for _, idx := range memberIdx {
				p := reduced[part[idx]]
				if p.prior >= 0 {
					global = append(global, prior.clusters[p.prior]...)
				} else {
					global = append(global, p.global)
				}
			}
			sort.Ints(global)
			next.clusters = append(next.clusters, global)
		}
		for i, l := range dres.Labels {
			if l != dbscan.Noise {
				continue
			}
			p := reduced[part[i]]
			if p.prior >= 0 {
				// Defensive: a representative carries its cluster's total
				// weight (>= MinPts) and is core in its own neighbourhood, so
				// it cannot be labelled noise; if that invariant ever breaks,
				// keep the prior cluster rather than dissolving it.
				next.clusters = append(next.clusters, prior.clusters[p.prior])
				continue
			}
			next.noise = append(next.noise, p.global)
			res.NoiseQueries += items[p.global].Weight
		}
	}
	sort.Ints(next.noise)

	for _, global := range next.clusters {
		members := make([]*aggregate.Item, len(global))
		for i, g := range global {
			members[i] = items[g]
		}
		res.Clusters = append(res.Clusters, aggregate.Summarize(0, members, opts))
	}
	clusterSp.End()
	inc.delta = next

	res.DistanceEvals = cache.Evals()
	res.DistanceCacheHits += cache.Hits()

	finSp := epochFinalizeStage.Start()
	finalizeClusters(res)
	finSp.End()
	return res
}

// partitionIndex returns a pivot index covering part, extending last
// epoch's table when the partition only grew, rebuilding when membership
// changed (an eps flip re-keyed the grouping) or the partition doubled.
func (inc *Incremental) partitionIndex(key string, part []int, distFn func(i, j int) float64) *dbscan.PivotIndex {
	p := inc.parts[key]
	if p != nil && p.ix != nil && prefixEqual(p.members, part) && len(part) < 2*p.builtN {
		p.ix.Extend(len(part), distFn)
		p.members = append([]int(nil), part...)
		return p.ix
	}
	ix := dbscan.NewPivotIndex(len(part), distFn, inc.m.pivotCount())
	inc.parts[key] = &incPartition{
		members: append([]int(nil), part...),
		ix:      ix,
		builtN:  len(part),
	}
	return ix
}

// prefixEqual reports whether old is a prefix of cur.
func prefixEqual(old, cur []int) bool {
	if len(old) > len(cur) {
		return false
	}
	for i, v := range old {
		if cur[i] != v {
			return false
		}
	}
	return true
}

// ItemState is the serialisable form of one distinct access area: the
// representative statement that first produced it plus the accumulated
// weight and user set. Restore re-extracts the representative instead of
// serialising the CNF — cheap, and guaranteed consistent with the restored
// access(a) registry.
type ItemState struct {
	SQL    string   `json:"sql"`
	Seq    int      `json:"seq"`
	Time   int64    `json:"time,omitempty"`
	User   string   `json:"user,omitempty"`
	Weight int      `json:"weight"`
	Users  []string `json:"users,omitempty"`
}

// State is the serialisable mining state. It deliberately excludes the
// access(a) registry: the owner (internal/serve) snapshots schema.Stats
// alongside and must restore it BEFORE RestoreState so re-extraction
// reproduces the exact areas that were exported.
type State struct {
	Items         []ItemState `json:"items"`
	Contradictory int         `json:"contradictory,omitempty"`
}

// ExportState captures the accumulator for a snapshot.
func (inc *Incremental) ExportState() *State {
	inc.acc.mu.Lock()
	defer inc.acc.mu.Unlock()
	st := &State{
		Items:         make([]ItemState, len(inc.acc.items)),
		Contradictory: inc.acc.contradictory,
	}
	for i, it := range inc.acc.items {
		users := make([]string, 0, len(it.Users))
		for u := range it.Users {
			users = append(users, u)
		}
		sort.Strings(users)
		rep := inc.reps[i]
		st.Items[i] = ItemState{
			SQL:    rep.SQL,
			Seq:    rep.Seq,
			Time:   rep.Time,
			User:   rep.User,
			Weight: it.Weight,
			Users:  users,
		}
	}
	return st
}

// RestoreState rebuilds the accumulator from an exported state by
// re-extracting each representative statement in order. It must be called
// on a fresh Incremental whose Stats registry has already been restored.
func (inc *Incremental) RestoreState(st *State) error {
	if st == nil {
		return nil
	}
	if inc.Distinct() > 0 {
		return fmt.Errorf("core: RestoreState on a non-empty Incremental")
	}
	recs := make([]qlog.Record, len(st.Items))
	for i, it := range st.Items {
		recs[i] = qlog.Record{Seq: it.Seq, Time: it.Time, User: it.User, SQL: it.SQL}
	}
	areaRecs, _ := inc.m.pipeline().Run(recs)
	if len(areaRecs) != len(st.Items) {
		return fmt.Errorf("core: restore re-extracted %d of %d representatives", len(areaRecs), len(st.Items))
	}
	inc.acc.mu.Lock()
	defer inc.acc.mu.Unlock()
	for i := range areaRecs {
		idx, isNew := inc.acc.add(&areaRecs[i])
		if idx < 0 {
			return fmt.Errorf("core: representative %d became contradictory on restore", st.Items[i].Seq)
		}
		if !isNew {
			return fmt.Errorf("core: representatives %d and %d collapsed to one area on restore", inc.reps[idx].Seq, st.Items[i].Seq)
		}
		inc.reps = append(inc.reps, areaRecs[i].Record)
		it := inc.acc.items[idx]
		it.Weight = st.Items[i].Weight
		it.Users = make(map[string]struct{}, len(st.Items[i].Users))
		for _, u := range st.Items[i].Users {
			it.Users[u] = struct{}{}
		}
	}
	inc.acc.contradictory = st.Contradictory
	return nil
}
