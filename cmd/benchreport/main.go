// Command benchreport regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic SkyServer substrate and prints a
// paper-vs-measured comparison. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	benchreport [-scale 20000] [-seed 42] [-exp all|table1|fig1a|fig1b|fig1c|coverage|olapclus|olapclusraw|efficiency|requery|ablation|clusterperf|pipelineperf]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The clusterperf experiment additionally writes its before/after numbers
// (brute-force vs pivot-index clustering) to -benchjson (default
// BENCH_clustering.json), pipelineperf writes its uncached-vs-cached
// extraction numbers to -pipejson (default BENCH_pipeline.json), and
// serveperf writes the online-service load numbers (throughput, backpressure
// latency, cross-epoch reuse) to -servejson (default BENCH_serve.json), so
// successive changes have a perf trajectory. -cpuprofile/-memprofile capture
// stdlib pprof profiles of the selected experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run is main's body with a plain exit code so deferred profile writers run
// before the process exits.
func run() int {
	scale := flag.Int("scale", 20000, "number of log queries to generate")
	seed := flag.Int64("seed", 42, "generator seed")
	exp := flag.String("exp", "all", "experiment id (all, table1, fig1a, fig1b, fig1c, coverage, olapclus, olapclusraw, efficiency, requery, ablation, ablationsigma, density, scaling, clusterperf, pipelineperf, serveperf)")
	benchJSON := flag.String("benchjson", "BENCH_clustering.json", "output path for the clusterperf JSON record")
	pipeJSON := flag.String("pipejson", "BENCH_pipeline.json", "output path for the pipelineperf JSON record")
	serveJSON := flag.String("servejson", "BENCH_serve.json", "output path for the serveperf JSON record")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	env := experiments.NewEnv(*scale, *seed)
	want := strings.ToLower(*exp)
	ran := 0
	run := func(name string, f func() string) {
		if want != "all" && want != name {
			return
		}
		ran++
		fmt.Println(strings.Repeat("=", 100))
		fmt.Print(f())
		fmt.Println()
	}
	writeJSON := func(path string, v any) {
		if data, err := json.MarshalIndent(v, "", "  "); err == nil {
			if werr := os.WriteFile(path, append(data, '\n'), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}

	run("table1", func() string { return env.RunTable1().Report })
	run("fig1a", func() string { return env.RunFigure1('a').Report })
	run("fig1b", func() string { return env.RunFigure1('b').Report })
	run("fig1c", func() string { return env.RunFigure1('c').Report })
	run("coverage", func() string { return env.RunCoverage().Report })
	run("olapclus", func() string { return env.RunOLAPClusExact().Report })
	run("olapclusraw", func() string { return env.RunOLAPClusRaw().Report })
	run("efficiency", func() string { return env.RunEfficiency().Report })
	run("requery", func() string { return env.RunRequery().Report })
	run("ablation", func() string { return env.RunAblation().Report })
	run("ablationsigma", func() string { return env.RunAblationSigma().Report })
	run("density", func() string { return env.RunDensity().Report })
	run("scaling", func() string { return env.RunScaling().Report })
	run("clusterperf", func() string {
		res := env.RunClusterPerf()
		writeJSON(*benchJSON, res)
		return res.Report
	})
	run("pipelineperf", func() string {
		res := env.RunPipelinePerf()
		writeJSON(*pipeJSON, res)
		return res.Report
	})
	run("serveperf", func() string {
		res := env.RunServePerf()
		writeJSON(*serveJSON, res)
		return res.Report
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 2
		}
	}
	return 0
}
