package memdb

import (
	"errors"
	"testing"

	"repro/internal/interval"
)

// sampleDB builds a small database:
//
//	T(u, v):   (1,10) (2,20) (3,30) (4,40)
//	S(u, w):   (1,'a') (2,'b') (9,'c')
func sampleDB(t *testing.T) *DB {
	t.Helper()
	db := New(nil)
	db.CreateTable("T", "u", "v")
	db.CreateTable("S", "u", "w")
	for _, r := range [][]Value{{N(1), N(10)}, {N(2), N(20)}, {N(3), N(30)}, {N(4), N(40)}} {
		if err := db.Insert("T", r...); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]Value{{N(1), S("a")}, {N(2), S("b")}, {N(9), S("c")}} {
		if err := db.Insert("S", r...); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustExec(t *testing.T, db *DB, q string) *ResultSet {
	t.Helper()
	rs, err := db.ExecuteSQL(q, ExecOptions{})
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return rs
}

func TestSelectWhere(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE v > 15 AND v < 45")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Rows[0][0].Num != 2 {
		t.Errorf("first = %v", rs.Rows[0])
	}
}

func TestSelectStarColumns(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT * FROM T WHERE u = 1")
	if len(rs.Columns) != 2 || rs.Columns[0] != "T.u" {
		t.Errorf("cols = %v", rs.Columns)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][1].Num != 10 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT t.u * 2 + 1 AS x FROM T t WHERE t.u = 3")
	if rs.Columns[0] != "x" || rs.Rows[0][0].Num != 7 {
		t.Errorf("rs = %v %v", rs.Columns, rs.Rows)
	}
}

func TestInnerJoin(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT T.u, S.w FROM T INNER JOIN S ON T.u = S.u")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestLeftOuterJoinPadsNulls(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT T.u, S.w FROM T LEFT JOIN S ON T.u = S.u ORDER BY T.u")
	if len(rs.Rows) != 4 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// u=3 and u=4 have no S match: w is NULL.
	if rs.Rows[2][1].Kind != Null || rs.Rows[3][1].Kind != Null {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestFullOuterJoin(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT T.u, S.u FROM T FULL OUTER JOIN S ON T.u = S.u")
	// 2 matches + 2 unmatched T + 1 unmatched S = 5.
	if len(rs.Rows) != 5 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestRightOuterJoin(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT T.u, S.u FROM T RIGHT JOIN S ON T.u = S.u")
	// 2 matches + unmatched S row (u=9).
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestNaturalJoin(t *testing.T) {
	db := sampleDB(t)
	// Common column u.
	rs := mustExec(t, db, "SELECT T.v, S.w FROM T NATURAL JOIN S")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestCrossJoin(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT T.u FROM T CROSS JOIN S")
	if len(rs.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rs.Rows))
	}
	rs = mustExec(t, db, "SELECT T.u FROM T, S")
	if len(rs.Rows) != 12 {
		t.Fatalf("comma join rows = %d", len(rs.Rows))
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := New(nil)
	db.CreateTable("G", "k", "v")
	for _, r := range [][]Value{
		{S("a"), N(1)}, {S("a"), N(2)}, {S("b"), N(10)}, {S("b"), N(20)}, {S("b"), N(30)},
	} {
		db.Insert("G", r...)
	}
	rs := mustExec(t, db, "SELECT k, SUM(v), COUNT(*), MIN(v), MAX(v), AVG(v) FROM G GROUP BY k ORDER BY k")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	a := rs.Rows[0]
	if a[1].Num != 3 || a[2].Num != 2 || a[3].Num != 1 || a[4].Num != 2 || a[5].Num != 1.5 {
		t.Errorf("group a = %v", a)
	}
	b := rs.Rows[1]
	if b[1].Num != 60 || b[2].Num != 3 || b[5].Num != 20 {
		t.Errorf("group b = %v", b)
	}
}

func TestHaving(t *testing.T) {
	db := New(nil)
	db.CreateTable("G", "k", "v")
	for _, r := range [][]Value{{S("a"), N(1)}, {S("b"), N(10)}, {S("b"), N(20)}} {
		db.Insert("G", r...)
	}
	rs := mustExec(t, db, "SELECT k FROM G GROUP BY k HAVING SUM(v) > 5")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str != "b" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestGlobalAggregateOnEmptyResult(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT COUNT(*) FROM T WHERE u > 100")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Num != 0 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	db := New(nil)
	db.CreateTable("D", "v")
	for _, v := range []float64{1, 1, 2, 2, 3} {
		db.Insert("D", N(v))
	}
	rs := mustExec(t, db, "SELECT COUNT(DISTINCT v) FROM D")
	if rs.Rows[0][0].Num != 3 {
		t.Errorf("count distinct = %v", rs.Rows[0][0])
	}
}

func TestDistinctRows(t *testing.T) {
	db := New(nil)
	db.CreateTable("D", "v")
	for _, v := range []float64{1, 1, 2} {
		db.Insert("D", N(v))
	}
	rs := mustExec(t, db, "SELECT DISTINCT v FROM D")
	if len(rs.Rows) != 2 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestOrderByDescAndTop(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT TOP 2 u FROM T ORDER BY u DESC")
	if len(rs.Rows) != 2 || rs.Rows[0][0].Num != 4 || rs.Rows[1][0].Num != 3 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestLimitDialect(t *testing.T) {
	db := sampleDB(t)
	// Lenient mode executes LIMIT like TOP.
	rs := mustExec(t, db, "SELECT u FROM T LIMIT 2")
	if len(rs.Rows) != 2 {
		t.Errorf("rows = %v", rs.Rows)
	}
	// Strict T-SQL mode rejects it the way SkyServer does (§6.6).
	_, err := db.ExecuteSQL("SELECT u FROM T LIMIT 2", ExecOptions{StrictTSQL: true})
	var de *DialectError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DialectError", err)
	}
}

func TestRowLimitError(t *testing.T) {
	db := sampleDB(t)
	_, err := db.ExecuteSQL("SELECT u FROM T", ExecOptions{RowLimit: 3})
	var rle *RowLimitError
	if !errors.As(err, &rle) || rle.Limit != 3 {
		t.Fatalf("err = %v", err)
	}
	// TOP under the cap is fine.
	if _, err := db.ExecuteSQL("SELECT TOP 2 u FROM T", ExecOptions{RowLimit: 3}); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestExistsCorrelated(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE EXISTS (SELECT * FROM S WHERE S.u = T.u)")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT u FROM T WHERE NOT EXISTS (SELECT * FROM S WHERE S.u = T.u)")
	if len(rs.Rows) != 2 {
		t.Fatalf("not exists rows = %v", rs.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE u IN (SELECT u FROM S)")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestQuantified(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE u > ALL (SELECT u FROM S WHERE u < 3)")
	// S.u < 3: {1, 2}; T.u > all => {3, 4}.
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT u FROM T WHERE u = ANY (SELECT u FROM S)")
	if len(rs.Rows) != 2 {
		t.Fatalf("any rows = %v", rs.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE v = (SELECT MAX(v) FROM T)")
	// Self-reference is fine for the engine (extraction forbids it, the
	// engine does not need to).
	if len(rs.Rows) != 1 || rs.Rows[0][0].Num != 4 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT x.u FROM (SELECT u FROM T WHERE v > 15) AS x WHERE x.u < 4")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestBetweenInLike(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE u BETWEEN 2 AND 3")
	if len(rs.Rows) != 2 {
		t.Fatalf("between rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT u FROM S WHERE w LIKE '_'")
	if len(rs.Rows) != 3 {
		t.Fatalf("like rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT u FROM S WHERE w LIKE 'a%'")
	if len(rs.Rows) != 1 {
		t.Fatalf("like prefix rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT u FROM T WHERE u IN (1, 4)")
	if len(rs.Rows) != 2 {
		t.Fatalf("in rows = %v", rs.Rows)
	}
}

func TestCaseExpr(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT CASE WHEN u < 3 THEN 'small' ELSE 'big' END FROM T ORDER BY u")
	if rs.Rows[0][0].Str != "small" || rs.Rows[3][0].Str != "big" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestNullComparisons(t *testing.T) {
	db := New(nil)
	db.CreateTable("NT", "v")
	db.Insert("NT", NullValue())
	db.Insert("NT", N(1))
	rs := mustExec(t, db, "SELECT v FROM NT WHERE v = 1")
	if len(rs.Rows) != 1 {
		t.Errorf("rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT v FROM NT WHERE v IS NULL")
	if len(rs.Rows) != 1 {
		t.Errorf("is-null rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT v FROM NT WHERE v <> 1")
	if len(rs.Rows) != 0 {
		t.Errorf("null <> rows = %v", rs.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT ABS(0 - u) FROM T WHERE u = 2")
	if rs.Rows[0][0].Num != 2 {
		t.Errorf("abs = %v", rs.Rows[0][0])
	}
	rs = mustExec(t, db, "SELECT UPPER(w) FROM S WHERE u = 1")
	if rs.Rows[0][0].Str != "A" {
		t.Errorf("upper = %v", rs.Rows[0][0])
	}
}

func TestContentIntervalAndValues(t *testing.T) {
	db := sampleDB(t)
	iv, ok := db.ContentInterval("T.u")
	if !ok || !iv.Equal(interval.Closed(1, 4)) {
		t.Errorf("content = %v %v", iv, ok)
	}
	vals, ok := db.ContentValues("S.w")
	if !ok || len(vals) != 3 || vals[0] != "a" {
		t.Errorf("values = %v %v", vals, ok)
	}
	if _, ok := db.ContentInterval("T.nosuch"); ok {
		t.Error("unknown column should fail")
	}
}

func TestSampleColumn(t *testing.T) {
	db := sampleDB(t)
	s := db.SampleColumn("T.v", 2)
	if len(s) != 2 {
		t.Errorf("sample = %v", s)
	}
}

func TestObjectFraction(t *testing.T) {
	db := sampleDB(t)
	box := interval.NewBox()
	box.Set("T.u", interval.Closed(1, 2))
	frac := db.ObjectFraction([]string{"T"}, box, nil)
	if frac != 0.5 {
		t.Errorf("fraction = %v, want 0.5", frac)
	}
	// With categorical filter on S.
	box2 := interval.NewBox()
	frac = db.ObjectFraction([]string{"S"}, box2, map[string][]string{"S.w": {"a", "b"}})
	if frac < 0.66 || frac > 0.67 {
		t.Errorf("categorical fraction = %v", frac)
	}
}

func TestRateLimiter(t *testing.T) {
	rl := NewRateLimiter(3)
	for i := 0; i < 3; i++ {
		if !rl.Allow("alice", int64(i)) {
			t.Fatalf("query %d should be allowed", i)
		}
	}
	if rl.Allow("alice", 10) {
		t.Error("4th query within window should be denied")
	}
	if !rl.Allow("bob", 10) {
		t.Error("other users unaffected")
	}
	// After the window slides, alice can query again.
	if !rl.Allow("alice", 100) {
		t.Error("query after window should pass")
	}
	if err := rl.Check("alice", 100); err == nil {
		// 100 again: second query at t=100; only 1 in window... allowed.
		_ = err
	}
	var rle *RateLimitError
	rl2 := NewRateLimiter(1)
	rl2.Allow("x", 0)
	if err := rl2.Check("x", 1); !errors.As(err, &rle) {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownTableError(t *testing.T) {
	db := sampleDB(t)
	if _, err := db.ExecuteSQL("SELECT * FROM NoSuch", ExecOptions{}); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestUnionExecution(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE u <= 2 UNION SELECT u FROM S WHERE u = 9")
	if len(rs.Rows) != 3 {
		t.Fatalf("union rows = %v", rs.Rows)
	}
	// Plain UNION deduplicates overlapping values (u = 1, 2 from both).
	rs = mustExec(t, db, "SELECT u FROM T WHERE u <= 2 UNION SELECT u FROM S WHERE u <= 2")
	if len(rs.Rows) != 2 {
		t.Fatalf("dedup union rows = %v", rs.Rows)
	}
	rs = mustExec(t, db, "SELECT u FROM T WHERE u <= 2 UNION ALL SELECT u FROM S WHERE u <= 2")
	if len(rs.Rows) != 4 {
		t.Fatalf("union all rows = %v", rs.Rows)
	}
}

func TestTopPercent(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT TOP 50 PERCENT u FROM T ORDER BY u")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestHavingConjunctionAndOrderByAggregate(t *testing.T) {
	db := New(nil)
	db.CreateTable("G", "k", "v")
	for _, r := range [][]Value{
		{S("a"), N(1)}, {S("a"), N(2)},
		{S("b"), N(10)}, {S("b"), N(20)},
		{S("c"), N(100)},
	} {
		db.Insert("G", r...)
	}
	rs := mustExec(t, db, "SELECT k, SUM(v) FROM G GROUP BY k HAVING SUM(v) > 2 AND COUNT(*) >= 2 ORDER BY SUM(v) DESC")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Rows[0][0].Str != "b" || rs.Rows[1][0].Str != "a" {
		t.Errorf("order = %v", rs.Rows)
	}
}

func TestAggregateOverExpression(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT SUM(v * 2) FROM T")
	if rs.Rows[0][0].Num != 200 {
		t.Errorf("sum = %v", rs.Rows[0][0])
	}
	rs = mustExec(t, db, "SELECT AVG(u + v) FROM T")
	if rs.Rows[0][0].Num != 27.5 {
		t.Errorf("avg = %v", rs.Rows[0][0])
	}
}

func TestGroupByExpression(t *testing.T) {
	db := sampleDB(t)
	// Group by parity of u: two groups.
	rs := mustExec(t, db, "SELECT u % 2, COUNT(*) FROM T GROUP BY u % 2")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestNestedDerivedTables(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT y.u FROM (SELECT x.u FROM (SELECT u FROM T WHERE u > 1) x WHERE x.u < 4) y")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestStringConcat(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT w || '!' FROM S WHERE u = 1")
	if rs.Rows[0][0].Str != "a!" {
		t.Errorf("concat = %v", rs.Rows[0][0])
	}
}

func TestCaseInWhere(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u FROM T WHERE CASE WHEN u < 3 THEN 1 ELSE 0 END = 1")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT v / (u - u) FROM T WHERE u = 1")
	if rs.Rows[0][0].Kind != Null {
		t.Errorf("division by zero = %v", rs.Rows[0][0])
	}
}

func TestBindingAmbiguityPrefersQualifier(t *testing.T) {
	db := sampleDB(t)
	// Both T and S have column u; qualified reference disambiguates.
	rs := mustExec(t, db, "SELECT S.u FROM T, S WHERE T.u = 1 AND S.u = 9")
	if len(rs.Rows) != 1 || rs.Rows[0][0].Num != 9 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// The equi-join fast path must agree with the general nested loop on
	// every join type (matches, padding, duplicates).
	db := New(nil)
	db.CreateTable("L", "k", "x")
	db.CreateTable("R2", "k", "y")
	for _, r := range [][]Value{{N(1), N(10)}, {N(2), N(20)}, {N(2), N(21)}, {N(3), N(30)}} {
		db.Insert("L", r...)
	}
	for _, r := range [][]Value{{N(2), N(200)}, {N(2), N(201)}, {N(4), N(400)}} {
		db.Insert("R2", r...)
	}
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM L JOIN R2 ON L.k = R2.k", 4},              // 2×2 matches
		{"SELECT * FROM L JOIN R2 ON R2.k = L.k", 4},              // flipped operands
		{"SELECT * FROM L LEFT JOIN R2 ON L.k = R2.k", 6},         // 4 + rows 1,3 padded
		{"SELECT * FROM L RIGHT JOIN R2 ON L.k = R2.k", 5},        // 4 + row k=4 padded
		{"SELECT * FROM L FULL OUTER JOIN R2 ON L.k = R2.k", 7},   // 4 + 2 + 1
		{"SELECT * FROM L JOIN R2 ON L.k = R2.k AND L.x > 15", 4}, // complex ON: nested loop... matches where k=2 and x>15
	}
	for _, c := range cases {
		rs := mustExec(t, db, c.sql)
		if len(rs.Rows) != c.want {
			t.Errorf("%q: rows = %d, want %d", c.sql, len(rs.Rows), c.want)
		}
	}
}

func BenchmarkEquiJoin(b *testing.B) {
	db := New(nil)
	db.CreateTable("A", "k")
	db.CreateTable("B", "k")
	for i := 0; i < 2000; i++ {
		db.Insert("A", N(float64(i)))
		db.Insert("B", N(float64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteSQL("SELECT COUNT(*) FROM A JOIN B ON A.k = B.k", ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScalarFunctionsBroad(t *testing.T) {
	db := sampleDB(t)
	cases := []struct {
		sql  string
		want Value
	}{
		{"SELECT SQRT(v) FROM T WHERE u = 1", N(3.1622776601683795)},
		{"SELECT FLOOR(v / u) FROM T WHERE u = 3", N(10)},
		{"SELECT CEILING(v / 7) FROM T WHERE u = 1", N(2)},
		{"SELECT LOWER(UPPER(w)) FROM S WHERE u = 1", S("a")},
		{"SELECT LEN(w || 'bc') FROM S WHERE u = 1", N(3)},
		{"SELECT LEFT(w || 'xyz', 2) FROM S WHERE u = 1", S("ax")},
		{"SELECT RIGHT(w || 'xyz', 2) FROM S WHERE u = 1", S("yz")},
		{"SELECT ABS(0 - v) FROM T WHERE u = 2", N(20)},
	}
	for _, c := range cases {
		rs := mustExec(t, db, c.sql)
		got := rs.Rows[0][0]
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
	// Unknown scalar function yields NULL.
	rs := mustExec(t, db, "SELECT fMagToFlux(v) FROM T WHERE u = 1")
	if rs.Rows[0][0].Kind != Null {
		t.Errorf("unknown fn = %v", rs.Rows[0][0])
	}
}

func TestSimpleCaseWithOperand(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT CASE u WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM T ORDER BY u")
	if rs.Rows[0][0].Str != "one" || rs.Rows[1][0].Str != "two" {
		t.Errorf("rows = %v", rs.Rows)
	}
	if rs.Rows[2][0].Kind != Null {
		t.Errorf("no-match case = %v", rs.Rows[2][0])
	}
}

func TestBooleanInScalarPosition(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT u > 2 FROM T ORDER BY u")
	if rs.Rows[0][0].Num != 0 || rs.Rows[3][0].Num != 1 {
		t.Errorf("rows = %v", rs.Rows)
	}
	// NOT in scalar position.
	rs = mustExec(t, db, "SELECT NOT (u > 2) FROM T WHERE u = 1")
	if rs.Rows[0][0].Num != 1 {
		t.Errorf("not = %v", rs.Rows[0][0])
	}
}

func TestTablesListing(t *testing.T) {
	db := sampleDB(t)
	names := db.Tables()
	if len(names) != 2 || names[0] != "S" || names[1] != "T" {
		t.Errorf("tables = %v", names)
	}
}

func TestErrorStrings(t *testing.T) {
	if (&RowLimitError{Limit: 500000}).Error() != "limit is top 500000" {
		t.Error("row limit message")
	}
	if (&DialectError{Construct: "LIMIT"}).Error() != "incorrect syntax near 'LIMIT'" {
		t.Error("dialect message")
	}
	if (&RateLimitError{PerMinute: 60}).Error() != "Maximum 60 queries allowed per minute" {
		t.Error("rate limit message")
	}
}

func TestNegationAndModulo(t *testing.T) {
	db := sampleDB(t)
	rs := mustExec(t, db, "SELECT -v, v % 3 FROM T WHERE u = 1")
	if rs.Rows[0][0].Num != -10 || rs.Rows[0][1].Num != 1 {
		t.Errorf("row = %v", rs.Rows[0])
	}
	// Modulo by zero -> NULL.
	rs = mustExec(t, db, "SELECT v % (u - u) FROM T WHERE u = 1")
	if rs.Rows[0][0].Kind != Null {
		t.Errorf("mod0 = %v", rs.Rows[0][0])
	}
}

func TestRestrict(t *testing.T) {
	db := sampleDB(t)
	box := interval.NewBox()
	box.Set("T.v", interval.Closed(15, 35))
	box.Set("Other.x", interval.Point(1)) // foreign relation: ignored
	sub := db.Restrict([]string{"T", "S", "Missing"}, box, map[string][]string{
		"S.w": {"A", "c"}, // case-insensitive match, mirroring rowMatches
	})
	tt := sub.Table("T")
	if tt == nil || len(tt.Rows) != 2 || tt.Rows[0][0].Num != 2 || tt.Rows[1][0].Num != 3 {
		t.Fatalf("T restricted wrong: %+v", tt)
	}
	st := sub.Table("S")
	if st == nil || len(st.Rows) != 2 || st.Rows[0][1].Str != "a" || st.Rows[1][1].Str != "c" {
		t.Fatalf("S restricted wrong: %+v", st)
	}
	if sub.Table("Missing") != nil {
		t.Fatal("absent relation must be skipped")
	}
	// Row order preserved and slices shared with the source.
	if &st.Rows[0][0] != &db.Table("S").Rows[0][0] {
		t.Fatal("rows must be shared, not copied")
	}
	// Restricted sub-database executes queries like any other DB.
	rs := mustExec(t, sub, "SELECT u FROM T")
	if len(rs.Rows) != 2 {
		t.Fatalf("exec over restricted db: %v", rs.Rows)
	}
}
