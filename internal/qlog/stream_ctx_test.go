package qlog

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/extract"
	"repro/internal/skyserver"
)

// Cancelling the context must stop RunStream before the source drains: the
// feeder stops pulling, in-flight records retire, and the stats cover only
// the admitted prefix.
func TestRunStreamCancelStopsMidStream(t *testing.T) {
	recs := workloadRecords(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())

	const cutoff = 200
	pulled := 0
	src := func() (Record, bool) {
		if pulled >= len(recs) {
			return Record{}, false
		}
		r := recs[pulled]
		pulled++
		if pulled == cutoff {
			cancel() // cancel while the stream is mid-flight
		}
		return r, true
	}

	p := &Pipeline{Extractor: extract.New(skyserver.Schema()), Workers: 4}
	st := p.RunStream(ctx, src, nil)

	if pulled == len(recs) {
		t.Fatalf("cancelled stream drained the whole source (%d records)", pulled)
	}
	if st.Total > pulled {
		t.Errorf("stats cover %d records but only %d were pulled", st.Total, pulled)
	}
	if st.Total == 0 {
		t.Error("no records processed before cancellation")
	}
	if ctx.Err() == nil {
		t.Error("context unexpectedly alive")
	}
}

// A context cancelled before the run starts admits nothing.
func TestRunStreamCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{Extractor: extract.New(skyserver.Schema())}
	st := p.RunStream(ctx, SliceSource(workloadRecords(t, 50)), nil)
	if st.Total != 0 {
		t.Errorf("pre-cancelled stream processed %d records", st.Total)
	}
}

// The streaming readers must abort with ctx.Err() instead of draining the
// reader when the context dies.
func TestStreamReadersHonourContext(t *testing.T) {
	recs := workloadRecords(t, 100)
	var csvBuf, jsonlBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonlBuf, recs); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		run  func(ctx context.Context, fn func(Record) error) error
	}{
		{"csv", func(ctx context.Context, fn func(Record) error) error {
			return ReadCSVStream(ctx, bytes.NewReader(csvBuf.Bytes()), fn)
		}},
		{"jsonl", func(ctx context.Context, fn func(Record) error) error {
			return ReadJSONLStream(ctx, bytes.NewReader(jsonlBuf.Bytes()), fn)
		}},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		err := tc.run(ctx, func(Record) error {
			seen++
			if seen == 10 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
		if seen >= len(recs) {
			t.Errorf("%s: cancelled read drained all %d records", tc.name, seen)
		}
	}
}

// Two pipeline runs finishing concurrently — the serving layer's overlapping
// epochs — must be safely mergeable into one cumulative Stats as long as the
// merges themselves are serialised. Run under -race (the qlog package is in
// the Makefile race gate) this doubles as the data-race audit for
// Stats/StageTime merging with a shared template cache.
func TestStatsMergeConcurrentEpochs(t *testing.T) {
	recs := workloadRecords(t, 1200)
	sch := skyserver.Schema()
	shared := &extract.TemplateCache{}

	const runs = 4
	var (
		mu    sync.Mutex
		total Stats
		wg    sync.WaitGroup
	)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &Pipeline{Extractor: extract.New(sch), Workers: 2, Cache: shared}
			st := p.RunStream(context.Background(), SliceSource(recs), nil)
			mu.Lock()
			total.Merge(st)
			mu.Unlock()
		}()
	}
	wg.Wait()

	if total.Total != runs*len(recs) {
		t.Fatalf("merged total = %d, want %d", total.Total, runs*len(recs))
	}
	if total.Parse.Count != total.Total {
		t.Errorf("merged Parse.Count = %d, want %d", total.Parse.Count, total.Total)
	}
	single := &Pipeline{Extractor: extract.New(sch), NoCache: true}
	_, ref := single.Run(recs)
	if total.Extracted != runs*ref.Extracted {
		t.Errorf("merged Extracted = %d, want %d", total.Extracted, runs*ref.Extracted)
	}
}
