package distance

import "repro/internal/obs"

// Distance-kernel instruments. The evals counters make evals/sec a
// first-class observable: scrape skyaccess_distance_kernel_evals_total (or
// the pointer-path twin) twice and divide by the interval — the kernelperf
// experiment derives the same rate offline. The early-exit counter measures
// how often the flat kernel's structural-equality bound skipped a
// min-matching loop entirely; its ratio to evals is a deterministic
// workload fingerprint the bench-drift gate compares across commits.
var (
	profileEvalsTotal = obs.NewCounter("skyaccess_distance_profile_evals_total",
		"pointer-path ProfileDistance evaluations")
	kernelEvalsTotal = obs.NewCounter("skyaccess_distance_kernel_evals_total",
		"flat SoA kernel distance evaluations")
	kernelEarlyExitTotal = obs.NewCounter("skyaccess_distance_kernel_early_exits_total",
		"kernel evaluations answered by the structural-equality early exit (d_conj = 0, no min-matching)")
)

// KernelEvals returns the lifetime flat-kernel evaluation count.
func KernelEvals() int64 { return kernelEvalsTotal.Value() }

// KernelEarlyExits returns the lifetime count of evaluations the kernel's
// structural-equality early exit answered without a min-matching loop.
func KernelEarlyExits() int64 { return kernelEarlyExitTotal.Value() }

// ProfileEvals returns the lifetime pointer-path evaluation count.
func ProfileEvals() int64 { return profileEvalsTotal.Value() }
