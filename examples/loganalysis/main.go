// Loganalysis: the log-understanding extensions around the core pipeline —
// per-user sessions and bot detection (Singh et al. [23], Section 3.2),
// sky-area and scan/search/retrieve classification (SDSS Log Viewer [26]),
// the exploratory-vs-final query heuristic and the cluster density-contrast
// statistic the paper's Section 6.3 lists as future work.
package main

import (
	"fmt"

	skyaccess "repro"
	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/skyserver"
	"repro/internal/sqlparser"
)

func main() {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 6000, Seed: 42})
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}

	// 1. Sessions and bots.
	sessions := qlog.Sessionize(recs, 1800)
	profiles := qlog.ProfileUsers(recs, 1800)
	bots := 0
	for _, p := range profiles {
		if p.Bot() {
			bots++
		}
	}
	countries := map[string]struct{}{}
	for _, p := range profiles {
		countries[skyserver.CountryOf(p.User)] = struct{}{}
	}
	fmt.Printf("%d queries, %d users from %d countries, %d sessions, %d bot-like users\n",
		len(recs), len(profiles), len(countries), len(sessions), bots)
	fmt.Println("top users:")
	for i, p := range profiles {
		if i >= 5 {
			break
		}
		tag := "mortal"
		if p.Bot() {
			tag = "BOT"
		}
		fmt.Printf("  %-10s %5d queries %4d sessions %5d templates  peak %d/min  [%s]\n",
			p.User, p.Queries, p.Sessions, p.Skeletons, p.PeakPerMinute, tag)
	}

	// 2. Intent (test vs final) and area classification.
	ex := extract.New(skyserver.Schema())
	intents := map[qlog.Intent]int{}
	var areas []*extract.AccessArea
	for _, r := range recs {
		sel, err := sqlparser.ParseSelect(r.SQL)
		if err != nil {
			continue
		}
		intents[qlog.ClassifyIntent(sel)]++
		if a, err := ex.Extract(sel); err == nil {
			areas = append(areas, a)
		}
	}
	fmt.Printf("\nintent: %d test (exploratory) vs %d final queries\n",
		intents[qlog.TestQuery], intents[qlog.FinalQuery])

	counts := qlog.Classify(areas)
	fmt.Println("sky-area categories ([26]):")
	for _, k := range []qlog.SkyAreaKind{qlog.RectangularSkyArea, qlog.BandSkyArea, qlog.SinglePointSkyArea, qlog.OtherSkyArea} {
		fmt.Printf("  %-14s %d\n", k, counts.Sky[k])
	}
	fmt.Println("access categories:")
	for _, k := range []qlog.AccessKind{qlog.ScanQuery, qlog.SearchQuery, qlog.RetrieveQuery} {
		fmt.Printf("  %-14s %d\n", k, counts.Access[k])
	}

	// 3. Density contrast of the top clusters (§6.3 follow-up).
	stats := skyaccess.NewAccessStats()
	db := skyaccess.SkyServerDatabase(800, 1)
	skyaccess.SeedStatsFromDatabase(db, stats)
	miner := core.NewMiner(core.Config{Schema: skyserver.Schema(), Stats: stats})
	res := miner.MineRecords(recs)

	// Rebuild the full item list for the contrast baseline.
	var all []*aggregate.Item
	for _, a := range areas {
		all = append(all, &aggregate.Item{Area: a, Weight: 1, Users: map[string]struct{}{}})
	}
	fmt.Println("\ndensity contrast of the top clusters (density inside box vs. surrounding shell):")
	for i, c := range res.Clusters {
		if i >= 6 {
			break
		}
		contrast := aggregate.DensityContrast(c, all, 0.5)
		expr := c.Expr()
		if len(expr) > 70 {
			expr = expr[:70] + "…"
		}
		fmt.Printf("  #%d (%4d queries)  contrast %8.1fx  %s\n", c.ID, c.Cardinality, contrast, expr)
	}
}
