package extract

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/predicate"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// Extractor maps parsed SELECT statements to access areas. A nil Schema is
// allowed; column resolution then degrades to best-effort qualification.
type Extractor struct {
	// Schema provides canonical relation/column names and column domains
	// for the aggregate-query lemmas.
	Schema *schema.Schema
	// PredCap bounds the number of atomic predicates fed to CNF conversion
	// (Section 6.6 workaround). Zero means predicate.DefaultPredCap;
	// negative disables the cap.
	PredCap int
	// Stats, when non-nil, is updated with every constant the query refers
	// to, growing the access(a) ranges of Section 5.3.
	Stats *schema.Stats
}

// New returns an extractor over the given schema with the default predicate
// cap.
func New(s *schema.Schema) *Extractor {
	return &Extractor{Schema: s}
}

func (ex *Extractor) predCap() int {
	switch {
	case ex.PredCap < 0:
		return 0 // disabled
	case ex.PredCap == 0:
		return predicate.DefaultPredCap
	default:
		return ex.PredCap
	}
}

// ExtractSQL parses src and extracts its access area.
func (ex *Extractor) ExtractSQL(src string) (*AccessArea, error) {
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return ex.Extract(sel)
}

// Extract computes the access area of a parsed SELECT statement by
// transforming it to the intermediate format of Section 2.4.
func (ex *Extractor) Extract(sel *sqlparser.SelectStatement) (*AccessArea, error) {
	area, _, err := ex.ExtractWithTimings(sel)
	return area, err
}

// Timings reports the duration of the individual extraction stages, matching
// the per-stage measurements of Section 6.6 (Extraction, CNF conversion,
// Consolidation; parsing is timed by the caller).
type Timings struct {
	Extract     time.Duration
	CNF         time.Duration
	Consolidate time.Duration
}

// ExtractWithTimings is Extract with per-stage timings for the efficiency
// experiment.
func (ex *Extractor) ExtractWithTimings(sel *sqlparser.SelectStatement) (*AccessArea, Timings, error) {
	area, tm, _, _, err := ex.extractFull(sel)
	return area, tm, err
}

// extractFull runs the three extraction stages and additionally returns the
// pre-CNF constraint and the extraction state, which ExtractTemplate turns
// into a reusable area template.
func (ex *Extractor) extractFull(sel *sqlparser.SelectStatement) (*AccessArea, Timings, predicate.Expr, *state, error) {
	var tm Timings
	st := &state{ex: ex, exact: true, cacheable: true}
	t0 := time.Now()
	expr, err := st.processQueryBody(sel, nil)
	tm.Extract = time.Since(t0)
	if err != nil {
		return nil, tm, nil, st, err
	}
	t1 := time.Now()
	cnf, truncated := predicate.ToCNF(expr, ex.predCap())
	tm.CNF = time.Since(t1)
	t2 := time.Now()
	cnf = predicate.Consolidate(cnf)
	tm.Consolidate = time.Since(t2)
	area := &AccessArea{
		Relations:  normalizeRelations(st.rels),
		CNF:        cnf,
		Exact:      st.exact && !truncated,
		Truncated:  truncated,
		Referenced: st.referenced(),
	}
	if ex.Stats != nil {
		observeStats(ex.Stats, area)
	}
	return area, tm, expr, st, nil
}

// referenced returns the sorted A set.
func (st *state) referenced() []string {
	out := make([]string, 0, len(st.touched))
	for col := range st.touched {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// observeStats records every constant of the final constraint so access(a)
// grows per Section 5.3.
func observeStats(stats *schema.Stats, area *AccessArea) {
	for _, cl := range area.CNF {
		for _, p := range cl {
			if p.Kind != predicate.ColumnConstant {
				continue
			}
			if p.Val.Kind == predicate.NumberVal {
				stats.ObserveNumeric(p.Column, p.Val.Num)
			} else {
				stats.ObserveCategorical(p.Column, p.Val.Str)
			}
		}
	}
}

// state carries extraction-wide accumulators.
type state struct {
	ex      *Extractor
	rels    []string // canonical relation names of the universal relation
	exact   bool
	touched map[string]struct{} // A = A_W ∪ A_G ∪ A_H ∪ A_S (Section 2.1)

	// cacheable is cleared whenever a literal's VALUE (not just its
	// presence) influences the constraint's structure — constant folding,
	// constant-vs-constant comparisons, HAVING aggregate lemmas. Such a
	// statement's area cannot be rebound with other constants, so its
	// fingerprint class must always take the slow path (DESIGN.md §7).
	cacheable   bool
	cacheReason string
	// likeGuards records, per LIKE pattern literal, whether the pattern
	// contained a wildcard. Wildcard-ness picks between an equality
	// predicate and the TRUE approximation, so a rebind is valid only for
	// records whose pattern at the same slot has the same wildcard-ness.
	likeGuards []likeGuard
}

func (st *state) approx() { st.exact = false }

// noCache marks the extraction non-cacheable; the first reason sticks.
func (st *state) noCache(reason string) {
	if st.cacheable {
		st.cacheable = false
		st.cacheReason = reason
	}
}

// touch records a referenced column in the A set.
func (st *state) touch(col string) {
	if st.touched == nil {
		st.touched = make(map[string]struct{})
	}
	st.touched[col] = struct{}{}
}

// scope is one query level's name environment: aliases of its FROM clause
// plus a parent pointer for correlated references.
type scope struct {
	parent  *scope
	aliases map[string]string        // lower(alias) -> canonical relation
	derived map[string]*derivedTable // lower(alias) -> derived table
	rels    []string                 // canonical relations of this level, in FROM order
}

type derivedTable struct {
	// colMap maps lower(output column name) to the canonical underlying
	// column; absent entries are opaque (computed) columns.
	colMap map[string]string
}

func newScope(parent *scope) *scope {
	return &scope{
		parent:  parent,
		aliases: make(map[string]string),
		derived: make(map[string]*derivedTable),
	}
}

// canonicalRelation strips schema/database prefixes ("dbo.X" -> "X") and
// resolves capitalisation against the schema.
func (st *state) canonicalRelation(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if st.ex.Schema != nil {
		return st.ex.Schema.CanonicalTable(name)
	}
	return name
}

// containsRelation reports whether rel is registered in sc or any ancestor.
func containsRelation(sc *scope, rel string) bool {
	for s := sc; s != nil; s = s.parent {
		for _, r := range s.rels {
			if r == rel {
				return true
			}
		}
	}
	return false
}

// registerRelation adds a base relation to the scope, enforcing the
// self-join exclusion of Section 2.1.
func (st *state) registerRelation(sc *scope, name, alias string) error {
	canon := st.canonicalRelation(name)
	if containsRelation(sc, canon) {
		return &Error{Kind: ErrSelfJoin, Msg: fmt.Sprintf("relation %s occurs twice (self-join)", canon)}
	}
	sc.rels = append(sc.rels, canon)
	st.rels = append(st.rels, canon)
	sc.aliases[strings.ToLower(canon)] = canon
	lastPart := name
	if i := strings.LastIndex(name, "."); i >= 0 {
		lastPart = name[i+1:]
	}
	sc.aliases[strings.ToLower(lastPart)] = canon
	sc.aliases[strings.ToLower(name)] = canon
	if alias != "" {
		sc.aliases[strings.ToLower(alias)] = canon
	}
	return nil
}

// processQueryBody transforms one SELECT body (FROM, WHERE, GROUP BY/HAVING
// and any UNION arms) into a constraint expression, registering its
// relations globally.
func (st *state) processQueryBody(sel *sqlparser.SelectStatement, parent *scope) (predicate.Expr, error) {
	res, err := st.processQueryBodyCollect(sel, parent)
	if err != nil {
		return nil, err
	}
	return res.constraint, nil
}

// processTableExpr registers the relations of a FROM factor and returns the
// constraint it contributes (join conditions per Section 4.2).
func (st *state) processTableExpr(te sqlparser.TableExpr, sc *scope) (predicate.Expr, error) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		if err := st.registerRelation(sc, t.Name, t.Alias); err != nil {
			return nil, err
		}
		return predicate.NewLeaf(predicate.True()), nil

	case *sqlparser.SubqueryTable:
		// Derived table: its relations join the universal relation and its
		// constraint is conjoined (it restricts which tuples influence the
		// outer result).
		inner, err := st.processQueryBodyCollect(t.Select, sc)
		if err != nil {
			return nil, err
		}
		if t.Alias != "" {
			sc.derived[strings.ToLower(t.Alias)] = derivedFromSelect(t.Select, inner.scope, st)
		}
		return inner.constraint, nil

	case *sqlparser.Join:
		// Track which relations each side of THIS join contributes, so a
		// NATURAL join only equates its own operands' columns (not those of
		// earlier comma-separated FROM factors sharing the scope).
		base := len(sc.rels)
		lc, err := st.processTableExpr(t.Left, sc)
		if err != nil {
			return nil, err
		}
		leftEnd := len(sc.rels)
		rc, err := st.processTableExpr(t.Right, sc)
		if err != nil {
			return nil, err
		}
		leftRels := append([]string(nil), sc.rels[base:leftEnd]...)
		rightRels := append([]string(nil), sc.rels[leftEnd:]...)
		parts := []predicate.Expr{lc, rc}
		switch t.Type {
		case sqlparser.FullOuterJoin:
			// FULL OUTER JOIN keeps all tuples of both sides: no constraint
			// on U (Example 2).
		case sqlparser.CrossJoin:
			// No condition.
		default:
			if t.Natural {
				nat, err := st.naturalJoinConstraint(leftRels, rightRels)
				if err != nil {
					return nil, err
				}
				parts = append(parts, nat)
			}
			if t.On != nil {
				on, err := st.convert(t.On, sc)
				if err != nil {
					return nil, err
				}
				if t.Type == sqlparser.LeftOuterJoin || t.Type == sqlparser.RightOuterJoin {
					// Example 3: LEFT/RIGHT OUTER JOIN ON T.u = S.u is
					// equivalent (w.r.t. access area) to the nested IN
					// query, which flattens back to the join condition. For
					// non-equality ON conditions the equivalence is an
					// approximation.
					if !isEqualityConjunction(t.On) {
						st.approx()
					}
				}
				parts = append(parts, on)
			}
		}
		return predicate.NewAnd(parts...), nil

	default:
		return nil, &Error{Kind: ErrUnsupported, Msg: fmt.Sprintf("unsupported table expression %T", te)}
	}
}

// queryBodyResult bundles the constraint and scope of a processed subquery.
type queryBodyResult struct {
	constraint predicate.Expr
	scope      *scope
}

// processQueryBodyCollect is processQueryBody but also returns the inner
// scope (needed to build derived-table column maps).
func (st *state) processQueryBodyCollect(sel *sqlparser.SelectStatement, parent *scope) (*queryBodyResult, error) {
	sc := newScope(parent)
	var parts []predicate.Expr
	for _, te := range sel.From {
		c, err := st.processTableExpr(te, sc)
		if err != nil {
			return nil, err
		}
		parts = append(parts, c)
	}
	if sel.Where != nil {
		w, err := st.convert(sel.Where, sc)
		if err != nil {
			return nil, err
		}
		parts = append(parts, w)
	}
	for _, g := range sel.GroupBy {
		if cr, ok := g.(*sqlparser.ColumnRef); ok {
			st.resolveColumn(cr, sc) // A_G membership only
		}
	}
	if sel.Having != nil {
		h, err := st.convertHaving(sel, sc, predicate.NewAnd(parts...))
		if err != nil {
			return nil, err
		}
		parts = append(parts, h)
	}
	constraint := predicate.NewAnd(parts...)
	// UNION arms: the access area of a union is the union of the arms'
	// areas — a tuple of the (merged) universal relation influences the
	// result iff it influences some arm. Each arm gets its own scope; the
	// same relation may legitimately appear in several arms.
	if len(sel.Unions) > 0 {
		exprs := []predicate.Expr{constraint}
		for _, arm := range sel.Unions {
			armRes, err := st.processQueryBodyCollect(arm.Select, parent)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, armRes.constraint)
		}
		constraint = predicate.NewOr(exprs...)
	}
	return &queryBodyResult{constraint: constraint, scope: sc}, nil
}

// derivedFromSelect builds the output-column map of a derived table.
func derivedFromSelect(sel *sqlparser.SelectStatement, sc *scope, st *state) *derivedTable {
	dt := &derivedTable{colMap: make(map[string]string)}
	for _, item := range sel.Select {
		if item.Star {
			// SELECT *: expose every known column of the subquery's
			// relations under its own name.
			for _, rel := range sc.rels {
				if st.ex.Schema == nil {
					continue
				}
				r := st.ex.Schema.Relation(rel)
				if r == nil {
					continue
				}
				for _, c := range r.Columns {
					dt.colMap[strings.ToLower(c.Name)] = rel + "." + c.Name
				}
			}
			continue
		}
		cr, ok := item.Expr.(*sqlparser.ColumnRef)
		if !ok {
			continue // computed column: opaque
		}
		canonical, ok := st.resolveColumn(cr, sc)
		if !ok {
			continue
		}
		name := item.Alias
		if name == "" {
			name = cr.Name
		}
		dt.colMap[strings.ToLower(name)] = canonical
	}
	return dt
}

// naturalJoinConstraint equates the common columns of the left and right
// relation groups (Section 4.2, NATURAL JOIN).
func (st *state) naturalJoinConstraint(leftRels, rightRels []string) (predicate.Expr, error) {
	if st.ex.Schema == nil {
		st.approx()
		return predicate.NewLeaf(predicate.True()), nil
	}
	var parts []predicate.Expr
	matched := false
	for _, lr := range leftRels {
		lrel := st.ex.Schema.Relation(lr)
		if lrel == nil {
			continue
		}
		for _, rr := range rightRels {
			rrel := st.ex.Schema.Relation(rr)
			if rrel == nil {
				continue
			}
			for _, lc := range lrel.Columns {
				if rc := rrel.Column(lc.Name); rc != nil {
					matched = true
					parts = append(parts, predicate.NewLeaf(predicate.Cols(
						lrel.QualifiedColumn(lc.Name), predicate.Eq, rrel.QualifiedColumn(rc.Name))))
				}
			}
		}
	}
	if !matched {
		// No common columns known: degenerates to a cross join; if either
		// side is unknown to the schema this is an approximation.
		for _, r := range append(append([]string(nil), leftRels...), rightRels...) {
			if st.ex.Schema.Relation(r) == nil {
				st.approx()
				break
			}
		}
	}
	return predicate.NewAnd(parts...), nil
}

// isEqualityConjunction reports whether an ON condition is a conjunction of
// column = column predicates.
func isEqualityConjunction(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			return isEqualityConjunction(x.L) && isEqualityConjunction(x.R)
		case "=":
			_, lok := x.L.(*sqlparser.ColumnRef)
			_, rok := x.R.(*sqlparser.ColumnRef)
			return lok && rok
		}
	}
	return false
}

// resolveColumn resolves a column reference to its canonical qualified name
// through the scope chain (aliases, derived tables, schema lookup),
// recording it in the A set. ok is false when the reference is opaque
// (derived computed column).
func (st *state) resolveColumn(cr *sqlparser.ColumnRef, sc *scope) (string, bool) {
	col, ok := st.resolveColumnQuiet(cr, sc)
	if ok {
		st.touch(col)
	}
	return col, ok
}

func (st *state) resolveColumnQuiet(cr *sqlparser.ColumnRef, sc *scope) (string, bool) {
	if cr.Table != "" {
		key := strings.ToLower(cr.Table)
		for s := sc; s != nil; s = s.parent {
			if canon, ok := s.aliases[key]; ok {
				if st.ex.Schema != nil {
					if r := st.ex.Schema.Relation(canon); r != nil {
						return r.QualifiedColumn(cr.Name), true
					}
				}
				return canon + "." + cr.Name, true
			}
			if dt, ok := s.derived[key]; ok {
				if underlying, ok := dt.colMap[strings.ToLower(cr.Name)]; ok {
					return underlying, true
				}
				return "", false // opaque computed column
			}
		}
		// Unknown qualifier: keep as written (stripped of extra prefixes).
		return st.canonicalRelation(cr.Table) + "." + cr.Name, true
	}
	// Unqualified: search scope chain.
	for s := sc; s != nil; s = s.parent {
		if st.ex.Schema != nil {
			for _, rel := range s.rels {
				if r := st.ex.Schema.Relation(rel); r != nil && r.Column(cr.Name) != nil {
					return r.QualifiedColumn(cr.Name), true
				}
			}
		}
		for _, dt := range s.derived {
			if underlying, ok := dt.colMap[strings.ToLower(cr.Name)]; ok {
				return underlying, true
			}
		}
	}
	// Fall back to the first relation of the innermost scope that has any.
	for s := sc; s != nil; s = s.parent {
		if len(s.rels) > 0 {
			return s.rels[0] + "." + cr.Name, true
		}
	}
	return cr.Name, true
}
