package core

import (
	"testing"

	"repro/internal/skyserver"
)

// A substrate-sharing Incremental must produce exactly the clustering a
// private Incremental (and hence the batch miner) produces over the same
// records — the shared kernel/cache only change WHERE distances are
// computed, never their values.
func TestSubstrateEquivalentToPrivate(t *testing.T) {
	recs := synthRecords(2500, 11)

	m := NewMiner(Config{Schema: skyserver.Schema(), Seed: 11, Stats: seededStats()})
	batch := m.MineRecords(recs)

	sm := NewMiner(Config{Schema: skyserver.Schema(), Seed: 11, Stats: seededStats()})
	sub := sm.Substrate()
	inc := sm.IncrementalShared(sub)
	areaRecs, _ := sm.pipeline().Run(recs)
	const chunk = 700
	var last *Result
	for lo := 0; lo < len(areaRecs); lo += chunk {
		hi := lo + chunk
		if hi > len(areaRecs) {
			hi = len(areaRecs)
		}
		for i := lo; i < hi; i++ {
			inc.Add(&areaRecs[i])
		}
		last = inc.Recluster()
	}
	sameMining(t, batch, last)
}

// Two miners over the same area population through one substrate share all
// distance work: the second miner's epoch adds no kernel slots and no
// evaluations — every pair is a cache hit.
func TestSubstrateSharesDistanceWork(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema(), Seed: 5, Stats: seededStats()})
	sub := m.Substrate()
	a := m.IncrementalShared(sub)
	b := m.IncrementalShared(sub)
	areaRecs, _ := m.pipeline().Run(synthRecords(2000, 5))
	if len(areaRecs) < 100 {
		t.Fatalf("synthetic log extracted only %d areas", len(areaRecs))
	}
	for i := range areaRecs {
		a.Add(&areaRecs[i])
		b.Add(&areaRecs[i])
	}
	ra := a.Recluster()
	slots, evals := sub.Slots(), sub.Evals()
	if slots == 0 || evals == 0 {
		t.Fatalf("first miner interned %d slots, %d evals", slots, evals)
	}
	rb := b.Recluster()
	if got := sub.Slots(); got != slots {
		t.Errorf("second miner interned %d new slots", got-slots)
	}
	if d := sub.Evals() - evals; d != 0 {
		t.Errorf("second miner re-evaluated %d distances", d)
	}
	if sub.Hits() == 0 {
		t.Error("second miner served no cache hits")
	}
	sameMining(t, ra, rb)
}
