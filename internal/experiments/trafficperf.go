package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/skyserver"
	"repro/internal/sqlparser"
	"repro/internal/traffic"
)

// TrafficPerfResult is the outcome of the traffic-class experiment (E17): a
// mixed bot/human/admin workload classified online, the per-class report
// partition gate, drift-log determinism, the mined-interface surface, and the
// ingest cost of running the classifier plus three class miners next to the
// global one. cmd/benchreport serialises it to BENCH_traffic.json; the
// identical_* flags and the per-class classifier precision/recall are the
// benchcmp gates, the wall-clock rates record the trajectory without gating
// CI.
type TrafficPerfResult struct {
	Queries int   `json:"queries"`
	Seed    int64 `json:"seed"`

	// Ground-truth composition of the mixed workload (by user-name prefix).
	BotRecords   int `json:"bot_records"`
	HumanRecords int `json:"human_records"`
	AdminRecords int `json:"admin_records"`

	// Per-class classifier accuracy over users: the online classifier's
	// final per-user verdicts scored against the generator's ground truth.
	UsersScored int                    `json:"users_scored"`
	Classifier  map[string]*ClassScore `json:"classifier"`

	// IdenticalClassPartition: the three per-class reports must be exactly
	// what batch-mining each class's records produces under the full
	// workload's registry evolution — per-class mining partitions one shared
	// extraction stream, it does not re-run it.
	IdenticalClassPartition bool `json:"identical_class_partition"`
	// IdenticalReportTrafficOnOff: class mining must be a pure addition —
	// the classless report with traffic mining on equals a traffic-off
	// server's report over the identical ingest script.
	IdenticalReportTrafficOnOff bool `json:"identical_report_traffic_on_off"`
	// IdenticalDriftRuns: the drift-event log is a pure function of the
	// ingest script — two fresh servers driven through the same bursts and
	// flushes emit byte-identical logs.
	IdenticalDriftRuns bool `json:"identical_drift_runs"`
	DriftEvents        int  `json:"drift_events"`

	// The mined query-interface surface.
	InterfacesTracked int   `json:"interfaces_tracked"`
	TopInterfaceHits  int64 `json:"top_interface_hits"`

	// Ingest cost: concurrent burst clients, traffic mining off vs on,
	// fastest of ABBA-paired rounds (interference is additive, so each
	// side's minimum estimates its intrinsic cost).
	IngestOffRPS        float64 `json:"ingest_traffic_off_records_per_sec"`
	IngestOnRPS         float64 `json:"ingest_traffic_on_records_per_sec"`
	TrafficOverheadFrac float64 `json:"traffic_ingest_overhead_frac"`

	Report string `json:"-"`
}

// ClassScore is one class's user-level confusion summary.
type ClassScore struct {
	Users               int     `json:"users"`
	ClassifierPrecision float64 `json:"classifier_precision"`
	ClassifierRecall    float64 `json:"classifier_recall"`
}

// trafficPerfRounds timed off/on ingest pairs; rounds alternate which side
// runs first (ABBA) so within-round machine drift cannot systematically
// favour one side.
const trafficPerfRounds = 7

// trafficPerfScript drives one fresh server through the canonical two-burst
// ingest-and-flush script (half the log, flush, the rest, flush) — the same
// script every determinism gate replays.
func trafficPerfScript(srv *serve.Server, recs []qlog.Record) error {
	half := len(recs) / 2
	if err := walPerfSequential(srv, recs[:half]); err != nil {
		return err
	}
	srv.Flush()
	if err := walPerfSequential(srv, recs[half:]); err != nil {
		return err
	}
	srv.Flush()
	return nil
}

// RunTrafficPerf executes E17 over a mixed-traffic log (70% bot, 25% human,
// 5% admin — roughly the SkyServer Traffic Report's shape).
func (e *Env) RunTrafficPerf() *TrafficPerfResult {
	out := &TrafficPerfResult{Queries: e.Scale, Seed: e.Seed}
	fail := func(err error) *TrafficPerfResult {
		out.Report = fmt.Sprintf("E17 trafficperf: %v\n", err)
		return out
	}

	mix := skyserver.ClassMix{Bot: 0.70, Human: 0.25, Admin: 0.05}
	entries := skyserver.GenerateMixedLog(skyserver.WorkloadConfig{Queries: e.Scale, Seed: e.Seed}, mix)
	recs := make([]qlog.Record, len(entries))
	for i, en := range entries {
		recs[i] = qlog.Record{Seq: en.Seq, Time: en.Time, User: en.User, SQL: en.SQL}
		switch skyserver.ClassOf(en.User) {
		case traffic.Bot:
			out.BotRecords++
		case traffic.Admin:
			out.AdminRecords++
		default:
			out.HumanRecords++
		}
	}

	onCfg := func() serve.Config {
		cfg := e.serveConfig("")
		cfg.Traffic = &traffic.Config{}
		return cfg
	}

	// The measured server: classifier scoring, the partition gate, the
	// interface surface and drift run A all come off this one run.
	srv, err := serve.NewServer(onCfg())
	if err != nil {
		return fail(err)
	}
	if err := trafficPerfScript(srv, recs); err != nil {
		srv.Close()
		return fail(fmt.Errorf("traffic-on ingest: %w", err))
	}

	// Classifier accuracy: per-user verdicts vs the generator's prefixes.
	tp := map[string]int{}
	fp := map[string]int{}
	fn := map[string]int{}
	verdicts := srv.TrafficUserClasses()
	out.UsersScored = len(verdicts)
	for user, got := range verdicts {
		want := skyserver.ClassOf(user)
		if got == want {
			tp[want]++
		} else {
			fp[got]++
			fn[want]++
		}
	}
	out.Classifier = make(map[string]*ClassScore, len(traffic.Classes))
	for _, cls := range traffic.Classes {
		sc := &ClassScore{Users: tp[cls] + fn[cls]}
		if tp[cls]+fp[cls] > 0 {
			sc.ClassifierPrecision = float64(tp[cls]) / float64(tp[cls]+fp[cls])
		}
		if sc.Users > 0 {
			sc.ClassifierRecall = float64(tp[cls]) / float64(sc.Users)
		}
		out.Classifier[cls] = sc
	}

	// Partition gate. The reference replays the server's exact behaviour
	// from primitives: the same classifier over the same stream assigns the
	// classes, one pipeline pass extracts under the full workload's registry
	// evolution, and each class's areas feed a private incremental miner in
	// stream order.
	refCfg := onCfg()
	clf := traffic.NewClassifier(traffic.Config{})
	tagged := make([]qlog.Record, len(recs))
	copy(tagged, recs)
	classTotal := make(map[string]int)
	for i := range tagged {
		var fprint uint64
		if v, _, ferr := sqlparser.Fingerprint(tagged[i].SQL); ferr == nil {
			fprint = v
		}
		tagged[i].Class = clf.Observe(tagged[i].User, tagged[i].Time, fprint, tagged[i].SQL)
		classTotal[tagged[i].Class]++
	}
	m := core.NewMiner(refCfg.Miner)
	pipe := &qlog.Pipeline{Extractor: &extract.Extractor{Schema: e.Schema, Stats: m.Stats()}}
	areaRecs, _ := pipe.Run(tagged)
	sawClusters := false
	out.IdenticalClassPartition = true
	for _, cls := range traffic.Classes {
		inc := m.Incremental()
		extracted := 0
		for i := range areaRecs {
			if areaRecs[i].Record.Class == cls {
				inc.Add(&areaRecs[i])
				extracted++
			}
		}
		res := inc.Recluster()
		res.PipelineStats = &qlog.Stats{Total: classTotal[cls], Extracted: extracted}
		res.AttachCoverage(e.DB)
		var want bytes.Buffer
		if err := report.Write(&want, res, report.JSON, report.Options{Coverage: true}); err != nil {
			srv.Close()
			return fail(err)
		}
		served, _ := srv.LatestClass(cls)
		if served == nil {
			out.IdenticalClassPartition = false
			continue
		}
		var got bytes.Buffer
		if err := report.Write(&got, served, report.JSON, report.Options{Coverage: true}); err != nil {
			srv.Close()
			return fail(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			out.IdenticalClassPartition = false
		}
		if bytes.Contains(got.Bytes(), []byte(`"id"`)) {
			sawClusters = true
		}
	}
	if !sawClusters {
		// A partition of empty reports gates nothing — count it as a failure.
		out.IdenticalClassPartition = false
	}

	// The interface surface and drift run A.
	out.InterfacesTracked = srv.TrackedInterfaces()
	if ifaces := srv.RenderInterfaces(10); len(ifaces) > 0 {
		out.TopInterfaceHits = ifaces[0].Hits
	}
	driftA, err := json.Marshal(srv.DriftEvents(""))
	if err != nil {
		srv.Close()
		return fail(err)
	}
	out.DriftEvents = len(srv.DriftEvents(""))

	// Classless invariance: a traffic-off server through the identical
	// script must serve the identical global report.
	globalOn, err := flushedReport(srv)
	if err != nil {
		srv.Close()
		return fail(err)
	}
	if err := srv.Close(); err != nil {
		return fail(err)
	}
	offSrv, err := serve.NewServer(e.serveConfig(""))
	if err != nil {
		return fail(err)
	}
	if err := trafficPerfScript(offSrv, recs); err != nil {
		offSrv.Close()
		return fail(fmt.Errorf("traffic-off ingest: %w", err))
	}
	globalOff, err := flushedReport(offSrv)
	if err != nil {
		offSrv.Close()
		return fail(err)
	}
	if err := offSrv.Close(); err != nil {
		return fail(err)
	}
	out.IdenticalReportTrafficOnOff = bytes.Equal(globalOn, globalOff)

	// Drift determinism: run B replays the script on a fresh server.
	srvB, err := serve.NewServer(onCfg())
	if err != nil {
		return fail(err)
	}
	if err := trafficPerfScript(srvB, recs); err != nil {
		srvB.Close()
		return fail(fmt.Errorf("drift run B ingest: %w", err))
	}
	driftB, err := json.Marshal(srvB.DriftEvents(""))
	if err != nil {
		srvB.Close()
		return fail(err)
	}
	if err := srvB.Close(); err != nil {
		return fail(err)
	}
	out.IdenticalDriftRuns = bytes.Equal(driftA, driftB) && out.DriftEvents > 0

	// Ingest cost: timed concurrent runs, ABBA pairs. Epoch reclustering is
	// disabled (priced by its own experiments) so the delta isolates the
	// classifier, the interface miner and the class miners' area feeds.
	timedRun := func(on bool) (float64, error) {
		cfg := e.serveConfig("")
		cfg.QueueSize = 4096
		cfg.EpochAreas = 1 << 30
		if on {
			cfg.Traffic = &traffic.Config{}
		}
		s, err := serve.NewServer(cfg)
		if err != nil {
			return 0, err
		}
		rps, err := walPerfBursts(s, recs)
		s.Abort()
		if err != nil {
			return 0, fmt.Errorf("timed ingest (traffic=%v): %w", on, err)
		}
		return rps, nil
	}
	var bestOff, bestOn float64
	for i := 0; i < trafficPerfRounds; i++ {
		order := []bool{false, true}
		if i%2 == 1 {
			order = []bool{true, false}
		}
		for _, on := range order {
			rps, err := timedRun(on)
			if err != nil {
				return fail(err)
			}
			if on && rps > bestOn {
				bestOn = rps
			}
			if !on && rps > bestOff {
				bestOff = rps
			}
		}
	}
	out.IngestOffRPS, out.IngestOnRPS = bestOff, bestOn
	if bestOff > 0 {
		out.TrafficOverheadFrac = (bestOff - bestOn) / bestOff
	}

	out.Report = out.render()
	return out
}

// flushedReport flushes the server and renders its latest global report.
func flushedReport(srv *serve.Server) ([]byte, error) {
	srv.Flush()
	res, _ := srv.Latest()
	var buf bytes.Buffer
	if err := report.Write(&buf, res, report.JSON, report.Options{Coverage: true}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (r *TrafficPerfResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E17 trafficperf — traffic-class mining over a mixed workload (%d queries: %d bot / %d human / %d admin)\n\n",
		r.Queries, r.BotRecords, r.HumanRecords, r.AdminRecords)
	fmt.Fprintf(&b, "classifier over %d users (bound 0.95):\n", r.UsersScored)
	for _, cls := range traffic.Classes {
		if sc := r.Classifier[cls]; sc != nil {
			fmt.Fprintf(&b, "  %-6s precision %.3f  recall %.3f  (%d users)\n",
				cls, sc.ClassifierPrecision, sc.ClassifierRecall, sc.Users)
		}
	}
	fmt.Fprintf(&b, "per-class reports partition the global report: %v\n", r.IdenticalClassPartition)
	fmt.Fprintf(&b, "classless report identical to traffic-off server: %v\n", r.IdenticalReportTrafficOnOff)
	fmt.Fprintf(&b, "drift log deterministic across runs: %v (%d events)\n", r.IdenticalDriftRuns, r.DriftEvents)
	fmt.Fprintf(&b, "mined interfaces: %d fingerprints tracked, hottest seen %d times\n", r.InterfacesTracked, r.TopInterfaceHits)
	fmt.Fprintf(&b, "ingest (%d clients, fastest of %d paired rounds): %.0f rec/s traffic off, %.0f rec/s with classifier + 3 class miners (overhead %.1f%%, bound 10%%)\n",
		walClients, trafficPerfRounds, r.IngestOffRPS, r.IngestOnRPS, 100*r.TrafficOverheadFrac)
	return b.String()
}
