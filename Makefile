GO ?= go

.PHONY: build test vet lint racecheck fuzz fuzz-regression bench bench-check \
	quick-identity serve-smoke semcache-smoke shard-smoke wal-smoke \
	traffic-smoke ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint fails on any gofmt-unformatted file, runs go vet, and runs staticcheck
# when the binary is on PATH (skipped otherwise so the gate works on minimal
# toolchains).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipped"; fi

# The parallel region-query, pivot-index, and pair-cache code paths must stay
# race-clean; qlog covers the streaming worker pool and the template cache,
# extract the concurrent template rebinds, sqlparser the fingerprint pass,
# serve the ingest queue / epoch worker / shutdown interleavings, core the
# concurrent Add vs Recluster paths of the incremental miner, interestcache
# the atomic epoch-generation snapshot swap under concurrent queries, memdb
# the per-user rate limiter under concurrent admission, and wal the staged
# group-commit writer (concurrent Append/SyncTo vs the background fsync
# goroutine and segment rotation).
racecheck:
	$(GO) test -race ./internal/dbscan/... ./internal/distance/... \
		./internal/qlog/... ./internal/extract/... ./internal/sqlparser/... \
		./internal/serve/... ./internal/core/... ./internal/interestcache/... \
		./internal/memdb/... ./internal/shard/... ./internal/wal/...

# fuzz replays the checked-in seed corpora in regression mode (plain go test
# runs every f.Add seed) and then explores each target briefly. Raise
# FUZZTIME for a longer soak.
FUZZTIME ?= 30s
fuzz: fuzz-regression
	$(GO) test ./internal/sqlparser/ -run=NONE -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sqlparser/ -run=NONE -fuzz=FuzzFingerprint -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/interval/ -run=NONE -fuzz=FuzzIntervalSet -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wal/ -run=NONE -fuzz=FuzzSegmentDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/interestcache/ -run=NONE -fuzz=FuzzContainmentIndex -fuzztime=$(FUZZTIME)

# fuzz-regression replays only the checked-in seed corpora (every f.Add seed
# plus testdata/fuzz entries) without exploring — deterministic, so CI can
# gate on it.
fuzz-regression:
	$(GO) test -run=Fuzz ./internal/sqlparser/ ./internal/interval/ ./internal/wal/ \
		./internal/interestcache/

# bench regenerates BENCH_clustering.json (brute-force vs pivot-index mining),
# BENCH_pipeline.json (uncached vs template-cached extraction), BENCH_serve.json
# (online service under replayed load), BENCH_semcache.json (semantic result
# cache: hit ratio, speedup, staleness), BENCH_shard.json (relation-set
# sharded coordinator at 1/2/4/8 shards), BENCH_wal.json (durable ingest
# WAL: fsync overhead, replay rate, windowed re-mine) and BENCH_traffic.json
# (traffic-class mining: classifier accuracy, partition/drift gates, ingest
# overhead) at the 20k default mix — semcacheperf
# runs at 5k because it replays the log four extra times (oracle, cached,
# miss-path and staleness passes). vet + racecheck gate it so perf numbers are
# never recorded off racy code.
bench: vet racecheck
	$(GO) run ./cmd/benchreport -exp clusterperf
	$(GO) run ./cmd/benchreport -exp pipelineperf
	$(GO) run ./cmd/benchreport -exp serveperf
	$(GO) run ./cmd/benchreport -exp semcacheperf -scale 5000
	$(GO) run ./cmd/benchreport -exp kernelperf
	$(GO) run ./cmd/benchreport -exp shardperf
	$(GO) run ./cmd/benchreport -exp walperf
	$(GO) run ./cmd/benchreport -exp trafficperf

# serve-smoke starts the serving stack, replays 1k records into it, flushes,
# and asserts /report matches the batch miner byte-for-byte in every format
# (TestServeSmoke drives the real HTTP handler surface end to end).
serve-smoke:
	$(GO) test -race -count=1 -run TestServeSmoke -v ./internal/serve/

# semcache-smoke is the end-to-end gate for the interest-driven result cache:
# mine a 5k-query log through the HTTP ingest path, prefetch regions at the
# epoch flush, replay every statement through POST /query with the
# byte-identity oracle on, and require zero oracle failures and a ≥0.5 hit
# ratio (TestSemCacheSmoke).
semcache-smoke:
	$(GO) test -race -count=1 -run TestSemCacheSmoke -v ./internal/serve/

# shard-smoke is the end-to-end gate for the sharded topology: a 4-shard
# in-process cluster (same routing/merge code path as multi-node) ingests a
# 1k-query log over real HTTP, flushes, and the coordinator's merged /report
# must be byte-identical to the batch miner in every format
# (TestCoordinatorMatchesBatch); the shard-down test proves ingest keeps
# accepting and /report degrades with a staleness marker when a node dies.
shard-smoke:
	$(GO) test -race -count=1 -run 'TestCoordinatorMatchesBatch|TestShardDownDegradesGracefully' -v ./internal/shard/

# wal-smoke is the end-to-end durability gate: kill a server mid-ingest
# (clean restart and torn-tail variants), reopen on the same WAL dir, and
# require the recovered /report to be byte-identical to an uninterrupted
# run; TestRemineWindowEquivalence proves POST /remine over a [from,to)
# window matches batch-mining the same slice, and the shard variant proves
# per-shard WALs recover under the coordinator. All under -race.
wal-smoke:
	$(GO) test -race -count=1 -run 'TestCrashRecoveryReplay|TestCrashRecoveryTornTail|TestRemineWindowEquivalence' -v ./internal/serve/
	$(GO) test -race -count=1 -run TestShardedCrashRecovery -v ./internal/shard/

# traffic-smoke is the end-to-end gate for traffic-class mining: the serve
# partition test proves every per-class /report is byte-identical to batch
# mining that class's records (and the classless report is untouched), the
# shard variants prove the same through a 4-shard coordinator's merge, and
# the drift tests prove the /drift event log is a deterministic function of
# the ingest script on both topologies. All under -race.
traffic-smoke:
	$(GO) test -race -count=1 -run 'TestTrafficPartitionIdentity|TestTrafficDriftDeterministic' -v ./internal/serve/
	$(GO) test -race -count=1 -run 'TestCoordinatorTraffic' -v ./internal/shard/

# bench-check is the bench-drift gate: re-run the deterministic experiments
# at the checked-in scales and compare their counters against the committed
# BENCH_*.json records with benchreport -compare (tolerance 15%; wall-clock
# fields are ignored, see internal/benchcmp). Fails when a code change
# regresses distance-eval or parse counters, flips an identical_* flag, or
# drops the flat kernel's early-exit ratio (kernelperf runs its default 20k
# and 100k synthetic-area scales — the 100k scale is the acceptance point
# for the flat-vs-pointer speedup).
BENCHTOL ?= 0.15
bench-check:
	$(GO) run ./cmd/benchreport -exp clusterperf -benchjson /tmp/bench_clustering_new.json
	$(GO) run ./cmd/benchreport -exp pipelineperf -pipejson /tmp/bench_pipeline_new.json
	$(GO) run ./cmd/benchreport -exp kernelperf -kerneljson /tmp/bench_kernel_new.json
	$(GO) run ./cmd/benchreport -exp shardperf -scale 5000 -shardjson /tmp/bench_shard_new.json
	$(GO) run ./cmd/benchreport -exp walperf -waljson /tmp/bench_wal_new.json
	$(GO) run ./cmd/benchreport -exp trafficperf -scale 10000 -trafficjson /tmp/bench_traffic_new.json
	$(GO) run ./cmd/benchreport -compare BENCH_clustering.json /tmp/bench_clustering_new.json -tol $(BENCHTOL)
	$(GO) run ./cmd/benchreport -compare BENCH_pipeline.json /tmp/bench_pipeline_new.json -tol $(BENCHTOL)
	$(GO) run ./cmd/benchreport -compare BENCH_kernel.json /tmp/bench_kernel_new.json -tol $(BENCHTOL)
	$(GO) run ./cmd/benchreport -compare BENCH_shard.json /tmp/bench_shard_new.json -tol $(BENCHTOL)
	$(GO) run ./cmd/benchreport -compare BENCH_wal.json /tmp/bench_wal_new.json -tol $(BENCHTOL)
	$(GO) run ./cmd/benchreport -compare BENCH_traffic.json /tmp/bench_traffic_new.json -tol $(BENCHTOL)

# quick-identity is the per-PR semantic-cache gate: re-run semcacheperf at a
# reduced scale and compare ONLY the scale-independent correctness gates
# (identical_* booleans, zero-stay-zero oracle counters) against the
# committed full-scale BENCH_semcache.json. Counters and ratios are scale-
# dependent and deliberately ignored (-identity), so the gate is cheap
# enough to run on every PR yet still fails the moment an optimised serving
# path stops reproducing direct execution.
QUICKJSON ?= /tmp/bench_semcache_quick.json
quick-identity:
	$(GO) run ./cmd/benchreport -exp semcacheperf -scale 2000 -semjson $(QUICKJSON)
	$(GO) run ./cmd/benchreport -compare BENCH_semcache.json $(QUICKJSON) -identity

# ci mirrors .github/workflows/ci.yml locally: build, lint (gofmt + vet +
# staticcheck when present), unit tests, race detector, fuzz seed-corpus
# regression, the per-PR semcache identity gate, and the end-to-end smokes.
# The nightly bench-drift job (make bench-check) is not part of ci — it
# takes minutes, not seconds.
ci: build lint test racecheck fuzz-regression quick-identity serve-smoke semcache-smoke shard-smoke wal-smoke traffic-smoke
	@echo "ci: all gates green"

clean:
	$(GO) clean ./...
