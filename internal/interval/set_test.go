package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetMerges(t *testing.T) {
	s := NewSet(Closed(1, 3), Closed(2, 5), Closed(7, 9))
	ivs := s.Intervals()
	if len(ivs) != 2 || !ivs[0].Equal(Closed(1, 5)) || !ivs[1].Equal(Closed(7, 9)) {
		t.Errorf("got %v, want [1,5] ∪ [7,9]", s)
	}
}

func TestNewSetMergesAdjacent(t *testing.T) {
	s := NewSet(Interval{Lo: 1, Hi: 3, HiOpen: true}, Closed(3, 5))
	if len(s.Intervals()) != 1 || !s.Hull().Equal(Closed(1, 5)) {
		t.Errorf("adjacent merge failed: %v", s)
	}
	// Open-open at the same boundary stays split (a <> 3 shape).
	ne := NotEqual(3)
	if len(ne.Intervals()) != 2 {
		t.Errorf("NotEqual(3) = %v, want two intervals", ne)
	}
	if ne.Contains(3) || !ne.Contains(2.999) {
		t.Error("NotEqual membership wrong")
	}
}

func TestSetComplement(t *testing.T) {
	s := NewSet(Closed(1, 3))
	c := s.Complement()
	want := NewSet(Below(1, true), Above(3, true))
	if !c.Equal(want) {
		t.Errorf("complement = %v, want %v", c, want)
	}
	if !FullSet().Complement().IsEmpty() {
		t.Error("complement of full should be empty")
	}
	if !EmptySet().Complement().IsFull() {
		t.Error("complement of empty should be full")
	}
	// De-Morgan-ish sanity on NotEqual.
	if !NotEqual(5).Complement().Equal(NewSet(Point(5))) {
		t.Errorf("complement of <>5 = %v, want {5}", NotEqual(5).Complement())
	}
}

func TestSetIntersectUnion(t *testing.T) {
	a := NewSet(Closed(0, 4), Closed(6, 10))
	b := NewSet(Closed(3, 7))
	got := a.Intersect(b)
	want := NewSet(Closed(3, 4), Closed(6, 7))
	if !got.Equal(want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	u := a.Union(b)
	if !u.Equal(NewSet(Closed(0, 10))) {
		t.Errorf("union = %v, want [0,10]", u)
	}
}

func TestSetWidthAndHull(t *testing.T) {
	s := NewSet(Closed(0, 2), Closed(5, 6))
	if s.Width() != 3 {
		t.Errorf("width = %v, want 3", s.Width())
	}
	if !s.Hull().Equal(Closed(0, 6)) {
		t.Errorf("hull = %v, want [0,6]", s.Hull())
	}
}

func TestSetClip(t *testing.T) {
	s := NotEqual(5).Clip(Closed(0, 10))
	want := NewSet(Interval{Lo: 0, Hi: 5, HiOpen: true}, Interval{Lo: 5, Hi: 10, LoOpen: true})
	if !s.Equal(want) {
		t.Errorf("clip = %v, want %v", s, want)
	}
}

func randSet(r *rand.Rand) Set {
	n := r.Intn(4)
	ivs := make([]Interval, n)
	for i := range ivs {
		ivs[i] = randInterval(r)
	}
	return NewSet(ivs...)
}

func TestPropSetDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r), randSet(r)
		lhs := a.Union(b).Complement()
		rhs := a.Complement().Intersect(b.Complement())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSetComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSet(r)
		return a.Complement().Complement().Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSetIntersectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSet(r)
		return a.Intersect(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSetMembership(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r), randSet(r)
		v := float64(r.Intn(25) - 12)
		inUnion := a.Union(b).Contains(v) == (a.Contains(v) || b.Contains(v))
		inInter := a.Intersect(b).Contains(v) == (a.Contains(v) && b.Contains(v))
		inCompl := a.Complement().Contains(v) == !a.Contains(v)
		return inUnion && inInter && inCompl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox()
	b.Set("T.u", Closed(1, 8))
	b.Constrain("T.u", Below(5, false))
	if !b.Get("T.u").Equal(Closed(1, 5)) {
		t.Errorf("constrain = %v, want [1,5]", b.Get("T.u"))
	}
	b.Extend("T.u", Closed(7, 9))
	if !b.Get("T.u").Equal(Closed(1, 9)) {
		t.Errorf("extend = %v, want [1,9]", b.Get("T.u"))
	}
	if !b.Get("T.v").IsFull() {
		t.Error("unconstrained dim should be full")
	}
	if b.IsEmpty() {
		t.Error("box should not be empty")
	}
	b.Constrain("T.w", Empty())
	if !b.IsEmpty() {
		t.Error("box with empty dim should be empty")
	}
}

func TestBoxVolumeRatio(t *testing.T) {
	content := NewBox()
	content.Set("T.u", Closed(0, 10))
	content.Set("T.v", Closed(0, 100))

	access := NewBox()
	access.Set("T.u", Closed(0, 5)) // half of content along u, unconstrained along v
	if r := access.VolumeRatio(content); r != 0.5 {
		t.Errorf("ratio = %v, want 0.5", r)
	}
	access.Set("T.v", Closed(0, 10)) // tenth along v
	if r := access.VolumeRatio(content); r != 0.05 {
		t.Errorf("ratio = %v, want 0.05", r)
	}
	// Area entirely outside content => 0 (empty-area clusters of Table 1).
	empty := NewBox()
	empty.Set("T.u", Closed(20, 30))
	if r := empty.VolumeRatio(content); r != 0 {
		t.Errorf("ratio = %v, want 0", r)
	}
}

func TestBoxContainsPoint(t *testing.T) {
	b := NewBox()
	b.Set("T.u", Closed(0, 10))
	b.Set("T.v", Above(5, true))
	if !b.ContainsPoint(map[string]float64{"T.u": 3, "T.v": 6}) {
		t.Error("point should be inside")
	}
	if b.ContainsPoint(map[string]float64{"T.u": 3, "T.v": 5}) {
		t.Error("open boundary should exclude")
	}
	if b.ContainsPoint(map[string]float64{"T.u": 3}) {
		t.Error("missing dim should exclude")
	}
}

func TestBoxString(t *testing.T) {
	b := NewBox()
	if b.String() != "⊤" {
		t.Errorf("empty box string = %q", b.String())
	}
	b.Set("T.u", Closed(1, 2))
	if b.String() != "T.u ∈ [1, 2]" {
		t.Errorf("box string = %q", b.String())
	}
}

func TestPropBoxVolumeRatioBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ref := NewBox()
		box := NewBox()
		dims := []string{"a", "b", "c"}
		for _, d := range dims {
			lo := float64(r.Intn(10))
			ref.Set(d, Closed(lo, lo+1+float64(r.Intn(10))))
			if r.Intn(3) > 0 {
				blo := float64(r.Intn(12) - 1)
				box.Set(d, Closed(blo, blo+float64(r.Intn(8))))
			}
		}
		ratio := box.VolumeRatio(ref)
		return ratio >= 0 && ratio <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropBoxConstrainShrinks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBox()
		b.Set("a", Closed(0, 10))
		before := b.Get("a").Width()
		b.Constrain("a", randInterval(r))
		return b.Get("a").Width() <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropBoxExtendGrows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBox()
		orig := randInterval(r)
		b.Set("a", orig)
		add := randInterval(r)
		b.Extend("a", add)
		got := b.Get("a")
		return got.ContainsInterval(orig) && got.ContainsInterval(add)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
