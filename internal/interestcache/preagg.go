package interestcache

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/predicate"
	"repro/internal/sqlparser"
)

// Aggregate pushdown (DESIGN.md §17). The safeShape gate rejects HAVING
// because extraction folds HAVING aggregates into the row-level constraint,
// shrinking the access area below the statement's WHERE row set. The agg
// path sidesteps that: containment is decided on the WHERE-only area (the
// statement with HAVING stripped), which IS the row set the aggregation
// consumes. A single containing region then executes the full statement on
// its store; a covering set either executes on the positional union store
// or — when the plan below recognises the statement — combines per-region
// pre-aggregates without materialising the union.
//
// The partial-aggregate merge is only attempted when it is provably
// byte-identical to direct execution:
//
//   - the WHERE clause is fully numeric-decomposable (every CNF clause is a
//     single-column interval constraint; string predicates are out because
//     store equality is case-sensitive while region categorical admission
//     folds case);
//   - every cover member's box, on every dimension it constrains, is
//     contained in the query's per-column set — so every prefetched row
//     satisfies the WHERE clause and partial counts are exact;
//   - members are pairwise position-disjoint, so nothing is double-counted;
//   - COUNT/MIN/MAX merge associatively; SUM/AVG are float-order-sensitive,
//     so any group spanning two members bails the whole query to the union
//     store rather than risk a differently-rounded sum.

// aggKind enumerates the combinable aggregate functions.
type aggKind int

const (
	aggCountStar aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// aggRef is one distinct aggregate call in the statement: the function and
// its (lowercased) argument column, "" for COUNT(*).
type aggRef struct {
	kind aggKind
	col  string
}

// planItem is one select-list entry: the group column or an aggregate.
type planItem struct {
	group bool
	agg   int // index into aggPlan.aggs
	expr  sqlparser.Expr
	alias string
}

// aggPlan is a recognised single-table GROUP-BY aggregate statement whose
// result can be assembled from per-region partial aggregates.
type aggPlan struct {
	table    string // FROM table as written
	groupCol string // GROUP BY column name as written
	groupRef *sqlparser.ColumnRef
	aggs     []aggRef
	items    []planItem
	having   sqlparser.Expr
	// orderSensitive marks plans containing SUM or AVG, whose partial sums
	// must not be merged across members.
	orderSensitive bool
}

// buildAggPlan recognises the combinable statement class. Nil means the
// statement is served by whole-statement execution against a region or
// union store instead.
func buildAggPlan(sel *sqlparser.SelectStatement) *aggPlan {
	if sel.Distinct || sel.Top != nil || sel.Limit != nil ||
		len(sel.OrderBy) > 0 || len(sel.Unions) > 0 || len(sel.From) != 1 ||
		len(sel.GroupBy) != 1 {
		return nil
	}
	tn, ok := sel.From[0].(*sqlparser.TableName)
	if !ok || tn.Alias != "" {
		return nil
	}
	g, ok := sel.GroupBy[0].(*sqlparser.ColumnRef)
	if !ok || (g.Table != "" && !strings.EqualFold(g.Table, tn.Name)) {
		return nil
	}
	p := &aggPlan{table: tn.Name, groupCol: g.Name, groupRef: g}
	isGroupRef := func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		return ok && strings.EqualFold(cr.Name, g.Name) &&
			(cr.Table == "" || strings.EqualFold(cr.Table, tn.Name))
	}
	addAgg := func(fc *sqlparser.FuncCall) (int, bool) {
		if fc.Distinct {
			return 0, false
		}
		var kind aggKind
		name := strings.ToUpper(fc.Name)
		col := ""
		if name == "COUNT" && fc.Star {
			kind = aggCountStar
		} else {
			if len(fc.Args) != 1 {
				return 0, false
			}
			cr, ok := fc.Args[0].(*sqlparser.ColumnRef)
			if !ok || (cr.Table != "" && !strings.EqualFold(cr.Table, tn.Name)) {
				return 0, false
			}
			col = strings.ToLower(cr.Name)
			switch name {
			case "COUNT":
				kind = aggCount
			case "SUM":
				kind = aggSum
			case "AVG":
				kind = aggAvg
			case "MIN":
				kind = aggMin
			case "MAX":
				kind = aggMax
			default:
				return 0, false
			}
		}
		for i, a := range p.aggs {
			if a.kind == kind && a.col == col {
				return i, true
			}
		}
		p.aggs = append(p.aggs, aggRef{kind: kind, col: col})
		if kind == aggSum || kind == aggAvg {
			p.orderSensitive = true
		}
		return len(p.aggs) - 1, true
	}
	for _, item := range sel.Select {
		if item.Star {
			return nil
		}
		if isGroupRef(item.Expr) {
			p.items = append(p.items, planItem{group: true, expr: item.Expr, alias: item.Alias})
			continue
		}
		fc, ok := item.Expr.(*sqlparser.FuncCall)
		if !ok || !fc.IsAggregate() {
			return nil
		}
		idx, ok := addAgg(fc)
		if !ok {
			return nil
		}
		p.items = append(p.items, planItem{agg: idx, expr: item.Expr, alias: item.Alias})
	}
	// HAVING: Boolean combinations of comparisons between plan aggregates,
	// the group column, and (possibly negated) numeric literals.
	var validTerm func(e sqlparser.Expr) bool
	validTerm = func(e sqlparser.Expr) bool {
		switch x := e.(type) {
		case *sqlparser.NumberLit:
			return true
		case *sqlparser.UnaryExpr:
			if x.Op != "-" {
				return false
			}
			_, ok := x.X.(*sqlparser.NumberLit)
			return ok
		case *sqlparser.ColumnRef:
			return isGroupRef(x)
		case *sqlparser.FuncCall:
			if !x.IsAggregate() {
				return false
			}
			_, ok := addAgg(x)
			return ok
		}
		return false
	}
	var validBool func(e sqlparser.Expr) bool
	validBool = func(e sqlparser.Expr) bool {
		switch x := e.(type) {
		case *sqlparser.BinaryExpr:
			switch x.Op {
			case "AND", "OR":
				return validBool(x.L) && validBool(x.R)
			case "=", "<>", "<", "<=", ">", ">=":
				return validTerm(x.L) && validTerm(x.R)
			}
			return false
		case *sqlparser.UnaryExpr:
			return x.Op == "NOT" && validBool(x.X)
		}
		return false
	}
	if sel.Having != nil {
		if !validBool(sel.Having) {
			return nil
		}
		p.having = sel.Having
	}
	return p
}

// planKey canonicalises the plan's book signature: same table, group column
// and aggregate set share one per-region book.
func (p *aggPlan) planKey() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(p.table))
	b.WriteString("|")
	b.WriteString(strings.ToLower(p.groupCol))
	for _, a := range p.aggs {
		b.WriteString("|")
		b.WriteString(strings.ToLower(a.col))
		b.WriteString(":")
		b.WriteByte(byte('0' + int(a.kind)))
	}
	return b.String()
}

// aggStat is one aggregate's partial state over one group in one region.
type aggStat struct {
	nonNull int
	sum     float64
	min     memdb.Value
	max     memdb.Value
	hasMM   bool
}

// bookGroup is one group's partial aggregates in one region.
type bookGroup struct {
	val    memdb.Value // group column value of the group's first row
	minPos int         // global source position of that row
	count  int         // rows in the group (COUNT(*))
	stats  []aggStat   // aligned with aggPlan.aggs
}

// groupBook holds one region's pre-aggregates for one plan signature.
type groupBook struct {
	ok     bool
	byKey  map[string]*bookGroup
	insert []string // group keys in first-occurrence order
}

// bookCache lazily materialises and retains a region's group books. Books
// are immutable once built and shared with carried regions.
type bookCache struct {
	mu    sync.Mutex
	byKey map[string]*groupBook
}

func (c *bookCache) snapshot() map[string]*groupBook {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*groupBook, len(c.byKey))
	for k, v := range c.byKey {
		out[k] = v
	}
	return out
}

func (c *bookCache) get(r *Region, p *aggPlan) *groupBook {
	key := p.planKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey == nil {
		c.byKey = make(map[string]*groupBook)
	}
	if b, ok := c.byKey[key]; ok {
		return b
	}
	b := buildGroupBook(r, p)
	c.byKey[key] = b
	return b
}

// buildGroupBook scans a region store table once, folding each plan
// aggregate per group in store (= source) row order, mirroring memdb's
// evalAggregate fold exactly.
func buildGroupBook(r *Region, p *aggPlan) *groupBook {
	b := &groupBook{byKey: map[string]*bookGroup{}}
	if r.store == nil {
		return b
	}
	t := r.store.Table(p.table)
	if t == nil {
		return b
	}
	gi, ok := t.ColumnIndex(p.groupCol)
	if !ok {
		return b
	}
	cols := make([]int, len(p.aggs))
	for i, a := range p.aggs {
		if a.kind == aggCountStar {
			cols[i] = -1
			continue
		}
		ci, ok := t.ColumnIndex(a.col)
		if !ok {
			return b
		}
		cols[i] = ci
	}
	positions := r.rowIdx[strings.ToLower(t.Name)]
	if len(positions) != len(t.Rows) {
		return b
	}
	for ri, row := range t.Rows {
		gv := row[gi]
		key := gv.String()
		g, ok := b.byKey[key]
		if !ok {
			g = &bookGroup{val: gv, minPos: positions[ri], stats: make([]aggStat, len(p.aggs))}
			b.byKey[key] = g
			b.insert = append(b.insert, key)
		}
		g.count++
		for i, ci := range cols {
			if ci < 0 {
				continue
			}
			v := row[ci]
			if v.Kind == memdb.Null {
				continue
			}
			st := &g.stats[i]
			st.nonNull++
			st.sum += v.Num
			if !st.hasMM {
				st.min, st.max, st.hasMM = v, v, true
			} else {
				if c, ok := v.Compare(st.min); ok && c < 0 {
					st.min = v
				}
				if c, ok := v.Compare(st.max); ok && c > 0 {
					st.max = v
				}
			}
		}
	}
	b.ok = true
	return b
}

// decomposeWhere projects the WHERE-only area onto per-column interval
// sets, failing unless EVERY clause decomposes: the per-column sets must be
// the exact WHERE semantics for row membership, not the usual necessary
// over-approximation, because partial counts admit every region row.
func decomposeWhere(area *extract.AccessArea) (map[string]interval.Set, bool) {
	spec := make(map[string]interval.Set)
	for _, cl := range area.CNF {
		col := ""
		set := interval.EmptySet()
		for _, p := range cl {
			if p.Kind != predicate.ColumnConstant {
				return nil, false
			}
			s, ok := p.Interval()
			if !ok {
				return nil, false
			}
			if col == "" {
				col = p.Column
			} else if col != p.Column {
				return nil, false
			}
			set = set.Union(s)
		}
		if col == "" {
			return nil, false
		}
		if cur, ok := spec[col]; ok {
			spec[col] = cur.Intersect(set)
		} else {
			spec[col] = set
		}
	}
	return spec, true
}

// setContainsInterval reports iv ⊆ set: a connected interval is contained
// in a normalised set iff one member interval contains it.
func setContainsInterval(set interval.Set, iv interval.Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	for _, m := range set.Intervals() {
		if m.ContainsInterval(iv) {
			return true
		}
	}
	return false
}

// combinePreagg answers the planned statement from the cover members'
// partial aggregates. ok=false sends the caller to the union-store path.
func combinePreagg(cv *cover, p *aggPlan, area *extract.AccessArea, shape *queryShape, rowLimit int) (*memdb.ResultSet, bool) {
	if p == nil || len(shape.strs) > 0 {
		return nil, false
	}
	spec, ok := decomposeWhere(area)
	if !ok {
		return nil, false
	}
	// Every member's rows must all satisfy the WHERE clause: the member
	// constrains every WHERE column, inside the query's set, and nothing
	// else the query leaves free is pre-filtered (guaranteed for box dims by
	// the check below against spec, and categoricals by the strs gate).
	for _, r := range cv.regions {
		if len(r.Categorical) > 0 {
			return nil, false
		}
		dims := map[string]bool{}
		for _, d := range r.Box.Dims() {
			rel, _, ok := splitQualified(d)
			if !ok {
				return nil, false
			}
			if !containsFold(shape.relations, rel) {
				// Dimensions on relations the query never reads restrict
				// other tables' rows only; the plan table is untouched.
				continue
			}
			dims[d] = true
			qset, ok := spec[d]
			if !ok || !setContainsInterval(qset, r.Box.Get(d)) {
				return nil, false
			}
		}
		for col := range spec {
			if !dims[col] {
				return nil, false
			}
		}
	}
	if !positionsDisjoint(cv.regions, strings.ToLower(p.table)) {
		return nil, false
	}
	books := make([]*groupBook, len(cv.regions))
	for i, r := range cv.regions {
		b := r.books.get(r, p)
		if !b.ok {
			return nil, false
		}
		books[i] = b
	}
	// Merge the members' partial groups. Fold order within a key follows the
	// group's first source row per member, reproducing memdb's global-order
	// fold for the associative aggregates; SUM/AVG refuse to span members.
	type mergeEntry struct {
		key    string
		groups []*bookGroup
	}
	merged := map[string]*mergeEntry{}
	var order []*mergeEntry
	for _, b := range books {
		for _, key := range b.insert {
			g := b.byKey[key]
			e, ok := merged[key]
			if !ok {
				e = &mergeEntry{key: key}
				merged[key] = e
				order = append(order, e)
			}
			e.groups = append(e.groups, g)
		}
	}
	rows := make([]*bookGroup, 0, len(order))
	for _, e := range order {
		if len(e.groups) > 1 && p.orderSensitive {
			return nil, false
		}
		sort.SliceStable(e.groups, func(i, j int) bool { return e.groups[i].minPos < e.groups[j].minPos })
		out := &bookGroup{val: e.groups[0].val, minPos: e.groups[0].minPos, stats: make([]aggStat, len(p.aggs))}
		for _, g := range e.groups {
			out.count += g.count
			for i := range p.aggs {
				st, in := &out.stats[i], g.stats[i]
				st.nonNull += in.nonNull
				st.sum += in.sum
				if in.hasMM {
					if !st.hasMM {
						st.min, st.max, st.hasMM = in.min, in.max, true
					} else {
						if c, ok := in.min.Compare(st.min); ok && c < 0 {
							st.min = in.min
						}
						if c, ok := in.max.Compare(st.max); ok && c > 0 {
							st.max = in.max
						}
					}
				}
			}
		}
		rows = append(rows, out)
	}
	// memdb emits groups in first-occurrence order of the full scan = by
	// the group's earliest source position.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].minPos < rows[j].minPos })
	// HAVING filter.
	if p.having != nil {
		kept := rows[:0]
		for _, g := range rows {
			keep, ok := evalHavingBool(p.having, p, g)
			if !ok {
				return nil, false
			}
			if keep {
				kept = append(kept, g)
			}
		}
		rows = kept
	}
	if rowLimit > 0 && len(rows) > rowLimit {
		return nil, false
	}
	// Result assembly mirroring memdb's projection naming: with at least
	// one pre-HAVING group the WHERE row set was non-empty, so column refs
	// qualify against the table; otherwise names fall back to the formatted
	// expression, exactly as projectionColumns does with no sample row.
	var tbl *memdb.Table
	if len(cv.regions) > 0 && cv.regions[0].store != nil {
		tbl = cv.regions[0].store.Table(p.table)
	}
	haveSample := len(order) > 0
	rs := &memdb.ResultSet{}
	for _, item := range p.items {
		name := item.alias
		if name == "" {
			if cr, ok := item.expr.(*sqlparser.ColumnRef); ok && haveSample && tbl != nil {
				if _, ok := tbl.ColumnIndex(cr.Name); ok {
					name = tbl.Name + "." + cr.Name
				}
			}
			if name == "" {
				name = sqlparser.FormatExpr(item.expr)
			}
		}
		rs.Columns = append(rs.Columns, name)
	}
	for _, g := range rows {
		row := make([]memdb.Value, len(p.items))
		for i, item := range p.items {
			if item.group {
				row[i] = g.val
			} else {
				row[i] = aggValue(p, item.agg, g)
			}
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, true
}

// positionsDisjoint verifies no source row of the plan table appears in two
// members.
func positionsDisjoint(regions []*Region, tableKey string) bool {
	idx := make([]int, len(regions))
	last := -1
	for {
		bi, bp := -1, 0
		for i, r := range regions {
			pos := r.rowIdx[tableKey]
			if idx[i] < len(pos) && (bi < 0 || pos[idx[i]] < bp) {
				bi, bp = i, pos[idx[i]]
			}
		}
		if bi < 0 {
			return true
		}
		if bp == last {
			return false
		}
		last = bp
		idx[bi]++
	}
}

// aggValue finalises one merged aggregate, mirroring memdb's NULL-on-empty
// semantics.
func aggValue(p *aggPlan, idx int, g *bookGroup) memdb.Value {
	a := p.aggs[idx]
	switch a.kind {
	case aggCountStar:
		return memdb.N(float64(g.count))
	case aggCount:
		return memdb.N(float64(g.stats[idx].nonNull))
	}
	st := g.stats[idx]
	switch a.kind {
	case aggSum:
		if st.nonNull == 0 {
			return memdb.NullValue()
		}
		return memdb.N(st.sum)
	case aggAvg:
		if st.nonNull == 0 {
			return memdb.NullValue()
		}
		return memdb.N(st.sum / float64(st.nonNull))
	case aggMin:
		if !st.hasMM {
			return memdb.NullValue()
		}
		return st.min
	case aggMax:
		if !st.hasMM {
			return memdb.NullValue()
		}
		return st.max
	}
	return memdb.NullValue()
}

// evalHavingBool evaluates the validated HAVING expression over one merged
// group, mirroring memdb's two-valued comparison semantics.
func evalHavingBool(e sqlparser.Expr, p *aggPlan, g *bookGroup) (bool, bool) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			l, ok := evalHavingBool(x.L, p, g)
			if !ok {
				return false, false
			}
			if !l {
				return false, true
			}
			return evalHavingBool(x.R, p, g)
		case "OR":
			l, ok := evalHavingBool(x.L, p, g)
			if !ok {
				return false, false
			}
			if l {
				return true, true
			}
			return evalHavingBool(x.R, p, g)
		case "=", "<>", "<", "<=", ">", ">=":
			l, ok := evalHavingTerm(x.L, p, g)
			if !ok {
				return false, false
			}
			r, ok := evalHavingTerm(x.R, p, g)
			if !ok {
				return false, false
			}
			return cmpVals(x.Op, l, r), true
		}
	case *sqlparser.UnaryExpr:
		if x.Op == "NOT" {
			inner, ok := evalHavingBool(x.X, p, g)
			return !inner, ok
		}
	}
	return false, false
}

func evalHavingTerm(e sqlparser.Expr, p *aggPlan, g *bookGroup) (memdb.Value, bool) {
	switch x := e.(type) {
	case *sqlparser.NumberLit:
		return memdb.N(x.Value), true
	case *sqlparser.UnaryExpr:
		if x.Op == "-" {
			if n, ok := x.X.(*sqlparser.NumberLit); ok {
				return memdb.N(-n.Value), true
			}
		}
		return memdb.Value{}, false
	case *sqlparser.ColumnRef:
		return g.val, true
	case *sqlparser.FuncCall:
		idx, ok := planAggIndex(p, x)
		if !ok {
			return memdb.Value{}, false
		}
		return aggValue(p, idx, g), true
	}
	return memdb.Value{}, false
}

// planAggIndex resolves a HAVING aggregate call back to its plan slot.
func planAggIndex(p *aggPlan, fc *sqlparser.FuncCall) (int, bool) {
	name := strings.ToUpper(fc.Name)
	var kind aggKind
	col := ""
	if name == "COUNT" && fc.Star {
		kind = aggCountStar
	} else {
		if len(fc.Args) != 1 {
			return 0, false
		}
		cr, ok := fc.Args[0].(*sqlparser.ColumnRef)
		if !ok {
			return 0, false
		}
		col = strings.ToLower(cr.Name)
		switch name {
		case "COUNT":
			kind = aggCount
		case "SUM":
			kind = aggSum
		case "AVG":
			kind = aggAvg
		case "MIN":
			kind = aggMin
		case "MAX":
			kind = aggMax
		default:
			return 0, false
		}
	}
	for i, a := range p.aggs {
		if a.kind == kind && a.col == col {
			return i, true
		}
	}
	return 0, false
}

func cmpVals(op string, l, r memdb.Value) bool {
	if op == "=" {
		return l.Equal(r)
	}
	if op == "<>" {
		if l.Kind == memdb.Null || r.Kind == memdb.Null {
			return false
		}
		return !l.Equal(r)
	}
	c, ok := l.Compare(r)
	if !ok {
		return false
	}
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}
