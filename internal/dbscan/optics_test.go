package dbscan

import (
	"math"
	"math/rand"
	"testing"
)

func TestOPTICSBlobs(t *testing.T) {
	var pts []float64
	for i := 0; i < 20; i++ {
		pts = append(pts, float64(i)*0.1)     // blob A
		pts = append(pts, 100+float64(i)*0.1) // blob B
	}
	pts = append(pts, 50) // outlier
	o := RunOPTICS(len(pts), euclid1D(pts), 5, 4, nil)
	res := o.ExtractDBSCAN(0.5)
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	if res.Labels[len(pts)-1] != Noise {
		t.Errorf("outlier label = %d", res.Labels[len(pts)-1])
	}
}

func TestOPTICSMatchesDBSCANClusterCount(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := make([]float64, 400)
	for i := range pts {
		// Three dense bands plus sparse background.
		switch i % 4 {
		case 0:
			pts[i] = r.Float64()
		case 1:
			pts[i] = 10 + r.Float64()
		case 2:
			pts[i] = 20 + r.Float64()
		default:
			pts[i] = r.Float64() * 30
		}
	}
	for _, eps := range []float64{0.1, 0.3, 0.5} {
		direct := Cluster(len(pts), euclid1D(pts), Config{Eps: eps, MinPts: 5})
		o := RunOPTICS(len(pts), euclid1D(pts), 2.0, 5, nil)
		viaOptics := o.ExtractDBSCAN(eps)
		// OPTICS extraction is equivalent up to border-point assignment;
		// cluster counts and core membership must agree.
		if direct.NumClusters != viaOptics.NumClusters {
			t.Errorf("eps=%v: dbscan %d clusters vs optics %d", eps, direct.NumClusters, viaOptics.NumClusters)
		}
	}
}

func TestOPTICSReachabilityShape(t *testing.T) {
	// Within one dense blob, reachability stays small after the first point.
	pts := make([]float64, 30)
	for i := range pts {
		pts[i] = float64(i) * 0.01
	}
	o := RunOPTICS(len(pts), euclid1D(pts), 5, 3, nil)
	if !math.IsInf(o.Reachability[o.Order[0]], 1) {
		t.Error("first point should have infinite reachability")
	}
	for _, p := range o.Order[1:] {
		if o.Reachability[p] > 0.05 {
			t.Errorf("reachability[%d] = %v, want tiny inside blob", p, o.Reachability[p])
		}
	}
}

func TestOPTICSWeighted(t *testing.T) {
	// A point with weight 10 turns its sparse neighbourhood into a core.
	pts := []float64{0, 0.1, 50}
	o := RunOPTICS(len(pts), euclid1D(pts), 5, 5, []int{10, 1, 1})
	res := o.ExtractDBSCAN(0.5)
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[2] != Noise {
		t.Errorf("far point = %d", res.Labels[2])
	}
}
