package qlog

import (
	"strings"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
)

// SkyAreaKind reproduces the four "sky area" categories of the SDSS Log
// Viewer (Zhang [26], discussed in Section 3.2): what part of the sky a
// query addresses, judged from its access area's constraints on the
// coordinate columns (ra/dec).
type SkyAreaKind int

const (
	// RectangularSkyArea: both ra and dec constrained to bounded ranges.
	RectangularSkyArea SkyAreaKind = iota
	// BandSkyArea: exactly one coordinate constrained to a bounded range
	// (a declination or right-ascension stripe).
	BandSkyArea
	// SinglePointSkyArea: coordinates pinned by equality, or an object
	// looked up by id.
	SinglePointSkyArea
	// OtherSkyArea: no usable coordinate constraint.
	OtherSkyArea
)

func (k SkyAreaKind) String() string {
	switch k {
	case RectangularSkyArea:
		return "rectangular"
	case BandSkyArea:
		return "band"
	case SinglePointSkyArea:
		return "single-point"
	default:
		return "other"
	}
}

// ClassifySkyArea categorises an access area by its coordinate footprint.
func ClassifySkyArea(area *extract.AccessArea) SkyAreaKind {
	bounds := area.Bounds()
	var raIv, decIv interval.Interval
	raSeen, decSeen := false, false
	idPoint := false
	for col, set := range bounds {
		h := set.Hull()
		lower := strings.ToLower(col)
		switch {
		case strings.HasSuffix(lower, ".ra"):
			raIv, raSeen = h, true
		case strings.HasSuffix(lower, ".dec"):
			decIv, decSeen = h, true
		case strings.HasSuffix(lower, "objid") || strings.HasSuffix(lower, "specobjid"):
			if h.IsPoint() {
				idPoint = true
			}
		}
	}
	bounded := func(iv interval.Interval) bool {
		return !iv.IsEmpty() && iv.Width() > 0 && iv.Width() < 1e18 &&
			!strings.Contains(iv.String(), "inf")
	}
	pinned := func(iv interval.Interval) bool { return iv.IsPoint() }
	switch {
	case raSeen && decSeen && pinned(raIv) && pinned(decIv):
		return SinglePointSkyArea
	case idPoint:
		return SinglePointSkyArea
	case raSeen && decSeen && bounded(raIv) && bounded(decIv):
		return RectangularSkyArea
	case (raSeen && bounded(raIv)) != (decSeen && bounded(decIv)):
		return BandSkyArea
	default:
		return OtherSkyArea
	}
}

// AccessKind reproduces [26]'s second axis: what the query does with the
// area — scan broadly, search with constraints, or retrieve specific
// objects.
type AccessKind int

const (
	// ScanQuery reads a relation with little or no constraint.
	ScanQuery AccessKind = iota
	// SearchQuery filters by ranges.
	SearchQuery
	// RetrieveQuery fetches identified objects (equality on id columns or
	// point constraints).
	RetrieveQuery
)

func (k AccessKind) String() string {
	switch k {
	case ScanQuery:
		return "scan"
	case SearchQuery:
		return "search"
	default:
		return "retrieve"
	}
}

// ClassifyAccess categorises an access area as scan, search, or retrieve.
func ClassifyAccess(area *extract.AccessArea) AccessKind {
	if area.CNF.IsTrue() {
		return ScanQuery
	}
	for _, cl := range area.CNF {
		if len(cl) != 1 {
			continue
		}
		p := cl[0]
		if p.Kind == predicate.ColumnConstant && p.Op == predicate.Eq &&
			p.Val.Kind == predicate.NumberVal &&
			(strings.HasSuffix(strings.ToLower(p.Column), "objid") ||
				strings.HasSuffix(strings.ToLower(p.Column), "specobjid")) {
			return RetrieveQuery
		}
	}
	return SearchQuery
}

// ClassificationCounts tallies both axes over a set of areas, the summary
// [26] visualised.
type ClassificationCounts struct {
	Sky    map[SkyAreaKind]int
	Access map[AccessKind]int
}

// Classify tallies the classifications of a batch of areas.
func Classify(areas []*extract.AccessArea) *ClassificationCounts {
	out := &ClassificationCounts{
		Sky:    make(map[SkyAreaKind]int),
		Access: make(map[AccessKind]int),
	}
	for _, a := range areas {
		out.Sky[ClassifySkyArea(a)]++
		out.Access[ClassifyAccess(a)]++
	}
	return out
}
