// Package interval provides the one-dimensional interval algebra and the
// hyper-rectangle (box) geometry that underpin access areas: predicate
// ranges, content/access bounding boxes, overlap computation for the
// distance function (Section 5 of the paper), and volume ratios for the
// area-coverage statistics of Table 1.
//
// Intervals carry open/closed endpoint flags so that predicates such as
// "a < 3" and "a <= 3" remain distinguishable; all measure-based operations
// (Width, OverlapLen, volume) are insensitive to endpoint openness, which is
// the correct behaviour for the continuous domains the paper works with.
package interval

import (
	"fmt"
	"math"
	"strconv"
)

// Interval is a possibly unbounded interval over float64.
// Lo == -Inf means unbounded below; Hi == +Inf unbounded above.
// LoOpen/HiOpen mark strict endpoints ("(", ")") as opposed to closed
// ("[", "]"). An interval with Lo > Hi, or Lo == Hi with either endpoint
// open, is empty.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Full is the unbounded interval (-Inf, +Inf).
func Full() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// Empty returns a canonical empty interval.
func Empty() Interval {
	return Interval{Lo: 1, Hi: 0}
}

// Point returns the degenerate closed interval [v, v].
func Point(v float64) Interval {
	return Interval{Lo: v, Hi: v}
}

// Closed returns [lo, hi].
func Closed(lo, hi float64) Interval {
	return Interval{Lo: lo, Hi: hi}
}

// Open returns (lo, hi).
func Open(lo, hi float64) Interval {
	return Interval{Lo: lo, Hi: hi, LoOpen: true, HiOpen: true}
}

// Below returns the interval of all values strictly (or weakly) below v:
// (-Inf, v) when open, (-Inf, v] otherwise.
func Below(v float64, open bool) Interval {
	return Interval{Lo: math.Inf(-1), LoOpen: true, Hi: v, HiOpen: open}
}

// Above returns the interval of all values strictly (or weakly) above v:
// (v, +Inf) when open, [v, +Inf) otherwise.
func Above(v float64, open bool) Interval {
	return Interval{Lo: v, LoOpen: open, Hi: math.Inf(1), HiOpen: true}
}

// IsEmpty reports whether the interval contains no point.
func (iv Interval) IsEmpty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen) {
		return true
	}
	return false
}

// IsFull reports whether the interval is unbounded on both sides.
func (iv Interval) IsFull() bool {
	return !iv.IsEmpty() && math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// IsPoint reports whether the interval is a single point.
func (iv Interval) IsPoint() bool {
	return !iv.IsEmpty() && iv.Lo == iv.Hi
}

// Width returns the measure (length) of the interval. Empty intervals have
// width 0; unbounded intervals have width +Inf.
func (iv Interval) Width() float64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether v lies inside the interval, honouring endpoint
// openness.
func (iv Interval) Contains(v float64) bool {
	if iv.IsEmpty() {
		return false
	}
	if v < iv.Lo || (v == iv.Lo && iv.LoOpen) {
		return false
	}
	if v > iv.Hi || (v == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return iv.Intersect(other) == other.canonical()
}

func (iv Interval) canonical() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	return iv
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	out := iv
	if other.Lo > out.Lo || (other.Lo == out.Lo && other.LoOpen) {
		out.Lo, out.LoOpen = other.Lo, other.LoOpen
	}
	if other.Hi < out.Hi || (other.Hi == out.Hi && other.HiOpen) {
		out.Hi, out.HiOpen = other.Hi, other.HiOpen
	}
	return out.canonical()
}

// Hull returns the smallest interval containing both inputs. The hull of an
// empty interval and x is x.
func (iv Interval) Hull(other Interval) Interval {
	if iv.IsEmpty() {
		return other.canonical()
	}
	if other.IsEmpty() {
		return iv
	}
	out := iv
	if other.Lo < out.Lo || (other.Lo == out.Lo && !other.LoOpen) {
		out.Lo, out.LoOpen = other.Lo, other.LoOpen
	}
	if other.Hi > out.Hi || (other.Hi == out.Hi && !other.HiOpen) {
		out.Hi, out.HiOpen = other.Hi, other.HiOpen
	}
	return out
}

// OverlapLen returns the measure of the intersection of two intervals.
func (iv Interval) OverlapLen(other Interval) float64 {
	return iv.Intersect(other).Width()
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).IsEmpty()
}

// Adjacent reports whether the two intervals are disjoint but share a
// boundary point such that their union is a single interval, e.g. (-Inf, 3)
// and [3, +Inf).
func (iv Interval) Adjacent(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() || iv.Overlaps(other) {
		return false
	}
	lo, hi := iv, other
	if lo.Lo > hi.Lo || (lo.Lo == hi.Lo && lo.LoOpen && !hi.LoOpen) {
		lo, hi = hi, lo
	}
	// Union is contiguous when hi starts exactly where lo ends and at most
	// one of the touching endpoints is open.
	return lo.Hi == hi.Lo && (!lo.HiOpen || !hi.LoOpen)
}

// Union returns the union of the two intervals if it is itself a single
// interval (they overlap or are adjacent); ok is false otherwise.
func (iv Interval) Union(other Interval) (Interval, bool) {
	if iv.IsEmpty() {
		return other.canonical(), true
	}
	if other.IsEmpty() {
		return iv, true
	}
	if !iv.Overlaps(other) && !iv.Adjacent(other) {
		return Empty(), false
	}
	return iv.Hull(other), true
}

// Clip restricts the interval to the bounds of clip, preserving openness of
// whichever endpoints survive. It is used to normalise unbounded predicate
// ranges against access(a) before computing distances.
func (iv Interval) Clip(clip Interval) Interval {
	return iv.Intersect(clip)
}

// Midpoint returns the centre of a bounded, non-empty interval. For
// unbounded or empty intervals it returns NaN.
func (iv Interval) Midpoint() float64 {
	if iv.IsEmpty() || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
		return math.NaN()
	}
	return iv.Lo + (iv.Hi-iv.Lo)/2
}

// Equal reports whether the intervals denote the same point set.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() && other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() != other.IsEmpty() {
		return false
	}
	return iv.Lo == other.Lo && iv.Hi == other.Hi &&
		iv.LoOpen == other.LoOpen && iv.HiOpen == other.HiOpen
}

// String renders the interval in mathematical notation, e.g. "[1, 3)".
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	lb, rb := "[", "]"
	if iv.LoOpen {
		lb = "("
	}
	if iv.HiOpen {
		rb = ")"
	}
	return fmt.Sprintf("%s%s, %s%s", lb, fnum(iv.Lo), fnum(iv.Hi), rb)
}

func fnum(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
