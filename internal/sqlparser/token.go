// Package sqlparser is a from-scratch lexer and recursive-descent parser for
// the SQL SELECT dialect found in SkyServer query logs: T-SQL style (TOP n,
// bracketed identifiers) plus the MySQL constructs users mistakenly submit
// (LIMIT n, backtick identifiers), which the paper's pipeline must still be
// able to analyse (Section 6.6). It replaces JSqlParser from the original
// implementation (Section 4.5).
//
// The parser intentionally accepts only the statement population the paper's
// extraction handles; everything else (DDL, DECLARE, table-valued UDF calls
// in FROM) is rejected with a classified error so that the extraction
// coverage experiment of Section 6.1 can count failure categories.
package sqlparser

import (
	"fmt"
	"strings"
)

// TokenKind enumerates lexical token categories.
type TokenKind int

const (
	EOF     TokenKind = iota
	Ident             // identifier or non-reserved keyword
	Keyword           // reserved keyword (uppercased in Text)
	Number            // numeric literal
	String            // string literal, quotes stripped in Text
	Op                // operator or punctuation, canonical form in Text
	Param             // @variable (T-SQL)
)

func (k TokenKind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Op:
		return "operator"
	case Param:
		return "parameter"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position (byte offset, 1-based
// line and column).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
	Line int
	Col  int
	// Slot is the 1-based ordinal of this token among the statement's
	// literal tokens (Number, String, Param) in lexer order; 0 for all
	// other kinds. Statements with equal Fingerprints have their literals
	// at identical slots, which is what lets the template cache rebind a
	// cached access area with a new record's constants.
	Slot int
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// reserved lists keywords that can never be identifiers. SQL has many more,
// but only these affect parsing decisions for the supported dialect.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "AS": true, "DISTINCT": true, "TOP": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "NATURAL": true, "ON": true, "UNION": true,
	"ALL": true, "ANY": true, "SOME": true, "ASC": true, "DESC": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"INTO": true, "CREATE": true, "DECLARE": true, "INSERT": true,
	"UPDATE": true, "DELETE": true, "DROP": true, "SET": true, "EXEC": true,
	"TABLE": true, "OFFSET": true, "ESCAPE": true, "WITH": true,
}

// nonReservedAllowedAsAlias contains keywords that may still appear where an
// identifier alias is expected in sloppy log queries; kept empty for now but
// provides a single place to relax the grammar if a new log dialect needs it.
var nonReservedAllowedAsAlias = map[string]bool{}

// reservedCanon maps every reserved keyword to its interned canonical
// (upper-case) spelling, so the lexer's keyword test neither allocates an
// upper-cased copy per identifier nor re-allocates the canonical text per
// keyword token.
var reservedCanon = func() map[string]string {
	m := make(map[string]string, len(reserved))
	for kw := range reserved {
		m[kw] = kw
	}
	return m
}()

var maxKeywordLen = func() int {
	n := 0
	for kw := range reserved {
		if len(kw) > n {
			n = len(kw)
		}
	}
	if n > 16 {
		panic("sqlparser: keywordCanon stack buffer too small for reserved word")
	}
	return n
}()

// keywordCanon reports whether an identifier is a reserved keyword and, if
// so, returns its interned canonical form. The ASCII path upper-cases into a
// stack buffer (the map lookup on a byte-slice conversion does not allocate);
// identifiers with multi-byte runes take the allocating ToUpper path, since
// Unicode case folding could in principle still land on a keyword.
func keywordCanon(s string) (string, bool) {
	if len(s) > maxKeywordLen {
		return "", false
	}
	var buf [16]byte
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x80 {
			canon, ok := reservedCanon[strings.ToUpper(s)]
			return canon, ok
		}
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		buf[i] = b
	}
	canon, ok := reservedCanon[string(buf[:len(s)])]
	return canon, ok
}
