package extract

import (
	"math"
	"strings"

	"repro/internal/interval"
	"repro/internal/predicate"
	"repro/internal/sqlparser"
)

// convertHaving maps the HAVING clause of an aggregate query (Section 4.3)
// to a constraint on the universal relation. Each atomic HAVING predicate of
// the form AGG(a) θ c is replaced per the lemma case analysis, using the
// effective domain of a — dom(a) intersected with WHERE-derived bounds, the
// D of Lemmas 2 and 3. Plain column predicates in HAVING behave like WHERE
// predicates. Columns not belonging to any FROM relation make the predicate
// vacuous ("we ignore it", Section 4.3).
func (st *state) convertHaving(sel *sqlparser.SelectStatement, sc *scope, whereConstraint predicate.Expr) (predicate.Expr, error) {
	bounds := st.whereBounds(whereConstraint)
	return st.convertHavingExpr(sel.Having, sc, bounds)
}

// whereBounds projects the (already converted) WHERE constraint per column.
func (st *state) whereBounds(where predicate.Expr) map[string]interval.Set {
	cnf, _ := predicate.ToCNF(where, st.ex.predCap())
	return predicate.Bounds(cnf)
}

func (st *state) convertHavingExpr(e sqlparser.Expr, sc *scope, bounds map[string]interval.Set) (predicate.Expr, error) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			l, err := st.convertHavingExpr(x.L, sc, bounds)
			if err != nil {
				return nil, err
			}
			r, err := st.convertHavingExpr(x.R, sc, bounds)
			if err != nil {
				return nil, err
			}
			return predicate.NewAnd(l, r), nil
		case "OR":
			l, err := st.convertHavingExpr(x.L, sc, bounds)
			if err != nil {
				return nil, err
			}
			r, err := st.convertHavingExpr(x.R, sc, bounds)
			if err != nil {
				return nil, err
			}
			// A disjunction of aggregate constraints over-approximates once
			// either side was itself approximated; the OR of the mapped
			// areas remains sound.
			return predicate.NewOr(l, r), nil
		}
		if agg, col, op, c, ok := st.matchAggComparison(x, sc); ok {
			// The lemma case analysis branches on the constant c (and on
			// WHERE-derived bounds, themselves literal-valued), so the mapped
			// constraint's shape depends on literal values: non-cacheable.
			st.noCache("having-aggregate")
			return st.mapAggregate(agg, col, op, c, bounds), nil
		}
		// Plain predicate in HAVING (on a grouped column): same handling as
		// WHERE.
		return st.convert(x, sc)
	case *sqlparser.UnaryExpr:
		if x.Op == "NOT" {
			inner, err := st.convertHavingExpr(x.X, sc, bounds)
			if err != nil {
				return nil, err
			}
			// Negating a mapped aggregate constraint is not exact in
			// general.
			st.approx()
			return predicate.ToNNF(predicate.NewNot(inner)), nil
		}
		st.approx()
		return trueExpr(), nil
	case *sqlparser.BetweenExpr:
		// AGG(a) BETWEEN c1 AND c2 splits like WHERE BETWEEN.
		lo := &sqlparser.BinaryExpr{Op: ">=", L: x.X, R: x.Lo}
		hi := &sqlparser.BinaryExpr{Op: "<=", L: x.X, R: x.Hi}
		var both sqlparser.Expr = &sqlparser.BinaryExpr{Op: "AND", L: lo, R: hi}
		if x.Not {
			both = &sqlparser.UnaryExpr{Op: "NOT", X: both}
		}
		return st.convertHavingExpr(both, sc, bounds)
	default:
		return st.convert(e, sc)
	}
}

// matchAggComparison matches "AGG(col) θ const" or "const θ AGG(col)",
// including COUNT(*).
func (st *state) matchAggComparison(b *sqlparser.BinaryExpr, sc *scope) (agg, col string, op predicate.Op, c float64, ok bool) {
	pop, valid := predicate.ParseOp(b.Op)
	if !valid {
		return "", "", 0, 0, false
	}
	if fc, isFc := b.L.(*sqlparser.FuncCall); isFc && fc.IsAggregate() {
		if v, isNum := st.foldConst(b.R); isNum && v.Kind == predicate.NumberVal {
			col, ok = st.aggColumn(fc, sc)
			return strings.ToUpper(fc.Name), col, pop, v.Num, ok
		}
	}
	if fc, isFc := b.R.(*sqlparser.FuncCall); isFc && fc.IsAggregate() {
		if v, isNum := st.foldConst(b.L); isNum && v.Kind == predicate.NumberVal {
			col, ok = st.aggColumn(fc, sc)
			return strings.ToUpper(fc.Name), col, pop.Flip(), v.Num, ok
		}
	}
	return "", "", 0, 0, false
}

// aggColumn resolves the argument column of an aggregate call; COUNT(*) has
// no column and returns "".
func (st *state) aggColumn(fc *sqlparser.FuncCall, sc *scope) (string, bool) {
	if fc.Star {
		return "", true
	}
	if len(fc.Args) != 1 {
		return "", false
	}
	cr, ok := fc.Args[0].(*sqlparser.ColumnRef)
	if !ok {
		return "", false
	}
	col, ok := st.resolveColumn(cr, sc)
	return col, ok
}

// effectiveDomain computes D = dom(a) ∩ WHERE bounds for the aggregate
// lemmas. Without schema knowledge dom(a) defaults to (-inf, +inf), the
// assumption stated before Lemma 2.
func (st *state) effectiveDomain(col string, bounds map[string]interval.Set) interval.Interval {
	dom := interval.Full()
	if st.ex.Schema != nil {
		if rel, cname, ok := splitQualified(col); ok {
			if r := st.ex.Schema.Relation(rel); r != nil {
				if c := r.Column(cname); c != nil {
					dom = c.EffectiveDomain()
				}
			}
		}
	}
	if set, ok := bounds[col]; ok {
		dom = dom.Intersect(set.Hull())
	}
	return dom
}

func splitQualified(name string) (rel, col string, ok bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return "", name, false
	}
	return name[:i], name[i+1:], true
}

// columnInFrom reports whether col belongs to one of the universal
// relation's factors.
func (st *state) columnInFrom(col string) bool {
	rel, _, ok := splitQualified(col)
	if !ok {
		return false
	}
	for _, r := range st.rels {
		if strings.EqualFold(r, rel) {
			return true
		}
	}
	return false
}

// mapAggregate applies the Section 4.3 case analysis for
// "HAVING AGG(col) θ c" given the effective domain D of col. It returns the
// replacement constraint: TRUE (the HAVING adds nothing beyond WHERE),
// FALSE (no group can ever satisfy it, empty access area), or a predicate
// on col.
func (st *state) mapAggregate(agg, col string, op predicate.Op, c float64, bounds map[string]interval.Set) predicate.Expr {
	if agg == "COUNT" {
		return st.mapCount(op, c)
	}
	if col == "" || !st.columnInFrom(col) {
		// "we check if a belongs to some relation in the FROM clause. If it
		// does not, we ignore it." (Section 4.3)
		return trueExpr()
	}
	d := st.effectiveDomain(col, bounds)
	if d.IsEmpty() {
		// WHERE already contradictory on this column.
		return predicate.NewLeaf(predicate.False())
	}
	switch agg {
	case "SUM":
		return st.mapSum(col, op, c, d)
	case "MIN":
		return st.mapMinMax(col, op, c, d, true)
	case "MAX":
		return st.mapMinMax(col, op, c, d, false)
	case "AVG":
		return st.mapAvg(op, c, d)
	default:
		st.approx()
		return trueExpr()
	}
}

// mapCount: groups can be padded to any positive cardinality in some state,
// so every WHERE-satisfying tuple influences whenever the HAVING is
// satisfiable by some n >= 1; otherwise no group ever qualifies.
func (st *state) mapCount(op predicate.Op, c float64) predicate.Expr {
	satisfiable := false
	switch op {
	case predicate.Lt:
		satisfiable = c > 1
	case predicate.Le:
		satisfiable = c >= 1
	case predicate.Eq:
		satisfiable = c >= 1 && c == math.Trunc(c)
	case predicate.Gt, predicate.Ge:
		satisfiable = true // some large n works
	case predicate.Ne:
		satisfiable = true
	}
	if satisfiable {
		return trueExpr()
	}
	return predicate.NewLeaf(predicate.False())
}

// mapSum implements Lemmas 1-3 and their symmetric cases. inf/sup denote the
// bounds of the effective domain D.
func (st *state) mapSum(col string, op predicate.Op, c float64, d interval.Interval) predicate.Expr {
	inf, sup := d.Lo, d.Hi
	pred := func(op predicate.Op) predicate.Expr {
		return predicate.NewLeaf(predicate.CC(col, op, predicate.Number(c)))
	}
	switch op {
	case predicate.Gt, predicate.Ge:
		// SUM can be pushed arbitrarily high iff positive values exist.
		if sup > 0 {
			return trueExpr() // Lemma 1 case 1, Lemma 3
		}
		// All contributions non-positive: a tuple qualifies only alone.
		if c > sup || (c == sup && op == predicate.Gt && d.HiOpen) {
			return predicate.NewLeaf(predicate.False()) // Lemma 1, c > supp
		}
		if c >= inf {
			return pred(op) // Lemma 1, c ∈ dom: σ_{v θ c}
		}
		return trueExpr() // Lemma 1, c < inf
	case predicate.Lt, predicate.Le:
		// Symmetric: SUM can be pushed arbitrarily low iff negatives exist.
		if inf < 0 {
			return trueExpr()
		}
		if c < inf || (c == inf && op == predicate.Lt && d.LoOpen) {
			return predicate.NewLeaf(predicate.False())
		}
		if c <= sup {
			return pred(op)
		}
		return trueExpr()
	case predicate.Eq:
		switch {
		case sup > 0 && inf < 0:
			// Mixed signs: the sum can be tuned to any value.
			return trueExpr()
		case inf >= 0:
			// Non-negative contributions only: sum >= each member.
			if c < inf {
				return predicate.NewLeaf(predicate.False())
			}
			return pred(predicate.Le)
		default: // sup <= 0
			if c > sup {
				return predicate.NewLeaf(predicate.False())
			}
			return pred(predicate.Ge)
		}
	case predicate.Ne:
		if inf == 0 && sup == 0 {
			// D = {0}: every sum is 0.
			if c == 0 {
				return predicate.NewLeaf(predicate.False())
			}
			return trueExpr()
		}
		return trueExpr()
	}
	st.approx()
	return trueExpr()
}

// mapMinMax handles MIN (isMin) and MAX. The constraining directions are
// MIN θ c for θ ∈ {<, <=, =} and MAX θ c for θ ∈ {>, >=, =}; the opposite
// directions let any tuple flip group membership, so only satisfiability
// matters.
func (st *state) mapMinMax(col string, op predicate.Op, c float64, d interval.Interval, isMin bool) predicate.Expr {
	inf, sup := d.Lo, d.Hi
	pred := func(op predicate.Op) predicate.Expr {
		return predicate.NewLeaf(predicate.CC(col, op, predicate.Number(c)))
	}
	fail := predicate.NewLeaf(predicate.False())
	if !isMin {
		// MAX mirrors MIN under value negation; map directly.
		switch op {
		case predicate.Gt:
			if sup > c {
				return pred(predicate.Gt)
			}
			return fail
		case predicate.Ge:
			if sup >= c {
				return pred(predicate.Ge)
			}
			return fail
		case predicate.Lt:
			if inf < c {
				return trueExpr()
			}
			return fail
		case predicate.Le:
			if inf <= c {
				return trueExpr()
			}
			return fail
		case predicate.Eq:
			if d.Contains(c) {
				return pred(predicate.Ge)
			}
			return fail
		case predicate.Ne:
			if d.IsPoint() && inf == c {
				return fail
			}
			return trueExpr()
		}
	}
	switch op {
	case predicate.Lt:
		if inf < c {
			return pred(predicate.Lt)
		}
		return fail
	case predicate.Le:
		if inf <= c {
			return pred(predicate.Le)
		}
		return fail
	case predicate.Gt:
		if sup > c {
			return trueExpr()
		}
		return fail
	case predicate.Ge:
		if sup >= c {
			return trueExpr()
		}
		return fail
	case predicate.Eq:
		if d.Contains(c) {
			return pred(predicate.Le)
		}
		return fail
	case predicate.Ne:
		if d.IsPoint() && inf == c {
			return fail
		}
		return trueExpr()
	}
	st.approx()
	return trueExpr()
}

// mapAvg: the average of a constructed group can be steered to any value of
// the effective domain's hull, so the HAVING reduces to a satisfiability
// check.
func (st *state) mapAvg(op predicate.Op, c float64, d interval.Interval) predicate.Expr {
	inf, sup := d.Lo, d.Hi
	ok := false
	switch op {
	case predicate.Lt:
		ok = inf < c
	case predicate.Le:
		ok = inf <= c
	case predicate.Gt:
		ok = sup > c
	case predicate.Ge:
		ok = sup >= c
	case predicate.Eq:
		ok = d.Contains(c) || (inf <= c && c <= sup)
	case predicate.Ne:
		ok = !(d.IsPoint() && inf == c)
	}
	if ok {
		return trueExpr()
	}
	return predicate.NewLeaf(predicate.False())
}
