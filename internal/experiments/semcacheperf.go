package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/interestcache"
	"repro/internal/interval"
	"repro/internal/memdb"
)

// SemCachePerfResult is the outcome of the semantic-result-cache experiment
// (E13): the Table-1 synthetic workload replayed against the interest-driven
// cache built from the miner's own clusters. Five phases: (1) a full oracle
// pass proving every cache-served result byte-identical to direct execution,
// (2) an uncached direct-execution baseline, (3) the cached run (hit ratio
// and speedup), (4) an always-miss run isolating the miss-path overhead, and
// (5) a staleness probe — regions mined from the first half of the log
// serving the second half, then re-mined at full coverage. cmd/benchreport
// serialises it to BENCH_semcache.json.
type SemCachePerfResult struct {
	Queries int   `json:"queries"`
	Seed    int64 `json:"seed"`
	Rows    int   `json:"rows_per_table"`
	Regions int   `json:"regions"`

	OracleChecked int64 `json:"oracle_checked"`
	OracleFailed  int64 `json:"oracle_failed"`

	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRatio    float64 `json:"hit_ratio"`
	BytesServed int64   `json:"bytes_served"`

	DirectSeconds float64 `json:"direct_seconds"`
	CachedSeconds float64 `json:"cached_seconds"`
	Speedup       float64 `json:"speedup"`

	MissSeconds       float64 `json:"miss_seconds"`
	MissOverheadRatio float64 `json:"miss_overhead_ratio"`

	StaleHitRatio float64 `json:"stale_hit_ratio"`
	FreshHitRatio float64 `json:"fresh_hit_ratio"`

	Report string `json:"-"`
}

// RunSemCachePerf mines the workload, installs the clusters into the cache,
// and measures correctness, hit ratio, speedup and staleness behaviour.
func RunSemCachePerf(scale int, seed int64) (*SemCachePerfResult, error) {
	env := NewEnvRows(scale, seed, 800)
	miner := env.Miner()
	full := miner.MineRecords(env.Records)
	if len(full.Clusters) == 0 {
		return nil, fmt.Errorf("semcacheperf: mining produced no clusters")
	}
	opts := memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	newCache := func(verify bool) *interestcache.Cache {
		return interestcache.New(interestcache.Config{
			DB:        env.DB,
			Extractor: &extract.Extractor{Schema: env.Schema, Stats: miner.Stats()},
			Templates: &extract.TemplateCache{},
			Exec:      opts,
			Verify:    verify,
		})
	}
	res := &SemCachePerfResult{Queries: scale, Seed: seed, Rows: 800}

	// Phase 1 — oracle: every cache-served result byte-identical to direct.
	oracle := newCache(true)
	oracle.Install(1, full.Clusters)
	res.Regions = len(oracle.Regions())
	for _, rec := range env.Records {
		oracle.Query(rec.SQL)
	}
	om := oracle.Metrics()
	res.OracleChecked, res.OracleFailed = om.VerifyChecked, om.VerifyFailed
	if om.VerifyFailed != 0 {
		return nil, fmt.Errorf("semcacheperf: %d oracle failures", om.VerifyFailed)
	}

	// Phase 2 — direct baseline over the same statements.
	t0 := time.Now()
	for _, rec := range env.Records {
		env.DB.ExecuteSQL(rec.SQL, opts)
	}
	res.DirectSeconds = time.Since(t0).Seconds()

	// Phase 3 — cached run, verification off, templates cold (they warm
	// within the run exactly as a serving process would).
	cached := newCache(false)
	cached.Install(1, full.Clusters)
	t0 = time.Now()
	for _, rec := range env.Records {
		cached.Query(rec.SQL)
	}
	res.CachedSeconds = time.Since(t0).Seconds()
	cm := cached.Metrics()
	res.Hits, res.Misses, res.BytesServed = cm.Hits, cm.Misses, cm.BytesServed
	if total := cm.Hits + cm.Misses; total > 0 {
		res.HitRatio = float64(cm.Hits) / float64(total)
	}
	if res.CachedSeconds > 0 {
		res.Speedup = res.DirectSeconds / res.CachedSeconds
	}

	// Phase 4 — miss-path overhead: a decoy region on a relation no
	// workload query reads forces the full lookup path (fingerprint,
	// extraction, index probe) on every statement, with every statement
	// still answered directly.
	missOnly := newCache(false)
	decoyBox := interval.NewBox()
	decoyBox.Set("NoSuchRelation.x", interval.Closed(0, 1))
	missOnly.Install(1, []*aggregate.Summary{
		{ID: 999, Relations: []string{"NoSuchRelation"}, Box: decoyBox},
	})
	t0 = time.Now()
	for _, rec := range env.Records {
		missOnly.Query(rec.SQL)
	}
	res.MissSeconds = time.Since(t0).Seconds()
	if res.DirectSeconds > 0 {
		res.MissOverheadRatio = res.MissSeconds / res.DirectSeconds
	}

	// Phase 5 — staleness window: regions mined from the first half of the
	// log serve the second half (the stale regime a slow epoch cadence
	// produces), then a re-mine restores full coverage.
	half := len(env.Records) / 2
	halfRes := env.Miner().MineRecords(env.Records[:half])
	stale := newCache(false)
	stale.Install(1, halfRes.Clusters)
	for _, rec := range env.Records[half:] {
		stale.Query(rec.SQL)
	}
	sm := stale.Metrics()
	if total := sm.Hits + sm.Misses; total > 0 {
		res.StaleHitRatio = float64(sm.Hits) / float64(total)
	}
	stale.Install(2, full.Clusters)
	fresh0 := stale.Metrics()
	for _, rec := range env.Records[half:] {
		stale.Query(rec.SQL)
	}
	fm := stale.Metrics()
	if total := (fm.Hits - fresh0.Hits) + (fm.Misses - fresh0.Misses); total > 0 {
		res.FreshHitRatio = float64(fm.Hits-fresh0.Hits) / float64(total)
	}

	res.Report = res.render()
	return res, nil
}

func (r *SemCachePerfResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13 semcacheperf — interest-driven semantic result cache (%d queries, %d regions)\n\n", r.Queries, r.Regions)
	fmt.Fprintf(&b, "oracle: %d cache-served results checked against direct execution, %d mismatches\n", r.OracleChecked, r.OracleFailed)
	fmt.Fprintf(&b, "hit ratio: %.3f (%d hits / %d misses), %d bytes served from regions\n", r.HitRatio, r.Hits, r.Misses, r.BytesServed)
	fmt.Fprintf(&b, "latency: direct %.2fs, cached %.2fs — speedup %.2fx\n", r.DirectSeconds, r.CachedSeconds, r.Speedup)
	fmt.Fprintf(&b, "miss path: %.2fs vs %.2fs direct — overhead ratio %.3f\n", r.MissSeconds, r.DirectSeconds, r.MissOverheadRatio)
	fmt.Fprintf(&b, "staleness: half-log regions answer %.3f of the second half; re-mined regions answer %.3f\n", r.StaleHitRatio, r.FreshHitRatio)
	return b.String()
}
