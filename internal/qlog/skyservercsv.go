package qlog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ReadSkyServerCSV parses logs in the shape of SkyServer's published
// SqlLog exports (Singh et al. [23] describe the cleaning pipeline): a
// header row naming at least a statement column, plus optional
// time/requestor/sequence columns. Column names are matched
// case-insensitively against the aliases below, so both the raw SqlLog
// dumps ("theTime, clientIP, requestor, ..., statement") and cleaned
// variants load without configuration.
//
//	statement:  statement, sql, sqlstatement, query
//	user:       requestor, clientip, user, ipname
//	time:       thetime, time, timestamp
//	sequence:   seq, logid, id
//
// Rows without a statement are skipped. Times parse as RFC 3339,
// "2006-01-02 15:04:05", or raw integer seconds; unparseable times default
// to the row index.
func ReadSkyServerCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // real dumps have ragged rows
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("qlog: skyserver csv: %w", err)
	}
	idx := func(aliases ...string) int {
		for i, name := range header {
			n := strings.ToLower(strings.TrimSpace(name))
			for _, a := range aliases {
				if n == a {
					return i
				}
			}
		}
		return -1
	}
	stmtCol := idx("statement", "sql", "sqlstatement", "query")
	if stmtCol < 0 {
		return nil, fmt.Errorf("qlog: skyserver csv: no statement column in header %v", header)
	}
	userCol := idx("requestor", "clientip", "user", "ipname")
	timeCol := idx("thetime", "time", "timestamp")
	seqCol := idx("seq", "logid", "id")

	var out []Record
	rowIdx := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("qlog: skyserver csv row %d: %w", rowIdx, err)
		}
		get := func(col int) string {
			if col < 0 || col >= len(row) {
				return ""
			}
			return strings.TrimSpace(row[col])
		}
		sql := get(stmtCol)
		if sql == "" {
			rowIdx++
			continue
		}
		rec := Record{Seq: rowIdx, Time: int64(rowIdx), User: get(userCol), SQL: sql}
		if s := get(seqCol); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				rec.Seq = v
			}
		}
		if ts := get(timeCol); ts != "" {
			rec.Time = parseLogTime(ts, int64(rowIdx))
		}
		out = append(out, rec)
		rowIdx++
	}
	return out, nil
}

func parseLogTime(s string, fallback int64) int64 {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02T15:04:05", "1/2/2006 15:04:05"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.Unix()
		}
	}
	return fallback
}
