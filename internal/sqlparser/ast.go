package sqlparser

import "strings"

// Statement is any parsed SQL statement. Only SELECT statements carry
// structure; everything else is classified for the coverage statistics of
// Section 6.1 and rejected by the extractor.
type Statement interface {
	statement()
}

// SelectStatement is a full SELECT query.
type SelectStatement struct {
	Distinct bool
	// Top is the T-SQL "TOP n" row cap; nil when absent. TopPercent marks
	// the "TOP n PERCENT" form.
	Top        *float64
	TopPercent bool
	// Select is the projection list.
	Select []SelectItem
	// From holds the table expressions (comma-separated factors, each
	// possibly a join tree). Empty for constant-only queries such as
	// "SELECT 1".
	From []TableExpr
	// Where, GroupBy, Having, OrderBy mirror the corresponding clauses;
	// nil/empty when absent.
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	// Limit is the MySQL-dialect "LIMIT n" clause. SkyServer (SQL Server)
	// rejects it at execution time, but per Section 6.6 the pipeline still
	// extracts access areas from such queries.
	Limit *float64
	// Unions holds UNION [ALL] arms chained onto this SELECT. The paper's
	// log contains no UNION queries; supporting them is one of the "future
	// extension" items of Section 4, realised here: the access area of a
	// union is the union of the arms' access areas.
	Unions []UnionArm
}

// UnionArm is one UNION [ALL] continuation.
type UnionArm struct {
	All    bool
	Select *SelectStatement
}

func (*SelectStatement) statement() {}

// SelectItem is one projection entry.
type SelectItem struct {
	// Star marks "*" or "T.*"; StarTable carries the qualifier for the
	// latter.
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is a FROM-clause factor.
type TableExpr interface {
	tableExpr()
}

// TableName references a base relation, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableExpr() {}

// JoinType enumerates the join flavours of Section 4.2.
type JoinType int

const (
	CrossJoin JoinType = iota
	InnerJoin
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
)

func (t JoinType) String() string {
	switch t {
	case CrossJoin:
		return "CROSS JOIN"
	case InnerJoin:
		return "INNER JOIN"
	case LeftOuterJoin:
		return "LEFT OUTER JOIN"
	case RightOuterJoin:
		return "RIGHT OUTER JOIN"
	case FullOuterJoin:
		return "FULL OUTER JOIN"
	default:
		return "JOIN"
	}
}

// Join is a binary join between two table expressions.
type Join struct {
	Type    JoinType
	Natural bool
	Left    TableExpr
	Right   TableExpr
	On      Expr // nil for CROSS and NATURAL joins
}

func (*Join) tableExpr() {}

// SubqueryTable is a derived table: (SELECT ...) alias.
type SubqueryTable struct {
	Select *SelectStatement
	Alias  string
}

func (*SubqueryTable) tableExpr() {}

// Expr is any scalar or Boolean expression.
type Expr interface {
	expr()
}

// ColumnRef references a column, optionally qualified by a table or alias.
type ColumnRef struct {
	Table string // "" when unqualified
	Name  string
}

func (*ColumnRef) expr() {}

// Qualified renders the reference as written.
func (c *ColumnRef) Qualified() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// NumberLit is a numeric literal; Text preserves the exact source spelling
// (important for 18-digit SkyServer object IDs, see DESIGN.md §5).
type NumberLit struct {
	Value float64
	Text  string
	// Slot is the source literal's 1-based ordinal (see Token.Slot); 0 for
	// synthesised literals. NegDepth counts the unary minus signs the
	// parser folded into Value/Text, so "- -5" has the source literal "5"
	// at NegDepth 2. Together they let the template cache recompute
	// Value = (-1)^NegDepth · lit and Text = "-"^NegDepth + lit.Text for a
	// different record's literal at the same slot.
	Slot     int
	NegDepth int
}

func (*NumberLit) expr() {}

// StringLit is a string literal (quotes stripped). Slot is the source
// literal's ordinal, as for NumberLit.
type StringLit struct {
	Value string
	Slot  int
}

func (*StringLit) expr() {}

// NullLit is the NULL keyword.
type NullLit struct{}

func (*NullLit) expr() {}

// ParamRef is a T-SQL @variable reference.
type ParamRef struct {
	Name string // includes the leading '@'
}

func (*ParamRef) expr() {}

// BinaryExpr is a binary operation. Op is one of the comparison operators
// ("=", "<>", "<", "<=", ">", ">="), the arithmetic operators ("+", "-",
// "*", "/", "%"), string concatenation ("||"), or the Boolean connectives
// ("AND", "OR").
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr is NOT x or -x; Op is "NOT" or "-".
type UnaryExpr struct {
	Op string
	X  Expr
}

func (*UnaryExpr) expr() {}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	Not    bool
	X      Expr
	Lo, Hi Expr
}

func (*BetweenExpr) expr() {}

// InListExpr is "x [NOT] IN (e1, ..., en)".
type InListExpr struct {
	Not  bool
	X    Expr
	List []Expr
}

func (*InListExpr) expr() {}

// InSubqueryExpr is "x [NOT] IN (SELECT ...)".
type InSubqueryExpr struct {
	Not bool
	X   Expr
	Sub *SelectStatement
}

func (*InSubqueryExpr) expr() {}

// ExistsExpr is "[NOT] EXISTS (SELECT ...)".
type ExistsExpr struct {
	Not bool
	Sub *SelectStatement
}

func (*ExistsExpr) expr() {}

// QuantifiedExpr is "x op ANY|SOME|ALL (SELECT ...)".
type QuantifiedExpr struct {
	X   Expr
	Op  string // comparison operator
	All bool   // true for ALL, false for ANY/SOME
	Sub *SelectStatement
}

func (*QuantifiedExpr) expr() {}

// ScalarSubquery is "(SELECT ...)" used as a scalar value.
type ScalarSubquery struct {
	Sub *SelectStatement
}

func (*ScalarSubquery) expr() {}

// FuncCall is a function invocation, including aggregates. Star marks
// COUNT(*). Distinct marks COUNT(DISTINCT x) and friends.
type FuncCall struct {
	Name     string // as written; compare case-insensitively
	Star     bool
	Distinct bool
	Args     []Expr
}

func (*FuncCall) expr() {}

// IsAggregate reports whether the call is one of the aggregate functions of
// Section 4.3.
func (f *FuncCall) IsAggregate() bool {
	switch strings.ToUpper(f.Name) {
	case "SUM", "COUNT", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	Not     bool
	X       Expr
	Pattern Expr
}

func (*LikeExpr) expr() {}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	Not bool
	X   Expr
}

func (*IsNullExpr) expr() {}

// CaseExpr is a searched or simple CASE expression.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	When Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// OtherStatement is a recognised non-SELECT statement (DDL, DML, DECLARE,
// EXEC). Kind is the leading keyword; these statements are counted as
// non-extractable in the Section 6.1 coverage experiment.
type OtherStatement struct {
	Kind string
}

func (*OtherStatement) statement() {}
