package core

import (
	"math"
	"os"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/distance"
	"repro/internal/interval"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

func toRecords(entries []skyserver.LogEntry) []qlog.Record {
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	return recs
}

func mineDefault(t *testing.T, queries int, seed int64) *Result {
	t.Helper()
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: queries, Seed: seed})
	// Seed access(a) from a database sample per Section 5.3, like the paper.
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 400, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	m := NewMiner(Config{Schema: skyserver.Schema(), Seed: seed, Stats: stats})
	return m.MineRecords(toRecords(entries))
}

// expectation describes one Table-1 ground-truth cluster for recovery
// checks: the relation, a column that must be constrained, and the window
// the aggregated box must approximate.
type expectation struct {
	name     string
	relation string
	column   string
	window   interval.Interval
	empty    bool // expects zero coverage (clusters 18-24)
}

func expectations() []expectation {
	iv := interval.Closed
	return []expectation{
		{"cluster01", "Photoz", "Photoz.objid", iv(1.237657855534432934e18, 1.237666210342830434e18), false},
		{"cluster02", "SpecObjAll", "SpecObjAll.specobjid", iv(1.115887524498139136e18, 2.183177975464224768e18), false},
		{"cluster03", "galSpecLine", "galSpecLine.specobjid", iv(1.345591721622267904e18, 2.007633797213874176e18), false},
		{"cluster04", "galSpecInfo", "galSpecInfo.specobjid", iv(1.4161923255970304e18, 2.183213984470034432e18), false},
		{"cluster05", "PhotoObjAll", "PhotoObjAll.ra", iv(math.Inf(-1), 210), false},
		{"cluster06", "sppLines", "sppLines.specobjid", iv(1.228357946564438016e18, 2.069493422263134208e18), false},
		{"cluster07", "SpecObjAll", "SpecObjAll.ra", iv(54, 115), false},
		{"cluster08", "SpecPhotoAll", "SpecPhotoAll.ra", iv(60, 124), false},
		{"cluster09", "SpecObjAll", "SpecObjAll.mjd", iv(51578, 52178), false},
		{"cluster10", "DBObjects", "", interval.Interval{}, false},
		{"cluster11", "emissionLinesPort", "emissionLinesPort.ra", iv(55, 141), false},
		{"cluster12", "stellarMassPCAWisc", "stellarMassPCAWisc.ra", iv(62, 138), false},
		{"cluster13", "AtlasOutline", "AtlasOutline.objid", iv(1.237676243900255188e18, math.Inf(1)), false},
		{"cluster14", "zooSpec", "zooSpec.dec", iv(30, 70), false},
		{"cluster15", "Photoz", "Photoz.z", iv(0, 0.1), false},
		{"cluster16", "galSpecExtra", "galSpecExtra.bptclass", iv(0, 3), false},
		{"cluster17", "sppParams", "sppParams.fehadop", iv(-0.3, 0.5), false},
		{"cluster18", "PhotoObjAll", "PhotoObjAll.dec", iv(-90, -50), true},
		{"cluster19", "galSpecLine", "galSpecLine.specobjid", iv(3.519644828126257152e18, 5.788299621113984e18), true},
		{"cluster20", "galSpecInfo", "galSpecInfo.specobjid", iv(3.519644828126257152e18, 5.788299621113984e18), true},
		{"cluster21", "sppLines", "sppLines.specobjid", iv(4.037480726273651712e18, 5.788299621113984e18), true},
		{"cluster22", "zooSpec", "zooSpec.dec", iv(-100, -15), true},
		{"cluster23", "Photoz", "Photoz.z", iv(-0.98, -0.1), true},
		{"cluster24", "Photoz", "Photoz.z", iv(3.0, 6.5), true},
	}
}

// findCluster locates a mined cluster matching the expectation: right
// relation, constrained column, and box within (and covering a good part
// of) the expected window.
func findCluster(res *Result, exp expectation) *aggregate.Summary {
	for _, c := range res.Clusters {
		if len(c.Relations) == 0 {
			continue
		}
		hasRel := false
		for _, r := range c.Relations {
			if r == exp.relation {
				hasRel = true
			}
		}
		if !hasRel {
			continue
		}
		if exp.column == "" {
			// cluster10: categorical only.
			if len(c.Categorical) > 0 {
				return c
			}
			continue
		}
		if !c.Box.Has(exp.column) {
			continue
		}
		got := c.Box.Get(exp.column)
		if !endpointMatches(got.Lo, exp.window.Lo, exp.window) ||
			!endpointMatches(got.Hi, exp.window.Hi, exp.window) {
			continue
		}
		return c
	}
	return nil
}

// endpointMatches checks one box endpoint against the expected window
// endpoint: infinite endpoints must agree; finite ones must lie within a
// tolerance of 2/3 of the window width (bounds are random subranges of the
// window), or 15%% of the endpoint magnitude for half-open windows.
func endpointMatches(got, want float64, window interval.Interval) bool {
	if math.IsInf(want, 0) {
		return math.IsInf(got, 0) && math.Signbit(got) == math.Signbit(want)
	}
	if math.IsInf(got, 0) {
		return false
	}
	tol := 0.67 * window.Width()
	if math.IsInf(tol, 1) {
		tol = 0.15 * math.Abs(want)
	}
	return math.Abs(got-want) <= tol
}

func TestTable1ClustersRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering test")
	}
	res := mineDefault(t, 6000, 42)
	if res.PipelineStats.Coverage() < 0.985 {
		t.Fatalf("coverage = %v", res.PipelineStats.Coverage())
	}
	for _, exp := range expectations() {
		c := findCluster(res, exp)
		if c == nil {
			t.Errorf("%s: no matching cluster found", exp.name)
			continue
		}
		if c.Cardinality < 8 {
			t.Errorf("%s: cardinality = %d", exp.name, c.Cardinality)
		}
		// Cardinality ≈ distinct users (the paper's observation in §6.2).
		if c.UserCount < c.Cardinality/2 {
			t.Errorf("%s: users %d vs cardinality %d", exp.name, c.UserCount, c.Cardinality)
		}
	}
}

func TestCoverageStatisticsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering test")
	}
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 6000, Seed: 42})
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 1500, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	m := NewMiner(Config{Schema: skyserver.Schema(), Stats: stats})
	res := m.MineRecords(toRecords(entries))
	res.AttachCoverage(db)

	for _, exp := range expectations() {
		c := findCluster(res, exp)
		if c == nil {
			t.Errorf("%s: missing", exp.name)
			continue
		}
		if exp.empty {
			// Clusters 18-24: zero area AND object coverage — they live in
			// the empty part of the data space.
			if c.AreaCoverage > 0.01 || c.ObjectCoverage > 0.01 {
				t.Errorf("%s: coverage = %.3f/%.3f, want ~0 (empty area)",
					exp.name, c.AreaCoverage, c.ObjectCoverage)
			}
			continue
		}
		if exp.name == "cluster10" || exp.name == "cluster17" {
			// cluster10 is a catalogue table; cluster17's gwholemask = 0
			// point constraint drives its area coverage below any positive
			// threshold (the paper prints "< 0.001").
			continue
		}
		// In-content clusters cover a small-but-positive fraction.
		if c.AreaCoverage <= 0 || c.AreaCoverage > 0.6 {
			t.Errorf("%s: area coverage = %.3f", exp.name, c.AreaCoverage)
		}
	}

	// The paper's headline: cluster17-style areas occupy well under 1%.
	c17 := findCluster(res, expectations()[16])
	if c17 != nil && c17.AreaCoverage > 0.05 {
		t.Errorf("cluster17 area coverage = %.4f, want tiny", c17.AreaCoverage)
	}
	// Cluster 14: area coverage far exceeds object coverage ("queries do
	// not really follow the data distribution").
	c14 := findCluster(res, expectations()[13])
	if c14 != nil && c14.ObjectCoverage > c14.AreaCoverage {
		t.Errorf("cluster14: object %.4f should be < area %.4f", c14.ObjectCoverage, c14.AreaCoverage)
	}
}

func TestMinerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering test")
	}
	r1 := mineDefault(t, 2000, 7)
	r2 := mineDefault(t, 2000, 7)
	if len(r1.Clusters) != len(r2.Clusters) || r1.NoiseQueries != r2.NoiseQueries {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d clusters/noise",
			len(r1.Clusters), r1.NoiseQueries, len(r2.Clusters), r2.NoiseQueries)
	}
	for i := range r1.Clusters {
		if r1.Clusters[i].Expr() != r2.Clusters[i].Expr() {
			t.Fatalf("cluster %d differs", i)
		}
	}
}

func TestMineSQLSmall(t *testing.T) {
	stmts := []string{}
	for i := 0; i < 30; i++ {
		stmts = append(stmts, "SELECT * FROM PhotoObjAll WHERE ra <= 210 AND dec <= 10")
	}
	stmts = append(stmts, "SELECT * FROM zooSpec WHERE ra > 300") // noise
	m := NewMiner(Config{Schema: skyserver.Schema()})
	res := m.MineSQL(stmts)
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	if res.Clusters[0].Cardinality != 30 {
		t.Errorf("cardinality = %d", res.Clusters[0].Cardinality)
	}
	if res.NoiseQueries != 1 {
		t.Errorf("noise = %d", res.NoiseQueries)
	}
	if res.DistinctAreas != 2 {
		t.Errorf("distinct = %d (identical queries must dedupe)", res.DistinctAreas)
	}
}

func TestContradictoryAreasExcluded(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema()})
	res := m.MineSQL([]string{
		"SELECT * FROM Photoz WHERE z > 5 AND z < 1",
		"SELECT * FROM Photoz WHERE z > 0",
	})
	if res.ContradictoryAreas != 1 {
		t.Errorf("contradictory = %d", res.ContradictoryAreas)
	}
}

func TestSampleSizeCap(t *testing.T) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 2000, Seed: 3})
	m := NewMiner(Config{Schema: skyserver.Schema(), SampleSize: 500, Seed: 3})
	res := m.MineRecords(toRecords(entries))
	if res.ClusteredAreas != 500 {
		t.Errorf("clustered = %d, want 500", res.ClusteredAreas)
	}
	if res.DistinctAreas <= 500 {
		t.Errorf("distinct = %d, want > 500", res.DistinctAreas)
	}
}

func TestPaperLiteralModeRuns(t *testing.T) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 1500, Seed: 5})
	m := NewMiner(Config{Schema: skyserver.Schema(), Mode: distance.ModePaperLiteral, Eps: 0.05, MinPts: 6})
	res := m.MineRecords(toRecords(entries))
	// The literal formula still groups the equality-heavy cluster 1 (point
	// predicates never overlap => pairwise distance 0).
	found := false
	for _, c := range res.Clusters {
		for _, r := range c.Relations {
			if r == "Photoz" && c.Box.Has("Photoz.objid") {
				found = true
			}
		}
	}
	if !found {
		t.Error("paper-literal mode lost the objid cluster")
	}
}

func TestClusterIDsSequentialAndSorted(t *testing.T) {
	res := mineDefault(t, 1500, 11)
	for i, c := range res.Clusters {
		if c.ID != i+1 {
			t.Fatalf("cluster %d has ID %d", i, c.ID)
		}
		if i > 0 && c.Cardinality > res.Clusters[i-1].Cardinality {
			t.Fatalf("not sorted by cardinality at %d", i)
		}
	}
}

func TestAutoEps(t *testing.T) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 1500, Seed: 19})
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 300, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	m := NewMiner(Config{Schema: skyserver.Schema(), Stats: stats, AutoEps: true, MinPts: 6})
	res := m.MineRecords(toRecords(entries))
	if res.ChosenEps <= 0 || res.ChosenEps > 2 {
		t.Fatalf("chosen eps = %v", res.ChosenEps)
	}
	if len(res.Clusters) == 0 {
		t.Error("auto-eps mining found no clusters")
	}
}

func TestOPTICSAlgorithmRecoversClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("clustering test")
	}
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 2500, Seed: 42})
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 300, Seed: 1})
	mk := func(alg Algorithm) *Result {
		stats := schema.NewStats()
		skyserver.SeedStats(db, stats)
		m := NewMiner(Config{Schema: skyserver.Schema(), Stats: stats, Algorithm: alg})
		return m.MineRecords(toRecords(entries))
	}
	viaDBSCAN := mk(AlgDBSCAN)
	viaOPTICS := mk(AlgOPTICS)
	matched := func(res *Result) int {
		n := 0
		for _, exp := range expectations() {
			if findCluster(res, exp) != nil {
				n++
			}
		}
		return n
	}
	md, mo := matched(viaDBSCAN), matched(viaOPTICS)
	if mo < md-3 {
		t.Errorf("OPTICS recovered %d vs DBSCAN %d paper clusters", mo, md)
	}
	if mo < 15 {
		t.Errorf("OPTICS recovered too few clusters: %d", mo)
	}
}

func TestEndToEndFromSkyServerCSVFixture(t *testing.T) {
	f, err := os.Open("testdata/sample_sqllog.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := qlog.ReadSkyServerCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 75 {
		t.Fatalf("records = %d", len(recs))
	}
	m := NewMiner(Config{Schema: skyserver.Schema(), MinPts: 5})
	res := m.MineRecords(recs)
	st := res.PipelineStats
	// 2 of 75 statements are rejected (typo + DDL); the dialect one parses.
	if st.Extracted != 73 {
		t.Fatalf("extracted = %d (failures: %v)", st.Extracted, st.ParseFailures)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d: %v", len(res.Clusters), res.Clusters)
	}
	// Largest: the objid-lookup population (48 queries over 24 constants).
	top := res.Clusters[0]
	if top.Cardinality != 48 || top.Relations[0] != "Photoz" {
		t.Errorf("top = %d %v", top.Cardinality, top.Relations)
	}
	// The empty-area probe cluster must be present with dec below the
	// survey footprint.
	found := false
	for _, c := range res.Clusters {
		if c.Box.Has("PhotoObjAll.dec") && c.Box.Get("PhotoObjAll.dec").Hi < -50 {
			found = true
		}
	}
	if !found {
		t.Error("empty-area cluster missing")
	}
	// The zooSpec probe stays noise.
	if res.NoiseQueries != 2 {
		t.Errorf("noise = %d, want 2 (zooSpec probe + dialect query)", res.NoiseQueries)
	}
}
