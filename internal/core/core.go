// Package core orchestrates the paper's full pipeline: query log → parse →
// access-area extraction (Section 4) → deduplication → DBSCAN clustering
// under the overlap distance (Sections 5-6) → aggregated access areas with
// the Table-1 statistics.
package core

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/dbscan"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/schema"
)

// Config parameterises a Miner.
type Config struct {
	// Schema is the database schema (canonical names, column domains).
	Schema *schema.Schema
	// Stats is the access(a) registry; when nil a fresh one is created and
	// populated from the log itself (Section 5.3's update rule).
	Stats *schema.Stats
	// Eps and MinPts are the DBSCAN parameters (defaults 0.06 and 8).
	// MinPts counts raw queries: deduplicated areas weigh as many points as
	// the queries they stand for.
	Eps    float64
	MinPts int
	// AutoEps derives Eps from the k-distance curve (k = MinPts) over a
	// sample of the deduplicated areas — the eps-selection heuristic of the
	// DBSCAN paper — overriding Eps.
	AutoEps bool
	// Mode selects the d_pred variant (see internal/distance).
	Mode distance.Mode
	// Algorithm selects the clustering backend: DBSCAN (default) or an
	// OPTICS run with DBSCAN-style extraction at Eps — the Section 7
	// future-work item of trying different clustering techniques. The two
	// agree on cluster structure; OPTICS additionally yields a
	// reachability ordering and is single-threaded here.
	Algorithm Algorithm
	// PredCap is the Section 6.6 CNF cap (0 = default 35).
	PredCap int
	// SampleSize caps the number of distinct access areas clustered; the
	// paper similarly clustered a 5.6M-query sample of the 12.4M log
	// because of DBSCAN's cost. 0 means no cap.
	SampleSize int
	// Seed drives sampling.
	Seed int64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Pivots is the LAESA pivot count for the pivot-index region-query
	// backend (0 = default 8). The index is used automatically for
	// ModeEndpoint DBSCAN runs on partitions of at least 64 areas, with
	// the dbscan.PivotSlackFactor margin absorbing the distance's
	// near-metric triangle defect; ModePaperLiteral and OPTICS keep
	// brute-force scans.
	Pivots int
	// DisablePivotIndex reverts the clustering stage to the pre-index hot
	// path — brute-force region queries with no pair memoization — so the
	// perf harness and the equivalence guard can measure before/after
	// behaviour through the same instrumentation.
	DisablePivotIndex bool
	// DisableTemplateCache reverts the extraction stage to the pre-cache hot
	// path — a full parse and extraction for every record instead of a
	// per-fingerprint template rebind — so the perf harness and the
	// equivalence guard can measure before/after behaviour through the same
	// instrumentation, and so experiments needing honest per-statement stage
	// timings (the §6.6 efficiency report) can opt out.
	DisableTemplateCache bool
	// SigmaRule and MinColumnSupport configure aggregation (Section 6.2);
	// zero values mean 3 and 0.5.
	SigmaRule        float64
	MinColumnSupport float64
	// DeltaEpochs lets Incremental.ReclusterAuto cluster only the delta
	// between epochs: stable clusters collapse to weighted representatives
	// and DBSCAN runs over representatives + noise + new areas, with a full
	// re-cluster every FullReclusterEvery epochs as the equivalence anchor.
	// Only the DBSCAN backend with SampleSize 0 supports deltas; other
	// configurations silently run full epochs.
	DeltaEpochs bool
	// FullReclusterEvery is the anchor cadence for DeltaEpochs: every Nth
	// ReclusterAuto epoch re-clusters everything from scratch (0 = default 8).
	FullReclusterEvery int
}

func (c Config) withDefaults() Config {
	if c.Eps == 0 {
		c.Eps = 0.06
	}
	if c.MinPts == 0 {
		c.MinPts = 8
	}
	return c
}

// Algorithm enumerates clustering backends.
type Algorithm int

const (
	// AlgDBSCAN is the paper's choice (Section 6).
	AlgDBSCAN Algorithm = iota
	// AlgOPTICS runs OPTICS and extracts the eps-cut clustering.
	AlgOPTICS
)

// Result is the outcome of a mining run.
type Result struct {
	// PipelineStats carries the extraction coverage and stage timings.
	PipelineStats *qlog.Stats
	// Clusters are the aggregated access areas, sorted by cardinality
	// descending (like Table 1).
	Clusters []*aggregate.Summary
	// DistinctAreas is the number of distinct access areas after
	// deduplication; ClusteredAreas the number fed to DBSCAN after
	// sampling.
	DistinctAreas  int
	ClusteredAreas int
	// NoiseQueries is the weighted number of queries left unclustered.
	NoiseQueries int
	// ContradictoryAreas counts provably-empty areas (excluded from
	// clustering).
	ContradictoryAreas int
	// ChosenEps records the eps actually used (relevant with AutoEps).
	ChosenEps float64
	// DistanceEvals counts the ProfileDistance evaluations the run needed
	// (auto-eps, pivot rows, and region queries combined); DistanceCacheHits
	// counts the lookups the shared memoizing cache answered without
	// recomputing. Together they make the pivot-index speed-up measurable.
	DistanceEvals     int64
	DistanceCacheHits int64
}

// Miner runs the pipeline.
type Miner struct {
	cfg   Config
	stats *schema.Stats
}

// NewMiner builds a Miner; cfg.Schema should normally be set.
func NewMiner(cfg Config) *Miner {
	cfg = cfg.withDefaults()
	st := cfg.Stats
	if st == nil {
		st = schema.NewStats()
	}
	return &Miner{cfg: cfg, stats: st}
}

// Stats exposes the access(a) registry (for inspection and reuse).
func (m *Miner) Stats() *schema.Stats { return m.stats }

// MineSQL is a convenience wrapper over MineRecords for plain statements.
func (m *Miner) MineSQL(stmts []string) *Result {
	recs := make([]qlog.Record, len(stmts))
	for i, s := range stmts {
		recs[i] = qlog.Record{Seq: i, User: "anon", SQL: s}
	}
	return m.MineRecords(recs)
}

// MineRecords runs the full pipeline over a query log.
func (m *Miner) MineRecords(recs []qlog.Record) *Result {
	areaRecs, stats := m.pipeline().Run(recs)
	return m.mine(areaRecs, stats)
}

// MineStream runs the full pipeline over a record stream. Extraction is
// bounded-memory (see qlog.Pipeline.RunStream); the extracted areas are then
// deduplicated and clustered as in MineRecords, so the whole run's footprint
// is dominated by the distinct-area count rather than the log length.
// Cancelling ctx stops extraction mid-stream; the records admitted before
// cancellation are still deduplicated and clustered.
func (m *Miner) MineStream(ctx context.Context, src qlog.RecordSource) *Result {
	var areaRecs []qlog.AreaRecord
	stats := m.pipeline().RunStream(ctx, src, func(ar qlog.AreaRecord) {
		areaRecs = append(areaRecs, ar)
	})
	return m.mine(areaRecs, stats)
}

// pipeline builds the extraction pipeline with the template cache on by
// default.
func (m *Miner) pipeline() *qlog.Pipeline {
	extractor := &extract.Extractor{Schema: m.cfg.Schema, PredCap: m.cfg.PredCap, Stats: m.stats}
	return &qlog.Pipeline{
		Extractor: extractor,
		Workers:   m.cfg.Workers,
		NoCache:   m.cfg.DisableTemplateCache,
	}
}

// MineAreas clusters already-extracted access areas (used by baselines and
// ablations to share one extraction pass).
func (m *Miner) MineAreas(areaRecs []qlog.AreaRecord) *Result {
	return m.mine(areaRecs, nil)
}

// itemAccum deduplicates access areas into weighted items — the state the
// one-shot mine() builds per run and the epoch-based Incremental keeps
// alive across Add calls. Items are appended in first-occurrence order,
// which both paths rely on for deterministic clustering.
type itemAccum struct {
	// mu is only taken by the Incremental path, where Adds may race; the
	// one-shot mine() owns its accumulator exclusively.
	mu            sync.Mutex
	byKey         map[string]int
	items         []*aggregate.Item
	contradictory int
}

func newItemAccum() *itemAccum {
	return &itemAccum{byKey: make(map[string]int)}
}

// add folds one extraction into the accumulator. For non-empty areas it
// returns the item's index and whether this record created it; empty
// (contradictory) areas are counted and reported with idx -1.
func (a *itemAccum) add(ar *qlog.AreaRecord) (idx int, isNew bool) {
	if ar.Area.IsEmpty() {
		a.contradictory++
		return -1, false
	}
	key := ar.Area.Key()
	idx, ok := a.byKey[key]
	if !ok {
		idx = len(a.items)
		a.byKey[key] = idx
		a.items = append(a.items, &aggregate.Item{
			Area:   ar.Area,
			Users:  make(map[string]struct{}),
			RelKey: extract.RelationSetKey(ar.Area.Relations),
		})
		isNew = true
	}
	it := a.items[idx]
	it.Weight++
	if ar.Record.User != "" {
		it.Users[ar.Record.User] = struct{}{}
	}
	return idx, isNew
}

func (m *Miner) mine(areaRecs []qlog.AreaRecord, stats *qlog.Stats) *Result {
	res := &Result{PipelineStats: stats}
	acc := newItemAccum()
	for i := range areaRecs {
		acc.add(&areaRecs[i])
	}
	res.ContradictoryAreas = acc.contradictory
	res.DistinctAreas = len(acc.items)
	m.clusterBody(acc.items, res)
	return res
}

// clusterBody is the one-shot clustering engine: sampling, eps selection,
// relation-set partitioning, DBSCAN/OPTICS per partition, and aggregation,
// all through per-run caches. It may reorder items (sampling shuffles in
// place). The epoch-based Incremental replaces the cache plumbing with
// persistent cross-epoch structures but shares partitionItems /
// collectPartition / finalizeClusters so the two paths cannot drift.
func (m *Miner) clusterBody(items []*aggregate.Item, res *Result) {
	// Sampling (the paper clustered a sample for the same reason).
	if m.cfg.SampleSize > 0 && len(items) > m.cfg.SampleSize {
		r := rand.New(rand.NewSource(m.cfg.Seed))
		r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		items = items[:m.cfg.SampleSize]
	}
	res.ClusteredAreas = len(items)

	metric := &distance.Metric{Mode: m.cfg.Mode, Stats: m.stats}
	opts := aggregate.Options{SigmaRule: m.cfg.SigmaRule, MinColumnSupport: m.cfg.MinColumnSupport}

	// Precompile every profile once into the flat SoA kernel and route ALL
	// distance evaluations — auto-eps, pivot rows, region queries — through
	// one shared cache, so evaluation counts are comparable across
	// configurations. The kernel computes values bit-identical to
	// ProfileDistance with zero allocations per pair. The global cache
	// memoizes when the item count allows it; partition-local caches below
	// keep memoization effective at any scale. With the pivot index disabled
	// (the perf harness's "before" baseline) the cache only counts,
	// reproducing the pre-index evaluation pattern.
	kern := distance.NewKernel(m.cfg.Mode)
	for _, it := range items {
		kern.Add(metric.Profile(it.Area))
	}
	rawDist := kern.Distance
	var cache *distance.PairCache
	if m.cfg.DisablePivotIndex {
		cache = distance.NewCountingPairCache(len(items), rawDist)
	} else {
		cache = distance.NewPairCache(len(items), rawDist)
	}

	eps := m.cfg.Eps
	if m.cfg.AutoEps && len(items) > 1 {
		var sampleHits int64
		eps, sampleHits = m.autoEps(len(items), cache.Dist)
		res.DistanceCacheHits += sampleHits
		res.ChosenEps = eps
	} else {
		res.ChosenEps = eps
	}

	groups, order := partitionItems(items, eps)

	for _, key := range order {
		part := groups[key]
		weights := make([]int, len(part))
		for i, idx := range part {
			weights[i] = items[idx].Weight
		}
		distFn := func(i, j int) float64 {
			return cache.Dist(part[i], part[j])
		}
		// Partition-local memoization: DBSCAN's region queries visit every
		// ordered pair once, so each unordered pair would otherwise be
		// evaluated twice; OPTICS likewise. Partitions are small enough for
		// dense storage even when the global cache has degraded to counting,
		// and the cache is dropped as soon as the partition is clustered.
		var partCache *distance.PairCache
		if !m.cfg.DisablePivotIndex {
			partCache = distance.NewPairCache(len(part), distFn)
			distFn = partCache.Dist
		}
		dcfg := dbscan.Config{Eps: eps, MinPts: m.cfg.MinPts, Workers: m.cfg.Workers, Weights: weights}
		var dres *dbscan.Result
		switch {
		case m.cfg.Algorithm == AlgOPTICS:
			o := dbscan.RunOPTICS(len(part), distFn, eps*2, m.cfg.MinPts, weights)
			dres = o.ExtractDBSCAN(eps)
		case m.usePivots(len(part)):
			dres = dbscan.ClusterWithPivots(len(part), distFn, dcfg, m.pivotCount())
		default:
			dres = dbscan.Cluster(len(part), distFn, dcfg)
		}

		collectPartition(res, items, part, dres, opts)
		if partCache != nil {
			res.DistanceCacheHits += partCache.Hits()
		}
	}
	res.DistanceEvals = cache.Evals()
	res.DistanceCacheHits += cache.Hits()

	finalizeClusters(res)
}

// partitionItems groups item indices by exact relation set when eps makes
// cross-partition neighbourhoods impossible: two areas with different table
// sets have d >= d_tables >= 1/(maxTables+1). Otherwise everything lands in
// one "" partition. Keys are returned in sorted order; member lists are in
// ascending item order.
func partitionItems(items []*aggregate.Item, eps float64) (map[string][]int, []string) {
	maxTables := 1
	for _, it := range items {
		if len(it.Area.Relations) > maxTables {
			maxTables = len(it.Area.Relations)
		}
	}
	groups := map[string][]int{}
	if eps < 1.0/float64(maxTables+1) {
		var order []string
		for i, it := range items {
			// The interned key is set when the item enters an accumulator;
			// items built directly (baselines, examples) derive it lazily so
			// later epochs over the same item reuse it.
			key := it.RelKey
			if key == "" && len(it.Area.Relations) > 0 {
				key = extract.RelationSetKey(it.Area.Relations)
				it.RelKey = key
			}
			if _, ok := groups[key]; !ok {
				order = append(order, key)
			}
			groups[key] = append(groups[key], i)
		}
		sort.Strings(order)
		return groups, order
	}
	all := make([]int, len(items))
	for i := range items {
		all[i] = i
	}
	groups[""] = all
	return groups, []string{""}
}

// collectPartition folds one partition's clustering outcome into res:
// cluster members become aggregated summaries, noise weights accumulate.
func collectPartition(res *Result, items []*aggregate.Item, part []int, dres *dbscan.Result, opts aggregate.Options) {
	for _, memberIdx := range dres.ClusterIndices() {
		members := make([]*aggregate.Item, len(memberIdx))
		for i, idx := range memberIdx {
			members[i] = items[part[idx]]
		}
		res.Clusters = append(res.Clusters, aggregate.Summarize(0, members, opts))
	}
	for i, l := range dres.Labels {
		if l == dbscan.Noise {
			res.NoiseQueries += items[part[i]].Weight
		}
	}
}

// finalizeClusters orders clusters by cardinality (Table-1 style) and
// assigns stable ids. The tie-break chain must be total over every field
// the report renders: Expr alone collapses to "⊤" for unconstrained
// clusters, and sort.Slice is unstable, so an Expr-only tie-break would
// leave equal-cardinality clusters in input order — making the report
// depend on arrival interleaving (and a shard-merged result differ from
// the batch miner over the same log).
func finalizeClusters(res *Result) {
	sort.Slice(res.Clusters, func(i, j int) bool {
		a, b := res.Clusters[i], res.Clusters[j]
		if a.Cardinality != b.Cardinality {
			return a.Cardinality > b.Cardinality
		}
		if ae, be := a.Expr(), b.Expr(); ae != be {
			return ae < be
		}
		if ar, br := strings.Join(a.Relations, ","), strings.Join(b.Relations, ","); ar != br {
			return ar < br
		}
		if a.UserCount != b.UserCount {
			return a.UserCount > b.UserCount
		}
		return strings.Join(a.Representatives, "\n") < strings.Join(b.Representatives, "\n")
	})
	for i, c := range res.Clusters {
		c.ID = i + 1
	}
}

// pivotMinPartition is the partition size under which building a pivot
// index costs more than the brute-force scans it would save.
const pivotMinPartition = 64

// usePivots reports whether a partition of size n should cluster through
// the LAESA pivot index: ModeEndpoint is near-metric (its triangle defect
// is covered by ClusterWithPivots's slack margin), while the paper-literal
// mode's similarity-like d_pred gives the pruning nothing to hold on to.
func (m *Miner) usePivots(n int) bool {
	return !m.cfg.DisablePivotIndex &&
		m.cfg.Mode == distance.ModeEndpoint &&
		n >= pivotMinPartition
}

func (m *Miner) pivotCount() int {
	if m.cfg.Pivots > 0 {
		return m.cfg.Pivots
	}
	return 8
}

// autoEps picks eps from the k-distance knee over a bounded sample of item
// indices; dist is the shared-cache distance in item index space. KDistances
// scans every ordered sample pair, so the sample gets its own dense cache —
// each unordered pair is evaluated once regardless of the global cache's
// storage mode — and the second return value reports the hits it served.
func (m *Miner) autoEps(n int, dist func(i, j int) float64) (float64, int64) {
	const maxSample = 1000
	sample := make([]int, n)
	for i := range sample {
		sample[i] = i
	}
	if n > maxSample {
		r := rand.New(rand.NewSource(m.cfg.Seed + 1))
		sample = r.Perm(n)[:maxSample]
	}
	sampleCache := distance.NewPairCache(len(sample), func(i, j int) float64 {
		return dist(sample[i], sample[j])
	})
	kd := dbscan.KDistances(len(sample), sampleCache.Dist, m.cfg.MinPts)
	eps := dbscan.SuggestEps(kd)
	if eps <= 0 {
		return m.cfg.Eps, sampleCache.Hits()
	}
	return eps, sampleCache.Hits()
}

// AttachCoverage fills area/object coverage for every cluster from a data
// source (Section 6.2's two coverage columns).
func (r *Result) AttachCoverage(src aggregate.DataSource) {
	for _, c := range r.Clusters {
		c.ComputeCoverage(src)
	}
}
