// Command benchreport regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic SkyServer substrate and prints a
// paper-vs-measured comparison. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	benchreport [-scale 20000] [-seed 42] [-exp all|list|<experiment>]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-obs]
//	benchreport -compare old.json new.json [-tol 0.15]
//
// `-exp list` prints the available experiments with one-line descriptions.
// `-obs` adds a "metrics" key to every BENCH_*.json written, holding a
// snapshot of the process observability registry (internal/obs) taken after
// the experiment ran. `-compare` diffs two BENCH_*.json records and exits
// non-zero when a deterministic counter metric regressed beyond -tol
// (see internal/benchcmp); wall-clock fields are ignored.
// The clusterperf experiment additionally writes its before/after numbers
// (brute-force vs pivot-index clustering) to -benchjson (default
// BENCH_clustering.json), pipelineperf writes its uncached-vs-cached
// extraction numbers to -pipejson (default BENCH_pipeline.json), serveperf
// writes the online-service load numbers (throughput, backpressure latency,
// cross-epoch reuse) to -servejson (default BENCH_serve.json), shardperf
// writes the sharded-coordinator scaling numbers (throughput and epoch wall
// at 1/2/4/8 shards) to -shardjson (default BENCH_shard.json), and
// semcacheperf writes the semantic-result-cache numbers (hit ratio, speedup,
// staleness window) to -semjson (default BENCH_semcache.json), and walperf
// writes the durability numbers (WAL fsync overhead, replay rate, windowed
// re-mine speedup) to -waljson (default BENCH_wal.json), and trafficperf
// writes the traffic-class mining numbers (classifier precision/recall,
// partition and drift-determinism gates, ingest overhead) to -trafficjson
// (default BENCH_traffic.json), so successive changes have a perf
// trajectory. -cpuprofile/-memprofile capture stdlib
// pprof profiles of the selected experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/benchcmp"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	// -compare takes positional file arguments, which the flag package
	// would stop parsing at; it is a distinct mode with its own tiny CLI.
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	os.Exit(run())
}

// runCompare implements `benchreport -compare old.json new.json [-tol x]
// [-identity]`: exit 0 when no gated metric regressed, 1 on regression, 2 on
// usage or I/O errors. With -identity only the scale-independent correctness
// gates run (identical_* booleans, zero-stay-zero counters), so a
// reduced-scale quick record compares against the full-scale baseline.
func runCompare(args []string) int {
	tol := 0.15
	identity := false
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-identity" || a == "--identity":
			identity = true
		case a == "-tol" || a == "--tol":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchreport -compare: -tol needs a value")
				return 2
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "benchreport -compare: bad -tol %q\n", args[i])
				return 2
			}
			tol = v
		case strings.HasPrefix(a, "-tol="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(a, "-tol="), 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "benchreport -compare: bad %q\n", a)
				return 2
			}
			tol = v
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "benchreport -compare: unknown flag %q\n", a)
			return 2
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchreport -compare old.json new.json [-tol 0.15] [-identity]")
		return 2
	}
	oldJSON, err := os.ReadFile(files[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport -compare: %v\n", err)
		return 2
	}
	newJSON, err := os.ReadFile(files[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport -compare: %v\n", err)
		return 2
	}
	var rep *benchcmp.Report
	if identity {
		rep, err = benchcmp.CompareIdentity(oldJSON, newJSON)
	} else {
		rep, err = benchcmp.Compare(oldJSON, newJSON, tol)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport -compare: %v\n", err)
		return 2
	}
	if identity {
		fmt.Printf("comparing %s -> %s (identity gates only)\n", files[0], files[1])
	} else {
		fmt.Printf("comparing %s -> %s (tol %.0f%%)\n", files[0], files[1], 100*tol)
	}
	fmt.Print(rep.String())
	if regs := rep.Regressions(); len(regs) > 0 {
		if identity {
			fmt.Printf("FAIL: %d identity gate(s) broken\n", len(regs))
		} else {
			fmt.Printf("FAIL: %d metric(s) regressed beyond %.0f%%\n", len(regs), 100*tol)
		}
		return 1
	}
	fmt.Println("PASS: no counter-metric regressions")
	return 0
}

// experiment pairs a selectable id with a one-line description (shown by
// `-exp list`) and the closure that runs it and returns its report.
type experiment struct {
	name string
	desc string
	fn   func() string
}

func listExperiments(w *os.File, exps []experiment) {
	fmt.Fprintln(w, "available experiments (select with -exp <name>, or -exp all):")
	for _, e := range exps {
		fmt.Fprintf(w, "  %-14s %s\n", e.name, e.desc)
	}
}

// run is main's body with a plain exit code so deferred profile writers run
// before the process exits.
func run() int {
	scale := flag.Int("scale", 20000, "number of log queries to generate")
	seed := flag.Int64("seed", 42, "generator seed")
	exp := flag.String("exp", "all", "experiment id, \"all\", or \"list\" to enumerate them")
	benchJSON := flag.String("benchjson", "BENCH_clustering.json", "output path for the clusterperf JSON record")
	pipeJSON := flag.String("pipejson", "BENCH_pipeline.json", "output path for the pipelineperf JSON record")
	serveJSON := flag.String("servejson", "BENCH_serve.json", "output path for the serveperf JSON record")
	shardJSON := flag.String("shardjson", "BENCH_shard.json", "output path for the shardperf JSON record")
	semJSON := flag.String("semjson", "BENCH_semcache.json", "output path for the semcacheperf JSON record")
	walJSON := flag.String("waljson", "BENCH_wal.json", "output path for the walperf JSON record")
	trafficJSON := flag.String("trafficjson", "BENCH_traffic.json", "output path for the trafficperf JSON record")
	kernelJSON := flag.String("kerneljson", "BENCH_kernel.json", "output path for the kernelperf JSON record")
	kernelScales := flag.String("kernelscales", "", "comma-separated area counts for kernelperf (default \"20000,100000\")")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	obsDump := flag.Bool("obs", false, "embed an observability registry snapshot under a \"metrics\" key in each BENCH_*.json")
	flag.Parse()

	writeJSON := func(path string, v any) {
		if *obsDump {
			// Round-trip the typed result through JSON so the snapshot can
			// ride along without changing any experiment result type.
			if raw, err := json.Marshal(v); err == nil {
				doc := map[string]any{}
				if json.Unmarshal(raw, &doc) == nil {
					doc["metrics"] = obs.Default().Snapshot()
					v = doc
				}
			}
		}
		if data, err := json.MarshalIndent(v, "", "  "); err == nil {
			if werr := os.WriteFile(path, append(data, '\n'), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}

	// The substrate is built lazily so `-exp list` and unknown-id errors
	// stay instant instead of generating a 20k-query log first.
	var env *experiments.Env
	getEnv := func() *experiments.Env {
		if env == nil {
			env = experiments.NewEnv(*scale, *seed)
		}
		return env
	}

	semcacheFailed := false
	exps := []experiment{
		{"table1", "paper Table 1: per-template access-area extraction accuracy",
			func() string { return getEnv().RunTable1().Report }},
		{"fig1a", "paper Figure 1a: cluster count vs minPts",
			func() string { return getEnv().RunFigure1('a').Report }},
		{"fig1b", "paper Figure 1b: cluster count vs epsilon",
			func() string { return getEnv().RunFigure1('b').Report }},
		{"fig1c", "paper Figure 1c: clustered-query fraction vs epsilon",
			func() string { return getEnv().RunFigure1('c').Report }},
		{"coverage", "share of the log covered by mined interest areas",
			func() string { return getEnv().RunCoverage().Report }},
		{"olapclus", "OLAP-style rollup over exact extracted areas",
			func() string { return getEnv().RunOLAPClusExact().Report }},
		{"olapclusraw", "OLAP-style rollup over raw (unfiltered) areas",
			func() string { return getEnv().RunOLAPClusRaw().Report }},
		{"efficiency", "extraction + clustering wall-clock efficiency",
			func() string { return getEnv().RunEfficiency().Report }},
		{"requery", "re-query rate: how often users revisit mined areas",
			func() string { return getEnv().RunRequery().Report }},
		{"ablation", "pipeline ablation: drop one stage at a time",
			func() string { return getEnv().RunAblation().Report }},
		{"ablationsigma", "sigma-expansion ablation for approximate areas",
			func() string { return getEnv().RunAblationSigma().Report }},
		{"density", "cluster density profile across the data space",
			func() string { return getEnv().RunDensity().Report }},
		{"scaling", "mining throughput as the log scale grows",
			func() string { return getEnv().RunScaling().Report }},
		{"clusterperf", "brute-force vs pivot-index clustering benchmark (writes -benchjson)",
			func() string {
				res := getEnv().RunClusterPerf()
				writeJSON(*benchJSON, res)
				return res.Report
			}},
		{"pipelineperf", "uncached vs template-cached extraction benchmark (writes -pipejson)",
			func() string {
				res := getEnv().RunPipelinePerf()
				writeJSON(*pipeJSON, res)
				return res.Report
			}},
		{"serveperf", "online-service load benchmark: throughput, backpressure, reuse (writes -servejson)",
			func() string {
				res := getEnv().RunServePerf()
				writeJSON(*serveJSON, res)
				return res.Report
			}},
		{"shardperf", "sharded coordinator: throughput + epoch wall at 1/2/4/8 shards (writes -shardjson)",
			func() string {
				res := getEnv().RunShardPerf()
				writeJSON(*shardJSON, res)
				return res.Report
			}},
		{"semcacheperf", "semantic result cache: oracle, hit ratio, speedup, staleness (writes -semjson)",
			func() string {
				res, err := experiments.RunSemCachePerf(*scale, *seed)
				if err != nil {
					semcacheFailed = true
					return fmt.Sprintf("semcacheperf: %v\n", err)
				}
				writeJSON(*semJSON, res)
				return res.Report
			}},
		{"walperf", "durable ingest WAL: fsync overhead, replay rate, windowed re-mine (writes -waljson)",
			func() string {
				res := getEnv().RunWALPerf()
				writeJSON(*walJSON, res)
				return res.Report
			}},
		{"trafficperf", "traffic-class mining: classifier accuracy, partition + drift gates, ingest cost (writes -trafficjson)",
			func() string {
				res := getEnv().RunTrafficPerf()
				writeJSON(*trafficJSON, res)
				return res.Report
			}},
		{"kernelperf", "flat SoA distance kernel vs pointer profiles microbenchmark (writes -kerneljson)",
			func() string {
				var scales []int
				for _, s := range strings.Split(*kernelScales, ",") {
					if s = strings.TrimSpace(s); s == "" {
						continue
					}
					n, err := strconv.Atoi(s)
					if err != nil || n <= 1 {
						return fmt.Sprintf("kernelperf: bad -kernelscales entry %q\n", s)
					}
					scales = append(scales, n)
				}
				res := experiments.RunKernelPerf(*seed, scales...)
				writeJSON(*kernelJSON, res)
				return res.Report
			}},
	}

	want := strings.ToLower(*exp)
	if want == "list" {
		listExperiments(os.Stdout, exps)
		return 0
	}
	known := want == "all"
	for _, e := range exps {
		if e.name == want {
			known = true
			break
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", *exp)
		listExperiments(os.Stderr, exps)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	for _, e := range exps {
		if want != "all" && want != e.name {
			continue
		}
		fmt.Println(strings.Repeat("=", 100))
		fmt.Print(e.fn())
		fmt.Println()
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 2
		}
	}
	if semcacheFailed {
		return 1
	}
	return 0
}
