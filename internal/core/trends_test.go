package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/qlog"
	"repro/internal/skyserver"
)

// trendLog builds a log with a shifting workload: window 0 hammers Photoz
// objid lookups, window 1 keeps them and adds zooSpec rectangles, window 2
// drops the Photoz population entirely.
func trendLog() []qlog.Record {
	var recs []qlog.Record
	add := func(tm int64, sql string) {
		recs = append(recs, qlog.Record{Seq: len(recs), Time: tm, User: fmt.Sprintf("u%d", len(recs)), SQL: sql})
	}
	for i := 0; i < 30; i++ {
		add(int64(i), fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %d", 1000+i%5))
	}
	for i := 0; i < 30; i++ {
		add(1000+int64(i), fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %d", 1000+i%5))
		add(1000+int64(i), "SELECT * FROM zooSpec WHERE ra BETWEEN 10 AND 20 AND dec BETWEEN 0 AND 5")
	}
	for i := 0; i < 30; i++ {
		add(2000+int64(i), "SELECT * FROM zooSpec WHERE ra BETWEEN 10 AND 20 AND dec BETWEEN 0 AND 5")
	}
	return recs
}

func TestMineWindowsAndTrends(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema(), MinPts: 5})
	windows := m.MineWindows(trendLog(), 1000)
	if len(windows) != 3 {
		t.Fatalf("windows = %d", len(windows))
	}
	events := Trends(windows)
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, fmt.Sprintf("w%d:%s:%s", e.Window, e.Kind, e.Signature))
	}
	joined := strings.Join(kinds, "\n")
	if !strings.Contains(joined, "w1:appeared") || !strings.Contains(joined, "zooSpec") {
		t.Errorf("expected zooSpec appearance in window 1:\n%s", joined)
	}
	if !strings.Contains(joined, "w2:vanished") || !strings.Contains(joined, "Photoz") {
		t.Errorf("expected Photoz disappearance in window 2:\n%s", joined)
	}
	report := TrendReport(windows, events)
	if !strings.Contains(report, "window 0") || !strings.Contains(report, "appeared") {
		t.Errorf("report = %s", report)
	}
}

func TestMineWindowsEmpty(t *testing.T) {
	m := NewMiner(Config{Schema: skyserver.Schema()})
	if w := m.MineWindows(nil, 100); w != nil {
		t.Errorf("windows = %v", w)
	}
	if w := m.MineWindows(trendLog(), 0); w != nil {
		t.Errorf("zero window size should give nil")
	}
}

func TestTrendsGrowShrink(t *testing.T) {
	var recs []qlog.Record
	add := func(tm int64, n int) {
		for i := 0; i < n; i++ {
			recs = append(recs, qlog.Record{Seq: len(recs), Time: tm, User: fmt.Sprintf("u%d", len(recs)),
				SQL: "SELECT * FROM Photoz WHERE z >= 0 AND z <= 0.1"})
		}
	}
	add(0, 10)
	add(1000, 40) // 4x growth
	add(2000, 10) // shrink
	m := NewMiner(Config{Schema: skyserver.Schema(), MinPts: 5})
	windows := m.MineWindows(recs, 1000)
	events := Trends(windows)
	sawGrow, sawShrink := false, false
	for _, e := range events {
		if e.Kind == ClusterGrew {
			sawGrow = true
		}
		if e.Kind == ClusterShrank {
			sawShrink = true
		}
	}
	if !sawGrow || !sawShrink {
		t.Errorf("events = %+v", events)
	}
}
