package predicate

import (
	"repro/internal/interval"
)

// Bounds computes, for every numeric column, the projection of the CNF onto
// that column as an interval set: the set of values the column can take in a
// tuple satisfying the constraint. Clauses whose predicates all concern the
// same single column contribute the union of their predicate sets; clauses
// spanning several columns (or containing column-column / string predicates)
// do not constrain any single column and are skipped. The result is thus a
// sound over-approximation of the true projection.
//
// Bounds feeds (a) the effective-domain computation of the aggregate-query
// lemmas (Section 4.3: dom(T.v) intersected with WHERE-derived bounds) and
// (b) the bounding boxes of aggregated access areas (Section 6.2).
func Bounds(c CNF) map[string]interval.Set {
	out := make(map[string]interval.Set)
	for _, cl := range c {
		col, set, ok := clauseColumnSet(cl)
		if !ok {
			continue
		}
		if cur, exists := out[col]; exists {
			out[col] = cur.Intersect(set)
		} else {
			out[col] = set
		}
	}
	return out
}

// clauseColumnSet returns the single column a clause constrains and the
// union of its predicate value sets; ok is false when the clause references
// several columns or contains non-interval predicates.
func clauseColumnSet(cl Clause) (string, interval.Set, bool) {
	if len(cl) == 0 {
		return "", interval.Set{}, false
	}
	col := ""
	set := interval.EmptySet()
	for _, p := range cl {
		s, ok := p.Interval()
		if !ok {
			return "", interval.Set{}, false
		}
		if col == "" {
			col = p.Column
		} else if col != p.Column {
			return "", interval.Set{}, false
		}
		set = set.Union(s)
	}
	return col, set, true
}

// BoundsBox converts per-column bounds to a Box using each set's hull.
func BoundsBox(bounds map[string]interval.Set) *interval.Box {
	box := interval.NewBox()
	for col, set := range bounds {
		box.Set(col, set.Hull())
	}
	return box
}
