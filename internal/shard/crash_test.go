package shard

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/skyserver"
)

// buildDurableCluster is newInProcessCluster with per-shard durability:
// every shard server owns a WAL directory and snapshot path under dir, and
// the coordinator persists its router state and routing offsets next to
// them. The returned servers let the test crash individual shards (Abort).
func buildDurableCluster(t *testing.T, n int, dir string) (*Coordinator, []*serve.Server) {
	t.Helper()
	db := testDB()
	stats := seededStats(db)
	tcache := &extract.TemplateCache{}
	router := NewRouter(n, skyserver.Schema(), 0, tcache, 0)
	nodes := make([]Node, n)
	servers := make([]*serve.Server, n)
	for i := 0; i < n; i++ {
		s, err := serve.NewServer(serve.Config{
			Miner:           core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: stats},
			Templates:       tcache,
			BatchSize:       64,
			EpochAreas:      256,
			SnapshotPath:    filepath.Join(dir, "shard-"+strconv.Itoa(i)+".json"),
			WALDir:          filepath.Join(dir, "wal", "shard-"+strconv.Itoa(i)),
			WALSegmentBytes: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		nodes[i] = NewLocalNode("shard-"+strconv.Itoa(i), s)
	}
	coord, err := NewCoordinator(Config{
		Router:          router,
		Nodes:           nodes,
		QueueSize:       512,
		BatchSize:       64,
		Eps:             0.06,
		HealthInterval:  time.Second,
		RouterStatePath: filepath.Join(dir, "router.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord, servers
}

// A sharded deployment killed mid-run must recover shard by shard: every
// shard replays its own WAL, the restarted coordinator restores the sticky
// routing and its persisted offsets, and the merged /report equals the batch
// miner over everything acknowledged before the crash — relation-set
// sharding stays exact across a crash.
func TestShardedCrashRecovery(t *testing.T) {
	recs := synthRecords(1000, 42)
	dir := t.TempDir()

	coord, servers := buildDurableCluster(t, 2, dir)
	ts := httptest.NewServer(coord.Handler())
	for lo := 0; lo < len(recs); lo += 100 {
		hi := lo + 100
		if hi > len(recs) {
			hi = len(recs)
		}
		postUntilAccepted(t, ts.URL, recs[lo:hi])
	}
	// Flush delivers everything to its owning shard (each shard's WAL has
	// fsynced its slice — LocalNode ingest returns only after the barrier)
	// and persists the router assignment plus the routing offsets.
	mustFlush(t, ts.URL)
	ts.Close()

	stateData, err := os.ReadFile(filepath.Join(dir, "router.json.offsets"))
	if err != nil {
		t.Fatalf("flush did not persist routing offsets: %v", err)
	}
	var st struct {
		Shards  int `json:"shards"`
		Offsets []struct {
			Name      string `json:"name"`
			Forwarded int64  `json:"forwarded"`
		} `json:"offsets"`
	}
	if err := json.Unmarshal(stateData, &st); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, o := range st.Offsets {
		sum += o.Forwarded
	}
	if st.Shards != 2 || sum != int64(len(recs)) {
		t.Fatalf("persisted offsets cover %d records over %d shards, want %d over 2:\n%s", sum, st.Shards, len(recs), stateData)
	}

	// Crash every shard: no final epochs, no snapshots — only the WALs (and
	// the coordinator's sidecar) survive. The coordinator object is simply
	// abandoned, as a killed process would abandon it.
	for _, s := range servers {
		s.Abort()
	}

	// Restart the whole topology against the same directory tree. Each shard
	// replays its full WAL (no snapshot was ever written); the coordinator
	// restores the assignment and offset base.
	coord2, servers2 := buildDurableCluster(t, 2, dir)
	defer func() {
		if err := coord2.Close(); err != nil {
			t.Errorf("close after recovery: %v", err)
		}
	}()
	var replayed int64
	for _, s := range servers2 {
		replayed += s.Telemetry().Processed
	}
	if replayed != int64(len(recs)) {
		t.Fatalf("shards replayed %d records, want %d — acknowledged records were lost", replayed, len(recs))
	}
	if off := coord2.Offsets(); off[0]+off[1] != int64(len(recs)) {
		t.Fatalf("restored routing offsets %v do not cover %d records", off, len(recs))
	}

	ts2 := httptest.NewServer(coord2.Handler())
	defer ts2.Close()
	mustFlush(t, ts2.URL)

	batch := core.NewMiner(core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(testDB())}).MineRecords(recs)
	var want bytes.Buffer
	if err := report.Write(&want, batch, report.Text, report.Options{}); err != nil {
		t.Fatal(err)
	}
	code, _, got := get(t, ts2.URL+"/report?format=text")
	if code != 200 {
		t.Fatalf("merged report status %d", code)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("merged report after sharded crash recovery differs from batch run.\nrecovered:\n%s\nbatch:\n%s", got, want.Bytes())
	}
}
