package qlog

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/extract"
	"repro/internal/obs"
	"repro/internal/sqlparser"
)

// observeParse records one parse-stage duration in both the run's StageTime
// (the §6.6 report) and the process-wide stage histogram.
func observeParse(st *Stats, d time.Duration) {
	st.Parse.observe(d)
	parseObs.Observe(d)
}

// AreaRecord pairs a log record with its extracted access area.
type AreaRecord struct {
	Record Record
	Area   *extract.AccessArea
}

// StageTime aggregates min/max/total durations for one pipeline stage,
// mirroring the per-stage ranges reported in Section 6.6.
type StageTime struct {
	Min, Max, Total time.Duration
	Count           int
}

func (s *StageTime) observe(d time.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Total += d
	s.Count++
}

// Mean returns the average stage duration.
func (s *StageTime) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Merge folds another StageTime into this one. It is not safe for
// concurrent use: callers merging timings from concurrently-finishing
// pipeline runs (e.g. two serving epochs) must hold their own lock.
func (s *StageTime) Merge(o StageTime) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Total += o.Total
	s.Count += o.Count
}

// Stats summarises a pipeline run: the extraction-coverage numbers of
// Section 6.1 plus the stage timings of Section 6.6.
type Stats struct {
	Total     int
	Parsed    int // statements the parser accepted as SELECT
	Extracted int // access areas produced
	// ParseFailures counts rejected statements by category ("syntax",
	// "udf", "non-select", "unsupported", "lex").
	ParseFailures map[string]int
	// ExtractFailures counts parsed statements the extractor rejected
	// (self-joins etc.).
	ExtractFailures int
	Truncated       int // hit the 35-predicate CNF cap
	Approximate     int // inexact mappings
	EmptyAreas      int // provably empty (contradictory) areas

	// FullParses counts records that took the slow path (full parse and
	// extraction); CacheHits counts records served from the template cache.
	// Both are scheduling telemetry: when several workers miss the same
	// fingerprint concurrently each performs a full parse, so the split
	// between the two varies run to run. Every semantic counter above is
	// deterministic regardless.
	FullParses int
	CacheHits  int
	// PeakInFlight is the largest number of records resident in the
	// streaming pool at any sampled instant. It is bounded by construction:
	// the feeder admits a record only while fewer than Workers + Buffer
	// records are unretired.
	PeakInFlight int

	Parse       StageTime
	Extract     StageTime
	CNF         StageTime
	Consolidate StageTime

	Elapsed time.Duration
}

// Coverage returns the extraction coverage fraction (the paper reports
// 12,375,426 / 12,442,989 = 99.46%).
func (s *Stats) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Extracted) / float64(s.Total)
}

// Merge folds another run's statistics into this one: counters add, failure
// categories add key-wise, stage timings merge range-wise, and Elapsed
// accumulates (two sequential batches took the sum of their wall clocks;
// for overlapping runs the sum is total busy time, not wall time).
// PeakInFlight takes the maximum. Merge is NOT safe for concurrent use —
// a server merging per-batch stats from concurrently-finishing pipeline
// runs must serialise calls with its own lock (see internal/serve).
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.Total += o.Total
	s.Parsed += o.Parsed
	s.Extracted += o.Extracted
	s.ExtractFailures += o.ExtractFailures
	s.Truncated += o.Truncated
	s.Approximate += o.Approximate
	s.EmptyAreas += o.EmptyAreas
	s.FullParses += o.FullParses
	s.CacheHits += o.CacheHits
	if o.PeakInFlight > s.PeakInFlight {
		s.PeakInFlight = o.PeakInFlight
	}
	if len(o.ParseFailures) > 0 && s.ParseFailures == nil {
		s.ParseFailures = make(map[string]int)
	}
	for k, v := range o.ParseFailures {
		s.ParseFailures[k] += v
	}
	s.Parse.Merge(o.Parse)
	s.Extract.Merge(o.Extract)
	s.CNF.Merge(o.CNF)
	s.Consolidate.Merge(o.Consolidate)
	s.Elapsed += o.Elapsed
}

// RecordSource yields successive log records; ok reports whether rec is
// valid, and false ends the stream. Sources are pulled from a single
// goroutine, so they need not be concurrency-safe.
type RecordSource func() (rec Record, ok bool)

// SliceSource adapts an in-memory record slice to a RecordSource.
func SliceSource(recs []Record) RecordSource {
	i := 0
	return func() (Record, bool) {
		if i >= len(recs) {
			return Record{}, false
		}
		r := recs[i]
		i++
		return r, true
	}
}

// Pipeline extracts access areas from log records.
type Pipeline struct {
	Extractor *extract.Extractor
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Buffer is the capacity of the pool's job and result channels; 0 means
	// 2×Workers. The feeder admits at most Workers+Buffer unretired records,
	// which bounds RunStream's record residency.
	Buffer int
	// NoCache disables the template cache: every record takes the full
	// parse → extract → CNF → consolidate path. Required when per-statement
	// stage timings must reflect real work (the §6.6 efficiency experiment).
	NoCache bool
	// Cache, when non-nil, is used (and populated) instead of a fresh
	// per-run cache, letting templates persist across runs of the same log
	// family. Ignored under NoCache.
	Cache *extract.TemplateCache
}

// Run processes all records, returning the successful extractions in input
// order and the aggregate statistics.
func (p *Pipeline) Run(recs []Record) ([]AreaRecord, *Stats) {
	out := make([]AreaRecord, 0, len(recs))
	st := p.stream(context.Background(), SliceSource(recs), func(ar AreaRecord) { out = append(out, ar) })
	return out, st
}

// RunStream processes a record stream with bounded memory: at most
// Workers+Buffer records are resident at once, independent of stream length
// (plus one cached template per distinct statement shape). emit is called
// for every successful extraction, in input order, from the calling
// goroutine; it may be nil when only the statistics matter.
//
// Cancelling ctx stops the run mid-stream: the feeder stops pulling from
// src, in-flight records finish extraction and are emitted, and the
// returned Stats cover exactly the records admitted before cancellation.
// Callers distinguish a drained source from a cancelled one via ctx.Err().
func (p *Pipeline) RunStream(ctx context.Context, src RecordSource, emit func(AreaRecord)) *Stats {
	return p.stream(ctx, src, emit)
}

type poolJob struct {
	ord int
	rec Record
}

type poolResult struct {
	ord int
	ar  *AreaRecord
}

// stream runs the work-stealing worker pool: a feeder admits records under a
// residency window, workers pull from a shared job channel (fast records
// drain past slow ones instead of waiting behind a static chunk boundary),
// and the collector reorders completions back to input order.
func (p *Pipeline) stream(ctx context.Context, src RecordSource, emit func(AreaRecord)) *Stats {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	buffer := p.Buffer
	if buffer <= 0 {
		buffer = 2 * workers
	}
	var cache *extract.TemplateCache
	if !p.NoCache {
		cache = p.Cache
		if cache == nil {
			cache = &extract.TemplateCache{}
		}
	}

	start := time.Now()
	jobs := make(chan poolJob, buffer)
	results := make(chan poolResult, buffer)
	// window admission: one token per unretired record. len(window) is the
	// current residency, so PeakInFlight ≤ workers+buffer by construction.
	window := make(chan struct{}, workers+buffer)
	partStats := make([]*Stats, workers)

	go func() {
		defer close(jobs)
		done := ctx.Done()
		ord := 0
		for {
			// A cancelled context stops the feed before the next pull, so a
			// blocked server shutdown never drains the rest of the source.
			select {
			case <-done:
				return
			default:
			}
			rec, ok := src()
			if !ok {
				return
			}
			select {
			case window <- struct{}{}:
			case <-done:
				return
			}
			jobs <- poolJob{ord: ord, rec: rec}
			ord++
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := newStats()
			partStats[w] = st
			for j := range jobs {
				results <- poolResult{ord: j.ord, ar: p.processOne(j.rec, st, cache)}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: retire completions in input order. pending holds at most
	// window-many out-of-order completions.
	pending := make(map[int]*AreaRecord)
	next := 0
	peak := 0
	for res := range results {
		if n := len(window); n > peak {
			peak = n
		}
		pending[res.ord] = res.ar
		for {
			ar, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if ar != nil && emit != nil {
				emit(*ar)
			}
			<-window
		}
	}

	total := newStats()
	for _, ps := range partStats {
		total.Merge(ps)
	}
	total.PeakInFlight = peak
	total.Elapsed = time.Since(start)
	return total
}

func newStats() *Stats {
	return &Stats{ParseFailures: make(map[string]int)}
}

// processOne classifies and extracts one record. With a cache, the record's
// fingerprint is tried first; any literal the lexer accepted but
// strconv.ParseFloat rejects (e.g. "1e999") makes parse success itself
// value-dependent, so such records bypass the cache entirely — no lookup, no
// store.
func (p *Pipeline) processOne(rec Record, st *Stats, cache *extract.TemplateCache) *AreaRecord {
	st.Total++
	recordsTotal.Inc()
	if cache != nil {
		t0 := time.Now()
		var (
			fp   uint64
			lits []sqlparser.Literal
			ferr error
		)
		if rec.FPValid {
			// Admission already lexed the statement (WAL fingerprinting);
			// reuse its pass instead of paying the lexer twice per record.
			fp, lits = rec.FP, rec.Lits
		} else {
			fp, lits, ferr = sqlparser.Fingerprint(rec.SQL)
		}
		if ferr == nil && !anyBadNum(lits) {
			if t, ok := cache.Get(fp); ok {
				if ar, done := p.applyTemplate(rec, t, lits, st, time.Since(t0)); done {
					st.CacheHits++
					cacheHitsTotal.Inc()
					return ar
				}
				// Uncacheable shape or failed per-record guard: slow path,
				// without re-storing.
				return p.slowPath(rec, st, nil, 0)
			}
			return p.slowPath(rec, st, cache, fp)
		}
	}
	return p.slowPath(rec, st, nil, 0)
}

func anyBadNum(lits []sqlparser.Literal) bool {
	for _, l := range lits {
		if l.BadNum {
			return true
		}
	}
	return false
}

// applyTemplate replays a cached outcome for rec. done is false when the
// record must take the slow path instead; in that case nothing has been
// observed in st yet. The fingerprint+lookup duration stands in for the
// Parse stage so Parse.Count stays equal to Total.
func (p *Pipeline) applyTemplate(rec Record, t *extract.AreaTemplate, lits []sqlparser.Literal, st *Stats, fpDur time.Duration) (*AreaRecord, bool) {
	switch {
	case t.Uncacheable:
		return nil, false
	case t.ParseFailCat != "":
		observeParse(st, fpDur)
		st.ParseFailures[t.ParseFailCat]++
		return nil, true
	case t.NonSelect:
		observeParse(st, fpDur)
		st.ParseFailures["non-select"]++
		return nil, true
	case t.ExtractErr != nil:
		observeParse(st, fpDur)
		st.Parsed++
		st.ExtractFailures++
		return nil, true
	}
	area, tm, ok := t.Rebind(p.Extractor, lits)
	if !ok {
		return nil, false
	}
	st.Parse.observe(fpDur)
	st.Parsed++
	return p.finish(rec, area, tm, st), true
}

// slowPath is the full parse → extract path. When cache is non-nil the
// outcome — including failures, which are as value-independent as successes
// — is stored under fp for the rest of the fingerprint class.
func (p *Pipeline) slowPath(rec Record, st *Stats, cache *extract.TemplateCache, fp uint64) *AreaRecord {
	st.FullParses++
	fullParsesTotal.Inc()
	t0 := time.Now()
	stmt, err := sqlparser.Parse(rec.SQL)
	observeParse(st, time.Since(t0))
	// Slow-path extractions carry a fingerprint only on the cached pipeline
	// (fp == 0 under NoCache); those are the ones worth surfacing — a class
	// that keeps missing the cache shows up here by fingerprint.
	if fp != 0 {
		defer func() { obs.DefaultSlowLog.Record("ingest-extract", fp, time.Since(t0)) }()
	}
	if err != nil {
		cat := classifyParseError(err)
		st.ParseFailures[cat]++
		if cache != nil {
			cache.Put(fp, &extract.AreaTemplate{ParseFailCat: cat})
		}
		return nil
	}
	sel, ok := stmt.(*sqlparser.SelectStatement)
	if !ok {
		st.ParseFailures["non-select"]++
		if cache != nil {
			cache.Put(fp, &extract.AreaTemplate{NonSelect: true})
		}
		return nil
	}
	st.Parsed++
	if cache != nil {
		area, tm, tmpl, err := p.Extractor.ExtractTemplate(sel)
		cache.Put(fp, tmpl)
		if err != nil {
			st.ExtractFailures++
			return nil
		}
		return p.finish(rec, area, tm, st)
	}
	area, tm, err := p.Extractor.ExtractWithTimings(sel)
	if err != nil {
		// A failed extraction never reaches the CNF/consolidation stages, so
		// observing its Extract time would leave the three stage Counts
		// disagreeing in the §6.6 report; all three stages are observed for
		// exactly the successfully extracted statements.
		st.ExtractFailures++
		return nil
	}
	return p.finish(rec, area, tm, st)
}

// finish records the post-extraction bookkeeping shared by the slow and
// cached paths.
func (p *Pipeline) finish(rec Record, area *extract.AccessArea, tm extract.Timings, st *Stats) *AreaRecord {
	st.Extract.observe(tm.Extract)
	st.CNF.observe(tm.CNF)
	st.Consolidate.observe(tm.Consolidate)
	extractObs.Observe(tm.Extract)
	cnfObs.Observe(tm.CNF)
	consolidateObs.Observe(tm.Consolidate)
	st.Extracted++
	if area.Truncated {
		st.Truncated++
	}
	if !area.Exact {
		st.Approximate++
	}
	if area.IsEmpty() {
		st.EmptyAreas++
	}
	return &AreaRecord{Record: rec, Area: area}
}

func classifyParseError(err error) string {
	var pe *sqlparser.ParseError
	if errors.As(err, &pe) {
		return pe.Category.String()
	}
	var le *sqlparser.LexError
	if errors.As(err, &le) {
		return "lex"
	}
	return "other"
}
