package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/skyserver"
	"repro/internal/traffic"
)

// taggedRecords spreads the synthetic workload across the three classes by
// explicit tags — known ground truth that survives the fan-out.
func taggedRecords(n int, seed int64) []qlog.Record {
	recs := synthRecords(n, seed)
	for i := range recs {
		recs[i].Class = traffic.Classes[i%3]
	}
	return recs
}

// newTrafficCluster is newInProcessCluster with traffic mining on: every
// shard server classifies and mines per class, and the coordinator serves
// the merged class-aware surfaces.
func newTrafficCluster(t *testing.T, n int, db *memdb.DB) *Coordinator {
	t.Helper()
	stats := seededStats(db)
	tcache := &extract.TemplateCache{}
	router := NewRouter(n, skyserver.Schema(), 0, tcache, 0)
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		s, err := serve.NewServer(serve.Config{
			Miner:      core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: stats},
			Templates:  tcache,
			BatchSize:  64,
			EpochAreas: 256,
			Traffic:    &traffic.Config{},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = NewLocalNode("shard-"+string(rune('0'+i)), s)
	}
	coord, err := NewCoordinator(Config{
		Router:         router,
		Nodes:          nodes,
		QueueSize:      512,
		BatchSize:      64,
		Eps:            0.06,
		Coverage:       db,
		Traffic:        true,
		HealthInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// The sharded partition gate: each class's merged report through a 4-shard
// coordinator must be byte-for-byte what a single batch mine of that class's
// records produces (under the full workload's registry evolution) — and the
// classless merged report must stay exactly the batch miner's.
func TestCoordinatorTrafficMatchesBatch(t *testing.T) {
	db := testDB()
	recs := taggedRecords(1500, 42)

	// Reference: one pipeline pass over the whole workload, each class's
	// areas fed to a private incremental miner in stream order.
	m := core.NewMiner(core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(db)})
	pipe := &qlog.Pipeline{Extractor: &extract.Extractor{Schema: skyserver.Schema(), Stats: m.Stats()}}
	areaRecs, _ := pipe.Run(recs)
	classTotal := make(map[string]int)
	for i := range recs {
		classTotal[recs[i].Class]++
	}
	want := make(map[string][]byte)
	for _, cls := range traffic.Classes {
		inc := m.Incremental()
		extracted := 0
		for i := range areaRecs {
			if areaRecs[i].Record.Class == cls {
				inc.Add(&areaRecs[i])
				extracted++
			}
		}
		res := inc.Recluster()
		res.PipelineStats = &qlog.Stats{Total: classTotal[cls], Extracted: extracted}
		res.AttachCoverage(db)
		var buf bytes.Buffer
		if err := report.Write(&buf, res, report.JSON, report.Options{Coverage: true}); err != nil {
			t.Fatal(err)
		}
		want[cls] = buf.Bytes()
	}
	batch := core.NewMiner(core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(db)}).MineRecords(recs)
	batch.AttachCoverage(db)

	coord := newTrafficCluster(t, 4, db)
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	for lo := 0; lo < len(recs); lo += 100 {
		hi := lo + 100
		if hi > len(recs) {
			hi = len(recs)
		}
		postUntilAccepted(t, ts.URL, recs[lo:hi])
	}
	mustFlush(t, ts.URL)

	sawClusters := false
	for _, cls := range traffic.Classes {
		code, hdr, got := get(t, ts.URL+"/report?class="+cls+"&format=json")
		if code != http.StatusOK {
			t.Fatalf("class %s report status %d: %s", cls, code, got)
		}
		if etag := hdr.Get("ETag"); etag == "" {
			t.Errorf("class %s report has no ETag", cls)
		}
		if hdr.Get("X-Merge-Exact") != "true" {
			t.Errorf("class %s X-Merge-Exact = %q, want true", cls, hdr.Get("X-Merge-Exact"))
		}
		if !bytes.Equal(got, want[cls]) {
			t.Errorf("class %s merged report diverged from batch partition:\n got: %s\nwant: %s", cls, got, want[cls])
		}
		if bytes.Contains(got, []byte(`"id"`)) {
			sawClusters = true
		}
	}
	if !sawClusters {
		t.Fatal("no class produced any cluster — the sharded partition gate tested nothing")
	}

	var wantGlobal bytes.Buffer
	if err := report.Write(&wantGlobal, batch, report.JSON, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	code, _, got := get(t, ts.URL+"/report?format=json")
	if code != http.StatusOK {
		t.Fatalf("global report status %d", code)
	}
	if !bytes.Equal(got, wantGlobal.Bytes()) {
		t.Errorf("classless merged report changed with traffic mining on:\n got: %s\nwant: %s", got, wantGlobal.Bytes())
	}

	// The merged interface table is served, ranked, and guarded.
	code, _, body := get(t, ts.URL+"/interfaces?top=5")
	if code != http.StatusOK {
		t.Fatalf("interfaces status %d: %s", code, body)
	}
	var ifr struct {
		Interfaces []traffic.Interface `json:"interfaces"`
		Tracked    int                 `json:"tracked"`
	}
	if err := json.Unmarshal(body, &ifr); err != nil {
		t.Fatal(err)
	}
	if len(ifr.Interfaces) == 0 || ifr.Tracked == 0 {
		t.Fatalf("merged interfaces empty: %s", body)
	}
	for i := 1; i < len(ifr.Interfaces); i++ {
		if ifr.Interfaces[i].Hits > ifr.Interfaces[i-1].Hits {
			t.Fatalf("merged interfaces not ranked by hits: %s", body)
		}
	}
	if code, _, _ := get(t, ts.URL+"/interfaces?top=0"); code != http.StatusBadRequest {
		t.Errorf("interfaces top=0 status %d, want 400", code)
	}
	for _, path := range []string{"/report?class=robot", "/drift?class=robot"} {
		if code, _, _ := get(t, ts.URL+path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
	}
}

// A traffic-off coordinator answers the class-aware surfaces with 409, like
// a traffic-off single server.
func TestCoordinatorTrafficDisabled(t *testing.T) {
	db := testDB()
	coord := newInProcessCluster(t, 1, db, "")
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	for _, path := range []string{"/report?class=bot", "/drift", "/interfaces"} {
		if code, _, _ := get(t, ts.URL+path); code != http.StatusConflict {
			t.Errorf("GET %s on traffic-off coordinator: status %d, want 409", path, code)
		}
	}
}

// runShardDriftScript drives one fresh 4-shard cluster through the two-burst
// ingest → flush script and returns the final merged /drift body.
func runShardDriftScript(t *testing.T, db *memdb.DB, recs []qlog.Record) []byte {
	t.Helper()
	coord := newTrafficCluster(t, 4, db)
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	half := len(recs) / 2
	for lo := 0; lo < half; lo += 173 {
		hi := lo + 173
		if hi > half {
			hi = half
		}
		postUntilAccepted(t, ts.URL, recs[lo:hi])
	}
	mustFlush(t, ts.URL)
	for lo := half; lo < len(recs); lo += 97 {
		hi := lo + 97
		if hi > len(recs) {
			hi = len(recs)
		}
		postUntilAccepted(t, ts.URL, recs[lo:hi])
	}
	mustFlush(t, ts.URL)
	code, _, body := get(t, ts.URL+"/drift")
	if code != http.StatusOK {
		t.Fatalf("drift status %d: %s", code, body)
	}
	return body
}

// The sharded drift determinism gate: the same workload through the same
// flush script on two fresh 4-shard clusters emits byte-identical merged
// /drift logs — shard-local drift plus the coordinator's value-ordered merge
// is a pure function of the ingest script.
func TestCoordinatorTrafficDriftDeterministic(t *testing.T) {
	db := testDB()
	recs := taggedRecords(1400, 7)
	a := runShardDriftScript(t, db, recs)
	b := runShardDriftScript(t, db, recs)
	if !bytes.Equal(a, b) {
		t.Fatalf("merged drift logs diverged between identical runs:\n a: %s\n b: %s", a, b)
	}
	if bytes.Contains(a, []byte(`"count": 0`)) || !bytes.Contains(a, []byte(`"appeared"`)) {
		t.Fatalf("merged drift log is trivial — the determinism gate tested nothing: %s", a)
	}
}
