package interestcache_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/interestcache"
	"repro/internal/memdb"
)

// TestWorkloadOracle is the correctness gate of ISSUE 4: mine the Table-1
// synthetic workload, install the clusters, then replay every workload
// statement through the cache with the byte-identity oracle enabled. Every
// cache-served result must be byte-identical to direct execution, and the
// error outcome of every statement (including the workload's parse failures
// and admin junk) must match direct execution exactly.
func TestWorkloadOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload oracle is slow")
	}
	env := experiments.NewEnvRows(2500, 11, 400)
	miner := env.Miner()
	res := miner.MineRecords(env.Records)
	if len(res.Clusters) == 0 {
		t.Fatal("mining produced no clusters")
	}
	opts := memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	cache := interestcache.New(interestcache.Config{
		DB:        env.DB,
		Extractor: &extract.Extractor{Schema: env.Schema, Stats: miner.Stats()},
		Templates: &extract.TemplateCache{},
		Exec:      opts,
		Verify:    true,
	})
	cache.Install(1, res.Clusters)
	if len(cache.Regions()) == 0 {
		t.Fatal("no regions prefetched")
	}

	for _, rec := range env.Records {
		rs, info, err := cache.Query(rec.SQL)
		direct, derr := env.DB.ExecuteSQL(rec.SQL, opts)
		if (err == nil) != (derr == nil) {
			t.Fatalf("error mismatch for %q: cache=%v direct=%v", rec.SQL, err, derr)
		}
		if err != nil {
			continue
		}
		if string(interestcache.EncodeResultSet(rs)) != string(interestcache.EncodeResultSet(direct)) {
			t.Fatalf("result mismatch (hit=%v region=%d) for %q", info.Hit, info.RegionID, rec.SQL)
		}
	}
	m := cache.Metrics()
	if m.VerifyFailed != 0 {
		t.Fatalf("oracle failures: %+v", m)
	}
	if m.Hits == 0 {
		t.Fatal("workload produced no cache hits")
	}
	total := m.Hits + m.Misses
	ratio := float64(m.Hits) / float64(total)
	t.Logf("hits=%d misses=%d ratio=%.3f regions=%d verify_checked=%d",
		m.Hits, m.Misses, ratio, m.Regions, m.VerifyChecked)
	if ratio < 0.3 {
		t.Errorf("hit ratio %.3f below sanity floor 0.3", ratio)
	}
}

// TestComposedWorkloadOracle replays the same workload against a region set
// where every splittable cluster is bisected into two half-regions, so
// statements that used to be single-region hits must be assembled from
// covering sets (positional-dedup union stores) and aggregate probes from
// partial-aggregate combines. Every served result — whatever the path —
// must stay byte-identical to direct execution.
func TestComposedWorkloadOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload oracle is slow")
	}
	env := experiments.NewEnvRows(2500, 11, 400)
	miner := env.Miner()
	res := miner.MineRecords(env.Records)
	if len(res.Clusters) == 0 {
		t.Fatal("mining produced no clusters")
	}
	opts := memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	cache := interestcache.New(interestcache.Config{
		DB:        env.DB,
		Extractor: &extract.Extractor{Schema: env.Schema, Stats: miner.Stats()},
		Templates: &extract.TemplateCache{},
		Exec:      opts,
		Verify:    true,
	})
	split := experiments.SplitClusters(res.Clusters)
	if len(split) <= len(res.Clusters) {
		t.Fatalf("no cluster was splittable: %d -> %d", len(res.Clusters), len(split))
	}
	cache.Install(1, split)

	probes := experiments.AggProbes(res.Clusters)
	statements := make([]string, 0, len(env.Records)+len(probes))
	for _, rec := range env.Records {
		statements = append(statements, rec.SQL)
	}
	statements = append(statements, probes...)
	for _, sql := range statements {
		rs, info, err := cache.Query(sql)
		direct, derr := env.DB.ExecuteSQL(sql, opts)
		if (err == nil) != (derr == nil) {
			t.Fatalf("error mismatch for %q: cache=%v direct=%v", sql, err, derr)
		}
		if err != nil {
			continue
		}
		if string(interestcache.EncodeResultSet(rs)) != string(interestcache.EncodeResultSet(direct)) {
			t.Fatalf("result mismatch (hit=%v path=%s regions=%v) for %q",
				info.Hit, info.Path, info.Regions, sql)
		}
	}
	m := cache.Metrics()
	if m.VerifyFailed != 0 {
		t.Fatalf("oracle failures: %+v", m)
	}
	if m.ComposedHits == 0 {
		t.Fatal("split regions produced no composed hits")
	}
	if len(probes) > 0 && m.PreaggHits == 0 {
		t.Errorf("aggregate probes produced no partial-aggregate combines (agg=%d preagg=%d)",
			m.AggHits, m.PreaggHits)
	}
	t.Logf("hits=%d misses=%d composed=%d preagg=%d agg=%d verify_checked=%d regions=%d",
		m.Hits, m.Misses, m.ComposedHits, m.PreaggHits, m.AggHits, m.VerifyChecked, m.Regions)
}
