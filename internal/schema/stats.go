package schema

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/interval"
)

// Stats is the access(a)/content(a) registry of Section 5.3. For every
// numeric column a it tracks
//
//	content(a) — an estimate of the minimum bounding interval of the data,
//	access(a)  — content(a) unioned (as a hull) with every constant that
//	             queries in the log referred to,
//
// and for every categorical column the corresponding value sets. Following
// the paper, content is seeded from a small data sample whose observed range
// [m, M] is doubled to [m - (M-m)/2, M + (M-m)/2], and access grows as
// queries are processed ("if it accesses data not falling into access(a),
// we update this range accordingly").
//
// Stats is safe for concurrent use; the clustering stage reads it from many
// goroutines while the extraction stage may still be appending.
type Stats struct {
	mu          sync.RWMutex
	numeric     map[string]*numericStat
	categorical map[string]*categoricalStat
	// gen counts effective mutations (see Generation in snapshot.go).
	gen uint64
}

type numericStat struct {
	content interval.Interval
	access  interval.Interval
}

type categoricalStat struct {
	content map[string]struct{}
	access  map[string]struct{}
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		numeric:     make(map[string]*numericStat),
		categorical: make(map[string]*categoricalStat),
	}
}

// SeedNumericSample seeds content(a) and access(a) for column a (qualified
// name) from a data sample, applying the paper's range-doubling rule.
func (s *Stats) SeedNumericSample(column string, sample []float64) {
	if len(sample) == 0 {
		return
	}
	m, M := sample[0], sample[0]
	for _, v := range sample[1:] {
		if v < m {
			m = v
		}
		if v > M {
			M = v
		}
	}
	half := (M - m) / 2
	iv := interval.Closed(m-half, M+half)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numeric[column] = &numericStat{content: iv, access: iv}
	s.gen++
}

// SeedNumericContent seeds content(a) directly with a known interval (used
// when the exact content box is available, e.g. from the synthetic
// generator), with access(a) starting equal to it.
func (s *Stats) SeedNumericContent(column string, content interval.Interval) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.numeric[column] = &numericStat{content: content, access: content}
	s.gen++
}

// SeedCategorical seeds the categorical content/access sets for column a.
func (s *Stats) SeedCategorical(column string, values []string) {
	cs := &categoricalStat{content: make(map[string]struct{}), access: make(map[string]struct{})}
	for _, v := range values {
		cs.content[v] = struct{}{}
		cs.access[v] = struct{}{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.categorical[column] = cs
	s.gen++
}

// ObserveNumeric records that a query referred to constant v on column a,
// growing access(a) if v falls outside it.
func (s *Stats) ObserveNumeric(column string, v float64) {
	if !isFinite(v) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.numeric[column]
	if !ok {
		ns = &numericStat{content: interval.Point(v), access: interval.Point(v)}
		s.numeric[column] = ns
		s.gen++
		return
	}
	grown := ns.access.Hull(interval.Point(v))
	if grown != ns.access {
		ns.access = grown
		s.gen++
	}
}

// ObserveCategorical records that a query referred to value v on column a.
func (s *Stats) ObserveCategorical(column string, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.categorical[column]
	if !ok {
		cs = &categoricalStat{content: make(map[string]struct{}), access: make(map[string]struct{})}
		s.categorical[column] = cs
	}
	if _, seen := cs.access[v]; !seen {
		cs.access[v] = struct{}{}
		s.gen++
	}
}

// NumericAccess returns access(a) for a numeric column. When the column has
// never been seeded or observed, ok is false and the caller should fall back
// to an uninformative default.
func (s *Stats) NumericAccess(column string) (interval.Interval, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns, ok := s.numeric[column]
	if !ok {
		return interval.Interval{}, false
	}
	return ns.access, true
}

// NumericContent returns content(a) for a numeric column.
func (s *Stats) NumericContent(column string) (interval.Interval, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ns, ok := s.numeric[column]
	if !ok {
		return interval.Interval{}, false
	}
	return ns.content, true
}

// CategoricalAccess returns the access value set of a categorical column.
func (s *Stats) CategoricalAccess(column string) (map[string]struct{}, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.categorical[column]
	if !ok {
		return nil, false
	}
	out := make(map[string]struct{}, len(cs.access))
	for v := range cs.access {
		out[v] = struct{}{}
	}
	return out, true
}

// CategoricalContent returns the content value set of a categorical column.
func (s *Stats) CategoricalContent(column string) (map[string]struct{}, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.categorical[column]
	if !ok {
		return nil, false
	}
	out := make(map[string]struct{}, len(cs.content))
	for v := range cs.content {
		out[v] = struct{}{}
	}
	return out, true
}

// NumericColumns returns the qualified names of all tracked numeric columns
// in sorted order.
func (s *Stats) NumericColumns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedKeys(s.numeric)
}

// String summarises the registry, one column per line, for diagnostics.
func (s *Stats) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	for _, name := range sortedKeys(s.numeric) {
		ns := s.numeric[name]
		fmt.Fprintf(&b, "%s: content=%s access=%s\n", name, ns.content, ns.access)
	}
	for _, name := range sortedKeys(s.categorical) {
		cs := s.categorical[name]
		fmt.Fprintf(&b, "%s: |content|=%d |access|=%d\n", name, len(cs.content), len(cs.access))
	}
	return b.String()
}
