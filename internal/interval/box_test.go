package interval

import (
	"math"
	"testing"
)

func TestContainsBox(t *testing.T) {
	box := func(dims map[string]Interval) *Box {
		b := NewBox()
		for k, v := range dims {
			b.Set(k, v)
		}
		return b
	}
	cases := []struct {
		name string
		b, o *Box
		want bool
	}{
		{"empty in anything", box(map[string]Interval{"a": Closed(0, 1)}),
			box(map[string]Interval{"a": Empty()}), true},
		{"unconstrained other fails constrained dim",
			box(map[string]Interval{"a": Closed(0, 1)}), NewBox(), false},
		{"unconstrained other passes full dim",
			box(map[string]Interval{"a": Full()}), NewBox(), true},
		{"subset", box(map[string]Interval{"a": Closed(0, 10)}),
			box(map[string]Interval{"a": Closed(2, 3)}), true},
		{"overlap not subset", box(map[string]Interval{"a": Closed(0, 10)}),
			box(map[string]Interval{"a": Closed(5, 15)}), false},
		{"extra dim on other is fine", box(map[string]Interval{"a": Closed(0, 10)}),
			box(map[string]Interval{"a": Closed(1, 2), "b": Closed(7, 8)}), true},
		{"missing dim on other fails", box(map[string]Interval{"a": Closed(0, 10), "b": Closed(0, 1)}),
			box(map[string]Interval{"a": Closed(1, 2)}), false},
		{"open endpoint boundary", box(map[string]Interval{"a": Open(0, 1)}),
			box(map[string]Interval{"a": Closed(0, 1)}), false},
		{"closed contains open at boundary", box(map[string]Interval{"a": Closed(0, 1)}),
			box(map[string]Interval{"a": Open(0, 1)}), true},
		{"one-sided ray", box(map[string]Interval{"a": Above(5, false)}),
			box(map[string]Interval{"a": Above(5, false)}), true},
		{"ray rejects closed-at-infinity degenerate", box(map[string]Interval{"a": Above(5, false)}),
			box(map[string]Interval{"a": Closed(5, math.Inf(1))}), false},
		{"empty region dim rejects non-empty query",
			box(map[string]Interval{"a": Empty()}),
			box(map[string]Interval{"a": Point(1)}), false},
	}
	for _, c := range cases {
		if got := c.b.ContainsBox(c.o); got != c.want {
			t.Errorf("%s: ContainsBox = %v, want %v (b=%v o=%v)", c.name, got, c.want, c.b, c.o)
		}
	}
}

// Containment must agree with point membership: any point inside other (on
// the union of both boxes' dimensions) is inside b whenever b contains other.
func TestContainsBoxPointConsistency(t *testing.T) {
	b := NewBox()
	b.Set("x", Closed(0, 10))
	b.Set("y", Open(-1, 1))
	o := NewBox()
	o.Set("x", Closed(2, 3))
	o.Set("y", Closed(-0.5, 0.5))
	if !b.ContainsBox(o) {
		t.Fatalf("expected containment")
	}
	for _, x := range []float64{2, 2.5, 3} {
		for _, y := range []float64{-0.5, 0, 0.5} {
			pt := map[string]float64{"x": x, "y": y}
			if o.ContainsPoint(pt) && !b.ContainsPoint(pt) {
				t.Fatalf("point %v in o but not in b", pt)
			}
		}
	}
}
