// Recommend: the QueRIE-style orientation of Sections 3.2/6.3 — given what
// one user has been querying, suggest the community hotspots (aggregated
// access areas) nearest to their interests that they have not explored yet.
package main

import (
	"fmt"

	skyaccess "repro"
)

func main() {
	schema := skyaccess.SkyServerSchema()
	db := skyaccess.SkyServerDatabase(800, 1)
	stats := skyaccess.NewAccessStats()
	skyaccess.SeedStatsFromDatabase(db, stats)

	// Mine the community's interests from a synthetic log.
	miner := skyaccess.NewMiner(skyaccess.Config{Schema: schema, Stats: stats})
	result := miner.MineRecords(skyaccess.GenerateSkyServerLog(6000, 42))
	fmt.Printf("community log mined: %d clusters\n\n", len(result.Clusters))

	// The user has been probing low photometric redshifts.
	ex := skyaccess.NewExtractor(schema)
	var mine []*skyaccess.AccessArea
	for _, sql := range []string{
		"SELECT objid FROM Photoz WHERE z >= 0 AND z <= 0.1",
		"SELECT objid, zerr FROM Photoz WHERE z BETWEEN 0.02 AND 0.08",
	} {
		if a, err := ex.ExtractSQL(sql); err == nil {
			mine = append(mine, a)
		}
	}

	fmt.Println("you queried:")
	for _, a := range mine {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println("\nothers near you are querying (nearest first):")
	for _, rec := range miner.Recommend(result, mine, 5) {
		expr := rec.Cluster.Expr()
		if len(expr) > 80 {
			expr = expr[:80] + "…"
		}
		fmt.Printf("  d=%.3f  %5d queries  %s\n", rec.Distance, rec.Cluster.Cardinality, expr)
	}
}
