package memdb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqlparser"
)

// aggContext carries the envs of one group during aggregate evaluation.
type aggContext struct {
	group []*env
}

// isAggregateQuery reports whether the statement needs grouped execution.
func isAggregateQuery(sel *sqlparser.SelectStatement) bool {
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return true
	}
	for _, item := range sel.Select {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *sqlparser.UnaryExpr:
		return exprHasAggregate(x.X)
	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			if exprHasAggregate(w.When) || exprHasAggregate(w.Then) {
				return true
			}
		}
		if x.Else != nil {
			return exprHasAggregate(x.Else)
		}
	}
	return false
}

// executeAggregate groups envs and evaluates aggregate projections/HAVING.
func (db *DB) executeAggregate(sel *sqlparser.SelectStatement, envs []*env) (*ResultSet, error) {
	groups := make(map[string][]*env)
	var order []string
	for _, e := range envs {
		var key strings.Builder
		for _, g := range sel.GroupBy {
			v, err := db.evalScalar(g, e, nil)
			if err != nil {
				return nil, err
			}
			key.WriteString(v.String())
			key.WriteByte('\x00')
		}
		k := key.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	// A global aggregate without GROUP BY over zero rows still yields one
	// group (COUNT(*) = 0).
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		order = append(order, "")
		groups[""] = nil
	}
	cols := db.projectionColumns(sel, envs)
	rs := &ResultSet{Columns: cols}
	type sortable struct {
		row  []Value
		keys []Value
	}
	var items []sortable
	for _, k := range order {
		group := groups[k]
		agg := &aggContext{group: group}
		var repr *env
		if len(group) > 0 {
			repr = group[0]
		} else {
			repr = &env{}
		}
		if sel.Having != nil {
			ok, err := db.evalBool(sel.Having, repr, agg)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		row, err := db.projectRow(sel, repr, agg)
		if err != nil {
			return nil, err
		}
		var keys []Value
		for _, o := range sel.OrderBy {
			v, err := db.evalScalar(o.Expr, repr, agg)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		items = append(items, sortable{row, keys})
	}
	sortRows(items, sel.OrderBy, func(s sortable) []Value { return s.keys })
	for _, it := range items {
		rs.Rows = append(rs.Rows, it.row)
	}
	return rs, nil
}

// evalScalar evaluates an expression to a value.
func (db *DB) evalScalar(e sqlparser.Expr, env *env, agg *aggContext) (Value, error) {
	switch x := e.(type) {
	case *sqlparser.NumberLit:
		return N(x.Value), nil
	case *sqlparser.StringLit:
		return S(x.Value), nil
	case *sqlparser.NullLit:
		return NullValue(), nil
	case *sqlparser.ParamRef:
		return NullValue(), nil
	case *sqlparser.ColumnRef:
		if v, ok := env.lookup(x.Table, x.Name); ok {
			return v, nil
		}
		return Value{}, fmt.Errorf("memdb: unknown column %q", x.Qualified())
	case *sqlparser.UnaryExpr:
		if x.Op == "-" {
			v, err := db.evalScalar(x.X, env, agg)
			if err != nil {
				return Value{}, err
			}
			if v.Kind != Num {
				return NullValue(), nil
			}
			return N(-v.Num), nil
		}
		// NOT in scalar position: evaluate as Boolean 0/1.
		ok, err := db.evalBool(x, env, agg)
		if err != nil {
			return Value{}, err
		}
		return N(boolToNum(ok)), nil
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/", "%":
			l, err := db.evalScalar(x.L, env, agg)
			if err != nil {
				return Value{}, err
			}
			r, err := db.evalScalar(x.R, env, agg)
			if err != nil {
				return Value{}, err
			}
			return arith(x.Op, l, r)
		case "||":
			l, err := db.evalScalar(x.L, env, agg)
			if err != nil {
				return Value{}, err
			}
			r, err := db.evalScalar(x.R, env, agg)
			if err != nil {
				return Value{}, err
			}
			if l.Kind == Null || r.Kind == Null {
				return NullValue(), nil
			}
			return S(valueText(l) + valueText(r)), nil
		default:
			ok, err := db.evalBool(x, env, agg)
			if err != nil {
				return Value{}, err
			}
			return N(boolToNum(ok)), nil
		}
	case *sqlparser.FuncCall:
		return db.evalFunc(x, env, agg)
	case *sqlparser.ScalarSubquery:
		rs, err := db.execute(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		if len(rs.Rows) == 0 || len(rs.Rows[0]) == 0 {
			return NullValue(), nil
		}
		return rs.Rows[0][0], nil
	case *sqlparser.CaseExpr:
		return db.evalCase(x, env, agg)
	default:
		ok, err := db.evalBool(e, env, agg)
		if err != nil {
			return Value{}, err
		}
		return N(boolToNum(ok)), nil
	}
}

func valueText(v Value) string {
	if v.Kind == Num {
		return fmt.Sprintf("%g", v.Num)
	}
	return v.Str
}

func boolToNum(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func arith(op string, l, r Value) (Value, error) {
	if l.Kind != Num || r.Kind != Num {
		return NullValue(), nil
	}
	switch op {
	case "+":
		return N(l.Num + r.Num), nil
	case "-":
		return N(l.Num - r.Num), nil
	case "*":
		return N(l.Num * r.Num), nil
	case "/":
		if r.Num == 0 {
			return NullValue(), nil
		}
		return N(l.Num / r.Num), nil
	case "%":
		if r.Num == 0 {
			return NullValue(), nil
		}
		return N(math.Mod(l.Num, r.Num)), nil
	}
	return Value{}, fmt.Errorf("memdb: unknown arithmetic operator %q", op)
}

func (db *DB) evalCase(x *sqlparser.CaseExpr, env *env, agg *aggContext) (Value, error) {
	for _, w := range x.Whens {
		if x.Operand != nil {
			op, err := db.evalScalar(x.Operand, env, agg)
			if err != nil {
				return Value{}, err
			}
			wv, err := db.evalScalar(w.When, env, agg)
			if err != nil {
				return Value{}, err
			}
			if op.Equal(wv) {
				return db.evalScalar(w.Then, env, agg)
			}
			continue
		}
		ok, err := db.evalBool(w.When, env, agg)
		if err != nil {
			return Value{}, err
		}
		if ok {
			return db.evalScalar(w.Then, env, agg)
		}
	}
	if x.Else != nil {
		return db.evalScalar(x.Else, env, agg)
	}
	return NullValue(), nil
}

// evalFunc evaluates aggregates (over the group context) and a small set of
// scalar functions.
func (db *DB) evalFunc(fc *sqlparser.FuncCall, env *env, agg *aggContext) (Value, error) {
	name := strings.ToUpper(fc.Name)
	if fc.IsAggregate() {
		if agg == nil {
			return Value{}, fmt.Errorf("memdb: aggregate %s outside GROUP BY context", name)
		}
		return db.evalAggregate(fc, agg)
	}
	args := make([]Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := db.evalScalar(a, env, agg)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch name {
	case "ABS":
		if len(args) == 1 && args[0].Kind == Num {
			return N(math.Abs(args[0].Num)), nil
		}
	case "SQRT":
		if len(args) == 1 && args[0].Kind == Num && args[0].Num >= 0 {
			return N(math.Sqrt(args[0].Num)), nil
		}
	case "FLOOR":
		if len(args) == 1 && args[0].Kind == Num {
			return N(math.Floor(args[0].Num)), nil
		}
	case "CEILING", "CEIL":
		if len(args) == 1 && args[0].Kind == Num {
			return N(math.Ceil(args[0].Num)), nil
		}
	case "UPPER":
		if len(args) == 1 && args[0].Kind == Str {
			return S(strings.ToUpper(args[0].Str)), nil
		}
	case "LOWER":
		if len(args) == 1 && args[0].Kind == Str {
			return S(strings.ToLower(args[0].Str)), nil
		}
	case "LEN", "LENGTH":
		if len(args) == 1 && args[0].Kind == Str {
			return N(float64(len(args[0].Str))), nil
		}
	case "LEFT":
		if len(args) == 2 && args[0].Kind == Str && args[1].Kind == Num {
			n := int(args[1].Num)
			if n > len(args[0].Str) {
				n = len(args[0].Str)
			}
			if n < 0 {
				n = 0
			}
			return S(args[0].Str[:n]), nil
		}
	case "RIGHT":
		if len(args) == 2 && args[0].Kind == Str && args[1].Kind == Num {
			n := int(args[1].Num)
			if n > len(args[0].Str) {
				n = len(args[0].Str)
			}
			if n < 0 {
				n = 0
			}
			return S(args[0].Str[len(args[0].Str)-n:]), nil
		}
	}
	// Unknown function (e.g. a SkyServer UDF in scalar position): NULL.
	return NullValue(), nil
}

func (db *DB) evalAggregate(fc *sqlparser.FuncCall, agg *aggContext) (Value, error) {
	name := strings.ToUpper(fc.Name)
	if name == "COUNT" && fc.Star {
		return N(float64(len(agg.group))), nil
	}
	if len(fc.Args) != 1 {
		return Value{}, fmt.Errorf("memdb: %s expects one argument", name)
	}
	var vals []Value
	seen := map[string]struct{}{}
	for _, e := range agg.group {
		v, err := db.evalScalar(fc.Args[0], e, nil)
		if err != nil {
			return Value{}, err
		}
		if v.Kind == Null {
			continue
		}
		if fc.Distinct {
			k := v.String()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		vals = append(vals, v)
	}
	switch name {
	case "COUNT":
		return N(float64(len(vals))), nil
	case "SUM":
		if len(vals) == 0 {
			return NullValue(), nil
		}
		sum := 0.0
		for _, v := range vals {
			sum += v.Num
		}
		return N(sum), nil
	case "AVG":
		if len(vals) == 0 {
			return NullValue(), nil
		}
		sum := 0.0
		for _, v := range vals {
			sum += v.Num
		}
		return N(sum / float64(len(vals))), nil
	case "MIN":
		return extremum(vals, true), nil
	case "MAX":
		return extremum(vals, false), nil
	}
	return Value{}, fmt.Errorf("memdb: unknown aggregate %s", name)
}

func extremum(vals []Value, min bool) Value {
	if len(vals) == 0 {
		return NullValue()
	}
	best := vals[0]
	for _, v := range vals[1:] {
		c, ok := v.Compare(best)
		if !ok {
			continue
		}
		if (min && c < 0) || (!min && c > 0) {
			best = v
		}
	}
	return best
}

// evalBool evaluates a Boolean expression (two-valued logic; NULL
// comparisons are false).
func (db *DB) evalBool(e sqlparser.Expr, env *env, agg *aggContext) (bool, error) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			l, err := db.evalBool(x.L, env, agg)
			if err != nil || !l {
				return false, err
			}
			return db.evalBool(x.R, env, agg)
		case "OR":
			l, err := db.evalBool(x.L, env, agg)
			if err != nil || l {
				return l, err
			}
			return db.evalBool(x.R, env, agg)
		case "=", "<>", "<", "<=", ">", ">=":
			l, err := db.evalScalar(x.L, env, agg)
			if err != nil {
				return false, err
			}
			r, err := db.evalScalar(x.R, env, agg)
			if err != nil {
				return false, err
			}
			return compareValues(x.Op, l, r), nil
		default:
			v, err := db.evalScalar(x, env, agg)
			if err != nil {
				return false, err
			}
			return v.Kind == Num && v.Num != 0, nil
		}
	case *sqlparser.UnaryExpr:
		if x.Op == "NOT" {
			inner, err := db.evalBool(x.X, env, agg)
			return !inner, err
		}
		v, err := db.evalScalar(x, env, agg)
		if err != nil {
			return false, err
		}
		return v.Kind == Num && v.Num != 0, nil
	case *sqlparser.BetweenExpr:
		v, err := db.evalScalar(x.X, env, agg)
		if err != nil {
			return false, err
		}
		lo, err := db.evalScalar(x.Lo, env, agg)
		if err != nil {
			return false, err
		}
		hi, err := db.evalScalar(x.Hi, env, agg)
		if err != nil {
			return false, err
		}
		res := compareValues(">=", v, lo) && compareValues("<=", v, hi)
		if x.Not {
			res = !res
		}
		return res, nil
	case *sqlparser.InListExpr:
		v, err := db.evalScalar(x.X, env, agg)
		if err != nil {
			return false, err
		}
		found := false
		for _, item := range x.List {
			iv, err := db.evalScalar(item, env, agg)
			if err != nil {
				return false, err
			}
			if v.Equal(iv) {
				found = true
				break
			}
		}
		if x.Not {
			return !found, nil
		}
		return found, nil
	case *sqlparser.InSubqueryExpr:
		v, err := db.evalScalar(x.X, env, agg)
		if err != nil {
			return false, err
		}
		rs, err := db.execute(x.Sub, env)
		if err != nil {
			return false, err
		}
		found := false
		for _, row := range rs.Rows {
			if len(row) > 0 && v.Equal(row[0]) {
				found = true
				break
			}
		}
		if x.Not {
			return !found, nil
		}
		return found, nil
	case *sqlparser.ExistsExpr:
		rs, err := db.execute(x.Sub, env)
		if err != nil {
			return false, err
		}
		res := len(rs.Rows) > 0
		if x.Not {
			res = !res
		}
		return res, nil
	case *sqlparser.QuantifiedExpr:
		v, err := db.evalScalar(x.X, env, agg)
		if err != nil {
			return false, err
		}
		rs, err := db.execute(x.Sub, env)
		if err != nil {
			return false, err
		}
		if x.All {
			for _, row := range rs.Rows {
				if len(row) == 0 || !compareValues(x.Op, v, row[0]) {
					return false, nil
				}
			}
			return true, nil
		}
		for _, row := range rs.Rows {
			if len(row) > 0 && compareValues(x.Op, v, row[0]) {
				return true, nil
			}
		}
		return false, nil
	case *sqlparser.LikeExpr:
		v, err := db.evalScalar(x.X, env, agg)
		if err != nil {
			return false, err
		}
		p, err := db.evalScalar(x.Pattern, env, agg)
		if err != nil {
			return false, err
		}
		if v.Kind != Str || p.Kind != Str {
			return false, nil
		}
		res := likeMatch(p.Str, v.Str)
		if x.Not {
			res = !res
		}
		return res, nil
	case *sqlparser.IsNullExpr:
		v, err := db.evalScalar(x.X, env, agg)
		if err != nil {
			return false, err
		}
		res := v.Kind == Null
		if x.Not {
			res = !res
		}
		return res, nil
	default:
		v, err := db.evalScalar(e, env, agg)
		if err != nil {
			return false, err
		}
		return v.Kind == Num && v.Num != 0, nil
	}
}

func compareValues(op string, l, r Value) bool {
	if op == "=" {
		return l.Equal(r)
	}
	if op == "<>" {
		if l.Kind == Null || r.Kind == Null {
			return false
		}
		return !l.Equal(r)
	}
	c, ok := l.Compare(r)
	if !ok {
		return false
	}
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(p[1:], s[i:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(p[1:], s[1:])
	default:
		return s != "" && equalFoldByte(s[0], p[0]) && likeRec(p[1:], s[1:])
	}
}

func equalFoldByte(a, b byte) bool {
	la, lb := a, b
	if la >= 'A' && la <= 'Z' {
		la += 'a' - 'A'
	}
	if lb >= 'A' && lb <= 'Z' {
		lb += 'a' - 'A'
	}
	return la == lb
}
