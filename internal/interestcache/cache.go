package interestcache

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/memdb"
	"repro/internal/obs"
	"repro/internal/sqlparser"
)

// Semantic-cache instruments: lookup and prefetch latency histograms in the
// Default registry, plus slow-query-log entries covering the full
// extraction+execution time of each Query, keyed by statement fingerprint
// (never raw SQL).
var (
	queryStage    = obs.NewStage("interestcache_query")
	lookupStage   = obs.NewStage("interestcache_lookup")
	prefetchStage = obs.NewStage("interestcache_prefetch")

	prefetchRegionsTotal = obs.NewCounter("skyaccess_interestcache_prefetch_regions_total",
		"regions prefetched across all Install calls")
)

// Config wires a Cache to its data source and extraction path.
type Config struct {
	// DB is the authoritative database: the prefetch source and the
	// fall-through execution target.
	DB *memdb.DB
	// Extractor maps statements to access areas. Share the miner's
	// extractor so cache decisions see the same schema and statistics.
	Extractor *extract.Extractor
	// Templates is the fingerprint → extraction-template cache. Share the
	// pipeline's instance so templates warmed by ingestion serve queries.
	Templates *extract.TemplateCache
	// Exec is applied identically to region-store and direct execution.
	Exec memdb.ExecOptions
	// Verify enables the correctness oracle: every cache-served result is
	// checked byte-for-byte against direct execution, and on mismatch the
	// direct result is returned and the failure counted. For tests and
	// the semcacheperf harness.
	Verify bool

	// BudgetBytes caps the total byte footprint of resident region stores.
	// <= 0 means unlimited (every candidate region is materialised, the
	// v1 behaviour). See heat.go for the admission policy.
	BudgetBytes int64
	// ProbationFraction is the slice of the budget reserved for zero-heat
	// newcomer regions (default 0.15).
	ProbationFraction float64
	// HeatDecay is the per-install aging factor applied to the heat book
	// (default 0.5).
	HeatDecay float64
	// RegionTTL bounds per-region staleness. 0 keeps the v1 behaviour:
	// every Install rebuilds every admitted store. When positive, a region
	// whose identity survives re-mining keeps its store across Install
	// while younger than the TTL, and a hit's store age is surfaced as
	// Info.Staleness; stores older than the TTL miss with reason "stale".
	RegionTTL time.Duration
	// ComposeMax caps the covering-set size for multi-region composition
	// (default 4; negative disables composition).
	ComposeMax int
}

// snapshot is one epoch's immutable region set. Queries load it once and use
// it throughout; Install publishes a fresh snapshot atomically, so a
// re-cluster never mixes regions of different generations in one lookup.
type snapshot struct {
	generation int64
	regions    []*Region
	// shadows are this generation's non-admitted candidates: area metadata
	// without stores, scanned on miss to credit near-miss heat.
	shadows []*Region
	index   *containmentIndex
	// composed caches union stores per cover (coverKey → *memdb.DB).
	composed sync.Map
	// bytesResident totals the admitted stores' byte footprint.
	bytesResident int64
}

// Cache is the semantic result cache. Zero value is not usable; construct
// with New.
type Cache struct {
	cfg  Config
	snap atomic.Pointer[snapshot]

	// budget is the live byte budget (runtime-adjustable via SetBudget).
	budget atomic.Int64
	// book carries per-identity heat across generations.
	book *heatBook
	// installMu serialises Install and SetBudget.
	installMu sync.Mutex

	// shapes records, per statement fingerprint, the statement's shape
	// class (safe / aggregate / unsafe — see shapeClassOf). The verdict is
	// shape-level, so it is shared by all statements with the fingerprint.
	shapes sync.Map // uint64 → shapeClass

	// plans registers distinct aggregate-plan signatures seen by the agg
	// path so Install can pre-build the per-region group books.
	plansMu sync.Mutex
	plans   []*aggPlan

	hits            atomic.Int64
	misses          atomic.Int64
	bytesServed     atomic.Int64
	verifyChecked   atomic.Int64
	verifyFailed    atomic.Int64
	composedHits    atomic.Int64
	aggHits         atomic.Int64
	preaggHits      atomic.Int64
	nearMisses      atomic.Int64
	staleMisses     atomic.Int64
	evicted         atomic.Int64
	reused          atomic.Int64
	probationAdmits atomic.Int64
}

// shapeClass is a statement shape's cache verdict.
type shapeClass int

const (
	shapeUnsafe shapeClass = iota
	shapeSafe              // servable from any containing restricted store
	shapeAgg               // HAVING class: servable via the aggregate path
)

// New returns a cache with an empty region set (every query misses until the
// first Install).
func New(cfg Config) *Cache {
	if cfg.ProbationFraction == 0 {
		cfg.ProbationFraction = 0.15
	} else if cfg.ProbationFraction < 0 || cfg.ProbationFraction >= 1 {
		cfg.ProbationFraction = 0 // explicit out-of-range value disables the reserve
	}
	if cfg.HeatDecay <= 0 || cfg.HeatDecay >= 1 {
		cfg.HeatDecay = 0.5
	}
	if cfg.ComposeMax == 0 {
		cfg.ComposeMax = 4
	}
	c := &Cache{cfg: cfg, book: newHeatBook()}
	c.budget.Store(cfg.BudgetBytes)
	c.snap.Store(&snapshot{})
	return c
}

// Install folds the previous generation's access heat into the book, plans
// admission of the clusters' regions best-heat-first under the byte budget,
// materialises (or, within the TTL, carries over) the admitted stores, and
// atomically replaces the served snapshot. Non-admitted candidates stay as
// shadows collecting near-miss heat. Clusters with no relations or an unset
// box are skipped (they describe nothing prefetchable).
func (c *Cache) Install(generation int64, clusters []*aggregate.Summary) {
	sp := prefetchStage.Start()
	defer sp.End()
	c.installMu.Lock()
	defer c.installMu.Unlock()
	prev := c.snap.Load()
	c.book.fold(prev.regions, prev.shadows, c.cfg.HeatDecay, generation)
	prevResident := make(map[string]*Region, len(prev.regions))
	for _, r := range prev.regions {
		prevResident[r.identity] = r
	}

	type candidate struct {
		cl       *aggregate.Summary
		identity string
		heat     float64
		carry    *Region
	}
	var cands []candidate
	heats := []float64{}
	sizes := []int64{}
	for _, cl := range clusters {
		if cl == nil || len(cl.Relations) == 0 || cl.Box == nil {
			continue
		}
		cn := candidate{cl: cl, identity: identityOf(cl.Relations, cl.Box, cl.Categorical)}
		cn.heat = c.book.heat(cn.identity)
		size := c.book.knownBytes(cn.identity)
		if p, ok := prevResident[cn.identity]; ok && c.cfg.RegionTTL > 0 && p.Staleness() < c.cfg.RegionTTL {
			cn.carry = p
			size = p.Bytes
		}
		cands = append(cands, cn)
		heats = append(heats, cn.heat)
		sizes = append(sizes, size)
	}

	budget := c.budget.Load()
	plan := planAdmissions(heats, sizes, budget, c.cfg.ProbationFraction)
	snap := &snapshot{generation: generation}
	type resident struct {
		r    *Region
		heat float64
		pos  int
	}
	var residents []resident
	for i, ad := range plan {
		cn := cands[i]
		if !ad.admit {
			snap.shadows = append(snap.shadows, newShadowRegion(generation, cn.cl))
			continue
		}
		var r *Region
		if cn.carry != nil {
			r = carryRegion(cn.carry, cn.cl.ID, generation)
			c.reused.Add(1)
		} else {
			r = newRegion(c.cfg.DB, generation, cn.cl)
		}
		c.book.setBytes(cn.identity, r.Bytes)
		if ad.probation {
			c.probationAdmits.Add(1)
		}
		residents = append(residents, resident{r: r, heat: cn.heat, pos: i})
	}

	// Hard budget guarantee: the plan charged last-known sizes, so freshly
	// measured stores can overflow. Demote coldest-first (ties: latest
	// candidate first) until resident bytes fit.
	if budget > 0 {
		var total int64
		for _, res := range residents {
			total += res.r.Bytes
		}
		for total > budget && len(residents) > 0 {
			worst := 0
			for i := 1; i < len(residents); i++ {
				if residents[i].heat < residents[worst].heat ||
					(residents[i].heat == residents[worst].heat && residents[i].pos > residents[worst].pos) {
					worst = i
				}
			}
			total -= residents[worst].r.Bytes
			snap.shadows = append(snap.shadows, shadowFromRegion(residents[worst].r))
			residents = append(residents[:worst], residents[worst+1:]...)
		}
	}

	for _, res := range residents {
		snap.regions = append(snap.regions, res.r)
		snap.bytesResident += res.r.Bytes
	}
	for _, sh := range snap.shadows {
		if _, was := prevResident[sh.identity]; was {
			c.evicted.Add(1)
		}
	}
	prefetchRegionsTotal.Add(int64(len(snap.regions)))
	snap.index = buildIndex(snap.regions)
	for _, p := range c.registeredPlans() {
		for _, r := range snap.regions {
			r.books.get(r, p)
		}
	}
	c.snap.Store(snap)
}

// shadowFromRegion demotes a (just built or carried) region to a shadow.
func shadowFromRegion(r *Region) *Region {
	return &Region{
		ID:          r.ID,
		Generation:  r.Generation,
		Relations:   r.Relations,
		Box:         r.Box,
		Categorical: r.Categorical,
		identity:    r.identity,
		shadow:      true,
	}
}

// SetBudget changes the byte budget at runtime. Shrinking re-runs a
// drop-only admission over the current residents (using live heat: book
// heat plus this generation's counters), demoting the coldest to shadows
// immediately; growing takes effect at the next Install.
func (c *Cache) SetBudget(budget int64) {
	c.installMu.Lock()
	defer c.installMu.Unlock()
	c.budget.Store(budget)
	if budget <= 0 {
		return
	}
	prev := c.snap.Load()
	var total int64
	for _, r := range prev.regions {
		total += r.Bytes
	}
	if total <= budget {
		return
	}
	heats := make([]float64, len(prev.regions))
	sizes := make([]int64, len(prev.regions))
	for i, r := range prev.regions {
		heats[i] = c.book.heat(r.identity) + float64(r.hits.Load()+r.nearMisses.Load())
		sizes[i] = r.Bytes
	}
	plan := planAdmissions(heats, sizes, budget, 0)
	snap := &snapshot{generation: prev.generation}
	snap.shadows = append(snap.shadows, prev.shadows...)
	for i, ad := range plan {
		r := prev.regions[i]
		if ad.admit {
			snap.regions = append(snap.regions, r)
			snap.bytesResident += r.Bytes
		} else {
			snap.shadows = append(snap.shadows, shadowFromRegion(r))
			c.evicted.Add(1)
		}
	}
	snap.index = buildIndex(snap.regions)
	c.snap.Store(snap)
}

// Budget returns the live byte budget (<= 0 means unlimited).
func (c *Cache) Budget() int64 { return c.budget.Load() }

// Info describes how a query was answered.
type Info struct {
	// Hit is true when the result came from cached region stores.
	Hit bool
	// RegionID is the (first) serving region's cluster ID (hits only).
	RegionID int
	// Regions lists every serving region's cluster ID (hits only; length
	// > 1 on composed and partial-aggregate hits).
	Regions []int
	// Path labels how a hit was assembled: "single" (one containing
	// region), "composed" (union store over a covering set), "agg" (full
	// aggregate statement on one containing region), "preagg" (partial
	// aggregates combined across a covering set).
	Path string
	// Staleness is the maximum age of the serving stores (hits only;
	// non-zero only with a RegionTTL configured, since otherwise stores
	// are rebuilt each generation).
	Staleness time.Duration
	// Generation is the region-set generation consulted.
	Generation int64
	// Reason explains a miss: "no-regions", "fingerprint", "parse",
	// "shape", "uncacheable", "inexact", "empty-area", "no-region",
	// "store-error", "stale", "verify-failed".
	Reason string
}

// Query answers sql from the cached regions when containment proves it
// sound — a single containing region, a composed covering set, or the
// aggregate path for the HAVING class — falling through to direct execution
// otherwise. The result is identical to direct execution either way
// (enforced by the Verify oracle when enabled). Errors mirror direct
// execution: a statement that fails directly fails here with the same
// error.
func (c *Cache) Query(sql string) (*memdb.ResultSet, Info, error) {
	sp := queryStage.Start()
	t0 := time.Now()
	var fp uint64
	defer func() {
		sp.End()
		// The slow log covers the whole call — extraction through execution
		// on either the hit or the fall-through path — under the statement's
		// fingerprint (0 when the statement never fingerprinted).
		obs.DefaultSlowLog.Record("query", fp, time.Since(t0))
	}()
	snap := c.snap.Load()
	info := Info{Generation: snap.generation}
	if len(snap.regions) == 0 && len(snap.shadows) == 0 {
		return c.miss(sql, info, "no-regions")
	}
	lsp := lookupStage.Start()
	area, afp, reason := c.lookupArea(sql)
	lsp.End()
	fp = afp
	if reason == "agg" {
		return c.queryAgg(snap, sql, info)
	}
	if reason != "" {
		return c.miss(sql, info, reason)
	}
	shape := newQueryShape(area)
	if region := snap.index.lookup(shape); region != nil {
		if c.regionsStale(region) {
			c.staleMisses.Add(1)
			return c.miss(sql, info, "stale")
		}
		rs, err := region.store.ExecuteSQL(sql, c.cfg.Exec)
		if err != nil {
			// The store is a subset view; any store-side failure (row limit,
			// evaluation error) might not occur directly, so never surface it.
			return c.miss(sql, info, "store-error")
		}
		return c.finishHit(sql, rs, info, "single", region)
	}
	if cv := snap.index.findCover(shape, c.cfg.ComposeMax); cv != nil {
		if c.regionsStale(cv.regions...) {
			c.staleMisses.Add(1)
			return c.miss(sql, info, "stale")
		}
		if store, err := snap.unionStore(cv); err == nil {
			rs, err := store.ExecuteSQL(sql, c.cfg.Exec)
			if err != nil {
				return c.miss(sql, info, "store-error")
			}
			return c.finishHit(sql, rs, info, "composed", cv.regions...)
		}
	}
	c.creditShadows(snap, shape)
	return c.miss(sql, info, "no-region")
}

// queryAgg serves the HAVING aggregate class. Containment is decided on the
// WHERE-only access area — the statement with HAVING stripped — which is
// exactly the row set the aggregation consumes, so any store that is a
// superset-in-order of those rows computes every group and aggregate
// identically to direct execution (DESIGN.md §17).
func (c *Cache) queryAgg(snap *snapshot, sql string, info Info) (*memdb.ResultSet, Info, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return c.miss(sql, info, "parse")
	}
	sel, ok := stmt.(*sqlparser.SelectStatement)
	if !ok {
		return c.miss(sql, info, "parse")
	}
	plan := buildAggPlan(sel)
	if plan != nil {
		c.registerPlan(plan)
	}
	whereOnly := *sel
	whereOnly.Having = nil
	area, err := c.cfg.Extractor.Extract(&whereOnly)
	if err != nil || area == nil {
		return c.miss(sql, info, "uncacheable")
	}
	switch {
	case !area.Exact || area.Truncated || len(area.Relations) == 0:
		return c.miss(sql, info, "inexact")
	case area.IsEmpty():
		return c.miss(sql, info, "empty-area")
	}
	shape := newQueryShape(area)
	if region := snap.index.lookup(shape); region != nil {
		if c.regionsStale(region) {
			c.staleMisses.Add(1)
			return c.miss(sql, info, "stale")
		}
		rs, err := region.store.ExecuteSQL(sql, c.cfg.Exec)
		if err != nil {
			return c.miss(sql, info, "store-error")
		}
		return c.finishHit(sql, rs, info, "agg", region)
	}
	if cv := snap.index.findCover(shape, c.cfg.ComposeMax); cv != nil {
		if c.regionsStale(cv.regions...) {
			c.staleMisses.Add(1)
			return c.miss(sql, info, "stale")
		}
		if rs, ok := combinePreagg(cv, plan, area, shape, c.cfg.Exec.RowLimit); ok {
			return c.finishHit(sql, rs, info, "preagg", cv.regions...)
		}
		if store, err := snap.unionStore(cv); err == nil {
			rs, err := store.ExecuteSQL(sql, c.cfg.Exec)
			if err != nil {
				return c.miss(sql, info, "store-error")
			}
			return c.finishHit(sql, rs, info, "composed", cv.regions...)
		}
	}
	c.creditShadows(snap, shape)
	return c.miss(sql, info, "no-region")
}

// regionsStale reports whether any serving store is older than the
// configured TTL (never with no TTL set).
func (c *Cache) regionsStale(regions ...*Region) bool {
	if c.cfg.RegionTTL <= 0 {
		return false
	}
	for _, r := range regions {
		if r.Staleness() > c.cfg.RegionTTL {
			return true
		}
	}
	return false
}

// finishHit verifies (when configured), credits counters, and fills Info
// for a hit assembled from the given regions via the given path.
func (c *Cache) finishHit(sql string, rs *memdb.ResultSet, info Info, path string, regions ...*Region) (*memdb.ResultSet, Info, error) {
	if c.cfg.Verify {
		c.verifyChecked.Add(1)
		direct, derr := c.cfg.DB.ExecuteSQL(sql, c.cfg.Exec)
		if derr != nil || string(EncodeResultSet(direct)) != string(EncodeResultSet(rs)) {
			c.verifyFailed.Add(1)
			info.Reason = "verify-failed"
			c.misses.Add(1)
			return direct, info, derr
		}
	}
	n := resultBytes(rs)
	for i, r := range regions {
		r.hits.Add(1)
		if i == 0 {
			r.bytesServed.Add(n)
		}
	}
	c.hits.Add(1)
	c.bytesServed.Add(n)
	switch path {
	case "composed":
		c.composedHits.Add(1)
	case "agg":
		c.aggHits.Add(1)
	case "preagg":
		c.preaggHits.Add(1)
	}
	info.Hit = true
	info.Path = path
	info.RegionID = regions[0].ID
	for _, r := range regions {
		info.Regions = append(info.Regions, r.ID)
	}
	if c.cfg.RegionTTL > 0 {
		for _, r := range regions {
			if s := r.Staleness(); s > info.Staleness {
				info.Staleness = s
			}
		}
	}
	return rs, info, nil
}

// creditShadows records a near-miss on every shadow that would have
// contained the query — the heat signal that lets an evicted region earn
// readmission.
func (c *Cache) creditShadows(snap *snapshot, shape *queryShape) {
	for _, r := range snap.shadows {
		if r.containsShape(shape, "", "") {
			r.nearMisses.Add(1)
			c.nearMisses.Add(1)
		}
	}
}

// registerPlan records a distinct aggregate-plan signature (bounded) for
// install-time book precomputation.
func (c *Cache) registerPlan(p *aggPlan) {
	c.plansMu.Lock()
	defer c.plansMu.Unlock()
	if len(c.plans) >= 32 {
		return
	}
	key := p.planKey()
	for _, q := range c.plans {
		if q.planKey() == key {
			return
		}
	}
	c.plans = append(c.plans, p)
}

func (c *Cache) registeredPlans() []*aggPlan {
	c.plansMu.Lock()
	defer c.plansMu.Unlock()
	return append([]*aggPlan(nil), c.plans...)
}

func (c *Cache) miss(sql string, info Info, reason string) (*memdb.ResultSet, Info, error) {
	info.Reason = reason
	c.misses.Add(1)
	rs, err := c.cfg.DB.ExecuteSQL(sql, c.cfg.Exec)
	return rs, info, err
}

// lookupArea resolves sql to an access area through the shared template
// cache: fingerprint → cached template → rebind, with a one-time slow path
// (parse + classify + extract + template store) per statement shape. A
// non-empty reason means the statement cannot be served from this path; the
// special reason "agg" routes the statement to the aggregate path instead.
// The statement fingerprint is returned either way (0 when fingerprinting
// itself failed) so the caller can label slow-log entries.
func (c *Cache) lookupArea(sql string) (*extract.AccessArea, uint64, string) {
	fp, lits, err := sqlparser.Fingerprint(sql)
	if err != nil || anyBadNum(lits) {
		return nil, fp, "fingerprint"
	}
	shapeV, shapeKnown := c.shapes.Load(fp)
	var area *extract.AccessArea
	if shapeKnown {
		switch shapeV.(shapeClass) {
		case shapeAgg:
			return nil, fp, "agg"
		case shapeUnsafe:
			return nil, fp, "shape"
		}
	}
	if t, ok := c.cfg.Templates.Get(fp); ok && shapeKnown {
		a, _, ok := t.Rebind(c.cfg.Extractor, lits)
		if !ok {
			return nil, fp, "uncacheable"
		}
		area = a
	} else {
		stmt, perr := sqlparser.Parse(sql)
		if perr != nil {
			return nil, fp, "parse"
		}
		sel, ok := stmt.(*sqlparser.SelectStatement)
		if !ok {
			return nil, fp, "parse"
		}
		class := shapeClassOf(sel)
		c.shapes.Store(fp, class)
		if t, ok := c.cfg.Templates.Get(fp); ok {
			switch class {
			case shapeAgg:
				return nil, fp, "agg"
			case shapeUnsafe:
				return nil, fp, "shape"
			}
			a, _, rok := t.Rebind(c.cfg.Extractor, lits)
			if !rok {
				return nil, fp, "uncacheable"
			}
			area = a
		} else {
			a, _, t, xerr := c.cfg.Extractor.ExtractTemplate(sel)
			if t != nil {
				c.cfg.Templates.Put(fp, t)
			}
			switch class {
			case shapeAgg:
				return nil, fp, "agg"
			case shapeUnsafe:
				return nil, fp, "shape"
			}
			if xerr != nil || a == nil {
				return nil, fp, "uncacheable"
			}
			area = a
		}
	}
	switch {
	case !area.Exact || area.Truncated:
		return nil, fp, "inexact"
	case area.IsEmpty():
		return nil, fp, "empty-area"
	case len(area.Relations) == 0:
		return nil, fp, "inexact"
	}
	return area, fp, ""
}

// shapeClassOf classifies a statement: safe shapes serve from any
// containing restricted store; the aggregate class — a top-level HAVING on
// an otherwise safe, union-free statement — serves via the WHERE-only-area
// aggregate path; everything else is uncacheable by shape.
func shapeClassOf(sel *sqlparser.SelectStatement) shapeClass {
	if safeShape(sel) {
		return shapeSafe
	}
	// The HAVING must be subquery-free: the agg path decides containment on
	// the WHERE-only area, which never sees a HAVING subquery, so one would
	// silently execute against the restricted store.
	if sel != nil && sel.Having != nil && len(sel.Unions) == 0 &&
		safeExpr(sel.Having) && !exprHasSubquery(sel.Having) {
		whereOnly := *sel
		whereOnly.Having = nil
		if safeShape(&whereOnly) {
			return shapeAgg
		}
	}
	return shapeUnsafe
}

// safeShape reports whether a statement may be answered from a restricted
// row store when its access area is exact and contained in the store's
// region. Almost every construct is safe — the extraction's Exact flag
// already excludes approximated shapes, and row order is preserved by the
// store so TOP/ORDER BY/DISTINCT agree — with two exceptions the Exact flag
// does not see:
//
//   - HAVING with an aggregate comparison: extraction maps e.g.
//     "HAVING MAX(x) > c" to the row-level predicate "x > c", which bounds
//     the rows CONTRIBUTING the extreme but not every row of a qualifying
//     group; the group's other rows fall outside the area, so a restricted
//     store computes different aggregates. (The mapping is marked noCache,
//     not approximate, so Exact survives.) The aggregate path (queryAgg)
//     recovers this class by re-deciding containment on the WHERE-only
//     area.
//   - Derived tables "(SELECT ...) t": their inner projection feeds the
//     outer query rows whose provenance the area does not bound
//     conservatively in all compositions; rejected outright.
//
// The walk covers union arms, join trees, and every subquery position.
func safeShape(sel *sqlparser.SelectStatement) bool {
	if sel == nil {
		return true
	}
	if sel.Having != nil {
		return false
	}
	for _, te := range sel.From {
		if !safeTableExpr(te) {
			return false
		}
	}
	exprs := []sqlparser.Expr{sel.Where}
	for _, it := range sel.Select {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, sel.GroupBy...)
	for _, oi := range sel.OrderBy {
		exprs = append(exprs, oi.Expr)
	}
	for _, e := range exprs {
		if !safeExpr(e) {
			return false
		}
	}
	for _, arm := range sel.Unions {
		if !safeShape(arm.Select) {
			return false
		}
	}
	return true
}

func safeTableExpr(te sqlparser.TableExpr) bool {
	switch t := te.(type) {
	case *sqlparser.SubqueryTable:
		return false
	case *sqlparser.Join:
		return safeTableExpr(t.Left) && safeTableExpr(t.Right) && safeExpr(t.On)
	default:
		return true
	}
}

func safeExpr(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *sqlparser.BinaryExpr:
		return safeExpr(x.L) && safeExpr(x.R)
	case *sqlparser.UnaryExpr:
		return safeExpr(x.X)
	case *sqlparser.BetweenExpr:
		return safeExpr(x.X) && safeExpr(x.Lo) && safeExpr(x.Hi)
	case *sqlparser.InListExpr:
		if !safeExpr(x.X) {
			return false
		}
		for _, it := range x.List {
			if !safeExpr(it) {
				return false
			}
		}
		return true
	case *sqlparser.InSubqueryExpr:
		return safeExpr(x.X) && safeShape(x.Sub)
	case *sqlparser.ExistsExpr:
		return safeShape(x.Sub)
	case *sqlparser.QuantifiedExpr:
		return safeExpr(x.X) && safeShape(x.Sub)
	case *sqlparser.ScalarSubquery:
		return safeShape(x.Sub)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			if !safeExpr(a) {
				return false
			}
		}
		return true
	case *sqlparser.LikeExpr:
		return safeExpr(x.X) && safeExpr(x.Pattern)
	case *sqlparser.IsNullExpr:
		return safeExpr(x.X)
	case *sqlparser.CaseExpr:
		if !safeExpr(x.Operand) || !safeExpr(x.Else) {
			return false
		}
		for _, w := range x.Whens {
			if !safeExpr(w.When) || !safeExpr(w.Then) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// exprHasSubquery reports whether any subquery construct appears in e.
func exprHasSubquery(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sqlparser.InSubqueryExpr, *sqlparser.ExistsExpr,
		*sqlparser.QuantifiedExpr, *sqlparser.ScalarSubquery:
		return true
	case *sqlparser.BinaryExpr:
		return exprHasSubquery(x.L) || exprHasSubquery(x.R)
	case *sqlparser.UnaryExpr:
		return exprHasSubquery(x.X)
	case *sqlparser.BetweenExpr:
		return exprHasSubquery(x.X) || exprHasSubquery(x.Lo) || exprHasSubquery(x.Hi)
	case *sqlparser.InListExpr:
		if exprHasSubquery(x.X) {
			return true
		}
		for _, it := range x.List {
			if exprHasSubquery(it) {
				return true
			}
		}
		return false
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			if exprHasSubquery(a) {
				return true
			}
		}
		return false
	case *sqlparser.LikeExpr:
		return exprHasSubquery(x.X) || exprHasSubquery(x.Pattern)
	case *sqlparser.IsNullExpr:
		return exprHasSubquery(x.X)
	case *sqlparser.CaseExpr:
		if exprHasSubquery(x.Operand) || exprHasSubquery(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if exprHasSubquery(w.When) || exprHasSubquery(w.Then) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func anyBadNum(lits []sqlparser.Literal) bool {
	for _, l := range lits {
		if l.BadNum {
			return true
		}
	}
	return false
}

// Metrics is a point-in-time counter snapshot.
type Metrics struct {
	Generation      int64           `json:"generation"`
	Regions         int             `json:"regions"`
	ShadowRegions   int             `json:"shadow_regions"`
	BytesResident   int64           `json:"bytes_resident"`
	Budget          int64           `json:"budget"`
	Hits            int64           `json:"hits"`
	Misses          int64           `json:"misses"`
	BytesServed     int64           `json:"bytes_served"`
	VerifyChecked   int64           `json:"verify_checked"`
	VerifyFailed    int64           `json:"verify_failed"`
	ComposedHits    int64           `json:"composed_hits"`
	AggHits         int64           `json:"agg_hits"`
	PreaggHits      int64           `json:"preagg_hits"`
	NearMisses      int64           `json:"near_misses"`
	StaleMisses     int64           `json:"stale_misses"`
	Evicted         int64           `json:"evicted"`
	Reused          int64           `json:"reused"`
	ProbationAdmits int64           `json:"probation_admits"`
	PerRegion       []RegionMetrics `json:"per_region"`
}

// RegionMetrics are the per-region serving counters of the CURRENT region
// set; counters reset naturally on Install because regions are rebuilt
// (heat persists in the book, surfaced here).
type RegionMetrics struct {
	ID          int     `json:"id"`
	Rows        int     `json:"rows"`
	Bytes       int64   `json:"bytes"`
	Hits        int64   `json:"hits"`
	BytesServed int64   `json:"bytes_served"`
	Heat        float64 `json:"heat"`
	AgeSeconds  float64 `json:"age_seconds"`
}

// Metrics returns the current counters and per-region statistics.
func (c *Cache) Metrics() Metrics {
	snap := c.snap.Load()
	m := Metrics{
		Generation:      snap.generation,
		Regions:         len(snap.regions),
		ShadowRegions:   len(snap.shadows),
		BytesResident:   snap.bytesResident,
		Budget:          c.budget.Load(),
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		BytesServed:     c.bytesServed.Load(),
		VerifyChecked:   c.verifyChecked.Load(),
		VerifyFailed:    c.verifyFailed.Load(),
		ComposedHits:    c.composedHits.Load(),
		AggHits:         c.aggHits.Load(),
		PreaggHits:      c.preaggHits.Load(),
		NearMisses:      c.nearMisses.Load(),
		StaleMisses:     c.staleMisses.Load(),
		Evicted:         c.evicted.Load(),
		Reused:          c.reused.Load(),
		ProbationAdmits: c.probationAdmits.Load(),
	}
	for _, r := range snap.regions {
		m.PerRegion = append(m.PerRegion, RegionMetrics{
			ID: r.ID, Rows: r.Rows, Bytes: r.Bytes,
			Hits: r.Hits(), BytesServed: r.BytesServed(),
			Heat:       c.book.heat(r.identity),
			AgeSeconds: r.Staleness().Seconds(),
		})
	}
	return m
}

// Generation returns the current region-set generation.
func (c *Cache) Generation() int64 { return c.snap.Load().generation }

// Regions returns the current region set (read-only).
func (c *Cache) Regions() []*Region { return c.snap.Load().regions }

// EncodeResultSet renders a result set into a canonical byte string: column
// names, then row-major cells, each value tagged by kind with numbers as
// IEEE-754 bits and strings length-prefixed. Two result sets are
// byte-identical under this encoding iff they have the same columns and the
// same rows in the same order — the oracle's definition of "identical".
func EncodeResultSet(rs *memdb.ResultSet) []byte {
	if rs == nil {
		return nil
	}
	var buf []byte
	appendStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf = append(buf, n[:]...)
		buf = append(buf, s...)
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(rs.Columns)))
	buf = append(buf, n[:]...)
	for _, col := range rs.Columns {
		appendStr(col)
	}
	for _, row := range rs.Rows {
		for _, v := range row {
			buf = append(buf, byte(v.Kind))
			switch v.Kind {
			case memdb.Num:
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Num))
				buf = append(buf, b[:]...)
			case memdb.Str:
				appendStr(v.Str)
			}
		}
		buf = append(buf, '\n')
	}
	return buf
}

func resultBytes(rs *memdb.ResultSet) int64 {
	if rs == nil {
		return 0
	}
	var n int64
	for _, row := range rs.Rows {
		for _, v := range row {
			n++ // kind tag
			switch v.Kind {
			case memdb.Num:
				n += 8
			case memdb.Str:
				n += int64(len(v.Str))
			}
		}
	}
	return n
}
