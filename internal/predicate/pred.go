// Package predicate implements the Boolean-expression machinery of the
// paper's intermediate format (Section 2.4): atomic predicates of the
// column-constant ("a θ c") and column-column ("a1 θ a2") forms, NOT
// push-down via predicate inversion (Section 4.1), conversion to conjunctive
// normal form with the 35-predicate cap workaround of Section 6.6, and the
// consolidation step of Section 4.5 (remove redundant constraints, merge
// overlapping constraints, check for contradictions).
package predicate

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/interval"
)

// Op is a comparison operator θ of an atomic predicate.
type Op int

const (
	Lt Op = iota // <
	Le           // <=
	Eq           // =
	Gt           // >
	Ge           // >=
	Ne           // <>
)

func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Ne:
		return "<>"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Invert returns the operator of the negated predicate: NOT (a < c) ≡ a >= c.
func (o Op) Invert() Op {
	switch o {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Eq:
		return Ne
	case Gt:
		return Le
	case Ge:
		return Lt
	case Ne:
		return Eq
	default:
		return o
	}
}

// Flip returns the operator with operands swapped: (a < b) ≡ (b > a).
func (o Op) Flip() Op {
	switch o {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default: // =, <> are symmetric
		return o
	}
}

// ParseOp converts an operator token ("<", "<=", "=", ">", ">=", "<>") to an
// Op.
func ParseOp(s string) (Op, bool) {
	switch s {
	case "<":
		return Lt, true
	case "<=":
		return Le, true
	case "=":
		return Eq, true
	case ">":
		return Gt, true
	case ">=":
		return Ge, true
	case "<>", "!=":
		return Ne, true
	default:
		return 0, false
	}
}

// ValueKind distinguishes numeric from string constants.
type ValueKind int

const (
	NumberVal ValueKind = iota
	StringVal
)

// Value is the constant c of a column-constant predicate. Text preserves the
// source spelling of numbers so 18-digit object IDs print exactly.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
	Text string
	// Slot, when nonzero, is the 1-based ordinal of the source literal
	// this constant was copied from verbatim (lexer order), and NegDepth
	// the number of unary minus signs the parser folded into Num/Text.
	// They thread through extraction so the template cache knows which of
	// a record's literals to substitute where. Identity metadata only:
	// Key() and String() ignore them.
	Slot     int
	NegDepth int
}

// Number constructs a numeric value.
func Number(v float64) Value {
	return Value{Kind: NumberVal, Num: v}
}

// NumberText constructs a numeric value preserving its source text.
func NumberText(v float64, text string) Value {
	return Value{Kind: NumberVal, Num: v, Text: text}
}

// Str constructs a string value.
func Str(s string) Value {
	return Value{Kind: StringVal, Str: s}
}

// String renders the value as SQL.
func (v Value) String() string {
	if v.Kind == StringVal {
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	if v.Text != "" {
		return v.Text
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// PredKind classifies atomic predicates.
type PredKind int

const (
	// ColumnConstant is "a θ c" (Section 2.1).
	ColumnConstant PredKind = iota
	// ColumnColumn is "a1 θ a2", e.g. a join condition.
	ColumnColumn
	// TruePred is the always-true predicate (no constraint).
	TruePred
	// FalsePred is the always-false predicate (empty area).
	FalsePred
)

// Pred is an atomic predicate over canonical, fully-qualified column names.
type Pred struct {
	Kind    PredKind
	Column  string // left column, canonical "Relation.column"
	Op      Op
	Val     Value  // for ColumnConstant
	Column2 string // right column, for ColumnColumn
	// Approx marks predicates produced by the approximation scheme for
	// constructs the exact mapping does not cover (Section 4.4).
	Approx bool
}

// True and False are the constant predicates.
func True() Pred  { return Pred{Kind: TruePred} }
func False() Pred { return Pred{Kind: FalsePred} }

// CC builds a column-constant predicate.
func CC(column string, op Op, val Value) Pred {
	return Pred{Kind: ColumnConstant, Column: column, Op: op, Val: val}
}

// Cols builds a column-column predicate with the two columns in a canonical
// (sorted) order so that "T.u = S.u" and "S.u = T.u" compare equal.
func Cols(a string, op Op, b string) Pred {
	if a > b {
		a, b = b, a
		op = op.Flip()
	}
	return Pred{Kind: ColumnColumn, Column: a, Op: op, Column2: b}
}

// Invert returns the logical negation of the predicate, which for both
// supported kinds is again an atomic predicate (Section 4.1).
func (p Pred) Invert() Pred {
	switch p.Kind {
	case TruePred:
		return False()
	case FalsePred:
		return True()
	default:
		q := p
		q.Op = p.Op.Invert()
		return q
	}
}

// IsNumeric reports whether the predicate compares against a numeric
// constant.
func (p Pred) IsNumeric() bool {
	return p.Kind == ColumnConstant && p.Val.Kind == NumberVal
}

// Interval returns the value set of a numeric column-constant predicate as
// an interval set (NE yields two rays). The second result is false for
// predicates with no interval semantics (column-column, string constants,
// TRUE/FALSE).
func (p Pred) Interval() (interval.Set, bool) {
	if !p.IsNumeric() {
		return interval.Set{}, false
	}
	c := p.Val.Num
	switch p.Op {
	case Lt:
		return interval.NewSet(interval.Below(c, true)), true
	case Le:
		return interval.NewSet(interval.Below(c, false)), true
	case Eq:
		return interval.NewSet(interval.Point(c)), true
	case Gt:
		return interval.NewSet(interval.Above(c, true)), true
	case Ge:
		return interval.NewSet(interval.Above(c, false)), true
	case Ne:
		return interval.NotEqual(c), true
	default:
		return interval.Set{}, false
	}
}

// PredsFromSet expresses an interval set over column as a disjunction of
// atomic predicates, when possible. ok is false when some piece is a
// bounded interval (which needs a conjunction of two predicates and hence
// does not fit a single disjunction).
func PredsFromSet(column string, s interval.Set) ([]Pred, bool) {
	if s.IsEmpty() {
		return []Pred{False()}, true
	}
	if s.IsFull() {
		return []Pred{True()}, true
	}
	// Special case: complement of a point is NE.
	if comp := s.Complement(); len(comp.Intervals()) == 1 && comp.Intervals()[0].IsPoint() {
		return []Pred{CC(column, Ne, Number(comp.Intervals()[0].Lo))}, true
	}
	var out []Pred
	for _, iv := range s.Intervals() {
		p, ok := predFromInterval(column, iv)
		if !ok {
			return nil, false
		}
		out = append(out, p)
	}
	return out, true
}

// predFromInterval expresses a single interval as one atomic predicate if
// possible.
func predFromInterval(column string, iv interval.Interval) (Pred, bool) {
	loInf, hiInf := math.IsInf(iv.Lo, -1), math.IsInf(iv.Hi, 1)
	switch {
	case loInf && hiInf:
		return True(), true
	case iv.IsPoint():
		return CC(column, Eq, Number(iv.Lo)), true
	case loInf:
		if iv.HiOpen {
			return CC(column, Lt, Number(iv.Hi)), true
		}
		return CC(column, Le, Number(iv.Hi)), true
	case hiInf:
		if iv.LoOpen {
			return CC(column, Gt, Number(iv.Lo)), true
		}
		return CC(column, Ge, Number(iv.Lo)), true
	default:
		return Pred{}, false // bounded interval needs two predicates
	}
}

// ClausesFromInterval expresses a single interval over column as a
// conjunction of at most two atomic predicates (lower and upper bound).
func ClausesFromInterval(column string, iv interval.Interval) []Pred {
	if iv.IsEmpty() {
		return []Pred{False()}
	}
	var out []Pred
	if !math.IsInf(iv.Lo, -1) {
		op := Ge
		if iv.LoOpen {
			op = Gt
		}
		if iv.IsPoint() {
			return []Pred{CC(column, Eq, Number(iv.Lo))}
		}
		out = append(out, CC(column, op, Number(iv.Lo)))
	}
	if !math.IsInf(iv.Hi, 1) {
		op := Le
		if iv.HiOpen {
			op = Lt
		}
		out = append(out, CC(column, op, Number(iv.Hi)))
	}
	if len(out) == 0 {
		return []Pred{True()}
	}
	return out
}

// Key returns a canonical string identity used for deduplication and the
// exact-matching OLAPClus baseline (Section 6.4).
func (p Pred) Key() string {
	switch p.Kind {
	case TruePred:
		return "⊤"
	case FalsePred:
		return "⊥"
	case ColumnColumn:
		return p.Column + p.Op.String() + p.Column2
	default:
		if p.Val.Kind == StringVal {
			return p.Column + p.Op.String() + "'" + p.Val.Str + "'"
		}
		// Identity only, never displayed: raw float bits in hex are an
		// order of magnitude cheaper to format than decimal floats, and
		// Key() sits on the hot path of CNF normalisation.
		return p.Column + p.Op.String() + strconv.FormatUint(math.Float64bits(p.Val.Num), 16)
	}
}

// Columns returns the column(s) the predicate refers to.
func (p Pred) Columns() []string {
	switch p.Kind {
	case ColumnConstant:
		return []string{p.Column}
	case ColumnColumn:
		return []string{p.Column, p.Column2}
	default:
		return nil
	}
}

// String renders the predicate as SQL.
func (p Pred) String() string {
	switch p.Kind {
	case TruePred:
		return "TRUE"
	case FalsePred:
		return "FALSE"
	case ColumnColumn:
		return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Column2)
	default:
		return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Val)
	}
}
