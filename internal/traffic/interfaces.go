package traffic

import (
	"sort"
	"strconv"

	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/sqlparser"
)

// Param is one slot of a rendered query interface: its position, the
// column and operator the extraction template binds it to (when the
// template cache still holds the template), the inferred type, and the
// observed value range.
type Param struct {
	Slot   int    `json:"slot"`
	Column string `json:"column,omitempty"`
	Op     string `json:"op,omitempty"`
	Type   string `json:"type"` // "number" | "string"
	// Min/Max are the observed numeric range (number slots; formatted so
	// ±Inf and 18-digit IDs survive JSON).
	Min string `json:"min,omitempty"`
	Max string `json:"max,omitempty"`
	// Samples holds up to InterfaceMaxSamples distinct observed values in
	// first-seen order (string slots, and the source spellings of number
	// slots).
	Samples []string `json:"samples,omitempty"`
	Count   int64    `json:"count"`
}

// Interface is one mined query interface: a hot statement template, its
// skeleton, and its parameter slots.
type Interface struct {
	Fingerprint string  `json:"fingerprint"` // hex statement fingerprint
	Skeleton    string  `json:"skeleton"`
	Hits        int64   `json:"hits"`
	Params      []Param `json:"params,omitempty"`
}

// slotAcc accumulates one slot's observed values.
type slotAcc struct {
	Numeric  bool     `json:"numeric"`
	Min      float64  `json:"min"`
	Max      float64  `json:"max"`
	Count    int64    `json:"count"`
	Samples  []string `json:"samples,omitempty"`
	overflow bool
}

func (s *slotAcc) sample(v string, cap int) {
	if s.overflow {
		return
	}
	for _, x := range s.Samples {
		if x == v {
			return
		}
	}
	if len(s.Samples) >= cap {
		s.overflow = true
		return
	}
	s.Samples = append(s.Samples, v)
}

// ifaceEntry is the per-fingerprint accumulator.
type ifaceEntry struct {
	Skeleton string     `json:"skeleton"`
	Hits     int64      `json:"hits"`
	Slots    []*slotAcc `json:"slots,omitempty"`
}

// Interfaces mines parameterized query interfaces from admission-time
// fingerprints and literals. Like the classifier it is not internally
// locked: the admission path feeds it in order.
type Interfaces struct {
	maxFPs     int
	maxSamples int
	byFP       map[uint64]*ifaceEntry
	order      []uint64 // first-seen order: the deterministic tie-break
}

// NewInterfaces builds a miner tracking at most maxFPs distinct
// fingerprints with maxSamples observed values per slot.
func NewInterfaces(maxFPs, maxSamples int) *Interfaces {
	if maxFPs <= 0 {
		maxFPs = 2048
	}
	if maxSamples <= 0 {
		maxSamples = 8
	}
	return &Interfaces{maxFPs: maxFPs, maxSamples: maxSamples, byFP: make(map[uint64]*ifaceEntry)}
}

// Observe folds one admitted record's fingerprint and literals in. New
// fingerprints past the bound are ignored (hits on tracked ones still
// count), keeping the table size fixed under adversarial workloads.
func (x *Interfaces) Observe(fp uint64, sql string, lits []sqlparser.Literal) {
	if fp == 0 {
		return
	}
	e, ok := x.byFP[fp]
	if !ok {
		if len(x.byFP) >= x.maxFPs {
			return
		}
		e = &ifaceEntry{Skeleton: qlog.Skeleton(sql), Slots: make([]*slotAcc, len(lits))}
		for i, lit := range lits {
			e.Slots[i] = &slotAcc{Numeric: lit.Kind == sqlparser.Number}
		}
		x.byFP[fp] = e
		x.order = append(x.order, fp)
	}
	e.Hits++
	for i, lit := range lits {
		if i >= len(e.Slots) {
			break
		}
		s := e.Slots[i]
		s.Count++
		switch lit.Kind {
		case sqlparser.Number:
			if s.Count == 1 || lit.Num < s.Min {
				s.Min = lit.Num
			}
			if s.Count == 1 || lit.Num > s.Max {
				s.Max = lit.Num
			}
			s.sample(lit.Text, x.maxSamples)
		case sqlparser.String:
			s.sample(lit.Str, x.maxSamples)
		default:
			s.sample(lit.Text, x.maxSamples)
		}
	}
}

// Render returns the top-K interfaces by hits (ties broken by first-seen
// order). tmpl, when non-nil, supplies the slot → column/operator bindings
// from the extraction layer's cached templates; slots the template does not
// bind (or whose template was evicted) render with observed values only.
func (x *Interfaces) Render(top int, tmpl *extract.TemplateCache) []Interface {
	if top <= 0 {
		top = 10
	}
	idx := make(map[uint64]int, len(x.order))
	for i, fp := range x.order {
		idx[fp] = i
	}
	fps := append([]uint64(nil), x.order...)
	sort.SliceStable(fps, func(i, j int) bool {
		a, b := x.byFP[fps[i]], x.byFP[fps[j]]
		if a.Hits != b.Hits {
			return a.Hits > b.Hits
		}
		return idx[fps[i]] < idx[fps[j]]
	})
	if len(fps) > top {
		fps = fps[:top]
	}
	out := make([]Interface, 0, len(fps))
	for _, fp := range fps {
		e := x.byFP[fp]
		iface := Interface{
			Fingerprint: strconv.FormatUint(fp, 16),
			Skeleton:    e.Skeleton,
			Hits:        e.Hits,
		}
		var binds []extract.SlotBinding
		if tmpl != nil {
			if t, ok := tmpl.Get(fp); ok && t != nil {
				binds = t.SlotBindings()
			}
		}
		bydSlot := make(map[int]extract.SlotBinding, len(binds))
		for _, b := range binds {
			bydSlot[b.Slot] = b
		}
		for i, s := range e.Slots {
			if s == nil || s.Count == 0 {
				continue
			}
			p := Param{Slot: i + 1, Count: s.Count, Samples: s.Samples, Type: "string"}
			if s.Numeric {
				p.Type = "number"
				p.Min = strconv.FormatFloat(s.Min, 'g', -1, 64)
				p.Max = strconv.FormatFloat(s.Max, 'g', -1, 64)
			}
			if b, ok := bydSlot[i+1]; ok {
				p.Column, p.Op = b.Column, b.Op
			}
			iface.Params = append(iface.Params, p)
		}
		out = append(out, iface)
	}
	return out
}

// Len reports how many fingerprints are tracked.
func (x *Interfaces) Len() int { return len(x.byFP) }

// InterfacesState is the snapshot form of an Interfaces miner.
type InterfacesState struct {
	Order   []uint64               `json:"order,omitempty"`
	Entries map[string]*ifaceEntry `json:"entries,omitempty"` // key: decimal fp
}

// ExportState snapshots the miner.
func (x *Interfaces) ExportState() *InterfacesState {
	st := &InterfacesState{Order: append([]uint64(nil), x.order...)}
	if len(x.byFP) > 0 {
		st.Entries = make(map[string]*ifaceEntry, len(x.byFP))
		for fp, e := range x.byFP {
			cp := &ifaceEntry{Skeleton: e.Skeleton, Hits: e.Hits, Slots: make([]*slotAcc, len(e.Slots))}
			for i, s := range e.Slots {
				if s == nil {
					continue
				}
				sc := *s
				sc.Samples = append([]string(nil), s.Samples...)
				cp.Slots[i] = &sc
			}
			st.Entries[strconv.FormatUint(fp, 10)] = cp
		}
	}
	return st
}

// RestoreState replaces the miner's state with a snapshot.
func (x *Interfaces) RestoreState(st *InterfacesState) {
	x.byFP = make(map[uint64]*ifaceEntry, len(st.Entries))
	x.order = nil
	for _, fp := range st.Order {
		key := strconv.FormatUint(fp, 10)
		e, ok := st.Entries[key]
		if !ok {
			continue
		}
		cp := &ifaceEntry{Skeleton: e.Skeleton, Hits: e.Hits, Slots: make([]*slotAcc, len(e.Slots))}
		for i, s := range e.Slots {
			if s == nil {
				continue
			}
			sc := *s
			sc.Samples = append([]string(nil), s.Samples...)
			if len(sc.Samples) >= x.maxSamples {
				sc.overflow = true
			}
			cp.Slots[i] = &sc
		}
		x.byFP[fp] = cp
		x.order = append(x.order, fp)
	}
}
