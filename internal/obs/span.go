package obs

import (
	"sync/atomic"
	"time"
)

// spansEnabled gates every Start call. Spans default to on: an observation
// is two atomic adds, which the pipeline cannot feel. Disabling drops the
// Start path to one atomic load and a zero Span — no time read, no
// allocation (asserted by TestSpanDisabledZeroAllocs).
var spansEnabled atomic.Bool

func init() { spansEnabled.Store(true) }

// SetSpansEnabled turns stage-span collection on or off process-wide.
func SetSpansEnabled(on bool) { spansEnabled.Store(on) }

// SpansEnabled reports whether stage spans are being collected.
func SpansEnabled() bool { return spansEnabled.Load() }

// Stage is a named hot-path phase with a latency histogram in the Default
// registry. Declare stages as package vars:
//
//	var parseStage = obs.NewStage("sqlparser_parse")
//
// and bracket the phase with
//
//	sp := parseStage.Start()
//	defer sp.End()
//
// Stage methods tolerate a nil receiver so optional instrumentation can be
// threaded without nil checks at every call site.
type Stage struct {
	hist *Histogram
}

// NewStage registers a stage latency histogram
// skyaccess_stage_<name>_seconds in the Default registry. Repeated calls
// with the same name share one histogram.
func NewStage(name string) *Stage {
	return &Stage{hist: NewHistogram(
		"skyaccess_stage_"+name+"_seconds",
		"latency of the "+name+" stage in seconds",
		nil,
	)}
}

// Span is an in-flight stage measurement. It is a two-word value — spans
// nest, cross goroutine boundaries when passed by value, and never
// allocate. The zero Span (from a disabled or nil stage) is inert.
type Span struct {
	stage *Stage
	t0    time.Time
}

// Start begins a span. On the disabled path it returns the zero Span
// without reading the clock.
func (st *Stage) Start() Span {
	if st == nil || !spansEnabled.Load() {
		return Span{}
	}
	return Span{stage: st, t0: time.Now()}
}

// End completes the span and records its duration in the stage histogram.
// Ending a zero Span is a no-op, so End need not be guarded even when the
// collection flag flipped mid-span.
func (s Span) End() {
	if s.stage == nil {
		return
	}
	s.stage.hist.Observe(time.Since(s.t0).Seconds())
}

// Observe records an externally measured duration (the qlog pipeline
// already times its stages for the §6.6 report; re-timing them would skew
// both numbers). Nil-stage and disabled paths are no-ops.
func (st *Stage) Observe(d time.Duration) {
	if st == nil || !spansEnabled.Load() {
		return
	}
	st.hist.Observe(d.Seconds())
}

// Count returns the number of completed spans (0 for a nil stage).
func (st *Stage) Count() int64 {
	if st == nil {
		return 0
	}
	return st.hist.Count()
}
