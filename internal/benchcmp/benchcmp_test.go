package benchcmp

import (
	"strings"
	"testing"
)

// baseline mirrors the shape of the checked-in BENCH_clustering.json.
const baseline = `{
  "queries": 20000,
  "seed": 42,
  "before_brute_force": {
    "elapsed_ms": 31017.2,
    "distance_evals": 51379824,
    "cache_hits": 0
  },
  "after_pivot_index": {
    "elapsed_ms": 15706.4,
    "distance_evals": 16716455,
    "cache_hits": 16627311
  },
  "eval_ratio": 3.0736,
  "speedup_x": 1.9748,
  "identical_clusters": true
}`

func TestIdenticalRecordsPass(t *testing.T) {
	rep, err := Compare([]byte(baseline), []byte(baseline), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical records regressed: %+v", regs)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("identical records compared zero metrics")
	}
}

// The acceptance fixture: a synthetic 20% counter regression must fail at
// tol 0.15.
func TestTwentyPercentRegressionFails(t *testing.T) {
	worse := strings.Replace(baseline,
		`"distance_evals": 16716455,
    "cache_hits": 16627311`,
		`"distance_evals": 20059746,
    "cache_hits": 16627311`, 1)
	rep, err := Compare([]byte(baseline), []byte(worse), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the distance_evals one", regs)
	}
	if regs[0].Path != "after_pivot_index.distance_evals" {
		t.Errorf("regressed path %q", regs[0].Path)
	}
	if regs[0].Delta < 0.19 || regs[0].Delta > 0.21 {
		t.Errorf("delta = %v, want ~0.20", regs[0].Delta)
	}
}

func TestWithinToleranceDriftPasses(t *testing.T) {
	// +10% distance evals at tol 0.15: drift, not a regression.
	worse := strings.Replace(baseline, `"distance_evals": 16716455`,
		`"distance_evals": 18388100`, 1)
	rep, err := Compare([]byte(baseline), []byte(worse), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("10%% drift flagged at tol 0.15: %+v", regs)
	}
}

func TestHigherBetterDirection(t *testing.T) {
	// cache_hits dropping 30% is a regression; rising 30% is not.
	drop := strings.Replace(baseline, `"cache_hits": 16627311`,
		`"cache_hits": 11639117`, 1)
	rep, err := Compare([]byte(baseline), []byte(drop), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Regressions() {
		if f.Path == "after_pivot_index.cache_hits" {
			found = true
		}
	}
	if !found {
		t.Errorf("30%% cache_hits drop not flagged: %+v", rep.Regressions())
	}

	rise := strings.Replace(baseline, `"distance_evals": 16716455`,
		`"distance_evals": 1671645`, 1)
	rep, err = Compare([]byte(baseline), []byte(rise), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %+v", regs)
	}
}

func TestTimingFieldsIgnored(t *testing.T) {
	// 10x slower wall clock must not fail the gate: timings are noise.
	slow := strings.Replace(baseline, `"elapsed_ms": 15706.4`,
		`"elapsed_ms": 157064.0`, 1)
	slow = strings.Replace(slow, `"speedup_x": 1.9748`, `"speedup_x": 0.2`, 1)
	rep, err := Compare([]byte(baseline), []byte(slow), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("timing drift flagged: %+v", regs)
	}
}

func TestScaleMismatchSkipsCounters(t *testing.T) {
	small := strings.Replace(baseline, `"queries": 20000`, `"queries": 2000`, 1)
	small = strings.Replace(small, `"distance_evals": 16716455`,
		`"distance_evals": 99999999`, 1)
	rep, err := Compare([]byte(baseline), []byte(small), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("cross-scale counters compared: %+v", regs)
	}
	if len(rep.Skipped) == 0 {
		t.Error("scale mismatch reported no skipped counters")
	}
}

func TestIdentityFlagFlipFails(t *testing.T) {
	flip := strings.Replace(baseline, `"identical_clusters": true`,
		`"identical_clusters": false`, 1)
	rep, err := Compare([]byte(baseline), []byte(flip), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Path != "identical_clusters" {
		t.Fatalf("identity flip not flagged: %+v", regs)
	}
}

func TestMissingMetricFails(t *testing.T) {
	gone := strings.Replace(baseline, `"eval_ratio": 3.0736,`, ``, 1)
	rep, err := Compare([]byte(baseline), []byte(gone), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Regressions() {
		if f.Path == "eval_ratio" && f.Note == "metric disappeared" {
			found = true
		}
	}
	if !found {
		t.Errorf("dropped metric not flagged: %+v", rep.Regressions())
	}
}

func TestMetricsSubtreeExcluded(t *testing.T) {
	// A "metrics" snapshot (benchreport -obs) holds process-cumulative
	// observability counters; they must not enter the gate.
	withObs := strings.Replace(baseline, `"seed": 42,`,
		`"seed": 42, "metrics": {"skyaccess_qlog_cache_hits_total": 5},`, 1)
	rep, err := Compare([]byte(withObs), []byte(baseline), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		if strings.HasPrefix(f.Path, "metrics.") {
			t.Errorf("metrics subtree compared: %+v", f)
		}
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("obs snapshot perturbed the gate: %+v", regs)
	}
}

func TestBadJSONErrors(t *testing.T) {
	if _, err := Compare([]byte("{"), []byte(baseline), 0.15); err == nil {
		t.Error("truncated old record accepted")
	}
	if _, err := Compare([]byte(baseline), []byte("nope"), 0.15); err == nil {
		t.Error("garbage new record accepted")
	}
}

func TestScaleMismatchMissingGatedKeyFails(t *testing.T) {
	// The historical bug: at a scale mismatch, a gated key missing from the
	// new record slipped into the skip list and the gate passed silently. A
	// vanished key must fail regardless of scale.
	small := strings.Replace(baseline, `"queries": 20000`, `"queries": 2000`, 1)
	small = strings.Replace(small, `"distance_evals": 16716455,`, ``, 1)
	rep, err := Compare([]byte(baseline), []byte(small), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Regressions() {
		if f.Path == "after_pivot_index.distance_evals" {
			found = true
			if !strings.Contains(f.Note, "missing") {
				t.Errorf("note = %q", f.Note)
			}
		}
	}
	if !found {
		t.Fatalf("missing gated key at scale mismatch not flagged: %+v", rep.Regressions())
	}
	for _, s := range rep.Skipped {
		if s == "after_pivot_index.distance_evals" {
			t.Error("missing key also listed as skipped")
		}
	}
}

const semBaseline = `{
  "queries": 20000,
  "verify_failed": 0,
  "hit_ratio": 0.87,
  "hit_ratio_at_half_budget": 0.80,
  "identical_single_region": true,
  "identical_composed": true
}`

func TestZeroStayZeroAcrossScales(t *testing.T) {
	// verify_failed leaving zero fails even at a different workload scale
	// and within any tolerance.
	bad := strings.Replace(semBaseline, `"queries": 20000`, `"queries": 500`, 1)
	bad = strings.Replace(bad, `"verify_failed": 0`, `"verify_failed": 1`, 1)
	rep, err := Compare([]byte(semBaseline), []byte(bad), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Regressions() {
		if f.Path == "verify_failed" && strings.Contains(f.Note, "left zero") {
			found = true
		}
	}
	if !found {
		t.Fatalf("verify_failed=1 not flagged: %+v", rep.Regressions())
	}

	gone := strings.Replace(semBaseline, `"verify_failed": 0,`, ``, 1)
	rep, err = Compare([]byte(semBaseline), []byte(gone), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, f := range rep.Regressions() {
		if f.Path == "verify_failed" && strings.Contains(f.Note, "disappeared") {
			found = true
		}
	}
	if !found {
		t.Fatalf("vanished verify_failed not flagged: %+v", rep.Regressions())
	}
}

func TestCompareIdentityIgnoresCountersGatesBooleans(t *testing.T) {
	// A quick reduced-scale run: every counter and ratio differs wildly, but
	// identity booleans hold and zero-gates hold — must pass.
	quick := strings.Replace(semBaseline, `"queries": 20000`, `"queries": 500`, 1)
	quick = strings.Replace(quick, `"hit_ratio": 0.87`, `"hit_ratio": 0.10`, 1)
	quick = strings.Replace(quick, `"hit_ratio_at_half_budget": 0.80`, `"hit_ratio_at_half_budget": 0.05`, 1)
	rep, err := CompareIdentity([]byte(semBaseline), []byte(quick))
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identity compare gated a counter: %+v", regs)
	}

	// But an identity boolean flipping still fails.
	flip := strings.Replace(quick, `"identical_composed": true`, `"identical_composed": false`, 1)
	rep, err = CompareIdentity([]byte(semBaseline), []byte(flip))
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Path != "identical_composed" {
		t.Fatalf("identity flip not flagged: %+v", regs)
	}

	// And so does a zero-gate breach.
	bad := strings.Replace(quick, `"verify_failed": 0`, `"verify_failed": 3`, 1)
	rep, err = CompareIdentity([]byte(semBaseline), []byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 1 {
		t.Fatalf("zero-gate breach in identity mode: %+v", rep.Regressions())
	}
}
