package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/memdb"
)

func queryServer(t *testing.T, verify bool) (*Server, *httptest.Server) {
	t.Helper()
	db := testDB()
	s, err := NewServer(Config{
		Miner:       minerConfig(db),
		QueryDB:     db,
		QueryVerify: verify,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postQuery(t *testing.T, url, contentType, body string) (int, http.Header, queryReply) {
	t.Helper()
	resp, err := http.Post(url+"/query", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	var reply queryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("query reply: %v", err)
	}
	return resp.StatusCode, resp.Header, reply
}

func TestQueryEndpoint(t *testing.T) {
	s, ts := queryServer(t, true)
	postNDJSON(t, ts.URL, synthRecords(800, 7))
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}

	// Raw-SQL body. The whole-table probe may hit or miss depending on the
	// mined regions; correctness and labelling are what we pin here.
	sql := "SELECT TOP 5 objid FROM Photoz WHERE objid BETWEEN 1237657855534432934 AND 1237666210342830434"
	status, hdr, reply := postQuery(t, ts.URL, "text/plain", sql)
	if status != http.StatusOK || reply.Error != "" {
		t.Fatalf("status %d, error %q", status, reply.Error)
	}
	if got := hdr.Get("X-Cache"); got != "HIT" && got != "MISS" {
		t.Fatalf("X-Cache = %q", got)
	}
	if hdr.Get("X-Cache-Generation") == "" {
		t.Fatal("missing X-Cache-Generation")
	}
	if reply.RowCount != len(reply.Rows) || len(reply.Columns) == 0 {
		t.Fatalf("reply shape: %+v", reply)
	}

	// JSON body form must behave identically.
	body, _ := json.Marshal(map[string]string{"sql": sql})
	status2, _, reply2 := postQuery(t, ts.URL, "application/json", string(body))
	if status2 != http.StatusOK {
		t.Fatalf("json body status %d", status2)
	}
	if a, b := mustJSON(t, reply.Rows), mustJSON(t, reply2.Rows); a != b {
		t.Fatalf("raw vs json body rows differ:\n%s\n%s", a, b)
	}

	// Parse errors surface as 400 with the executor's message.
	status3, _, reply3 := postQuery(t, ts.URL, "text/plain", "DROP TABLE Photoz")
	if status3 != http.StatusBadRequest || reply3.Error == "" {
		t.Fatalf("bad statement: status %d, error %q", status3, reply3.Error)
	}

	// The oracle ran on every hit; none may have failed.
	if m := s.QueryCache().Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}

	// Metrics expose the semantic-cache counters.
	_, _, metricsBody := get(t, ts.URL+"/metrics", "")
	var metrics map[string]any
	if err := json.Unmarshal(metricsBody, &metrics); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"semcache_hits", "semcache_misses", "semcache_regions",
		"semcache_generation", "semcache_bytes_served", "semcache_per_region"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
}

func TestQueryUnconfigured(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("SELECT 1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReportETag drives the If-None-Match flow across all three content
// types: same generation → 304 with no body, new epoch → fresh body and a
// changed tag, and the tag must differ across formats so a client cache
// never serves a CSV body for a JSON request.
func TestReportETag(t *testing.T) {
	_, ts := queryServer(t, false)
	postNDJSON(t, ts.URL, synthRecords(300, 3))
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}

	tags := map[string]string{}
	for _, accept := range []string{"text/plain", "text/csv", "application/json"} {
		status, hdr, body := get(t, ts.URL+"/report", accept)
		if status != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d bytes", accept, status, len(body))
		}
		etag := hdr.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", accept)
		}
		tags[accept] = etag

		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/report", nil)
		req.Header.Set("Accept", accept)
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified || buf.Len() != 0 {
			t.Fatalf("%s: conditional status %d, %d bytes; want 304 empty", accept, resp.StatusCode, buf.Len())
		}
	}
	if tags["text/plain"] == tags["text/csv"] || tags["text/csv"] == tags["application/json"] {
		t.Fatalf("formats share an ETag: %v", tags)
	}

	// A new epoch must invalidate: the same If-None-Match now gets a body.
	postNDJSON(t, ts.URL, synthRecords(300, 4))
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/report", nil)
	req.Header.Set("If-None-Match", tags["text/plain"])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || buf.Len() == 0 {
		t.Fatalf("post-epoch conditional: status %d, %d bytes; want fresh 200", resp.StatusCode, buf.Len())
	}
	if resp.Header.Get("ETag") == tags["text/plain"] {
		t.Fatal("ETag unchanged across epochs")
	}
}

// TestSemCacheSmoke is the make semcache-smoke gate: mine a 5k-query log,
// prefetch regions, serve the same statements through POST /query with the
// byte-identity oracle on, and require zero oracle failures plus a real hit
// population. It exercises the full mine → prefetch → serve → verify loop
// in one process.
func TestSemCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke gate is slow")
	}
	db := testDB()
	s, err := NewServer(Config{
		Miner:       minerConfig(db),
		QueryDB:     db,
		QueryVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := synthRecords(5000, 99)
	for start := 0; start < len(recs); start += 1000 {
		end := start + 1000
		if end > len(recs) {
			end = len(recs)
		}
		postNDJSON(t, ts.URL, recs[start:end])
	}
	if _, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	}

	opts := memdb.ExecOptions{RowLimit: 500000, StrictTSQL: true}
	served := 0
	for _, rec := range recs {
		status, _, reply := postQuery(t, ts.URL, "text/plain", rec.SQL)
		direct, derr := db.ExecuteSQL(rec.SQL, opts)
		if derr != nil {
			if status != http.StatusBadRequest {
				t.Fatalf("direct failed but /query served %q: %d", rec.SQL, status)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("/query failed for %q: %d %s", rec.SQL, status, reply.Error)
		}
		if reply.RowCount != len(direct.Rows) {
			t.Fatalf("row count mismatch for %q: served %d, direct %d (hit=%v)",
				rec.SQL, reply.RowCount, len(direct.Rows), reply.Cache.Hit)
		}
		served++
	}
	m := s.QueryCache().Metrics()
	if m.VerifyFailed != 0 {
		t.Fatalf("oracle failures: %+v", m)
	}
	if m.Hits == 0 {
		t.Fatal("smoke run produced no cache hits")
	}
	ratio := float64(m.Hits) / float64(m.Hits+m.Misses)
	t.Logf("served=%d hits=%d misses=%d ratio=%.3f regions=%d", served, m.Hits, m.Misses, ratio, m.Regions)
	if ratio < 0.5 {
		t.Errorf("hit ratio %.3f below the 0.5 acceptance floor", ratio)
	}
}
