package qlog

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/extract"
	"repro/internal/sqlparser"
)

// AreaRecord pairs a log record with its extracted access area.
type AreaRecord struct {
	Record Record
	Area   *extract.AccessArea
}

// StageTime aggregates min/max/total durations for one pipeline stage,
// mirroring the per-stage ranges reported in Section 6.6.
type StageTime struct {
	Min, Max, Total time.Duration
	Count           int
}

func (s *StageTime) observe(d time.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Total += d
	s.Count++
}

// Mean returns the average stage duration.
func (s *StageTime) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// merge folds another StageTime into this one.
func (s *StageTime) merge(o StageTime) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Total += o.Total
	s.Count += o.Count
}

// Stats summarises a pipeline run: the extraction-coverage numbers of
// Section 6.1 plus the stage timings of Section 6.6.
type Stats struct {
	Total     int
	Parsed    int // statements the parser accepted as SELECT
	Extracted int // access areas produced
	// ParseFailures counts rejected statements by category ("syntax",
	// "udf", "non-select", "unsupported", "lex").
	ParseFailures map[string]int
	// ExtractFailures counts parsed statements the extractor rejected
	// (self-joins etc.).
	ExtractFailures int
	Truncated       int // hit the 35-predicate CNF cap
	Approximate     int // inexact mappings
	EmptyAreas      int // provably empty (contradictory) areas

	Parse       StageTime
	Extract     StageTime
	CNF         StageTime
	Consolidate StageTime

	Elapsed time.Duration
}

// Coverage returns the extraction coverage fraction (the paper reports
// 12,375,426 / 12,442,989 = 99.46%).
func (s *Stats) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Extracted) / float64(s.Total)
}

// Pipeline extracts access areas from log records.
type Pipeline struct {
	Extractor *extract.Extractor
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Run processes all records, returning the successful extractions in input
// order and the aggregate statistics.
func (p *Pipeline) Run(recs []Record) ([]AreaRecord, *Stats) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	results := make([]*AreaRecord, len(recs))
	partStats := make([]*Stats, workers)

	var wg sync.WaitGroup
	chunk := (len(recs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		if lo >= hi {
			partStats[w] = newStats()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := newStats()
			for i := lo; i < hi; i++ {
				if ar := p.processOne(recs[i], st); ar != nil {
					results[i] = ar
				}
			}
			partStats[w] = st
		}(w, lo, hi)
	}
	wg.Wait()

	total := newStats()
	for _, ps := range partStats {
		if ps == nil {
			continue
		}
		total.Total += ps.Total
		total.Parsed += ps.Parsed
		total.Extracted += ps.Extracted
		total.ExtractFailures += ps.ExtractFailures
		total.Truncated += ps.Truncated
		total.Approximate += ps.Approximate
		total.EmptyAreas += ps.EmptyAreas
		for k, v := range ps.ParseFailures {
			total.ParseFailures[k] += v
		}
		total.Parse.merge(ps.Parse)
		total.Extract.merge(ps.Extract)
		total.CNF.merge(ps.CNF)
		total.Consolidate.merge(ps.Consolidate)
	}
	total.Elapsed = time.Since(start)

	out := make([]AreaRecord, 0, len(recs))
	for _, ar := range results {
		if ar != nil {
			out = append(out, *ar)
		}
	}
	return out, total
}

func newStats() *Stats {
	return &Stats{ParseFailures: make(map[string]int)}
}

func (p *Pipeline) processOne(rec Record, st *Stats) *AreaRecord {
	st.Total++
	t0 := time.Now()
	stmt, err := sqlparser.Parse(rec.SQL)
	st.Parse.observe(time.Since(t0))
	if err != nil {
		st.ParseFailures[classifyParseError(err)]++
		return nil
	}
	sel, ok := stmt.(*sqlparser.SelectStatement)
	if !ok {
		st.ParseFailures["non-select"]++
		return nil
	}
	st.Parsed++
	area, tm, err := p.Extractor.ExtractWithTimings(sel)
	if err != nil {
		// A failed extraction never reaches the CNF/consolidation stages, so
		// observing its Extract time would leave the three stage Counts
		// disagreeing in the §6.6 report; all three stages are observed for
		// exactly the successfully extracted statements.
		st.ExtractFailures++
		return nil
	}
	st.Extract.observe(tm.Extract)
	st.CNF.observe(tm.CNF)
	st.Consolidate.observe(tm.Consolidate)
	st.Extracted++
	if area.Truncated {
		st.Truncated++
	}
	if !area.Exact {
		st.Approximate++
	}
	if area.IsEmpty() {
		st.EmptyAreas++
	}
	return &AreaRecord{Record: rec, Area: area}
}

func classifyParseError(err error) string {
	var pe *sqlparser.ParseError
	if errors.As(err, &pe) {
		return pe.Category.String()
	}
	var le *sqlparser.LexError
	if errors.As(err, &le) {
		return "lex"
	}
	return "other"
}
