package memdb

import (
	"fmt"
	"sync"
	"testing"
)

func TestRateLimiterQuota(t *testing.T) {
	rl := NewRateLimiter(3)
	for i := int64(0); i < 3; i++ {
		if !rl.Allow("u", i) {
			t.Fatalf("query %d within quota denied", i)
		}
	}
	if rl.Allow("u", 3) {
		t.Fatal("4th query within the window allowed")
	}
	// At ts=61 the queries at ts=0 and ts=1 have left the window (1, 61],
	// freeing two slots; the third in-window entry (ts=2) still counts.
	if !rl.Allow("u", 61) {
		t.Fatal("query after window expiry denied")
	}
	if err := rl.Check("u", 61); err != nil {
		t.Fatalf("second freed slot denied: %v", err)
	}
	if err := rl.Check("u", 61); err == nil {
		t.Fatal("Check should deny the fourth in-window query")
	} else if err.Error() != "Maximum 3 queries allowed per minute" {
		t.Fatalf("error = %q", err)
	}
}

func TestRateLimiterUsersIndependent(t *testing.T) {
	rl := NewRateLimiter(1)
	if !rl.Allow("a", 0) || !rl.Allow("b", 0) {
		t.Fatal("users must have independent quotas")
	}
}

// Out-of-order arrival must not wedge eviction. With the old prefix scan,
// the late ts=50 entry hid behind ts=100 and was never evicted, so the
// ts=155 query — whose own window (95, 155] holds only one entry — was
// denied despite being within quota.
func TestRateLimiterOutOfOrderFairness(t *testing.T) {
	rl := NewRateLimiter(2)
	if !rl.Allow("u", 100) {
		t.Fatal("first query denied")
	}
	if !rl.Allow("u", 50) {
		t.Fatal("late query within its own window denied")
	}
	if !rl.Allow("u", 155) {
		t.Fatal("query denied by an entry outside its window")
	}
}

// Under -race: many goroutines hammer overlapping users concurrently. With
// every request at the same logical time, all requests share one window, so
// each user must be admitted exactly PerMinute times — no more (quota), no
// fewer (no lost admissions under contention).
func TestRateLimiterConcurrent(t *testing.T) {
	const (
		users      = 8
		perUser    = 50
		perMinute  = 10
		goroutines = 16
	)
	rl := NewRateLimiter(perMinute)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		allowed = make(map[string]int)
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perUser; i++ {
				user := fmt.Sprintf("user%d", (g+i)%users)
				if rl.Allow(user, 30) {
					mu.Lock()
					allowed[user]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(allowed) != users {
		t.Fatalf("admitted %d users, want %d", len(allowed), users)
	}
	for user, n := range allowed {
		if n != perMinute {
			t.Errorf("%s admitted %d times, want exactly %d", user, n, perMinute)
		}
	}
}

// Out-of-order timestamps under concurrency: exercises the sorted-insert and
// eviction paths for data races; semantics are covered deterministically by
// TestRateLimiterOutOfOrderFairness.
func TestRateLimiterConcurrentOutOfOrder(t *testing.T) {
	rl := NewRateLimiter(5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts := int64((i*37 + g*61) % 500)
				rl.Allow(fmt.Sprintf("user%d", i%4), ts)
			}
		}(g)
	}
	wg.Wait()
}
