package predicate

import (
	"sort"

	"repro/internal/interval"
)

// Bounds computes, for every numeric column, the projection of the CNF onto
// that column as an interval set: the set of values the column can take in a
// tuple satisfying the constraint. Clauses whose predicates all concern the
// same single column contribute the union of their predicate sets; clauses
// spanning several columns (or containing column-column / string predicates)
// do not constrain any single column and are skipped. The result is thus a
// sound over-approximation of the true projection.
//
// Bounds feeds (a) the effective-domain computation of the aggregate-query
// lemmas (Section 4.3: dom(T.v) intersected with WHERE-derived bounds) and
// (b) the bounding boxes of aggregated access areas (Section 6.2).
func Bounds(c CNF) map[string]interval.Set {
	out := make(map[string]interval.Set)
	for _, cl := range c {
		col, set, ok := clauseColumnSet(cl)
		if !ok {
			continue
		}
		if cur, exists := out[col]; exists {
			out[col] = cur.Intersect(set)
		} else {
			out[col] = set
		}
	}
	return out
}

// clauseColumnSet returns the single column a clause constrains and the
// union of its predicate value sets; ok is false when the clause references
// several columns or contains non-interval predicates.
func clauseColumnSet(cl Clause) (string, interval.Set, bool) {
	if len(cl) == 0 {
		return "", interval.Set{}, false
	}
	col := ""
	set := interval.EmptySet()
	for _, p := range cl {
		s, ok := p.Interval()
		if !ok {
			return "", interval.Set{}, false
		}
		if col == "" {
			col = p.Column
		} else if col != p.Column {
			return "", interval.Set{}, false
		}
		set = set.Union(s)
	}
	return col, set, true
}

// StringBounds computes, for every categorical column the CNF pins to an
// explicit value list, the set of admissible string constants: clauses whose
// predicates are all string equalities on one column contribute the union of
// their values, and several such clauses on the same column intersect. Like
// Bounds, it is a sound over-approximation — clauses of any other shape
// (numeric, negated, multi-column) constrain nothing here and are skipped.
// The semantic result cache uses it to test a query's categorical demands
// against a region's cached value lists (DESIGN.md §11).
func StringBounds(c CNF) map[string][]string {
	out := make(map[string][]string)
	for _, cl := range c {
		col, vals, ok := clauseStringSet(cl)
		if !ok {
			continue
		}
		if cur, exists := out[col]; exists {
			out[col] = intersectStrings(cur, vals)
		} else {
			out[col] = vals
		}
	}
	for col := range out {
		sort.Strings(out[col])
	}
	return out
}

// clauseStringSet returns the single column a clause pins to string values
// and the union of those values; ok is false when any predicate is not a
// plain string equality or the clause spans several columns.
func clauseStringSet(cl Clause) (string, []string, bool) {
	if len(cl) == 0 {
		return "", nil, false
	}
	col := ""
	var vals []string
	for _, p := range cl {
		if p.Kind != ColumnConstant || p.Op != Eq || p.Val.Kind != StringVal {
			return "", nil, false
		}
		if col == "" {
			col = p.Column
		} else if col != p.Column {
			return "", nil, false
		}
		vals = append(vals, p.Val.Str)
	}
	return col, dedupStrings(vals), true
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func intersectStrings(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	out := make([]string, 0, len(a))
	for _, s := range a {
		if inB[s] {
			out = append(out, s)
		}
	}
	return out
}

// BoundsBox converts per-column bounds to a Box using each set's hull.
func BoundsBox(bounds map[string]interval.Set) *interval.Box {
	box := interval.NewBox()
	for col, set := range bounds {
		box.Set(col, set.Hull())
	}
	return box
}
