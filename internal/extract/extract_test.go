package extract

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/schema"
)

// testSchema mirrors the toy relations (T, S, R) used throughout the
// paper's examples plus a few SkyServer relations.
func testSchema() *schema.Schema {
	s := schema.New()
	s.Add(schema.NewRelation("T",
		schema.Column{Name: "u", Type: schema.Numeric},
		schema.Column{Name: "v", Type: schema.Numeric},
		schema.Column{Name: "s", Type: schema.Numeric},
	))
	s.Add(schema.NewRelation("S",
		schema.Column{Name: "u", Type: schema.Numeric},
		schema.Column{Name: "v", Type: schema.Numeric},
	))
	s.Add(schema.NewRelation("R",
		schema.Column{Name: "v", Type: schema.Numeric},
		schema.Column{Name: "x", Type: schema.Numeric},
	))
	s.Add(schema.NewRelation("PhotoObjAll",
		schema.Column{Name: "objid", Type: schema.Numeric},
		schema.Column{Name: "ra", Type: schema.Numeric, Domain: interval.Closed(0, 360)},
		schema.Column{Name: "dec", Type: schema.Numeric, Domain: interval.Closed(-90, 90)},
	))
	s.Add(schema.NewRelation("SpecObjAll",
		schema.Column{Name: "specobjid", Type: schema.Numeric},
		schema.Column{Name: "ra", Type: schema.Numeric},
		schema.Column{Name: "plate", Type: schema.Numeric},
		schema.Column{Name: "mjd", Type: schema.Numeric},
		schema.Column{Name: "class", Type: schema.Categorical},
	))
	// Relations with bounded domains for the aggregate lemmas.
	s.Add(schema.NewRelation("NEG", // dom(v) = [-10, 0]
		schema.Column{Name: "u", Type: schema.Numeric},
		schema.Column{Name: "v", Type: schema.Numeric, Domain: interval.Closed(-10, 0)},
	))
	s.Add(schema.NewRelation("POS", // dom(v) = [0, 10]
		schema.Column{Name: "u", Type: schema.Numeric},
		schema.Column{Name: "v", Type: schema.Numeric, Domain: interval.Closed(0, 10)},
	))
	return s
}

func extractQ(t *testing.T, src string) *AccessArea {
	t.Helper()
	ex := New(testSchema())
	area, err := ex.ExtractSQL(src)
	if err != nil {
		t.Fatalf("extract %q: %v", src, err)
	}
	return area
}

// hasClause reports whether the CNF contains a clause whose rendering
// equals want (predicates joined by " OR " in canonical order).
func hasClause(a *AccessArea, want string) bool {
	for _, cl := range a.CNF {
		parts := make([]string, len(cl))
		for i, p := range cl {
			parts[i] = p.String()
		}
		if strings.Join(parts, " OR ") == want {
			return true
		}
	}
	return false
}

func wantClauses(t *testing.T, a *AccessArea, clauses ...string) {
	t.Helper()
	if len(a.CNF) != len(clauses) {
		t.Fatalf("clause count = %d, want %d; cnf = %s", len(a.CNF), len(clauses), a.CNF)
	}
	for _, c := range clauses {
		if !hasClause(a, c) {
			t.Errorf("missing clause %q; cnf = %s", c, a.CNF)
		}
	}
}

func wantRelations(t *testing.T, a *AccessArea, rels ...string) {
	t.Helper()
	if len(a.Relations) != len(rels) {
		t.Fatalf("relations = %v, want %v", a.Relations, rels)
	}
	for i, r := range rels {
		if a.Relations[i] != r {
			t.Fatalf("relations = %v, want %v", a.Relations, rels)
		}
	}
}

// --- Section 2.3 / 4.1: simple queries ---

func TestSimpleQuery(t *testing.T) {
	// σ_{u>=1 ∧ u<=8 ∧ s>5}(T) — the Section 4.1 example.
	a := extractQ(t, "SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5")
	wantRelations(t, a, "T")
	wantClauses(t, a, "T.s > 5", "T.u >= 1", "T.u <= 8")
	if !a.Exact {
		t.Error("simple query should be exact")
	}
}

func TestBetweenSplits(t *testing.T) {
	// Section 2.3's BETWEEN example: σ_{u>=1 ∧ u<=8}(T).
	a := extractQ(t, "SELECT * FROM T WHERE u BETWEEN 1 AND 8")
	wantClauses(t, a, "T.u >= 1", "T.u <= 8")
}

func TestNotPushdown(t *testing.T) {
	// NOT (T.u > 5 AND T.v <= 10) => T.u <= 5 OR T.v > 10 (§4.1).
	a := extractQ(t, "SELECT * FROM T WHERE NOT (T.u > 5 AND T.v <= 10)")
	wantClauses(t, a, "T.u <= 5 OR T.v > 10")
	if !a.Exact {
		t.Error("NOT pushdown is exact")
	}
}

func TestIntermediateFormatPreserved(t *testing.T) {
	// Already in intermediate format (§2.4).
	a := extractQ(t, "SELECT * FROM T WHERE (T.u <= 5 OR T.u >= 10) AND T.v <= 5")
	wantClauses(t, a, "T.v <= 5", "T.u <= 5 OR T.u >= 10")
}

func TestNoWhere(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T")
	wantRelations(t, a, "T")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

func TestNoFrom(t *testing.T) {
	a := extractQ(t, "SELECT 1")
	if len(a.Relations) != 0 || !a.CNF.IsTrue() {
		t.Errorf("area = %s", a)
	}
}

func TestContradictionDetected(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE u > 5 AND u < 2")
	if !a.IsEmpty() {
		t.Errorf("area should be empty: %s", a)
	}
}

func TestInList(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE u IN (1, 2, 3)")
	wantClauses(t, a, "T.u = 1 OR T.u = 2 OR T.u = 3")
	// NOT IN becomes a conjunction of disequalities.
	a = extractQ(t, "SELECT * FROM T WHERE u NOT IN (1, 2)")
	wantClauses(t, a, "T.u <> 1", "T.u <> 2")
}

func TestAliasResolution(t *testing.T) {
	a := extractQ(t, "SELECT p.ra FROM PhotoObjAll AS p WHERE p.ra <= 210 AND p.dec <= 10")
	wantRelations(t, a, "PhotoObjAll")
	wantClauses(t, a, "PhotoObjAll.dec <= 10", "PhotoObjAll.ra <= 210")
}

func TestUnqualifiedColumnResolution(t *testing.T) {
	a := extractQ(t, "SELECT * FROM SpecObjAll WHERE plate >= 296 AND plate <= 3200 AND class = 'star'")
	wantClauses(t, a, "SpecObjAll.class = 'star'", "SpecObjAll.plate >= 296", "SpecObjAll.plate <= 3200")
}

func TestMySQLDialectStillExtracts(t *testing.T) {
	// §6.6: "SELECT Galaxies.objid FROM Galaxies LIMIT 10" must extract even
	// though SkyServer would reject it.
	ex := New(testSchema())
	a, err := ex.ExtractSQL("SELECT Galaxies.objid FROM Galaxies LIMIT 10")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	wantRelations(t, a, "Galaxies")
}

func TestConstantComparisonsFold(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE 1 = 1 AND u > 2 + 3")
	wantClauses(t, a, "T.u > 5")
	a = extractQ(t, "SELECT * FROM T WHERE 1 = 2")
	if !a.IsEmpty() {
		t.Error("1=2 should empty the area")
	}
}

func TestReversedComparisonFlips(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE 5 < u")
	wantClauses(t, a, "T.u > 5")
}

func TestColumnColumnPredicate(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T, S WHERE T.u = S.u AND T.v < 3")
	wantRelations(t, a, "S", "T")
	wantClauses(t, a, "T.v < 3", "S.u = T.u")
}

func TestSelfComparison(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE T.u = T.u")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
	a = extractQ(t, "SELECT * FROM T WHERE T.u <> T.u")
	if !a.IsEmpty() {
		t.Error("u <> u should be empty")
	}
}

// --- Section 4.2: joins ---

func TestInnerJoinPushesOn(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T INNER JOIN S ON T.u = S.u WHERE T.v < 3")
	wantRelations(t, a, "S", "T")
	wantClauses(t, a, "T.v < 3", "S.u = T.u")
}

func TestFullOuterJoinDropsConstraint(t *testing.T) {
	// Example 2: access area is σ(T × S).
	a := extractQ(t, "SELECT * FROM T FULL OUTER JOIN S ON T.u = S.u")
	wantRelations(t, a, "S", "T")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s, want TRUE", a.CNF)
	}
	if !a.Exact {
		t.Error("full outer join mapping is exact")
	}
}

func TestRightOuterJoinKeepsEquality(t *testing.T) {
	// Example 3: equivalent to T.u IN (SELECT S.u FROM S), which flattens to
	// T.u = S.u.
	a := extractQ(t, "SELECT * FROM T RIGHT OUTER JOIN S ON T.u = S.u")
	wantClauses(t, a, "S.u = T.u")
	if !a.Exact {
		t.Error("equality outer join mapping is exact")
	}
}

func TestLeftOuterJoinNonEqualityApprox(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T LEFT JOIN S ON T.u < S.u")
	if a.Exact {
		t.Error("non-equality outer join should be approximate")
	}
}

func TestCrossJoin(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T CROSS JOIN S")
	wantRelations(t, a, "S", "T")
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

func TestNaturalJoinEquatesCommonColumns(t *testing.T) {
	// T and S share columns u and v.
	a := extractQ(t, "SELECT * FROM T NATURAL JOIN S")
	wantClauses(t, a, "S.u = T.u", "S.v = T.v")
	if !a.Exact {
		t.Error("natural join with known schema is exact")
	}
}

func TestCommaJoin(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T, S, R WHERE T.u = S.u")
	wantRelations(t, a, "R", "S", "T")
}

func TestSelfJoinRejected(t *testing.T) {
	ex := New(testSchema())
	_, err := ex.ExtractSQL("SELECT * FROM T AS a, T AS b WHERE a.u = b.u")
	var xe *Error
	if !errors.As(err, &xe) || xe.Kind != ErrSelfJoin {
		t.Fatalf("err = %v", err)
	}
	// Self-join between parent and subquery is also excluded.
	_, err = ex.ExtractSQL("SELECT * FROM T WHERE EXISTS (SELECT * FROM T WHERE u > 1)")
	if !errors.As(err, &xe) || xe.Kind != ErrSelfJoin {
		t.Fatalf("nested self-join err = %v", err)
	}
}

// --- Section 4.4: nested queries ---

func TestLemma4ExistsFlattening(t *testing.T) {
	a := extractQ(t, `SELECT * FROM T WHERE T.u > 7 AND EXISTS
		(SELECT * FROM S WHERE S.u = T.u AND S.v < 3)`)
	wantRelations(t, a, "S", "T")
	wantClauses(t, a, "T.u > 7", "S.u = T.u", "S.v < 3")
	if !a.Exact {
		t.Error("Lemma 4 flattening is exact")
	}
}

func TestLemma5TwoAndExistsSameRelation(t *testing.T) {
	// Two AND-connected EXISTS on S must OR their constraints:
	// σ_{T.u>α ∧ S.u=T.u ∧ (S.v<β ∨ S.v>=γ)}(T × S).
	a := extractQ(t, `SELECT * FROM T WHERE T.u > 7
		AND EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u)
		AND EXISTS (SELECT * FROM S WHERE S.v >= 5 AND S.u = T.u)`)
	wantRelations(t, a, "S", "T")
	// CNF of (w1 OR w2) with wi = (cond_i AND S.u=T.u):
	// (S.u=T.u) AND (S.v<2 OR S.v>=5).
	wantClauses(t, a, "T.u > 7", "S.u = T.u", "S.v < 2 OR S.v >= 5")
}

func TestLemma6OrExists(t *testing.T) {
	// σ_{(T.u>α ∨ S.u=T.u) ∧ (T.u>α ∨ S.v<β ∨ S.v>=γ)}(T × S).
	a := extractQ(t, `SELECT * FROM T WHERE T.u > 7
		OR EXISTS (SELECT * FROM S WHERE S.v < 2 AND S.u = T.u)
		OR EXISTS (SELECT * FROM S WHERE S.v >= 5 AND S.u = T.u)`)
	wantClauses(t, a,
		"S.u = T.u OR T.u > 7",
		"S.v < 2 OR S.v >= 5 OR T.u > 7")
}

func TestExample4TwoLevelNesting(t *testing.T) {
	a := extractQ(t, `SELECT * FROM T WHERE T.u > 1 AND EXISTS
		(SELECT * FROM S WHERE S.u = T.u AND S.v < 2 AND EXISTS
			(SELECT * FROM R WHERE R.v = S.v AND R.x < 3))`)
	wantRelations(t, a, "R", "S", "T")
	wantClauses(t, a, "T.u > 1", "S.u = T.u", "S.v < 2", "R.v = S.v", "R.x < 3")
	if !a.Exact {
		t.Error("multi-level EXISTS flattening is exact")
	}
}

func TestInSubquery(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE T.u IN (SELECT S.u FROM S WHERE S.v < 3)")
	wantRelations(t, a, "S", "T")
	wantClauses(t, a, "S.v < 3", "S.u = T.u")
}

func TestInSubqueryUnqualifiedOuterColumn(t *testing.T) {
	// Unqualified left operand must resolve in the OUTER scope (T), not the
	// subquery's (S also has column u).
	a := extractQ(t, "SELECT * FROM T WHERE s IN (SELECT S.v FROM S)")
	wantClauses(t, a, "S.v = T.s")
}

func TestNotExistsApproximate(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE NOT EXISTS (SELECT * FROM S WHERE S.u = T.u)")
	wantRelations(t, a, "S", "T")
	if a.Exact {
		t.Error("NOT EXISTS is approximate")
	}
}

func TestQuantifiedAny(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE T.u > ANY (SELECT S.u FROM S WHERE S.v = 1)")
	wantClauses(t, a, "S.v = 1", "S.u < T.u")
	if !a.Exact {
		t.Error("ANY flattening is exact")
	}
}

func TestQuantifiedAllApprox(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE T.u > ALL (SELECT S.u FROM S)")
	wantClauses(t, a, "S.u < T.u")
	if a.Exact {
		t.Error("ALL is an over-approximation")
	}
}

func TestScalarSubqueryComparison(t *testing.T) {
	// The implicit nested predicate of Section 4.4's intro.
	a := extractQ(t, "SELECT * FROM T WHERE T.u = (SELECT S.u FROM S WHERE S.v = 12)")
	wantRelations(t, a, "S", "T")
	wantClauses(t, a, "S.v = 12", "S.u = T.u")
}

func TestScalarAggregateSubqueryApprox(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE T.u > (SELECT MAX(S.u) FROM S)")
	wantClauses(t, a, "S.u < T.u")
	if a.Exact {
		t.Error("aggregate scalar subquery is approximate")
	}
}

func TestDerivedTable(t *testing.T) {
	a := extractQ(t, "SELECT x.b FROM (SELECT S.u AS b FROM S WHERE S.v > 1) AS x WHERE x.b < 9")
	wantRelations(t, a, "S")
	wantClauses(t, a, "S.u < 9", "S.v > 1")
}

func TestDerivedTableStar(t *testing.T) {
	a := extractQ(t, "SELECT * FROM (SELECT * FROM S WHERE S.v > 1) AS x WHERE x.u < 9")
	wantClauses(t, a, "S.u < 9", "S.v > 1")
}

// --- approximations ---

func TestArithmeticOverColumnsApprox(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE u + v > 5")
	if a.Exact {
		t.Error("column arithmetic should be approximate")
	}
	if !a.CNF.IsTrue() {
		t.Errorf("cnf = %s", a.CNF)
	}
}

func TestLikeWithoutWildcardsIsEquality(t *testing.T) {
	a := extractQ(t, "SELECT * FROM SpecObjAll WHERE class LIKE 'star'")
	wantClauses(t, a, "SpecObjAll.class = 'star'")
	if !a.Exact {
		t.Error("wildcard-free LIKE is exact")
	}
	a = extractQ(t, "SELECT * FROM SpecObjAll WHERE class LIKE 'st%'")
	if a.Exact {
		t.Error("wildcard LIKE is approximate")
	}
}

func TestIsNullApprox(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE u IS NULL")
	if a.Exact || !a.CNF.IsTrue() {
		t.Errorf("area = %s exact=%v", a, a.Exact)
	}
}

func TestParamApprox(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE u > @threshold")
	if a.Exact {
		t.Error("parameter comparison should be approximate")
	}
}

func TestPredCapTruncation(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("SELECT * FROM T WHERE u > 0")
	for i := 1; i <= 50; i++ {
		sb.WriteString(" OR (u > ")
		sb.WriteString(strings.Repeat("1", 1))
		sb.WriteString(" AND v < 2)")
	}
	ex := New(testSchema())
	a, err := ex.ExtractSQL(sb.String())
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if !a.Truncated {
		t.Error("expected truncation beyond 35 predicates")
	}
	if a.Exact {
		t.Error("truncated extraction is not exact")
	}
}

// --- output formats ---

func TestAreaStringAndIntermediateSQL(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE u >= 1 AND u <= 8")
	s := a.String()
	if !strings.HasPrefix(s, "σ[") || !strings.Contains(s, "](T)") {
		t.Errorf("string = %q", s)
	}
	sql := a.IntermediateSQL()
	if !strings.HasPrefix(sql, "SELECT * FROM T WHERE ") {
		t.Errorf("sql = %q", sql)
	}
}

func TestStatsObserved(t *testing.T) {
	st := schema.NewStats()
	st.SeedNumericContent("PhotoObjAll.ra", interval.Closed(0, 100))
	ex := New(testSchema())
	ex.Stats = st
	if _, err := ex.ExtractSQL("SELECT * FROM PhotoObjAll WHERE ra <= 210"); err != nil {
		t.Fatal(err)
	}
	acc, _ := st.NumericAccess("PhotoObjAll.ra")
	if !acc.Contains(210) {
		t.Errorf("access = %v, should contain 210", acc)
	}
}

func TestKeyDeduplication(t *testing.T) {
	a1 := extractQ(t, "SELECT * FROM T WHERE u >= 1 AND u <= 8")
	a2 := extractQ(t, "SELECT v FROM T WHERE u <= 8 AND u >= 1")
	if a1.Key() != a2.Key() {
		t.Errorf("keys differ:\n%s\n%s", a1.Key(), a2.Key())
	}
}

func TestUnionAccessArea(t *testing.T) {
	// The access area of a UNION is the union of the arms' areas: the
	// "future extension" of Section 4 realised. Two arms over the same
	// relation merge disjunctively.
	a := extractQ(t, "SELECT u FROM T WHERE u < 2 UNION SELECT u FROM S WHERE S.v > 9")
	wantRelations(t, a, "S", "T")
	wantClauses(t, a, "S.v > 9 OR T.u < 2")
	if !a.Exact {
		t.Error("union mapping is exact")
	}
}

func TestUnionSameRelationNotSelfJoin(t *testing.T) {
	a := extractQ(t, "SELECT u FROM T WHERE u < 2 UNION SELECT u FROM T WHERE u > 9")
	wantRelations(t, a, "T")
	wantClauses(t, a, "T.u < 2 OR T.u > 9")
}

func TestUnionAll(t *testing.T) {
	a := extractQ(t, "SELECT u FROM T WHERE u BETWEEN 1 AND 3 UNION ALL SELECT u FROM T WHERE u BETWEEN 2 AND 5")
	wantRelations(t, a, "T")
	// CNF of (1<=u<=3) OR (2<=u<=5): consolidation merges the per-column
	// union into u >= 1 AND u <= 5.
	wantClauses(t, a, "T.u >= 1", "T.u <= 5")
}

func TestNaturalJoinScopedToOperands(t *testing.T) {
	// R shares column v with T and S, but sits in a separate comma factor:
	// the NATURAL JOIN must only equate T and S columns.
	a := extractQ(t, "SELECT * FROM R, T NATURAL JOIN S")
	wantRelations(t, a, "R", "S", "T")
	for _, cl := range a.CNF {
		for _, p := range cl {
			for _, col := range p.Columns() {
				if strings.HasPrefix(col, "R.") {
					t.Fatalf("R column leaked into natural join constraint: %s", a.CNF)
				}
			}
		}
	}
	wantClauses(t, a, "S.u = T.u", "S.v = T.v")
}

func TestReferencedColumnsASet(t *testing.T) {
	// The A set (§2.1) includes WHERE, GROUP BY, HAVING and nested-clause
	// columns — even ones whose constraints were approximated away.
	a := extractQ(t, `SELECT T.u, SUM(T.v) FROM T
		WHERE T.s LIKE 'x%' AND T.u > 1
		GROUP BY T.u
		HAVING SUM(T.v) > 100`)
	want := []string{"T.s", "T.u", "T.v"}
	if len(a.Referenced) != len(want) {
		t.Fatalf("referenced = %v, want %v", a.Referenced, want)
	}
	for i, col := range want {
		if a.Referenced[i] != col {
			t.Fatalf("referenced = %v, want %v", a.Referenced, want)
		}
	}
	// T.s was approximated (LIKE wildcard): absent from the CNF yet present
	// in the A set.
	for _, col := range a.CNF.Columns() {
		if col == "T.s" {
			t.Error("T.s should not be constrained in the CNF")
		}
	}
}

func TestReferencedIncludesSubqueryColumns(t *testing.T) {
	a := extractQ(t, "SELECT * FROM T WHERE EXISTS (SELECT * FROM S WHERE S.u = T.u AND S.v < 1)")
	joined := strings.Join(a.Referenced, ",")
	for _, col := range []string{"S.u", "S.v", "T.u"} {
		if !strings.Contains(joined, col) {
			t.Errorf("referenced = %v, missing %s", a.Referenced, col)
		}
	}
}

func TestMembershipWithStringAndLiteralLeft(t *testing.T) {
	// Constant on the left of a membership flattening: "5 IN (SELECT u...)".
	a := extractQ(t, "SELECT * FROM T WHERE 5 IN (SELECT S.u FROM S WHERE S.v > 1)")
	wantClauses(t, a, "S.v > 1", "S.u = 5")
	// String constant comparison against a subquery output.
	a = extractQ(t, "SELECT * FROM T WHERE 'x' = (SELECT S.u FROM S)")
	wantClauses(t, a, "S.u = 'x'")
}

func TestGroupByColumnEntersASet(t *testing.T) {
	a := extractQ(t, "SELECT T.u, COUNT(*) FROM T GROUP BY T.u")
	found := false
	for _, c := range a.Referenced {
		if c == "T.u" {
			found = true
		}
	}
	if !found {
		t.Errorf("referenced = %v, want T.u from GROUP BY", a.Referenced)
	}
}
