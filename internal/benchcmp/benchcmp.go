// Package benchcmp compares two benchreport JSON records (BENCH_*.json)
// and flags regressions in the deterministic counter metrics. Wall-clock
// fields (elapsed_ms, queries_per_sec, speedup_x) are deliberately ignored:
// they vary with machine load, while distance-eval and parse counters are
// exact replays of the same seeded workload and move only when the code
// changes. The CI bench-drift gate (benchreport -compare) is built on this
// package.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// direction says which way a metric is allowed to move.
type direction int

const (
	dirIgnore      direction = iota
	dirLowerBetter           // counters of work done: growth is a regression
	dirHigherBetter
)

// scaleDependent marks metrics that only compare meaningfully when both
// records ran the same workload size (the top-level "queries" field).
var gated = map[string]struct {
	dir   direction
	scale bool
}{
	"distance_evals": {dirLowerBetter, true},
	"full_parses":    {dirLowerBetter, true},
	"misses":         {dirLowerBetter, true},
	"cache_hits":     {dirHigherBetter, true},
	"eval_ratio":     {dirHigherBetter, false},
	"parse_ratio":    {dirHigherBetter, false},
	"hit_ratio":      {dirHigherBetter, false},
	// The flat distance kernel's structural-equality early exit: the ratio is
	// a deterministic replay of the seeded pair schedule, so a drop means the
	// kernel stopped recognising equal constraint lists.
	"early_exit_ratio": {dirHigherBetter, false},
	// The WAL segment index: on the seeded workload the re-mine window maps
	// to a fixed set of segments, so scanning more (or skipping fewer) means
	// the inline fingerprint/time-range index stopped pruning.
	"window_segments_scanned": {dirLowerBetter, true},
	"window_segments_skipped": {dirHigherBetter, true},
	// The traffic classifier scores a deterministic replay of the seeded
	// mixed workload against its generator's ground truth, so any drop means
	// the heuristics (not the machine) got worse.
	"classifier_precision": {dirHigherBetter, false},
	"classifier_recall":    {dirHigherBetter, false},
	// Semantic-cache v2: the budget curve is a deterministic replay, so the
	// hit ratio at the half-residency budget moves only with admission code.
	"hit_ratio_at_half_budget": {dirHigherBetter, false},
}

// zeroGated metrics are correctness counters: once a record establishes zero
// (no oracle mismatches), any successor record must report the key — at ANY
// workload scale — and report it as zero. A single mismatch is one too many
// no matter how few queries ran, so these are exempt from both tol and the
// scale gate.
var zeroGated = map[string]bool{
	"oracle_failed":     true,
	"oracle_mismatches": true,
	"verify_failed":     true,
}

// Finding is one compared metric.
type Finding struct {
	Path      string  // dotted path, e.g. "after_pivot_index.distance_evals"
	Old       float64 // NaN when the metric is missing from the old record
	New       float64 // NaN when the metric is missing from the new record
	Delta     float64 // fractional change in the worse direction (>0 = worse)
	Regressed bool
	Note      string // extra context ("metric disappeared", "scale mismatch: skipped")
}

// Report is the outcome of comparing two records.
type Report struct {
	Findings []Finding
	Skipped  []string // gated metrics not compared (scale mismatch)
}

// Regressions filters the findings down to the failures.
func (r *Report) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Regressed {
			out = append(out, f)
		}
	}
	return out
}

// String renders a human-readable comparison table.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		status := "ok"
		if f.Regressed {
			status = "REGRESSION"
		}
		fmt.Fprintf(&b, "%-12s %-45s old=%-14s new=%-14s delta=%+.2f%%",
			status, f.Path, fmtVal(f.Old), fmtVal(f.New), 100*f.Delta)
		if f.Note != "" {
			fmt.Fprintf(&b, "  (%s)", f.Note)
		}
		b.WriteByte('\n')
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "%-12s %-45s (scale mismatch: skipped)\n", "skipped", s)
	}
	return b.String()
}

func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// Compare parses two benchreport JSON records and checks every gated metric
// in the old record against the new one. tol is the allowed fractional
// drift in the worse direction (0.15 = 15%). Booleans named identical_*
// must not flip true -> false regardless of tol.
func Compare(oldJSON, newJSON []byte, tol float64) (*Report, error) {
	return compare(oldJSON, newJSON, tol, false)
}

// CompareIdentity checks only the scale-independent correctness gates:
// identical_* booleans and the zero-stay-zero counters. Counters and ratios
// are ignored entirely, so a reduced-scale record (a per-PR quick run)
// compares cleanly against the committed full-scale baseline while still
// failing the moment an optimised path stops reproducing the baseline
// result.
func CompareIdentity(oldJSON, newJSON []byte) (*Report, error) {
	return compare(oldJSON, newJSON, 0, true)
}

func compare(oldJSON, newJSON []byte, tol float64, identityOnly bool) (*Report, error) {
	var oldDoc, newDoc map[string]any
	if err := json.Unmarshal(oldJSON, &oldDoc); err != nil {
		return nil, fmt.Errorf("old record: %w", err)
	}
	if err := json.Unmarshal(newJSON, &newDoc); err != nil {
		return nil, fmt.Errorf("new record: %w", err)
	}
	oldFlat, oldBool := flatten(oldDoc)
	newFlat, newBool := flatten(newDoc)

	// Counters only compare at equal workload scale; ratios always do.
	sameScale := true
	if oq, ok := oldFlat["queries"]; ok {
		nq, nok := newFlat["queries"]
		sameScale = nok && nq == oq
	}

	rep := &Report{}
	paths := make([]string, 0, len(oldFlat))
	for p := range oldFlat {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, p := range paths {
		oldV := oldFlat[p]
		newV, present := newFlat[p]
		if zeroGated[basename(p)] && oldV == 0 {
			// Zero-stay-zero: scale-independent, tolerance-free.
			f := Finding{Path: p, Old: 0, New: newV}
			switch {
			case !present:
				f.New, f.Delta, f.Regressed, f.Note = math.NaN(), math.Inf(1), true, "correctness counter disappeared"
			case newV != 0:
				f.Delta, f.Regressed, f.Note = math.Inf(1), true, "correctness counter left zero"
			}
			rep.Findings = append(rep.Findings, f)
			continue
		}
		if identityOnly {
			continue
		}
		rule, ok := gated[basename(p)]
		if !ok || rule.dir == dirIgnore {
			continue
		}
		if rule.scale && !sameScale {
			if !present {
				// A gated key vanishing is a regression even when the scales
				// differ: the skip list is for values that exist but are not
				// comparable, never for keys the new record stopped reporting.
				rep.Findings = append(rep.Findings, Finding{
					Path: p, Old: oldV, New: math.NaN(),
					Delta: math.Inf(1), Regressed: true,
					Note: "gated key missing from new record (scale mismatch)",
				})
				continue
			}
			rep.Skipped = append(rep.Skipped, p)
			continue
		}
		if !present {
			rep.Findings = append(rep.Findings, Finding{
				Path: p, Old: oldV, New: math.NaN(),
				Delta: math.Inf(1), Regressed: true,
				Note: "metric disappeared",
			})
			continue
		}
		f := Finding{Path: p, Old: oldV, New: newV}
		f.Delta = worseDelta(rule.dir, oldV, newV)
		f.Regressed = f.Delta > tol
		rep.Findings = append(rep.Findings, f)
	}

	// identical_* booleans: a true -> false flip means the optimised path
	// no longer reproduces the baseline result — always a failure.
	boolPaths := make([]string, 0, len(oldBool))
	for p := range oldBool {
		boolPaths = append(boolPaths, p)
	}
	sort.Strings(boolPaths)
	for _, p := range boolPaths {
		if !strings.HasPrefix(basename(p), "identical_") || !oldBool[p] {
			continue
		}
		newB, present := newBool[p]
		f := Finding{Path: p, Old: 1, New: 0}
		switch {
		case !present:
			f.Regressed, f.Delta, f.Note = true, math.Inf(1), "metric disappeared"
		case !newB:
			f.Regressed, f.Delta, f.Note = true, 1, "identity flag flipped to false"
		default:
			f.New = 1
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep, nil
}

// worseDelta returns the fractional change in the direction that hurts:
// positive means the new record is worse, zero or negative means equal or
// improved.
func worseDelta(dir direction, oldV, newV float64) float64 {
	var worse float64
	switch dir {
	case dirLowerBetter:
		worse = newV - oldV
	case dirHigherBetter:
		worse = oldV - newV
	default:
		return 0
	}
	if worse <= 0 {
		return worse / math.Max(math.Abs(oldV), 1)
	}
	if oldV == 0 {
		return math.Inf(1) // work appeared where there was none
	}
	return worse / math.Abs(oldV)
}

func basename(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// flatten walks a decoded JSON document into dotted-path leaf maps, numbers
// and booleans separately. The benchreport "metrics" snapshot subtree is
// excluded: it holds process-cumulative observability counters whose values
// depend on which experiments ran before, not on the experiment itself.
func flatten(doc map[string]any) (map[string]float64, map[string]bool) {
	nums := map[string]float64{}
	bools := map[string]bool{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, child := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				if prefix == "" && k == "metrics" {
					continue
				}
				walk(p, child)
			}
		case []any:
			for i, child := range x {
				walk(fmt.Sprintf("%s.%d", prefix, i), child)
			}
		case float64:
			nums[prefix] = x
		case bool:
			bools[prefix] = x
		}
	}
	walk("", doc)
	return nums, bools
}
