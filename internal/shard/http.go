package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// Handler returns the coordinator's HTTP surface — deliberately the same
// shape as a single skyserved node, so clients (loggen, curl scripts,
// dashboards) work unchanged against either:
//
//	POST /ingest        routed fan-out (NDJSON / JSON, serve's protocol)
//	POST /flush         drain, flush every shard, re-merge (blocks)
//	GET  /report        merged Table-1 view (text/csv/json, ETag-aware;
//	                    ?class=bot|human|admin the per-class slice;
//	                    X-Stale-Shards lists shards serving last-known
//	                    results, X-Merge-Exact the equivalence guarantee)
//	GET  /drift         merged per-class interest-drift event log
//	GET  /interfaces    merged top-K mined query interfaces
//	GET  /stats         merged pipeline statistics + per-shard breakdown
//	GET  /metrics       flat counters (routing overhead, per-shard queues)
//	GET  /shard/status  per-shard liveness and delivery state
//	GET  /healthz       coordinator liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		serve.IngestHTTP(w, r, c.Enqueue)
	})
	mux.HandleFunc("/flush", c.handleFlush)
	mux.HandleFunc("/report", c.handleReport)
	mux.HandleFunc("/drift", c.handleDrift)
	mux.HandleFunc("/interfaces", c.handleInterfaces)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/shard/status", c.handleStatus)
	mux.HandleFunc("/healthz", c.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (c *Coordinator) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	c.Flush()
	merged, gen, stale := c.Merged()
	reply := map[string]any{"generation": gen, "stale_shards": stale}
	if merged != nil {
		reply["distinct_areas"] = merged.DistinctAreas
		reply["clusters"] = len(merged.Clusters)
	}
	writeJSON(w, http.StatusOK, reply)
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	format, err := serve.NegotiateFormat(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	class := r.URL.Query().Get("class")
	if class != "" {
		if !c.cfg.Traffic {
			http.Error(w, "traffic mining not configured", http.StatusConflict)
			return
		}
		if !traffic.ValidClass(class) {
			http.Error(w, "class must be bot, human or admin", http.StatusBadRequest)
			return
		}
	}
	var res *core.Result
	var gen int64
	var stale []string
	if class != "" {
		res, gen, stale = c.MergedClass(class)
	} else {
		res, gen, stale = c.Merged()
	}
	if res == nil {
		http.Error(w, "no merge has run yet — POST /flush or keep ingesting", http.StatusServiceUnavailable)
		return
	}
	top := c.cfg.ReportTop
	if t := r.URL.Query().Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n < 0 {
			http.Error(w, "top must be a non-negative integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	if len(stale) > 0 {
		w.Header().Set("X-Stale-Shards", strings.Join(stale, ","))
	}
	w.Header().Set("X-Merge-Exact", strconv.FormatBool(c.MergeIsExact()))
	// Same pure-function contract as the serve ETag, with the stale set in
	// the tag: a shard recovering (same generation, fewer stale shards)
	// must invalidate cached copies. Class reports tag the class; the
	// classless tag shape is unchanged.
	etag := fmt.Sprintf(`"m%d-%s-%d-%d"`, gen, format, top, len(stale))
	if class != "" {
		etag = fmt.Sprintf(`"m%d-%s-%s-%d-%d"`, gen, class, format, top, len(stale))
	}
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" {
		for _, cand := range strings.Split(match, ",") {
			cand = strings.TrimSpace(cand)
			cand = strings.TrimPrefix(cand, "W/")
			if cand == etag || cand == "*" {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	w.Header().Set("Content-Type", serve.FormatContentType(format))
	_ = report.Write(w, res, format, report.Options{Top: top, Coverage: c.cfg.Coverage != nil})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	merged, gen, _ := c.Merged()
	perShard := make(map[string]any, len(c.nodes))
	c.mergeMu.RLock()
	for i, node := range c.nodes {
		if c.lastStats[i] != nil {
			perShard[node.Name()] = c.lastStats[i]
		}
	}
	c.mergeMu.RUnlock()
	reply := map[string]any{
		"pipeline":   c.MergedStats(),
		"generation": gen,
		"accepted":   c.Accepted(),
		"rejected":   c.Rejected(),
		"per_shard":  perShard,
	}
	if merged != nil {
		reply["distinct_areas"] = merged.DistinctAreas
	}
	writeJSON(w, http.StatusOK, reply)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(c.start).Seconds()
	accepted := c.Accepted()
	rate := 0.0
	if uptime > 0 {
		rate = float64(accepted) / uptime
	}
	routed := c.router.Routed()
	routeNS := c.router.RouteNanos()
	perRecord := 0.0
	if routed > 0 {
		perRecord = float64(routeNS) / float64(routed)
	}
	_, gen, stale := c.Merged()
	metrics := map[string]any{
		"uptime_seconds":        uptime,
		"ingest_accepted":       accepted,
		"ingest_rejected":       c.Rejected(),
		"ingest_rate_per_sec":   rate,
		"shards":                len(c.nodes),
		"merge_generation":      gen,
		"stale_shards":          len(stale),
		"merge_exact":           c.MergeIsExact(),
		"forward_retries":       c.Retries(),
		"route_records":         routed,
		"route_total_ns":        routeNS,
		"route_ns_per_record":   perRecord,
		"route_full_parses":     c.router.FullParses(),
		"route_max_relations":   c.router.MaxRels(),
		"template_cache_len":    c.router.Cache().Len(),
		"template_cache_hits":   c.router.Cache().Hits(),
		"template_cache_misses": c.router.Cache().Misses(),
	}
	if c.cfg.Traffic {
		c.mergeMu.RLock()
		metrics["traffic_drift_events"] = len(c.mergedDrift)
		metrics["traffic_interfaces_tracked"] = c.ifaceTracked
		c.mergeMu.RUnlock()
	}
	for _, st := range c.Status() {
		prefix := "shard_" + strconv.Itoa(st.Index) + "_"
		metrics[prefix+"queue_depth"] = st.QueueDepth
		metrics[prefix+"enqueued"] = st.Enqueued
		metrics[prefix+"forwarded"] = st.Forwarded
		metrics[prefix+"down"] = st.Down
		metrics[prefix+"routed_load"] = st.Load
	}
	writeJSON(w, http.StatusOK, metrics)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": c.Status()})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.isClosed() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
