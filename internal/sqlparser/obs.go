package sqlparser

import "repro/internal/obs"

// Package-wide instruments: every Parse and Fingerprint call is counted and
// its latency lands in a Default-registry stage histogram, so the parser's
// share of pipeline time is visible on /metrics?format=prom without the
// per-record StageTime plumbing the §6.6 report uses.
var (
	parseStage       = obs.NewStage("sqlparser_parse")
	fingerprintStage = obs.NewStage("sqlparser_fingerprint")

	parseTotal = obs.NewCounter("skyaccess_sqlparser_parse_total",
		"statements handed to the full parser")
	parseErrors = obs.NewCounter("skyaccess_sqlparser_parse_errors_total",
		"full parses rejected by the lexer or parser")
	fingerprintTotal = obs.NewCounter("skyaccess_sqlparser_fingerprint_total",
		"statements fingerprinted for the template cache")
)
