package aggregate

import (
	"math"
)

// DensityContrast answers the follow-up question the paper's domain experts
// raised in Section 6.3: "it would be interesting to know how much denser
// each cluster is, in contrast to its immediate surroundings". It compares
// the per-volume query density inside the cluster's box against the density
// in a shell obtained by expanding every bounded dimension by `expand`
// (fraction of the width, per side) and subtracting the box.
//
// Density is measured over all items (the full mined population, clustered
// or not): an item falls in a region when, for every bounded dimension of
// the cluster box, the item constrains that column and the hull midpoint of
// its constraint lies in the region. The result is
//
//	(inside / V_box) / (shell / V_shell)
//
// +Inf when the shell is empty but the box is not (an isolated plateau),
// and 1 when the box has no bounded dimensions to measure against.
func DensityContrast(s *Summary, all []*Item, expand float64) float64 {
	if expand <= 0 {
		expand = 0.5
	}
	// Bounded dimensions of the cluster box.
	type dim struct {
		col              string
		lo, hi           float64
		shellLo, shellHi float64
	}
	var dims []dim
	for _, col := range s.Box.Dims() {
		iv := s.Box.Get(col)
		if iv.IsEmpty() || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) || iv.Width() == 0 {
			continue
		}
		pad := expand * iv.Width()
		dims = append(dims, dim{col, iv.Lo, iv.Hi, iv.Lo - pad, iv.Hi + pad})
	}
	if len(dims) == 0 {
		return 1
	}
	var inBox, inShell float64
	for _, it := range all {
		w := float64(it.Weight)
		if w <= 0 {
			w = 1
		}
		bounds := it.Area.Bounds()
		inside, inExpanded := true, true
		for _, d := range dims {
			set, ok := bounds[d.col]
			if !ok {
				inside, inExpanded = false, false
				break
			}
			mid := set.Hull().Midpoint()
			if math.IsNaN(mid) {
				inside, inExpanded = false, false
				break
			}
			if mid < d.shellLo || mid > d.shellHi {
				inside, inExpanded = false, false
				break
			}
			if mid < d.lo || mid > d.hi {
				inside = false
			}
		}
		if inside {
			inBox += w
		} else if inExpanded {
			inShell += w
		}
	}
	vBox, vExpanded := 1.0, 1.0
	for _, d := range dims {
		vBox *= d.hi - d.lo
		vExpanded *= d.shellHi - d.shellLo
	}
	vShell := vExpanded - vBox
	if vShell <= 0 {
		return 1
	}
	if inShell == 0 {
		if inBox == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return (inBox / vBox) / (inShell / vShell)
}
