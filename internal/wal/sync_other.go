//go:build !linux

package wal

import "os"

// syncFile makes a file's appended data durable (full fsync where the
// platform has no cheaper data-only sync).
func syncFile(f *os.File) error {
	return f.Sync()
}
