package interestcache

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"repro/internal/interval"
	"repro/internal/memdb"
)

var errNoStore = errors.New("interestcache: no member stores to compose")

// Multi-region composition (DESIGN.md §17). When no single region contains
// the query's access area, a covering set may: a set of regions that each
// contain the query on every axis except one shared split axis, whose
// projections onto the split axis jointly cover the query's hull there.
// Every row the query's WHERE can admit then lies in at least one region of
// the set (predicate bounds are necessary conditions, so a row satisfying
// the CNF projects into the hull on every constrained column).
//
// Soundness of the merge does not depend on the regions being disjoint:
// each region remembers the source-row position of every prefetched row
// (memdb.RestrictIndexed), so the union store is built by merging the
// members' rows in global source order and dropping positional duplicates.
// The composed store is therefore itself a restriction of the source
// database that (a) is a superset of the WHERE rows and (b) preserves
// source row order — the same two properties a single region's store has —
// so executing the full statement against it is byte-identical to direct
// execution for every safeShape statement, including TOP / ORDER BY /
// DISTINCT. This subsumes the "disjoint or dedup-safe" gate: positional
// dedup makes every overlap dedup-safe.

// cover is a covering set found for one query shape.
type cover struct {
	regions []*Region
	// splitDim / splitCat name the axis the cover tiles (one of the two is
	// set); every member contains the query on all other axes.
	splitDim string
	splitCat string
}

// ids returns the member region IDs in cover order.
func (c *cover) ids() []int {
	out := make([]int, len(c.regions))
	for i, r := range c.regions {
		out[i] = r.ID
	}
	return out
}

func (c *cover) totalRows() int {
	n := 0
	for _, r := range c.regions {
		n += r.Rows
	}
	return n
}

// findCover searches every relation group for a minimal covering set of at
// most maxRegions regions. Candidate split axes are the box dimensions and
// categorical columns the group's regions constrain; for each axis the
// members that contain the query on every other axis are tiled greedily
// along it. The best cover (fewest regions, then fewest total rows) wins.
func (idx *containmentIndex) findCover(shape *queryShape, maxRegions int) *cover {
	if maxRegions <= 1 {
		return nil
	}
	var best *cover
	better := func(c *cover) bool {
		if best == nil {
			return true
		}
		if len(c.regions) != len(best.regions) {
			return len(c.regions) < len(best.regions)
		}
		return c.totalRows() < best.totalRows()
	}
	for _, g := range idx.groups {
		if !g.covers(shape.relations) {
			continue
		}
		// Candidate split axes, deterministic order.
		dimSet := map[string]bool{}
		catSet := map[string]bool{}
		for _, r := range g.regions {
			for _, d := range r.Box.Dims() {
				dimSet[d] = true
			}
			for c := range r.Categorical {
				catSet[c] = true
			}
		}
		for _, d := range sortedKeys(dimSet) {
			if rel, _, ok := splitQualified(d); !ok || !containsFold(shape.relations, rel) {
				continue
			}
			var cands []*Region
			for _, r := range g.regions {
				if r.Box.Has(d) && r.containsShape(shape, d, "") {
					cands = append(cands, r)
				}
			}
			if len(cands) < 2 {
				continue
			}
			if picked := greedyIntervalCover(cands, d, shape.hull(d), maxRegions); picked != nil {
				c := &cover{regions: picked, splitDim: d}
				if better(c) {
					best = c
				}
			}
		}
		for _, col := range sortedKeys(catSet) {
			rel, _, ok := splitQualified(col)
			if !ok || !containsFold(shape.relations, rel) {
				continue
			}
			vals, pinned := shape.strs[col]
			if !pinned {
				continue
			}
			var cands []*Region
			for _, r := range g.regions {
				if len(r.Categorical[col]) > 0 && r.containsShape(shape, "", col) {
					cands = append(cands, r)
				}
			}
			if len(cands) < 2 {
				continue
			}
			if picked := greedySetCover(cands, col, vals, maxRegions); picked != nil {
				c := &cover{regions: picked, splitCat: col}
				if better(c) {
					best = c
				}
			}
		}
	}
	if best != nil && len(best.regions) > 0 {
		return best
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// greedyIntervalCover tiles the query interval q with the candidates'
// projections onto dim, advancing a frontier (f, fIncl): the points up to f
// — inclusive when fIncl — are covered. At each step the candidate whose
// interval extends past the frontier and reaches farthest right is chosen;
// greedy choice is count-minimal for interval covering. Nil when the query
// cannot be covered within max picks.
func greedyIntervalCover(cands []*Region, dim string, q interval.Interval, max int) []*Region {
	if q.IsEmpty() {
		return nil
	}
	f, fIncl := q.Lo, q.LoOpen // LoOpen: the endpoint itself is not needed
	done := func() bool {
		return f > q.Hi || (f == q.Hi && (fIncl || q.HiOpen))
	}
	var picked []*Region
	for !done() {
		if len(picked) == max {
			return nil
		}
		var bestR *Region
		var bestHi float64
		var bestIncl bool
		for _, r := range cands {
			iv := r.Box.Get(dim)
			if iv.IsEmpty() {
				continue
			}
			// The interval must cover the first uncovered point: f itself
			// when !fIncl, or the points immediately above f when fIncl.
			reaches := iv.Lo < f || (iv.Lo == f && (fIncl || !iv.LoOpen))
			if !reaches {
				continue
			}
			hi, hiIncl := iv.Hi, !iv.HiOpen
			// Must make progress past the current frontier.
			if hi < f || (hi == f && (!hiIncl || fIncl)) {
				continue
			}
			if bestR == nil || hi > bestHi || (hi == bestHi && hiIncl && !bestIncl) {
				bestR, bestHi, bestIncl = r, hi, hiIncl
			}
		}
		if bestR == nil {
			return nil
		}
		picked = append(picked, bestR)
		f, fIncl = bestHi, bestIncl
	}
	return picked
}

// greedySetCover covers the query's pinned value list for a categorical
// column with the candidates' value lists: repeatedly pick the region
// covering the most uncovered values (ties by smallest ID).
func greedySetCover(cands []*Region, col string, vals []string, max int) []*Region {
	uncovered := make(map[string]bool, len(vals))
	for _, v := range vals {
		uncovered[strings.ToLower(v)] = true
	}
	var picked []*Region
	for len(uncovered) > 0 {
		if len(picked) == max {
			return nil
		}
		var bestR *Region
		bestGain := 0
		for _, r := range cands {
			gain := 0
			for _, v := range r.Categorical[col] {
				if uncovered[strings.ToLower(v)] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && bestR != nil && r.ID < bestR.ID) {
				bestR, bestGain = r, gain
			}
		}
		if bestR == nil {
			return nil
		}
		for _, v := range bestR.Categorical[col] {
			delete(uncovered, strings.ToLower(v))
		}
		picked = append(picked, bestR)
	}
	return picked
}

// coverKey canonicalises a cover for the snapshot's composed-store cache.
func coverKey(c *cover) string {
	ids := c.ids()
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// unionStore merges the cover members' stores into one sub-database in
// global source-row order with positional dedup, caching the result on the
// snapshot so repeated composed queries over the same cover pay the merge
// once.
func (s *snapshot) unionStore(c *cover) (*memdb.DB, error) {
	key := coverKey(c)
	if v, ok := s.composed.Load(key); ok {
		return v.(*memdb.DB), nil
	}
	db, err := buildUnionStore(c.regions)
	if err != nil {
		return nil, err
	}
	actual, _ := s.composed.LoadOrStore(key, db)
	return actual.(*memdb.DB), nil
}

// buildUnionStore k-way merges the member stores table by table. Rows carry
// their source positions (Region.rowIdx), so the merge emits each distinct
// source row once, in source order.
func buildUnionStore(regions []*Region) (*memdb.DB, error) {
	if len(regions) == 0 {
		return nil, errNoStore
	}
	out := memdb.New(regions[0].store.Schema)
	// Union of table names across members (lowercased key, canonical name
	// from the first member that has the table).
	seen := map[string]bool{}
	for _, r := range regions {
		for _, name := range r.store.Tables() {
			key := strings.ToLower(name)
			if seen[key] {
				continue
			}
			seen[key] = true
			type src struct {
				rows [][]memdb.Value
				pos  []int
				i    int
			}
			var srcs []src
			var canonical *memdb.Table
			for _, m := range regions {
				t := m.store.Table(name)
				if t == nil {
					continue
				}
				if canonical == nil {
					canonical = t
				}
				srcs = append(srcs, src{rows: t.Rows, pos: m.rowIdx[key]})
			}
			nt := out.CreateTable(canonical.Name, canonical.Columns...)
			last := -1
			for {
				bi, bp := -1, 0
				for si := range srcs {
					s := &srcs[si]
					for s.i < len(s.pos) && s.pos[s.i] <= last {
						s.i++
					}
					if s.i < len(s.pos) && (bi < 0 || s.pos[s.i] < bp) {
						bi, bp = si, s.pos[s.i]
					}
				}
				if bi < 0 {
					break
				}
				nt.Rows = append(nt.Rows, srcs[bi].rows[srcs[bi].i])
				last = bp
			}
		}
	}
	return out, nil
}
