GO ?= go

.PHONY: build test vet racecheck fuzz bench serve-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel region-query, pivot-index, and pair-cache code paths must stay
# race-clean; qlog covers the streaming worker pool and the template cache,
# extract the concurrent template rebinds, sqlparser the fingerprint pass,
# serve the ingest queue / epoch worker / shutdown interleavings, and core
# the concurrent Add vs Recluster paths of the incremental miner.
racecheck:
	$(GO) test -race ./internal/dbscan/... ./internal/distance/... \
		./internal/qlog/... ./internal/extract/... ./internal/sqlparser/... \
		./internal/serve/... ./internal/core/...

# fuzz replays the checked-in seed corpora in regression mode (plain go test
# runs every f.Add seed) and then explores each target briefly. Raise
# FUZZTIME for a longer soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/sqlparser/ -run=Fuzz
	$(GO) test ./internal/sqlparser/ -run=NONE -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sqlparser/ -run=NONE -fuzz=FuzzFingerprint -fuzztime=$(FUZZTIME)

# bench regenerates BENCH_clustering.json (brute-force vs pivot-index mining),
# BENCH_pipeline.json (uncached vs template-cached extraction) and
# BENCH_serve.json (online service under replayed load) at the 20k default
# mix. vet + racecheck gate it so perf numbers are never recorded off racy
# code.
bench: vet racecheck
	$(GO) run ./cmd/benchreport -exp clusterperf
	$(GO) run ./cmd/benchreport -exp pipelineperf
	$(GO) run ./cmd/benchreport -exp serveperf

# serve-smoke starts the serving stack, replays 1k records into it, flushes,
# and asserts /report matches the batch miner byte-for-byte in every format
# (TestServeSmoke drives the real HTTP handler surface end to end).
serve-smoke:
	$(GO) test -race -count=1 -run TestServeSmoke -v ./internal/serve/

clean:
	$(GO) clean ./...
