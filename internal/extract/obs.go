package extract

import "repro/internal/obs"

// Template-cache instruments. The per-TemplateCache atomics (Hits/Misses)
// stay the authoritative per-instance numbers the pipeline stats report;
// these Default-registry counters aggregate across every cache in the
// process so /metrics?format=prom and the bench snapshot see one total.
var (
	rebindStage = obs.NewStage("extract_rebind")

	templateHits = obs.NewCounter("skyaccess_extract_template_hits_total",
		"template-cache lookups answered from a cached shape")
	templateMisses = obs.NewCounter("skyaccess_extract_template_misses_total",
		"template-cache lookups that fell through to the slow path")
	templateStores = obs.NewCounter("skyaccess_extract_template_stores_total",
		"templates stored after a slow-path extraction")
	templateRebinds = obs.NewCounter("skyaccess_extract_template_rebinds_total",
		"cached templates re-instantiated with fresh literals")
	templateRebindFails = obs.NewCounter("skyaccess_extract_template_rebind_fails_total",
		"rebinds rejected by a per-record guard (record took the slow path)")
)
